// Command characterize runs the full §III characterization suite
// (Figures 3-7): micro-op cache size, associativity, placement rules,
// replacement policy, and SMT partitioning.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"deaduops/internal/experiments"
)

func main() {
	var (
		iters   = flag.Int("iters", 60, "measurement loop iterations")
		warmup  = flag.Int("warmup", 15, "warm-up iterations")
		workers = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	opts := experiments.Options{Iterations: *iters, Warmup: *warmup, Workers: *workers}
	suite := []string{"fig3a", "fig3b", "fig4", "fig5", "fig6a", "fig6b", "fig7a", "fig7b"}
	for _, id := range suite {
		start := time.Now()
		out, err := experiments.Registry[id](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out.Render())
		fmt.Printf("# %s completed in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
