// Command uopcache runs any of the paper's experiments by id and
// prints its data as text or CSV.
//
// Usage:
//
//	uopcache -list
//	uopcache -exp fig3a [-iters 200] [-warmup 50] [-samples 8] [-csv]
//	uopcache -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"deaduops/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or \"all\"")
		list    = flag.Bool("list", false, "list experiment ids")
		iters   = flag.Int("iters", 0, "measurement loop iterations (0 = default)")
		warmup  = flag.Int("warmup", 0, "warm-up iterations (0 = default)")
		samples = flag.Int("samples", 0, "per-point samples / rounds (0 = default)")
		seed    = flag.Uint64("seed", 0, "payload PRNG seed (0 = default)")
		workers = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		csv     = flag.Bool("csv", false, "CSV output where supported")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: uopcache -exp <id> | -list")
		os.Exit(2)
	}

	opts := experiments.Options{
		Iterations: *iters,
		Warmup:     *warmup,
		Samples:    *samples,
		Seed:       *seed,
		Workers:    *workers,
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		fn, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		out, err := fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			if fig, isFig := out.(*experiments.Figure); isFig {
				fmt.Print(fig.CSV())
				continue
			}
		}
		fmt.Println(out.Render())
	}
}
