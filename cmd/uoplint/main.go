// Command uoplint runs the static front-end leakage analyzer over
// guest programs: the canonical victims shipped with this repository
// and, optionally, a population of randomly generated programs. For
// each program it reports secret-dependent branches, micro-op cache
// footprint divergence between branch directions, MITE amplifiers on
// secret paths, and transient-execution gadgets — the static
// counterpart of the attacks the simulator demonstrates dynamically.
//
// Usage:
//
//	uoplint                  lint the victim corpus, human-readable
//	uoplint -json            machine-readable findings
//	uoplint -fixture pci-vpd lint one fixture
//	uoplint -severity error  keep only error-level findings
//	uoplint -fail-on warning exit 1 when findings at/above a severity exist
//	uoplint -checkers a,b    run only the named checkers (default all)
//	uoplint -random 20       also lint 20 random programs
//	uoplint -profile zen     lint under a registered front-end profile
//	uoplint -selftest        assert the canonical expectations (CI gate)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/profile"
	"deaduops/internal/ref"
	"deaduops/internal/staticlint"
	"deaduops/internal/victim"
)

// programReport is the JSON wire form for one linted program. Profile
// names the front-end profile the program was linted under; it is
// omitted for the default profile so the historical golden files stay
// byte-stable.
type programReport struct {
	Program     string               `json:"program"`
	Description string               `json:"description,omitempty"`
	Profile     string               `json:"profile,omitempty"`
	Findings    []staticlint.Finding `json:"findings"`
	// Resolved and Precision carry the indirect-target resolution's
	// output: the CALLI/JMPI sites proven complete and the program's
	// havoc-rate metrics. Both are omitted for programs with no
	// indirect control flow, keeping the historical goldens byte-stable.
	Resolved  []staticlint.ResolvedSite `json:"resolved_targets,omitempty"`
	Precision *staticlint.Precision     `json:"precision,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uoplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		asJSON   = fs.Bool("json", false, "emit findings as JSON")
		minSev   = fs.String("severity", "info", "minimum severity to report (info|warning|error)")
		fixture  = fs.String("fixture", "", "lint only the named fixture")
		random   = fs.Int("random", 0, "also lint this many randomly generated programs")
		selftest = fs.Bool("selftest", false, "assert canonical victim expectations and exit nonzero on mismatch")
		failOn   = fs.String("fail-on", "", "exit 1 when findings at/above this severity exist (info|warning|error)")
		checkers = fs.String("checkers", "", "comma-separated checker names to run (default: all)")
		profName = fs.String("profile", profile.Default().Name,
			"front-end profile to lint under ("+strings.Join(profile.Names(), "|")+")")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	min, err := staticlint.ParseSeverity(*minSev)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// gate is the CI threshold: negative when -fail-on is unset.
	gate := staticlint.Severity(-1)
	if *failOn != "" {
		if gate, err = staticlint.ParseSeverity(*failOn); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	prof, err := profile.Get(*profName)
	if err != nil {
		fmt.Fprintln(stderr, "uoplint:", err)
		return 2
	}
	// Default-profile reports keep an empty profile tag so the committed
	// golden files predate the flag byte for byte.
	profTag := ""
	if prof.Name != profile.Default().Name {
		profTag = prof.Name
	}

	lay := victim.DefaultLayout()
	cfg := staticlint.ConfigForProfile(prof)
	if *checkers != "" {
		var names []string
		for _, n := range strings.Split(*checkers, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		sel, err := staticlint.SelectCheckers(names)
		if err != nil {
			fmt.Fprintln(stderr, "uoplint:", err)
			return 2
		}
		cfg.Checkers = sel
	}
	spec := victimSpec(lay)

	// The -fail-on gate is evaluated against every finding the analysis
	// produces, BEFORE the -severity display filter: the exit code is a
	// CI contract and must not depend on what the report chose to show
	// (`-severity error -fail-on warning` still fails on warnings).
	gateTripped := false
	lint := func(r *staticlint.Report) *staticlint.Report {
		if gate >= 0 {
			for _, f := range r.Findings {
				if f.Severity >= gate {
					gateTripped = true
				}
			}
		}
		return r.Filter(min)
	}

	var reports []programReport
	matched := false
	for _, fx := range victim.Fixtures(lay) {
		if *fixture != "" && fx.Name != *fixture {
			continue
		}
		matched = true
		r := lint(staticlint.Lint(fx.Prog, spec, cfg))
		reports = append(reports, programReport{
			Program:     fx.Name,
			Description: fx.Description,
			Profile:     profTag,
			Findings:    r.Findings,
			Resolved:    r.Resolved,
			Precision:   r.Precision,
		})
	}
	// The codegen-emitted attack probes are linted alongside the victim
	// fixtures: tigers and zebras carry no secrets, so a finding on one
	// would be a checker false positive — the selftest pins them clean.
	probes, err := attackPrograms()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	for _, ap := range probes {
		if *fixture != "" && ap.name != *fixture {
			continue
		}
		matched = true
		r := lint(staticlint.Lint(ap.prog, staticlint.Spec{}, cfg))
		reports = append(reports, programReport{
			Program:     ap.name,
			Description: ap.desc,
			Profile:     profTag,
			Findings:    r.Findings,
			Resolved:    r.Resolved,
			Precision:   r.Precision,
		})
	}
	if *fixture != "" && !matched {
		fmt.Fprintf(stderr, "uoplint: unknown fixture %q\n", *fixture)
		return 2
	}

	// Random programs carry no declared secrets; only the transient
	// gadget checkers can fire on them.
	genCfg := ref.DefaultGenConfig()
	for seed := 1; seed <= *random; seed++ {
		p, err := ref.Generate(uint64(seed), genCfg)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		r := lint(staticlint.Lint(p, staticlint.Spec{}, cfg))
		reports = append(reports, programReport{
			Program:   fmt.Sprintf("random-%d", seed),
			Profile:   profTag,
			Findings:  r.Findings,
			Resolved:  r.Resolved,
			Precision: r.Precision,
		})
	}

	// The -fail-on gate: a clean run exits 0, any finding at or above
	// the threshold (display-filtered or not) turns the exit code into 1
	// after the full report is emitted — the shape CI pipelines consume.
	exit := 0
	if gateTripped {
		exit = 1
	}

	if *selftest {
		if msgs := selfTest(reports, prof); len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Fprintf(stderr, "uoplint: selftest: %s\n", m)
			}
			return 1
		}
		if *asJSON {
			// -selftest -json emits the asserted reports (the CI
			// artifact form) instead of the one-line status.
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(reports); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			return exit
		}
		fmt.Fprintln(stdout, "uoplint: selftest ok")
		return exit
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if *fixture != "" && len(reports) == 1 {
			// Single-fixture mode emits the bare report object (the
			// golden-file form).
			if err := enc.Encode(reports[0]); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		} else if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return exit
	}

	total := 0
	for _, pr := range reports {
		fmt.Fprintf(stdout, "== %s", pr.Program)
		if pr.Description != "" {
			fmt.Fprintf(stdout, " — %s", pr.Description)
		}
		fmt.Fprintln(stdout)
		if len(pr.Findings) == 0 {
			fmt.Fprintln(stdout, "  no findings")
			continue
		}
		for _, f := range pr.Findings {
			fmt.Fprintf(stdout, "  %s\n", f)
		}
		if p := pr.Precision; p != nil {
			fmt.Fprintf(stdout, "  indirect control flow: %d site(s), %d resolved, havoc rate %.2f (was %.2f)\n",
				p.IndirectSites, p.ResolvedSites, p.HavocRate, p.HavocRateBefore)
		}
		total += len(pr.Findings)
	}
	fmt.Fprintf(stdout, "\n%d findings across %d programs\n", total, len(reports))
	return exit
}

// attackProgram is one codegen-emitted probe routine to lint.
type attackProgram struct {
	name, desc string
	prog       *asm.Program
}

// attackPrograms builds the three §IV probe flavours — tiger, fast
// tiger, zebra — exactly as the dynamic attack code does
// (internal/attack on internal/codegen chains). They hold no secrets
// and no secret-dependent control flow, so every checker must stay
// silent on them; CI asserts that through the selftest.
func attackPrograms() ([]attackProgram, error) {
	g := attack.DefaultGeometry()
	specs := []struct {
		name, desc string
		build      func() (*attack.Routine, error)
	}{
		{"attack-tiger", "codegen tiger probe (LCP-padded prime+probe receiver)",
			func() (*attack.Routine, error) { return attack.Build(attack.Tiger(0x40000, g, "tiger")) }},
		{"attack-fasttiger", "codegen fast-tiger probe (dense low-latency receiver)",
			func() (*attack.Routine, error) { return attack.Build(attack.FastTiger(0x40000, g, "fasttiger")) }},
		{"attack-zebra", "codegen zebra probe (alternate-set occupancy pattern)",
			func() (*attack.Routine, error) { return attack.Build(attack.Zebra(0x40000, g, "zebra")) }},
	}
	var out []attackProgram
	for _, s := range specs {
		r, err := s.build()
		if err != nil {
			return nil, fmt.Errorf("uoplint: building %s: %w", s.name, err)
		}
		out = append(out, attackProgram{name: s.name, desc: s.desc, prog: r.Prog})
	}
	return out, nil
}

// victimSpec declares the secrets of the shared victim layout: the
// kernel secret array and the second secret word. The ABI constant
// "R2 = 0" is deliberately NOT declared — uoplint models the victim as
// callable with arbitrary registers, so loads whose address depends on
// an unresolved register are reported at may confidence.
func victimSpec(l victim.Layout) staticlint.Spec {
	return staticlint.Spec{
		SecretRanges: []staticlint.MemRange{
			{Start: l.SecretBase, End: l.SecretBase + uint64(l.ArrayLen)},
			{Start: l.Secret2Addr, End: l.Secret2Addr + 8},
		},
	}
}

// selfTest checks the canonical expectations the paper's examples fix:
// the pci_vpd-style victim must exhibit both the secret-dependent
// branch and micro-op cache footprint divergence (it is the §VI-A
// gadget), while the plain Listing-4 bounds-check victim has a
// secret-dependent branch but no Spectre-v1 double-load. The
// expectations fork on the profile's capabilities: a decoder with no
// alignment penalty cannot raise jump-alignment findings, and with the
// DSB disabled the footprint-divergence channel vanishes while the
// purely decode-side findings survive.
func selfTest(reports []programReport, prof profile.Profile) []string {
	var msgs []string
	hasDSB := prof.HasDSB()
	hasAlign := prof.Decode.JccAlignPenalty > 0
	has := func(name, checker string) bool {
		for _, pr := range reports {
			if pr.Program != name {
				continue
			}
			for _, f := range pr.Findings {
				if f.Checker == checker {
					return true
				}
			}
		}
		return false
	}
	expect := func(name, checker string, want bool) {
		if has(name, checker) != want {
			verb := "missing"
			if !want {
				verb = "unexpected"
			}
			msgs = append(msgs, fmt.Sprintf("%s: %s %s finding", name, verb, checker))
		}
	}
	expect("pci-vpd", "secret-dependent-branch", true)
	expect("pci-vpd", "dsb-footprint-divergence", hasDSB)
	expect("pci-vpd", "uop-cache-gadget", true)
	expect("bounds-check", "secret-dependent-branch", true)
	expect("bounds-check", "spectre-v1-gadget", false)
	expect("indirect-call", "secret-dependent-branch", true)
	// The resolvable-dispatch victim: its secret branch lives behind a
	// program-built function-pointer table, so the findings below exist
	// only because the value-set resolution proves the complete handler
	// set and joins the summaries across the call — a havoc fallback
	// would smear the taint but lose the callee's footprint divergence
	// and the call chain into the handler.
	expect("fn-dispatch", "secret-dependent-branch", true)
	expect("fn-dispatch", "dsb-footprint-divergence", hasDSB)
	// Precision contract: fn-dispatch resolves its single dispatch site
	// (havoc rate 0 against a 1.0 before-rate), while Listing 5's
	// secret-indexed dispatch through runtime data memory must stay a
	// havoc site — resolution is a precision upgrade, not a soundness
	// trade.
	precision := func(name string) *staticlint.Precision {
		for _, pr := range reports {
			if pr.Program == name {
				return pr.Precision
			}
		}
		return nil
	}
	if p := precision("fn-dispatch"); p == nil || p.IndirectSites != 1 || p.ResolvedSites != 1 || p.HavocRate != 0 {
		msgs = append(msgs, fmt.Sprintf("fn-dispatch: precision %+v, want its one dispatch site resolved", p))
	}
	if p := precision("indirect-call"); p == nil || p.IndirectSites != 1 || p.ResolvedSites != 0 || p.HavocRate != 1 {
		msgs = append(msgs, fmt.Sprintf("indirect-call: precision %+v, want its data-dependent dispatch havocked", p))
	}
	// The front-end channel fixtures pin the two new checkers against
	// each other: the alignment victim leaks only through jump
	// alignment (both paths stay µop-cache resident), the switch victim
	// only through its warm DSB→MITE re-entry (no jump on either path
	// straddles a window).
	expect("jcc-align", "secret-dependent-jump-alignment", hasAlign)
	expect("jcc-align", "dsb-mite-switch", false)
	// The dsb-switch fixture packs 22 µops into its taken-path region —
	// past Skylake's 18-µop cacheability cap but inside Zen's 24 — so
	// the warm DSB→MITE re-entry it leaks through exists only on
	// profiles whose cap actually rejects the region.
	expect("dsb-switch", "dsb-mite-switch", hasDSB && prof.UopCapLine() < 22)
	expect("dsb-switch", "secret-dependent-jump-alignment", false)
	// The interprocedural victim: both callee branches (register-passed
	// and spill-passed secret) must be flagged, priced, and census'd,
	// and at least one finding must carry the call chain that names the
	// callee — the output contract the interprocedural layer adds.
	expect("callee-branch", "secret-dependent-branch", true)
	expect("callee-branch", "dsb-footprint-divergence", hasDSB)
	expect("callee-branch", "uop-cache-gadget", true)
	hasChainTo := func(name, callee string) bool {
		for _, pr := range reports {
			if pr.Program != name {
				continue
			}
			for _, f := range pr.Findings {
				for _, fr := range f.CallChain {
					if fr.CalleeLabel == callee {
						return true
					}
				}
			}
		}
		return false
	}
	for _, callee := range []string{"cb_reg", "cb_mem"} {
		if !hasChainTo("callee-branch", callee) {
			msgs = append(msgs, fmt.Sprintf("callee-branch: no finding carries a call chain into %s", callee))
		}
	}
	// The resolvable dispatch's findings must trace their chain through
	// the resolved indirect frame into the handler.
	if !hasChainTo("fn-dispatch", "fd_handler") {
		msgs = append(msgs, "fn-dispatch: no finding carries a call chain through the resolved dispatch into fd_handler")
	}
	// The sanitizing callee kills the secret before the caller
	// branches; any finding here means callee kill sets are ignored.
	for _, pr := range reports {
		if pr.Program != "callee-kill" {
			continue
		}
		for _, f := range pr.Findings {
			msgs = append(msgs, fmt.Sprintf("callee-kill: unexpected %s finding (callee sanitizes the secret)", f.Checker))
		}
	}
	// The codegen-emitted probe routines carry no secrets: any finding
	// on them is a false positive.
	for _, probe := range []string{"attack-tiger", "attack-fasttiger", "attack-zebra"} {
		seen := false
		for _, pr := range reports {
			if pr.Program != probe {
				continue
			}
			seen = true
			for _, f := range pr.Findings {
				msgs = append(msgs, fmt.Sprintf("%s: unexpected %s finding (probes hold no secrets)", probe, f.Checker))
			}
		}
		if !seen {
			msgs = append(msgs, fmt.Sprintf("%s: probe program missing from lint corpus", probe))
		}
	}
	// Every divergence finding must carry the quantifier's path costs:
	// positive cold cycles per direction and a warm cost not exceeding
	// the cold one (the refill delta the receiver probes for).
	for _, pr := range reports {
		for _, f := range pr.Findings {
			if f.Checker != "dsb-footprint-divergence" {
				continue
			}
			if f.TakenCost == nil || f.FallCost == nil {
				msgs = append(msgs, fmt.Sprintf("%s: divergence finding at %#x lacks path costs", pr.Program, f.Addr))
				continue
			}
			for dir, c := range map[string]*staticlint.PathCost{"taken": f.TakenCost, "fallthrough": f.FallCost} {
				if c.ColdCycles <= 0 || c.WarmCycles <= 0 || c.ColdCycles < c.WarmCycles {
					msgs = append(msgs, fmt.Sprintf("%s: divergence at %#x has implausible %s cost (warm %d, cold %d)",
						pr.Program, f.Addr, dir, c.WarmCycles, c.ColdCycles))
				}
			}
			// ... and the receiver model's probe histogram: the
			// attacker-observed prime+probe timings the finding predicts.
			h := f.Probe
			if h == nil {
				msgs = append(msgs, fmt.Sprintf("%s: divergence finding at %#x lacks a probe histogram", pr.Program, f.Addr))
				continue
			}
			if h.HitCycles <= 0 || h.Taken.Cycles < h.HitCycles || h.Fall.Cycles < h.HitCycles {
				msgs = append(msgs, fmt.Sprintf("%s: divergence at %#x has implausible probe cycles (hit %d, taken %d, fallthrough %d)",
					pr.Program, f.Addr, h.HitCycles, h.Taken.Cycles, h.Fall.Cycles))
			}
			if h.SeparationFloor != staticlint.ProbeSeparationFloor {
				msgs = append(msgs, fmt.Sprintf("%s: divergence at %#x states separation floor %.2f, want %.2f",
					pr.Program, f.Addr, h.SeparationFloor, staticlint.ProbeSeparationFloor))
			}
			if h.Distinguishable != (h.SeparationMargin >= h.SeparationFloor) {
				msgs = append(msgs, fmt.Sprintf("%s: divergence at %#x margin %.2f inconsistent with distinguishable=%v",
					pr.Program, f.Addr, h.SeparationMargin, h.Distinguishable))
			}
		}
	}
	return msgs
}
