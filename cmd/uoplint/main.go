// Command uoplint runs the static front-end leakage analyzer over
// guest programs: the canonical victims shipped with this repository
// and, optionally, a population of randomly generated programs. For
// each program it reports secret-dependent branches, micro-op cache
// footprint divergence between branch directions, MITE amplifiers on
// secret paths, and transient-execution gadgets — the static
// counterpart of the attacks the simulator demonstrates dynamically.
//
// Usage:
//
//	uoplint                  lint the victim corpus, human-readable
//	uoplint -json            machine-readable findings
//	uoplint -fixture pci-vpd lint one fixture
//	uoplint -severity error  keep only error-level findings
//	uoplint -fail-on warning exit 1 when findings at/above a severity exist
//	uoplint -checkers a,b    run only the named checkers (default all)
//	uoplint -random 20       also lint 20 random programs
//	uoplint -workers 4       dispatch the batch over 4 lint workers
//	uoplint -profile zen     lint under a registered front-end profile
//	uoplint -selftest        assert the canonical expectations (CI gate)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"deaduops/internal/auditd"
	"deaduops/internal/parsweep"
	"deaduops/internal/profile"
	"deaduops/internal/staticlint"
	"deaduops/internal/victim"
)

// programReport is the JSON wire form for one linted program, shared
// with the audit service (internal/auditd) so a CLI run and a daemon
// response are interchangeable artifacts.
type programReport = auditd.ProgramReport

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uoplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		asJSON   = fs.Bool("json", false, "emit findings as JSON")
		minSev   = fs.String("severity", "info", "minimum severity to report (info|warning|error)")
		fixture  = fs.String("fixture", "", "lint only the named fixture")
		random   = fs.Int("random", 0, "also lint this many randomly generated programs")
		selftest = fs.Bool("selftest", false, "assert canonical victim expectations and exit nonzero on mismatch")
		failOn   = fs.String("fail-on", "", "exit 1 when findings at/above this severity exist (info|warning|error)")
		checkers = fs.String("checkers", "", "comma-separated checker names to run (default: all)")
		workers  = fs.Int("workers", 0, "parallel lint workers (0 = GOMAXPROCS, 1 = sequential)")
		profName = fs.String("profile", profile.Default().Name,
			"front-end profile to lint under ("+strings.Join(profile.Names(), "|")+")")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	min, err := staticlint.ParseSeverity(*minSev)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// gate is the CI threshold: negative when -fail-on is unset.
	gate := staticlint.Severity(-1)
	if *failOn != "" {
		if gate, err = staticlint.ParseSeverity(*failOn); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	prof, err := profile.Get(*profName)
	if err != nil {
		fmt.Fprintln(stderr, "uoplint:", err)
		return 2
	}
	// Default-profile reports keep an empty profile tag so the committed
	// golden files predate the flag byte for byte.
	profTag := ""
	if prof.Name != profile.Default().Name {
		profTag = prof.Name
	}

	lay := victim.DefaultLayout()
	cfg := staticlint.ConfigForProfile(prof)
	if *checkers != "" {
		var names []string
		for _, n := range strings.Split(*checkers, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		sel, err := staticlint.SelectCheckers(names)
		if err != nil {
			fmt.Fprintln(stderr, "uoplint:", err)
			return 2
		}
		cfg.Checkers = sel
	}
	// The corpus is shared with the audit service: victim fixtures under
	// the victim spec, then the codegen-emitted attack probes (which
	// carry no secrets — a finding on one would be a checker false
	// positive the selftest pins clean).
	corpus, err := auditd.Corpus(lay)
	if err != nil {
		fmt.Fprintln(stderr, "uoplint:", err)
		return 1
	}
	var programs []auditd.Program
	matched := false
	for _, p := range corpus {
		if *fixture != "" && p.Name != *fixture {
			continue
		}
		matched = true
		programs = append(programs, p)
	}
	if *fixture != "" && !matched {
		fmt.Fprintf(stderr, "uoplint: unknown fixture %q\n", *fixture)
		return 2
	}
	// Random programs carry no declared secrets; only the transient
	// gadget checkers can fire on them.
	if *random > 0 {
		randoms, err := auditd.RandomPrograms(*random)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		programs = append(programs, randoms...)
	}

	// The batch is dispatched over a worker pool with one shared
	// incremental cache, so programs with common functions (the random
	// population especially) reuse each other's summaries. parsweep.Map
	// returns results in input order, making the report byte-identical
	// at any worker count.
	//
	// The -fail-on gate is evaluated against every finding the analysis
	// produces, BEFORE the -severity display filter: the exit code is a
	// CI contract and must not depend on what the report chose to show
	// (`-severity error -fail-on warning` still fails on warnings).
	cache := staticlint.NewCache()
	type lintResult struct {
		report  programReport
		tripped bool
	}
	results, err := parsweep.Map(parsweep.Options{Workers: *workers}, len(programs),
		func(i int) (lintResult, error) {
			p := programs[i]
			r, _ := staticlint.LintCached(p.Prog, p.Spec, cfg, cache)
			tripped := false
			if gate >= 0 {
				for _, f := range r.Findings {
					if f.Severity >= gate {
						tripped = true
					}
				}
			}
			r = r.Filter(min)
			return lintResult{
				report: programReport{
					Program:     p.Name,
					Description: p.Description,
					Profile:     profTag,
					Findings:    r.Findings,
					Resolved:    r.Resolved,
					Precision:   r.Precision,
				},
				tripped: tripped,
			}, nil
		})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	gateTripped := false
	reports := make([]programReport, len(results))
	for i, res := range results {
		reports[i] = res.report
		gateTripped = gateTripped || res.tripped
	}

	// The -fail-on gate: a clean run exits 0, any finding at or above
	// the threshold (display-filtered or not) turns the exit code into 1
	// after the full report is emitted — the shape CI pipelines consume.
	exit := 0
	if gateTripped {
		exit = 1
	}

	if *selftest {
		if msgs := selfTest(reports, prof); len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Fprintf(stderr, "uoplint: selftest: %s\n", m)
			}
			return 1
		}
		if *asJSON {
			// -selftest -json emits the asserted reports (the CI
			// artifact form) instead of the one-line status.
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(reports); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			return exit
		}
		fmt.Fprintln(stdout, "uoplint: selftest ok")
		return exit
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if *fixture != "" && len(reports) == 1 {
			// Single-fixture mode emits the bare report object (the
			// golden-file form).
			if err := enc.Encode(reports[0]); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		} else if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return exit
	}

	total := 0
	for _, pr := range reports {
		fmt.Fprintf(stdout, "== %s", pr.Program)
		if pr.Description != "" {
			fmt.Fprintf(stdout, " — %s", pr.Description)
		}
		fmt.Fprintln(stdout)
		if len(pr.Findings) == 0 {
			fmt.Fprintln(stdout, "  no findings")
			continue
		}
		for _, f := range pr.Findings {
			fmt.Fprintf(stdout, "  %s\n", f)
		}
		if p := pr.Precision; p != nil {
			fmt.Fprintf(stdout, "  indirect control flow: %d site(s), %d resolved, havoc rate %.2f (was %.2f)\n",
				p.IndirectSites, p.ResolvedSites, p.HavocRate, p.HavocRateBefore)
		}
		total += len(pr.Findings)
	}
	fmt.Fprintf(stdout, "\n%d findings across %d programs\n", total, len(reports))
	return exit
}

// selfTest checks the canonical expectations the paper's examples fix:
// the pci_vpd-style victim must exhibit both the secret-dependent
// branch and micro-op cache footprint divergence (it is the §VI-A
// gadget), while the plain Listing-4 bounds-check victim has a
// secret-dependent branch but no Spectre-v1 double-load. The
// expectations fork on the profile's capabilities: a decoder with no
// alignment penalty cannot raise jump-alignment findings, and with the
// DSB disabled the footprint-divergence channel vanishes while the
// purely decode-side findings survive.
func selfTest(reports []programReport, prof profile.Profile) []string {
	var msgs []string
	hasDSB := prof.HasDSB()
	hasAlign := prof.Decode.JccAlignPenalty > 0
	has := func(name, checker string) bool {
		for _, pr := range reports {
			if pr.Program != name {
				continue
			}
			for _, f := range pr.Findings {
				if f.Checker == checker {
					return true
				}
			}
		}
		return false
	}
	expect := func(name, checker string, want bool) {
		if has(name, checker) != want {
			verb := "missing"
			if !want {
				verb = "unexpected"
			}
			msgs = append(msgs, fmt.Sprintf("%s: %s %s finding", name, verb, checker))
		}
	}
	expect("pci-vpd", "secret-dependent-branch", true)
	expect("pci-vpd", "dsb-footprint-divergence", hasDSB)
	expect("pci-vpd", "uop-cache-gadget", true)
	expect("bounds-check", "secret-dependent-branch", true)
	expect("bounds-check", "spectre-v1-gadget", false)
	expect("indirect-call", "secret-dependent-branch", true)
	// The resolvable-dispatch victim: its secret branch lives behind a
	// program-built function-pointer table, so the findings below exist
	// only because the value-set resolution proves the complete handler
	// set and joins the summaries across the call — a havoc fallback
	// would smear the taint but lose the callee's footprint divergence
	// and the call chain into the handler.
	expect("fn-dispatch", "secret-dependent-branch", true)
	expect("fn-dispatch", "dsb-footprint-divergence", hasDSB)
	// Precision contract: fn-dispatch resolves its single dispatch site
	// (havoc rate 0 against a 1.0 before-rate), while Listing 5's
	// secret-indexed dispatch through runtime data memory must stay a
	// havoc site — resolution is a precision upgrade, not a soundness
	// trade.
	precision := func(name string) *staticlint.Precision {
		for _, pr := range reports {
			if pr.Program == name {
				return pr.Precision
			}
		}
		return nil
	}
	if p := precision("fn-dispatch"); p == nil || p.IndirectSites != 1 || p.ResolvedSites != 1 || p.HavocRate != 0 {
		msgs = append(msgs, fmt.Sprintf("fn-dispatch: precision %+v, want its one dispatch site resolved", p))
	}
	if p := precision("indirect-call"); p == nil || p.IndirectSites != 1 || p.ResolvedSites != 0 || p.HavocRate != 1 {
		msgs = append(msgs, fmt.Sprintf("indirect-call: precision %+v, want its data-dependent dispatch havocked", p))
	}
	// The front-end channel fixtures pin the two new checkers against
	// each other: the alignment victim leaks only through jump
	// alignment (both paths stay µop-cache resident), the switch victim
	// only through its warm DSB→MITE re-entry (no jump on either path
	// straddles a window).
	expect("jcc-align", "secret-dependent-jump-alignment", hasAlign)
	expect("jcc-align", "dsb-mite-switch", false)
	// The dsb-switch fixture packs 22 µops into its taken-path region —
	// past Skylake's 18-µop cacheability cap but inside Zen's 24 — so
	// the warm DSB→MITE re-entry it leaks through exists only on
	// profiles whose cap actually rejects the region.
	expect("dsb-switch", "dsb-mite-switch", hasDSB && prof.UopCapLine() < 22)
	expect("dsb-switch", "secret-dependent-jump-alignment", false)
	// The interprocedural victim: both callee branches (register-passed
	// and spill-passed secret) must be flagged, priced, and census'd,
	// and at least one finding must carry the call chain that names the
	// callee — the output contract the interprocedural layer adds.
	expect("callee-branch", "secret-dependent-branch", true)
	expect("callee-branch", "dsb-footprint-divergence", hasDSB)
	expect("callee-branch", "uop-cache-gadget", true)
	hasChainTo := func(name, callee string) bool {
		for _, pr := range reports {
			if pr.Program != name {
				continue
			}
			for _, f := range pr.Findings {
				for _, fr := range f.CallChain {
					if fr.CalleeLabel == callee {
						return true
					}
				}
			}
		}
		return false
	}
	for _, callee := range []string{"cb_reg", "cb_mem"} {
		if !hasChainTo("callee-branch", callee) {
			msgs = append(msgs, fmt.Sprintf("callee-branch: no finding carries a call chain into %s", callee))
		}
	}
	// The resolvable dispatch's findings must trace their chain through
	// the resolved indirect frame into the handler.
	if !hasChainTo("fn-dispatch", "fd_handler") {
		msgs = append(msgs, "fn-dispatch: no finding carries a call chain through the resolved dispatch into fd_handler")
	}
	// The sanitizing callee kills the secret before the caller
	// branches; any finding here means callee kill sets are ignored.
	for _, pr := range reports {
		if pr.Program != "callee-kill" {
			continue
		}
		for _, f := range pr.Findings {
			msgs = append(msgs, fmt.Sprintf("callee-kill: unexpected %s finding (callee sanitizes the secret)", f.Checker))
		}
	}
	// The codegen-emitted probe routines carry no secrets: any finding
	// on them is a false positive.
	for _, probe := range []string{"attack-tiger", "attack-fasttiger", "attack-zebra"} {
		seen := false
		for _, pr := range reports {
			if pr.Program != probe {
				continue
			}
			seen = true
			for _, f := range pr.Findings {
				msgs = append(msgs, fmt.Sprintf("%s: unexpected %s finding (probes hold no secrets)", probe, f.Checker))
			}
		}
		if !seen {
			msgs = append(msgs, fmt.Sprintf("%s: probe program missing from lint corpus", probe))
		}
	}
	// Every divergence finding must carry the quantifier's path costs:
	// positive cold cycles per direction and a warm cost not exceeding
	// the cold one (the refill delta the receiver probes for).
	for _, pr := range reports {
		for _, f := range pr.Findings {
			if f.Checker != "dsb-footprint-divergence" {
				continue
			}
			if f.TakenCost == nil || f.FallCost == nil {
				msgs = append(msgs, fmt.Sprintf("%s: divergence finding at %#x lacks path costs", pr.Program, f.Addr))
				continue
			}
			for dir, c := range map[string]*staticlint.PathCost{"taken": f.TakenCost, "fallthrough": f.FallCost} {
				if c.ColdCycles <= 0 || c.WarmCycles <= 0 || c.ColdCycles < c.WarmCycles {
					msgs = append(msgs, fmt.Sprintf("%s: divergence at %#x has implausible %s cost (warm %d, cold %d)",
						pr.Program, f.Addr, dir, c.WarmCycles, c.ColdCycles))
				}
			}
			// ... and the receiver model's probe histogram: the
			// attacker-observed prime+probe timings the finding predicts.
			h := f.Probe
			if h == nil {
				msgs = append(msgs, fmt.Sprintf("%s: divergence finding at %#x lacks a probe histogram", pr.Program, f.Addr))
				continue
			}
			if h.HitCycles <= 0 || h.Taken.Cycles < h.HitCycles || h.Fall.Cycles < h.HitCycles {
				msgs = append(msgs, fmt.Sprintf("%s: divergence at %#x has implausible probe cycles (hit %d, taken %d, fallthrough %d)",
					pr.Program, f.Addr, h.HitCycles, h.Taken.Cycles, h.Fall.Cycles))
			}
			if h.SeparationFloor != staticlint.ProbeSeparationFloor {
				msgs = append(msgs, fmt.Sprintf("%s: divergence at %#x states separation floor %.2f, want %.2f",
					pr.Program, f.Addr, h.SeparationFloor, staticlint.ProbeSeparationFloor))
			}
			if h.Distinguishable != (h.SeparationMargin >= h.SeparationFloor) {
				msgs = append(msgs, fmt.Sprintf("%s: divergence at %#x margin %.2f inconsistent with distinguishable=%v",
					pr.Program, f.Addr, h.SeparationMargin, h.Distinguishable))
			}
		}
	}
	return msgs
}
