package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runJSON invokes the CLI in single-fixture JSON mode.
func runJSON(t *testing.T, fixture string) []byte {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-fixture", fixture}, &out, &errb); code != 0 {
		t.Fatalf("uoplint exited %d: %s", code, errb.String())
	}
	return out.Bytes()
}

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenPCIVPD(t *testing.T) {
	got := runJSON(t, "pci-vpd")
	goldenCompare(t, "pci-vpd.json", got)

	// The golden must witness the two paper-level findings: the victim's
	// secret-dependent tag branch and its micro-op cache footprint
	// divergence.
	var pr struct {
		Findings []struct {
			Checker string `json:"checker"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(got, &pr); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, f := range pr.Findings {
		seen[f.Checker] = true
	}
	for _, want := range []string{"secret-dependent-branch", "dsb-footprint-divergence", "uop-cache-gadget"} {
		if !seen[want] {
			t.Errorf("pci-vpd golden lacks a %s finding", want)
		}
	}

	// The divergence findings must carry the leakage quantifier's
	// numbers — per-direction path costs and the signed probe delta —
	// and the receiver model's probe histogram: the attacker-observed
	// prime+probe timings, decision cut, and separation margin.
	for _, field := range []string{
		`"taken_cost"`, `"fallthrough_cost"`,
		`"refill_delta_cycles"`, `"predicted_probe_delta_cycles"`,
		`"probe_histogram"`, `"predicted_hit_cycles"`,
		`"direction_cut"`, `"separation_margin"`, `"distinguishable"`,
	} {
		if !bytes.Contains(got, []byte(field)) {
			t.Errorf("pci-vpd golden lacks quantifier field %s", field)
		}
	}

	// The histogram's margin verdict in the golden must be internally
	// coherent with the stated floor.
	var probed struct {
		Findings []struct {
			Checker string `json:"checker"`
			Probe   *struct {
				Hit             int     `json:"predicted_hit_cycles"`
				Margin          float64 `json:"separation_margin"`
				Floor           float64 `json:"separation_floor"`
				Distinguishable bool    `json:"distinguishable"`
			} `json:"probe_histogram"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(got, &probed); err != nil {
		t.Fatal(err)
	}
	for _, f := range probed.Findings {
		if f.Checker != "dsb-footprint-divergence" {
			continue
		}
		if f.Probe == nil {
			t.Error("pci-vpd divergence finding lacks probe_histogram")
			continue
		}
		if f.Probe.Hit <= 0 {
			t.Errorf("probe_histogram hit cycles %d not positive", f.Probe.Hit)
		}
		if f.Probe.Distinguishable != (f.Probe.Margin >= f.Probe.Floor) {
			t.Errorf("probe_histogram margin %.2f vs floor %.2f inconsistent with distinguishable=%v",
				f.Probe.Margin, f.Probe.Floor, f.Probe.Distinguishable)
		}
	}
}

// TestAttackProbesClean pins the codegen-emitted probe routines free of
// findings: tigers and zebras hold no secrets, so anything the linter
// reports on them is a false positive.
func TestAttackProbesClean(t *testing.T) {
	for _, name := range []string{"attack-tiger", "attack-fasttiger", "attack-zebra"} {
		got := runJSON(t, name)
		var pr struct {
			Findings []json.RawMessage `json:"findings"`
		}
		if err := json.Unmarshal(got, &pr); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(pr.Findings) != 0 {
			t.Errorf("%s: %d unexpected finding(s):\n%s", name, len(pr.Findings), got)
		}
	}
}

// TestSelftestJSON checks the CI artifact mode: -selftest -json runs
// the assertions and emits the full report set on success.
func TestSelftestJSON(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-selftest", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("selftest -json failed (%d): %s", code, errb.String())
	}
	var reports []struct {
		Program string `json:"program"`
	}
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("selftest -json output not JSON: %v", err)
	}
	names := map[string]bool{}
	for _, r := range reports {
		names[r.Program] = true
	}
	for _, want := range []string{"pci-vpd", "bounds-check", "attack-tiger", "attack-zebra"} {
		if !names[want] {
			t.Errorf("selftest -json output missing program %q", want)
		}
	}
}

func TestGoldenBoundsCheck(t *testing.T) {
	got := runJSON(t, "bounds-check")
	goldenCompare(t, "bounds-check.json", got)

	// Listing 4 alone: the bounds branch is secret-dependent (its length
	// load may alias the secrets), but there is no Spectre-v1 double
	// load — the census distinction the paper draws in §VI-A.
	var pr struct {
		Findings []struct {
			Checker string `json:"checker"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(got, &pr); err != nil {
		t.Fatal(err)
	}
	var hasBranch, hasSpectre bool
	for _, f := range pr.Findings {
		switch f.Checker {
		case "secret-dependent-branch":
			hasBranch = true
		case "spectre-v1-gadget":
			hasSpectre = true
		}
	}
	if !hasBranch {
		t.Error("bounds-check golden lacks the secret-dependent-branch finding")
	}
	if hasSpectre {
		t.Error("bounds-check golden wrongly contains a spectre-v1-gadget finding")
	}
}

// TestGoldenCalleeBranch pins the interprocedural victim: both callee
// branches (register-passed and spill-passed secret) must be flagged
// and their findings must carry the call chain naming the callee.
func TestGoldenCalleeBranch(t *testing.T) {
	got := runJSON(t, "callee-branch")
	goldenCompare(t, "callee-branch.json", got)

	var pr struct {
		Findings []struct {
			Checker   string `json:"checker"`
			CallChain []struct {
				CalleeLabel string `json:"callee_label"`
			} `json:"call_chain"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(got, &pr); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	chains := map[string]bool{}
	for _, f := range pr.Findings {
		seen[f.Checker] = true
		for _, fr := range f.CallChain {
			chains[fr.CalleeLabel] = true
		}
	}
	for _, want := range []string{"secret-dependent-branch", "dsb-footprint-divergence", "uop-cache-gadget"} {
		if !seen[want] {
			t.Errorf("callee-branch golden lacks a %s finding", want)
		}
	}
	for _, callee := range []string{"cb_reg", "cb_mem"} {
		if !chains[callee] {
			t.Errorf("callee-branch golden has no call chain into %s", callee)
		}
	}
	if !bytes.Contains(got, []byte(`"call_chain"`)) {
		t.Error("callee-branch golden lacks the call_chain field")
	}
}

// TestGoldenCalleeKill pins the false-positive gate: the callee zeroes
// the secret before the caller branches, so the report must be empty.
func TestGoldenCalleeKill(t *testing.T) {
	got := runJSON(t, "callee-kill")
	goldenCompare(t, "callee-kill.json", got)

	var pr struct {
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(got, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Findings) != 0 {
		t.Errorf("callee-kill: %d unexpected finding(s):\n%s", len(pr.Findings), got)
	}
}

func TestSelftestFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-selftest"}, &out, &errb); code != 0 {
		t.Fatalf("selftest failed (%d): %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "selftest ok") {
		t.Errorf("selftest output = %q", out.String())
	}
}

func TestSeverityFilter(t *testing.T) {
	var all, errOnly bytes.Buffer
	run([]string{"-json"}, &all, &bytes.Buffer{})
	run([]string{"-json", "-severity", "error"}, &errOnly, &bytes.Buffer{})
	if errOnly.Len() >= all.Len() {
		t.Errorf("error-only output (%d bytes) not smaller than full output (%d bytes)",
			errOnly.Len(), all.Len())
	}
	if strings.Contains(errOnly.String(), `"severity": "warning"`) {
		t.Error("severity filter leaked warning findings")
	}
}

func TestUnknownFixtureRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fixture", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unknown fixture exit = %d, want 2", code)
	}
}

// TestGoldenJccAlign pins the alignment-channel fixture: the
// jump-alignment checker must fire with its cycle-quantified delta in
// the JSON form.
func TestGoldenJccAlign(t *testing.T) {
	got := runJSON(t, "jcc-align")
	goldenCompare(t, "jcc-align.json", got)

	var pr struct {
		Findings []struct {
			Checker    string `json:"checker"`
			AlignDelta int    `json:"predicted_align_delta_cycles"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(got, &pr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range pr.Findings {
		if f.Checker == "secret-dependent-jump-alignment" {
			found = true
			if f.AlignDelta == 0 {
				t.Error("jump-alignment finding carries no predicted_align_delta_cycles")
			}
		}
		if f.Checker == "dsb-mite-switch" {
			t.Error("jcc-align golden wrongly contains a dsb-mite-switch finding")
		}
	}
	if !found {
		t.Error("jcc-align golden lacks the secret-dependent-jump-alignment finding")
	}
}

// TestGoldenDsbSwitch pins the switch-point fixture likewise.
func TestGoldenDsbSwitch(t *testing.T) {
	got := runJSON(t, "dsb-switch")
	goldenCompare(t, "dsb-switch.json", got)

	var pr struct {
		Findings []struct {
			Checker     string `json:"checker"`
			SwitchDelta int    `json:"predicted_switch_delta_cycles"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(got, &pr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range pr.Findings {
		if f.Checker == "dsb-mite-switch" {
			found = true
			if f.SwitchDelta == 0 {
				t.Error("switch finding carries no predicted_switch_delta_cycles")
			}
		}
		if f.Checker == "secret-dependent-jump-alignment" {
			t.Error("dsb-switch golden wrongly contains a jump-alignment finding")
		}
	}
	if !found {
		t.Error("dsb-switch golden lacks the dsb-mite-switch finding")
	}
}

// TestProfileFlagRejectsUnknown pins the -profile usage contract: an
// unregistered profile name is a usage error naming the registry.
func TestProfileFlagRejectsUnknown(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-profile", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unknown profile exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown profile") {
		t.Errorf("unknown-profile error = %q", errb.String())
	}
	if !strings.Contains(errb.String(), "skylake") || !strings.Contains(errb.String(), "zen") {
		t.Errorf("unknown-profile error does not list the registry: %q", errb.String())
	}
}

// TestSelftestZen runs the capability-gated selftest under the Zen
// profile and requires the JSON artifact to name the profile on every
// report.
func TestSelftestZen(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-selftest", "-json", "-profile", "zen"}, &out, &errb); code != 0 {
		t.Fatalf("selftest -json -profile zen failed (%d): %s", code, errb.String())
	}
	var reports []struct {
		Program string `json:"program"`
		Profile string `json:"profile"`
	}
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("selftest -json output not JSON: %v", err)
	}
	if len(reports) == 0 {
		t.Fatal("selftest -json emitted no reports")
	}
	for _, r := range reports {
		if r.Profile != "zen" {
			t.Errorf("%s: report profile %q, want zen", r.Program, r.Profile)
		}
	}
}

// TestGoldenJccAlignZen pins the alignment fixture under the Zen
// profile: AMD's decoder prices no predecode straddle penalty, so the
// jump-alignment finding present in the default golden must be absent
// here — the microarchitectural fork the profile matrix exists to
// surface — while the report carries the profile tag.
func TestGoldenJccAlignZen(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-fixture", "jcc-align", "-profile", "zen"}, &out, &errb); code != 0 {
		t.Fatalf("uoplint exited %d: %s", code, errb.String())
	}
	got := out.Bytes()
	goldenCompare(t, "jcc-align.zen.json", got)

	var pr struct {
		Profile  string `json:"profile"`
		Findings []struct {
			Checker string `json:"checker"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(got, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Profile != "zen" {
		t.Errorf("report profile %q, want zen", pr.Profile)
	}
	for _, f := range pr.Findings {
		if f.Checker == "secret-dependent-jump-alignment" {
			t.Error("jump-alignment finding fired under the penalty-free zen decoder")
		}
	}
}

// TestGoldenFnDispatch pins the resolvable-dispatch fixture: the
// value-set pass must resolve its table-loaded call, the report must
// carry the resolved target set and precision metrics, and the
// divergence finding must reach fd_handler through the resolved frame
// — the end-to-end contract the havoc-only linter could not state.
func TestGoldenFnDispatch(t *testing.T) {
	got := runJSON(t, "fn-dispatch")
	goldenCompare(t, "fn-dispatch.json", got)

	var pr struct {
		Resolved []struct {
			Kind    string   `json:"kind"`
			Targets []string `json:"targets"`
		} `json:"resolved_targets"`
		Precision *struct {
			IndirectSites int     `json:"indirect_sites"`
			ResolvedSites int     `json:"resolved_sites"`
			HavocRate     float64 `json:"havoc_rate"`
			Before        float64 `json:"havoc_rate_before"`
		} `json:"precision"`
		Findings []struct {
			Checker   string `json:"checker"`
			CallChain []struct {
				CalleeLabel string `json:"callee_label"`
			} `json:"call_chain"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(got, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Resolved) != 1 || pr.Resolved[0].Kind != "calli" || len(pr.Resolved[0].Targets) != 2 {
		t.Fatalf("resolved_targets = %+v, want one calli site with both table slots", pr.Resolved)
	}
	if p := pr.Precision; p == nil ||
		p.IndirectSites != 1 || p.ResolvedSites != 1 || p.HavocRate != 0 || p.Before != 1 {
		t.Fatalf("precision = %+v, want the single site fully resolved from a 1.0 before-rate", pr.Precision)
	}
	chained := false
	for _, f := range pr.Findings {
		if f.Checker != "dsb-footprint-divergence" {
			continue
		}
		for _, fr := range f.CallChain {
			if fr.CalleeLabel == "fd_handler" {
				chained = true
			}
		}
	}
	if !chained {
		t.Error("fn-dispatch divergence finding does not chain into fd_handler through the resolved call")
	}
}

// TestFailOnFlag pins the CI gate: -fail-on turns findings at or above
// the named severity into a non-zero exit while leaving the report
// intact, a clean fixture still exits zero, and a bogus severity is a
// usage error.
func TestFailOnFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-fixture", "pci-vpd", "-fail-on", "error"}, &out, &errb); code != 1 {
		t.Errorf("pci-vpd -fail-on error exit = %d, want 1 (%s)", code, errb.String())
	}
	if !bytes.Contains(out.Bytes(), []byte(`"findings"`)) {
		t.Error("-fail-on suppressed the report body")
	}

	out.Reset()
	if code := run([]string{"-json", "-fixture", "callee-kill", "-fail-on", "warning"}, &out, &errb); code != 0 {
		t.Errorf("clean fixture -fail-on warning exit = %d, want 0 (%s)", code, errb.String())
	}

	// The gate must be independent of the -severity display filter:
	// error-severity findings survive filtering and still trip it...
	if code := run([]string{"-json", "-fixture", "pci-vpd", "-severity", "error", "-fail-on", "warning"},
		&out, &errb); code != 1 {
		t.Errorf("filtered pci-vpd -fail-on warning exit = %d, want 1", code)
	}

	// ...and findings the display filter hides must trip it too: the
	// exit code is a CI contract over what the analysis found, not over
	// what the report chose to show. indirect-call's spectre-v1-gadget
	// finding is warning severity, so `-severity error` empties the
	// displayed report while `-fail-on warning` must still fail.
	out.Reset()
	if code := run([]string{"-json", "-fixture", "indirect-call", "-checkers", "spectre-v1-gadget",
		"-severity", "error", "-fail-on", "warning"}, &out, &errb); code != 1 {
		t.Errorf("display-filtered warning -fail-on warning exit = %d, want 1", code)
	}
	var filtered struct {
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &filtered); err != nil {
		t.Fatalf("decoding filtered report: %v", err)
	}
	if len(filtered.Findings) != 0 {
		t.Errorf("displayed findings = %d, want 0 (the gate, not the filter, carries the warning)", len(filtered.Findings))
	}

	errb.Reset()
	if code := run([]string{"-fail-on", "fatal"}, &out, &errb); code != 2 {
		t.Errorf("bogus -fail-on exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "severity") {
		t.Errorf("bogus -fail-on error = %q", errb.String())
	}
}

// TestGoldenPCIVPDZen pins the paper victim's receiver model under the
// Zen profile: AMD's µop cache is physically partitioned per thread,
// so the probe histogram's timings differ from the Skylake golden, but
// the divergence finding and its histogram must survive — the channel
// exists on both vendors (§VII of the paper).
func TestGoldenPCIVPDZen(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-fixture", "pci-vpd", "-profile", "zen"}, &out, &errb); code != 0 {
		t.Fatalf("uoplint exited %d: %s", code, errb.String())
	}
	got := out.Bytes()
	goldenCompare(t, "pci-vpd.zen.json", got)

	var pr struct {
		Profile  string `json:"profile"`
		Findings []struct {
			Checker string `json:"checker"`
			Probe   *struct {
				Hit             int  `json:"predicted_hit_cycles"`
				Distinguishable bool `json:"distinguishable"`
			} `json:"probe_histogram"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(got, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Profile != "zen" {
		t.Errorf("report profile %q, want zen", pr.Profile)
	}
	found := false
	for _, f := range pr.Findings {
		if f.Checker != "dsb-footprint-divergence" {
			continue
		}
		found = true
		if f.Probe == nil || f.Probe.Hit <= 0 {
			t.Errorf("zen divergence finding lacks a usable probe_histogram: %+v", f.Probe)
		}
	}
	if !found {
		t.Error("pci-vpd.zen golden lacks the dsb-footprint-divergence finding")
	}
}

// TestGoldenPCIVPDMiteOnly pins the control profile: with the DSB
// disabled there is no µop-cache footprint to diverge, so the
// divergence checker and its histogram must vanish while the
// constant-time findings remain — the null-hypothesis report.
func TestGoldenPCIVPDMiteOnly(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-fixture", "pci-vpd", "-profile", "mite-only"}, &out, &errb); code != 0 {
		t.Fatalf("uoplint exited %d: %s", code, errb.String())
	}
	got := out.Bytes()
	goldenCompare(t, "pci-vpd.mite-only.json", got)

	var pr struct {
		Profile  string `json:"profile"`
		Findings []struct {
			Checker string `json:"checker"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(got, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Profile != "mite-only" {
		t.Errorf("report profile %q, want mite-only", pr.Profile)
	}
	var hasBranch bool
	for _, f := range pr.Findings {
		if f.Checker == "dsb-footprint-divergence" {
			t.Error("divergence finding fired with the DSB disabled")
		}
		if f.Checker == "secret-dependent-branch" {
			hasBranch = true
		}
	}
	if !hasBranch {
		t.Error("mite-only control lost the constant-time findings")
	}
	if bytes.Contains(got, []byte(`"probe_histogram"`)) {
		t.Error("mite-only control carries a probe histogram")
	}
}

// TestCheckersFlag pins the -checkers selection: only the named
// checkers run, and an unknown name is a usage error.
func TestCheckersFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-fixture", "jcc-align",
		"-checkers", "secret-dependent-jump-alignment"}, &out, &errb); code != 0 {
		t.Fatalf("uoplint exited %d: %s", code, errb.String())
	}
	var pr struct {
		Findings []struct {
			Checker string `json:"checker"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Findings) == 0 {
		t.Fatal("selected checker produced no findings")
	}
	for _, f := range pr.Findings {
		if f.Checker != "secret-dependent-jump-alignment" {
			t.Errorf("-checkers leaked finding from %s", f.Checker)
		}
	}

	var errOut bytes.Buffer
	if code := run([]string{"-checkers", "no-such-checker"}, &out, &errOut); code != 2 {
		t.Errorf("unknown checker exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown checker") {
		t.Errorf("unknown-checker error = %q", errOut.String())
	}
}

// TestWorkersDeterministic pins the parallel batch contract: the full
// JSON report — corpus plus a random population — is byte-identical
// whether linted sequentially or across four workers sharing one
// incremental cache.
func TestWorkersDeterministic(t *testing.T) {
	runWith := func(workers string) []byte {
		var out, errb bytes.Buffer
		args := []string{"-json", "-random", "12", "-workers", workers}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("-workers %s exited %d: %s", workers, code, errb.String())
		}
		return out.Bytes()
	}
	seq := runWith("1")
	par := runWith("4")
	if !bytes.Equal(seq, par) {
		t.Fatal("parallel report diverges from sequential report")
	}
}
