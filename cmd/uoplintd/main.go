// Command uoplintd is the long-lived leakage-audit service: the
// static analyzer behind cmd/uoplint exposed as an HTTP/JSON daemon
// with a bounded job queue and an incremental per-function summary
// cache, so re-auditing a corpus after an edit re-analyzes only the
// changed functions and their call-graph dependents.
//
// Endpoints:
//
//	POST /v1/jobs       submit an audit (body mirrors the uoplint flags)
//	GET  /v1/jobs/{id}  job status and, when done, the reports
//	GET  /v1/stats      cache hit/miss counters, havoc rate, queue depth
//	GET  /healthz       liveness
//
// A full queue answers 429 with Retry-After. Usage:
//
//	uoplintd -addr 127.0.0.1:8077 -workers 4 -queue 64
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"deaduops/internal/auditd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uoplintd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8077", "listen address")
		workers    = fs.Int("workers", 0, "concurrent audit jobs (0 = GOMAXPROCS)")
		queueCap   = fs.Int("queue", 64, "pending-job queue bound (full queue answers 429)")
		jobWorkers = fs.Int("job-workers", 0, "per-job lint workers (0 = GOMAXPROCS)")
		maxJobs    = fs.Int("max-jobs", 1024, "retained job results (oldest forgotten first)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	srv, err := auditd.New(auditd.Config{
		Workers:    *workers,
		QueueCap:   *queueCap,
		JobWorkers: *jobWorkers,
		MaxJobs:    *maxJobs,
	})
	if err != nil {
		fmt.Fprintln(stderr, "uoplintd:", err)
		return 1
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "uoplintd:", err)
		return 1
	}
	// The resolved address (not the flag) is printed so ":0" users —
	// tests, CI — can parse the chosen port.
	fmt.Fprintf(stdout, "uoplintd: listening on %s\n", ln.Addr())
	if err := http.Serve(ln, srv); err != nil {
		fmt.Fprintln(stderr, "uoplintd:", err)
		return 1
	}
	return 0
}
