package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, errb.String())
	}
}

func TestRunBadAddr(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "definitely-not-an-address:xyz"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "uoplintd:") {
		t.Fatalf("stderr lacks the error: %s", errb.String())
	}
}

// lineWriter captures stdout and signals when the banner line arrives,
// so the test can learn the ':0' port the daemon actually bound.
type lineWriter struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	once sync.Once
	ch   chan string
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, _ := w.buf.Write(p)
	if line := w.buf.String(); strings.Contains(line, "\n") {
		w.once.Do(func() { w.ch <- strings.TrimSpace(line) })
	}
	return n, nil
}

// TestDaemonRoundTrip boots the daemon on an ephemeral port and walks
// the full client path: healthz, job submission, polling to done,
// stats. The serve goroutine is not joined — http.Serve runs for the
// process lifetime, exactly like the real daemon.
func TestDaemonRoundTrip(t *testing.T) {
	w := &lineWriter{ch: make(chan string, 1)}
	go run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "4"}, w, io.Discard)

	var banner string
	select {
	case banner = <-w.ch:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never printed its listen banner")
	}
	const prefix = "uoplintd: listening on "
	if !strings.HasPrefix(banner, prefix) {
		t.Fatalf("banner %q", banner)
	}
	base := "http://" + strings.TrimPrefix(banner, prefix)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"fixture":"bounds-check"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, sub.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var job struct {
			Status  string            `json:"status"`
			Error   string            `json:"error"`
			Reports []json.RawMessage `json:"reports"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if job.Status == "done" {
			if len(job.Reports) != 1 {
				t.Fatalf("got %d reports, want 1", len(job.Reports))
			}
			break
		}
		if job.Status == "failed" {
			t.Fatalf("job failed: %s", job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", job.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Cache struct {
			ReportMisses uint64 `json:"report_misses"`
		} `json:"cache"`
		Workers int `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Cache.ReportMisses == 0 || st.Workers != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
