// Command uopmap shows how generated attack code maps into the
// micro-op cache: per-region set indices, line counts under the
// placement rules, and the resulting set occupancy — the view an
// attacker needs when crafting tigers and zebras for a new target.
//
// Usage:
//
//	uopmap -preset tiger|zebra|fast
//	uopmap -preset tiger -sets 8 -ways 6 -first 0
package main

import (
	"flag"
	"fmt"
	"os"

	"deaduops/internal/attack"
	"deaduops/internal/codegen"
	"deaduops/internal/decode"
	"deaduops/internal/isa"
	"deaduops/internal/uopcache"
)

func main() {
	var (
		preset = flag.String("preset", "tiger", "code preset: tiger | zebra | fast")
		nsets  = flag.Int("sets", 8, "sets occupied")
		nways  = flag.Int("ways", 6, "ways per set")
		first  = flag.Int("first", 0, "first set of the stripe")
		base   = flag.Uint64("base", 0x40000, "code base address (1024-aligned)")
	)
	flag.Parse()

	g := attack.Geometry{NSets: *nsets, NWays: *nways, FirstSet: *first}
	var spec *codegen.ChainSpec
	switch *preset {
	case "tiger":
		spec = attack.Tiger(*base, g, "map")
	case "zebra":
		spec = attack.Zebra(*base, g, "map")
	case "fast":
		spec = attack.FastTiger(*base, g, "map")
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q\n", *preset)
		os.Exit(2)
	}

	routine, err := attack.Build(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ucfg := uopcache.Skylake()
	dcfg := decode.Skylake()
	fmt.Printf("# %s: %d sets × %d ways, base %#x\n", *preset, *nsets, *nways, *base)
	fmt.Printf("# µop cache: %d sets × %d ways × %d slots\n\n",
		ucfg.Sets, ucfg.Ways, ucfg.SlotsPerLine)

	occupancy := map[int]int{}
	fmt.Printf("%-12s %-5s %-6s %-6s %-6s %s\n",
		"region", "set", "insts", "µops", "lines", "cacheable")
	for _, set := range spec.Sets {
		for w := 0; w < spec.Ways; w++ {
			addr := spec.RegionAddr(set, w)
			insts := regionInsts(routine, addr, ucfg.RegionSize())
			plan := decode.PlanRegion(dcfg, insts)
			tr := uopcache.BuildTrace(ucfg, addr, 0, plan.Macros)
			state := "yes"
			if !tr.Cacheable {
				state = "NO: " + tr.Reason
			} else {
				occupancy[set] += len(tr.Lines)
			}
			fmt.Printf("%#-12x %-5d %-6d %-6d %-6d %s\n",
				addr, set, len(insts), plan.TotalUops(), len(tr.Lines), state)
		}
	}

	fmt.Printf("\n# set occupancy (lines of %d ways)\n", ucfg.Ways)
	for s := 0; s < ucfg.Sets; s++ {
		if n, ok := occupancy[s]; ok {
			bar := ""
			for i := 0; i < n; i++ {
				bar += "█"
			}
			fmt.Printf("set %2d: %s (%d)\n", s, bar, n)
		}
	}
}

// regionInsts collects the routine's instructions inside one region, in
// address order up to and including the first unconditional jump.
func regionInsts(r *attack.Routine, region uint64, size uint64) []*isa.Inst {
	var out []*isa.Inst
	pc := region
	for pc < region+size {
		in := r.Prog.At(pc)
		if in == nil {
			break
		}
		out = append(out, in)
		if in.IsUncondJump() {
			break
		}
		pc = in.End()
	}
	return out
}
