// Command uoptrace runs a preset workload with the pipeline tracer
// attached, printing each retired macro-op with its front-end delivery
// source (micro-op cache / legacy decode / LSD) and every squash — the
// rhythm a micro-op cache attack rides on, made visible.
//
// Usage:
//
//	uoptrace -preset warmup            # cold vs warm loop
//	uoptrace -preset spectre           # a transient window with squashes
package main

import (
	"flag"
	"fmt"
	"os"

	"deaduops/internal/asm"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/trace"
	"deaduops/internal/victim"
)

func main() {
	preset := flag.String("preset", "warmup", "workload: warmup | spectre")
	flag.Parse()

	switch *preset {
	case "warmup":
		traceWarmup()
	case "spectre":
		traceSpectre()
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q\n", *preset)
		os.Exit(2)
	}
}

// traceWarmup shows the same loop iteration decoding through MITE cold
// and streaming from the DSB warm.
func traceWarmup() {
	b := asm.New(0x10000)
	b.Label("entry")
	b.Label("loop")
	b.Nop(4)
	b.Nop(4)
	b.Addi(isa.R1, 1)
	b.Subi(isa.R14, 1)
	b.Cmpi(isa.R14, 0)
	b.Jcc(isa.NE, "loop")
	b.Halt()
	prog := b.MustBuild()

	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	tr := trace.Attach(c, os.Stdout)
	defer tr.Detach()

	fmt.Println("# cold run (3 iterations): legacy decode fills the µop cache")
	c.SetReg(0, isa.R14, 3)
	c.Run(0, prog.Entry, 100000)
	fmt.Println("\n# warm run (3 iterations): same code streams from the µop cache")
	c.SetReg(0, isa.R14, 3)
	c.Run(0, prog.Entry, 100000)
}

// traceSpectre shows a mistrained bounds check opening a transient
// window: the squash arrives ~200 cycles after the flushed guard load.
func traceSpectre() {
	lay := victim.DefaultLayout()
	b := asm.New(0x20000)
	victim.BoundsCheckVictim(b, lay)
	b.Org(0x30000)
	b.Label("entry")
	b.Clflush(isa.R2, int64(lay.ArraySizeAddr))
	b.Call("victim_function")
	b.Halt()
	prog := b.MustBuild()

	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	c.Mem().Write(lay.ArraySizeAddr, 8, lay.ArrayLen)

	// Train in-bounds.
	for i := 0; i < 4; i++ {
		c.SetReg(0, isa.R1, int64(i))
		c.SetReg(0, isa.R2, 0)
		c.Run(0, prog.Entry, 100000)
	}

	tr := trace.Attach(c, os.Stdout)
	defer tr.Detach()
	fmt.Println("# malicious call: watch the late squash ending the transient window")
	c.SetReg(0, isa.R1, lay.ArrayLen+512)
	c.SetReg(0, isa.R2, 0)
	c.Run(0, prog.Entry, 100000)
	fmt.Printf("\n# squashes observed: %d\n", tr.Squashes)
}
