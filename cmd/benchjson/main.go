// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON snapshot: one record per benchmark with
// iterations, ns/op, B/op, allocs/op, and every custom ReportMetric
// unit (sim-cycles/s, sim-Kbit/s, …), plus host metadata. The Makefile
// bench-json target pipes the suite through it to produce the
// BENCH_<date>.json baselines committed alongside performance work,
// and CI uploads the same snapshot as an artifact so regressions can
// be diffed across runs with nothing fancier than jq.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with any -<procs> suffix stripped.
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the full file: host metadata plus every benchmark.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	snap := Snapshot{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8  100  12345 ns/op  67 B/op  8 allocs/op  9.1 sim-cycles/s
//
// The name may carry a -<procs> suffix; after the iteration count the
// rest of the line is value/unit pairs.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i]
			b.Procs = procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsOp = &val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
