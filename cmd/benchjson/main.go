// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON snapshot: one record per benchmark with
// iterations, ns/op, B/op, allocs/op, and every custom ReportMetric
// unit (sim-cycles/s, sim-Kbit/s, …), plus host metadata. The Makefile
// bench-json target pipes the suite through it to produce the
// BENCH_<date>.json baselines committed alongside performance work,
// and CI uploads the same snapshot as an artifact so regressions can
// be diffed across runs with nothing fancier than jq.
//
// With -diff old.json new.json it instead compares two snapshots: a
// per-benchmark table of ns/op and custom-metric deltas, exiting 1
// when a gated throughput metric (sim-cycles/s, findings/s) regressed
// more than 10% — the CI perf gate. -allow exempts named benchmarks
// from the gate for intentional changes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with any -<procs> suffix stripped.
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the full file: host metadata plus every benchmark.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	diffMode := flag.Bool("diff", false, "compare two snapshot files (old.json new.json) instead of converting stdin")
	allow := flag.String("allow", "", "comma-separated benchmark names exempt from the -diff regression gate")
	flag.Parse()
	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two snapshot files: old.json new.json")
			os.Exit(2)
		}
		oldSnap, err := readSnapshot(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		newSnap, err := readSnapshot(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		allowed := map[string]bool{}
		for _, name := range strings.Split(*allow, ",") {
			if name = strings.TrimSpace(name); name != "" {
				allowed[name] = true
			}
		}
		report, regressions := diffSnapshots(oldSnap, newSnap, allowed)
		for _, line := range report {
			fmt.Println(line)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d gated regression(s) over %.0f%%:\n", len(regressions), 100*regressionTolerance)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		return
	}
	snap := Snapshot{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
}

// regressionTolerance is the relative drop in a gated throughput
// metric the diff gate accepts as noise; beyond it the diff exits 1.
const regressionTolerance = 0.10

// gatedMetrics are the throughput metrics the regression gate watches.
// Throughput semantics: a LOWER value is a regression. ns/op and other
// metrics are reported but never gate — benchmark sets change shape
// too often for a blanket time gate, while these two units exist
// precisely to track the simulator's and the audit pipeline's speed.
var gatedMetrics = map[string]bool{
	"sim-cycles/s": true,
	"findings/s":   true,
}

// readSnapshot loads one JSON snapshot file.
func readSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// pctDelta renders a relative change; positive means new > old.
func pctDelta(oldV, newV float64) string {
	if oldV == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(newV-oldV)/oldV)
}

// diffSnapshots compares every benchmark present in both snapshots.
// It returns the human-readable report and the list of gate failures:
// benchmarks (outside allowed) whose gated throughput metric dropped
// by more than regressionTolerance. Benchmarks present on only one
// side are reported but never gate — added or removed benchmarks are
// deliberate changes, not regressions.
func diffSnapshots(oldSnap, newSnap Snapshot, allowed map[string]bool) (report, regressions []string) {
	oldByName := map[string]Benchmark{}
	for _, b := range oldSnap.Benchmarks {
		oldByName[b.Name] = b
	}
	seen := map[string]bool{}
	for _, nb := range newSnap.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldByName[nb.Name]
		if !ok {
			report = append(report, fmt.Sprintf("%-60s (new benchmark)", nb.Name))
			continue
		}
		line := fmt.Sprintf("%-60s ns/op %12.0f -> %12.0f (%s)",
			nb.Name, ob.NsPerOp, nb.NsPerOp, pctDelta(ob.NsPerOp, nb.NsPerOp))
		units := make([]string, 0, len(nb.Metrics))
		for unit := range nb.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			newV := nb.Metrics[unit]
			oldV, ok := ob.Metrics[unit]
			if !ok {
				continue
			}
			line += fmt.Sprintf("  %s %g -> %g (%s)", unit, oldV, newV, pctDelta(oldV, newV))
			if gatedMetrics[unit] && oldV > 0 && newV < oldV*(1-regressionTolerance) {
				if allowed[nb.Name] {
					line += " [regression allowed]"
				} else {
					line += " [REGRESSION]"
					regressions = append(regressions,
						fmt.Sprintf("%s: %s %g -> %g (%s)", nb.Name, unit, oldV, newV, pctDelta(oldV, newV)))
				}
			}
		}
		report = append(report, line)
	}
	for _, ob := range oldSnap.Benchmarks {
		if !seen[ob.Name] {
			report = append(report, fmt.Sprintf("%-60s (removed benchmark)", ob.Name))
		}
	}
	return report, regressions
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8  100  12345 ns/op  67 B/op  8 allocs/op  9.1 sim-cycles/s
//
// The name may carry a -<procs> suffix; after the iteration count the
// rest of the line is value/unit pairs.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i]
			b.Procs = procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsOp = &val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
