package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkSimulatorThroughput-8 \t 100\t 3344813 ns/op\t 0 allocs/sim-cycle\t 4914 sim-cycles/op\t 1469550 sim-cycles/s")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkSimulatorThroughput" || b.Procs != 8 {
		t.Errorf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 100 || b.NsPerOp != 3344813 {
		t.Errorf("iters/ns = %d/%g", b.Iterations, b.NsPerOp)
	}
	if got := b.Metrics["sim-cycles/s"]; got != 1469550 {
		t.Errorf("sim-cycles/s = %g", got)
	}
	if got := b.Metrics["allocs/sim-cycle"]; got != 0 {
		t.Errorf("allocs/sim-cycle = %g", got)
	}
}

func TestParseLineMemFields(t *testing.T) {
	b, ok := parseLine("BenchmarkRSCodec-4   	 500	  2000 ns/op	 256.00 MB/s	 128 B/op	   3 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 128 {
		t.Errorf("B/op = %v", b.BytesPerOp)
	}
	if b.AllocsOp == nil || *b.AllocsOp != 3 {
		t.Errorf("allocs/op = %v", b.AllocsOp)
	}
	if got := b.Metrics["MB/s"]; got != 256 {
		t.Errorf("MB/s = %g", got)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: deaduops",
		"PASS",
		"BenchmarkFoo", // no fields
		"Benchmark names only: not a result",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed non-result line %q", line)
		}
	}
}
