package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkSimulatorThroughput-8 \t 100\t 3344813 ns/op\t 0 allocs/sim-cycle\t 4914 sim-cycles/op\t 1469550 sim-cycles/s")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkSimulatorThroughput" || b.Procs != 8 {
		t.Errorf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 100 || b.NsPerOp != 3344813 {
		t.Errorf("iters/ns = %d/%g", b.Iterations, b.NsPerOp)
	}
	if got := b.Metrics["sim-cycles/s"]; got != 1469550 {
		t.Errorf("sim-cycles/s = %g", got)
	}
	if got := b.Metrics["allocs/sim-cycle"]; got != 0 {
		t.Errorf("allocs/sim-cycle = %g", got)
	}
}

func TestParseLineMemFields(t *testing.T) {
	b, ok := parseLine("BenchmarkRSCodec-4   	 500	  2000 ns/op	 256.00 MB/s	 128 B/op	   3 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 128 {
		t.Errorf("B/op = %v", b.BytesPerOp)
	}
	if b.AllocsOp == nil || *b.AllocsOp != 3 {
		t.Errorf("allocs/op = %v", b.AllocsOp)
	}
	if got := b.Metrics["MB/s"]; got != 256 {
		t.Errorf("MB/s = %g", got)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: deaduops",
		"PASS",
		"BenchmarkFoo", // no fields
		"Benchmark names only: not a result",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed non-result line %q", line)
		}
	}
}

func snap(benches ...Benchmark) Snapshot { return Snapshot{Benchmarks: benches} }

func TestDiffGatesThroughputRegression(t *testing.T) {
	oldSnap := snap(
		Benchmark{Name: "BenchmarkSimulatorThroughput", NsPerOp: 100, Metrics: map[string]float64{"sim-cycles/s": 1_000_000}},
		Benchmark{Name: "BenchmarkAuditFindings", NsPerOp: 200, Metrics: map[string]float64{"findings/s": 50}},
	)
	// 20% sim-cycles/s drop regresses; findings/s improves.
	newSnap := snap(
		Benchmark{Name: "BenchmarkSimulatorThroughput", NsPerOp: 130, Metrics: map[string]float64{"sim-cycles/s": 800_000}},
		Benchmark{Name: "BenchmarkAuditFindings", NsPerOp: 150, Metrics: map[string]float64{"findings/s": 60}},
	)
	report, regressions := diffSnapshots(oldSnap, newSnap, nil)
	if len(report) != 2 {
		t.Fatalf("report has %d lines, want 2:\n%v", len(report), report)
	}
	if len(regressions) != 1 || !strings.Contains(regressions[0], "BenchmarkSimulatorThroughput") {
		t.Fatalf("regressions = %v, want one on BenchmarkSimulatorThroughput", regressions)
	}
	if !strings.Contains(report[0], "[REGRESSION]") {
		t.Errorf("regressed line not marked: %s", report[0])
	}
	if strings.Contains(report[1], "REGRESSION") {
		t.Errorf("improved benchmark marked regressed: %s", report[1])
	}
}

func TestDiffWithinToleranceIsClean(t *testing.T) {
	oldSnap := snap(Benchmark{Name: "B", NsPerOp: 100, Metrics: map[string]float64{"sim-cycles/s": 1000}})
	newSnap := snap(Benchmark{Name: "B", NsPerOp: 300, Metrics: map[string]float64{"sim-cycles/s": 950}})
	// 5% throughput drop is noise; the 3x ns/op change never gates.
	if _, regressions := diffSnapshots(oldSnap, newSnap, nil); len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none", regressions)
	}
}

func TestDiffAllowlistSuppressesGate(t *testing.T) {
	oldSnap := snap(Benchmark{Name: "B", NsPerOp: 100, Metrics: map[string]float64{"findings/s": 100}})
	newSnap := snap(Benchmark{Name: "B", NsPerOp: 100, Metrics: map[string]float64{"findings/s": 10}})
	report, regressions := diffSnapshots(oldSnap, newSnap, map[string]bool{"B": true})
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none (allowlisted)", regressions)
	}
	if !strings.Contains(report[0], "[regression allowed]") {
		t.Errorf("allowlisted regression not annotated: %s", report[0])
	}
}

func TestDiffUngatedMetricsNeverGate(t *testing.T) {
	oldSnap := snap(Benchmark{Name: "B", NsPerOp: 100, Metrics: map[string]float64{"sim-Kbit/s": 100, "err-%": 1}})
	newSnap := snap(Benchmark{Name: "B", NsPerOp: 100, Metrics: map[string]float64{"sim-Kbit/s": 10, "err-%": 50}})
	if _, regressions := diffSnapshots(oldSnap, newSnap, nil); len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none for ungated units", regressions)
	}
}

func TestDiffAddedRemovedBenchmarks(t *testing.T) {
	oldSnap := snap(Benchmark{Name: "Gone", NsPerOp: 1, Metrics: map[string]float64{"sim-cycles/s": 100}})
	newSnap := snap(Benchmark{Name: "Fresh", NsPerOp: 1})
	report, regressions := diffSnapshots(oldSnap, newSnap, nil)
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v; added/removed benchmarks must not gate", regressions)
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "Fresh") || !strings.Contains(joined, "new benchmark") {
		t.Errorf("new benchmark not reported:\n%s", joined)
	}
	if !strings.Contains(joined, "Gone") || !strings.Contains(joined, "removed benchmark") {
		t.Errorf("removed benchmark not reported:\n%s", joined)
	}
}
