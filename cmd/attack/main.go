// Command attack demonstrates the paper's attacks end-to-end: the
// covert channels of §V (Table I), the transient-execution attacks of
// §VI (Table II), and the fence comparison (Fig 10).
package main

import (
	"flag"
	"fmt"
	"os"

	"deaduops/internal/channel"
	"deaduops/internal/cpu"
	"deaduops/internal/experiments"
	"deaduops/internal/transient"
	"deaduops/internal/victim"
)

func main() {
	var (
		mode   = flag.String("mode", "all", "attack to run: sameas | kernel | smt | spectre | lfence | table1 | table2 | fig10 | all")
		secret = flag.String("secret", "I see dead uops!", "secret to transmit/leak")
	)
	flag.Parse()

	run := func(name string, fn func() error) {
		if *mode != "all" && *mode != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	payload := []byte(*secret)

	run("sameas", func() error {
		c := cpu.New(cpu.Intel())
		ch, err := channel.NewSameAddressSpace(c, channel.DefaultConfig())
		if err != nil {
			return err
		}
		th := ch.Threshold()
		fmt.Printf("calibrated: hit %.0f cycles, miss %.0f cycles\n", th.HitMean, th.MissMean)
		got, res, err := ch.Transmit(payload)
		if err != nil {
			return err
		}
		fmt.Printf("sent %q\nrecv %q\n%d bits, %.2f%% errors, %.1f Kbit/s\n",
			payload, got, res.Bits, 100*res.ErrorRate(), res.BandwidthKbps())
		return nil
	})

	run("kernel", func() error {
		c := cpu.New(cpu.Intel())
		ch, err := channel.NewUserKernel(c, channel.DefaultConfig())
		if err != nil {
			return err
		}
		ch.WriteSecret(payload)
		got, res, err := ch.Leak(len(payload))
		if err != nil {
			return err
		}
		fmt.Printf("kernel secret %q\nleaked        %q\n%d bits, %.1f Kbit/s\n",
			payload, got, res.Bits, res.BandwidthKbps())
		return nil
	})

	run("smt", func() error {
		c := cpu.New(cpu.AMD())
		ch, err := channel.NewCrossSMT(c, channel.DefaultConfig())
		if err != nil {
			return err
		}
		got, res, err := ch.Transmit(payload)
		if err != nil {
			return err
		}
		fmt.Printf("sent %q across SMT threads (AMD competitive sharing)\nrecv %q\n%d bits, %.2f%% errors, %.1f Kbit/s\n",
			payload, got, res.Bits, 100*res.ErrorRate(), res.BandwidthKbps())
		return nil
	})

	run("spectre", func() error {
		c := cpu.New(cpu.Intel())
		v, err := transient.NewVariant1(c)
		if err != nil {
			return err
		}
		v.WriteSecret(payload)
		got, st, err := v.Leak(len(payload))
		if err != nil {
			return err
		}
		fmt.Printf("victim secret %q\nleaked        %q (transient, µop cache disclosure)\n%d bits in %d cycles; LLC refs %d, µop miss penalty %d cycles\n",
			payload, got, st.Bits, st.Cycles, st.LLCRefs, st.UopMissPenalty)
		return nil
	})

	run("lfence", func() error {
		for _, f := range []victim.Fence{victim.NoFence, victim.WithLFENCE, victim.WithCPUID} {
			c := cpu.New(cpu.Intel())
			v, err := transient.NewVariant2(c, f)
			if err != nil {
				return err
			}
			one, zero, err := v.SignalStrength(4)
			if err != nil {
				return err
			}
			leak := "LEAKS"
			if zero <= one*1.2 {
				leak = "closed"
			}
			fmt.Printf("fence=%-7s probe(one)=%4.0f probe(zero)=%4.0f → channel %s\n", f, one, zero, leak)
		}
		return nil
	})

	for _, id := range []string{"table1", "table2", "fig10"} {
		id := id
		run(id, func() error {
			out, err := experiments.Registry[id](experiments.Options{})
			if err != nil {
				return err
			}
			fmt.Println(out.Render())
			return nil
		})
	}
}
