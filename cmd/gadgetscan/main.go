// Command gadgetscan runs the §VI-A gadget census over built-in guest
// programs: the victims shipped with this repository and a population
// of randomly generated programs. It reports each finding and the
// per-class counts — the in-repo analog of the paper's LGTM census of
// torvalds/linux (100 µop-cache gadgets vs 19 Spectre-v1 gadgets).
package main

import (
	"flag"
	"fmt"
	"os"

	"deaduops/internal/asm"
	"deaduops/internal/gadget"
	"deaduops/internal/ref"
	"deaduops/internal/victim"
)

func main() {
	var (
		seeds   = flag.Int("random", 20, "number of random programs to scan")
		verbose = flag.Bool("v", false, "print every finding")
	)
	flag.Parse()

	lay := victim.DefaultLayout()
	var total gadget.Census

	scan := func(name string, p *asm.Program) {
		found := gadget.Scan(p)
		c := gadget.Count(found)
		total.UopCache += c.UopCache
		total.SpectreV1 += c.SpectreV1
		fmt.Printf("%-28s µop-cache %d  spectre-v1 %d\n", name, c.UopCache, c.SpectreV1)
		if *verbose {
			for _, f := range found {
				fmt.Printf("    %s\n", f)
			}
		}
	}

	// The shipped victims (the same corpus cmd/uoplint gates).
	for _, fx := range victim.Fixtures(lay) {
		scan("victim: "+fx.Name, fx.Prog)
	}

	// Random program population.
	cfg := ref.DefaultGenConfig()
	for s := 1; s <= *seeds; s++ {
		p, err := ref.Generate(uint64(s), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		scan(fmt.Sprintf("random seed %d", s), p)
	}

	fmt.Printf("\ntotal: µop-cache %d, spectre-v1 %d (paper's linux census: 100 vs 19)\n",
		total.UopCache, total.SpectreV1)
}
