// Ablation benchmarks for the modelling choices DESIGN.md calls out:
// the hotness replacement cap, the DSB→MITE switch penalty, and the
// loop stream detector. Each reports a domain metric so the effect of
// the design choice is visible next to Go's timing.
package deaduops_test

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/channel"
	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
)

// calibrationSeparation builds a same-address-space channel on cfg and
// returns miss/hit probe-time ratio (the raw signal strength). The
// core's guest memory and checkpoint buffers come from a, so a
// benchmark looping this pays construction once, not per iteration.
func calibrationSeparation(b *testing.B, cfg cpu.Config, a *cpu.Arena) float64 {
	b.Helper()
	c := cpu.NewWith(cfg, a)
	ch, err := channel.NewSameAddressSpace(c, channel.DefaultConfig())
	if err != nil {
		return 1 // no signal
	}
	th := ch.Threshold()
	return th.MissMean / th.HitMean
}

// BenchmarkAblationHotnessCap sweeps the replacement policy's hotness
// saturation. Cap 1 approximates a first-miss-evicts policy (which
// would flatten the paper's Fig 5 diagonal); the model's default is 8.
func BenchmarkAblationHotnessCap(b *testing.B) {
	for _, cap := range []int{1, 2, 8, 64} {
		b.Run(map[int]string{1: "cap1", 2: "cap2", 8: "cap8-default", 64: "cap64"}[cap],
			func(b *testing.B) {
				cfg := cpu.Intel()
				cfg.UopCache.HotnessMax = cap
				a := new(cpu.Arena)
				var sep float64
				for i := 0; i < b.N; i++ {
					sep = calibrationSeparation(b, cfg, a)
				}
				b.ReportMetric(sep, "miss/hit-ratio")
			})
	}
}

// BenchmarkAblationSwitchPenalty sweeps the DSB→MITE switch penalty.
// With penalty 0 the signal comes purely from decode throughput; the
// documented Skylake value is 1.
func BenchmarkAblationSwitchPenalty(b *testing.B) {
	for _, pen := range []int{0, 1, 4} {
		b.Run(map[int]string{0: "pen0", 1: "pen1-default", 4: "pen4"}[pen],
			func(b *testing.B) {
				cfg := cpu.Intel()
				cfg.UopCache.SwitchPenalty = pen
				a := new(cpu.Arena)
				var sep float64
				for i := 0; i < b.N; i++ {
					sep = calibrationSeparation(b, cfg, a)
				}
				b.ReportMetric(sep, "miss/hit-ratio")
			})
	}
}

// BenchmarkAblationLCPPadding compares the paper's LCP-padded tiger
// against a plain one: the length-changing prefixes are what stretch
// the miss path and sharpen the timing contrast.
func BenchmarkAblationLCPPadding(b *testing.B) {
	measure := func(b *testing.B, spec *codegen.ChainSpec, other *codegen.ChainSpec, a *cpu.Arena) float64 {
		recv, err := attack.Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		send, err := attack.Build(other)
		if err != nil {
			b.Fatal(err)
		}
		merged, err := asm.Merge(recv.Prog, send.Prog)
		if err != nil {
			b.Fatal(err)
		}
		c := cpu.NewWith(cpu.Intel(), a)
		c.LoadProgram(merged)
		th, err := attack.Calibrate(c, recv, send, 20, 5, 4)
		if err != nil {
			return 1
		}
		return th.MissMean / th.HitMean
	}
	g := attack.DefaultGeometry()
	b.Run("lcp-tiger", func(b *testing.B) {
		a := new(cpu.Arena)
		var sep float64
		for i := 0; i < b.N; i++ {
			sep = measure(b, attack.Tiger(0x40000, g, "r"), attack.Tiger(0x80000, g, "s"), a)
		}
		b.ReportMetric(sep, "miss/hit-ratio")
	})
	b.Run("plain-tiger", func(b *testing.B) {
		a := new(cpu.Arena)
		var sep float64
		for i := 0; i < b.N; i++ {
			sep = measure(b, attack.FastTiger(0x40000, g, "r"), attack.FastTiger(0x80000, g, "s"), a)
		}
		b.ReportMetric(sep, "miss/hit-ratio")
	})
}

// BenchmarkAblationLSD measures a small hot loop with the loop stream
// detector off (Skylake default, erratum SKL150) and on: with the LSD
// replaying from the IDQ, front-end delivery no longer touches the
// micro-op cache at all.
func BenchmarkAblationLSD(b *testing.B) {
	build := func(lsd int) (*cpu.CPU, uint64) {
		bld := asm.New(0x10000)
		bld.Label("entry")
		bld.Label("loop")
		bld.Nop(4)
		bld.Nop(4)
		bld.Subi(isa.R14, 1)
		bld.Cmpi(isa.R14, 0)
		bld.Jcc(isa.NE, "loop")
		bld.Halt()
		prog := bld.MustBuild()
		cfg := cpu.Intel()
		cfg.Frontend.LSDCapacity = lsd
		c := cpu.New(cfg)
		c.LoadProgram(prog)
		c.SetReg(0, isa.R14, 100)
		c.Run(0, prog.Entry, 1_000_000) // warm + train
		return c, prog.Entry
	}
	for _, tc := range []struct {
		name string
		lsd  int
	}{{"lsd-off-default", 0}, {"lsd-64uops", 64}} {
		b.Run(tc.name, func(b *testing.B) {
			c, entry := build(tc.lsd)
			var cycles uint64
			for i := 0; i < b.N; i++ {
				c.SetReg(0, isa.R14, 1000)
				res := c.Run(0, entry, 10_000_000)
				if res.TimedOut {
					b.Fatal("timed out")
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
		})
	}
}
