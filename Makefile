GO ?= go

.PHONY: build test race vet lint check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the static front-end leakage analyzer over the victim
# corpus and asserts the canonical expectations (exit 1 on mismatch).
lint:
	$(GO) run ./cmd/uoplint -selftest

check: build vet test race lint
