GO ?= go

# FUZZTIME bounds each fuzz target in the smoke run; raise it locally
# for a real fuzzing session (e.g. make fuzz FUZZTIME=10m).
FUZZTIME ?= 10s

.PHONY: build test race vet lint serve fuzz check bench-json bench-diff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the static front-end leakage analyzer over the victim
# corpus and the codegen-emitted attack probes, asserting the canonical
# expectations (exit 1 on mismatch).
lint:
	$(GO) run ./cmd/uoplint -selftest

# serve boots the long-lived leakage-audit daemon: the same analysis as
# `make lint` behind HTTP/JSON with an incremental per-function summary
# cache, so repeat audits only re-analyze what changed. See the
# "Incremental audit service" section of DESIGN.md.
serve:
	$(GO) run ./cmd/uoplintd

# bench-json snapshots the benchmark suite as BENCH_<date>.json via
# cmd/benchjson: one record per benchmark with ns/op, allocs/op, and
# every custom metric (sim-cycles/s, sim-Kbit/s, …). BENCHTIME=1x keeps
# the snapshot cheap enough for CI; raise it locally (e.g.
# make bench-json BENCHTIME=2s) for a low-noise baseline.
BENCHTIME ?= 1x
BENCHDATE ?= $(shell date -u +%Y-%m-%d)

bench-json:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_$(BENCHDATE).json
	@echo wrote BENCH_$(BENCHDATE).json

# bench-diff is the perf-regression gate: it takes a fresh
# -benchtime=1x snapshot and diffs it against the newest committed
# BENCH_*.json baseline, failing on a >10% drop in sim-cycles/s or
# findings/s. BENCHALLOW exempts benchmarks with intentional changes,
# e.g. make bench-diff BENCHALLOW=BenchmarkRefillSweep. The fresh
# snapshot lands in bench-new.json (untracked).
BENCHBASE ?= $(shell ls BENCH_*.json 2>/dev/null | sort | tail -n 1)
BENCHALLOW ?=

bench-diff:
	@test -n "$(BENCHBASE)" || { echo "bench-diff: no committed BENCH_*.json baseline"; exit 2; }
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -benchmem . \
		| $(GO) run ./cmd/benchjson > bench-new.json
	$(GO) run ./cmd/benchjson -diff -allow '$(BENCHALLOW)' $(BENCHBASE) bench-new.json

# fuzz runs every native fuzz target for FUZZTIME each: the assembler
# and legacy-decode invariants, the indirect-target resolution
# completeness invariant, and the differential contracts — predicted vs
# simulator-measured refill deltas (including the resolution-gated
# indirect shapes), the receiver model's predicted vs attack-measured
# probe cycles, and the jump-alignment stall asymmetry on
# alignment-divergent victims.
fuzz:
	$(GO) test ./internal/asm -fuzz FuzzAssemble -fuzztime $(FUZZTIME)
	$(GO) test ./internal/decode -fuzz FuzzPlanRegion -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staticlint -fuzz FuzzIndirectResolve -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staticlint/difftest -fuzz FuzzPredictedDelta -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staticlint/difftest -fuzz FuzzProbeModel -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staticlint/difftest -fuzz FuzzAlignmentDelta -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staticlint/difftest -fuzz FuzzIndirectDelta -fuzztime $(FUZZTIME)

check: build vet test race lint
	$(MAKE) fuzz FUZZTIME=5s
