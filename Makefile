GO ?= go

# FUZZTIME bounds each fuzz target in the smoke run; raise it locally
# for a real fuzzing session (e.g. make fuzz FUZZTIME=10m).
FUZZTIME ?= 10s

.PHONY: build test race vet lint fuzz check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the static front-end leakage analyzer over the victim
# corpus and the codegen-emitted attack probes, asserting the canonical
# expectations (exit 1 on mismatch).
lint:
	$(GO) run ./cmd/uoplint -selftest

# fuzz runs every native fuzz target for FUZZTIME each: the assembler
# and legacy-decode invariants, and the two differential contracts —
# predicted vs simulator-measured refill deltas, and the receiver
# model's predicted vs attack-measured probe cycles.
fuzz:
	$(GO) test ./internal/asm -fuzz FuzzAssemble -fuzztime $(FUZZTIME)
	$(GO) test ./internal/decode -fuzz FuzzPlanRegion -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staticlint/difftest -fuzz FuzzPredictedDelta -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staticlint/difftest -fuzz FuzzProbeModel -fuzztime $(FUZZTIME)

check: build vet test race lint
	$(MAKE) fuzz FUZZTIME=5s
