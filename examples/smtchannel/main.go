// Cross-SMT-thread channel demo (§V-B): on an AMD Zen-like core whose
// micro-op cache is competitively shared, a Trojan on one logical core
// transmits to a spy on the sibling by evicting its lines; on the
// statically partitioned Intel configuration the same channel finds no
// signal.
//
//	go run ./examples/smtchannel
package main

import (
	"fmt"
	"log"

	"deaduops/internal/channel"
	"deaduops/internal/cpu"
)

func main() {
	message := []byte("hyperthread whispers")

	fmt.Println("--- AMD Zen configuration (competitively shared µop cache) ---")
	amd := cpu.New(cpu.AMD())
	ch, err := channel.NewCrossSMT(amd, channel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	th := ch.Threshold()
	fmt.Printf("calibrated: quiet %.0f cycles, contended %.0f cycles\n", th.HitMean, th.MissMean)
	got, res, err := ch.Transmit(message)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Trojan sent %q\nspy received %q\n%d bits, %.2f%% errors, %.1f Kbit/s\n\n",
		message, got, res.Bits, 100*res.ErrorRate(), res.BandwidthKbps())

	fmt.Println("--- Intel configuration (statically partitioned µop cache) ---")
	intel := cpu.New(cpu.Intel())
	if _, err := channel.NewCrossSMT(intel, channel.DefaultConfig()); err != nil {
		fmt.Printf("channel calibration failed as expected: %v\n", err)
		fmt.Println("static partitioning isolates the SMT threads — the paper's Intel result")
	} else {
		fmt.Println("unexpected: a cross-thread signal on a partitioned cache")
	}
}
