// Covert channel demo: a Trojan and a spy in the same address space
// exchange a message purely through micro-op cache conflict timing
// (§V-A), then repeat the trick across the user/kernel privilege
// boundary. Reed-Solomon coding shows the error-corrected bandwidth of
// Table I.
//
//	go run ./examples/covertchannel
package main

import (
	"bytes"
	"fmt"
	"log"

	"deaduops/internal/channel"
	"deaduops/internal/cpu"
	"deaduops/internal/ecc"
)

func main() {
	message := []byte("Attack at dawn. The micro-op cache sees everything.")

	// --- Same address space -------------------------------------------------
	c := cpu.New(cpu.Intel())
	ch, err := channel.NewSameAddressSpace(c, channel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	th := ch.Threshold()
	fmt.Printf("same-address-space channel calibrated: hit %.0f / miss %.0f cycles\n",
		th.HitMean, th.MissMean)

	// Protect the payload with Reed-Solomon (~20%% redundancy), as the
	// paper does for its error-corrected bandwidth numbers.
	codec, err := ecc.NewCodec(42)
	if err != nil {
		log.Fatal(err)
	}
	encoded, err := codec.Encode(message)
	if err != nil {
		log.Fatal(err)
	}
	received, res, err := ch.Transmit(encoded)
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := codec.Decode(received, len(message))
	if err != nil {
		log.Fatalf("decode: %v", err)
	}
	fmt.Printf("sent      %q\n", message)
	fmt.Printf("received  %q\n", decoded)
	fmt.Printf("raw channel: %d bits, %.2f%% errors, %.1f Kbit/s (%.1f Kbit/s after coding)\n\n",
		res.Bits, 100*res.ErrorRate(), res.BandwidthKbps(),
		res.BandwidthKbps()/(1+codec.Overhead()))
	if !bytes.Equal(decoded, message) {
		log.Fatal("message corrupted beyond correction")
	}

	// --- Across the user/kernel boundary ------------------------------------
	c2 := cpu.New(cpu.Intel())
	uk, err := channel.NewUserKernel(c2, channel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	kernelSecret := []byte("root:x:0:0:supersecret")
	uk.WriteSecret(kernelSecret)
	leaked, res2, err := uk.Leak(len(kernelSecret))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel secret %q\n", kernelSecret)
	fmt.Printf("spy leaked    %q via %d syscall-probe rounds (%.1f Kbit/s)\n",
		leaked, res2.Bits, res2.BandwidthKbps())
}
