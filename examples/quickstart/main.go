// Quickstart: assemble an SX86 program, run it on the simulated core,
// and read the micro-op cache's effect from the performance counters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

func main() {
	// A hot loop: eight 32-byte regions of NOPs, iterated R14 times.
	b := asm.New(0x10000)
	b.Label("entry")
	b.Label("loop")
	for i := 0; i < 8; i++ {
		b.NopRegion(32, 3) // 3 µops per 32-byte region
	}
	b.Subi(isa.R14, 1)
	b.Cmpi(isa.R14, 0)
	b.Jcc(isa.NE, "loop")
	b.Halt()
	prog := b.MustBuild()

	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	fmt.Println(c)

	// Cold run: every region decodes through the legacy pipeline and
	// fills the micro-op cache.
	c.SetReg(0, isa.R14, 100)
	cold := c.Run(0, prog.Entry, 1_000_000)

	// Warm run: the same code streams from the micro-op cache.
	c.SetReg(0, isa.R14, 100)
	warm := c.Run(0, prog.Entry, 1_000_000)

	report := func(name string, r cpu.RunResult) {
		fmt.Printf("%-5s %6d cycles  %5d insts  DSB µops %-6d MITE µops %-6d switch penalty %d cycles\n",
			name, r.Cycles, r.Retired,
			r.Counters.Get(perfctr.DSBUops),
			r.Counters.Get(perfctr.MITEUops),
			r.Counters.Get(perfctr.DSBMissPenaltyCycles))
	}
	report("cold", cold)
	report("warm", warm)

	speedup := float64(cold.Cycles) / float64(warm.Cycles)
	fmt.Printf("\nmicro-op cache speedup: %.2fx — this timing difference is the covert channel\n", speedup)
}
