// Monitor demo (§VIII): a performance-counter-based detector watches
// workloads' micro-op cache behaviour. Benign hot loops run almost
// entirely out of the micro-op cache; the covert channel's
// prime/evict/probe churn forces continual DSB misses, which the
// monitor flags.
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/detect"
	"deaduops/internal/isa"
)

func main() {
	m := detect.NewMonitor(detect.Thresholds{})

	// --- A benign hot loop ----------------------------------------------
	prog, err := codegen.SequentialLoop(0x10000, 16, 3)
	if err != nil {
		log.Fatal(err)
	}
	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	c.SetReg(0, isa.R14, 20)
	c.Run(0, prog.Entry, 1_000_000) // warm
	before := c.Counters(0).Snapshot()
	c.SetReg(0, isa.R14, 200)
	c.Run(0, prog.Entry, 10_000_000)
	benign := c.Counters(0).Snapshot().Delta(before)
	fmt.Printf("benign loop:   %s → suspicious=%v\n",
		detect.Extract(benign), m.Suspicious(benign))

	// --- A covert-channel phase ------------------------------------------
	g := attack.DefaultGeometry()
	recv, err := attack.Build(attack.Tiger(0x40000, g, "recv"))
	if err != nil {
		log.Fatal(err)
	}
	send, err := attack.Build(attack.Tiger(0x80000, g, "send"))
	if err != nil {
		log.Fatal(err)
	}
	merged, err := asm.Merge(recv.Prog, send.Prog)
	if err != nil {
		log.Fatal(err)
	}
	ac := cpu.New(cpu.Intel())
	ac.LoadProgram(merged)
	before = ac.Counters(0).Snapshot()
	for round := 0; round < 10; round++ {
		if _, err := recv.Run(ac, 0, 20); err != nil {
			log.Fatal(err)
		}
		if _, err := send.Run(ac, 0, 20); err != nil {
			log.Fatal(err)
		}
	}
	attackDelta := ac.Counters(0).Snapshot().Delta(before)
	fmt.Printf("covert channel: %s → suspicious=%v\n",
		detect.Extract(attackDelta), m.Suspicious(attackDelta))

	fmt.Println("\nthe paper's caveat: such monitors are prone to misclassification")
	fmt.Println("and mimicry — an attacker can pace the channel below the threshold,")
	fmt.Println("trading bandwidth for stealth.")
}
