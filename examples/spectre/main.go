// Transient-execution demo (§VI): variant 1 leaks a victim library's
// secret through the micro-op cache after bypassing a bounds check;
// variant 2 leaks through a secret-dependent indirect call even when
// the victim is "protected" by LFENCE. The classic Spectre-v1 baseline
// runs last for comparison.
//
//	go run ./examples/spectre
package main

import (
	"fmt"
	"log"

	"deaduops/internal/cpu"
	"deaduops/internal/transient"
	"deaduops/internal/victim"
)

func main() {
	secret := []byte("SGX_SEALKEY=42!")

	// --- Variant 1: bounds-check bypass, µop cache disclosure ---------------
	c := cpu.New(cpu.Intel())
	v1, err := transient.NewVariant1(c)
	if err != nil {
		log.Fatal(err)
	}
	v1.WriteSecret(secret)
	leaked, st, err := v1.Leak(len(secret))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- variant 1: I see dead µops ---")
	fmt.Printf("victim secret  %q\n", secret)
	fmt.Printf("leaked         %q\n", leaked)
	fmt.Printf("%d bits; LLC references %d (stealthy), µop-cache miss penalty %d cycles (the real channel)\n\n",
		st.Bits, st.LLCRefs, st.UopMissPenalty)

	// --- Variant 2: the LFENCE bypass ----------------------------------------
	fmt.Println("--- variant 2: transmitting before dispatch ---")
	for _, fence := range []victim.Fence{victim.NoFence, victim.WithLFENCE, victim.WithCPUID} {
		c := cpu.New(cpu.Intel())
		v2, err := transient.NewVariant2(c, fence)
		if err != nil {
			log.Fatal(err)
		}
		if err := v2.Calibrate(4); err != nil {
			fmt.Printf("fence=%-7s channel closed (%v)\n", fence, err)
			continue
		}
		ok := 0
		for _, bit := range []int{1, 0, 1, 1, 0} {
			v2.WriteSecret(bit)
			got, err := v2.LeakBit()
			if err != nil {
				log.Fatal(err)
			}
			if got == (bit == 1) {
				ok++
			}
		}
		fmt.Printf("fence=%-7s channel open: %d/5 secret bits recovered through the fence\n", fence, ok)
	}
	fmt.Println()

	// --- Classic Spectre-v1 baseline (LLC flush+reload) ----------------------
	c3 := cpu.New(cpu.Intel())
	cl, err := transient.NewClassicSpectre(c3)
	if err != nil {
		log.Fatal(err)
	}
	cl.WriteSecret(secret)
	leaked2, st2, err := cl.Leak(len(secret))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- classic Spectre-v1 baseline ---")
	fmt.Printf("leaked         %q\n", leaked2)
	fmt.Printf("%d bits; LLC references %d (visible to cache monitors), µop-cache miss penalty %d cycles\n",
		st2.Bits, st2.LLCRefs, st2.UopMissPenalty)
}
