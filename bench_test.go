// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs its experiment end-to-end on the
// simulated core and reports domain metrics (simulated cycles,
// bandwidth, error rates) alongside Go's timing.
//
//	go test -bench=. -benchmem
package deaduops_test

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"deaduops/internal/attack"
	"deaduops/internal/channel"
	"deaduops/internal/cpu"
	"deaduops/internal/ecc"
	"deaduops/internal/experiments"
	"deaduops/internal/transient"
	"deaduops/internal/victim"
)

// benchOpts keeps benchmark iterations modest; the CLI runs larger
// sweeps.
var benchOpts = experiments.Options{Iterations: 30, Warmup: 10, Samples: 4}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	fn, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := fn(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3aCacheSize regenerates Fig 3a (micro-op cache size).
func BenchmarkFig3aCacheSize(b *testing.B) { runExperiment(b, "fig3a") }

// BenchmarkFig3bAssociativity regenerates Fig 3b (associativity).
func BenchmarkFig3bAssociativity(b *testing.B) { runExperiment(b, "fig3b") }

// BenchmarkFig4Placement regenerates Fig 4 (placement rules).
func BenchmarkFig4Placement(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5Replacement regenerates Fig 5 (replacement policy).
func BenchmarkFig5Replacement(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6SMTPartition regenerates Fig 6 (SMT partitioning, both
// sibling workloads).
func BenchmarkFig6SMTPartition(b *testing.B) {
	b.Run("pause", func(b *testing.B) { runExperiment(b, "fig6a") })
	b.Run("pointer-chase", func(b *testing.B) { runExperiment(b, "fig6b") })
}

// BenchmarkFig7PartitionMechanism regenerates Fig 7 (partition
// deconstruction).
func BenchmarkFig7PartitionMechanism(b *testing.B) {
	b.Run("set-probe", func(b *testing.B) { runExperiment(b, "fig7a") })
	b.Run("set-count", func(b *testing.B) { runExperiment(b, "fig7b") })
}

// BenchmarkFig8Striping regenerates Fig 8 (tiger/zebra striping).
func BenchmarkFig8Striping(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Tuning regenerates Fig 9 (channel parameter sweep).
func BenchmarkFig9Tuning(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10Fences regenerates Fig 10 (fence comparison).
func BenchmarkFig10Fences(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkTable1Channels regenerates Table I (all four channels).
func BenchmarkTable1Channels(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2SpectreTrace regenerates Table II (Spectre trace
// comparison).
func BenchmarkTable2SpectreTrace(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkChannelSameAddressSpace measures the §V-A channel's
// per-byte cost and reports its simulated bandwidth.
func BenchmarkChannelSameAddressSpace(b *testing.B) {
	c := cpu.New(cpu.Intel())
	ch, err := channel.NewSameAddressSpace(c, channel.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte{0xA5}
	b.ResetTimer()
	var last channel.Result
	for i := 0; i < b.N; i++ {
		_, res, err := ch.Transmit(payload)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.BandwidthKbps(), "sim-Kbit/s")
	b.ReportMetric(100*last.ErrorRate(), "err-%")
}

// BenchmarkChannelCrossSMT measures the §V-B channel on the AMD
// configuration.
func BenchmarkChannelCrossSMT(b *testing.B) {
	c := cpu.New(cpu.AMD())
	ch, err := channel.NewCrossSMT(c, channel.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte{0x3C}
	b.ResetTimer()
	var last channel.Result
	for i := 0; i < b.N; i++ {
		_, res, err := ch.Transmit(payload)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.BandwidthKbps(), "sim-Kbit/s")
}

// BenchmarkVariant1LeakByte measures the transient attack's per-byte
// cost.
func BenchmarkVariant1LeakByte(b *testing.B) {
	c := cpu.New(cpu.Intel())
	v, err := transient.NewVariant1(c)
	if err != nil {
		b.Fatal(err)
	}
	v.WriteSecret([]byte{0x5A})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := v.Leak(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVariant2LFENCEBypass measures the LFENCE-bypassing leak.
func BenchmarkVariant2LFENCEBypass(b *testing.B) {
	c := cpu.New(cpu.Intel())
	v, err := transient.NewVariant2(c, victim.WithLFENCE)
	if err != nil {
		b.Fatal(err)
	}
	if err := v.Calibrate(4); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.WriteSecret(i & 1)
		if _, err := v.LeakBit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassicSpectreLeakByte is the Table II baseline's per-byte
// cost.
func BenchmarkClassicSpectreLeakByte(b *testing.B) {
	c := cpu.New(cpu.Intel())
	cl, err := transient.NewClassicSpectre(c)
	if err != nil {
		b.Fatal(err)
	}
	cl.WriteSecret([]byte{0x5A})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.Leak(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles per second of host time on a µop-cache-resident loop, plus
// heap allocations per simulated cycle (pinned near zero by the
// steady-state pools; see internal/cpu's TestSteadyStateRunAllocs).
func BenchmarkSimulatorThroughput(b *testing.B) {
	tiger, err := attack.Build(attack.Tiger(0x40000, attack.DefaultGeometry(), "bench"))
	if err != nil {
		b.Fatal(err)
	}
	c := cpu.New(cpu.Intel())
	c.LoadProgram(tiger.Prog)
	if _, err := tiger.Run(c, 0, 10); err != nil {
		b.Fatal(err)
	}
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	start := time.Now()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		n, err := tiger.Run(c, 0, 100)
		if err != nil {
			b.Fatal(err)
		}
		cycles += n
	}
	elapsed := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
	if elapsed > 0 {
		b.ReportMetric(float64(cycles)/elapsed.Seconds(), "sim-cycles/s")
	}
	if cycles > 0 {
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(cycles), "allocs/sim-cycle")
	}
}

// BenchmarkSimulatorThroughputParallel runs one independent simulated
// core per worker goroutine — the parallel-sweep workload shape — and
// reports aggregate simulated cycles per second across all workers.
func BenchmarkSimulatorThroughputParallel(b *testing.B) {
	spec := attack.Tiger(0x40000, attack.DefaultGeometry(), "bench")
	var cycles atomic.Uint64
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		tiger, err := attack.Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		c := cpu.New(cpu.Intel())
		c.LoadProgram(tiger.Prog)
		if _, err := tiger.Run(c, 0, 10); err != nil {
			b.Fatal(err)
		}
		var local uint64
		for pb.Next() {
			n, err := tiger.Run(c, 0, 100)
			if err != nil {
				b.Fatal(err)
			}
			local += n
		}
		cycles.Add(local)
	})
	if elapsed := time.Since(start); elapsed > 0 {
		b.ReportMetric(float64(cycles.Load())/elapsed.Seconds(), "sim-cycles/s")
	}
}

// BenchmarkRSCodec measures the Reed-Solomon encode+decode pipeline
// used for Table I's corrected bandwidth.
func BenchmarkRSCodec(b *testing.B) {
	codec, err := ecc.NewCodec(42)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i * 31)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := codec.Encode(data)
		if err != nil {
			b.Fatal(err)
		}
		enc[i%len(enc)] ^= 0xFF // one error per block of interest
		if _, err := codec.Decode(enc, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChannelMultiSymbol measures the jump-table optimization: a
// 4-ary symbol channel (2 bits per prime-send-probe round).
func BenchmarkChannelMultiSymbol(b *testing.B) {
	c := cpu.New(cpu.Intel())
	ch, err := channel.NewMultiSymbol(c, channel.DefaultConfig(), 2)
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte{0xA5}
	b.ResetTimer()
	var last channel.Result
	for i := 0; i < b.N; i++ {
		_, res, err := ch.Transmit(payload)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.BandwidthKbps(), "sim-Kbit/s")
	b.ReportMetric(100*last.ErrorRate(), "err-%")
}

// BenchmarkCapacityAcrossGenerations regenerates the capacity table
// (Skylake / Sunny Cove / Zen / Zen-2 knee sweep).
func BenchmarkCapacityAcrossGenerations(b *testing.B) { runExperiment(b, "capacity") }

// BenchmarkMitigationMatrix regenerates the §VIII mitigation table.
func BenchmarkMitigationMatrix(b *testing.B) { runExperiment(b, "mitigations") }

// BenchmarkInvisibleSpeculation regenerates the §VII defense matrix.
func BenchmarkInvisibleSpeculation(b *testing.B) { runExperiment(b, "invisispec") }

// BenchmarkNaturalGadget measures the §VI-A pci_vpd_find_tag-style
// attack's per-bit cost.
func BenchmarkNaturalGadget(b *testing.B) {
	c := cpu.New(cpu.Intel())
	v, err := transient.NewNaturalGadget(c)
	if err != nil {
		b.Fatal(err)
	}
	v.WriteSecret([]byte{0x80})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.LeakTagBit(0); err != nil {
			b.Fatal(err)
		}
	}
}
