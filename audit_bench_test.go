package deaduops_test

import (
	"sync"
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
	"deaduops/internal/ref"
	"deaduops/internal/staticlint"
)

// The audit-throughput benchmark: findings/s over a 1000-program
// corpus, cold cache vs warm cache — the number the incremental audit
// service (cmd/uoplintd) exists to improve. Cold audits every program
// from scratch; warm re-audits an unchanged corpus against a primed
// cache, the daemon's steady state.

const auditCorpusSize = 1000

var (
	auditCorpusOnce sync.Once
	auditCorpus     []*asm.Program
)

func auditCorpusProgs(b *testing.B) []*asm.Program {
	b.Helper()
	auditCorpusOnce.Do(func() {
		genCfg := ref.DefaultGenConfig()
		auditCorpus = make([]*asm.Program, auditCorpusSize)
		for i := range auditCorpus {
			p, err := ref.Generate(uint64(i+1), genCfg)
			if err != nil {
				b.Fatal(err)
			}
			auditCorpus[i] = p
		}
	})
	return auditCorpus
}

// auditPass lints the whole corpus against c and returns the finding
// count.
func auditPass(progs []*asm.Program, spec staticlint.Spec, cfg staticlint.Config, c *staticlint.Cache) int {
	findings := 0
	for _, p := range progs {
		r, _ := staticlint.LintCached(p, spec, cfg, c)
		findings += len(r.Findings)
	}
	return findings
}

func BenchmarkAuditCorpus(b *testing.B) {
	progs := auditCorpusProgs(b)
	cfg := staticlint.DefaultConfig()
	// R1 is declared secret so the taint engine has real work and the
	// corpus yields findings to rate.
	spec := staticlint.Spec{SecretRegs: []isa.Reg{isa.R1}}

	b.Run("cold", func(b *testing.B) {
		findings := 0
		for i := 0; i < b.N; i++ {
			findings = auditPass(progs, spec, cfg, staticlint.NewCache())
		}
		if findings == 0 {
			b.Fatal("corpus produced no findings; the throughput metric is vacuous")
		}
		secs := b.Elapsed().Seconds()
		b.ReportMetric(float64(findings)*float64(b.N)/secs, "findings/s")
		b.ReportMetric(float64(len(progs))*float64(b.N)/secs, "programs/s")
	})

	b.Run("warm", func(b *testing.B) {
		c := staticlint.NewCache()
		auditPass(progs, spec, cfg, c)
		b.ResetTimer()
		findings := 0
		for i := 0; i < b.N; i++ {
			findings = auditPass(progs, spec, cfg, c)
		}
		if findings == 0 {
			b.Fatal("corpus produced no findings; the throughput metric is vacuous")
		}
		secs := b.Elapsed().Seconds()
		b.ReportMetric(float64(findings)*float64(b.N)/secs, "findings/s")
		b.ReportMetric(float64(len(progs))*float64(b.N)/secs, "programs/s")
	})
}
