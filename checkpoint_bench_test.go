// Benchmarks for the checkpointed measurement paths: one difftest
// point and one channel calibration, each measured with the classic
// fresh-core-per-call protocol (checkpoint=off, cycle skip disabled)
// and with checkpoint forking plus the event-driven fast path
// (checkpoint=on). The =on variants report the measured speedup over
// an inline baseline and the fraction of simulated cycles the fast
// path crossed in single steps — the two numbers the perf-regression
// gate watches.
package deaduops_test

import (
	"testing"
	"time"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/cpu"
	"deaduops/internal/perfctr"
	"deaduops/internal/staticlint/difftest"
)

// difftestPointSeed picks one mid-corpus victim; any seed works, the
// protocols are equivalent on all of them (TestPointRunnerMatchesMeasure).
const difftestPointSeed = 7

// classicPoint is one point measured the pre-checkpoint way: a fresh
// core and a full training prefix per direction per quantity.
func classicPoint(b *testing.B, h *difftest.Harness, v *difftest.Victim, a *cpu.Arena) {
	b.Helper()
	for _, secret := range []int64{1, 0} {
		if _, err := h.MeasureDirectionWith(v, secret, a); err != nil {
			b.Fatal(err)
		}
		if _, _, err := h.MeasureSwitches(v, secret, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDifftestPoint measures one full difftest point (both
// directions' refill deltas and switch counts) per iteration.
func BenchmarkDifftestPoint(b *testing.B) {
	b.Run("checkpoint=off", func(b *testing.B) {
		h := difftest.DefaultHarness().WithoutCycleSkip()
		v, err := h.Generate(difftestPointSeed)
		if err != nil {
			b.Fatal(err)
		}
		a := new(cpu.Arena)
		classicPoint(b, h, v, a) // warm the arena
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			classicPoint(b, h, v, a)
		}
	})
	b.Run("checkpoint=on", func(b *testing.B) {
		h := difftest.DefaultHarness()
		v, err := h.Generate(difftestPointSeed)
		if err != nil {
			b.Fatal(err)
		}
		// Inline baseline: the classic protocol on a skip-disabled
		// harness, so the reported speedup is measured in-process
		// rather than inferred across sub-benchmarks.
		hOff := h.WithoutCycleSkip()
		aOff := new(cpu.Arena)
		classicPoint(b, hOff, v, aOff)
		const baseReps = 3
		t0 := time.Now()
		for i := 0; i < baseReps; i++ {
			classicPoint(b, hOff, v, aOff)
		}
		baseNs := float64(time.Since(t0).Nanoseconds()) / baseReps

		a := new(cpu.Arena)
		r := h.NewPointRunner(v, a)
		var skipped, total uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, secret := range []int64{1, 0} {
				pt, err := r.Measure(secret)
				if err != nil {
					b.Fatal(err)
				}
				skipped += pt.SkippedCycles
				total += pt.TotalCycles
			}
		}
		b.StopTimer()
		if total > 0 {
			b.ReportMetric(float64(skipped)/float64(total), "skipped/total-cycles")
		}
		if el := b.Elapsed(); el > 0 && b.N > 0 {
			b.ReportMetric(baseNs/(float64(el.Nanoseconds())/float64(b.N)), "speedup-vs-fresh")
		}
	})
}

// calibrateRig builds the standard receiver/sender tiger pair for cfg.
func calibrateRig(b *testing.B, cfg cpu.Config) (*cpu.CPU, *attack.Routine, *attack.Routine) {
	b.Helper()
	g := attack.DefaultGeometry()
	recv, err := attack.Build(attack.Tiger(0x40000, g, "recv"))
	if err != nil {
		b.Fatal(err)
	}
	send, err := attack.Build(attack.Tiger(0x80000, g, "send"))
	if err != nil {
		b.Fatal(err)
	}
	merged, err := asm.Merge(recv.Prog, send.Prog)
	if err != nil {
		b.Fatal(err)
	}
	c := cpu.New(cfg)
	c.LoadProgram(merged)
	return c, recv, send
}

// BenchmarkCalibrate measures one full channel calibration (4 rounds,
// hit and miss each) per iteration.
func BenchmarkCalibrate(b *testing.B) {
	const primeIters, probeIters, rounds = 20, 5, 4
	b.Run("checkpoint=off", func(b *testing.B) {
		cfg := cpu.Intel()
		cfg.DisableCycleSkip = true
		c, recv, send := calibrateRig(b, cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := attack.Calibrate(c, recv, send, primeIters, probeIters, rounds); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("checkpoint=on", func(b *testing.B) {
		offCfg := cpu.Intel()
		offCfg.DisableCycleSkip = true
		cOff, recvOff, sendOff := calibrateRig(b, offCfg)
		const baseReps = 3
		t0 := time.Now()
		for i := 0; i < baseReps; i++ {
			if _, err := attack.Calibrate(cOff, recvOff, sendOff, primeIters, probeIters, rounds); err != nil {
				b.Fatal(err)
			}
		}
		baseNs := float64(time.Since(t0).Nanoseconds()) / baseReps

		c, recv, send := calibrateRig(b, cpu.Intel())
		var ck cpu.Checkpoint
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := attack.CalibrateCheckpointed(c, &ck, recv, send, primeIters, probeIters, rounds); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if el := b.Elapsed(); el > 0 && b.N > 0 {
			b.ReportMetric(baseNs/(float64(el.Nanoseconds())/float64(b.N)), "speedup-vs-fresh")
		}
		// Skip-engagement audit: every Restore rewinds the perf
		// counters to the snapshot, so a loop-wide counter delta would
		// be meaningless — instead replay one calibration with a
		// counter read around each run between restores.
		var skipped, total uint64
		runCounted := func(r *attack.Routine, iters int64) {
			s0 := c.Counters(0).Snapshot()
			if _, err := r.Run(c, 0, iters); err != nil {
				b.Fatal(err)
			}
			d := c.Counters(0).Snapshot().Delta(s0)
			skipped += d.Get(perfctr.SkippedCycles)
			total += d.Get(perfctr.Cycles)
		}
		runCounted(recv, primeIters)
		c.Checkpoint(&ck)
		for i := 0; i < rounds; i++ {
			c.Restore(&ck)
			runCounted(recv, probeIters)
			c.Restore(&ck)
			runCounted(send, primeIters)
			runCounted(recv, probeIters)
		}
		if total > 0 {
			b.ReportMetric(float64(skipped)/float64(total), "skipped/total-cycles")
		}
	})
}
