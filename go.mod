module deaduops

go 1.22
