package asm

import (
	"strings"
	"testing"

	"deaduops/internal/isa"
)

func TestLabelsAndFixups(t *testing.T) {
	b := New(0x1000)
	b.Jmp("target") // forward reference
	b.Nop(3)
	b.Label("target")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	addr := p.MustLabel("target")
	jmp := p.At(0x1000)
	if jmp == nil || jmp.Op != isa.JMP {
		t.Fatal("no jmp at origin")
	}
	if uint64(jmp.Imm) != addr {
		t.Errorf("fixup: jmp target %#x, label %#x", jmp.Imm, addr)
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	b := New(0)
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Error("undefined label accepted")
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	b := New(0)
	b.Label("x").Nop(1).Label("x")
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestAlignPadsWithNops(t *testing.T) {
	b := New(0x1001)
	b.Align(32)
	if b.PC() != 0x1020 {
		t.Errorf("PC after align = %#x", b.PC())
	}
	b.Nop(1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Padding must be contiguous executable NOPs.
	addr := uint64(0x1001)
	for addr < 0x1020 {
		in := p.At(addr)
		if in == nil || in.Op != isa.NOP {
			t.Fatalf("no pad NOP at %#x", addr)
		}
		addr = in.End()
	}
}

func TestAlignRejectsNonPowerOfTwo(t *testing.T) {
	b := New(0)
	b.Align(24)
	if _, err := b.Build(); err == nil {
		t.Error("align 24 accepted")
	}
}

func TestOrgForwardOnly(t *testing.T) {
	b := New(0x100)
	b.Nop(1)
	b.Org(0x80)
	if _, err := b.Build(); err == nil {
		t.Error("backwards org accepted")
	}
}

func TestOrgLeavesGap(t *testing.T) {
	b := New(0x100)
	b.Nop(1)
	b.Org(0x200)
	b.Halt()
	p := b.MustBuild()
	if p.At(0x150) != nil {
		t.Error("gap is mapped")
	}
	if p.At(0x200) == nil {
		t.Error("post-org instruction missing")
	}
}

func TestNopRegionExactBytes(t *testing.T) {
	for _, tc := range []struct{ bytes, count int }{
		{32, 3}, {32, 4}, {32, 32}, {16, 2}, {30, 2},
	} {
		b := New(0)
		b.NopRegion(tc.bytes, tc.count)
		p, err := b.Build()
		if err != nil {
			t.Fatalf("NopRegion(%d,%d): %v", tc.bytes, tc.count, err)
		}
		if p.Size() != tc.count {
			t.Errorf("NopRegion(%d,%d): %d insts", tc.bytes, tc.count, p.Size())
		}
		total := 0
		for _, in := range p.Insts {
			total += int(in.Len)
		}
		if total != tc.bytes {
			t.Errorf("NopRegion(%d,%d): %d bytes", tc.bytes, tc.count, total)
		}
	}
}

func TestNopRegionRejectsImpossible(t *testing.T) {
	for _, tc := range []struct{ bytes, count int }{
		{32, 0}, {2, 3}, {100, 5},
	} {
		b := New(0)
		b.NopRegion(tc.bytes, tc.count)
		if _, err := b.Build(); err == nil {
			t.Errorf("NopRegion(%d,%d) accepted", tc.bytes, tc.count)
		}
	}
}

func TestInstructionLengths(t *testing.T) {
	b := New(0)
	b.Movi(isa.R1, 1)     // 5
	b.Movi64(isa.R2, 1)   // 10
	b.Mov(isa.R1, isa.R2) // 3
	b.Addi(isa.R1, 1)     // 4
	b.Jmp("end")          // 5
	b.JmpShort("end")     // 2
	b.Label("end")
	b.Halt() // 1
	p := b.MustBuild()
	wantLens := []uint8{5, 10, 3, 4, 5, 2, 1}
	for i, in := range p.Insts {
		if in.Len != wantLens[i] {
			t.Errorf("inst %d (%v): len %d, want %d", i, in.Op, in.Len, wantLens[i])
		}
	}
	// Addresses must be contiguous.
	addr := uint64(0)
	for _, in := range p.Insts {
		if in.Addr != addr {
			t.Errorf("inst %v at %#x, want %#x", in.Op, in.Addr, addr)
		}
		addr = in.End()
	}
}

func TestImm64TakesTwoSlots(t *testing.T) {
	b := New(0)
	b.Movi64(isa.R1, 1<<40)
	p := b.MustBuild()
	if !p.Insts[0].Imm64 {
		t.Error("Movi64 not marked Imm64")
	}
}

func TestLCPMarking(t *testing.T) {
	b := New(0)
	b.NopLCP(14)
	b.Nop(14)
	p := b.MustBuild()
	if !p.Insts[0].LCP || p.Insts[1].LCP {
		t.Error("LCP flags wrong")
	}
}

func TestRawAndLast(t *testing.T) {
	b := New(0)
	b.Raw(isa.Inst{Op: isa.PAUSE}, 2)
	b.Last().LCP = true
	p := b.MustBuild()
	if p.Insts[0].Op != isa.PAUSE || !p.Insts[0].LCP {
		t.Error("Raw/Last roundtrip failed")
	}
}

func TestLastBeforeEmitFails(t *testing.T) {
	b := New(0)
	_ = b.Last()
	if _, err := b.Build(); err == nil {
		t.Error("Last() before emit accepted")
	}
}

func TestEntryResolution(t *testing.T) {
	// Default entry: first instruction.
	b := New(0x500)
	b.Nop(1).Halt()
	if p := b.MustBuild(); p.Entry != 0x500 {
		t.Errorf("entry %#x", p.Entry)
	}
	// Explicit "entry" label wins.
	b2 := New(0x500)
	b2.Nop(1)
	b2.Label("entry")
	b2.Halt()
	if p := b2.MustBuild(); p.Entry != 0x501 {
		t.Errorf("entry %#x", p.Entry)
	}
}

func TestMergeDisjoint(t *testing.T) {
	a := New(0x1000)
	a.Label("fa").Halt()
	pa := a.MustBuild()
	b := New(0x2000)
	b.Label("fb").Halt()
	pb := b.MustBuild()
	m, err := Merge(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if m.Entry != pa.Entry {
		t.Errorf("merged entry %#x", m.Entry)
	}
	if m.At(0x1000) == nil || m.At(0x2000) == nil {
		t.Error("merged image incomplete")
	}
	if _, ok := m.Label("fb"); !ok {
		t.Error("label fb lost in merge")
	}
}

func TestMergeAddressCollision(t *testing.T) {
	a := New(0x1000)
	a.Halt()
	b := New(0x1000)
	b.Nop(1)
	if _, err := Merge(a.MustBuild(), b.MustBuild()); err == nil {
		t.Error("address collision accepted")
	}
}

func TestMergeLabelCollisionFirstWins(t *testing.T) {
	a := New(0x1000)
	a.Label("entry").Halt()
	b := New(0x2000)
	b.Label("entry").Halt()
	m, err := Merge(a.MustBuild(), b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MustLabel("entry"); got != 0x1000 {
		t.Errorf("entry = %#x, want first program's", got)
	}
}

func TestBadLengthRejected(t *testing.T) {
	b := New(0)
	b.Nop(16)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "length") {
		t.Errorf("16-byte nop accepted: %v", err)
	}
	b2 := New(0)
	b2.Nop(0)
	if _, err := b2.Build(); err == nil {
		t.Error("0-byte nop accepted")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	b := New(0)
	b.Jmp("undefined")
	b.MustBuild()
}

func TestMustLabelPanics(t *testing.T) {
	b := New(0)
	b.Halt()
	p := b.MustBuild()
	defer func() {
		if recover() == nil {
			t.Error("MustLabel did not panic")
		}
	}()
	p.MustLabel("nope")
}

func TestMsromEmitter(t *testing.T) {
	b := New(0)
	b.Msrom(12)
	p := b.MustBuild()
	if got := p.Insts[0].Uops(); got != 12 {
		t.Errorf("msrom uops = %d", got)
	}
	bad := New(0)
	bad.Msrom(2)
	if _, err := bad.Build(); err == nil {
		t.Error("msrom with 2 µops accepted (belongs to the complex decoder)")
	}
}
