package asm

import (
	"fmt"
	"testing"

	"deaduops/internal/isa"
)

// FuzzAssemble drives the Builder with an arbitrary byte-coded script
// and holds every successfully built program to its invariants:
// instructions laid out in strictly increasing, non-overlapping
// addresses, every instruction findable through Program.At, and every
// label-fixed jump resolved to a bound label address. Builds may
// legitimately fail (backward org, bad lengths never emitted here, …)
// — the contract under fuzz is "error or consistent program", never a
// panic or a silently inconsistent image.
func FuzzAssemble(f *testing.F) {
	f.Add([]byte{0x00, 0x05, 0x01, 0x03, 0x08, 0x02})       // nops + jump
	f.Add([]byte{0x06, 0x20, 0x00, 0x0f, 0x07, 0x05})       // align/org play
	f.Add([]byte{0x09, 0x00, 0x04, 0x01, 0x05, 0x30, 0x08}) // labels + branches
	f.Add([]byte{0x0a, 0x08, 0x0a, 0xc8})                   // msrom
	f.Fuzz(func(t *testing.T, data []byte) {
		b := New(0x1000)
		labels := 0
		referenced := map[string]bool{}
		for i := 0; i+1 < len(data) && i < 64; i += 2 {
			op, arg := data[i]%12, data[i+1]
			switch op {
			case 0:
				b.Nop(1 + int(arg%15))
			case 1:
				b.NopLCP(1 + int(arg%15))
			case 2:
				b.Movi(isa.R1, int64(arg))
			case 3:
				b.Movi64(isa.R2, int64(arg))
			case 4:
				b.Cmpi(isa.R1, int64(arg))
			case 5:
				// Branch to a label defined later (forward fixup).
				l := fmt.Sprintf("L%d", arg%4)
				referenced[l] = true
				b.Jcc(isa.NE, l)
			case 6:
				b.Align(1 << (arg % 7))
			case 7:
				b.Org(b.PC() + uint64(arg))
			case 8:
				l := fmt.Sprintf("L%d", arg%4)
				referenced[l] = true
				b.JmpShort(l)
			case 9:
				l := fmt.Sprintf("L%d", labels%4)
				if _, bound := b.labels[l]; !bound {
					b.Label(l)
				}
				labels++
			case 10:
				b.Msrom(5 + int(arg)%196)
			case 11:
				b.Loadb(isa.R3, isa.R1, int64(arg))
			}
		}
		// Bind any labels the script referenced but never defined, so
		// fixup resolution itself stays on the success path.
		for l := range referenced {
			if _, bound := b.labels[l]; !bound {
				b.Label(l)
			}
		}
		b.Halt()

		p, err := b.Build()
		if err != nil {
			return // rejected scripts are fine; panics are not
		}
		var prev *isa.Inst
		for _, in := range p.Insts {
			if in.Len < 1 || in.Len > 15 {
				t.Fatalf("instruction %v has length %d", in, in.Len)
			}
			if prev != nil && in.Addr < prev.End() {
				t.Fatalf("overlap: %v (ends %#x) then %v", prev, prev.End(), in)
			}
			if got := p.At(in.Addr); got != in {
				t.Fatalf("At(%#x) = %v, want %v", in.Addr, got, in)
			}
			prev = in
		}
		bound := map[uint64]bool{}
		for l := range referenced {
			addr, ok := p.Label(l)
			if !ok {
				t.Fatalf("referenced label %q lost during Build", l)
			}
			bound[addr] = true
		}
		for _, in := range p.Insts {
			if (in.Op == isa.JCC || in.Op == isa.JMP) && !bound[uint64(in.Imm)] {
				t.Fatalf("%v resolved to %#x, which is no bound label", in, in.Imm)
			}
		}
	})
}
