// Package asm provides a small assembler for SX86 programs: labels,
// forward references, alignment, and explicit control over instruction
// length and prefix composition — the knobs the paper's microbenchmarks
// (Listings 1-3) turn to steer micro-op cache placement.
package asm

import (
	"fmt"
	"sort"

	"deaduops/internal/isa"
)

// Program is an assembled SX86 code image. Instructions are addressed;
// fetch looks them up by the address of their first byte.
type Program struct {
	Insts  []*isa.Inst
	byAddr map[uint64]*isa.Inst
	labels map[string]uint64

	// Entry is the address of the first instruction emitted after the
	// builder's origin (or the label named "entry" if defined).
	Entry uint64
}

// At returns the instruction whose first byte is at addr, or nil.
func (p *Program) At(addr uint64) *isa.Inst {
	return p.byAddr[addr]
}

// Label returns the address bound to name.
func (p *Program) Label(name string) (uint64, bool) {
	a, ok := p.labels[name]
	return a, ok
}

// MustLabel returns the address bound to name, panicking if undefined.
func (p *Program) MustLabel(name string) uint64 {
	a, ok := p.labels[name]
	if !ok {
		panic(fmt.Sprintf("asm: undefined label %q", name))
	}
	return a
}

// LabelAt returns a label bound to addr, or "" if none. When several
// labels share the address the lexicographically first is returned, so
// callers rendering addresses symbolically stay deterministic.
func (p *Program) LabelAt(addr uint64) string {
	best := ""
	for name, a := range p.labels {
		if a == addr && (best == "" || name < best) {
			best = name
		}
	}
	return best
}

// Size returns the number of instructions in the program.
func (p *Program) Size() int { return len(p.Insts) }

// LabelBinding is one label → address binding of an assembled program.
type LabelBinding struct {
	Name string
	Addr uint64
}

// Labels returns every label binding sorted by name — the canonical
// enumeration callers hashing or rendering a whole program need (labels
// reach findings through LabelAt, so two programs differing only in a
// label are distinct program content).
func (p *Program) Labels() []LabelBinding {
	out := make([]LabelBinding, 0, len(p.labels))
	for name, addr := range p.labels {
		out = append(out, LabelBinding{Name: name, Addr: addr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// fixup records a pending branch-target resolution.
type fixup struct {
	inst  *isa.Inst
	label string
}

// Builder assembles a Program. The zero value is not usable; call New.
type Builder struct {
	insts  []*isa.Inst
	labels map[string]uint64
	fixups []fixup
	pc     uint64
	err    error
}

// New returns a Builder whose first instruction will be placed at org.
func New(org uint64) *Builder {
	return &Builder{labels: make(map[string]uint64), pc: org}
}

// PC returns the address at which the next instruction will be placed.
func (b *Builder) PC() uint64 { return b.pc }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm: "+format, args...)
	}
}

// emit appends an instruction of the given encoded length.
func (b *Builder) emit(in isa.Inst, length uint8) *isa.Inst {
	if length < 1 || length > 15 {
		b.fail("instruction length %d out of range [1,15]", length)
		length = 1
	}
	in.Addr = b.pc
	in.Len = length
	p := &in
	b.insts = append(b.insts, p)
	b.pc += uint64(length)
	return p
}

// Label binds name to the current PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return b
	}
	b.labels[name] = b.pc
	return b
}

// Align pads with NOPs so the next instruction starts at a multiple of n
// (a power of two). Padding uses the fewest NOPs possible (15-byte max).
func (b *Builder) Align(n uint64) *Builder {
	if n == 0 || n&(n-1) != 0 {
		b.fail("align %d is not a power of two", n)
		return b
	}
	for b.pc%n != 0 {
		gap := n - b.pc%n
		if gap > 15 {
			gap = 15
		}
		b.emit(isa.Inst{Op: isa.NOP}, uint8(gap))
	}
	return b
}

// Org moves the placement address forward to addr, leaving an unmapped
// gap. Control flow must never fall through a gap.
func (b *Builder) Org(addr uint64) *Builder {
	if addr < b.pc {
		b.fail("org 0x%x is behind pc 0x%x", addr, b.pc)
		return b
	}
	b.pc = addr
	return b
}

// Nop emits a NOP of the given encoded length (1-15 bytes).
func (b *Builder) Nop(length int) *Builder {
	b.emit(isa.Inst{Op: isa.NOP}, uint8(length))
	return b
}

// NopLCP emits a NOP carrying a length-changing prefix, which stalls the
// predecoder. The paper's tiger/zebra code pads with these to maximize
// the decode-pipeline penalty on a micro-op cache miss.
func (b *Builder) NopLCP(length int) *Builder {
	b.emit(isa.Inst{Op: isa.NOP, LCP: true}, uint8(length))
	return b
}

// NopRegion emits NOPs totalling exactly `bytes` bytes using `count`
// instructions. It fails if the combination is not encodable.
func (b *Builder) NopRegion(bytes, count int) *Builder {
	if count < 1 || bytes < count || bytes > count*15 {
		b.fail("nop region %d bytes / %d insts not encodable", bytes, count)
		return b
	}
	for i := 0; i < count; i++ {
		rem := count - i
		length := (bytes + rem - 1) / rem // ceil split keeps all lengths legal
		if length > 15 {
			length = 15
		}
		b.Nop(length)
		bytes -= length
	}
	return b
}

// Movi emits MOVI dst, imm with a 32-bit immediate (5 bytes).
func (b *Builder) Movi(dst isa.Reg, imm int64) *Builder {
	b.emit(isa.Inst{Op: isa.MOVI, Dst: dst, Imm: imm, HasImm: true}, 5)
	return b
}

// Movi64 emits MOVI dst, imm with a 64-bit immediate (10 bytes). The
// immediate occupies two micro-op cache slots.
func (b *Builder) Movi64(dst isa.Reg, imm int64) *Builder {
	b.emit(isa.Inst{Op: isa.MOVI, Dst: dst, Imm: imm, HasImm: true, Imm64: true}, 10)
	return b
}

// Mov emits MOV dst, src.
func (b *Builder) Mov(dst, src isa.Reg) *Builder {
	b.emit(isa.Inst{Op: isa.MOV, Dst: dst, Src: src}, 3)
	return b
}

func (b *Builder) alu(op isa.Op, dst, src isa.Reg) *Builder {
	b.emit(isa.Inst{Op: op, Dst: dst, Src: src}, 3)
	return b
}

func (b *Builder) alui(op isa.Op, dst isa.Reg, imm int64) *Builder {
	b.emit(isa.Inst{Op: op, Dst: dst, Imm: imm, HasImm: true}, 4)
	return b
}

// Add emits ADD dst, src (register form, like the other ALU emitters
// below; the -i suffix marks the immediate forms).
func (b *Builder) Add(dst, src isa.Reg) *Builder { return b.alu(isa.ADD, dst, src) }

// Addi emits ADD dst, imm.
func (b *Builder) Addi(dst isa.Reg, imm int64) *Builder { return b.alui(isa.ADD, dst, imm) }

// Sub emits SUB dst, src.
func (b *Builder) Sub(dst, src isa.Reg) *Builder { return b.alu(isa.SUB, dst, src) }

// Subi emits SUB dst, imm.
func (b *Builder) Subi(dst isa.Reg, imm int64) *Builder { return b.alui(isa.SUB, dst, imm) }

// And emits AND dst, src.
func (b *Builder) And(dst, src isa.Reg) *Builder { return b.alu(isa.AND, dst, src) }

// Andi emits AND dst, imm.
func (b *Builder) Andi(dst isa.Reg, imm int64) *Builder { return b.alui(isa.AND, dst, imm) }

// Or emits OR dst, src.
func (b *Builder) Or(dst, src isa.Reg) *Builder { return b.alu(isa.OR, dst, src) }

// Ori emits OR dst, imm.
func (b *Builder) Ori(dst isa.Reg, imm int64) *Builder { return b.alui(isa.OR, dst, imm) }

// Xor emits XOR dst, src.
func (b *Builder) Xor(dst, src isa.Reg) *Builder { return b.alu(isa.XOR, dst, src) }

// Xori emits XOR dst, imm.
func (b *Builder) Xori(dst isa.Reg, imm int64) *Builder { return b.alui(isa.XOR, dst, imm) }

// Shli emits SHL dst, imm.
func (b *Builder) Shli(dst isa.Reg, imm int64) *Builder { return b.alui(isa.SHL, dst, imm) }

// Shri emits SHR dst, imm (logical).
func (b *Builder) Shri(dst isa.Reg, imm int64) *Builder { return b.alui(isa.SHR, dst, imm) }

// Shl emits SHL dst, src (register-count shift).
func (b *Builder) Shl(dst, src isa.Reg) *Builder { return b.alu(isa.SHL, dst, src) }

// Shr emits SHR dst, src (register-count logical shift).
func (b *Builder) Shr(dst, src isa.Reg) *Builder { return b.alu(isa.SHR, dst, src) }

// Cmp emits CMP a, r (register form).
func (b *Builder) Cmp(a, r isa.Reg) *Builder { return b.alu(isa.CMP, a, r) }

// Cmpi emits CMP a, imm.
func (b *Builder) Cmpi(a isa.Reg, imm int64) *Builder { return b.alui(isa.CMP, a, imm) }

// Test emits TEST a, r.
func (b *Builder) Test(a, r isa.Reg) *Builder { return b.alu(isa.TEST, a, r) }

// Testi emits TEST a, imm.
func (b *Builder) Testi(a isa.Reg, imm int64) *Builder { return b.alui(isa.TEST, a, imm) }

// Jmp emits an unconditional jump to label (5-byte encoding).
func (b *Builder) Jmp(label string) *Builder {
	in := b.emit(isa.Inst{Op: isa.JMP}, 5)
	b.fixups = append(b.fixups, fixup{in, label})
	return b
}

// JmpShort emits a 2-byte unconditional jump to label.
func (b *Builder) JmpShort(label string) *Builder {
	in := b.emit(isa.Inst{Op: isa.JMP}, 2)
	b.fixups = append(b.fixups, fixup{in, label})
	return b
}

// Jcc emits a conditional jump to label.
func (b *Builder) Jcc(c isa.Cond, label string) *Builder {
	in := b.emit(isa.Inst{Op: isa.JCC, Cond: c}, 2)
	b.fixups = append(b.fixups, fixup{in, label})
	return b
}

// Jmpi emits an indirect jump through r.
func (b *Builder) Jmpi(r isa.Reg) *Builder {
	b.emit(isa.Inst{Op: isa.JMPI, Dst: r}, 3)
	return b
}

// Call emits a direct call to label.
func (b *Builder) Call(label string) *Builder {
	in := b.emit(isa.Inst{Op: isa.CALL}, 5)
	b.fixups = append(b.fixups, fixup{in, label})
	return b
}

// Calli emits an indirect call through r.
func (b *Builder) Calli(r isa.Reg) *Builder {
	b.emit(isa.Inst{Op: isa.CALLI, Dst: r}, 3)
	return b
}

// Ret emits a return.
func (b *Builder) Ret() *Builder {
	b.emit(isa.Inst{Op: isa.RET}, 1)
	return b
}

// Load emits LOAD dst, [base+off] (8 bytes).
func (b *Builder) Load(dst, base isa.Reg, off int64) *Builder {
	b.emit(isa.Inst{Op: isa.LOAD, Dst: dst, Src: base, Imm: off}, 4)
	return b
}

// Loadb emits LOADB dst, [base+off] (one byte, zero-extended).
func (b *Builder) Loadb(dst, base isa.Reg, off int64) *Builder {
	b.emit(isa.Inst{Op: isa.LOADB, Dst: dst, Src: base, Imm: off}, 4)
	return b
}

// Store emits STORE [base+off], src (8 bytes).
func (b *Builder) Store(base isa.Reg, off int64, src isa.Reg) *Builder {
	b.emit(isa.Inst{Op: isa.STORE, Dst: src, Src: base, Imm: off}, 4)
	return b
}

// Storeb emits STOREB [base+off], src (low byte).
func (b *Builder) Storeb(base isa.Reg, off int64, src isa.Reg) *Builder {
	b.emit(isa.Inst{Op: isa.STOREB, Dst: src, Src: base, Imm: off}, 4)
	return b
}

// Clflush emits CLFLUSH [base+off].
func (b *Builder) Clflush(base isa.Reg, off int64) *Builder {
	b.emit(isa.Inst{Op: isa.CLFLUSH, Src: base, Imm: off}, 4)
	return b
}

// Lfence emits LFENCE (dispatch fence).
func (b *Builder) Lfence() *Builder {
	b.emit(isa.Inst{Op: isa.LFENCE}, 3)
	return b
}

// Cpuid emits CPUID (fetch-serializing).
func (b *Builder) Cpuid() *Builder {
	b.emit(isa.Inst{Op: isa.CPUID}, 2)
	return b
}

// Pause emits PAUSE (never cached in the micro-op cache).
func (b *Builder) Pause() *Builder {
	b.emit(isa.Inst{Op: isa.PAUSE}, 2)
	return b
}

// Rdtsc emits RDTSC, reading the cycle counter into dst.
func (b *Builder) Rdtsc(dst isa.Reg) *Builder {
	b.emit(isa.Inst{Op: isa.RDTSC, Dst: dst}, 2)
	return b
}

// Syscall emits SYSCALL (enter supervisor mode at the kernel entry).
func (b *Builder) Syscall() *Builder {
	b.emit(isa.Inst{Op: isa.SYSCALL}, 2)
	return b
}

// Sysret emits SYSRET (return to user mode).
func (b *Builder) Sysret() *Builder {
	b.emit(isa.Inst{Op: isa.SYSRET}, 2)
	return b
}

// ItlbFlush emits ITLBFLUSH (flushes the iTLB and, by inclusion, the
// entire micro-op cache).
func (b *Builder) ItlbFlush() *Builder {
	b.emit(isa.Inst{Op: isa.ITLBFLUSH}, 3)
	return b
}

// Halt emits HALT, stopping the hardware thread.
func (b *Builder) Halt() *Builder {
	b.emit(isa.Inst{Op: isa.HALT}, 1)
	return b
}

// Msrom emits a microcoded instruction that expands to uops micro-ops
// (must exceed the complex decoder's width of 4).
func (b *Builder) Msrom(uops int) *Builder {
	if uops < 5 || uops > 200 {
		b.fail("msrom uop count %d out of range [5,200]", uops)
		return b
	}
	b.emit(isa.Inst{Op: isa.MSROMOP, UopCount: uint8(uops)}, 3)
	return b
}

// Raw emits an arbitrary pre-built instruction with the given length,
// for cases the convenience emitters don't cover.
func (b *Builder) Raw(in isa.Inst, length int) *Builder {
	b.emit(in, uint8(length))
	return b
}

// Last returns the most recently emitted instruction for in-place
// tweaks (length, LCP) before Build. It fails the build if nothing has
// been emitted.
func (b *Builder) Last() *isa.Inst {
	if len(b.insts) == 0 {
		b.fail("Last called before any instruction was emitted")
		return &isa.Inst{}
	}
	return b.insts[len(b.insts)-1]
}

// Build resolves labels and returns the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		addr, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		f.inst.Imm = int64(addr)
	}
	p := &Program{
		Insts:  b.insts,
		byAddr: make(map[uint64]*isa.Inst, len(b.insts)),
		labels: b.labels,
	}
	for _, in := range b.insts {
		if prev, clash := p.byAddr[in.Addr]; clash {
			return nil, fmt.Errorf("asm: address 0x%x hosts both %v and %v", in.Addr, prev, in)
		}
		p.byAddr[in.Addr] = in
	}
	if len(b.insts) > 0 {
		p.Entry = b.insts[0].Addr
	}
	if e, ok := b.labels["entry"]; ok {
		p.Entry = e
	}
	return p, nil
}

// MustBuild is Build, panicking on error. Intended for tests and
// generated microbenchmarks whose shape is statically known to be valid.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Merge combines programs with disjoint address ranges into one image
// (e.g. user code and kernel code). Entry is taken from the first.
func Merge(progs ...*Program) (*Program, error) {
	out := &Program{
		byAddr: make(map[uint64]*isa.Inst),
		labels: make(map[string]uint64),
	}
	for pi, p := range progs {
		for _, in := range p.Insts {
			if prev, clash := out.byAddr[in.Addr]; clash {
				return nil, fmt.Errorf("asm: merge collision at 0x%x (%v vs %v)", in.Addr, prev, in)
			}
			out.byAddr[in.Addr] = in
			out.Insts = append(out.Insts, in)
		}
		for name, addr := range p.labels {
			// On a label-name collision the earliest program wins;
			// callers address later programs through their own
			// Program values (captured before the merge).
			if _, clash := out.labels[name]; !clash {
				out.labels[name] = addr
			}
		}
		if pi == 0 {
			out.Entry = p.Entry
		}
	}
	sort.Slice(out.Insts, func(i, j int) bool { return out.Insts[i].Addr < out.Insts[j].Addr })
	return out, nil
}
