package attack

import (
	"testing"

	"deaduops/internal/uopcache"
)

// TestAlignmentPairMatched pins the property the whole channel rests
// on: the two chains are indistinguishable in µops, bytes, and
// predecode windows, and both overflow the cacheability cap so every
// traversal is MITE-delivered.
func TestAlignmentPairMatched(t *testing.T) {
	g := DefaultGeometry()
	s := StraddleChain(0x100000, g, "straddle")
	a := AlignedChain(0x140000, g, "aligned")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.UopsPerRegion() != a.UopsPerRegion() {
		t.Errorf("µops per region differ: straddle %d, aligned %d",
			s.UopsPerRegion(), a.UopsPerRegion())
	}
	if s.BodyBytes() != a.BodyBytes() {
		t.Errorf("body bytes differ: straddle %d, aligned %d",
			s.BodyBytes(), a.BodyBytes())
	}
	if cap := uopcache.Skylake().MaxLinesPerRegion * uopcache.Skylake().SlotsPerLine; s.UopsPerRegion() <= cap {
		t.Errorf("chains are cacheable (%d µops ≤ %d): the stall would vanish on warm traversals",
			s.UopsPerRegion(), cap)
	}
	if s.Regions() != a.Regions() {
		t.Errorf("region counts differ: straddle %d, aligned %d", s.Regions(), a.Regions())
	}
}
