package attack

// The alignment transmitter pair: two jump chains that are identical
// in every quantity the micro-op cache or the backend can see — same
// sets and ways, same micro-op count per region, same byte count per
// region, same number of 16-byte predecode windows — and differ only
// in where each region's conditional jump sits relative to a predecode
// window boundary. The straddle chain's jcc spans the boundary at byte
// 16 and pays decode.Config.JccAlignPenalty per region under legacy
// decode (the Frontal-attack effect); the aligned chain's jcc sits
// wholly inside a window and pays nothing. Both chains overflow the
// 18-µop cacheability cap on purpose, so every traversal is
// MITE-delivered and the alignment stall — which no amount of µop
// cache warming can create or remove — is the only timing difference
// between them.

import "deaduops/internal/codegen"

// Alignment-pair region layout. Each region decodes to 24 µops in 29
// body bytes: the leading NOP pad, one fused CMP+JCC at the chosen
// offset, single-byte tail NOPs, and the chain jump.
const (
	// AlignStraddleOffset places the jcc's two bytes at region offsets
	// 15–16, straddling the predecode window boundary.
	AlignStraddleOffset = 15
	alignStraddleTail   = 10
	// AlignAlignedOffset places the jcc at offsets 8–9, wholly inside
	// the first window.
	AlignAlignedOffset = 8
	alignAlignedTail   = 17
)

// StraddleChain returns the boundary-straddling half of the alignment
// transmitter at base over the geometry's tiger stripes.
func StraddleChain(base uint64, g Geometry, label string) *codegen.ChainSpec {
	return &codegen.ChainSpec{
		Base: base, Sets: g.TigerSets(), Ways: g.NWays,
		NopPerRegion: AlignStraddleOffset - 3, NopLen: 1,
		JccOffset: AlignStraddleOffset, JccTailNops: alignStraddleTail,
		Label: label,
	}
}

// AlignedChain returns the window-aligned half of the alignment
// transmitter at base: µop-for-µop and byte-for-byte the same load as
// StraddleChain, with the jcc moved inside the window.
func AlignedChain(base uint64, g Geometry, label string) *codegen.ChainSpec {
	return &codegen.ChainSpec{
		Base: base, Sets: g.TigerSets(), Ways: g.NWays,
		NopPerRegion: AlignAlignedOffset - 3, NopLen: 1,
		JccOffset: AlignAlignedOffset, JccTailNops: alignAlignedTail,
		Label: label,
	}
}
