package attack

// checkpoint.go is the checkpoint-forking calibration protocol. The
// classic MeasureRounds re-primes the receiver before every probe —
// per round, a full primeIters-traversal prime for the hit measurement
// and another for the miss. On the deterministic simulator each of
// those primes rebuilds the same micro-op cache state, so the
// checkpointed variant primes once, snapshots the primed core, and
// forks every measurement from the snapshot: probe-after-restore is
// bit-identical to probe-after-prime (TestCheckpointedProbeEquals
// pins it), but costs one Restore instead of primeIters traversals.
//
// The variants are opt-in, not replacements. The default protocol's
// second prime per round starts from post-probe state, not from the
// snapshot, so the two protocols' round sequences — while agreeing on
// every probe value in practice — are not byte-identical executions,
// and the committed probe goldens pin the default. Callers choose the
// checkpointed protocol explicitly for sweeps where calibration
// dominates wall-clock.

import "deaduops/internal/cpu"

// MeasureRoundsCheckpointed is MeasureRounds forking every measurement
// from a single primed-core checkpoint: prime once, snapshot, then per
// round restore→probe (hit) and restore→send→probe (miss). ck is the
// reusable snapshot buffer (draw it from cpu.Arena.CheckpointBuf in
// sweep workers); nil allocates one internally.
func MeasureRoundsCheckpointed(c *cpu.CPU, ck *cpu.Checkpoint, receiver *Routine, send SendFunc, primeIters, probeIters int64, rounds int) (Rounds, error) {
	if ck == nil {
		ck = new(cpu.Checkpoint)
	}
	r := Rounds{ProbeIters: probeIters}
	if _, err := receiver.Run(c, 0, primeIters); err != nil {
		return r, err
	}
	c.Checkpoint(ck)
	for i := 0; i < rounds; i++ {
		// Hit: fork the primed core, probe immediately.
		c.Restore(ck)
		hc, err := receiver.Run(c, 0, probeIters)
		if err != nil {
			return r, err
		}
		r.Hit = append(r.Hit, float64(hc))
		// Miss: fork the primed core, let the sender evict, probe.
		c.Restore(ck)
		if err := send(); err != nil {
			return r, err
		}
		mc, err := receiver.Run(c, 0, probeIters)
		if err != nil {
			return r, err
		}
		r.Miss = append(r.Miss, float64(mc))
	}
	return r, nil
}

// CalibrateCheckpointed is Calibrate over the checkpoint-forking
// protocol: one prime, rounds×2 forks. See MeasureRoundsCheckpointed
// for when to prefer it over the default.
func CalibrateCheckpointed(c *cpu.CPU, ck *cpu.Checkpoint, receiver, sender *Routine, primeIters, probeIters int64, rounds int) (Threshold, error) {
	r, err := MeasureRoundsCheckpointed(c, ck, receiver, func() error {
		_, err := sender.Run(c, 0, primeIters)
		return err
	}, primeIters, probeIters, rounds)
	if err != nil {
		return Threshold{ProbeIters: probeIters}, err
	}
	return r.Threshold()
}
