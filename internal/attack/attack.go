// Package attack implements the paper's §IV framework: automatic
// generation of tiger and zebra functions and the timing probe built on
// them.
//
// Two tigers replicate each other's micro-op cache footprint — same
// sets, same ways — so executing one evicts the other and produces a
// timing signal. A zebra occupies sets mutually exclusive with its
// tiger, so the pair never conflict. The functions are long chains of
// LCP-padded NOPs ending in jumps: almost no back-end work, maximal
// legacy-decode cost, which sharpens the µop-cache hit/miss timing
// difference into a clean binary signal.
package attack

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
)

// Geometry selects which part of the micro-op cache a tiger/zebra pair
// fights over.
type Geometry struct {
	// NSets is the number of (evenly spaced) sets occupied; NWays the
	// ways used in each. The paper's best channel probes 8 sets × 6
	// ways, leaving two ways free so unrelated code doesn't obscure
	// the signal.
	NSets int
	NWays int
	// FirstSet offsets the striping; a zebra uses a first set
	// interleaved between its tiger's stripes (Fig 8).
	FirstSet int
}

// DefaultGeometry returns the paper's best-bandwidth configuration.
func DefaultGeometry() Geometry { return Geometry{NSets: 8, NWays: 6} }

// TigerSets returns the set indices a tiger with this geometry touches.
func (g Geometry) TigerSets() []int { return codegen.EvenSets(g.NSets, g.FirstSet) }

// ZebraSets returns set indices mutually exclusive with TigerSets:
// shifted by half a stripe.
func (g Geometry) ZebraSets() []int {
	stride := 32 / g.NSets
	if stride == 0 {
		stride = 1
	}
	return codegen.EvenSets(g.NSets, g.FirstSet+stride/2+stride%2)
}

// tigerNops and tigerNopLen shape each conflict region: two LCP-padded
// 14-byte NOPs plus the chain jump = 3 µops in 30 bytes, with six
// cycles of predecoder stall on every legacy decode.
const (
	tigerNops   = 2
	tigerNopLen = 14
)

// Tiger returns the chain spec of a tiger at base with geometry g.
// Distinct tigers at different bases but equal geometry conflict; a
// tiger and the zebra of the same geometry never do.
func Tiger(base uint64, g Geometry, label string) *codegen.ChainSpec {
	return &codegen.ChainSpec{
		Base: base, Sets: g.TigerSets(), Ways: g.NWays,
		NopPerRegion: tigerNops, NopLen: tigerNopLen, LCP: true,
		Label: label,
	}
}

// FastTiger returns a tiger variant optimized for eviction throughput
// rather than timing contrast: single-µop regions with no LCP padding
// decode quickly, so a sender can sweep its sets many times while a
// victim's window is open (used by the cross-SMT Trojan).
func FastTiger(base uint64, g Geometry, label string) *codegen.ChainSpec {
	return &codegen.ChainSpec{
		Base: base, Sets: g.TigerSets(), Ways: g.NWays,
		Label: label,
	}
}

// Zebra returns the chain spec of the zebra companion at base.
func Zebra(base uint64, g Geometry, label string) *codegen.ChainSpec {
	return &codegen.ChainSpec{
		Base: base, Sets: g.ZebraSets(), Ways: g.NWays,
		NopPerRegion: tigerNops, NopLen: tigerNopLen, LCP: true,
		Label: label,
	}
}

// Routine is an assembled tiger or zebra, runnable on a CPU.
type Routine struct {
	Spec  *codegen.ChainSpec
	Prog  *asm.Program
	Entry uint64
}

// Build assembles spec into a standalone looped routine (loop count in
// R14, preset per run). The loop tail is placed in a set adjacent to
// the chain's first set — outside both a tiger's and its zebra's
// stripes, so the tail's own line never pollutes a probed set.
func Build(spec *codegen.ChainSpec) (*Routine, error) {
	tailSet := 0
	if len(spec.Sets) > 0 {
		tailSet = (spec.Sets[0] + 1) % (codegen.WayStride / codegen.RegionSize)
	}
	tail := spec.Base + uint64(spec.Ways+1)*codegen.WayStride +
		uint64(tailSet)*codegen.RegionSize
	prog, err := spec.LoopProgram(tail)
	if err != nil {
		return nil, fmt.Errorf("attack: building %s: %w", spec.Label, err)
	}
	return &Routine{Spec: spec, Prog: prog, Entry: prog.Entry}, nil
}

// Run executes the routine for iters traversals on thread t and
// returns the elapsed cycles — the RDTSC-bracketed timing measurement
// of the paper, in simulated cycles.
func (r *Routine) Run(c *cpu.CPU, t int, iters int64) (uint64, error) {
	c.SetReg(t, isa.R14, iters)
	res := c.Run(t, r.Entry, 20_000_000)
	if res.TimedOut {
		return 0, fmt.Errorf("attack: routine %s timed out", r.Spec.Label)
	}
	return res.Cycles, nil
}

// Threshold separates µop-cache-hit from µop-cache-miss probe timings.
type Threshold struct {
	HitMean  float64
	MissMean float64
	Cut      float64
}

// Hit classifies a probe time.
func (th Threshold) Hit(cycles uint64) bool { return float64(cycles) < th.Cut }

// Calibrate measures the receiver tiger's probe time with and without a
// conflicting sender tiger and returns the decision threshold.
// The receiver primes with primeIters traversals (enough to reclaim its
// sets from a hot opponent under the hotness replacement policy) and
// measures with probeIters (few, so a misowned set cannot be reclaimed
// mid-measurement). rounds controls the averaging.
func Calibrate(c *cpu.CPU, receiver, sender *Routine, primeIters, probeIters int64, rounds int) (Threshold, error) {
	var th Threshold
	var hitSum, missSum float64
	for i := 0; i < rounds; i++ {
		// Hit: prime then probe, nothing in between.
		if _, err := receiver.Run(c, 0, primeIters); err != nil {
			return th, err
		}
		hc, err := receiver.Run(c, 0, probeIters)
		if err != nil {
			return th, err
		}
		hitSum += float64(hc)
		// Miss: prime, evict with the sender tiger, probe.
		if _, err := receiver.Run(c, 0, primeIters); err != nil {
			return th, err
		}
		if _, err := sender.Run(c, 0, primeIters); err != nil {
			return th, err
		}
		mc, err := receiver.Run(c, 0, probeIters)
		if err != nil {
			return th, err
		}
		missSum += float64(mc)
	}
	th.HitMean = hitSum / float64(rounds)
	th.MissMean = missSum / float64(rounds)
	th.Cut = (th.HitMean + th.MissMean) / 2
	// Demand meaningful separation, not just a few cycles of noise.
	if th.MissMean <= th.HitMean*1.3 {
		return th, fmt.Errorf("attack: no timing signal (hit %.0f, miss %.0f cycles)",
			th.HitMean, th.MissMean)
	}
	return th, nil
}
