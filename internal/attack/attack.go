// Package attack implements the paper's §IV framework: automatic
// generation of tiger and zebra functions and the timing probe built on
// them.
//
// Two tigers replicate each other's micro-op cache footprint — same
// sets, same ways — so executing one evicts the other and produces a
// timing signal. A zebra occupies sets mutually exclusive with its
// tiger, so the pair never conflict. The functions are long chains of
// LCP-padded NOPs ending in jumps: almost no back-end work, maximal
// legacy-decode cost, which sharpens the µop-cache hit/miss timing
// difference into a clean binary signal.
package attack

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
)

// Geometry selects which part of the micro-op cache a tiger/zebra pair
// fights over.
type Geometry struct {
	// NSets is the number of (evenly spaced) sets occupied; NWays the
	// ways used in each. The paper's best channel probes 8 sets × 6
	// ways, leaving two ways free so unrelated code doesn't obscure
	// the signal.
	NSets int
	NWays int
	// FirstSet offsets the striping; a zebra uses a first set
	// interleaved between its tiger's stripes (Fig 8).
	FirstSet int
	// CacheSets is the modelled cache's total set count the stripes
	// spread across and the way stride derives from; 0 selects the
	// classic 32-set layout, keeping every historical chain address
	// byte-identical. The profile matrix sets it from the profile's
	// geometry so a Zen 2 channel stripes all 64 sets.
	CacheSets int
}

// DefaultGeometry returns the paper's best-bandwidth configuration.
func DefaultGeometry() Geometry { return Geometry{NSets: 8, NWays: 6} }

// TigerSets returns the set indices a tiger with this geometry touches.
func (g Geometry) TigerSets() []int {
	return codegen.EvenSetsIn(g.CacheSets, g.NSets, g.FirstSet)
}

// ZebraSets returns set indices mutually exclusive with TigerSets:
// shifted by half a stripe.
func (g Geometry) ZebraSets() []int {
	total := g.CacheSets
	if total <= 0 {
		total = codegen.WayStride / codegen.RegionSize
	}
	stride := total / g.NSets
	if stride == 0 {
		stride = 1
	}
	return codegen.EvenSetsIn(g.CacheSets, g.NSets, g.FirstSet+stride/2+stride%2)
}

// Tiger returns the chain spec of a tiger at base with geometry g:
// codegen.ProbeChain regions (two LCP-padded 14-byte NOPs plus the
// chain jump per region) over the geometry's even stripes. Distinct
// tigers at different bases but equal geometry conflict; a tiger and
// the zebra of the same geometry never do.
func Tiger(base uint64, g Geometry, label string) *codegen.ChainSpec {
	spec := codegen.ProbeChain(base, g.TigerSets(), g.NWays, label)
	spec.NumSets = g.CacheSets
	return spec
}

// FastTiger returns a tiger variant optimized for eviction throughput
// rather than timing contrast: single-µop regions with no LCP padding
// decode quickly, so a sender can sweep its sets many times while a
// victim's window is open (used by the cross-SMT Trojan).
func FastTiger(base uint64, g Geometry, label string) *codegen.ChainSpec {
	return &codegen.ChainSpec{
		Base: base, Sets: g.TigerSets(), Ways: g.NWays, NumSets: g.CacheSets,
		Label: label,
	}
}

// Zebra returns the chain spec of the zebra companion at base.
func Zebra(base uint64, g Geometry, label string) *codegen.ChainSpec {
	spec := codegen.ProbeChain(base, g.ZebraSets(), g.NWays, label)
	spec.NumSets = g.CacheSets
	return spec
}

// Routine is an assembled tiger or zebra, runnable on a CPU.
type Routine struct {
	Spec  *codegen.ChainSpec
	Prog  *asm.Program
	Entry uint64
}

// Build assembles spec into a standalone looped routine (loop count in
// R14, preset per run). The loop tail is placed in the first set past
// the chain's first set that the chain does not occupy
// (codegen.ChainSpec.TailAddr) — outside both a tiger's and its
// zebra's stripes, and outside an arbitrary probe chain's set list, so
// the tail's own line never pollutes a probed set.
func Build(spec *codegen.ChainSpec) (*Routine, error) {
	prog, err := spec.LoopProgram(spec.TailAddr())
	if err != nil {
		return nil, fmt.Errorf("attack: building %s: %w", spec.Label, err)
	}
	return &Routine{Spec: spec, Prog: prog, Entry: prog.Entry}, nil
}

// Run executes the routine for iters traversals on thread t and
// returns the elapsed cycles — the RDTSC-bracketed timing measurement
// of the paper, in simulated cycles.
func (r *Routine) Run(c *cpu.CPU, t int, iters int64) (uint64, error) {
	c.SetReg(t, isa.R14, iters)
	res := c.Run(t, r.Entry, 20_000_000)
	if res.TimedOut {
		return 0, fmt.Errorf("attack: routine %s timed out", r.Spec.Label)
	}
	return res.Cycles, nil
}

// SeparationFloor is the minimum MissMean/HitMean ratio Calibrate
// accepts as a usable timing signal: below 1.3× the hit and miss
// distributions sit within noise of each other and the channel cannot
// decode bits reliably. The static receiver model
// (internal/staticlint) holds its predicted separation margins to the
// same floor.
const SeparationFloor = 1.3

// Threshold separates µop-cache-hit from µop-cache-miss probe timings.
//
// Unit: every cycle field is the elapsed time of ONE probe measurement
// — i.e. the total cycles of ProbeIters chain traversals — not a
// per-traversal figure. Thresholds calibrated with different
// probeIters are therefore in different units; compare across
// configurations only through PerTraversal.
type Threshold struct {
	// HitMean/MissMean are the per-round probe-time averages with the
	// receiver's sets intact (hit) and evicted by the sender (miss).
	HitMean  float64
	MissMean float64
	// HitMin/HitMax and MissMin/MissMax record each distribution's
	// per-round spread, so one outlier round is visible instead of
	// silently folded into a mean.
	HitMin, HitMax   float64
	MissMin, MissMax float64
	// Cut is the decision boundary: the midpoint of the two means,
	// clamped into the observed gap between HitMax and MissMin so that
	// an outlier round cannot drag it past either cluster.
	Cut float64
	// ProbeIters is the traversal count of one probe measurement — the
	// unit of every cycle field above. Zero in hand-built thresholds
	// means the unit is unrecorded.
	ProbeIters int64
}

// Hit classifies a probe time. The boundary side is deliberate and
// decode paths must agree with it: a probe landing exactly on Cut
// classifies as a MISS (strict <), because unexplained extra latency
// is evidence of eviction — the conservative side for a receiver that
// must not drop transmitted bits.
func (th Threshold) Hit(cycles uint64) bool { return float64(cycles) < th.Cut }

// Miss is the complement of Hit; decode paths that signal on eviction
// use it so the exactly-on-Cut convention lives in one place.
func (th Threshold) Miss(cycles uint64) bool { return !th.Hit(cycles) }

// PerTraversal converts a total-probe-cycles quantity (HitMean,
// MissMean, Cut, …) to per-traversal cycles using the recorded
// ProbeIters. With no recorded unit it returns v unchanged.
func (th Threshold) PerTraversal(v float64) float64 {
	if th.ProbeIters <= 0 {
		return v
	}
	return v / float64(th.ProbeIters)
}

// SendFunc is the sender half of one calibration round: whatever
// eviction activity the opponent performs between the receiver's prime
// and probe — a conflicting tiger's traversals for the covert channel,
// or a victim program's runs for the static model's validation
// harness.
type SendFunc func() error

// Rounds holds the raw per-round probe timings of one calibration:
// every hit-round and miss-round measurement, in cycles over
// ProbeIters traversals.
type Rounds struct {
	Hit, Miss  []float64
	ProbeIters int64
}

// MeasureRounds runs the calibration protocol and returns the raw
// per-round timings. Each round measures a hit (prime, then probe with
// nothing in between) and a miss (prime, sender activity, probe). The
// receiver primes with primeIters traversals — enough to reclaim its
// sets from a hot opponent under the hotness replacement policy — and
// probes with probeIters (few, so a misowned set cannot be reclaimed
// mid-measurement).
func MeasureRounds(c *cpu.CPU, receiver *Routine, send SendFunc, primeIters, probeIters int64, rounds int) (Rounds, error) {
	r := Rounds{ProbeIters: probeIters}
	for i := 0; i < rounds; i++ {
		// Hit: prime then probe, nothing in between.
		if _, err := receiver.Run(c, 0, primeIters); err != nil {
			return r, err
		}
		hc, err := receiver.Run(c, 0, probeIters)
		if err != nil {
			return r, err
		}
		r.Hit = append(r.Hit, float64(hc))
		// Miss: prime, let the sender evict, probe.
		if _, err := receiver.Run(c, 0, primeIters); err != nil {
			return r, err
		}
		if err := send(); err != nil {
			return r, err
		}
		mc, err := receiver.Run(c, 0, probeIters)
		if err != nil {
			return r, err
		}
		r.Miss = append(r.Miss, float64(mc))
	}
	return r, nil
}

func meanMinMax(v []float64) (mean, min, max float64) {
	min, max = v[0], v[0]
	for _, x := range v {
		mean += x
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return mean / float64(len(v)), min, max
}

// Stats reduces the raw rounds to threshold statistics without
// judging them: means, per-round spreads, and the cut. The cut starts
// at the midpoint of the two means; when the observed distributions do
// not overlap it is clamped into the gap between HitMax and MissMin,
// so a single outlier round (one anomalously slow miss, say) cannot
// drag the cut past the rest of its cluster — the failure mode of
// reducing rounds to running sums alone. Rounds must be non-empty on
// both sides.
func (r Rounds) Stats() Threshold {
	th := Threshold{ProbeIters: r.ProbeIters}
	th.HitMean, th.HitMin, th.HitMax = meanMinMax(r.Hit)
	th.MissMean, th.MissMin, th.MissMax = meanMinMax(r.Miss)
	th.Cut = (th.HitMean + th.MissMean) / 2
	if th.MissMin > th.HitMax && (th.Cut >= th.MissMin || th.Cut <= th.HitMax) {
		th.Cut = (th.HitMax + th.MissMin) / 2
	}
	return th
}

// Spread renders both distributions with their per-round extremes for
// diagnostics.
func (th Threshold) Spread() string {
	return fmt.Sprintf("hit %.0f [%.0f..%.0f], miss %.0f [%.0f..%.0f] cycles over %d traversals",
		th.HitMean, th.HitMin, th.HitMax, th.MissMean, th.MissMin, th.MissMax, th.ProbeIters)
}

// Threshold reduces the raw rounds to a decision threshold (see
// Stats). It returns an error — carrying both distributions' spreads,
// not just the means — when the separation is below SeparationFloor or
// the distributions overlap.
func (r Rounds) Threshold() (Threshold, error) {
	th := Threshold{ProbeIters: r.ProbeIters}
	if len(r.Hit) == 0 || len(r.Miss) == 0 {
		return th, fmt.Errorf("attack: no calibration rounds recorded")
	}
	th = r.Stats()
	// Demand meaningful separation, not just a few cycles of noise.
	if th.MissMean <= th.HitMean*SeparationFloor {
		return th, fmt.Errorf("attack: no timing signal (%s)", th.Spread())
	}
	if th.MissMin <= th.HitMax {
		return th, fmt.Errorf("attack: hit/miss distributions overlap (%s)", th.Spread())
	}
	return th, nil
}

// Calibrate measures the receiver tiger's probe time with and without a
// conflicting sender tiger (primeIters traversals of it per miss
// round) and returns the decision threshold. rounds controls the
// averaging; the per-round spread is kept in the threshold.
func Calibrate(c *cpu.CPU, receiver, sender *Routine, primeIters, probeIters int64, rounds int) (Threshold, error) {
	r, err := MeasureRounds(c, receiver, func() error {
		_, err := sender.Run(c, 0, primeIters)
		return err
	}, primeIters, probeIters, rounds)
	if err != nil {
		return Threshold{ProbeIters: probeIters}, err
	}
	return r.Threshold()
}
