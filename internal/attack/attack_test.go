package attack

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/cpu"
)

func TestTigersConflictZebraDoesNot(t *testing.T) {
	g := DefaultGeometry()
	tigerA := Tiger(0x40000, g, "ta")
	tigerB := Tiger(0x80000, g, "tb")
	zebra := Zebra(0xC0000, g, "z")

	setsOf := func(sets []int) map[int]bool {
		m := map[int]bool{}
		for _, s := range sets {
			m[s] = true
		}
		return m
	}
	sa, sb, sz := setsOf(tigerA.Sets), setsOf(tigerB.Sets), setsOf(zebra.Sets)
	for s := range sa {
		if !sb[s] {
			t.Errorf("tiger B misses tiger A's set %d", s)
		}
		if sz[s] {
			t.Errorf("zebra shares tiger set %d", s)
		}
	}
}

func TestTigerEvictsTigerTimingSignal(t *testing.T) {
	g := DefaultGeometry()
	recv, err := Build(Tiger(0x40000, g, "recv"))
	if err != nil {
		t.Fatal(err)
	}
	send, err := Build(Tiger(0x80000, g, "send"))
	if err != nil {
		t.Fatal(err)
	}
	zeb, err := Build(Zebra(0xC0000, g, "zeb"))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := asm.Merge(recv.Prog, send.Prog, zeb.Prog)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Intel())
	c.LoadProgram(merged)

	prime := func() {
		if _, err := recv.Run(c, 0, 20); err != nil {
			t.Fatal(err)
		}
	}
	probe := func() uint64 {
		cy, err := recv.Run(c, 0, 5)
		if err != nil {
			t.Fatal(err)
		}
		return cy
	}

	prime()
	hit := probe()

	prime()
	if _, err := send.Run(c, 0, 20); err != nil {
		t.Fatal(err)
	}
	miss := probe()

	prime()
	if _, err := zeb.Run(c, 0, 20); err != nil {
		t.Fatal(err)
	}
	zebraProbe := probe()

	if miss < hit*2 {
		t.Errorf("tiger conflict signal too weak: hit %d, miss %d", hit, miss)
	}
	if zebraProbe > hit*3/2 {
		t.Errorf("zebra disturbed the receiver: hit %d, after-zebra %d", hit, zebraProbe)
	}
}

func TestCalibrate(t *testing.T) {
	g := DefaultGeometry()
	recv, _ := Build(Tiger(0x40000, g, "recv"))
	send, _ := Build(Tiger(0x80000, g, "send"))
	merged, _ := asm.Merge(recv.Prog, send.Prog)
	c := cpu.New(cpu.Intel())
	c.LoadProgram(merged)
	th, err := Calibrate(c, recv, send, 20, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if th.Cut <= th.HitMean || th.Cut >= th.MissMean {
		t.Errorf("cut %.0f outside (%.0f, %.0f)", th.Cut, th.HitMean, th.MissMean)
	}
	if !th.Hit(uint64(th.HitMean)) {
		t.Error("hit mean classified as miss")
	}
	if th.Hit(uint64(th.MissMean)) {
		t.Error("miss mean classified as hit")
	}
}

func TestCalibrateNoSignalFails(t *testing.T) {
	// Calibrating a receiver against a zebra (no conflict) must fail.
	g := DefaultGeometry()
	recv, _ := Build(Tiger(0x40000, g, "recv"))
	zeb, _ := Build(Zebra(0xC0000, g, "zeb"))
	merged, _ := asm.Merge(recv.Prog, zeb.Prog)
	c := cpu.New(cpu.Intel())
	c.LoadProgram(merged)
	if _, err := Calibrate(c, recv, zeb, 20, 5, 4); err == nil {
		t.Error("calibration against a zebra found a signal")
	}
}

func TestFastTigerFasterThanLCPTiger(t *testing.T) {
	g := Geometry{NSets: 4, NWays: 6}
	slow, _ := Build(Tiger(0x40000, g, "slow"))
	fast, _ := Build(FastTiger(0x80000, g, "fast"))
	merged, _ := asm.Merge(slow.Prog, fast.Prog)
	c := cpu.New(cpu.Intel())
	c.LoadProgram(merged)

	// Compare cold traversal costs: the LCP tiger pays predecoder
	// stalls, the fast tiger does not.
	c.FlushUopCache()
	slowCy, err := slow.Run(c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.FlushUopCache()
	fastCy, err := fast.Run(c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fastCy >= slowCy {
		t.Errorf("fast tiger (%d cycles) not faster than LCP tiger (%d)", fastCy, slowCy)
	}
}

func TestGeometryDefaults(t *testing.T) {
	g := DefaultGeometry()
	if g.NSets != 8 || g.NWays != 6 {
		t.Errorf("default geometry %+v, want the paper's 8×6 operating point", g)
	}
	if len(g.TigerSets()) != 8 {
		t.Errorf("tiger sets %v", g.TigerSets())
	}
}

func TestBuildRejectsBadSpec(t *testing.T) {
	g := Geometry{NSets: 0, NWays: 0}
	if _, err := Build(Tiger(0x40000, g, "bad")); err == nil {
		t.Error("empty geometry accepted")
	}
}
