package attack

import (
	"strings"
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/cpu"
)

func TestTigersConflictZebraDoesNot(t *testing.T) {
	g := DefaultGeometry()
	tigerA := Tiger(0x40000, g, "ta")
	tigerB := Tiger(0x80000, g, "tb")
	zebra := Zebra(0xC0000, g, "z")

	setsOf := func(sets []int) map[int]bool {
		m := map[int]bool{}
		for _, s := range sets {
			m[s] = true
		}
		return m
	}
	sa, sb, sz := setsOf(tigerA.Sets), setsOf(tigerB.Sets), setsOf(zebra.Sets)
	for s := range sa {
		if !sb[s] {
			t.Errorf("tiger B misses tiger A's set %d", s)
		}
		if sz[s] {
			t.Errorf("zebra shares tiger set %d", s)
		}
	}
}

func TestTigerEvictsTigerTimingSignal(t *testing.T) {
	g := DefaultGeometry()
	recv, err := Build(Tiger(0x40000, g, "recv"))
	if err != nil {
		t.Fatal(err)
	}
	send, err := Build(Tiger(0x80000, g, "send"))
	if err != nil {
		t.Fatal(err)
	}
	zeb, err := Build(Zebra(0xC0000, g, "zeb"))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := asm.Merge(recv.Prog, send.Prog, zeb.Prog)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Intel())
	c.LoadProgram(merged)

	prime := func() {
		if _, err := recv.Run(c, 0, 20); err != nil {
			t.Fatal(err)
		}
	}
	probe := func() uint64 {
		cy, err := recv.Run(c, 0, 5)
		if err != nil {
			t.Fatal(err)
		}
		return cy
	}

	prime()
	hit := probe()

	prime()
	if _, err := send.Run(c, 0, 20); err != nil {
		t.Fatal(err)
	}
	miss := probe()

	prime()
	if _, err := zeb.Run(c, 0, 20); err != nil {
		t.Fatal(err)
	}
	zebraProbe := probe()

	if miss < hit*2 {
		t.Errorf("tiger conflict signal too weak: hit %d, miss %d", hit, miss)
	}
	if zebraProbe > hit*3/2 {
		t.Errorf("zebra disturbed the receiver: hit %d, after-zebra %d", hit, zebraProbe)
	}
}

func TestCalibrate(t *testing.T) {
	g := DefaultGeometry()
	recv, _ := Build(Tiger(0x40000, g, "recv"))
	send, _ := Build(Tiger(0x80000, g, "send"))
	merged, _ := asm.Merge(recv.Prog, send.Prog)
	c := cpu.New(cpu.Intel())
	c.LoadProgram(merged)
	th, err := Calibrate(c, recv, send, 20, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if th.Cut <= th.HitMean || th.Cut >= th.MissMean {
		t.Errorf("cut %.0f outside (%.0f, %.0f)", th.Cut, th.HitMean, th.MissMean)
	}
	if !th.Hit(uint64(th.HitMean)) {
		t.Error("hit mean classified as miss")
	}
	if th.Hit(uint64(th.MissMean)) {
		t.Error("miss mean classified as hit")
	}
}

// TestThresholdBoundary pins the exactly-on-Cut convention: a probe
// landing exactly on the cut classifies as a miss (strict <), and
// Miss is Hit's exact complement — the single boundary every decode
// path in internal/channel routes through.
func TestThresholdBoundary(t *testing.T) {
	th := Threshold{HitMean: 100, MissMean: 300, Cut: 200}
	if !th.Hit(199) {
		t.Error("below-cut probe classified as miss")
	}
	if th.Hit(200) {
		t.Error("exactly-on-cut probe classified as hit; the convention is miss")
	}
	if th.Hit(201) {
		t.Error("above-cut probe classified as hit")
	}
	for _, cy := range []uint64{0, 199, 200, 201, 1 << 40} {
		if th.Hit(cy) == th.Miss(cy) {
			t.Errorf("Hit and Miss agree at %d cycles; they must be complements", cy)
		}
	}
}

// TestThresholdOutlierRound is the regression for the running-sum
// reduction bug: one anomalously slow miss round used to drag the
// mean-midpoint cut above the rest of the miss cluster, so genuine
// misses decoded as hits even though the 1.3× separation check passed.
// The spread-aware reduction clamps the cut into the observed gap.
func TestThresholdOutlierRound(t *testing.T) {
	r := Rounds{
		Hit:        []float64{100, 100, 100, 100},
		Miss:       []float64{200, 200, 200, 2000},
		ProbeIters: 5,
	}
	th, err := r.Threshold()
	if err != nil {
		t.Fatalf("outlier round rejected outright: %v", err)
	}
	// Means alone would put the cut at (100+650)/2 = 375, above the
	// 200-cycle miss cluster.
	if th.Cut >= th.MissMin {
		t.Errorf("cut %.0f at or above miss cluster minimum %.0f: outlier dragged it", th.Cut, th.MissMin)
	}
	if th.Cut <= th.HitMax {
		t.Errorf("cut %.0f at or below hit cluster maximum %.0f", th.Cut, th.HitMax)
	}
	if th.Hit(200) {
		t.Error("cluster miss round decodes as hit under the outlier-dragged cut")
	}
	if !th.Hit(100) {
		t.Error("hit round decodes as miss")
	}
	if th.MissMin != 200 || th.MissMax != 2000 || th.HitMin != 100 || th.HitMax != 100 {
		t.Errorf("per-round spread not recorded: %+v", th)
	}
}

// TestThresholdSpreadInError asserts the no-signal diagnostic carries
// both distributions' per-round extremes, not just the means.
func TestThresholdSpreadInError(t *testing.T) {
	r := Rounds{Hit: []float64{95, 105}, Miss: []float64{104, 120}, ProbeIters: 7}
	_, err := r.Threshold()
	if err == nil {
		t.Fatal("overlapping sub-floor distributions accepted")
	}
	for _, want := range []string{"[95..105]", "[104..120]", "7 traversals"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("no-signal error %q missing spread component %q", err, want)
		}
	}
}

// TestThresholdUnits pins the unit contract: threshold cycle fields
// are totals over ProbeIters traversals. Calibrating the same channel
// with twice the probe iterations must roughly double the raw means
// while the PerTraversal view stays comparable.
func TestThresholdUnits(t *testing.T) {
	calibrate := func(probeIters int64) Threshold {
		g := DefaultGeometry()
		recv, _ := Build(Tiger(0x40000, g, "recv"))
		send, _ := Build(Tiger(0x80000, g, "send"))
		merged, err := asm.Merge(recv.Prog, send.Prog)
		if err != nil {
			t.Fatal(err)
		}
		c := cpu.New(cpu.Intel())
		c.LoadProgram(merged)
		th, err := Calibrate(c, recv, send, 20, probeIters, 4)
		if err != nil {
			t.Fatal(err)
		}
		return th
	}
	th5, th10 := calibrate(5), calibrate(10)
	if th5.ProbeIters != 5 || th10.ProbeIters != 10 {
		t.Fatalf("probe unit not recorded: %d, %d", th5.ProbeIters, th10.ProbeIters)
	}
	if ratio := th10.HitMean / th5.HitMean; ratio < 1.5 || ratio > 2.5 {
		t.Errorf("doubling probeIters scaled raw hit mean by %.2f; raw means are totals and must scale", ratio)
	}
	// Per-traversal views are unit-normalized: comparable within 30%
	// (the fixed entry/exit overhead amortizes differently).
	p5, p10 := th5.PerTraversal(th5.HitMean), th10.PerTraversal(th10.HitMean)
	if ratio := p10 / p5; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("per-traversal hit means differ %.2f× across probeIters; normalization broken", ratio)
	}
	// Raw cuts across different probeIters are different units: the
	// 5-iteration miss mean must not clear the 10-iteration cut.
	if !th10.Hit(uint64(th5.MissMean)) {
		t.Errorf("5-iteration miss total %.0f read against the 10-iteration cut %.0f decodes as miss; comparing raw units must mislead",
			th5.MissMean, th10.Cut)
	}
}

func TestCalibrateRecordsSpread(t *testing.T) {
	g := DefaultGeometry()
	recv, _ := Build(Tiger(0x40000, g, "recv"))
	send, _ := Build(Tiger(0x80000, g, "send"))
	merged, _ := asm.Merge(recv.Prog, send.Prog)
	c := cpu.New(cpu.Intel())
	c.LoadProgram(merged)
	th, err := Calibrate(c, recv, send, 20, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if th.HitMin <= 0 || th.HitMax < th.HitMin || th.MissMin <= 0 || th.MissMax < th.MissMin {
		t.Errorf("spread fields not populated: %+v", th)
	}
	if th.HitMean < th.HitMin || th.HitMean > th.HitMax || th.MissMean < th.MissMin || th.MissMean > th.MissMax {
		t.Errorf("means outside recorded spreads: %+v", th)
	}
	if th.ProbeIters != 5 {
		t.Errorf("probe unit %d, want 5", th.ProbeIters)
	}
}

func TestCalibrateNoSignalFails(t *testing.T) {
	// Calibrating a receiver against a zebra (no conflict) must fail.
	g := DefaultGeometry()
	recv, _ := Build(Tiger(0x40000, g, "recv"))
	zeb, _ := Build(Zebra(0xC0000, g, "zeb"))
	merged, _ := asm.Merge(recv.Prog, zeb.Prog)
	c := cpu.New(cpu.Intel())
	c.LoadProgram(merged)
	if _, err := Calibrate(c, recv, zeb, 20, 5, 4); err == nil {
		t.Error("calibration against a zebra found a signal")
	}
}

func TestFastTigerFasterThanLCPTiger(t *testing.T) {
	g := Geometry{NSets: 4, NWays: 6}
	slow, _ := Build(Tiger(0x40000, g, "slow"))
	fast, _ := Build(FastTiger(0x80000, g, "fast"))
	merged, _ := asm.Merge(slow.Prog, fast.Prog)
	c := cpu.New(cpu.Intel())
	c.LoadProgram(merged)

	// Compare cold traversal costs: the LCP tiger pays predecoder
	// stalls, the fast tiger does not.
	c.FlushUopCache()
	slowCy, err := slow.Run(c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.FlushUopCache()
	fastCy, err := fast.Run(c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fastCy >= slowCy {
		t.Errorf("fast tiger (%d cycles) not faster than LCP tiger (%d)", fastCy, slowCy)
	}
}

func TestGeometryDefaults(t *testing.T) {
	g := DefaultGeometry()
	if g.NSets != 8 || g.NWays != 6 {
		t.Errorf("default geometry %+v, want the paper's 8×6 operating point", g)
	}
	if len(g.TigerSets()) != 8 {
		t.Errorf("tiger sets %v", g.TigerSets())
	}
}

func TestBuildRejectsBadSpec(t *testing.T) {
	g := Geometry{NSets: 0, NWays: 0}
	if _, err := Build(Tiger(0x40000, g, "bad")); err == nil {
		t.Error("empty geometry accepted")
	}
}
