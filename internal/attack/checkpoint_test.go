package attack

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/cpu"
)

// calibrationRig builds the standard receiver/sender tiger pair on one
// core — the setup TestCalibrate uses.
func calibrationRig(t *testing.T) (*cpu.CPU, *Routine, *Routine) {
	t.Helper()
	g := DefaultGeometry()
	recv, err := Build(Tiger(0x40000, g, "recv"))
	if err != nil {
		t.Fatal(err)
	}
	send, err := Build(Tiger(0x80000, g, "send"))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := asm.Merge(recv.Prog, send.Prog)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Intel())
	c.LoadProgram(merged)
	return c, recv, send
}

// TestCheckpointedProbeEquals pins the property the checkpointed
// protocol rests on: a probe after restoring the primed-core snapshot
// is byte-identical in cycles to a probe right after the prime the
// snapshot captured — and stays so on every later fork, even after a
// sender trashed the receiver's sets in between.
func TestCheckpointedProbeEquals(t *testing.T) {
	c, recv, send := calibrationRig(t)
	const primeIters, probeIters = 20, 5

	if _, err := recv.Run(c, 0, primeIters); err != nil {
		t.Fatal(err)
	}
	var ck cpu.Checkpoint
	c.Checkpoint(&ck)
	want, err := recv.Run(c, 0, probeIters)
	if err != nil {
		t.Fatal(err)
	}

	for fork := 0; fork < 3; fork++ {
		c.Restore(&ck)
		got, err := recv.Run(c, 0, probeIters)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("fork %d: probe after restore took %d cycles, probe after prime took %d", fork, got, want)
		}
		// Dirty the core before the next fork so the restore has real
		// state to undo.
		if _, err := send.Run(c, 0, primeIters); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCalibrateCheckpointed proves the forking protocol yields a valid
// threshold with the same decision behaviour as the classic one: both
// separate hit from miss, and the checkpointed hit/miss means match
// the classic protocol's (each round replays the same deterministic
// prime state, so the distributions collapse onto the classic values).
func TestCalibrateCheckpointed(t *testing.T) {
	c, recv, send := calibrationRig(t)
	classic, err := Calibrate(c, recv, send, 20, 5, 4)
	if err != nil {
		t.Fatal(err)
	}

	c2, recv2, send2 := calibrationRig(t)
	th, err := CalibrateCheckpointed(c2, nil, recv2, send2, 20, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if th.Cut <= th.HitMean || th.Cut >= th.MissMean {
		t.Errorf("cut %.0f outside (%.0f, %.0f)", th.Cut, th.HitMean, th.MissMean)
	}
	if !th.Hit(uint64(th.HitMean)) || th.Hit(uint64(th.MissMean)) {
		t.Error("checkpointed threshold misclassifies its own means")
	}
	if th.HitMean != classic.HitMean {
		t.Errorf("hit means diverge: checkpointed %.0f, classic %.0f", th.HitMean, classic.HitMean)
	}
	if th.MissMean != classic.MissMean {
		t.Errorf("miss means diverge: checkpointed %.0f, classic %.0f", th.MissMean, classic.MissMean)
	}
}
