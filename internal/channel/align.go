package channel

// The §V channels transmit through µop-cache *occupancy*: the sender
// evicts the receiver's sets and the receiver times its own probe.
// The alignment channel here transmits through legacy-decode *shape*
// instead — the Frontal-attack effect the static checker
// secret-dependent-jump-alignment flags. The transmitter encodes each
// bit by executing one of two µop-, byte-, and footprint-identical
// jump chains that differ only in conditional-jump alignment; the
// straddling chain stalls the predecoder JccAlignPenalty cycles per
// region on every MITE delivery. The receiver is the timing side of
// the same protocol: it observes only elapsed cycles of the
// transmitter's window (the victim-execution-time observable of the
// Frontal attack) and decodes against a calibrated threshold. No
// µop-cache state carries the bit — the chains are deliberately
// uncacheable, so the channel survives a receiver that cannot evict
// the transmitter at all.

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/cpu"
)

// Alignment channel layout bases, clear of the prime+probe channels'.
const (
	alignStraddleBase = 0x100000
	alignAlignedBase  = 0x140000
)

// Alignment is the jump-alignment covert channel: one hardware thread,
// transmitter and timer in one address space.
type Alignment struct {
	cfg      Config
	c        *cpu.CPU
	straddle *attack.Routine
	aligned  *attack.Routine
	th       attack.Threshold
}

// NewAlignment builds, loads, and calibrates the alignment channel on
// c (thread 0). Calibration times both chains for CalibrationRounds
// rounds and cuts between the two distributions; the modelled
// Skylake penalty of 2 cycles per region separates them by well under
// attack.SeparationFloor's ratio test (the stall is a small fraction
// of a chain's MITE decode time), so the threshold is built from the
// raw round statistics rather than the floor-enforcing calibrator.
func NewAlignment(c *cpu.CPU, cfg Config) (*Alignment, error) {
	straddle, err := attack.Build(attack.StraddleChain(alignStraddleBase, cfg.Geometry, "straddle"))
	if err != nil {
		return nil, err
	}
	aligned, err := attack.Build(attack.AlignedChain(alignAlignedBase, cfg.Geometry, "aligned"))
	if err != nil {
		return nil, err
	}
	merged, err := asm.Merge(straddle.Prog, aligned.Prog)
	if err != nil {
		return nil, err
	}
	c.LoadProgram(merged)
	ch := &Alignment{cfg: cfg, c: c, straddle: straddle, aligned: aligned}

	// Settle branch predictors and the instruction side of the memory
	// hierarchy before timing anything.
	for _, r := range []*attack.Routine{aligned, straddle} {
		if _, err := r.Run(c, 0, cfg.PrimeIters); err != nil {
			return nil, err
		}
	}
	rounds := attack.Rounds{ProbeIters: cfg.ProbeIters}
	for i := 0; i < cfg.CalibrationRounds; i++ {
		hc, err := aligned.Run(c, 0, cfg.ProbeIters)
		if err != nil {
			return nil, err
		}
		mc, err := straddle.Run(c, 0, cfg.ProbeIters)
		if err != nil {
			return nil, err
		}
		rounds.Hit = append(rounds.Hit, float64(hc))
		rounds.Miss = append(rounds.Miss, float64(mc))
	}
	ch.th = rounds.Stats()
	if ch.th.MissMin <= ch.th.HitMax {
		return nil, fmt.Errorf("channel: alignment timings overlap (%s)", ch.th.Spread())
	}
	return ch, nil
}

// Threshold exposes the calibrated aligned/straddle cut.
func (ch *Alignment) Threshold() attack.Threshold { return ch.th }

// TransmitBit runs the transmitter once — the straddling chain for a
// one, the aligned chain for a zero — times it, and decodes the bit
// from the elapsed cycles.
func (ch *Alignment) TransmitBit(bit bool) (bool, error) {
	r := ch.aligned
	if bit {
		r = ch.straddle
	}
	cycles, err := r.Run(ch.c, 0, ch.cfg.ProbeIters)
	if err != nil {
		return false, err
	}
	return ch.th.Miss(cycles), nil
}

// Transmit sends payload bit-by-bit and returns the received bytes
// and the channel statistics.
func (ch *Alignment) Transmit(payload []byte) ([]byte, Result, error) {
	return transmitBits(payload, ch.c, func(bit bool) (bool, error) {
		return ch.TransmitBit(bit)
	})
}
