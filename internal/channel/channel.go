// Package channel implements the paper's §V covert channels over the
// micro-op cache: same-address-space, cross-privilege (user/kernel via
// a syscall trampoline), and cross-SMT-thread (on the competitively
// shared AMD-style cache). Every channel transmits bits purely through
// µop-cache conflict timing — no data-cache or instruction-cache signal
// is involved — and reports bandwidth and error rate like Table I.
package channel

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/cpu"
)

// ClockGHz converts simulated cycles to wall-clock for bandwidth
// figures, matching the paper's i7-8700T testbed clock.
const ClockGHz = 2.7

// Config tunes a covert channel.
type Config struct {
	Geometry attack.Geometry
	// PrimeIters is the receiver's priming traversal count: enough to
	// reclaim its sets from a hot opponent under the hotness
	// replacement policy.
	PrimeIters int64
	// ProbeIters is the number of chain traversals per timed probe —
	// the paper's "samples" knob. Few, so a lost set stays lost for
	// the duration of the measurement.
	ProbeIters int64
	// SendIters is the sender's traversal count per one-bit; it must
	// out-access the receiver's priming for the hotness policy to
	// yield.
	SendIters int64
	// CalibrationRounds averages the threshold measurement.
	CalibrationRounds int
}

// DefaultConfig mirrors the paper's best-bandwidth operating point
// (8 sets × 6 ways, 5 samples).
func DefaultConfig() Config {
	return Config{
		Geometry:          attack.DefaultGeometry(),
		PrimeIters:        20,
		ProbeIters:        5,
		SendIters:         20,
		CalibrationRounds: 8,
	}
}

// Result summarizes a transmission (one Table I row).
type Result struct {
	Bits      int
	BitErrors int
	Cycles    uint64
}

// ErrorRate returns the fraction of bits received wrong.
func (r Result) ErrorRate() float64 {
	if r.Bits == 0 {
		return 0
	}
	return float64(r.BitErrors) / float64(r.Bits)
}

// BandwidthKbps returns the raw channel bandwidth in Kbit/s at
// ClockGHz.
func (r Result) BandwidthKbps() float64 {
	if r.Cycles == 0 {
		return 0
	}
	seconds := float64(r.Cycles) / (ClockGHz * 1e9)
	return float64(r.Bits) / seconds / 1e3
}

// SameAddressSpace is the §V-A channel: Trojan and spy share one
// address space and one hardware thread. The spy primes and times its
// tiger; the Trojan runs a conflicting tiger to send a one and the
// mutually exclusive zebra to send a zero.
type SameAddressSpace struct {
	cfg  Config
	c    *cpu.CPU
	recv *attack.Routine
	send *attack.Routine
	zeb  *attack.Routine
	th   attack.Threshold
}

// Channel layout bases; far enough apart that no two routines share
// instruction addresses.
const (
	recvBase  = 0x40000
	sendBase  = 0x80000
	zebraBase = 0xC0000
)

// NewSameAddressSpace builds, loads, and calibrates the channel on c
// (thread 0).
func NewSameAddressSpace(c *cpu.CPU, cfg Config) (*SameAddressSpace, error) {
	recv, err := attack.Build(attack.Tiger(recvBase, cfg.Geometry, "recv"))
	if err != nil {
		return nil, err
	}
	send, err := attack.Build(attack.Tiger(sendBase, cfg.Geometry, "send"))
	if err != nil {
		return nil, err
	}
	zeb, err := attack.Build(attack.Zebra(zebraBase, cfg.Geometry, "zebra"))
	if err != nil {
		return nil, err
	}
	merged, err := asm.Merge(recv.Prog, send.Prog, zeb.Prog)
	if err != nil {
		return nil, err
	}
	c.LoadProgram(merged)
	ch := &SameAddressSpace{cfg: cfg, c: c, recv: recv, send: send, zeb: zeb}
	ch.th, err = attack.Calibrate(c, recv, send, cfg.PrimeIters, cfg.ProbeIters, cfg.CalibrationRounds)
	if err != nil {
		return nil, err
	}
	return ch, nil
}

// Threshold exposes the calibrated hit/miss cut.
func (ch *SameAddressSpace) Threshold() attack.Threshold { return ch.th }

// SendBit transmits one bit from the Trojan side.
func (ch *SameAddressSpace) SendBit(bit bool) error {
	r := ch.zeb
	if bit {
		r = ch.send
	}
	_, err := r.Run(ch.c, 0, ch.cfg.SendIters)
	return err
}

// TransmitBit runs one full prime → send → probe round and returns the
// received bit.
func (ch *SameAddressSpace) TransmitBit(bit bool) (bool, error) {
	if _, err := ch.recv.Run(ch.c, 0, ch.cfg.PrimeIters); err != nil {
		return false, err
	}
	if err := ch.SendBit(bit); err != nil {
		return false, err
	}
	cycles, err := ch.recv.Run(ch.c, 0, ch.cfg.ProbeIters)
	if err != nil {
		return false, err
	}
	return ch.th.Miss(cycles), nil
}

// Transmit sends payload bit-by-bit and returns the received bytes and
// the channel statistics.
func (ch *SameAddressSpace) Transmit(payload []byte) ([]byte, Result, error) {
	return transmitBits(payload, ch.c, func(bit bool) (bool, error) {
		return ch.TransmitBit(bit)
	})
}

// transmitBits drives a per-bit channel function over a payload,
// measuring cycles via the CPU's global clock.
func transmitBits(payload []byte, c *cpu.CPU, bitFn func(bool) (bool, error)) ([]byte, Result, error) {
	out := make([]byte, len(payload))
	var res Result
	start := c.Cycle()
	for i, b := range payload {
		for k := 7; k >= 0; k-- {
			sent := (b>>k)&1 == 1
			got, err := bitFn(sent)
			if err != nil {
				return nil, res, fmt.Errorf("channel: bit %d: %w", res.Bits, err)
			}
			if got {
				out[i] |= 1 << k
			}
			if got != sent {
				res.BitErrors++
			}
			res.Bits++
		}
	}
	res.Cycles = c.Cycle() - start
	return out, res, nil
}
