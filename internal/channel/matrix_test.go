package channel

import (
	"bytes"
	"testing"

	"deaduops/internal/cpu"
	"deaduops/internal/ecc"
)

// transmitter is the surface every channel flavour shares.
type transmitter interface {
	Transmit(payload []byte) ([]byte, Result, error)
}

// TestChannelMatrix drives every channel flavour through one table:
// the binary same-address-space baseline, the 1- and 2-bit multisymbol
// encodings (§V-B), and the cross-SMT channel on the competitively
// shared Zen micro-op cache (§V-C). Each must deliver the payload
// bit-exact with a sane Result.
func TestChannelMatrix(t *testing.T) {
	cases := []struct {
		name    string
		open    func() (transmitter, error)
		payload string
	}{
		{
			name: "binary-intel",
			open: func() (transmitter, error) {
				return NewSameAddressSpace(cpu.New(cpu.Intel()), DefaultConfig())
			},
			payload: "dead uops",
		},
		{
			name: "multisymbol-1bit-intel",
			open: func() (transmitter, error) {
				return NewMultiSymbol(cpu.New(cpu.Intel()), DefaultConfig(), 1)
			},
			payload: "unary alphabet",
		},
		{
			name: "multisymbol-2bit-intel",
			open: func() (transmitter, error) {
				return NewMultiSymbol(cpu.New(cpu.Intel()), DefaultConfig(), 2)
			},
			payload: "4-ary alphabet",
		},
		{
			name: "cross-smt-zen",
			open: func() (transmitter, error) {
				return NewCrossSMT(cpu.New(cpu.AMD()), DefaultConfig())
			},
			payload: "smt neighbours",
		},
		{
			name: "jump-alignment-intel",
			open: func() (transmitter, error) {
				return NewAlignment(cpu.New(cpu.Intel()), DefaultConfig())
			},
			payload: "frontal bits",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ch, err := tc.open()
			if err != nil {
				t.Fatal(err)
			}
			got, res, err := ch.Transmit([]byte(tc.payload))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte(tc.payload)) {
				t.Errorf("received %q, want %q (%d bit errors)", got, tc.payload, res.BitErrors)
			}
			if want := 8 * len(tc.payload); res.Bits != want {
				t.Errorf("result counts %d bits, want %d", res.Bits, want)
			}
			if res.ErrorRate() != 0 {
				t.Errorf("error rate %f on a noiseless simulator", res.ErrorRate())
			}
			if res.BandwidthKbps() <= 0 {
				t.Errorf("bandwidth %f not positive (cycles %d)", res.BandwidthKbps(), res.Cycles)
			}
		})
	}
}

// TestTransmitWithReedSolomon is the §V-D stack end to end: the
// payload is Reed–Solomon encoded, carried over the multisymbol
// channel, corrupted at the receiver (symbol flips standing in for the
// bit errors a real noisy machine injects), and decoded. Up to
// nParity/2 corrupted bytes per block must be transparent; more must
// be reported, never silently mis-decoded into an unflagged wrong
// payload of the right shape.
func TestTransmitWithReedSolomon(t *testing.T) {
	const nParity = 8 // corrects up to 4 byte errors per block
	codec, err := ecc.NewCodec(nParity)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("microcoded secrets")
	encoded, err := codec.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewMultiSymbol(cpu.New(cpu.Intel()), DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	received, _, err := ch.Transmit(encoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(received, encoded) {
		t.Fatalf("channel corrupted the stream before injection")
	}

	cases := []struct {
		name    string
		flips   []int // byte positions to corrupt in the received stream
		wantErr bool
	}{
		{name: "clean", flips: nil},
		{name: "one-error", flips: []int{2}},
		{name: "at-capacity", flips: []int{0, 7, 13, 20}},
		{name: "beyond-capacity", flips: []int{0, 3, 7, 11, 13, 17, 20, 22}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stream := append([]byte(nil), received...)
			for _, p := range tc.flips {
				stream[p] ^= 0x5A
			}
			got, err := codec.Decode(stream, len(payload))
			if tc.wantErr {
				if err == nil && bytes.Equal(got, payload) {
					t.Fatalf("decode corrected %d errors past capacity", len(tc.flips))
				}
				return
			}
			if err != nil {
				t.Fatalf("decode failed with %d injected errors: %v", len(tc.flips), err)
			}
			if !bytes.Equal(got, payload) {
				t.Errorf("decoded %q, want %q", got, payload)
			}
		})
	}
}
