package channel

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
)

// CrossSMT is the §V-B channel across two SMT threads of an AMD
// Zen-like core, whose micro-op cache is competitively shared. The
// Trojan (thread 1) sends a one by executing a wide tiger that evicts
// the spy's lines across many sets; it sends a zero by spinning on
// PAUSE. The spy (thread 0) continuously executes and times its own
// wide chain; its traversal time rises when the Trojan contends.
type CrossSMT struct {
	cfg Config
	c   *cpu.CPU

	recvEntry uint64
	oneEntry  uint64
	zeroEntry uint64
	th        attack.Threshold
}

// smtGeometry widens the default geometry: the paper's SMT channel
// touches all the sets of the micro-op cache.
func smtGeometry() attack.Geometry { return attack.Geometry{NSets: 16, NWays: 6} }

const (
	smtRecvBase  = 0x40000
	smtSendBase  = 0x100000
	smtPauseBase = 0x1C0000
)

// NewCrossSMT builds the channel. c must use an AMD-style (competitive
// sharing) configuration; on a statically partitioned cache the channel
// finds no signal, which is itself the paper's Intel result.
func NewCrossSMT(c *cpu.CPU, cfg Config) (*CrossSMT, error) {
	g := smtGeometry()
	recv, err := attack.Build(attack.Tiger(smtRecvBase, g, "smtrecv"))
	if err != nil {
		return nil, err
	}
	send, err := attack.Build(attack.FastTiger(smtSendBase, g, "smtsend"))
	if err != nil {
		return nil, err
	}

	// Zero-bit sender: PAUSE spin (PAUSE µops are never cached, so the
	// spin leaves no micro-op cache footprint).
	pb := asm.New(smtPauseBase)
	pb.Label("entry")
	pb.Label("ploop")
	for i := 0; i < 8; i++ {
		pb.Pause()
	}
	pb.Subi(isa.R14, 1)
	pb.Cmpi(isa.R14, 0)
	pb.Jcc(isa.NE, "ploop")
	pb.Halt()
	pause, err := pb.Build()
	if err != nil {
		return nil, err
	}

	merged, err := asm.Merge(recv.Prog, send.Prog, pause)
	if err != nil {
		return nil, err
	}
	c.LoadProgram(merged)

	ch := &CrossSMT{
		cfg:       cfg,
		c:         c,
		recvEntry: recv.Entry,
		oneEntry:  send.Entry,
		zeroEntry: pause.Entry,
	}

	// Warm-up windows: the first SMT window pays all the cold compulsory
	// misses and would poison the threshold.
	for i := 0; i < 2; i++ {
		if _, err := ch.round(false); err != nil {
			return nil, err
		}
		if _, err := ch.round(true); err != nil {
			return nil, err
		}
	}

	rounds := attack.Rounds{ProbeIters: cfg.ProbeIters}
	for i := 0; i < cfg.CalibrationRounds; i++ {
		z, err := ch.round(false)
		if err != nil {
			return nil, err
		}
		rounds.Hit = append(rounds.Hit, float64(z))
		o, err := ch.round(true)
		if err != nil {
			return nil, err
		}
		rounds.Miss = append(rounds.Miss, float64(o))
	}
	// The competitively shared cache gives a weaker contrast than the
	// same-thread channel, so accept any positive separation instead of
	// the full SeparationFloor — but keep the per-round spread stats.
	ch.th = rounds.Stats()
	if ch.th.MissMean <= ch.th.HitMean {
		return nil, fmt.Errorf("channel: no cross-SMT timing signal (%s)", ch.th.Spread())
	}
	return ch, nil
}

// round runs one simultaneous spy/Trojan window and returns the spy's
// traversal time.
func (ch *CrossSMT) round(bit bool) (uint64, error) {
	sender := ch.zeroEntry
	if bit {
		sender = ch.oneEntry
	}
	ch.c.SetReg(0, isa.R14, ch.cfg.PrimeIters+ch.cfg.ProbeIters)
	ch.c.SetReg(1, isa.R14, 1<<40) // Trojan runs for the spy's whole window
	res := ch.c.RunSMTPrimary(ch.recvEntry, sender, 20_000_000)
	if res[0].TimedOut {
		return 0, fmt.Errorf("channel: SMT spy window timed out")
	}
	return res[0].Cycles, nil
}

// Threshold exposes the calibrated decision threshold.
func (ch *CrossSMT) Threshold() attack.Threshold { return ch.th }

// TransmitBit sends one bit from the Trojan thread and returns the
// spy's reception.
func (ch *CrossSMT) TransmitBit(bit bool) (bool, error) {
	cycles, err := ch.round(bit)
	if err != nil {
		return false, err
	}
	return ch.th.Miss(cycles), nil
}

// Transmit sends payload bit-by-bit across the SMT boundary.
func (ch *CrossSMT) Transmit(payload []byte) ([]byte, Result, error) {
	return transmitBits(payload, ch.c, ch.TransmitBit)
}
