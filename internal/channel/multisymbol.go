package channel

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/cpu"
)

// MultiSymbol is the jump-table bandwidth optimization the paper
// sketches (§VI-A): instead of one tiger/zebra pair carrying one bit
// per round, the Trojan selects one of 2^k tigers occupying mutually
// exclusive set groups, transmitting k bits per round. The spy probes
// each group and decodes the symbol from which probe went slow.
type MultiSymbol struct {
	cfg  Config
	c    *cpu.CPU
	bits int
	recv []*attack.Routine // one receiver per set group
	send []*attack.Routine // one sender per set group
	cut  []float64         // per-group hit/miss threshold
}

// msBase spaces the routines' code images.
const msBase = 0x200000

// NewMultiSymbol builds a 2^bits-symbol channel (bits is 1 or 2, so
// bytes divide evenly into symbols; 2 bits ⇒ four 8-set stripes).
func NewMultiSymbol(c *cpu.CPU, cfg Config, bits int) (*MultiSymbol, error) {
	if bits < 1 || bits > 2 {
		return nil, fmt.Errorf("channel: multi-symbol bits %d out of range [1,2]", bits)
	}
	nsym := 1 << bits
	// Each symbol gets 32/nsym evenly spaced sets, offset so the
	// groups interleave without overlap.
	ch := &MultiSymbol{cfg: cfg, c: c, bits: bits}
	var progs []*asm.Program
	for s := 0; s < nsym; s++ {
		g := attack.Geometry{NSets: 32 / nsym, NWays: cfg.Geometry.NWays, FirstSet: s}
		recv, err := attack.Build(attack.Tiger(msBase+uint64(s)*0x40000, g,
			fmt.Sprintf("msr%d", s)))
		if err != nil {
			return nil, err
		}
		send, err := attack.Build(attack.Tiger(msBase+uint64(nsym+s)*0x40000, g,
			fmt.Sprintf("mss%d", s)))
		if err != nil {
			return nil, err
		}
		ch.recv = append(ch.recv, recv)
		ch.send = append(ch.send, send)
		progs = append(progs, recv.Prog, send.Prog)
	}
	merged, err := asm.Merge(progs...)
	if err != nil {
		return nil, err
	}
	c.LoadProgram(merged)

	// Calibrate each group independently.
	for s := 0; s < nsym; s++ {
		th, err := attack.Calibrate(c, ch.recv[s], ch.send[s],
			cfg.PrimeIters, cfg.ProbeIters, cfg.CalibrationRounds)
		if err != nil {
			return nil, fmt.Errorf("channel: group %d: %w", s, err)
		}
		ch.cut = append(ch.cut, th.Cut)
	}
	return ch, nil
}

// Symbols returns the alphabet size.
func (ch *MultiSymbol) Symbols() int { return 1 << ch.bits }

// BitsPerSymbol returns the per-round payload.
func (ch *MultiSymbol) BitsPerSymbol() int { return ch.bits }

// TransmitSymbol runs one prime → send → probe round for a symbol in
// [0, Symbols()).
func (ch *MultiSymbol) TransmitSymbol(sym int) (int, error) {
	if sym < 0 || sym >= ch.Symbols() {
		return 0, fmt.Errorf("channel: symbol %d out of range", sym)
	}
	for _, r := range ch.recv {
		if _, err := r.Run(ch.c, 0, ch.cfg.PrimeIters); err != nil {
			return 0, err
		}
	}
	if _, err := ch.send[sym].Run(ch.c, 0, ch.cfg.SendIters); err != nil {
		return 0, err
	}
	// Decode: the group whose probe overshoots its threshold the most.
	// This is a relative argmax over cycles/cut ratios, not a boundary
	// classification, so attack.Threshold's exactly-on-Cut convention
	// does not apply here: a probe landing exactly on its cut scores
	// 1.0 and wins only if every other group scored below its own cut.
	best, bestScore := 0, -1.0
	for s, r := range ch.recv {
		cycles, err := r.Run(ch.c, 0, ch.cfg.ProbeIters)
		if err != nil {
			return 0, err
		}
		score := float64(cycles) / ch.cut[s]
		if score > bestScore {
			best, bestScore = s, score
		}
	}
	return best, nil
}

// Transmit sends the payload in k-bit symbols and reports the usual
// channel statistics (bit-granular errors).
func (ch *MultiSymbol) Transmit(payload []byte) ([]byte, Result, error) {
	out := make([]byte, len(payload))
	var res Result
	start := ch.c.Cycle()
	mask := ch.Symbols() - 1
	for i, b := range payload {
		for shift := 8 - ch.bits; shift >= 0; shift -= ch.bits {
			sym := (int(b) >> shift) & mask
			got, err := ch.TransmitSymbol(sym)
			if err != nil {
				return nil, res, err
			}
			out[i] |= byte(got << shift)
			for k := 0; k < ch.bits; k++ {
				if (sym>>k)&1 != (got>>k)&1 {
					res.BitErrors++
				}
				res.Bits++
			}
		}
	}
	res.Cycles = ch.c.Cycle() - start
	return out, res, nil
}
