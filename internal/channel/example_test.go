package channel_test

import (
	"fmt"

	"deaduops/internal/channel"
	"deaduops/internal/cpu"
)

// Example transmits a message between two code regions of one address
// space using only micro-op cache conflict timing.
func Example() {
	c := cpu.New(cpu.Intel())
	ch, err := channel.NewSameAddressSpace(c, channel.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	got, res, err := ch.Transmit([]byte("hi"))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("received %q with %d bit errors\n", got, res.BitErrors)
	// Output:
	// received "hi" with 0 bit errors
}
