package channel

import (
	"bytes"
	"testing"

	"deaduops/internal/attack"
	"deaduops/internal/cpu"
)

func TestSameAddressSpaceTransmitsExactly(t *testing.T) {
	c := cpu.New(cpu.Intel())
	ch, err := NewSameAddressSpace(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("covert channel test payload 0123456789")
	got, res, err := ch.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload corrupted: %q vs %q (%d bit errors)", got, payload, res.BitErrors)
	}
	if res.Bits != len(payload)*8 {
		t.Errorf("bits = %d, want %d", res.Bits, len(payload)*8)
	}
	if res.BandwidthKbps() < 50 {
		t.Errorf("bandwidth %.1f Kbps implausibly low", res.BandwidthKbps())
	}
}

func TestSameAddressSpaceThresholdSeparation(t *testing.T) {
	c := cpu.New(cpu.Intel())
	ch, err := NewSameAddressSpace(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	th := ch.Threshold()
	if th.MissMean < th.HitMean*2 {
		t.Errorf("weak separation: hit=%.0f miss=%.0f", th.HitMean, th.MissMean)
	}
}

func TestSameAddressSpaceAlternatingBits(t *testing.T) {
	c := cpu.New(cpu.Intel())
	ch, err := NewSameAddressSpace(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		want := i%2 == 0
		got, err := ch.TransmitBit(want)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("bit %d: sent %v received %v", i, want, got)
		}
	}
}

func TestUserKernelLeaksSecret(t *testing.T) {
	c := cpu.New(cpu.Intel())
	ch, err := NewUserKernel(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("KernelSecret!42")
	ch.WriteSecret(secret)
	got, res, err := ch.Leak(len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Errorf("leaked %q, want %q", got, secret)
	}
	if res.Bits != len(secret)*8 {
		t.Errorf("bits = %d", res.Bits)
	}
}

func TestUserKernelSecretChangesAreTracked(t *testing.T) {
	// The channel must read the current kernel secret, not calibration
	// residue.
	c := cpu.New(cpu.Intel())
	ch, err := NewUserKernel(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, secret := range [][]byte{{0xA5}, {0x00}, {0xFF}, {0x3C}} {
		ch.WriteSecret(secret)
		got, _, err := ch.Leak(1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != secret[0] {
			t.Errorf("secret %#x leaked as %#x", secret[0], got[0])
		}
	}
}

func TestCrossSMTTransmitsOnAMD(t *testing.T) {
	c := cpu.New(cpu.AMD())
	ch, err := NewCrossSMT(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("SMT covert xfer")
	got, res, err := ch.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("leaked %q, want %q (%d bit errors)", got, payload, res.BitErrors)
	}
}

func TestCrossSMTFindsNoSignalOnIntel(t *testing.T) {
	// On the statically partitioned Intel micro-op cache the SMT
	// channel must find no signal — the paper's motivation for moving
	// the cross-thread attack to AMD Zen.
	c := cpu.New(cpu.Intel())
	if _, err := NewCrossSMT(c, DefaultConfig()); err == nil {
		t.Error("cross-SMT channel calibrated on a partitioned cache")
	}
}

func TestResultMath(t *testing.T) {
	r := Result{Bits: 100, BitErrors: 5, Cycles: 2_700_000}
	if got := r.ErrorRate(); got != 0.05 {
		t.Errorf("error rate %v", got)
	}
	// 2.7e6 cycles at 2.7 GHz = 1 ms; 100 bits / 1 ms = 100 Kbit/s.
	if got := r.BandwidthKbps(); got < 99.9 || got > 100.1 {
		t.Errorf("bandwidth %v", got)
	}
	var zero Result
	if zero.ErrorRate() != 0 || zero.BandwidthKbps() != 0 {
		t.Error("zero-value Result must not divide by zero")
	}
}

func TestZebraNeverDisturbsReceiver(t *testing.T) {
	// Transmitting a run of zeros must keep every probe at hit level.
	c := cpu.New(cpu.Intel())
	ch, err := NewSameAddressSpace(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		got, err := ch.TransmitBit(false)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Errorf("zero bit %d received as one", i)
		}
	}
}

func TestGeometryDisjointSets(t *testing.T) {
	for _, nsets := range []int{1, 2, 4, 8, 16} {
		g := attack.Geometry{NSets: nsets, NWays: 6}
		tiger := map[int]bool{}
		for _, s := range g.TigerSets() {
			tiger[s] = true
		}
		for _, s := range g.ZebraSets() {
			if tiger[s] {
				t.Errorf("nsets=%d: zebra set %d collides with tiger", nsets, s)
			}
		}
	}
}

func TestMultiSymbolTransmits(t *testing.T) {
	c := cpu.New(cpu.Intel())
	ch, err := NewMultiSymbol(c, DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Symbols() != 4 || ch.BitsPerSymbol() != 2 {
		t.Fatalf("alphabet %d/%d", ch.Symbols(), ch.BitsPerSymbol())
	}
	payload := []byte("4-ary!")
	got, res, err := ch.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("got %q want %q (%d bit errors)", got, payload, res.BitErrors)
	}
}

func TestMultiSymbolEachSymbolDecodes(t *testing.T) {
	c := cpu.New(cpu.Intel())
	ch, err := NewMultiSymbol(c, DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range []int{0, 1, 2, 3, 3, 0, 2, 1} {
		got, err := ch.TransmitSymbol(sym)
		if err != nil {
			t.Fatal(err)
		}
		if got != sym {
			t.Errorf("sent symbol %d, received %d", sym, got)
		}
	}
	if _, err := ch.TransmitSymbol(4); err == nil {
		t.Error("out-of-range symbol accepted")
	}
}

func TestMultiSymbolRejectsBadBits(t *testing.T) {
	c := cpu.New(cpu.Intel())
	if _, err := NewMultiSymbol(c, DefaultConfig(), 3); err == nil {
		t.Error("bits=3 accepted (bytes would not divide)")
	}
}
