package channel

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
)

// UserKernel is the §V-A cross-privilege channel: the spy primes its
// user-space tiger, makes system calls into a kernel routine that
// performs a secret-dependent call to an internal kernel routine (the
// kernel-side tiger), and then times its own tiger. The micro-op cache
// is not flushed at the privilege crossing, so the kernel's execution
// footprint survives into the spy's probe.
type UserKernel struct {
	cfg Config
	c   *cpu.CPU

	recv *attack.Routine
	th   attack.Threshold

	syscallEntry uint64
	// SecretBase is the guest address of the kernel's secret bit
	// array; the host (acting as the kernel owner) writes it there.
	SecretBase uint64
}

const (
	ukKernelTiger = 0x440000 // kernel-side tiger chain base
	ukSecretBase  = 0x300000 // secret byte array in kernel memory
	ukSyscallLoop = 0xE0000  // spy's syscall trampoline loop
)

// NewUserKernel builds the cross-privilege channel on c. The kernel
// image contains the victim routine at the architectural SYSCALL entry;
// its secret-dependent internal call targets a kernel tiger that
// conflicts with the spy's user-space tiger.
func NewUserKernel(c *cpu.CPU, cfg Config) (*UserKernel, error) {
	recv, err := attack.Build(attack.Tiger(recvBase, cfg.Geometry, "recv"))
	if err != nil {
		return nil, err
	}

	kern, err := buildKernelImage(c.Config().KernelEntry, cfg.Geometry)
	if err != nil {
		return nil, err
	}

	// The spy's syscall loop: R14 syscalls, bit index in R1 (consumed
	// by the kernel routine).
	sb := asm.New(ukSyscallLoop)
	sb.Label("entry")
	sb.Label("sloop")
	sb.Syscall()
	sb.Subi(isa.R14, 1)
	sb.Cmpi(isa.R14, 0)
	sb.Jcc(isa.NE, "sloop")
	sb.Halt()
	syscalls, err := sb.Build()
	if err != nil {
		return nil, err
	}

	merged, err := asm.Merge(recv.Prog, syscalls, kern)
	if err != nil {
		return nil, err
	}
	c.LoadProgram(merged)

	ch := &UserKernel{
		cfg:          cfg,
		c:            c,
		recv:         recv,
		syscallEntry: syscalls.Entry,
		SecretBase:   ukSecretBase,
	}

	// Calibrate with known secret bits.
	rounds := attack.Rounds{ProbeIters: cfg.ProbeIters}
	for i := 0; i < cfg.CalibrationRounds; i++ {
		ch.WriteSecret([]byte{0x00})
		z, err := ch.leakBit(0)
		if err != nil {
			return nil, err
		}
		rounds.Hit = append(rounds.Hit, float64(z))
		ch.WriteSecret([]byte{0xFF})
		o, err := ch.leakBit(0)
		if err != nil {
			return nil, err
		}
		rounds.Miss = append(rounds.Miss, float64(o))
	}
	// The syscall trampoline adds constant overhead to both sides, so
	// the ratio floor does not transfer; accept any positive separation
	// but keep the per-round spread stats.
	ch.th = rounds.Stats()
	if ch.th.MissMean <= ch.th.HitMean {
		return nil, fmt.Errorf("channel: no user/kernel timing signal (%s)", ch.th.Spread())
	}
	return ch, nil
}

// buildKernelImage assembles the kernel routine and its internal tiger.
// The routine reads one bit of the secret array (index in R1) and, if
// set, calls the internal routine before returning to user mode.
func buildKernelImage(kentry uint64, g attack.Geometry) (*asm.Program, error) {
	kb := asm.New(kentry)
	kb.Label("kentry")
	// R2 = secret[R1>>3], R3 = (R2 >> (R1&7)) & 1
	kb.Mov(isa.R2, isa.R1)
	kb.Shri(isa.R2, 3)
	kb.Loadb(isa.R3, isa.R2, ukSecretBase)
	kb.Mov(isa.R4, isa.R1)
	kb.Andi(isa.R4, 7)
	kb.Shr(isa.R3, isa.R4)
	kb.Andi(isa.R3, 1)
	kb.Cmpi(isa.R3, 0)
	spec := attack.Tiger(ukKernelTiger, g, "ktiger")
	kb.Jcc(isa.EQ, "kskip")
	kb.Call(spec.EntryLabel())
	kb.Label("kskip")
	kb.Sysret()

	// The internal kernel routine: a tiger chain traversed once per
	// call, conflicting with the spy's user tiger.
	if err := spec.Emit(kb, "ktiger_done"); err != nil {
		return nil, err
	}
	kb.Label("ktiger_done")
	kb.Ret()
	return kb.Build()
}

// WriteSecret places the secret bytes in kernel memory. In the threat
// model this is the victim kernel's own data; the host stands in for
// the kernel here.
func (ch *UserKernel) WriteSecret(secret []byte) {
	ch.c.Mem().WriteBytes(ch.SecretBase, secret)
}

// leakBit primes, triggers SendIters syscalls for the given secret bit
// index, and returns the probe time.
func (ch *UserKernel) leakBit(bitIndex int64) (uint64, error) {
	if _, err := ch.recv.Run(ch.c, 0, ch.cfg.PrimeIters); err != nil {
		return 0, err
	}
	ch.c.SetReg(0, isa.R1, bitIndex)
	ch.c.SetReg(0, isa.R14, ch.cfg.SendIters)
	if res := ch.c.Run(0, ch.syscallEntry, 20_000_000); res.TimedOut {
		return 0, fmt.Errorf("channel: syscall loop timed out")
	}
	return ch.recv.Run(ch.c, 0, ch.cfg.ProbeIters)
}

// Threshold exposes the calibrated decision threshold.
func (ch *UserKernel) Threshold() attack.Threshold { return ch.th }

// LeakBit recovers one bit of the kernel secret across the privilege
// boundary.
func (ch *UserKernel) LeakBit(bitIndex int64) (bool, error) {
	cycles, err := ch.leakBit(bitIndex)
	if err != nil {
		return false, err
	}
	return ch.th.Miss(cycles), nil
}

// Leak recovers n bytes of the kernel secret and returns them with
// channel statistics. The caller compares against the planted secret
// for the error rate.
func (ch *UserKernel) Leak(nBytes int) ([]byte, Result, error) {
	out := make([]byte, nBytes)
	var res Result
	start := ch.c.Cycle()
	for i := 0; i < nBytes; i++ {
		for k := 7; k >= 0; k-- {
			idx := int64(i*8 + k)
			bit, err := ch.LeakBit(idx)
			if err != nil {
				return nil, res, err
			}
			if bit {
				out[i] |= 1 << k
			}
			res.Bits++
		}
	}
	res.Cycles = ch.c.Cycle() - start
	return out, res, nil
}
