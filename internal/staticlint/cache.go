package staticlint

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sort"
	"sync"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// Incremental analysis cache: the audit service's load-bearing
// refactor. Two content-addressed layers share one Cache value:
//
//   - per-function taint summaries, keyed by a canonical hash of the
//     function's instruction bytes, the Spec (which fixes the taint
//     source-bit layout the summary states are expressed in), the
//     analysis Config fingerprint, the resolved indirect-target sets of
//     every CALLI/JMPI in the body (resolve.go — so a dispatch-table
//     edit that changes a site's proven target set re-keys the site's
//     function), and — transitively — the keys of every callee. SCC
//     members share one combined key over all member bodies, so the key
//     graph is the condensed call graph: editing a function changes its
//     key, which changes every transitive caller's key, which is
//     exactly the "invalidate the SCC dependents, nothing else"
//     contract. No explicit invalidation exists or is needed — stale
//     entries simply stop being addressed and age out of the bounded
//     store.
//
//   - whole-program reports, keyed by the program's full instruction
//     and label content plus the Spec and the Config fingerprint
//     including the checker selection. A corpus re-audit after one edit
//     serves every untouched program from this layer without running
//     anything; the edited program misses here, then reuses every
//     unchanged function's summary from the layer above.
//
// Both layers are safe for concurrent use: entries are immutable once
// stored (summaries are never mutated after computeSummaries builds
// them; cached reports are returned as shallow copies and their
// findings are read-only by contract), and the store is guarded by one
// mutex sized for lookups, not analysis — analyses run outside the
// lock, so two goroutines may race to compute the same entry and the
// later store wins with an identical value.

// cacheKey is a collision-resistant content address.
type cacheKey [sha256.Size]byte

// CacheStats is a point-in-time snapshot of cache effectiveness, the
// numbers /v1/stats serves and the incremental-re-audit tests assert
// on. FuncMisses counts functions whose summaries were (re)computed —
// after an edit this is precisely the changed functions plus their SCC
// dependents; FuncHits counts summaries served without re-analysis.
type CacheStats struct {
	FuncHits      uint64 `json:"func_hits"`
	FuncMisses    uint64 `json:"func_misses"`
	ReportHits    uint64 `json:"report_hits"`
	ReportMisses  uint64 `json:"report_misses"`
	FuncEntries   int    `json:"func_entries"`
	ReportEntries int    `json:"report_entries"`
}

// Default capacity bounds: sized so a 1000-program corpus re-audit is
// fully resident with headroom, while a long-lived server cannot grow
// without bound (FIFO eviction — content keys make recomputation after
// an eviction correct, just slower).
const (
	defaultMaxFuncEntries   = 1 << 16
	defaultMaxReportEntries = 1 << 12
)

// Cache is the shared incremental analysis store. The zero value is
// not usable; call NewCache. A nil *Cache is a valid "caching off"
// receiver everywhere one is accepted.
type Cache struct {
	mu      sync.Mutex
	sums    map[cacheKey]*summary
	sumQ    []cacheKey
	reports map[cacheKey]*Report
	repQ    []cacheKey

	maxSums, maxReports int
	stats               CacheStats
}

// NewCache returns an empty cache with the default capacity bounds.
func NewCache() *Cache {
	return NewCacheSized(defaultMaxFuncEntries, defaultMaxReportEntries)
}

// NewCacheSized returns an empty cache bounded to at most maxFuncs
// function summaries and maxReports program reports (minimum 1 each).
func NewCacheSized(maxFuncs, maxReports int) *Cache {
	if maxFuncs < 1 {
		maxFuncs = 1
	}
	if maxReports < 1 {
		maxReports = 1
	}
	return &Cache{
		sums:       make(map[cacheKey]*summary),
		reports:    make(map[cacheKey]*Report),
		maxSums:    maxFuncs,
		maxReports: maxReports,
	}
}

// Stats returns a snapshot of the hit/miss counters and entry counts.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.FuncEntries = len(c.sums)
	s.ReportEntries = len(c.reports)
	return s
}

// getSummaries looks up one SCC's member summaries, all-or-nothing:
// a partially evicted component recomputes as a unit, matching how it
// is stored.
func (c *Cache) getSummaries(keys []cacheKey) ([]*summary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*summary, len(keys))
	for i, k := range keys {
		s, ok := c.sums[k]
		if !ok {
			c.stats.FuncMisses += uint64(len(keys))
			return nil, false
		}
		out[i] = s
	}
	c.stats.FuncHits += uint64(len(keys))
	return out, true
}

// putSummaries stores one SCC's member summaries under their keys.
func (c *Cache) putSummaries(keys []cacheKey, sums []*summary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, k := range keys {
		if _, ok := c.sums[k]; !ok {
			c.sumQ = append(c.sumQ, k)
		}
		c.sums[k] = sums[i]
	}
	for len(c.sums) > c.maxSums && len(c.sumQ) > 0 {
		old := c.sumQ[0]
		c.sumQ = c.sumQ[1:]
		delete(c.sums, old)
	}
}

func (c *Cache) getReport(k cacheKey) (*Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.reports[k]
	if ok {
		c.stats.ReportHits++
	} else {
		c.stats.ReportMisses++
	}
	return r, ok
}

func (c *Cache) putReport(k cacheKey, r *Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.reports[k]; !ok {
		c.repQ = append(c.repQ, k)
	}
	c.reports[k] = r
	for len(c.reports) > c.maxReports && len(c.repQ) > 0 {
		old := c.repQ[0]
		c.repQ = c.repQ[1:]
		delete(c.reports, old)
	}
}

// hasher accumulates canonical key material. Every variable-length
// field is length-prefixed and every composite is domain-tagged, so no
// two distinct inputs serialize to the same byte stream.
type hasher struct {
	h   hash.Hash
	buf [8]byte
}

func newHasher(domain string) *hasher {
	w := &hasher{h: sha256.New()}
	w.str(domain)
	return w
}

func (w *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *hasher) i64(v int64) { w.u64(uint64(v)) }

func (w *hasher) boolean(b bool) {
	if b {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w *hasher) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *hasher) key(k cacheKey) { w.h.Write(k[:]) }

func (w *hasher) sum() cacheKey {
	var k cacheKey
	w.h.Sum(k[:0])
	return k
}

// hashInst writes one instruction's full canonical content: operation,
// operands, immediates, prefix/length encoding facts, and the address —
// everything the decoder, the placement rules, and the dataflow engine
// can observe.
func hashInst(w *hasher, in *isa.Inst) {
	w.u64(uint64(in.Op))
	w.u64(uint64(in.Dst))
	w.u64(uint64(in.Src))
	w.i64(in.Imm)
	w.u64(uint64(in.Cond))
	w.boolean(in.HasImm)
	w.boolean(in.Imm64)
	w.boolean(in.LCP)
	w.u64(in.Addr)
	w.u64(uint64(in.Len))
	w.u64(uint64(in.UopCount))
}

// configFingerprint hashes every Config field that can influence an
// analysis result. The checker selection participates only in report
// keys (withCheckers): summaries are checker-independent, so a server
// answering differently-scoped requests still shares one summary pool.
func configFingerprint(cfg Config, withCheckers bool) cacheKey {
	w := newHasher("deaduops-config-v1")
	u := cfg.UopCache
	w.u64(uint64(u.Sets))
	w.u64(uint64(u.Ways))
	w.u64(uint64(u.SlotsPerLine))
	w.u64(uint64(u.MaxLinesPerRegion))
	w.u64(uint64(u.IndexLoBit))
	w.u64(uint64(u.MaxBranchesPerLine))
	w.u64(uint64(u.HotnessMax))
	w.u64(uint64(u.SMT))
	w.boolean(u.PrivilegePartition)
	w.u64(uint64(u.SwitchPenalty))
	w.u64(uint64(u.StreamWidth))
	w.boolean(u.Disabled)
	d := cfg.Decode
	w.u64(uint64(d.SimpleDecoders))
	w.u64(uint64(d.ComplexUopMax))
	w.u64(uint64(d.DecodeWidth))
	w.u64(uint64(d.MSROMWidth))
	w.u64(uint64(d.LCPPenalty))
	w.u64(uint64(d.PredecodeWindow))
	w.u64(uint64(d.PredecodeWidth))
	w.boolean(d.MacroFusion)
	w.u64(uint64(d.JccAlignPenalty))
	w.u64(uint64(cfg.PathBudget))
	w.u64(uint64(cfg.DrainWidth))
	w.u64(uint64(cfg.DrainLag))
	w.u64(uint64(cfg.RunOverhead))
	w.u64(uint64(cfg.GadgetWindow))
	w.u64(uint64(cfg.ProbeIters))
	w.u64(uint64(cfg.PrimeTraversals))
	w.u64(uint64(cfg.VictimRuns))
	if withCheckers {
		if cfg.Checkers == nil {
			w.str("checkers:all")
		} else {
			w.str("checkers:subset")
			for _, c := range cfg.Checkers {
				w.str(c.Name())
			}
		}
	}
	return w.sum()
}

// specFingerprint hashes the secret declaration. Declaration order
// matters — it fixes the source-bit layout summary states are encoded
// in — so the lists hash as given, not sorted; only the EntryConsts
// map (unordered by nature) is canonicalized.
func specFingerprint(spec Spec) cacheKey {
	w := newHasher("deaduops-spec-v1")
	w.u64(uint64(len(spec.SecretRegs)))
	for _, r := range spec.SecretRegs {
		w.u64(uint64(r))
	}
	w.u64(uint64(len(spec.SecretRanges)))
	for _, mr := range spec.SecretRanges {
		w.u64(mr.Start)
		w.u64(mr.End)
	}
	regs := make([]int, 0, len(spec.EntryConsts))
	for r := range spec.EntryConsts {
		regs = append(regs, int(r))
	}
	sort.Ints(regs)
	w.u64(uint64(len(regs)))
	for _, r := range regs {
		w.u64(uint64(r))
		w.i64(spec.EntryConsts[isa.Reg(r)])
	}
	return w.sum()
}

// reportKey addresses a whole-program lint result: full instruction
// content, label bindings (labels reach findings through LabelAt),
// entry point, secrets, and the complete config including checker
// selection.
func reportKey(prog *asm.Program, spec Spec, cfg Config) cacheKey {
	w := newHasher("deaduops-report-v1")
	w.u64(prog.Entry)
	w.u64(uint64(len(prog.Insts)))
	for _, in := range prog.Insts {
		hashInst(w, in)
	}
	for _, l := range prog.Labels() {
		w.str(l.Name)
		w.u64(l.Addr)
	}
	w.key(specFingerprint(spec))
	w.key(configFingerprint(cfg, true))
	return w.sum()
}

// funcBodyHash canonicalizes one function's own content: every member
// block's instructions plus, per indirect transfer, the resolved target
// set the value-set analysis proved (or its absence — the havoc
// contract). Including the resolved sets is what makes a dispatch-table
// edit reach this function's key even when its instruction bytes are
// untouched: resolution re-runs on the edited program, the site's
// proven set changes, and the key changes with it.
func (a *Analysis) funcBodyHash(f *Func) cacheKey {
	w := newHasher("deaduops-func-v1")
	w.u64(f.Entry)
	w.boolean(f.hasIndirectJump)
	w.u64(uint64(len(f.Blocks)))
	for _, bi := range f.Blocks {
		blk := a.CFG.Blocks[bi]
		w.u64(uint64(len(blk.Insts)))
		for _, in := range blk.Insts {
			hashInst(w, in)
		}
		switch last := blk.Last(); last.Op {
		case isa.CALLI, isa.JMPI:
			ts := a.resolved[last.Addr]
			if len(ts) == 0 {
				w.str("indirect:havoc")
				continue
			}
			sorted := append([]uint64(nil), ts...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			w.str("indirect:resolved")
			w.u64(uint64(len(sorted)))
			for _, t := range sorted {
				w.u64(t)
			}
		}
	}
	return w.sum()
}

// sccKeys derives the member summary keys of one call-graph SCC.
// funcKey carries the already-computed keys of every earlier (callee)
// component — callSCCs emits components in reverse topological order,
// so by the time a component is keyed all its callees outside the
// component are. Call targets inside the component hash as positional
// self-references (their content is already part of the combined
// hash); targets outside the function partition hash as the havoc
// marker they summarize to.
func (a *Analysis) sccKeys(scc []int, specFP, cfgFP cacheKey, funcKey []cacheKey) []cacheKey {
	pos := make(map[int]int, len(scc))
	for i, fi := range scc {
		pos[fi] = i
	}
	w := newHasher("deaduops-scc-v1")
	w.key(specFP)
	w.key(cfgFP)
	w.u64(uint64(len(scc)))
	for _, fi := range scc {
		f := a.funcs[fi]
		w.key(a.funcBodyHash(f))
		for _, cs := range f.Calls {
			tgts := cs.callees()
			if tgts == nil {
				w.str("call:havoc")
				continue
			}
			w.str("call:known")
			w.u64(uint64(len(tgts)))
			for _, t := range tgts {
				j, ok := a.funcIndex[t]
				if !ok {
					w.str("extern")
					w.u64(t)
					continue
				}
				if p, in := pos[j]; in {
					w.str("self")
					w.u64(uint64(p))
				} else {
					w.key(funcKey[j])
				}
			}
		}
	}
	combined := w.sum()
	keys := make([]cacheKey, len(scc))
	for i, fi := range scc {
		m := newHasher("deaduops-member-v1")
		m.key(combined)
		m.u64(uint64(i))
		keys[i] = m.sum()
		funcKey[fi] = keys[i]
	}
	return keys
}

// LintCached is Lint backed by an incremental cache: a report-level hit
// returns the stored result without any analysis; a miss analyzes with
// per-function summary reuse and stores the new report. The second
// result reports whether the report layer hit. A nil cache degrades to
// plain Lint. Cached reports are shared structure — callers must treat
// findings as read-only (Filter and JSON encoding both do).
func LintCached(prog *asm.Program, spec Spec, cfg Config, c *Cache) (*Report, bool) {
	if c == nil {
		return Lint(prog, spec, cfg), false
	}
	key := reportKey(prog, spec, cfg)
	if r, ok := c.getReport(key); ok {
		cp := *r
		return &cp, true
	}
	a := analyzeWith(prog, spec, cfg, c)
	r := lintAnalysis(a, cfg)
	c.putReport(key, r)
	cp := *r
	return &cp, false
}

// AnalyzeCached is Analyze with per-function summary reuse from c (nil
// degrades to Analyze).
func AnalyzeCached(prog *asm.Program, spec Spec, cfg Config, c *Cache) *Analysis {
	return analyzeWith(prog, spec, cfg, c)
}
