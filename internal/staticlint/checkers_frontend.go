package staticlint

// Front-end delivery-channel checkers: leakage that needs no footprint
// divergence at all. Even when a secret branch's two successor paths
// occupy identical micro-op cache sets, the *shape* of legacy delivery
// can differ — conditional jumps straddling a predecode-window
// boundary stall the predecoder (the Frontal-attack effect), and paths
// crossing different numbers of DSB↔MITE switch points pay different
// transition-bubble totals (the Leaky-Frontends channel). Both
// checkers price the asymmetry through the same decode.CostTable the
// simulator charges, so every headline number is differentially
// validated by internal/staticlint/difftest.

import (
	"fmt"

	"deaduops/internal/isa"
)

// JumpAlignmentChecker flags secret-dependent conditional branches
// whose two successor paths place conditional jumps at divergent
// predecode-window alignments: one direction's jumps straddle 16-byte
// boundaries (paying decode.Config.JccAlignPenalty per jump under
// legacy decode) while the other's do not. The stall is MITE-only, so
// the directions' DSB refill penalties differ by the alignment delta —
// a timing channel that leaks the branch direction even when both
// paths are µop-identical and footprint-identical.
type JumpAlignmentChecker struct{}

// Name implements Checker.
func (JumpAlignmentChecker) Name() string { return "secret-dependent-jump-alignment" }

// Check implements Checker.
func (c JumpAlignmentChecker) Check(a *Analysis) []Finding {
	var out []Finding
	if a.Cfg.Decode.JccAlignPenalty <= 0 {
		return out // the modelled frontend has no alignment effect
	}
	for _, sb := range a.secretBranches() {
		if sb.inst.Op != isa.JCC {
			continue
		}
		takenPath := a.walkPath(uint64(sb.inst.Imm), a.Cfg.PathBudget)
		fallPath := a.walkPath(sb.inst.End(), a.Cfg.PathBudget)
		takenCost := a.CostRanges(takenPath.Ranges)
		fallCost := a.CostRanges(fallPath.Ranges)
		delta := takenCost.AlignStallCycles - fallCost.AlignStallCycles
		if delta == 0 {
			continue
		}
		msg := fmt.Sprintf(
			"secret-dependent branch %v: successor paths place conditional jumps at divergent predecode-window alignments (taken straddles %d boundary(ies), fallthrough %d); predicted align delta %+dc of MITE-only stall",
			sb.inst, takenCost.AlignJccs, fallCost.AlignJccs, delta)
		out = append(out, Finding{
			Checker:          c.Name(),
			Severity:         SevWarning,
			Conf:             sb.conf,
			Addr:             sb.inst.Addr,
			Message:          msg,
			Sources:          a.sourceStrings(sb.taint),
			CallChain:        a.callChainTo(sb.inst.Addr),
			TakenCost:        &takenCost,
			FallCost:         &fallCost,
			ProbeDeltaCycles: takenCost.RefillDelta - fallCost.RefillDelta,
			AlignDeltaCycles: delta,
		})
	}
	return out
}

// SwitchPointChecker flags secret-dependent conditional branches whose
// two successor paths cross different numbers of DSB→MITE switch
// points on a warm traversal — one direction re-enters legacy decode
// (uncacheable regions, MSROM streams) more often than the other.
// Every switch costs a fetch bubble of 1 + SwitchPenalty cycles that
// no amount of cache warming removes, so the directions stay
// distinguishable even against a receiver that cannot evict the
// victim: the transition count itself is the transmitter.
type SwitchPointChecker struct{}

// Name implements Checker.
func (SwitchPointChecker) Name() string { return "dsb-mite-switch" }

// Check implements Checker.
func (c SwitchPointChecker) Check(a *Analysis) []Finding {
	var out []Finding
	// With the DSB disabled the machine never leaves legacy decode —
	// there are no DSB→MITE transitions for the counts to diverge on,
	// so the channel this checker prices does not exist.
	if a.Cfg.UopCache.Disabled {
		return out
	}
	bubble := 1 + a.Cfg.Costs().SwitchPenalty()
	for _, sb := range a.secretBranches() {
		if sb.inst.Op != isa.JCC {
			continue
		}
		takenPath := a.walkPath(uint64(sb.inst.Imm), a.Cfg.PathBudget)
		fallPath := a.walkPath(sb.inst.End(), a.Cfg.PathBudget)
		takenCost := a.CostRanges(takenPath.Ranges)
		fallCost := a.CostRanges(fallPath.Ranges)
		diff := takenCost.WarmSwitchPoints - fallCost.WarmSwitchPoints
		if diff == 0 {
			continue
		}
		delta := diff * bubble
		msg := fmt.Sprintf(
			"secret-dependent branch %v: successor paths cross divergent DSB→MITE switch-point counts on a warm traversal (taken %d, fallthrough %d); predicted switch delta %+dc at %dc per switch bubble",
			sb.inst, takenCost.WarmSwitchPoints, fallCost.WarmSwitchPoints, delta, bubble)
		out = append(out, Finding{
			Checker:           c.Name(),
			Severity:          SevWarning,
			Conf:              sb.conf,
			Addr:              sb.inst.Addr,
			Message:           msg,
			Sources:           a.sourceStrings(sb.taint),
			CallChain:         a.callChainTo(sb.inst.Addr),
			TakenCost:         &takenCost,
			FallCost:          &fallCost,
			ProbeDeltaCycles:  takenCost.RefillDelta - fallCost.RefillDelta,
			SwitchDeltaCycles: delta,
		})
	}
	return out
}
