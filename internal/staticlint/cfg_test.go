package staticlint

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

func TestCFGDiamond(t *testing.T) {
	// A classic if/else diamond: entry → {then, else} → join.
	b := asm.New(0x1000)
	b.Cmpi(isa.R1, 0)
	b.Jcc(isa.EQ, "else")
	b.Movi(isa.R2, 1)
	b.Jmp("join")
	b.Label("else")
	b.Movi(isa.R2, 2)
	b.Label("join")
	b.Halt()
	g := BuildCFG(b.MustBuild())

	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(g.Blocks))
	}
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %v, want taken+fallthrough", entry.Succs)
	}
	kinds := map[EdgeKind]bool{}
	for _, e := range entry.Succs {
		kinds[e.Kind] = true
		if e.To < 0 {
			t.Fatalf("unresolved direct edge: %v", e)
		}
	}
	if !kinds[EdgeTaken] || !kinds[EdgeFallThrough] {
		t.Errorf("entry edge kinds = %v", entry.Succs)
	}
	join := g.BlockAt(b.MustBuild().MustLabel("join"))
	if join == nil {
		t.Fatal("no block at join")
	}
	if len(join.Preds) != 2 {
		t.Errorf("join preds = %v, want 2", join.Preds)
	}
	if len(join.Succs) != 0 {
		t.Errorf("HALT block has successors: %v", join.Succs)
	}
}

func TestCFGCallEdges(t *testing.T) {
	b := asm.New(0x1000)
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.Ret()
	g := BuildCFG(b.MustBuild())

	entry := g.Blocks[0]
	var haveCall, haveFall bool
	for _, e := range entry.Succs {
		switch e.Kind {
		case EdgeCall:
			haveCall = true
			if g.Blocks[e.To].Last().Op != isa.RET {
				t.Errorf("call edge lands on %v", g.Blocks[e.To].Last())
			}
		case EdgeFallThrough:
			haveFall = true
		}
	}
	if !haveCall || !haveFall {
		t.Errorf("call block edges = %v, want call+fallthrough", entry.Succs)
	}
}

func TestCFGIndirectAndGaps(t *testing.T) {
	b := asm.New(0x1000)
	b.Jmpi(isa.R1)
	b.Org(0x1100) // unmapped gap: no fallthrough across it
	b.Label("island")
	b.Halt()
	g := BuildCFG(b.MustBuild())

	if len(g.Blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(g.Blocks))
	}
	first := g.Blocks[0]
	if len(first.Succs) != 1 || first.Succs[0].Kind != EdgeIndirect || first.Succs[0].To != -1 {
		t.Errorf("jmpi succs = %v, want one unresolved indirect", first.Succs)
	}
	island := g.Blocks[1]
	if len(island.Preds) != 0 {
		t.Errorf("island has preds %v; gap must break fallthrough", island.Preds)
	}
	entries := g.Entries()
	if len(entries) != 2 {
		t.Errorf("entries = %v, want both blocks", entries)
	}
}

func TestCFGBlockOf(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 1)
	b.Movi(isa.R2, 2)
	b.Jcc(isa.EQ, "end")
	b.Label("end")
	b.Halt()
	p := b.MustBuild()
	g := BuildCFG(p)
	for _, in := range p.Insts {
		blk := g.BlockOf(in.Addr)
		if blk == nil {
			t.Fatalf("no block for %#x", in.Addr)
		}
		found := false
		for _, bi := range blk.Insts {
			if bi.Addr == in.Addr {
				found = true
			}
		}
		if !found {
			t.Errorf("block %d does not contain %#x", blk.Index, in.Addr)
		}
	}
}
