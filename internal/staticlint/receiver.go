package staticlint

// The receiver model: translates a dsb-footprint-divergence finding's
// per-direction footprints into the numbers the paper's attacker
// actually sees. A prime+probe receiver never observes a victim's
// refill delta directly — it times its OWN probe chain (§IV: a
// tiger-shaped chain over the conflicting sets) and classifies each
// timing against a calibrated hit/miss threshold. This file simulates
// that receiver symbolically: it builds the concrete probe routine a
// receiver would run over the finding's divergent sets, prices one
// probe measurement (ProbeIters loop traversals) with the shared cost
// table in both the hit state (every receiver line resident, the state
// the priming traversals establish) and the per-direction miss states
// (the victim's predicted footprint has displaced receiver lines), and
// derives the decision threshold and separation margin the
// attack.Calibrate protocol would compute from those timings. The
// predictions are validated end to end — against the actual
// internal/attack prime/probe loop running on the cycle-level
// simulator — by internal/staticlint/difftest.

import (
	"fmt"
	"math"

	"deaduops/internal/codegen"
	"deaduops/internal/decode"
	"deaduops/internal/uopcache"
)

// probeSeg is one replayable fetch segment of the modelled protocol:
// the fetch address the frontend looks up, the trace a MITE refill
// would install, and the refill delta a timed miss of the segment adds.
type probeSeg struct {
	addr  uint64
	trace *uopcache.Trace
	delta int
}

const (
	// ReceiverBase is the address the modelled receiver routine is laid
	// out at. The concrete value only matters to the validation harness
	// (which loads the receiver next to the victim, so the two must not
	// overlap); the predicted cycles are address-independent because
	// the probe chain's set placement is explicit.
	ReceiverBase = 0x40000

	// DefaultProbeIters mirrors the covert channel's operating point
	// (channel.DefaultConfig, the paper's 5 samples): few traversals,
	// so a probed set lost to the victim cannot be reclaimed
	// mid-measurement — each evicted line stays evicted for every
	// probe traversal, which is what makes the miss cost scale with
	// ProbeIters × evicted lines.
	DefaultProbeIters = 5

	// DefaultPrimeTraversals is the priming count the model's protocol
	// assumes. Reclaiming one victim line from a full probed set costs
	// up to Ways × HotnessMax failed-fill decrements spread round-robin
	// across the set (the worst case is a single hot victim line:
	// ~8 × 8 = 64 traversals on the Skylake model); 160 covers it with
	// margin. The covert channel gets away with 20 because its sender
	// re-evicts wholesale every bit; a victim's footprint must be worn
	// down line by line.
	DefaultPrimeTraversals = 160

	// DefaultVictimRuns is how many times the modelled protocol lets
	// the victim execute between prime and probe. The dual of the
	// priming wear: the victim's own lines must out-access the primed
	// receiver before they install (a single-line victim needs ~65 runs
	// against a full 8-way hot set); 100 installs every footprint the
	// placement rules admit, with margin.
	DefaultVictimRuns = 100

	// ProbeSeparationFloor is the minimum hit/miss ratio the modelled
	// receiver counts as a decodable signal. It mirrors
	// attack.SeparationFloor (pinned to it by a contract test in
	// internal/staticlint/difftest); the constant is duplicated rather
	// than imported so the static analyzer does not depend on the
	// attack runtime.
	ProbeSeparationFloor = 1.3

	// probeRunOverhead is the fixed per-measurement cost the timed
	// probe run pays beyond its fetch stream: the pipeline-fill depth
	// of a fetch-bound run (the probe chain delivers 3 µops/cycle,
	// under the 4-wide drain, so the drain-bound DrainLag path never
	// engages) plus the loop-exit mispredict flush of the final
	// traversal's backward branch. Calibrated once against
	// internal/cpu and continuously re-validated by the differential
	// harness, like staticlint.DefaultDrainLag.
	probeRunOverhead = 12
)

// ReceiverSpec returns the chain spec of the modelled probe receiver
// over the given sets: tiger-shaped regions (codegen.ProbeChain)
// occupying every way of each probed set, so a victim line installed
// in a probed set must displace a receiver line and every displaced
// line is visible to the probe. The validation harness builds its
// measured receiver from this same spec, so the routine the model
// prices and the routine the simulator times cannot drift apart.
func ReceiverSpec(cfg Config, sets []int) *codegen.ChainSpec {
	spec := codegen.ProbeChain(ReceiverBase, sets, cfg.UopCache.Ways, "probe")
	// The probe chain must honour the profile's set count: on a 64-set
	// (Zen 2-like) geometry the classic 1 KiB way stride would alias
	// way k of set s into set s+32 instead of conflicting.
	spec.NumSets = cfg.UopCache.Sets
	return spec
}

// ProbeBin is one predicted probe-time distribution of the receiver —
// the hit state or one secret direction's miss state. The model is
// deterministic, so each "distribution" is a point mass at Cycles; the
// calibration-protocol statistics derived from it (threshold cut,
// separation) are what an attacker's histogram of repeated rounds
// would converge to.
type ProbeBin struct {
	// EvictedLines is the number of receiver lines this direction's
	// predicted footprint installs over across the probed sets (capped
	// at the receiver's ways per set) — the static intersection, before
	// replacement dynamics.
	EvictedLines int `json:"evicted_lines"`
	// ProbeMisses is the number of fetch segments the timed probe
	// missed in the protocol replay. Under the hotness policy this
	// exceeds EvictedLines: the probe's own failed refills of a missing
	// region can displace worn-out neighbours mid-traversal.
	ProbeMisses int `json:"probe_misses"`
	// Cycles is the predicted probe measurement: total cycles of
	// ProbeIters traversals, the same unit attack.Threshold records.
	Cycles int `json:"predicted_cycles"`
	// PerTraversal is Cycles normalized by the probe traversal count
	// (attack.Threshold.PerTraversal's unit).
	PerTraversal float64 `json:"per_traversal_cycles"`
	// Cut is the decision threshold attack.Calibrate would derive for
	// this direction against the hit state: the hit/miss midpoint.
	Cut float64 `json:"threshold_cut"`
	// Separation is the predicted MissMean/HitMean ratio the Calibrate
	// protocol checks against its floor.
	Separation float64 `json:"separation_vs_hit"`
}

// ProbeHistogram is the receiver model's output for one divergence
// finding: the predicted prime/probe timing distributions an attacker
// measuring the divergent sets would collect, per secret direction.
type ProbeHistogram struct {
	// ProbeIters, PrimeTraversals and VictimRuns state the modelled
	// protocol (the attack.Calibrate knobs the predictions assume).
	ProbeIters      int `json:"probe_iters"`
	PrimeTraversals int `json:"prime_traversals"`
	VictimRuns      int `json:"victim_runs"`
	// ProbedSets is the receiver's set list — the finding's divergent
	// sets. ReceiverWays × len(ProbedSets) = ReceiverRegions regions
	// are traversed per probe iteration.
	ProbedSets      []int `json:"probed_sets"`
	ReceiverWays    int   `json:"receiver_ways"`
	ReceiverRegions int   `json:"receiver_regions"`
	// RegionRefillDelta is the per-traversal cost of one evicted
	// receiver region (cold minus warm delivery of one probe region).
	RegionRefillDelta int `json:"region_refill_delta_cycles"`
	// HitCycles is the predicted probe measurement with every receiver
	// line resident — the state priming establishes.
	HitCycles       int     `json:"predicted_hit_cycles"`
	HitPerTraversal float64 `json:"hit_per_traversal_cycles"`
	// Taken and Fall are the predicted miss distributions after the
	// victim executed that secret direction.
	Taken ProbeBin `json:"taken"`
	Fall  ProbeBin `json:"fallthrough"`
	// DirectionCut is the threshold separating the two directions'
	// probe times; SeparationMargin their slow/fast ratio — the signal
	// an attacker decoding the SECRET (rather than mere execution) has
	// to work with, checked against SeparationFloor exactly as
	// attack.Calibrate checks its hit/miss ratio.
	DirectionCut     float64 `json:"direction_cut"`
	SeparationMargin float64 `json:"separation_margin"`
	SeparationFloor  float64 `json:"separation_floor"`
	// Distinguishable reports whether the directions separate by at
	// least the floor. Note a total-time receiver can be blind to a
	// real divergence: if both directions evict the same number of
	// lines (in different sets), the two miss totals coincide even
	// though the footprints differ.
	Distinguishable bool `json:"distinguishable"`
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }

// ProbeModel prices the attacker's prime/probe loop over a divergence
// finding's footprints and returns the predicted probe histogram. div
// lists the probed sets; taken and fall are the two directions'
// footprints (uopcache.FootprintResult.Sets maps set → occupied ways).
//
// Model scope: the footprints cover the paths PAST the secret branch.
// When the shared prefix before the branch also occupies probed sets,
// both directions' measured miss times rise by the same amount —
// shifting the per-direction separations but not the direction margin.
// The validation harness's victims keep their shared prefixes clear of
// the divergent sets, so there the predictions are exact.
func ProbeModel(cfg Config, taken, fall uopcache.FootprintResult, div []int) (*ProbeHistogram, error) {
	if cfg.ProbeIters <= 0 || cfg.PrimeTraversals <= 0 || cfg.VictimRuns <= 0 || len(div) == 0 {
		return nil, fmt.Errorf("staticlint: receiver model disabled (probeIters %d, primeTraversals %d, victimRuns %d, %d probed sets)",
			cfg.ProbeIters, cfg.PrimeTraversals, cfg.VictimRuns, len(div))
	}
	spec := ReceiverSpec(cfg, div)
	prog, err := spec.LoopProgram(spec.TailAddr())
	if err != nil {
		return nil, fmt.Errorf("staticlint: receiver routine: %w", err)
	}
	ct := cfg.Costs()
	iters := cfg.ProbeIters

	// One probe traversal's fetch ranges, in traversal order: every
	// region of the chain, then the loop tail (SUB/CMP/JCC back to the
	// chain head).
	var trav []uopcache.Range
	for _, set := range spec.Sets {
		for w := 0; w < spec.Ways; w++ {
			addr := spec.RegionAddr(set, w)
			trav = append(trav, uopcache.Range{Start: addr, End: addr + uint64(spec.BodyBytes())})
		}
	}
	tail := prog.MustLabel("tail")
	subi := prog.At(tail)
	cmpi := prog.At(subi.End())
	jcc := prog.At(cmpi.End())
	trav = append(trav, uopcache.Range{Start: tail, End: jcc.End()})

	// Turn the receiver's fetch ranges into replayable segments: the
	// fetch address, the exact trace the frontend would build on a MITE
	// refill, and the cold-minus-warm cost a DSB miss of the segment
	// adds to a timed run. SegmentRanges dedupes (region, entry) traces,
	// so each per-traversal segment is priced once and multiplied by
	// the iteration count rather than fed repeated ranges.
	plan := decode.Macros(cfg.Decode)
	build := func(ranges []uopcache.Range) (segs []probeSeg, warm, uops int, err error) {
		for _, sg := range uopcache.SegmentRanges(cfg.UopCache, prog, ranges) {
			rc := ct.Region(sg.Region, sg.Entry, sg.Insts)
			if !rc.Cacheable {
				return nil, 0, 0, fmt.Errorf("staticlint: probe region %#x uncacheable (%s)", sg.Region, rc.Reason)
			}
			warm += rc.WarmCycles
			uops += rc.Uops
			segs = append(segs, probeSeg{
				addr:  sg.Region + uint64(sg.Entry),
				trace: uopcache.BuildTrace(cfg.UopCache, sg.Region, sg.Entry, plan(sg.Insts)),
				delta: rc.RefillDelta(),
			})
		}
		return segs, warm, uops, nil
	}
	travSegs, travWarm, travUops, err := build(trav)
	if err != nil {
		return nil, err
	}
	regionDelta := 0
	for _, s := range travSegs {
		if s.trace.Region == spec.RegionAddr(spec.Sets[0], 0) {
			regionDelta = s.delta
		}
	}

	// The run's bookends: the entry header (one jump into the chain)
	// and, after the final not-taken loop branch, the HALT.
	entry := prog.MustLabel("entry")
	header := uopcache.Range{Start: entry, End: prog.At(entry).End()}
	halt := uopcache.Range{Start: jcc.End(), End: prog.At(jcc.End()).End()}
	headSegs, headWarm, headUops, err := build([]uopcache.Range{header})
	if err != nil {
		return nil, err
	}
	haltSegs, haltWarm, haltUops, err := build([]uopcache.Range{halt})
	if err != nil {
		return nil, err
	}
	bookWarm := headWarm + haltWarm
	bookUops := headUops + haltUops

	// Hit state: everything resident. The probe chain streams 3 µops
	// per region per cycle — under the backend's drain width — so the
	// run is fetch-bound and pays the fixed probeRunOverhead instead of
	// the drain path's DrainBound lag.
	stream := bookWarm + iters*travWarm
	uops := bookUops + iters*travUops
	hit := stream + probeRunOverhead
	if b := ct.DrainBound(uops) + probeRunOverhead; b > hit {
		hit = b
	}

	h := &ProbeHistogram{
		ProbeIters:        iters,
		PrimeTraversals:   cfg.PrimeTraversals,
		VictimRuns:        cfg.VictimRuns,
		ProbedSets:        append([]int(nil), div...),
		ReceiverWays:      spec.Ways,
		ReceiverRegions:   spec.Regions(),
		RegionRefillDelta: regionDelta,
		HitCycles:         hit,
		HitPerTraversal:   round2(float64(hit) / float64(iters)),
		SeparationFloor:   ProbeSeparationFloor,
	}

	// Miss states. A static eviction count is not enough here: the
	// hotness replacement policy makes the protocol path-dependent. The
	// victim's set-full fill failures wear every surviving receiver
	// line in the set to hotness zero before its own line installs, so
	// the probe's own failed refills then cascade — a refill of the one
	// missing region can displace a not-yet-reaccessed neighbour, whose
	// region misses later in the same traversal, and so on. The model
	// therefore replays the full measurement protocol (prime → hit
	// probe → prime → victim runs → timed probe, the attack.Calibrate
	// round order) against the real replacement state machine in
	// internal/uopcache, and prices each observed probe miss with the
	// segment's refill delta from the shared cost table.
	runRecv := func(cache *uopcache.Cache, n int) (misses, extra int) {
		touch := func(s probeSeg) {
			if _, ok := cache.Lookup(0, s.addr); ok {
				return
			}
			misses++
			extra += s.delta
			cache.Fill(0, s.trace)
		}
		for _, s := range headSegs {
			touch(s)
		}
		for i := 0; i < n; i++ {
			for _, s := range travSegs {
				touch(s)
			}
		}
		for _, s := range haltSegs {
			touch(s)
		}
		return misses, extra
	}
	bin := func(fp uopcache.FootprintResult) ProbeBin {
		// The victim's fetch stream over its predicted footprint: each
		// run touches every cacheable region once, in path order, with
		// the trace's real line count (the synthetic trace carries no
		// µops — only the line structure the replacement policy sees).
		var victim []probeSeg
		for _, rf := range fp.Regions {
			if !rf.Cacheable || rf.Ways <= 0 {
				continue
			}
			victim = append(victim, probeSeg{
				addr: rf.Region + uint64(rf.Entry),
				trace: &uopcache.Trace{
					Region:    rf.Region,
					Entry:     rf.Entry,
					Lines:     make([]uopcache.LineUops, rf.Ways),
					Cacheable: true,
				},
			})
		}
		cache := uopcache.New(cfg.UopCache)
		runRecv(cache, cfg.PrimeTraversals) // prime
		runRecv(cache, iters)               // hit probe
		runRecv(cache, cfg.PrimeTraversals) // prime
		for r := 0; r < cfg.VictimRuns; r++ {
			for _, s := range victim {
				if _, ok := cache.Lookup(0, s.addr); !ok {
					cache.Fill(0, s.trace)
				}
			}
		}
		misses, extra := runRecv(cache, iters) // timed probe
		evicted := 0
		for _, set := range div {
			lines := fp.Sets[set]
			if lines > spec.Ways {
				lines = spec.Ways
			}
			evicted += lines
		}
		miss := hit + extra
		return ProbeBin{
			EvictedLines: evicted,
			ProbeMisses:  misses,
			Cycles:       miss,
			PerTraversal: round2(float64(miss) / float64(iters)),
			Cut:          round2((float64(hit) + float64(miss)) / 2),
			Separation:   round2(float64(miss) / float64(hit)),
		}
	}
	h.Taken = bin(taken)
	h.Fall = bin(fall)

	slow, fast := h.Taken.Cycles, h.Fall.Cycles
	if slow < fast {
		slow, fast = fast, slow
	}
	h.DirectionCut = round2((float64(h.Taken.Cycles) + float64(h.Fall.Cycles)) / 2)
	h.SeparationMargin = round2(float64(slow) / float64(fast))
	h.Distinguishable = h.SeparationMargin >= ProbeSeparationFloor
	return h, nil
}
