package staticlint

import (
	"sort"

	"deaduops/internal/isa"
)

// The call-graph layer: partitions the CFG into functions, records the
// call sites between them, and orders them bottom-up (callees before
// callers) for summary computation. A "function" here is a purely
// syntactic notion — the blocks reachable from an entry through
// intraprocedural edges — which is exactly what the summary engine
// needs: the unit over which a CALL's effect can be precomputed once
// and applied at every site.

// callSite is one call instruction inside a function: a direct CALL
// with a resolved target, an indirect CALLI the resolution pass proved
// a complete target set for, or an indirect transfer (CALLI/SYSCALL)
// whose callee set is statically unknown.
type callSite struct {
	addr     uint64 // address of the call instruction
	block    int    // CFG block the call terminates
	target   uint64 // direct CALL target (meaningless when indirect)
	indirect bool
	// targets is the complete resolved target set of an indirect call
	// (resolve.go); nil means the callee set is unknown (havoc).
	targets []uint64
}

// callees returns the statically known callee entries of the site, or
// nil when the callee set is unknown and the havoc contract applies.
func (cs *callSite) callees() []uint64 {
	if !cs.indirect {
		return []uint64{cs.target}
	}
	return cs.targets
}

// Func is one call-graph node: an entry block plus every block
// reachable from it through non-call edges.
type Func struct {
	Entry      uint64
	EntryBlock int
	// Blocks lists the member CFG block indices, ascending.
	Blocks   []int
	blockSet map[int]bool
	// Calls are the call sites inside the function, in address order.
	Calls []callSite
	// hasIndirectJump: a JMPI inside the body means control can leave
	// the function invisibly; its summary degrades to havoc.
	hasIndirectJump bool
}

// callerRef records one direct call site targeting a function.
type callerRef struct {
	caller int    // calling function index
	site   uint64 // call instruction address
}

// buildFuncs partitions the CFG into functions. Entries are the blocks
// with no predecessors (program entries and unreferenced routines)
// plus every direct CALL target; bodies are collected by traversing
// fallthrough/taken edges only, so a callee reached solely by CALL is
// its own function even when it falls adjacent in the image.
func (a *Analysis) buildFuncs() {
	g := a.CFG
	if len(g.Blocks) == 0 {
		return
	}
	entrySet := map[int]bool{}
	for _, b := range g.Blocks {
		if len(b.Preds) == 0 {
			entrySet[b.Index] = true
		}
		switch last := b.Last(); last.Op {
		case isa.CALL:
			if t := g.BlockAt(uint64(last.Imm)); t != nil {
				entrySet[t.Index] = true
			}
		case isa.CALLI:
			// Every resolved indirect-call target is a function entry,
			// exactly like a direct CALL target (the completeness gate
			// guarantees the block exists).
			for _, t := range a.resolved[last.Addr] {
				entrySet[g.byStart[t]] = true
			}
		}
	}
	if len(entrySet) == 0 {
		// Fully cyclic program: treat block 0 as the lone entry, as the
		// dataflow seeding does.
		entrySet[0] = true
	}
	entries := make([]int, 0, len(entrySet))
	for e := range entrySet {
		entries = append(entries, e)
	}
	sort.Ints(entries)

	a.funcIndex = make(map[uint64]int, len(entries))
	for _, e := range entries {
		f := &Func{
			Entry:      g.Blocks[e].Start(),
			EntryBlock: e,
			blockSet:   map[int]bool{e: true},
		}
		work := []int{e}
		for len(work) > 0 {
			bi := work[len(work)-1]
			work = work[:len(work)-1]
			f.Blocks = append(f.Blocks, bi)
			blk := g.Blocks[bi]
			switch last := blk.Last(); last.Op {
			case isa.CALL:
				f.Calls = append(f.Calls, callSite{addr: last.Addr, block: bi, target: uint64(last.Imm)})
			case isa.CALLI:
				f.Calls = append(f.Calls, callSite{addr: last.Addr, block: bi, indirect: true, targets: a.resolved[last.Addr]})
			case isa.SYSCALL:
				f.Calls = append(f.Calls, callSite{addr: last.Addr, block: bi, indirect: true})
			case isa.JMPI:
				// A resolved JMPI has real EdgeTaken successors the body
				// traversal follows; only an unresolved one means control
				// can leave invisibly.
				if len(a.resolved[last.Addr]) == 0 {
					f.hasIndirectJump = true
				}
			}
			for _, e2 := range blk.Succs {
				if e2.To < 0 || e2.Kind == EdgeCall {
					continue
				}
				if !f.blockSet[e2.To] {
					f.blockSet[e2.To] = true
					work = append(work, e2.To)
				}
			}
		}
		sort.Ints(f.Blocks)
		sort.Slice(f.Calls, func(i, j int) bool { return f.Calls[i].addr < f.Calls[j].addr })
		a.funcIndex[f.Entry] = len(a.funcs)
		a.funcs = append(a.funcs, f)
	}

	// funcOf: the innermost owner per block. Blocks shared between
	// functions (tail blocks jumped into from several routines) are
	// attributed to the function whose entry is the closest preceding
	// address — the natural "this code belongs to" reading.
	a.funcOf = make([]int, len(g.Blocks))
	for i := range a.funcOf {
		a.funcOf[i] = -1
	}
	for fi, f := range a.funcs {
		for bi := range f.blockSet {
			cur := a.funcOf[bi]
			if cur < 0 || betterOwner(g.Blocks[bi].Start(), f, a.funcs[cur]) {
				a.funcOf[bi] = fi
			}
		}
	}

	// Reverse call edges, for call-chain reconstruction. Resolved
	// indirect sites contribute one edge per target, so call chains
	// trace through resolved indirect frames.
	a.callers = make([][]callerRef, len(a.funcs))
	for fi, f := range a.funcs {
		for _, cs := range f.Calls {
			for _, t := range cs.callees() {
				if j, ok := a.funcIndex[t]; ok {
					a.callers[j] = append(a.callers[j], callerRef{caller: fi, site: cs.addr})
				}
			}
		}
	}
	for _, refs := range a.callers {
		sort.Slice(refs, func(i, j int) bool {
			if refs[i].site != refs[j].site {
				return refs[i].site < refs[j].site
			}
			return refs[i].caller < refs[j].caller
		})
	}
}

// betterOwner reports whether cand is a better owner than cur for a
// block starting at bs: prefer entries at or below bs, then the
// closest one.
func betterOwner(bs uint64, cand, cur *Func) bool {
	cb, ub := cand.Entry <= bs, cur.Entry <= bs
	if cb != ub {
		return cb
	}
	if cb {
		return cand.Entry > cur.Entry
	}
	return cand.Entry < cur.Entry
}

// callSCCs computes the strongly connected components of the direct
// call graph (Tarjan), emitted in reverse topological order: every
// component is listed after all components it calls into, so summaries
// can be computed bottom-up.
func (a *Analysis) callSCCs() [][]int {
	n := len(a.funcs)
	adj := make([][]int, n)
	for fi, f := range a.funcs {
		for _, cs := range f.Calls {
			for _, t := range cs.callees() {
				if j, ok := a.funcIndex[t]; ok {
					adj[fi] = append(adj[fi], j)
				}
			}
		}
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	next := 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] < 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Ints(scc)
			sccs = append(sccs, scc)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strongconnect(v)
		}
	}
	return sccs
}

// selfCalls reports whether function fi calls itself through a direct
// CALL or a resolved indirect site.
func (a *Analysis) selfCalls(fi int) bool {
	f := a.funcs[fi]
	for _, cs := range f.Calls {
		for _, t := range cs.callees() {
			if t == f.Entry {
				return true
			}
		}
	}
	return false
}

// callChainTo reconstructs the shortest call chain from a caller-less
// root function down to the function owning addr, rendered root-first.
// It returns nil when the owner is itself a root (no interprocedural
// context) or unreachable through direct calls (e.g. pure recursion
// with no external caller).
//
// The chain is ONE representative path, not an enumeration: a site
// with several callers, or in a tail block shared between functions
// (funcOf picks a single owner), is reachable along other real paths
// the trace does not show. Findings are computed over the join of all
// calling contexts, so only the displayed route — never the verdict —
// depends on this choice.
func (a *Analysis) callChainTo(addr uint64) []CallFrame {
	b := a.CFG.BlockOf(addr)
	if b == nil || a.funcOf == nil || a.funcOf[b.Index] < 0 {
		return nil
	}
	target := a.funcOf[b.Index]
	// BFS upward through the reverse call edges; down[f] records the
	// call edge used to descend from f toward the target, so hitting a
	// root yields the chain directly.
	type downEdge struct {
		site   uint64
		callee int
	}
	down := map[int]downEdge{}
	visited := map[int]bool{target: true}
	queue := []int{target}
	root := -1
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		if len(a.callers[fi]) == 0 {
			root = fi
			break
		}
		for _, c := range a.callers[fi] {
			if visited[c.caller] {
				continue
			}
			visited[c.caller] = true
			down[c.caller] = downEdge{site: c.site, callee: fi}
			queue = append(queue, c.caller)
		}
	}
	if root < 0 || root == target {
		return nil
	}
	var chain []CallFrame
	for cur := root; cur != target; {
		d := down[cur]
		callee := a.funcs[d.callee].Entry
		chain = append(chain, CallFrame{
			CallSite:    d.site,
			Callee:      callee,
			CalleeLabel: a.Prog.LabelAt(callee),
		})
		cur = d.callee
	}
	return chain
}
