package staticlint

import (
	"sort"

	"deaduops/internal/isa"
)

// Function taint summaries: each function is analyzed once against a
// symbolic input state — placeholder taint sources standing for "the
// caller's value of register r / flags / unresolved-store channel" and
// a symbolic stack pointer — and the resulting exit state is a transfer
// function callers apply at every call site. Substituting the caller's
// actual taint for the placeholders yields the post-call state: taint
// the callee propagates survives, taint it kills (overwrites, zeroing
// idioms) dies, constants it produces propagate, and its stack traffic
// is rebased onto the caller's stack pointer. Summaries are computed
// bottom-up over the call graph's SCCs; recursion iterates to a
// fixpoint from an optimistic bottom, and anything the engine cannot
// see through — indirect calls, kernel crossings, indirect jumps out of
// a body, placeholder-table saturation — degrades to a conservative
// havoc summary that smears all live taint everywhere.

const (
	// summaryStackBase is the symbolic stack-pointer value a summary
	// computation starts from. It sits far outside any guest address a
	// victim program uses, so stack-relative cells tracked during the
	// summary cannot collide with real data addresses; at apply time,
	// cells inside the window around it are rebased onto the caller's
	// concrete stack pointer.
	summaryStackBase uint64 = 1 << 60
	// summaryStackWindow bounds the recognized stack-relative offsets.
	summaryStackWindow uint64 = 1 << 20

	// maxSummaryIters bounds the per-SCC fixpoint iteration; exceeding
	// it degrades the whole component to havoc.
	maxSummaryIters = 10
)

// inSummaryStack reports whether addr is a symbolic stack-relative
// address minted during summary computation.
func inSummaryStack(addr uint64) bool {
	return addr-(summaryStackBase-summaryStackWindow) < 2*summaryStackWindow
}

// calleeFreshCell reports whether an untracked symbolic-stack address
// is provably clean during summary computation. The callee enters with
// SP = summaryStackBase and the CALL-pushed return address (a clean
// code address) at [SP]; everything it allocates lives strictly below.
// So cells below summaryStackBase+8 that were never written are fresh
// stack or the return-address slot. Addresses at summaryStackBase+8
// and above belong to the CALLER's frame — they can hold caller data
// (spills, arguments), so an untracked read there must carry the
// paramMem placeholder, not read as clean.
func calleeFreshCell(addr uint64) bool {
	return inSummaryStack(addr) && addr < summaryStackBase+8
}

// summary is one function's transfer function.
type summary struct {
	// havoc: the callee's effect is unknown; the caller must assume any
	// live taint can reach any register, the flags, and memory.
	havoc bool
	// noReturn: no RET/SYSRET is reachable from the entry; the call
	// never resumes at its return site.
	noReturn bool
	// out is the exit state over the placeholder inputs (join of all
	// reachable return-block exit states).
	out *State
	// writes is the register-clobber mask (bit r = the callee or its
	// transitive callees may write register r), used to decide whether
	// a caller constant survives the call.
	writes uint32
}

var havocSummary = summary{havoc: true}

// allocParams mints the placeholder sources summaries are computed
// over. When the source table would saturate (shared bit 63 can no
// longer distinguish placeholders from real secrets), summaries are
// disabled and every call degrades to havoc — sound, just imprecise.
func (a *Analysis) allocParams() {
	if len(a.sources)+isa.NumRegs+2 > saturationBit {
		a.paramsOK = false
		return
	}
	for r := 0; r < isa.NumRegs; r++ {
		bit := a.addSource(Source{Kind: SrcParamReg, Reg: isa.Reg(r)})
		a.paramReg[r] = bit
		a.paramMask |= bit
	}
	a.paramFlags = a.addSource(Source{Kind: SrcParamFlags})
	a.paramMem = a.addSource(Source{Kind: SrcParamMem})
	a.paramMask |= a.paramFlags | a.paramMem
	a.paramsOK = true
}

// paramState is the symbolic input state a summary computation starts
// from: every register carries its own placeholder bit, flags and the
// unresolved-store channel theirs, and the stack pointer is pinned to
// the symbolic base so stack spills resolve.
func (a *Analysis) paramState() *State {
	st := &State{Mem: make(map[uint64]taintSet)}
	for r := 0; r < isa.NumRegs; r++ {
		st.Regs[r] = a.paramReg[r]
	}
	st.Flags = a.paramFlags
	st.UnknownStore = a.paramMem
	st.Const[15] = constVal{known: true, v: int64(summaryStackBase)}
	return st
}

// summaryOf returns the summary for a direct call target, degrading to
// havoc for targets outside the computed set (unmapped addresses,
// mid-function calls the partitioner did not see).
func (a *Analysis) summaryOf(target uint64) *summary {
	if s, ok := a.summaries[target]; ok {
		return s
	}
	return &havocSummary
}

// computeSummaries walks the call-graph SCCs bottom-up, computing each
// function's summary with all its callees' summaries available.
// Singleton components are summarized once; cyclic components iterate
// from an optimistic bottom (the empty transfer) until the members'
// summaries stop changing, degrading to havoc if maxSummaryIters does
// not suffice (the lattice is finite, so this indicates pathological
// growth, not nontermination).
func (a *Analysis) computeSummaries() {
	a.summaries = make(map[uint64]*summary, len(a.funcs))
	if !a.paramsOK {
		for _, f := range a.funcs {
			a.summaries[f.Entry] = &havocSummary
		}
		return
	}
	a.funcWrites = a.computeWrites()
	a.inSummary = true
	defer func() { a.inSummary = false }()
	// Content-addressed summary reuse (cache.go): funcKey accumulates
	// each function's key as its SCC is processed bottom-up, so caller
	// components can fold their callees' keys in. A cached component is
	// installed without re-running its fixpoint; a missing one computes
	// exactly as below and is stored for the next analysis.
	var (
		specFP, cfgFP cacheKey
		funcKey       []cacheKey
	)
	if a.cache != nil {
		specFP = specFingerprint(a.Spec)
		cfgFP = configFingerprint(a.Cfg, false)
		funcKey = make([]cacheKey, len(a.funcs))
	}
	for _, scc := range a.callSCCs() {
		var keys []cacheKey
		if a.cache != nil {
			keys = a.sccKeys(scc, specFP, cfgFP, funcKey)
			if sums, ok := a.cache.getSummaries(keys); ok {
				for i, fi := range scc {
					a.summaries[a.funcs[fi].Entry] = sums[i]
				}
				continue
			}
		}
		if len(scc) == 1 && !a.selfCalls(scc[0]) {
			f := a.funcs[scc[0]]
			a.summaries[f.Entry] = a.summarize(scc[0])
		} else {
			for _, fi := range scc {
				a.summaries[a.funcs[fi].Entry] = a.bottomSummary(fi)
			}
			converged := false
			for iter := 0; iter < maxSummaryIters && !converged; iter++ {
				converged = true
				for _, fi := range scc {
					f := a.funcs[fi]
					s := a.joinSummary(a.summaries[f.Entry], a.summarize(fi))
					if !summaryEqual(s, a.summaries[f.Entry]) {
						a.summaries[f.Entry] = s
						converged = false
					}
				}
			}
			if !converged {
				for _, fi := range scc {
					a.summaries[a.funcs[fi].Entry] = &havocSummary
				}
			}
		}
		if a.cache != nil {
			sums := make([]*summary, len(scc))
			for i, fi := range scc {
				sums[i] = a.summaries[a.funcs[fi].Entry]
			}
			a.cache.putSummaries(keys, sums)
		}
	}
}

// bottomSummary is the optimistic starting point for recursive summary
// iteration: the lattice bottom — no taint propagates at all, with a
// balanced stack. It must NOT be the identity transfer: each iteration
// joins the fresh estimate with the previous one, and join unions
// taint, so an identity floor would pin every input bit in the result
// forever and a kill inside the cycle could never take effect.
// Summarize's transfer is monotone in the summary map, so iterating up
// from empty converges to the least fixpoint.
func (a *Analysis) bottomSummary(fi int) *summary {
	st := &State{Mem: make(map[uint64]taintSet)}
	st.Const[15] = constVal{known: true, v: int64(summaryStackBase) + 8}
	return &summary{out: st, writes: a.funcWrites[fi]}
}

// summarize runs the dataflow over one function body from the symbolic
// input state and joins the exit states of all reachable return
// blocks. Callees are applied through their current summaries, so SCC
// iteration sees progressively better estimates.
func (a *Analysis) summarize(fi int) *summary {
	f := a.funcs[fi]
	if f.hasIndirectJump {
		// Control can leave the body through a JMPI the engine cannot
		// follow; nothing sound can be said about the exit state.
		return &havocSummary
	}
	in, reached, capped := a.flow(map[int]*State{f.EntryBlock: a.paramState()}, f.blockSet, false)
	if capped {
		// A truncated fixpoint under-approximates the transfer and would
		// be applied at every call site, amplifying the gap; honor the
		// degrade-to-havoc contract instead.
		return &havocSummary
	}
	var exit *State
	for _, bi := range f.Blocks {
		if !reached[bi] {
			continue
		}
		blk := a.CFG.Blocks[bi]
		if op := blk.Last().Op; op != isa.RET && op != isa.SYSRET {
			continue
		}
		st := in[bi].clone()
		for _, inst := range blk.Insts {
			a.step(st, inst, nil)
		}
		if exit == nil {
			exit = st
		} else {
			exit = a.join(exit, st)
		}
	}
	if exit == nil {
		return &summary{noReturn: true}
	}
	// Drop the callee's own dead stack frame: cells below the final
	// (balanced) stack pointer were pushed and popped inside the call —
	// return-address slots, spills of nested calls — and are not part of
	// the transfer function. Keeping them would also prevent recursive
	// SCCs from converging: every iteration would rebase the previous
	// level's frame one slot deeper, growing the cell set forever.
	if sp := exit.Const[15]; sp.known {
		for k := range exit.Mem {
			if inSummaryStack(k) && k < uint64(sp.v) {
				delete(exit.Mem, k)
			}
		}
	}
	return &summary{out: exit, writes: a.funcWrites[fi]}
}

// joinSummary merges two summary estimates (SCC iteration).
func (a *Analysis) joinSummary(x, y *summary) *summary {
	if x == nil {
		return y
	}
	if x.havoc || y.havoc {
		return &havocSummary
	}
	out := &summary{writes: x.writes | y.writes, noReturn: x.noReturn && y.noReturn}
	switch {
	case x.out == nil:
		out.out = y.out
	case y.out == nil:
		out.out = x.out
	default:
		out.out = a.join(x.out, y.out)
	}
	return out
}

// summaryEqual reports whether two summary estimates carry the same
// facts (SCC convergence test).
func summaryEqual(x, y *summary) bool {
	if x.havoc != y.havoc || x.noReturn != y.noReturn || x.writes != y.writes {
		return false
	}
	if (x.out == nil) != (y.out == nil) {
		return false
	}
	return x.out == nil || x.out.equal(y.out)
}

// computeWrites derives each function's syntactic register-clobber
// mask and closes it over the call graph: a caller inherits its
// callees' clobbers, indirect calls clobber everything.
func (a *Analysis) computeWrites() []uint32 {
	const allRegs = (1 << isa.NumRegs) - 1
	w := make([]uint32, len(a.funcs))
	for fi, f := range a.funcs {
		for _, bi := range f.Blocks {
			for _, in := range a.CFG.Blocks[bi].Insts {
				w[fi] |= directWrites(in)
			}
		}
		if f.hasIndirectJump {
			w[fi] = allRegs
		}
	}
	for changed := true; changed; {
		changed = false
		for fi, f := range a.funcs {
			for _, cs := range f.Calls {
				add := uint32(allRegs)
				if tgts := cs.callees(); tgts != nil {
					// Known callee set (direct, or resolved indirect): the
					// union of the members' clobbers — unless any member
					// escapes the function partition.
					add = 0
					for _, t := range tgts {
						if j, ok := a.funcIndex[t]; ok {
							add |= w[j]
						} else {
							add = allRegs
							break
						}
					}
				}
				if w[fi]|add != w[fi] {
					w[fi] |= add
					changed = true
				}
			}
		}
	}
	return w
}

// directWrites returns the register-clobber mask of one instruction.
func directWrites(in *isa.Inst) uint32 {
	switch in.Op {
	case isa.MOVI, isa.MOV, isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.LOAD, isa.LOADB, isa.RDTSC:
		return 1 << (in.Dst & 0x0F)
	case isa.CALL, isa.CALLI, isa.RET:
		return 1 << 15 // stack pointer
	}
	return 0
}

// flowStepCap bounds the worklist steps for an n-block flow. The
// lattice is finite (taint grows, constants only decay, tracked cells
// are bounded by resolved store sites), so the fixpoint terminates; the
// cap guards against transfer-function bugs. A var so tests can force
// exhaustion.
var flowStepCap = func(n int) int { return 1000*n + 1000 }

// flow is the shared worklist fixpoint: seeds are the initial in-states
// per block, restrict (when non-nil) confines propagation to one
// function's body, and followCalls selects whether EdgeCall successors
// are entered (the whole-program pass descends into callees to analyze
// their bodies in real calling contexts; summary computation replaces
// calls with their summaries instead). The third result reports whether
// the safety cap cut the fixpoint short — the in-states are then an
// under-approximation and callers must degrade, not trust them.
func (a *Analysis) flow(seeds map[int]*State, restrict map[int]bool, followCalls bool) ([]*State, []bool, bool) {
	n := len(a.CFG.Blocks)
	in := make([]*State, n)
	reached := make([]bool, n)
	var work []int
	for bi := range seeds {
		work = append(work, bi)
	}
	sort.Ints(work)
	for _, bi := range work {
		in[bi] = seeds[bi]
		reached[bi] = true
	}
	for steps, capSteps := 0, flowStepCap(n); len(work) > 0 && steps < capSteps; steps++ {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		blk := a.CFG.Blocks[b]
		out := in[b].clone()
		for _, inst := range blk.Insts {
			a.step(out, inst, nil)
		}
		for _, e := range blk.Succs {
			if e.To < 0 {
				continue
			}
			if restrict != nil && !restrict[e.To] {
				continue
			}
			s := a.succState(blk, e, out, followCalls)
			if s == nil {
				continue
			}
			if !reached[e.To] {
				in[e.To] = s.clone()
				reached[e.To] = true
				work = append(work, e.To)
				continue
			}
			j := a.join(in[e.To], s)
			if !j.equal(in[e.To]) {
				in[e.To] = j
				work = append(work, e.To)
			}
		}
	}
	return in, reached, len(work) > 0
}

// succState computes the state flowing along one CFG edge from a block
// whose instructions have already been stepped (out is the block exit
// state, call push included). The interesting case is the fall-through
// after a call: it receives the callee's summarized effect, not the
// raw pre-call state — a nil return prunes the edge (noReturn callee).
func (a *Analysis) succState(b *Block, e Edge, out *State, followCalls bool) *State {
	switch e.Kind {
	case EdgeCall:
		if !followCalls {
			return nil
		}
		return out
	case EdgeFallThrough:
		switch last := b.Last(); last.Op {
		case isa.CALL:
			sum := a.summaryOf(uint64(last.Imm))
			if sum.noReturn {
				return nil
			}
			return a.applySummary(out, sum)
		case isa.CALLI:
			// A resolved indirect call applies the join of every target's
			// summary at the return site — any callee in the complete set
			// may have run. An unresolved site keeps the havoc contract.
			if ts := a.resolved[last.Addr]; len(ts) > 0 {
				var post *State
				for _, t := range ts {
					sum := a.summaryOf(t)
					if sum.noReturn {
						continue
					}
					s := a.applySummary(out, sum)
					if post == nil {
						post = s
					} else {
						post = a.join(post, s)
					}
				}
				return post // nil when every target is noReturn
			}
			return a.havocState(out)
		case isa.SYSCALL:
			// Kernel crossing: the callee is never statically known.
			return a.havocState(out)
		}
	}
	return out
}

// applySummary composes a callee summary with the caller's state at
// the call (pre = the state after stepping the CALL, i.e. with the
// return-address push applied — exactly what the callee sees on
// entry). Placeholder bits substitute to the caller's actual taint;
// stack-relative cells and constants rebase onto the caller's stack
// pointer; registers the callee never writes keep their constants.
func (a *Analysis) applySummary(pre *State, sum *summary) *State {
	if sum.havoc {
		return a.havocState(pre)
	}
	out := sum.out
	// subst replaces placeholder bits with the caller's actuals.
	memIn := pre.UnknownStore | pre.memUnion()
	subst := func(set taintSet) taintSet {
		t := set &^ a.paramMask
		for r := 0; r < isa.NumRegs; r++ {
			if set&a.paramReg[r] != 0 {
				t |= pre.Regs[r]
			}
		}
		if set&a.paramFlags != 0 {
			t |= pre.Flags
		}
		if set&a.paramMem != 0 {
			t |= memIn
		}
		return t
	}
	// transConst rebases a callee constant: symbolic-stack values become
	// caller-stack values when the caller's SP is known; other constants
	// pass through.
	spc := pre.Const[15]
	transConst := func(c constVal) constVal {
		if !c.known {
			return constVal{}
		}
		if inSummaryStack(uint64(c.v)) {
			if !spc.known {
				return constVal{}
			}
			return constVal{known: true, v: spc.v + c.v - int64(summaryStackBase)}
		}
		return c
	}

	post := pre.clone()
	for r := 0; r < isa.NumRegs; r++ {
		post.Regs[r] = subst(out.Regs[r])
		if sum.writes&(1<<r) != 0 {
			post.Const[r] = transConst(out.Const[r])
		}
	}
	post.Flags = subst(out.Flags)
	// The callee's unresolved stores join the caller's channel; its
	// paramMem component is already the caller's own channel, so only
	// the genuinely new taint is added.
	post.UnknownStore = pre.UnknownStore | subst(out.UnknownStore&^a.paramMem)
	for k, v := range out.Mem {
		addr := k
		if inSummaryStack(k) {
			if !spc.known {
				// Stack cell at an unknown caller offset: weaken into the
				// unresolved-store channel.
				post.UnknownStore |= subst(v)
				continue
			}
			addr = uint64(spc.v + int64(k) - int64(summaryStackBase))
		}
		if _, ok := post.Mem[addr]; ok {
			post.Mem[addr] |= subst(v)
		} else {
			// Mirror join's one-sided-cell semantics: a cell first tracked
			// here still carries whatever secret range it overlays.
			post.Mem[addr] = subst(v) | a.rangeSeed(addr, 8)
		}
	}
	return post
}

// havocState is the sound fallback when a callee's effect is unknown:
// every live taint bit (registers, flags, tracked cells, the
// unresolved-store channel, plus the may-alias bits of every declared
// secret range — the callee could have loaded them) may now be
// anywhere, and no constant survives. A program with no live taint
// stays clean: havoc smears what exists, it invents nothing definite.
func (a *Analysis) havocState(pre *State) *State {
	all := pre.Flags | pre.UnknownStore | pre.memUnion()
	for r := 0; r < isa.NumRegs; r++ {
		all |= pre.Regs[r]
	}
	for i := range a.Spec.SecretRanges {
		all |= a.rangeMay[i]
	}
	post := &State{Mem: make(map[uint64]taintSet, len(pre.Mem))}
	for r := 0; r < isa.NumRegs; r++ {
		post.Regs[r] = all
	}
	post.Flags = all
	post.UnknownStore = pre.UnknownStore | all
	for k := range pre.Mem {
		post.Mem[k] = pre.Mem[k] | all
	}
	return post
}
