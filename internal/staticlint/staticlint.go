// Package staticlint is a control-flow-graph and taint-dataflow
// framework over assembled SX86 programs, with pluggable checkers for
// secret-dependent front-end leakage — the static counterpart of the
// cycle-level model this repository simulates.
//
// The paper's attack (§VI) works because victim code contains
// secret-dependent control flow whose two paths occupy different
// micro-op cache sets and ways; the §VI-A census found such "µop-cache
// gadgets" five times more common in torvalds/linux than classic
// Spectre-v1 double-loads. This package detects the enabling patterns
// before a program is ever simulated:
//
//   - secret-dependent branch: a conditional or indirect control
//     transfer whose predicate or target carries taint from a declared
//     secret (a constant-time violation);
//   - DSB footprint divergence: a secret-dependent branch whose two
//     successor paths occupy different micro-op cache sets/ways under
//     the placement rules of internal/uopcache — i.e. the divergence is
//     observable through the paper's prime+probe timing contract;
//   - MITE amplifiers: LCP-stall-bearing or microcoded (MSROM)
//     instructions on a secret-dependent path, which widen the
//     measurable cycle delta between hit and miss;
//   - the two §VI-A gadget classes (µop-cache gadget and Spectre-v1
//     double-load), reimplemented on the dataflow engine with
//     kill-on-overwrite and taint-through-memory precision the linear
//     scanner in internal/gadget lacked.
//
// The engine is a forward may-taint analysis over the CFG: a taint
// lattice seeded from declared secret registers and memory ranges,
// reaching definitions with kill on overwrite (including the
// xor/sub-self zeroing idioms), constant propagation for effective
// addresses, and taint through the memory model (strong updates at
// statically known addresses, a weak "unknown store" channel
// otherwise).
package staticlint

import (
	"fmt"
	"sort"
	"strings"

	"deaduops/internal/asm"
	"deaduops/internal/backend"
	"deaduops/internal/decode"
	"deaduops/internal/profile"
	"deaduops/internal/uopcache"
)

// Config parameterizes an analysis run.
type Config struct {
	// UopCache supplies the placement rules and set geometry for the
	// footprint divergence checker.
	UopCache uopcache.Config
	// Decode supplies the decode semantics (macro-fusion, µop
	// expansion) shared with the simulator.
	Decode decode.Config
	// PathBudget bounds how many macro-ops a successor-path walk
	// follows when computing footprints, amplifiers, and costs.
	PathBudget int
	// DrainWidth is the backend dispatch width bounding sustained warm
	// delivery in the leakage quantifier (see Config.Costs). Zero
	// leaves warm delivery capped by the DSB stream width alone.
	DrainWidth int
	// DrainLag is the pipeline-fill depth a drain-bound warm run pays
	// on top of the drain cycles (see decode.CostTable.DrainLag).
	DrainLag int
	// RunOverhead is the constant start/stop cost of one complete run
	// on the modelled core (see decode.CostTable.RunOverhead). It
	// cancels out of refill deltas; whole-run pricing (RunCost) adds
	// it so absolute warm/cold predictions match the simulator's run
	// cycle counts.
	RunOverhead int
	// GadgetWindow bounds the transient window of the gadget checkers,
	// in macro-ops past the guard (the legacy scanner used 24).
	GadgetWindow int
	// ProbeIters is the receiver model's probe traversal count — the
	// attack.Calibrate protocol's "samples" knob the predicted probe
	// histograms are stated in. Zero disables the receiver model.
	ProbeIters int
	// PrimeTraversals is the receiver model's priming traversal count,
	// recorded in the histograms so the measurement protocol they
	// predict is explicit: enough traversals to reclaim every probed
	// set from a hot victim under the hotness replacement policy.
	PrimeTraversals int
	// VictimRuns is how many times the modelled protocol lets the
	// victim execute between prime and probe — enough for the victim's
	// footprint to wear down the primed receiver and install.
	VictimRuns int
	// Checkers selects which checkers run; nil means all.
	Checkers []Checker
}

// DefaultDrainLag is the modelled pipeline's fill depth in cycles: the
// gap between the dispatch and retire streams that a drain-bound warm
// run pays and a fetch-bound cold run hides (decode to retire of the
// first micro-op, minus the cold run's short post-delivery tail).
// Calibrated once against internal/cpu and continuously re-validated
// by the differential harness in internal/staticlint/difftest.
const DefaultDrainLag = 6

// DefaultRunOverhead is the modelled core's constant per-run
// start/stop cost in cycles: the first fetch's spin-up plus the final
// HALT's retire. It is identical on the warm and cold sides of a run
// (so no refill delta contains it) and was calibrated the same way as
// DefaultDrainLag: fit once against internal/cpu run cycle counts,
// then held to ±25% of measurement per direction by the differential
// harness across every victim shape.
const DefaultRunOverhead = 3

// DefaultConfig returns the analysis configuration for the default
// registered profile (Skylake).
func DefaultConfig() Config {
	return ConfigForProfile(profile.Default())
}

// ConfigForProfile returns the analysis configuration for one
// registered front-end profile: the profile supplies the micro-op
// cache geometry and decode semantics, the analyzer supplies its own
// path budgets and the backend-derived drain/overhead calibration
// (which the differential harness validates per profile).
func ConfigForProfile(p profile.Profile) Config {
	return Config{
		UopCache:        p.UopCache,
		Decode:          p.Decode,
		PathBudget:      48,
		DrainWidth:      backend.DefaultConfig().DispatchWidth,
		DrainLag:        DefaultDrainLag,
		RunOverhead:     DefaultRunOverhead,
		GadgetWindow:    24,
		ProbeIters:      DefaultProbeIters,
		PrimeTraversals: DefaultPrimeTraversals,
		VictimRuns:      DefaultVictimRuns,
	}
}

// Checker inspects an analyzed program and contributes findings.
type Checker interface {
	// Name identifies the checker in findings and CLI selection.
	Name() string
	// Check appends findings for the analyzed program.
	Check(a *Analysis) []Finding
}

// AllCheckers returns the full checker suite in report order.
func AllCheckers() []Checker {
	return []Checker{
		SecretBranchChecker{},
		FootprintDivergenceChecker{},
		JumpAlignmentChecker{},
		SwitchPointChecker{},
		MITEAmplifierChecker{},
		UopCacheGadgetChecker{},
		SpectreV1Checker{},
	}
}

// SelectCheckers resolves checker names (as reported by Checker.Name)
// to the corresponding subset of the full suite, preserving report
// order and ignoring duplicates. An unknown name is an error listing
// the valid ones.
func SelectCheckers(names []string) ([]Checker, error) {
	all := AllCheckers()
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []Checker
	for _, c := range all {
		if want[c.Name()] {
			out = append(out, c)
			delete(want, c.Name())
		}
	}
	if len(want) > 0 {
		valid := make([]string, 0, len(all))
		for _, c := range all {
			valid = append(valid, c.Name())
		}
		// Every unknown name, sorted: `want` is a map, so reporting the
		// first range key would pick a nondeterministic one when several
		// names are bad.
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, fmt.Sprintf("%q", n))
		}
		sort.Strings(unknown)
		noun := "checker"
		if len(unknown) > 1 {
			noun = "checkers"
		}
		return nil, fmt.Errorf("staticlint: unknown %s %s (valid: %s)",
			noun, strings.Join(unknown, ", "), strings.Join(valid, ", "))
	}
	return out, nil
}

// Lint analyzes prog against spec and runs the configured checkers.
func Lint(prog *asm.Program, spec Spec, cfg Config) *Report {
	return lintAnalysis(Analyze(prog, spec, cfg), cfg)
}

// lintAnalysis runs the configured checkers over a finished analysis
// (shared by Lint and the cache-backed LintCached).
func lintAnalysis(a *Analysis, cfg Config) *Report {
	checkers := cfg.Checkers
	if checkers == nil {
		checkers = AllCheckers()
	}
	r := &Report{Resolved: a.ResolvedTargets(), Precision: a.PrecisionMetrics()}
	for _, c := range checkers {
		r.Findings = append(r.Findings, c.Check(a)...)
	}
	r.sort()
	return r
}
