package staticlint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity ranks a finding.
type Severity int

// Severity levels, ascending.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// ParseSeverity converts a CLI string to a Severity.
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "info":
		return SevInfo, nil
	case "warning", "warn":
		return SevWarning, nil
	case "error":
		return SevError, nil
	}
	return SevInfo, fmt.Errorf("staticlint: unknown severity %q", s)
}

// Confidence states how certain the analysis is that real secret data
// reaches the flagged site.
type Confidence int

// Confidence levels.
const (
	// May: the taint path involves an unresolved address that may
	// alias a declared secret (sound over-approximation).
	May Confidence = iota
	// Definite: a declared secret register or a resolved secret-range
	// read reaches the site.
	Definite
)

// String implements fmt.Stringer.
func (c Confidence) String() string {
	if c == Definite {
		return "definite"
	}
	return "may"
}

// SetOccupancy is one set's predicted way occupancy, for findings.
type SetOccupancy struct {
	Set  int `json:"set"`
	Ways int `json:"ways"`
}

// CallFrame is one hop of a finding's interprocedural trace: the call
// site executed and the callee it enters. A finding inside a function
// only reachable through calls carries the chain from a caller-less
// root down to the flagged site, rendered root-first. The chain is one
// representative (shortest) path; a site with multiple callers or in a
// shared tail block has other real paths the trace does not list.
type CallFrame struct {
	CallSite    uint64
	Callee      uint64
	CalleeLabel string
}

// Finding is one checker result.
type Finding struct {
	// Checker names the producing checker.
	Checker  string     `json:"checker"`
	Severity Severity   `json:"-"`
	Conf     Confidence `json:"-"`
	// Addr is the primary site (the flagged branch or sink).
	Addr uint64 `json:"-"`
	// Message is the human-readable one-liner.
	Message string `json:"message"`
	// Sources lists the taint sources reaching the site.
	Sources []string `json:"sources,omitempty"`
	// CallChain traces how control reaches the flagged site across
	// function boundaries (empty when the site is in a root function).
	CallChain []CallFrame `json:"-"`
	// Guard/Load/Sink trace a gadget finding's chain (zero when
	// inapplicable).
	Guard uint64 `json:"-"`
	Load  uint64 `json:"-"`
	Sink  uint64 `json:"-"`
	// TakenFootprint/FallFootprint carry the per-set way occupancy of
	// the two successor paths for divergence findings.
	TakenFootprint []SetOccupancy `json:"taken_footprint,omitempty"`
	FallFootprint  []SetOccupancy `json:"fallthrough_footprint,omitempty"`
	// DivergentSets are the sets whose occupancy differs between the
	// paths — the observable signal.
	DivergentSets []int `json:"divergent_sets,omitempty"`
	// TakenCost/FallCost price the two successor paths of a divergence
	// finding in probe cycles (nil when inapplicable); the predicted
	// values are differentially validated against the cycle-level
	// front end by internal/staticlint/difftest.
	TakenCost *PathCost `json:"taken_cost,omitempty"`
	FallCost  *PathCost `json:"fallthrough_cost,omitempty"`
	// ProbeDeltaCycles is the signed headline number: the taken path's
	// refill penalty minus the fall-through path's.
	ProbeDeltaCycles int `json:"-"`
	// AlignDeltaCycles is the jump-alignment checker's headline: the
	// taken path's boundary-straddle stall cycles minus the
	// fall-through's (nonzero only on secret-dependent-jump-alignment
	// findings).
	AlignDeltaCycles int `json:"-"`
	// SwitchDeltaCycles is the dsb-mite-switch checker's headline: the
	// signed warm-traversal switch-bubble cost difference between the
	// directions (switch-count difference × per-switch bubble cycles).
	SwitchDeltaCycles int `json:"-"`
	// Probe is the receiver model's predicted prime/probe timing
	// histogram for a divergence finding (nil when inapplicable or the
	// model is disabled).
	Probe *ProbeHistogram `json:"-"`
}

// callFrameJSON is CallFrame's wire form (hex addresses).
type callFrameJSON struct {
	CallSite    string `json:"call_site"`
	Callee      string `json:"callee"`
	CalleeLabel string `json:"callee_label,omitempty"`
}

// findingJSON is the stable wire form: addresses rendered as hex
// strings so goldens stay readable and diffable.
type findingJSON struct {
	Checker           string          `json:"checker"`
	Severity          string          `json:"severity"`
	Confidence        string          `json:"confidence"`
	Addr              string          `json:"addr"`
	Message           string          `json:"message"`
	Sources           []string        `json:"sources,omitempty"`
	CallChain         []callFrameJSON `json:"call_chain,omitempty"`
	Guard             string          `json:"guard,omitempty"`
	Load              string          `json:"load,omitempty"`
	Sink              string          `json:"sink,omitempty"`
	TakenFootprint    []SetOccupancy  `json:"taken_footprint,omitempty"`
	FallFootprint     []SetOccupancy  `json:"fallthrough_footprint,omitempty"`
	DivergentSets     []int           `json:"divergent_sets,omitempty"`
	TakenCost         *PathCost       `json:"taken_cost,omitempty"`
	FallCost          *PathCost       `json:"fallthrough_cost,omitempty"`
	ProbeDeltaCycles  *int            `json:"predicted_probe_delta_cycles,omitempty"`
	AlignDeltaCycles  *int            `json:"predicted_align_delta_cycles,omitempty"`
	SwitchDeltaCycles *int            `json:"predicted_switch_delta_cycles,omitempty"`
	Probe             *ProbeHistogram `json:"probe_histogram,omitempty"`
}

func callChainJSON(chain []CallFrame) []callFrameJSON {
	var out []callFrameJSON
	for _, fr := range chain {
		out = append(out, callFrameJSON{
			CallSite:    fmt.Sprintf("%#x", fr.CallSite),
			Callee:      fmt.Sprintf("%#x", fr.Callee),
			CalleeLabel: fr.CalleeLabel,
		})
	}
	return out
}

func hexOrEmpty(v uint64) string {
	if v == 0 {
		return ""
	}
	return fmt.Sprintf("%#x", v)
}

// MarshalJSON implements json.Marshaler.
func (f Finding) MarshalJSON() ([]byte, error) {
	j := findingJSON{
		Checker:        f.Checker,
		Severity:       f.Severity.String(),
		Confidence:     f.Conf.String(),
		Addr:           fmt.Sprintf("%#x", f.Addr),
		Message:        f.Message,
		Sources:        f.Sources,
		CallChain:      callChainJSON(f.CallChain),
		Guard:          hexOrEmpty(f.Guard),
		Load:           hexOrEmpty(f.Load),
		Sink:           hexOrEmpty(f.Sink),
		TakenFootprint: f.TakenFootprint,
		FallFootprint:  f.FallFootprint,
		DivergentSets:  f.DivergentSets,
		TakenCost:      f.TakenCost,
		FallCost:       f.FallCost,
		Probe:          f.Probe,
	}
	if f.TakenCost != nil || f.FallCost != nil {
		d := f.ProbeDeltaCycles
		j.ProbeDeltaCycles = &d
	}
	if f.AlignDeltaCycles != 0 {
		d := f.AlignDeltaCycles
		j.AlignDeltaCycles = &d
	}
	if f.SwitchDeltaCycles != 0 {
		d := f.SwitchDeltaCycles
		j.SwitchDeltaCycles = &d
	}
	return json.Marshal(j)
}

// String renders the finding for terminal output.
func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s/%s] %#x: %s", f.Checker, f.Severity, f.Conf, f.Addr, f.Message)
	for _, s := range f.Sources {
		fmt.Fprintf(&b, "\n    source: %s", s)
	}
	if len(f.CallChain) > 0 {
		b.WriteString("\n    call chain:")
		for i, fr := range f.CallChain {
			name := fr.CalleeLabel
			if name == "" {
				name = fmt.Sprintf("%#x", fr.Callee)
			}
			if i > 0 {
				b.WriteString(" →")
			}
			fmt.Fprintf(&b, " call@%#x → %s", fr.CallSite, name)
		}
	}
	if len(f.DivergentSets) > 0 {
		fmt.Fprintf(&b, "\n    divergent sets: %v", f.DivergentSets)
	}
	if f.TakenCost != nil && f.FallCost != nil {
		fmt.Fprintf(&b, "\n    predicted cycles: taken warm %d / cold %d (+%d), fallthrough warm %d / cold %d (+%d), probe delta %+d",
			f.TakenCost.WarmCycles, f.TakenCost.ColdCycles, f.TakenCost.RefillDelta,
			f.FallCost.WarmCycles, f.FallCost.ColdCycles, f.FallCost.RefillDelta,
			f.ProbeDeltaCycles)
	}
	if f.AlignDeltaCycles != 0 && f.TakenCost != nil && f.FallCost != nil {
		fmt.Fprintf(&b, "\n    jump alignment: taken straddles %d boundary(ies) for %d stall cycles, fallthrough %d for %d — align delta %+d",
			f.TakenCost.AlignJccs, f.TakenCost.AlignStallCycles,
			f.FallCost.AlignJccs, f.FallCost.AlignStallCycles,
			f.AlignDeltaCycles)
	}
	if f.SwitchDeltaCycles != 0 && f.TakenCost != nil && f.FallCost != nil {
		fmt.Fprintf(&b, "\n    switch points: taken pays %d DSB→MITE switches warm (%d cold), fallthrough %d (%d cold) — switch delta %+d cycles",
			f.TakenCost.WarmSwitchPoints, f.TakenCost.ColdSwitchPoints,
			f.FallCost.WarmSwitchPoints, f.FallCost.ColdSwitchPoints,
			f.SwitchDeltaCycles)
	}
	if p := f.Probe; p != nil {
		verdict := "below floor — not decodable by a total-time probe"
		if p.Distinguishable {
			verdict = fmt.Sprintf("decodable (floor %.2f×)", p.SeparationFloor)
		}
		fmt.Fprintf(&b, "\n    predicted probe: hit %d, taken %d (%d misses), fallthrough %d (%d misses) cycles over %d traversals; direction cut %.0f, separation %.2f× — %s",
			p.HitCycles, p.Taken.Cycles, p.Taken.ProbeMisses,
			p.Fall.Cycles, p.Fall.ProbeMisses, p.ProbeIters,
			p.DirectionCut, p.SeparationMargin, verdict)
	}
	return b.String()
}

// Report is the ordered finding list for one program, plus the
// indirect-target resolution results the findings were computed under.
type Report struct {
	Findings []Finding `json:"findings"`
	// Resolved lists the CALLI/JMPI sites the value-set analysis proved
	// complete target sets for (resolve.go); empty when none resolved.
	Resolved []ResolvedSite `json:"resolved_targets,omitempty"`
	// Precision counts indirect sites vs resolved sites (nil when the
	// program has no indirect dispatch).
	Precision *Precision `json:"precision,omitempty"`
}

// sort orders findings deterministically: by address, then checker,
// then message — so JSON output is diffable across runs and PRs.
func (r *Report) sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		return a.Message < b.Message
	})
}

// ByChecker returns the findings produced by the named checker.
func (r *Report) ByChecker(name string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Checker == name {
			out = append(out, f)
		}
	}
	return out
}

// MaxSeverity returns the highest severity present (SevInfo when
// empty).
func (r *Report) MaxSeverity() Severity {
	max := SevInfo
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// Filter returns a report keeping findings at or above min severity.
// Resolution results are analysis facts, not findings, and pass through
// unfiltered.
func (r *Report) Filter(min Severity) *Report {
	out := &Report{Resolved: r.Resolved, Precision: r.Precision}
	for _, f := range r.Findings {
		if f.Severity >= min {
			out.Findings = append(out.Findings, f)
		}
	}
	return out
}
