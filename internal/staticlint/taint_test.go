package staticlint

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// branchFindings lints p with the secret-branch checker only.
func branchFindings(t *testing.T, p *asm.Program, spec Spec) []Finding {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Checkers = []Checker{SecretBranchChecker{}}
	return Lint(p, spec, cfg).Findings
}

func TestSecretRegReachesBranch(t *testing.T) {
	b := asm.New(0x1000)
	b.Cmpi(isa.R5, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	fs := branchFindings(t, b.MustBuild(), Spec{SecretRegs: []isa.Reg{isa.R5}})
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want 1", fs)
	}
	if fs[0].Conf != Definite {
		t.Errorf("confidence = %v, want definite", fs[0].Conf)
	}
}

func TestOverwriteKillsSecret(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R5, 7) // kill the secret before the compare
	b.Cmpi(isa.R5, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	fs := branchFindings(t, b.MustBuild(), Spec{SecretRegs: []isa.Reg{isa.R5}})
	if len(fs) != 0 {
		t.Fatalf("findings after kill = %v, want none", fs)
	}
}

func TestResolvedSecretRangeLoadIsDefinite(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R2, 0x3000)
	b.Loadb(isa.R3, isa.R2, 0) // resolved read of the secret range
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	fs := branchFindings(t, b.MustBuild(),
		Spec{SecretRanges: []MemRange{{Start: 0x3000, End: 0x3400}}})
	if len(fs) != 1 || fs[0].Conf != Definite {
		t.Fatalf("findings = %v, want one definite", fs)
	}
}

func TestResolvedPublicLoadIsClean(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R2, 0x1000)
	b.Load(isa.R3, isa.R2, 0) // resolved read outside every secret range
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	fs := branchFindings(t, b.MustBuild(),
		Spec{SecretRanges: []MemRange{{Start: 0x3000, End: 0x3400}}})
	if len(fs) != 0 {
		t.Fatalf("public load flagged: %v", fs)
	}
}

func TestUnresolvedLoadIsMayAlias(t *testing.T) {
	// The address depends on an unknown argument register, so the load
	// may alias the secret range: flagged with may confidence.
	b := asm.New(0x1000)
	b.Loadb(isa.R3, isa.R1, 0x2000)
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	fs := branchFindings(t, b.MustBuild(),
		Spec{SecretRanges: []MemRange{{Start: 0x3000, End: 0x3400}}})
	if len(fs) != 1 || fs[0].Conf != May {
		t.Fatalf("findings = %v, want one may-confidence", fs)
	}
}

func TestEntryConstsResolveAddresses(t *testing.T) {
	// With the ABI fact R2 = 0 declared, the same load resolves to a
	// public address and the branch is clean.
	b := asm.New(0x1000)
	b.Load(isa.R3, isa.R2, 0x1000)
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	spec := Spec{
		SecretRanges: []MemRange{{Start: 0x3000, End: 0x3400}},
		EntryConsts:  map[isa.Reg]int64{isa.R2: 0},
	}
	if fs := branchFindings(t, b.MustBuild(), spec); len(fs) != 0 {
		t.Fatalf("resolved public load flagged: %v", fs)
	}
}

func TestSecretThroughMemorySpill(t *testing.T) {
	// Secret spilled to a resolved cell and reloaded: taint must
	// survive the round trip even though the register copy dies.
	b := asm.New(0x1000)
	b.Movi(isa.R2, 0x5000)
	b.Store(isa.R2, 0, isa.R5) // spill secret R5
	b.Movi(isa.R5, 0)          // kill the register copy
	b.Load(isa.R3, isa.R2, 0)  // reload
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	fs := branchFindings(t, b.MustBuild(), Spec{SecretRegs: []isa.Reg{isa.R5}})
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want 1 (taint through memory)", fs)
	}
}

func TestStoreKillsStaleMemoryTaint(t *testing.T) {
	// Overwriting the spilled cell with a clean value must kill the
	// cell's taint (strong update at a resolved address).
	b := asm.New(0x1000)
	b.Movi(isa.R2, 0x5000)
	b.Store(isa.R2, 0, isa.R5) // spill secret
	b.Movi(isa.R4, 123)
	b.Store(isa.R2, 0, isa.R4) // overwrite with a constant
	b.Load(isa.R3, isa.R2, 0)
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	fs := branchFindings(t, b.MustBuild(), Spec{SecretRegs: []isa.Reg{isa.R5}})
	if len(fs) != 0 {
		t.Fatalf("stale memory taint survived overwrite: %v", fs)
	}
}

func TestJoinMergesTaint(t *testing.T) {
	// One arm taints R3, the other leaves it clean: after the join the
	// branch must still be flagged (may-analysis unions at merges).
	b := asm.New(0x1000)
	b.Cmpi(isa.R1, 0)
	b.Jcc(isa.EQ, "clean")
	b.Mov(isa.R3, isa.R5) // tainted arm
	b.Jmp("join")
	b.Label("clean")
	b.Movi(isa.R3, 0)
	b.Label("join")
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	fs := branchFindings(t, b.MustBuild(), Spec{SecretRegs: []isa.Reg{isa.R5}})
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want 1 (join must union)", fs)
	}
	if fs[0].Addr != b.MustBuild().MustLabel("join")+4 {
		t.Errorf("flagged %#x, want the post-join branch", fs[0].Addr)
	}
}

func TestZeroIdiomAndConstFold(t *testing.T) {
	// xor-self kills taint and constant folding tracks the result, so
	// a later resolved address stays resolved.
	b := asm.New(0x1000)
	b.Mov(isa.R2, isa.R5) // tainted
	b.Xor(isa.R2, isa.R2) // killed, R2 = 0
	b.Addi(isa.R2, 0x1000)
	b.Load(isa.R3, isa.R2, 0) // resolved public load
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	spec := Spec{
		SecretRegs:   []isa.Reg{isa.R5},
		SecretRanges: []MemRange{{Start: 0x3000, End: 0x3400}},
	}
	if fs := branchFindings(t, b.MustBuild(), spec); len(fs) != 0 {
		t.Fatalf("findings = %v, want none (zeroed + folded to public)", fs)
	}
}

func TestIndirectBranchOnSecretTarget(t *testing.T) {
	b := asm.New(0x1000)
	b.Mov(isa.R4, isa.R5)
	b.Jmpi(isa.R4)
	fs := branchFindings(t, b.MustBuild(), Spec{SecretRegs: []isa.Reg{isa.R5}})
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want 1 (secret indirect target)", fs)
	}
}

func TestUnreachableRoutinesAreSeeded(t *testing.T) {
	// Routines only reachable through unresolved calls still get
	// analyzed with the entry seed (no-predecessor blocks are
	// entries).
	b := asm.New(0x1000)
	b.Halt()
	b.Label("orphan")
	b.Cmpi(isa.R5, 0)
	b.Jcc(isa.NE, "orphan_out")
	b.Label("orphan_out")
	b.Ret()
	fs := branchFindings(t, b.MustBuild(), Spec{SecretRegs: []isa.Reg{isa.R5}})
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want 1 (orphan routine analyzed)", fs)
	}
}

func TestFixpointTerminatesOnLoop(t *testing.T) {
	b := asm.New(0x1000)
	b.Label("loop")
	b.Loadb(isa.R2, isa.R1, 0x2000)
	b.Add(isa.R3, isa.R2)
	b.Cmpi(isa.R1, 100)
	b.Jcc(isa.B, "loop")
	b.Halt()
	fs := branchFindings(t, b.MustBuild(),
		Spec{SecretRanges: []MemRange{{Start: 0x3000, End: 0x3400}}})
	// The loop branch compares the clean counter; the body's load is
	// may-secret but never reaches flags.
	if len(fs) != 0 {
		t.Fatalf("loop produced findings %v", fs)
	}
}
