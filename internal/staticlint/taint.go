package staticlint

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// MemRange is a half-open guest-memory interval [Start, End) declared
// secret.
type MemRange struct {
	Start, End uint64
}

// Contains reports whether the access [addr, addr+size) overlaps r.
func (r MemRange) Contains(addr uint64, size int) bool {
	return addr < r.End && addr+uint64(size) > r.Start
}

// Spec declares what the analysis must treat as secret, plus any
// architectural facts known at entry (ABI constants).
type Spec struct {
	// SecretRegs are registers holding secrets at routine entry.
	SecretRegs []isa.Reg
	// SecretRanges are guest-memory intervals holding secrets. A load
	// from a statically known address inside a range is a definite
	// secret; a load whose address cannot be resolved may alias any
	// range and acquires may-taint.
	SecretRanges []MemRange
	// EntryConsts pins registers to known constants at entry (e.g. an
	// ABI's zero register), improving address resolution.
	EntryConsts map[isa.Reg]int64
}

// taintSet is a bitmask over the analysis' source table. Source
// indices beyond 63 share the saturation bit.
type taintSet uint64

const saturationBit = 63

func bitFor(idx int) taintSet {
	if idx >= saturationBit {
		idx = saturationBit
	}
	return 1 << uint(idx)
}

// SourceKind classifies a taint source.
type SourceKind int

// Source kinds.
const (
	// SrcSecretReg is a register declared secret at entry.
	SrcSecretReg SourceKind = iota
	// SrcSecretRange is a definite read of a declared secret range.
	SrcSecretRange
	// SrcMayAlias is a load at a statically unresolved address that
	// may alias a declared secret range.
	SrcMayAlias
	// SrcLoad is a transient-window load (gadget mode): any value a
	// bypassed guard lets the victim read.
	SrcLoad
	// SrcParamReg/SrcParamFlags/SrcParamMem are the placeholder sources
	// function summaries are computed over: they stand for the caller's
	// register/flags/unresolved-store taint and are substituted with the
	// caller's actual bits when a summary is applied at a call site.
	// They never appear in findings.
	SrcParamReg
	SrcParamFlags
	SrcParamMem
)

// Source is one entry of the taint source table.
type Source struct {
	Kind  SourceKind
	Reg   isa.Reg  // SrcSecretReg
	Range MemRange // SrcSecretRange / SrcMayAlias
	Addr  uint64   // SrcLoad: the load instruction's address
}

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s.Kind {
	case SrcSecretReg:
		return fmt.Sprintf("secret register %s", s.Reg)
	case SrcSecretRange:
		return fmt.Sprintf("secret range [%#x,%#x)", s.Range.Start, s.Range.End)
	case SrcMayAlias:
		return fmt.Sprintf("may-alias of secret range [%#x,%#x)", s.Range.Start, s.Range.End)
	case SrcLoad:
		return fmt.Sprintf("guarded load at %#x", s.Addr)
	case SrcParamReg:
		return fmt.Sprintf("callee input register %s", s.Reg)
	case SrcParamFlags:
		return "callee input flags"
	case SrcParamMem:
		return "callee input memory"
	default:
		return "source?"
	}
}

// constVal is the constant-propagation lattice for one register:
// either a known 64-bit constant or not-a-constant.
type constVal struct {
	known bool
	v     int64
}

// State is the dataflow fact at one program point: per-register taint
// and constant values, flags taint, and the memory taint model.
type State struct {
	Regs  [isa.NumRegs]taintSet
	Const [isa.NumRegs]constVal
	// Flags is the taint of the architectural flags (set by CMP/TEST).
	Flags taintSet
	// Mem taints individually resolved memory cells (strong updates).
	Mem map[uint64]taintSet
	// UnknownStore accumulates taint written through unresolved
	// addresses; every unresolved load may observe it (weak channel).
	UnknownStore taintSet
}

// clone returns an independent copy of s.
func (s *State) clone() *State {
	c := *s
	c.Mem = make(map[uint64]taintSet, len(s.Mem))
	for k, v := range s.Mem {
		c.Mem[k] = v
	}
	return &c
}

// memUnion returns the union of all individually tracked cell taints.
func (s *State) memUnion() taintSet {
	var u taintSet
	for _, v := range s.Mem {
		u |= v
	}
	return u
}

// equal reports whether two states carry identical facts.
func (s *State) equal(o *State) bool {
	if s.Regs != o.Regs || s.Const != o.Const ||
		s.Flags != o.Flags || s.UnknownStore != o.UnknownStore ||
		len(s.Mem) != len(o.Mem) {
		return false
	}
	for k, v := range s.Mem {
		if o.Mem[k] != v {
			return false
		}
	}
	return true
}

// Analysis is the result of running the dataflow engine over a
// program: the CFG, the source table, and the per-block fixpoint
// states checkers consume.
type Analysis struct {
	Prog *asm.Program
	CFG  *CFG
	Spec Spec
	Cfg  Config

	sources []Source
	// rangeDef/rangeMay are the source bits of each secret range's
	// definite and may-alias readings, indexed like Spec.SecretRanges.
	rangeDef []taintSet
	rangeMay []taintSet
	// secretDef/secretMay are the unions over all secret seeds.
	secretDef taintSet
	secretMay taintSet

	in      []*State // fixpoint in-state per block
	reached []bool

	// Interprocedural layer (callgraph.go / summary.go): the function
	// partition, per-function taint summaries, and the placeholder
	// sources summaries are expressed over.
	funcs     []*Func
	funcIndex map[uint64]int // function entry address → funcs index
	funcOf    []int          // block index → owning funcs index (-1: none)
	// resolved maps each CALLI/JMPI address the value-set analysis
	// proved a complete target set for to that set (resolve.go); sites
	// absent here keep the degrade-to-havoc contract.
	resolved   map[uint64][]uint64
	callers    [][]callerRef
	funcWrites []uint32
	summaries  map[uint64]*summary
	paramReg   [isa.NumRegs]taintSet
	paramFlags taintSet
	paramMem   taintSet
	paramMask  taintSet
	paramsOK   bool
	inSummary  bool // a summary fixpoint is running (loadTaint hook)

	// cache, when non-nil, serves and receives per-function summaries
	// keyed by content hash (cache.go) so re-analysis after an edit
	// recomputes only changed functions and their SCC dependents.
	cache *Cache
}

// Sources returns the taint source table (indexed by bit position,
// saturating at 63).
func (a *Analysis) Sources() []Source { return a.sources }

// SourcesOf lists the sources in set, for findings.
func (a *Analysis) SourcesOf(set taintSet) []Source {
	var out []Source
	for i, s := range a.sources {
		if set&bitFor(i) != 0 {
			out = append(out, s)
		}
	}
	return out
}

func (a *Analysis) addSource(s Source) taintSet {
	a.sources = append(a.sources, s)
	return bitFor(len(a.sources) - 1)
}

// SecretTaint splits set into its definite- and may-secret components.
func (a *Analysis) SecretTaint(set taintSet) (def, may taintSet) {
	return set & a.secretDef, set & a.secretMay
}

// Analyze builds the CFG and runs the forward taint dataflow to a
// fixpoint.
func Analyze(prog *asm.Program, spec Spec, cfg Config) *Analysis {
	return analyzeWith(prog, spec, cfg, nil)
}

// analyzeWith is Analyze with an optional summary cache attached.
func analyzeWith(prog *asm.Program, spec Spec, cfg Config, cache *Cache) *Analysis {
	a := &Analysis{
		Prog:  prog,
		CFG:   BuildCFG(prog),
		Spec:  spec,
		Cfg:   cfg,
		cache: cache,
	}
	for _, r := range spec.SecretRegs {
		a.secretDef |= a.addSource(Source{Kind: SrcSecretReg, Reg: r})
	}
	for _, mr := range spec.SecretRanges {
		d := a.addSource(Source{Kind: SrcSecretRange, Range: mr})
		m := a.addSource(Source{Kind: SrcMayAlias, Range: mr})
		a.rangeDef = append(a.rangeDef, d)
		a.rangeMay = append(a.rangeMay, m)
		a.secretDef |= d
		a.secretMay |= m
	}
	a.run()
	return a
}

// entryState builds the seed state applied at every entry block.
func (a *Analysis) entryState() *State {
	st := &State{Mem: make(map[uint64]taintSet)}
	for i, r := range a.Spec.SecretRegs {
		st.Regs[r&0x0F] |= bitFor(i)
	}
	for r, v := range a.Spec.EntryConsts {
		st.Const[r&0x0F] = constVal{known: true, v: v}
	}
	return st
}

// run builds the call graph, computes bottom-up function summaries,
// and then executes the whole-program worklist fixpoint, applying a
// callee's summary along each call's fall-through edge (the return
// site) instead of the old flow-through over-approximation. The
// EdgeCall edge still carries the (post-push) caller state into the
// callee body, so callee-internal findings see real calling contexts.
func (a *Analysis) run() {
	n := len(a.CFG.Blocks)
	a.in = make([]*State, n)
	a.reached = make([]bool, n)
	if n == 0 {
		a.resolved = map[uint64][]uint64{}
		return
	}
	// Indirect-target resolution runs first, on the raw CFG: resolved
	// CALLI/JMPI sites get concrete edges before functions are
	// partitioned, so everything downstream — entry detection, call
	// graph SCCs, summaries, the whole-program fixpoint — treats them
	// like direct transfers.
	a.resolveIndirect()
	a.rewriteIndirectEdges()
	a.buildFuncs()
	a.allocParams()
	a.computeSummaries()
	seeds := make(map[int]*State)
	for _, e := range a.CFG.Entries() {
		seeds[e] = a.entryState()
	}
	if len(seeds) == 0 {
		// Fully cyclic program: seed block 0 so the analysis still
		// covers it.
		seeds[0] = a.entryState()
	}
	// A capped whole-program fixpoint can only miss findings (there is
	// no summary to poison here); the partial in-states are still the
	// best available facts, so keep them rather than reporting nothing.
	a.in, a.reached, _ = a.flow(seeds, nil, true)
}

// join merges two states at a control-flow merge point: taint unions,
// constants meet (disagreement decays to not-a-constant), and tracked
// memory cells union — a cell tracked on only one path unions with the
// secret-range seed it would otherwise read as.
func (a *Analysis) join(x, y *State) *State {
	out := x.clone()
	for r := 0; r < isa.NumRegs; r++ {
		out.Regs[r] |= y.Regs[r]
		if !x.Const[r].known || !y.Const[r].known || x.Const[r].v != y.Const[r].v {
			out.Const[r] = constVal{}
		}
	}
	out.Flags |= y.Flags
	out.UnknownStore |= y.UnknownStore
	for k, v := range y.Mem {
		if xv, ok := out.Mem[k]; ok {
			out.Mem[k] = xv | v
		} else {
			out.Mem[k] = v | a.rangeSeed(k, 8)
		}
	}
	for k := range x.Mem {
		if _, ok := y.Mem[k]; !ok {
			out.Mem[k] |= a.rangeSeed(k, 8)
		}
	}
	return out
}

// rangeSeed returns the definite-secret bits of ranges overlapping the
// access [addr, addr+size).
func (a *Analysis) rangeSeed(addr uint64, size int) taintSet {
	var t taintSet
	for i, r := range a.Spec.SecretRanges {
		if r.Contains(addr, size) {
			t |= a.rangeDef[i]
		}
	}
	return t
}

// loadHook lets the gadget checkers inject fresh taint at load sites
// (the transient-window semantics); whole-program analysis passes nil.
type loadHook func(in *isa.Inst) taintSet

// loadTaint computes the taint of a load's result.
func (a *Analysis) loadTaint(st *State, in *isa.Inst, size int, hook loadHook) taintSet {
	var t taintSet
	if hook != nil {
		t |= hook(in)
	}
	if c := st.Const[in.Src&0x0F]; c.known {
		addr := uint64(c.v + in.Imm)
		if mv, ok := st.Mem[addr]; ok {
			t |= mv
		} else {
			t |= a.rangeSeed(addr, size)
			if a.inSummary && !calleeFreshCell(addr) {
				// Summary mode: an untracked resolved cell still holds
				// whatever the caller's memory holds there — the
				// placeholder memory bit carries that dependence to the
				// call site, where it substitutes to the caller's view.
				// Only the callee's own fresh frame (and the
				// return-address slot the CALL pushed) is provably clean;
				// symbolic-stack addresses above it sit in the CALLER's
				// frame and may hold caller data (e.g. a spilled secret).
				t |= a.paramMem
			}
		}
		return t
	}
	// Unresolved address: the load may observe any declared secret
	// range, any unresolved store, and any tracked cell.
	for i := range a.Spec.SecretRanges {
		t |= a.rangeMay[i]
	}
	t |= st.UnknownStore | st.memUnion()
	return t
}

// step applies one instruction's transfer function to st in place.
func (a *Analysis) step(st *State, in *isa.Inst, hook loadHook) {
	d := in.Dst & 0x0F
	s := in.Src & 0x0F
	switch in.Op {
	case isa.MOVI:
		st.Regs[d] = 0
		st.Const[d] = constVal{known: true, v: in.Imm}
	case isa.MOV:
		st.Regs[d] = st.Regs[s]
		st.Const[d] = st.Const[s]
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR:
		if !in.HasImm && d == s && (in.Op == isa.XOR || in.Op == isa.SUB) {
			// Zeroing idiom: the result is the constant 0 regardless of
			// the operand — taint dies here (kill on overwrite).
			st.Regs[d] = 0
			st.Const[d] = constVal{known: true, v: 0}
			return
		}
		if in.HasImm {
			st.Const[d] = foldConst(in.Op, st.Const[d], constVal{known: true, v: in.Imm})
		} else {
			st.Regs[d] |= st.Regs[s]
			st.Const[d] = foldConst(in.Op, st.Const[d], st.Const[s])
		}
	case isa.CMP, isa.TEST:
		st.Flags = st.Regs[d]
		if !in.HasImm {
			st.Flags |= st.Regs[s]
		}
	case isa.LOAD:
		st.Regs[d] = a.loadTaint(st, in, 8, hook)
		st.Const[d] = constVal{}
	case isa.LOADB:
		st.Regs[d] = a.loadTaint(st, in, 1, hook)
		st.Const[d] = constVal{}
	case isa.STORE, isa.STOREB:
		// Dst holds the stored value, Src the base register.
		if c := st.Const[s]; c.known {
			st.Mem[uint64(c.v+in.Imm)] = st.Regs[d] // strong update
		} else {
			st.UnknownStore |= st.Regs[d]
		}
	case isa.RDTSC:
		// Overwrites Dst with the cycle counter: kill.
		st.Regs[d] = 0
		st.Const[d] = constVal{}
	case isa.CALL, isa.CALLI:
		// The reference machine pushes the return address: R15 drops by
		// 8 and the slot gets a clean (untainted) code address. Modelled
		// as a strong update when the stack pointer resolves, so a
		// secret spilled at the same slot earlier is killed and a later
		// reload of the slot reads untainted.
		if c := st.Const[15]; c.known {
			sp := c.v - 8
			st.Const[15] = constVal{known: true, v: sp}
			st.Mem[uint64(sp)] = 0
		}
	case isa.RET:
		// Pop: the return target comes from the stack slot (the CFG has
		// no successor edge here); only the stack-pointer constant
		// matters — it keeps callee summaries stack-balanced.
		if c := st.Const[15]; c.known {
			st.Const[15] = constVal{known: true, v: c.v + 8}
		}
	case isa.SYSCALL:
		// Kernel entry: the return address goes to the machine's
		// syscall stack, not the guest stack — no register effect here;
		// the unknown kernel effect is applied at the fall-through edge
		// (succState havoc).
	}
}

// foldConst evaluates an ALU op over the constant lattice.
func foldConst(op isa.Op, x, y constVal) constVal {
	if !x.known || !y.known {
		return constVal{}
	}
	switch op {
	case isa.ADD:
		return constVal{known: true, v: x.v + y.v}
	case isa.SUB:
		return constVal{known: true, v: x.v - y.v}
	case isa.AND:
		return constVal{known: true, v: x.v & y.v}
	case isa.OR:
		return constVal{known: true, v: x.v | y.v}
	case isa.XOR:
		return constVal{known: true, v: x.v ^ y.v}
	case isa.SHL:
		return constVal{known: true, v: x.v << (uint64(y.v) & 63)}
	case isa.SHR:
		return constVal{known: true, v: int64(uint64(x.v) >> (uint64(y.v) & 63))}
	default:
		return constVal{}
	}
}

// StateBefore recomputes the dataflow state immediately before the
// instruction at addr (from its block's fixpoint in-state). It returns
// nil when addr is unmapped or its block was never reached.
func (a *Analysis) StateBefore(addr uint64) *State {
	b := a.CFG.BlockOf(addr)
	if b == nil || !a.reached[b.Index] {
		return nil
	}
	st := a.in[b.Index].clone()
	for _, in := range b.Insts {
		if in.Addr == addr {
			return st
		}
		a.step(st, in, nil)
	}
	return nil
}
