package staticlint

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
	"deaduops/internal/victim"
)

// vpdSpec declares the victim layout's secrets.
func vpdSpec(l victim.Layout) Spec {
	return Spec{
		SecretRanges: []MemRange{
			{Start: l.SecretBase, End: l.SecretBase + uint64(l.ArrayLen)},
			{Start: l.Secret2Addr, End: l.Secret2Addr + 8},
		},
	}
}

// tagBranchAddr locates the secret-dependent tag branch (the JCC whose
// target is vpd_large_path).
func tagBranchAddr(t *testing.T, p *asm.Program) uint64 {
	t.Helper()
	target := p.MustLabel("vpd_large_path")
	for _, in := range p.Insts {
		if in.Op == isa.JCC && uint64(in.Imm) == target {
			return in.Addr
		}
	}
	t.Fatal("tag branch not found")
	return 0
}

func TestVPDSecretBranchFlagged(t *testing.T) {
	l := victim.DefaultLayout()
	p := victim.BuildPCIVPD(l)
	r := Lint(p, vpdSpec(l), DefaultConfig())

	tag := tagBranchAddr(t, p)
	found := false
	for _, f := range r.ByChecker("secret-dependent-branch") {
		if f.Addr == tag {
			found = true
			if f.Severity != SevError {
				t.Errorf("tag branch severity = %v, want error", f.Severity)
			}
		}
	}
	if !found {
		t.Fatalf("tag branch %#x not flagged; findings: %v", tag, r.Findings)
	}
}

func TestVPDFootprintDivergenceFlagged(t *testing.T) {
	l := victim.DefaultLayout()
	p := victim.BuildPCIVPD(l)
	r := Lint(p, vpdSpec(l), DefaultConfig())

	tag := tagBranchAddr(t, p)
	var hit *Finding
	for i, f := range r.ByChecker("dsb-footprint-divergence") {
		if f.Addr == tag {
			hit = &r.ByChecker("dsb-footprint-divergence")[i]
		}
	}
	if hit == nil {
		t.Fatalf("no divergence finding for tag branch %#x: %v", tag, r.Findings)
	}
	if len(hit.DivergentSets) == 0 {
		t.Error("divergence finding lists no divergent sets")
	}
	if len(hit.TakenFootprint) == 0 || len(hit.FallFootprint) == 0 {
		t.Errorf("footprints missing: taken %v fall %v", hit.TakenFootprint, hit.FallFootprint)
	}
}

func TestVPDGadgetCheckerReproducesCensus(t *testing.T) {
	l := victim.DefaultLayout()
	p := victim.BuildPCIVPD(l)
	hits := ScanGadgets(p, DefaultConfig())
	uop := 0
	for _, h := range hits {
		if h.Kind == GadgetUopCache {
			uop++
		}
	}
	if uop == 0 {
		t.Fatalf("gadget checker missed the vpd µop-cache gadget: %v", hits)
	}
}

func TestIdenticalPathsNoDivergence(t *testing.T) {
	// Both sides of the secret branch jump to the same code: no
	// footprint divergence, even though the branch itself is flagged.
	b := asm.New(0x1000)
	b.Cmpi(isa.R5, 0)
	b.Jcc(isa.NE, "same")
	b.Label("same")
	b.Movi(isa.R0, 1)
	b.Halt()
	p := b.MustBuild()
	spec := Spec{SecretRegs: []isa.Reg{isa.R5}}
	r := Lint(p, spec, DefaultConfig())
	if n := len(r.ByChecker("secret-dependent-branch")); n != 1 {
		t.Fatalf("secret branch findings = %d, want 1", n)
	}
	if n := len(r.ByChecker("dsb-footprint-divergence")); n != 0 {
		t.Fatalf("divergence on identical paths: %v", r.Findings)
	}
}

func TestDivergenceOnDisjointPaths(t *testing.T) {
	// The two sides live in different 32-byte regions: divergence.
	b := asm.New(0x1000)
	b.Cmpi(isa.R5, 0)
	b.Jcc(isa.NE, "far")
	b.Movi(isa.R0, 1)
	b.Halt()
	b.Align(512)
	b.Label("far")
	b.Movi(isa.R0, 2)
	b.Movi(isa.R1, 3)
	b.Halt()
	p := b.MustBuild()
	r := Lint(p, Spec{SecretRegs: []isa.Reg{isa.R5}}, DefaultConfig())
	fs := r.ByChecker("dsb-footprint-divergence")
	if len(fs) != 1 {
		t.Fatalf("divergence findings = %v, want 1", fs)
	}
	if len(fs[0].DivergentSets) == 0 {
		t.Error("no divergent sets listed")
	}
}

func TestMITEAmplifierChecker(t *testing.T) {
	// The taken path carries LCP-stalling NOPs and a microcoded
	// macro-op; the fallthrough is plain. Only the amplified path is
	// reported.
	b := asm.New(0x1000)
	b.Cmpi(isa.R5, 0)
	b.Jcc(isa.NE, "amp")
	b.Movi(isa.R0, 1)
	b.Halt()
	b.Align(256)
	b.Label("amp")
	b.NopLCP(4)
	b.NopLCP(4)
	b.Msrom(8)
	b.Halt()
	p := b.MustBuild()
	r := Lint(p, Spec{SecretRegs: []isa.Reg{isa.R5}}, DefaultConfig())
	fs := r.ByChecker("mite-amplifier")
	if len(fs) != 1 {
		t.Fatalf("amplifier findings = %v, want 1", fs)
	}
	if fs[0].Severity != SevWarning {
		t.Errorf("severity = %v, want warning", fs[0].Severity)
	}
}

func TestNoSecretsNoFindings(t *testing.T) {
	// Without secret declarations, only the transient gadget checkers
	// can fire; a clean constant-time program reports nothing.
	b := asm.New(0x1000)
	b.Movi(isa.R1, 5)
	b.Addi(isa.R1, 7)
	b.Cmpi(isa.R1, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	r := Lint(b.MustBuild(), Spec{}, DefaultConfig())
	if len(r.Findings) != 0 {
		t.Fatalf("findings on clean program: %v", r.Findings)
	}
}

func TestReportOrderingAndFilter(t *testing.T) {
	l := victim.DefaultLayout()
	p := victim.BuildPCIVPD(l)
	r := Lint(p, vpdSpec(l), DefaultConfig())
	for i := 1; i < len(r.Findings); i++ {
		a, b := r.Findings[i-1], r.Findings[i]
		if a.Addr > b.Addr || (a.Addr == b.Addr && a.Checker > b.Checker) {
			t.Fatalf("findings unsorted at %d: %v then %v", i, a, b)
		}
	}
	if r.MaxSeverity() != SevError {
		t.Errorf("max severity = %v, want error", r.MaxSeverity())
	}
	errOnly := r.Filter(SevError)
	for _, f := range errOnly.Findings {
		if f.Severity < SevError {
			t.Errorf("filter leaked %v", f)
		}
	}
	if len(errOnly.Findings) == 0 || len(errOnly.Findings) > len(r.Findings) {
		t.Errorf("filter sizes: %d of %d", len(errOnly.Findings), len(r.Findings))
	}
}

func TestWalkPathFollowsCallsAndReturns(t *testing.T) {
	b := asm.New(0x1000)
	b.Label("start")
	b.Movi(isa.R1, 1)
	b.Call("fn")
	b.Halt()
	b.Align(128)
	b.Label("fn")
	b.Movi(isa.R2, 2)
	b.Ret()
	p := b.MustBuild()
	a := Analyze(p, Spec{}, DefaultConfig())

	// From the caller: the walk enters the callee and returns through
	// its RET to the call's return site, ending at HALT — three ranges
	// (caller prefix, callee body, return site).
	info := a.walkPath(p.MustLabel("start"), 32)
	if len(info.Ranges) != 3 {
		t.Fatalf("ranges = %v, want caller + callee + return site", info.Ranges)
	}
	if last := info.Insts[len(info.Insts)-1]; last.Op != isa.HALT {
		t.Errorf("walk ended at %v, want HALT", last)
	}

	// From inside the callee there is no return-site context: the RET
	// ends the walk (empty return stack).
	info = a.walkPath(p.MustLabel("fn"), 32)
	if len(info.Ranges) != 1 {
		t.Fatalf("callee-only ranges = %v, want one", info.Ranges)
	}
	if last := info.Insts[len(info.Insts)-1]; last.Op != isa.RET {
		t.Errorf("callee-only walk ended at %v, want RET", last)
	}
}
