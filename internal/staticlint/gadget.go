package staticlint

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// GadgetKind classifies a transient-gadget finding (the two classes of
// the paper's §VI-A census).
type GadgetKind int

// Gadget classes.
const (
	// GadgetUopCache is the variant-1 class: a guarded load whose
	// result reaches a conditional or indirect branch. The branch's
	// fetch footprint is the disclosure — no second access needed,
	// which is why the paper counts 5× more of these than Spectre-v1.
	GadgetUopCache GadgetKind = iota
	// GadgetSpectreV1 is the classic class: a guarded load whose
	// result feeds the address of a second load.
	GadgetSpectreV1
)

// String implements fmt.Stringer.
func (k GadgetKind) String() string {
	if k == GadgetUopCache {
		return "uop-cache"
	}
	return "spectre-v1"
}

// GadgetHit is one transient-gadget detection: the bypassable guard,
// the guarded load that sources the taint, and the disclosing sink.
// LoadFunc/SinkFunc attribute the load and sink to their owning
// functions' entry addresses (zero when unattributed); CrossFunction
// marks gadgets whose two halves live in different functions — the
// interprocedural shape the census would miss with a call-bounded
// window.
type GadgetHit struct {
	Kind          GadgetKind
	Guard         uint64
	Load          uint64
	Sink          uint64
	LoadFunc      uint64
	SinkFunc      uint64
	CrossFunction bool
}

// maxGadgetCallDepth bounds how many nested direct calls the transient
// window follows: the return stack predictor keeps speculative fetch
// on call/return rails for shallow nests, but a deep chain exhausts
// the window anyway.
const maxGadgetCallDepth = 4

// ScanGadgets runs the transient-window gadget analysis over every
// conditional branch of prog, treating each as a potentially bypassed
// guard. Unlike the legacy linear scanner, the walk runs the dataflow
// engine's transfer function, so taint dies on overwrite (MOVI, MOV
// from a clean register, xor/sub zeroing idioms, RDTSC) and flows
// through resolved memory cells; direct calls and their returns are
// followed, so a gadget whose load and transmit halves live in
// different functions is still counted — and attributed to both.
func ScanGadgets(prog *asm.Program, cfg Config) []GadgetHit {
	a := &Analysis{Prog: prog, CFG: BuildCFG(prog), Spec: Spec{}, Cfg: cfg}
	a.buildFuncs()
	var out []GadgetHit
	for _, in := range prog.Insts {
		if in.Op == isa.JCC {
			out = append(out, a.scanGuard(in)...)
		}
	}
	return out
}

// funcEntryOf returns the entry address of the function owning addr,
// or 0 when unattributed.
func (a *Analysis) funcEntryOf(addr uint64) uint64 {
	b := a.CFG.BlockOf(addr)
	if b == nil || a.funcOf == nil || a.funcOf[b.Index] < 0 {
		return 0
	}
	return a.funcs[a.funcOf[b.Index]].Entry
}

// scanGuard walks the transient window past one guard: straight-line
// fetch through direct jumps, into direct calls and back out through
// their returns (bounded by maxGadgetCallDepth). Every load in the
// window mints a fresh taint source (its result is attacker-reachable
// once the guard is bypassed); sinks are dependent conditional/
// indirect branches (µop-cache class) and dependent load addresses
// (Spectre-v1 class). Each (source, class) pair reports once,
// mirroring the census semantics.
func (a *Analysis) scanGuard(guard *isa.Inst) []GadgetHit {
	var out []GadgetHit
	st := &State{Mem: make(map[uint64]taintSet)}
	a.sources = nil
	hook := func(in *isa.Inst) taintSet {
		return a.addSource(Source{Kind: SrcLoad, Addr: in.Addr})
	}
	seen := map[GadgetKind]map[int]bool{
		GadgetUopCache:  {},
		GadgetSpectreV1: {},
	}
	report := func(kind GadgetKind, set taintSet, sink uint64) {
		for i, s := range a.sources {
			if s.Kind != SrcLoad || set&bitFor(i) == 0 || seen[kind][i] {
				continue
			}
			seen[kind][i] = true
			lf, sf := a.funcEntryOf(s.Addr), a.funcEntryOf(sink)
			out = append(out, GadgetHit{
				Kind: kind, Guard: guard.Addr, Load: s.Addr, Sink: sink,
				LoadFunc: lf, SinkFunc: sf,
				CrossFunction: lf != 0 && sf != 0 && lf != sf,
			})
		}
	}

	window := a.Cfg.GadgetWindow
	if window <= 0 {
		window = 24
	}
	var retStack []uint64
	pc := guard.End()
	for step := 0; step < window; step++ {
		in := a.Prog.At(pc)
		if in == nil {
			break
		}
		switch in.Op {
		case isa.LOAD, isa.LOADB:
			// A tainted address feeding this load is the classic
			// double-load disclosure; check before the transfer mints
			// the load's own source.
			report(GadgetSpectreV1, st.Regs[in.Src&0x0F], in.Addr)
		case isa.JCC:
			report(GadgetUopCache, st.Flags, in.Addr)
		case isa.JMPI, isa.CALLI:
			report(GadgetUopCache, st.Regs[in.Dst&0x0F], in.Addr)
			return out
		case isa.CALL:
			// Speculative fetch follows the call; the window continues
			// inside the callee and resumes at the return site on RET.
			if len(retStack) >= maxGadgetCallDepth || a.Prog.At(uint64(in.Imm)) == nil {
				return out
			}
			a.step(st, in, hook)
			retStack = append(retStack, in.End())
			pc = uint64(in.Imm)
			continue
		case isa.RET:
			if len(retStack) == 0 {
				return out
			}
			a.step(st, in, hook)
			pc = retStack[len(retStack)-1]
			retStack = retStack[:len(retStack)-1]
			continue
		case isa.JMP, isa.HALT, isa.SYSCALL, isa.SYSRET:
			// Control leaves the window.
			return out
		}
		a.step(st, in, hook)
		pc = in.End()
	}
	return out
}

// UopCacheGadgetChecker reports the µop-cache gadget class through the
// checker interface.
type UopCacheGadgetChecker struct{}

// Name implements Checker.
func (UopCacheGadgetChecker) Name() string { return "uop-cache-gadget" }

// Check implements Checker.
func (c UopCacheGadgetChecker) Check(a *Analysis) []Finding {
	return gadgetFindings(a, GadgetUopCache, c.Name(), SevError)
}

// SpectreV1Checker reports the classic double-load class through the
// checker interface.
type SpectreV1Checker struct{}

// Name implements Checker.
func (SpectreV1Checker) Name() string { return "spectre-v1-gadget" }

// Check implements Checker.
func (c SpectreV1Checker) Check(a *Analysis) []Finding {
	return gadgetFindings(a, GadgetSpectreV1, c.Name(), SevWarning)
}

func gadgetFindings(a *Analysis, kind GadgetKind, name string, sev Severity) []Finding {
	var out []Finding
	for _, h := range ScanGadgets(a.Prog, a.Cfg) {
		if h.Kind != kind {
			continue
		}
		msg := fmt.Sprintf(
			"%s gadget: guard %#x → guarded load %#x → sink %#x", kind, h.Guard, h.Load, h.Sink)
		if h.CrossFunction {
			msg += fmt.Sprintf("; load in %s, sink in %s (cross-function)",
				funcName(a.Prog, h.LoadFunc), funcName(a.Prog, h.SinkFunc))
		}
		out = append(out, Finding{
			Checker:  name,
			Severity: sev,
			Conf:     May,
			Addr:     h.Sink,
			Guard:    h.Guard,
			Load:     h.Load,
			Sink:     h.Sink,
			Message:  msg,
		})
	}
	return out
}

// funcName renders a function entry address symbolically when a label
// is bound to it.
func funcName(p *asm.Program, entry uint64) string {
	if l := p.LabelAt(entry); l != "" {
		return l
	}
	return fmt.Sprintf("%#x", entry)
}
