package staticlint

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/uopcache"
)

func TestReceiverSpecFullOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	spec := ReceiverSpec(cfg, []int{3, 11})
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	// The receiver must claim every way of each probed set: a victim
	// line in a probed set then cannot install without displacing a
	// receiver line, and every displacement is probe-visible.
	if spec.Ways != cfg.UopCache.Ways {
		t.Errorf("receiver ways %d, want full %d-way occupancy", spec.Ways, cfg.UopCache.Ways)
	}
	if spec.NopPerRegion != codegen.TigerNops || !spec.LCP {
		t.Errorf("receiver regions not tiger-shaped: %+v", spec)
	}
}

func TestProbeModelDisabled(t *testing.T) {
	fp := uopcache.FootprintResult{Sets: map[int]int{}}
	cfg := DefaultConfig()
	cfg.ProbeIters = 0
	if _, err := ProbeModel(cfg, fp, fp, []int{1}); err == nil {
		t.Error("zero probeIters accepted")
	}
	if _, err := ProbeModel(DefaultConfig(), fp, fp, nil); err == nil {
		t.Error("empty probed-set list accepted")
	}
}

// chainVictimFootprint synthesizes the footprint of a probe-chain
// victim: one single-line region per (set, way).
func chainVictimFootprint(spec *codegen.ChainSpec) uopcache.FootprintResult {
	fp := uopcache.FootprintResult{Sets: map[int]int{}}
	for _, s := range spec.Sets {
		for w := 0; w < spec.Ways; w++ {
			fp.Regions = append(fp.Regions, uopcache.RegionFootprint{
				Region: spec.RegionAddr(s, w), Set: s, Ways: 1, Cacheable: true,
			})
		}
		fp.Sets[s] = spec.Ways
	}
	return fp
}

// TestProbeModelMatchesSimulator holds the receiver model to the
// simulator exactly: the predicted hit and miss probe measurements
// must equal what the actual prime → probe → prime → victim → probe
// protocol measures cycle for cycle, including the replacement-policy
// cascades a static eviction count misses. Victim chains are placed so
// their loop scaffolding stays out of the probed sets — the same
// property the difftest generator guarantees for its victims (the
// model only sees the divergence footprint, not scaffolding).
func TestProbeModelMatchesSimulator(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		name       string
		probe      []int
		victimSets []int
		victimWays int
	}{
		{"one-line", []int{4}, []int{4}, 1},
		{"three-lines", []int{4}, []int{4}, 3},
		{"two-sets-partial", []int{3, 7}, []int{3}, 2},
		{"two-sets-both", []int{3, 7}, []int{3, 7}, 2},
		{"dense-sets", []int{1, 2, 6}, []int{2}, 1},
		{"wide", []int{6, 14, 22, 30}, []int{14, 30}, 3},
	}
	for _, x := range cases {
		t.Run(x.name, func(t *testing.T) {
			spec := ReceiverSpec(cfg, x.probe)
			recv, err := attack.Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			vspec := codegen.ProbeChain(0x100000, x.victimSets, x.victimWays, "vic")
			vic, err := attack.Build(vspec)
			if err != nil {
				t.Fatal(err)
			}
			merged, err := asm.Merge(recv.Prog, vic.Prog)
			if err != nil {
				t.Fatal(err)
			}
			c := cpu.New(cpu.Intel())
			c.LoadProgram(merged)

			run := func(r *attack.Routine, iters int) uint64 {
				cy, err := r.Run(c, 0, int64(iters))
				if err != nil {
					t.Fatal(err)
				}
				return cy
			}
			run(recv, cfg.PrimeTraversals)
			measuredHit := run(recv, cfg.ProbeIters)
			run(recv, cfg.PrimeTraversals)
			run(vic, cfg.VictimRuns)
			measuredMiss := run(recv, cfg.ProbeIters)

			empty := uopcache.FootprintResult{Sets: map[int]int{}}
			h, err := ProbeModel(cfg, chainVictimFootprint(vspec), empty, x.probe)
			if err != nil {
				t.Fatal(err)
			}
			if uint64(h.HitCycles) != measuredHit {
				t.Errorf("predicted hit %d cycles, simulator measured %d", h.HitCycles, measuredHit)
			}
			if uint64(h.Taken.Cycles) != measuredMiss {
				t.Errorf("predicted miss %d cycles, simulator measured %d", h.Taken.Cycles, measuredMiss)
			}
			if h.Fall.Cycles != h.HitCycles || h.Fall.ProbeMisses != 0 {
				t.Errorf("empty-footprint direction predicted %d cycles / %d misses; want the hit state",
					h.Fall.Cycles, h.Fall.ProbeMisses)
			}
			if h.Taken.ProbeMisses < h.Taken.EvictedLines {
				t.Errorf("probe misses %d below static eviction count %d", h.Taken.ProbeMisses, h.Taken.EvictedLines)
			}
		})
	}
}

// TestProbeModelCascade pins the reason the model replays the
// replacement state machine instead of counting evictions: a single
// victim line costs the probe more than one refill per traversal,
// because the probe's own failed refills displace worn-out neighbours.
func TestProbeModelCascade(t *testing.T) {
	cfg := DefaultConfig()
	vspec := codegen.ProbeChain(0x100000, []int{4}, 1, "vic")
	empty := uopcache.FootprintResult{Sets: map[int]int{}}
	h, err := ProbeModel(cfg, chainVictimFootprint(vspec), empty, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if h.Taken.EvictedLines != 1 {
		t.Fatalf("static eviction count %d, want 1", h.Taken.EvictedLines)
	}
	if h.Taken.ProbeMisses <= cfg.ProbeIters {
		t.Errorf("probe misses %d not above %d (one per traversal): cascade not modelled",
			h.Taken.ProbeMisses, cfg.ProbeIters)
	}
}

func TestProbeModelSeparation(t *testing.T) {
	cfg := DefaultConfig()
	empty := uopcache.FootprintResult{Sets: map[int]int{}}
	loud := chainVictimFootprint(codegen.ProbeChain(0x100000, []int{4, 12}, 3, "vic"))

	// Asymmetric directions: one evicts, the other does not — the
	// probe times must separate beyond the floor.
	h, err := ProbeModel(cfg, loud, empty, []int{4, 12})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Distinguishable || h.SeparationMargin < ProbeSeparationFloor {
		t.Errorf("asymmetric eviction not distinguishable: margin %.2f", h.SeparationMargin)
	}
	if h.Taken.Separation < ProbeSeparationFloor {
		t.Errorf("taken-vs-hit separation %.2f below floor", h.Taken.Separation)
	}
	if h.DirectionCut <= float64(h.Fall.Cycles) || h.DirectionCut >= float64(h.Taken.Cycles) {
		t.Errorf("direction cut %.0f outside (%d, %d)", h.DirectionCut, h.Fall.Cycles, h.Taken.Cycles)
	}

	// Symmetric directions: identical footprints leave a total-time
	// receiver blind even though both perturb the probe.
	h, err = ProbeModel(cfg, loud, loud, []int{4, 12})
	if err != nil {
		t.Fatal(err)
	}
	if h.Distinguishable || h.SeparationMargin != 1.0 {
		t.Errorf("identical footprints reported distinguishable (margin %.2f)", h.SeparationMargin)
	}
}

// TestProbeFloorMatchesAttack pins the duplicated constant: staticlint
// must not import internal/attack, so the separation floor the
// histograms are judged against is restated here — and this test keeps
// the two from drifting apart.
func TestProbeFloorMatchesAttack(t *testing.T) {
	if ProbeSeparationFloor != attack.SeparationFloor {
		t.Errorf("staticlint.ProbeSeparationFloor = %v, attack.SeparationFloor = %v",
			ProbeSeparationFloor, attack.SeparationFloor)
	}
}

// TestProbeMarginAgreesWithCalibrate holds the model's verdict to the
// attack tooling's on the same routine pair: when the histogram calls
// a victim distinguishable, attack.Calibrate against that victim must
// produce a threshold; when the histogram says the separation is
// floor-less, Calibrate must refuse to.
func TestProbeMarginAgreesWithCalibrate(t *testing.T) {
	cfg := DefaultConfig()
	empty := uopcache.FootprintResult{Sets: map[int]int{}}
	probe := []int{4, 12}

	calibrate := func(vspec *codegen.ChainSpec) error {
		recv, err := attack.Build(ReceiverSpec(cfg, probe))
		if err != nil {
			t.Fatal(err)
		}
		vic, err := attack.Build(vspec)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := asm.Merge(recv.Prog, vic.Prog)
		if err != nil {
			t.Fatal(err)
		}
		c := cpu.New(cpu.Intel())
		c.LoadProgram(merged)
		_, err = attack.Calibrate(c, recv, vic,
			int64(cfg.PrimeTraversals), int64(cfg.ProbeIters), 3)
		return err
	}

	// A victim occupying the probed sets: the model predicts a margin
	// over the floor, and calibration against the real victim succeeds.
	loudSpec := codegen.ProbeChain(0x100000, probe, 3, "vic")
	h, err := ProbeModel(cfg, chainVictimFootprint(loudSpec), empty, probe)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Distinguishable {
		t.Fatalf("conflicting victim predicted indistinguishable (margin %.2f)", h.SeparationMargin)
	}
	if err := calibrate(loudSpec); err != nil {
		t.Errorf("model margin %.2f over floor, but Calibrate failed: %v", h.SeparationMargin, err)
	}

	// A victim outside the probed sets: the model predicts no
	// separation, and calibration refuses to produce a threshold.
	quietSpec := codegen.ProbeChain(0x100000, []int{20}, 1, "vic")
	h, err = ProbeModel(cfg, chainVictimFootprint(quietSpec), empty, probe)
	if err != nil {
		t.Fatal(err)
	}
	if h.Distinguishable || h.SeparationMargin != 1.0 {
		t.Fatalf("non-conflicting victim predicted distinguishable (margin %.2f)", h.SeparationMargin)
	}
	if err := calibrate(quietSpec); err == nil {
		t.Error("model predicts no separation, but Calibrate produced a threshold")
	}
}
