package staticlint

import (
	"sort"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// EdgeKind classifies a CFG edge.
type EdgeKind int

// Edge kinds.
const (
	// EdgeFallThrough continues at the next sequential instruction.
	EdgeFallThrough EdgeKind = iota
	// EdgeTaken follows a direct branch to its target.
	EdgeTaken
	// EdgeCall enters a direct call target.
	EdgeCall
	// EdgeIndirect leaves through an indirect branch or call whose
	// target is statically unknown (To is -1).
	EdgeIndirect
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	switch k {
	case EdgeFallThrough:
		return "fallthrough"
	case EdgeTaken:
		return "taken"
	case EdgeCall:
		return "call"
	case EdgeIndirect:
		return "indirect"
	default:
		return "edge?"
	}
}

// Edge is one directed CFG edge. To is the successor block index, or
// -1 when the target is statically unknown.
type Edge struct {
	To   int
	Kind EdgeKind
}

// Block is one basic block: a maximal straight-line instruction
// sequence entered only at its head.
type Block struct {
	Index int
	Insts []*isa.Inst
	Succs []Edge
	Preds []int
}

// Start returns the address of the block's first instruction.
func (b *Block) Start() uint64 { return b.Insts[0].Addr }

// End returns the address one past the block's last instruction.
func (b *Block) End() uint64 { return b.Insts[len(b.Insts)-1].End() }

// Last returns the block's final instruction (its terminator when it
// is a control transfer).
func (b *Block) Last() *isa.Inst { return b.Insts[len(b.Insts)-1] }

// CFG is the control-flow graph of an assembled program.
type CFG struct {
	Prog   *asm.Program
	Blocks []*Block
	// byStart maps block start address → block index.
	byStart map[uint64]int
	// blockOf maps every instruction address → its block index.
	blockOf map[uint64]int
}

// BlockAt returns the block starting at addr, or nil.
func (g *CFG) BlockAt(addr uint64) *Block {
	if i, ok := g.byStart[addr]; ok {
		return g.Blocks[i]
	}
	return nil
}

// BlockOf returns the block containing the instruction at addr, or nil.
func (g *CFG) BlockOf(addr uint64) *Block {
	if i, ok := g.blockOf[addr]; ok {
		return g.Blocks[i]
	}
	return nil
}

// Entries returns the indices of blocks with no predecessors — the
// program entry and every routine only reached indirectly (through
// calls the assembler cannot resolve, or not at all). The dataflow
// engine seeds each with the entry state.
func (g *CFG) Entries() []int {
	var out []int
	for _, b := range g.Blocks {
		if len(b.Preds) == 0 {
			out = append(out, b.Index)
		}
	}
	return out
}

// terminatesBlock reports whether in ends a basic block.
func terminatesBlock(in *isa.Inst) bool {
	return in.IsBranch() || in.Op == isa.HALT
}

// BuildCFG partitions prog into basic blocks and wires branch,
// fallthrough, and call edges. Instructions are taken in address order
// (the assembler guarantees Insts is sorted); an address gap (asm.Org)
// also ends a block, with no fallthrough edge across it.
func BuildCFG(p *asm.Program) *CFG {
	g := &CFG{
		Prog:    p,
		byStart: make(map[uint64]int),
		blockOf: make(map[uint64]int),
	}
	if len(p.Insts) == 0 {
		return g
	}

	// Pass 1: leaders. The first instruction, every direct branch/call
	// target, every instruction after a terminator, and every
	// instruction after an address gap.
	leader := map[uint64]bool{p.Insts[0].Addr: true}
	for i, in := range p.Insts {
		switch in.Op {
		case isa.JMP, isa.JCC, isa.CALL:
			if p.At(uint64(in.Imm)) != nil {
				leader[uint64(in.Imm)] = true
			}
		}
		if terminatesBlock(in) && i+1 < len(p.Insts) {
			leader[p.Insts[i+1].Addr] = true
		}
		if i+1 < len(p.Insts) && p.Insts[i+1].Addr != in.End() {
			leader[p.Insts[i+1].Addr] = true
		}
	}

	// Pass 2: slice into blocks.
	var cur *Block
	flush := func() {
		if cur != nil && len(cur.Insts) > 0 {
			cur.Index = len(g.Blocks)
			g.byStart[cur.Start()] = cur.Index
			for _, in := range cur.Insts {
				g.blockOf[in.Addr] = cur.Index
			}
			g.Blocks = append(g.Blocks, cur)
		}
		cur = nil
	}
	for _, in := range p.Insts {
		if leader[in.Addr] {
			flush()
			cur = &Block{}
		}
		if cur == nil { // defensive: start a block anyway
			cur = &Block{}
		}
		cur.Insts = append(cur.Insts, in)
	}
	flush()

	// Pass 3: edges.
	for _, b := range g.Blocks {
		last := b.Last()
		addEdge := func(to uint64, kind EdgeKind) {
			if i, ok := g.byStart[to]; ok {
				b.Succs = append(b.Succs, Edge{To: i, Kind: kind})
			} else {
				b.Succs = append(b.Succs, Edge{To: -1, Kind: kind})
			}
		}
		fallthroughOK := func() bool {
			// A fallthrough edge exists only when the next address is
			// mapped (no Org gap, not the program end).
			return p.At(last.End()) != nil
		}
		switch last.Op {
		case isa.JMP:
			addEdge(uint64(last.Imm), EdgeTaken)
		case isa.JCC:
			addEdge(uint64(last.Imm), EdgeTaken)
			if fallthroughOK() {
				addEdge(last.End(), EdgeFallThrough)
			}
		case isa.CALL:
			// Control enters the callee and, on return, resumes at the
			// fall-through. The call edge carries the caller's state
			// into the callee body; the fall-through edge does NOT pass
			// the raw pre-call state — the dataflow engine applies the
			// callee's taint summary across it (see succState).
			addEdge(uint64(last.Imm), EdgeCall)
			if fallthroughOK() {
				addEdge(last.End(), EdgeFallThrough)
			}
		case isa.CALLI, isa.SYSCALL:
			b.Succs = append(b.Succs, Edge{To: -1, Kind: EdgeIndirect})
			if fallthroughOK() {
				addEdge(last.End(), EdgeFallThrough)
			}
		case isa.JMPI:
			b.Succs = append(b.Succs, Edge{To: -1, Kind: EdgeIndirect})
		case isa.RET, isa.SYSRET, isa.HALT:
			// No static successors.
		default:
			if fallthroughOK() {
				addEdge(last.End(), EdgeFallThrough)
			}
		}
	}
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.To >= 0 {
				g.Blocks[e.To].Preds = append(g.Blocks[e.To].Preds, b.Index)
			}
		}
	}
	for _, b := range g.Blocks {
		sort.Ints(b.Preds)
	}
	return g
}
