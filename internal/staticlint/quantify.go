package staticlint

// The leakage quantifier: prices the fetch paths of a secret-dependent
// branch in probe cycles, using the same cost table the cycle-level
// front end charges its stalls through (decode.CostTable). For every
// dsb-footprint-divergence finding the checker attaches a PathCost per
// direction and a headline predicted probe-cycle delta — the number a
// prime+probe receiver measuring the divergent sets would observe.
// The predictions are continuously validated against the simulator by
// internal/staticlint/difftest.

import (
	"deaduops/internal/decode"
	"deaduops/internal/uopcache"
)

// PathCost is the predicted front-end delivery cost of one fetch path
// (the straight-line over-approximation of a branch successor).
type PathCost struct {
	// Uops is the decoded micro-op count along the path.
	Uops int `json:"uops"`
	// WarmCycles is the predicted delivery cost with every cacheable
	// trace resident in the micro-op cache: the max of the per-segment
	// DSB stream cycles and the backend drain bound, plus full MITE
	// delivery of any uncacheable segments.
	WarmCycles int `json:"warm_cycles"`
	// ColdCycles is the predicted delivery cost with every trace
	// evicted: per segment, one fetch/plan cycle + the DSB→MITE switch
	// penalty + the legacy decode schedule (LCP and predecode stalls
	// included as empty slots, MSROM streaming at its own width).
	ColdCycles int `json:"cold_cycles"`
	// RefillDelta = ColdCycles − WarmCycles: the per-traversal penalty
	// of finding this path's traces evicted — the probe-cycle signal
	// the paper's receiver times.
	RefillDelta int `json:"refill_delta_cycles"`
	// LCPStallCycles and MSROMUops break out the MITE amplifiers
	// (mite-amplifier checker) contributing to ColdCycles.
	LCPStallCycles int `json:"lcp_stall_cycles,omitempty"`
	MSROMUops      int `json:"msrom_uops,omitempty"`
	// UncacheableRegions counts segments the placement rules reject;
	// they are MITE-delivered on every traversal and contribute no
	// hit/miss asymmetry.
	UncacheableRegions int `json:"uncacheable_regions,omitempty"`
	// AlignStallCycles and AlignJccs break out the predecoder stalls
	// charged to conditional jumps straddling a predecode-window
	// boundary (jump-alignment checker) contributing to ColdCycles.
	AlignStallCycles int `json:"align_stall_cycles,omitempty"`
	AlignJccs        int `json:"align_jccs,omitempty"`
	// WarmSwitchPoints counts the DSB→MITE transitions a warm traversal
	// of the path still pays — one per uncacheable segment, since the
	// fetch engine falls back to legacy decode exactly there.
	// ColdSwitchPoints counts the transitions of a fully evicted
	// traversal: one per segment (dsb-mite-switch checker).
	WarmSwitchPoints int `json:"warm_switch_points,omitempty"`
	ColdSwitchPoints int `json:"cold_switch_points,omitempty"`
}

// Costs returns the shared cost table the quantifier prices with —
// the same constants internal/frontend charges (see frontend.Config.Costs).
func (c Config) Costs() decode.CostTable {
	t := decode.NewCostTable(c.Decode, c.UopCache)
	t.DrainWidth = c.DrainWidth
	t.DrainLag = c.DrainLag
	t.RunOverhead = c.RunOverhead
	return t
}

// CostRanges prices an explicit set of fetch ranges as a path embedded
// in a longer run: the ranges are segmented exactly as the fetch
// engine segments them (uopcache.SegmentRanges), each segment is
// priced by the shared cost table, and the warm cost is bounded below
// by the backend drain rate across the whole path.
func (a *Analysis) CostRanges(ranges []uopcache.Range) PathCost {
	return a.costRanges(ranges, false)
}

// RunCost prices ranges as one complete program run — the quantity
// internal/staticlint/difftest measures end to end on the simulator.
// Unlike CostRanges — the marginal cost of a path inside a longer run
// — a standalone run pays three things the marginal sums hide:
//
//   - the pipeline-fill lag: the retire stream trails dispatch by the
//     machine's depth, which a drain-bound warm run exposes and a
//     fetch-bound cold run hides inside its delivery schedule
//     (decode.CostTable.DrainLag, via DrainBound);
//   - the delivery/drain race: legacy delivery of dense segments
//     (uncacheable regions of single-byte macro-ops decode at
//     DecodeWidth > the drain width) leaves an IDQ backlog the run
//     retires after the last fetch, and switch bubbles let the
//     backend catch up mid-run — both sides are replayed cycle for
//     cycle by decode.RunRace instead of summed per segment;
//   - the constant run start/stop overhead
//     (decode.CostTable.RunOverhead), identical warm and cold.
func (a *Analysis) RunCost(ranges []uopcache.Range) PathCost {
	return a.costRanges(ranges, true)
}

func (a *Analysis) costRanges(ranges []uopcache.Range, wholeRun bool) PathCost {
	ct := a.Cfg.Costs()
	var pc PathCost
	streamCycles := 0 // warm front-end cycles across cacheable segments
	cacheableUops := 0
	warmRace, coldRace := ct.NewRunRace(), ct.NewRunRace()
	for _, seg := range uopcache.SegmentRanges(a.Cfg.UopCache, a.Prog, ranges) {
		rc := ct.Region(seg.Region, seg.Entry, seg.Insts)
		pc.Uops += rc.Uops
		pc.LCPStallCycles += rc.LCPStallCycles
		pc.MSROMUops += rc.MSROMUops
		pc.AlignStallCycles += rc.AlignStallCycles
		pc.AlignJccs += rc.AlignJccs
		pc.ColdSwitchPoints++
		if !rc.Cacheable {
			pc.WarmSwitchPoints++
		}
		if !wholeRun {
			pc.ColdCycles += rc.ColdCycles
			if rc.Cacheable {
				streamCycles += rc.WarmCycles
				cacheableUops += rc.Uops
			} else {
				pc.UncacheableRegions++
				pc.WarmCycles += rc.WarmCycles // MITE on every traversal
			}
			continue
		}
		plan := decode.PlanRegion(a.Cfg.Decode, seg.Insts)
		coldRace.MITE(plan)
		if rc.Cacheable {
			warmRace.Stream(rc.Uops)
		} else {
			pc.UncacheableRegions++
			warmRace.MITE(plan)
		}
	}
	if wholeRun {
		// Warm is the slower of the delivery/drain race and the backend
		// drain bound over every micro-op of the run (uncacheable
		// segments drain through the same backend, so they count).
		warm := warmRace.Finish()
		if b := ct.DrainBound(pc.Uops); b > warm {
			warm = b
		}
		pc.WarmCycles = warm + ct.RunOverhead
		pc.ColdCycles = coldRace.Finish() + ct.RunOverhead
	} else {
		drain := ct.DrainCycles(cacheableUops)
		if drain > streamCycles {
			streamCycles = drain
		}
		pc.WarmCycles += streamCycles
	}
	pc.RefillDelta = pc.ColdCycles - pc.WarmCycles
	return pc
}

// FetchRanges returns the address ranges of the straight-line fetch
// path from start — sequentially, through direct jumps and calls,
// along the fall-through of conditional branches — bounded by the
// config's PathBudget. A nonzero stop ends the walk when fetch reaches
// that address (exclusive), which lets callers price the shared prefix
// up to a branch separately from its successors.
func (a *Analysis) FetchRanges(start, stop uint64) []uopcache.Range {
	return a.walkPathStop(start, stop, a.Cfg.PathBudget).Ranges
}

// PathCost prices the straight-line fetch path from start (see
// FetchRanges for the walk and stop semantics).
func (a *Analysis) PathCost(start, stop uint64) PathCost {
	return a.CostRanges(a.FetchRanges(start, stop))
}
