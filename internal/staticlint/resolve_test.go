package staticlint

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// Tests for the indirect-target resolution pass: value-set tracking
// through const-prop and bounded table loads, the completeness gate,
// the summary fixpoint over resolved call edges, and the degrade-to-
// havoc contract when the flow cap cuts resolution short.

// resolvedMutualProg is mutualProg with every call rewritten into a
// register-indirect one the value-set pass must resolve: main
// dispatches through a constant-moved pointer, and ping/pong recurse
// into each other the same way. Before resolution this program could
// not exist in the call graph at all — every CALLI degraded to havoc —
// so the SCC fixpoint over the resolved A → B → A cycle is pinned
// here, mirroring the direct-call tests' expectations exactly.
func resolvedMutualProg(target int64) (*asm.Program, uint64) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 3)
	b.Movi(isa.R6, target)
	b.Calli(isa.R6)
	b.Cmpi(isa.R5, 0)
	branch := b.PC()
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("ping")
	b.Xor(isa.R5, isa.R5)
	b.Cmpi(isa.R1, 0)
	b.Jcc(isa.EQ, "ping_out")
	b.Subi(isa.R1, 1)
	b.Movi(isa.R7, 0x3000)
	b.Calli(isa.R7)
	b.Label("ping_out")
	b.Ret()
	b.Org(0x3000)
	b.Label("pong")
	b.Cmpi(isa.R1, 0)
	b.Jcc(isa.EQ, "pong_out")
	b.Subi(isa.R1, 1)
	b.Movi(isa.R7, 0x2000)
	b.Calli(isa.R7)
	b.Label("pong_out")
	b.Ret()
	return b.MustBuild(), branch
}

func TestResolvedMutualRecursionConverges(t *testing.T) {
	// Calling ping through the pointer: every path through the resolved
	// 2-cycle passes ping's xor-self first, so the joined summary kills
	// R5 and the caller's branch is clean — identical to the direct-call
	// TestMutualRecursionKillOnEveryPath.
	ping, _ := resolvedMutualProg(0x2000)
	r := lintRegs(ping, isa.R5)
	if fs := r.ByChecker("secret-dependent-branch"); len(fs) != 0 {
		t.Fatalf("branch flagged despite kill on every resolved path: %v", fs)
	}
	if len(r.Resolved) != 3 {
		t.Fatalf("resolved sites = %d, want 3 (dispatch + both recursion sites)", len(r.Resolved))
	}
	if p := r.Precision; p == nil || p.HavocRate != 0 || p.HavocRateBefore != 1 {
		t.Fatalf("precision = %+v, want fully resolved against a 1.0 before-rate", p)
	}

	// Calling pong: its early-out returns without reaching ping's kill,
	// so the may-taint join over the same cycle must keep the finding.
	pong, branch := resolvedMutualProg(0x3000)
	r = lintRegs(pong, isa.R5)
	if fs := r.ByChecker("secret-dependent-branch"); len(fs) != 1 || fs[0].Addr != branch {
		t.Fatalf("branch findings = %v, want one at %#x (pong's early-out preserves R5)", fs, branch)
	}
}

func TestFlowCapDegradesResolvedSitesToHavoc(t *testing.T) {
	// The same resolvable program under a zeroed flow cap: the value-set
	// fixpoint is cut short, so resolution must report nothing and every
	// CALLI must fall back to the sound havoc summary — an
	// under-approximated target set must never replace havoc.
	old := flowStepCap
	flowStepCap = func(int) int { return 0 }
	defer func() { flowStepCap = old }()
	prog, _ := resolvedMutualProg(0x3000)
	a := Analyze(prog, Spec{SecretRegs: []isa.Reg{isa.R5}}, DefaultConfig())
	if got := a.ResolvedTargets(); len(got) != 0 {
		t.Fatalf("capped fixpoint still resolved %v", got)
	}
	if p := a.PrecisionMetrics(); p == nil || p.HavocSites != p.IndirectSites || p.HavocRate != 1 {
		t.Fatalf("precision = %+v, want every indirect site havocked", p)
	}
	for entry, s := range a.summaries {
		if !s.havoc {
			t.Errorf("summary of %#x survived a capped fixpoint: %+v", entry, s)
		}
	}
}

// fuzzTableAddr and fuzzIdxAddr are the fuzz program's data addresses:
// both sit far from any code so a resolved target can never alias a
// table slot.
const (
	fuzzTableAddr = 0x8000
	fuzzIdxAddr   = 0x8100
)

func TestWideMaskSaturatesToTop(t *testing.T) {
	// AND with a wide immediate on an unknown register must saturate to
	// TOP: the old guard computed 1<<popcount, which overflows int at
	// popcount 63 (`and rX, -2` — the guard goes negative, the makeslice
	// panics) and wraps to zero at 64 (`and rX, -1` — the submask walk
	// enumerates 2^64 entries). Imm is a full int64, so both masks are
	// reachable from any user-supplied program.
	for _, mask := range []uint64{^uint64(0), ^uint64(1), 1<<63 - 1, 0xFFFF, 0x1F} {
		if got := vsMask(vsTop, mask); !got.top {
			t.Errorf("vsMask(TOP, %#x) = %v, want TOP", mask, got)
		}
	}
	// The widest enumerable mask still enumerates: 4 bits = all 16
	// submasks, exactly maxVSetSize.
	if got := vsMask(vsTop, 0xF); got.top || len(got.vals) != 16 {
		t.Errorf("vsMask(TOP, 0xF) = %+v, want the 16 submasks", got)
	}
}

func TestWideMaskDispatchDegradesToHavoc(t *testing.T) {
	// End-to-end form of the same bug: a dispatch index "bounded" by a
	// 63-bit mask must leave the site unresolved (havoc), and the
	// analysis must terminate rather than panic or hang in vsMask.
	b := asm.New(0x1000)
	b.Xor(isa.R1, isa.R1)
	b.Movi(isa.R4, 0x4000)
	b.Store(isa.R1, fuzzTableAddr, isa.R4)
	b.Loadb(isa.R5, isa.R1, fuzzIdxAddr)
	b.Andi(isa.R5, -2)
	b.Addi(isa.R5, fuzzTableAddr)
	b.Load(isa.R6, isa.R5, 0)
	b.Calli(isa.R6)
	b.Halt()
	b.Org(0x4000)
	b.Ret()
	a := Analyze(b.MustBuild(), Spec{}, DefaultConfig())
	if got := a.ResolvedTargets(); len(got) != 0 {
		t.Fatalf("63-bit mask dispatch resolved %v, want havoc", got)
	}
}

// TestOverlappingStoreInvalidatesTrackedCells pins the soundness hole
// the review found: tracked cells are 8-byte values keyed by exact
// address, but a store overlapping a cell's extent concretely rewrites
// part of it. If only the exact-address cell were invalidated, a later
// LOAD at the original address would return the stale value set and a
// CALLI could be "resolved" to a complete-looking set missing the real
// runtime target. Any overlapping STORE (±7 bytes) or STOREB (within
// the 8-byte extent) must kill the cell and degrade the site to havoc.
func TestOverlappingStoreInvalidatesTrackedCells(t *testing.T) {
	build := func(clobber func(b *asm.Builder)) *asm.Program {
		b := asm.New(0x1000)
		b.Xor(isa.R1, isa.R1)
		b.Movi(isa.R4, 0x4000)
		b.Store(isa.R1, fuzzTableAddr, isa.R4) // tracked cell [0x8000,0x8008)
		if clobber != nil {
			b.Movi(isa.R7, 0x123456)
			clobber(b)
		}
		b.Load(isa.R6, isa.R1, fuzzTableAddr)
		b.Calli(isa.R6)
		b.Halt()
		b.Org(0x4000)
		b.Ret()
		return b.MustBuild()
	}
	resolved := func(p *asm.Program) int {
		return len(Analyze(p, Spec{}, DefaultConfig()).ResolvedTargets())
	}

	// Control: the untouched table resolves, and stores adjacent to the
	// cell without overlapping it ([0x7FF8,0x8000) and [0x8008,0x8010))
	// must not over-invalidate.
	if got := resolved(build(nil)); got != 1 {
		t.Fatalf("untouched table: resolved %d sites, want 1", got)
	}
	for _, off := range []int64{-8, 8} {
		p := build(func(b *asm.Builder) { b.Store(isa.R1, fuzzTableAddr+off, isa.R7) })
		if got := resolved(p); got != 1 {
			t.Errorf("non-overlapping store at slot%+d: resolved %d sites, want 1", off, got)
		}
	}

	// Every overlapping clobber must kill resolution.
	overlaps := []struct {
		name    string
		clobber func(b *asm.Builder)
	}{
		{"store one byte above", func(b *asm.Builder) { b.Store(isa.R1, fuzzTableAddr+1, isa.R7) }},
		{"store seven above", func(b *asm.Builder) { b.Store(isa.R1, fuzzTableAddr+7, isa.R7) }},
		{"store one byte below", func(b *asm.Builder) { b.Store(isa.R1, fuzzTableAddr-1, isa.R7) }},
		{"store seven below", func(b *asm.Builder) { b.Store(isa.R1, fuzzTableAddr-7, isa.R7) }},
		{"storeb first byte", func(b *asm.Builder) { b.Storeb(isa.R1, fuzzTableAddr, isa.R7) }},
		{"storeb last byte", func(b *asm.Builder) { b.Storeb(isa.R1, fuzzTableAddr+7, isa.R7) }},
	}
	for _, tc := range overlaps {
		if got := resolved(build(tc.clobber)); got != 0 {
			t.Errorf("%s: site still resolved against the stale cell, want havoc", tc.name)
		}
	}
}

// buildTableProg builds a dispatch through an n-slot function-pointer
// table (n = mask+1, a power of two): the entry stores stub addresses
// into every slot, computes a slot address from either a constant or a
// loaded (statically unknown) index bounded by the mask, loads the
// pointer, and calls it. Returns the program and the stub entry for
// each slot.
func buildTableProg(mask int64, constIdx bool, idx uint8) (*asm.Program, []uint64) {
	n := int(mask) + 1
	stubs := make([]uint64, n)
	b := asm.New(0x1000)
	b.Xor(isa.R1, isa.R1)
	for i := 0; i < n; i++ {
		stubs[i] = uint64(0x4000 + i*0x40)
		b.Movi(isa.R4, int64(stubs[i]))
		b.Store(isa.R1, fuzzTableAddr+int64(i)*8, isa.R4)
	}
	if constIdx {
		b.Movi(isa.R5, int64(idx))
	} else {
		b.Loadb(isa.R5, isa.R1, fuzzIdxAddr)
	}
	b.Andi(isa.R5, mask)
	b.Shli(isa.R5, 3)
	b.Addi(isa.R5, fuzzTableAddr)
	b.Load(isa.R6, isa.R5, 0)
	b.Calli(isa.R6)
	b.Halt()
	for i := 0; i < n; i++ {
		b.Org(stubs[i])
		b.Ret()
	}
	return b.MustBuild(), stubs
}

// FuzzIndirectResolve drives random table sizes and index expressions
// through the resolution pass and holds the completeness invariant:
// whenever a site is resolved, its target set must contain the slot
// any concrete in-range index selects — a resolved set that misses a
// runtime target would silently unsound every joined summary. For
// these well-formed tables resolution is also required to succeed,
// with a constant index pinning the singleton slot and a loaded index
// pinning exactly the mask's reachable slots.
func FuzzIndirectResolve(f *testing.F) {
	f.Add(uint8(0), uint8(0), true)
	f.Add(uint8(0), uint8(0), false)
	f.Add(uint8(1), uint8(1), true)
	f.Add(uint8(1), uint8(3), false)
	f.Add(uint8(2), uint8(2), true)
	f.Add(uint8(2), uint8(255), false)
	f.Fuzz(func(t *testing.T, kRaw, idx uint8, constIdx bool) {
		k := int64(kRaw % 3) // table of 1, 2, or 4 slots
		mask := int64(1)<<k - 1
		prog, stubs := buildTableProg(mask, constIdx, idx)
		a := Analyze(prog, Spec{}, DefaultConfig())
		sites := a.ResolvedTargets()
		if len(sites) != 1 {
			t.Fatalf("mask %#x constIdx=%v: resolved %d sites, want 1", mask, constIdx, len(sites))
		}
		got := map[uint64]bool{}
		for _, tgt := range sites[0].Targets {
			got[tgt] = true
		}
		if constIdx {
			// Const-prop must pin the single selected slot; a larger set
			// is still complete but loses the precision this shape pins.
			want := stubs[int64(idx)&mask]
			if len(got) != 1 || !got[want] {
				t.Fatalf("const index %d & %#x: resolved %v, want {%#x}", idx, mask, sites[0].Targets, want)
			}
			return
		}
		// Loaded index: every in-range slot is reachable, so completeness
		// demands the set contain each one of them.
		for i, stub := range stubs {
			if !got[stub] {
				t.Fatalf("mask %#x: resolved set %v misses slot %d (%#x)", mask, sites[0].Targets, i, stub)
			}
		}
	})
}
