package staticlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
	"deaduops/internal/profile"
	"deaduops/internal/ref"
	"deaduops/internal/victim"
)

// reportJSON renders a report in its wire form — the byte-equality
// oracle every cache test compares against.
func reportJSON(t *testing.T, r *Report) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func fixtureSpec(l victim.Layout) Spec {
	return Spec{SecretRanges: []MemRange{
		{Start: l.SecretBase, End: l.SecretBase + uint64(l.ArrayLen)},
		{Start: l.Secret2Addr, End: l.Secret2Addr + 8},
	}}
}

// TestLintCachedNilCache: a nil cache is "caching off", not a crash.
func TestLintCachedNilCache(t *testing.T) {
	lay := victim.DefaultLayout()
	fx := victim.Fixtures(lay)[0]
	r, hit := LintCached(fx.Prog, fixtureSpec(lay), DefaultConfig(), nil)
	if hit {
		t.Fatal("nil cache reported a hit")
	}
	want := reportJSON(t, Lint(fx.Prog, fixtureSpec(lay), DefaultConfig()))
	if got := reportJSON(t, r); !bytes.Equal(got, want) {
		t.Fatalf("nil-cache report diverges from Lint:\n%s\nvs\n%s", got, want)
	}
}

// TestLintCachedByteIdenticalAllProfiles pins the cache's core output
// contract: for every victim fixture under every registered front-end
// profile, the cold (miss) report and the warm (report-layer hit)
// report are byte-identical to an uncached Lint.
func TestLintCachedByteIdenticalAllProfiles(t *testing.T) {
	lay := victim.DefaultLayout()
	spec := fixtureSpec(lay)
	for _, name := range profile.Names() {
		prof, err := profile.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := ConfigForProfile(prof)
		c := NewCache()
		for _, fx := range victim.Fixtures(lay) {
			want := reportJSON(t, Lint(fx.Prog, spec, cfg))
			cold, hit := LintCached(fx.Prog, spec, cfg, c)
			if hit {
				t.Fatalf("%s/%s: first lookup hit an empty cache", name, fx.Name)
			}
			if got := reportJSON(t, cold); !bytes.Equal(got, want) {
				t.Errorf("%s/%s: cold cached report != Lint\n%s\nvs\n%s", name, fx.Name, got, want)
			}
			warm, hit := LintCached(fx.Prog, spec, cfg, c)
			if !hit {
				t.Fatalf("%s/%s: identical re-audit missed the report layer", name, fx.Name)
			}
			if got := reportJSON(t, warm); !bytes.Equal(got, want) {
				t.Errorf("%s/%s: warm cached report != Lint\n%s\nvs\n%s", name, fx.Name, got, want)
			}
		}
	}
}

// chainProg builds the invalidation-scope program: a call chain
// entry -> fa -> fb -> fc plus an independent sibling fd. Editing fc
// (its MOVI immediate) must re-key fc and every transitive caller —
// fb, fa, entry — while fd's summary survives untouched.
func chainProg(fcImm int64) *asm.Program {
	b := asm.New(0x1000)
	b.Call("fa")
	b.Call("fd")
	b.Halt()
	b.Label("fa").Call("fb").Ret()
	b.Label("fb").Call("fc").Ret()
	b.Label("fc").Movi(isa.R3, fcImm).Ret()
	b.Label("fd").Movi(isa.R4, 2).Ret()
	return b.MustBuild()
}

func TestCacheInvalidationSCCDependents(t *testing.T) {
	c := NewCache()
	cfg := DefaultConfig()

	// Cold: five singleton functions, five summary misses.
	AnalyzeCached(chainProg(1), Spec{}, cfg, c)
	s := c.Stats()
	if s.FuncMisses != 5 || s.FuncHits != 0 {
		t.Fatalf("cold stats %+v, want 5 misses / 0 hits", s)
	}

	// Unchanged re-analysis: every summary served from cache.
	AnalyzeCached(chainProg(1), Spec{}, cfg, c)
	s2 := c.Stats()
	if d := s2.FuncHits - s.FuncHits; d != 5 {
		t.Fatalf("unchanged re-analysis hit %d summaries, want 5", d)
	}
	if s2.FuncMisses != s.FuncMisses {
		t.Fatalf("unchanged re-analysis recomputed %d summaries", s2.FuncMisses-s.FuncMisses)
	}

	// Edit fc: exactly fc and its SCC dependents (fb, fa, entry)
	// recompute; the independent fd is served from cache.
	AnalyzeCached(chainProg(7), Spec{}, cfg, c)
	s3 := c.Stats()
	if d := s3.FuncMisses - s2.FuncMisses; d != 4 {
		t.Errorf("edited callee invalidated %d summaries, want 4 (fc, fb, fa, entry)", d)
	}
	if d := s3.FuncHits - s2.FuncHits; d != 1 {
		t.Errorf("edited program reused %d summaries, want 1 (fd)", d)
	}
}

// dispatchProg builds the resolved-set participation program: two
// routines F and H each load a handler address and jump into a shared
// tail T holding the one CALLI. T's blocks are members of both F and
// H, so the dispatch site's resolved target set is part of both
// bodies' key material.
func dispatchProg(hTarget int64) *asm.Program {
	b := asm.New(0x1000)
	b.Call("F")
	b.Call("H")
	b.Halt()
	b.Label("F").Movi(isa.R6, 0x2000).Jmp("T")
	b.Label("H").Movi(isa.R6, hTarget).Jmp("T")
	b.Label("T").Calli(isa.R6).Ret()
	b.Org(0x2000)
	b.Label("ha").Movi(isa.R2, 1).Ret()
	b.Org(0x2010)
	b.Label("hb").Movi(isa.R2, 2).Ret()
	b.Org(0x2020)
	b.Label("hc").Movi(isa.R2, 3).Ret()
	return b.MustBuild()
}

// TestCacheResolvedSetInvalidatesCaller pins the dispatch-table
// contract: editing H's handler load changes the value set the VSA
// proves at T's CALLI, and F — whose own instruction bytes are
// untouched — must re-key because the resolved set is part of its
// body hash. The handlers themselves stay cached.
func TestCacheResolvedSetInvalidatesCaller(t *testing.T) {
	v1 := dispatchProg(0x2010)
	v2 := dispatchProg(0x2020)

	// The edit is exactly one immediate: every other instruction,
	// including all of F's body and the shared tail, is byte-identical.
	if len(v1.Insts) != len(v2.Insts) {
		t.Fatalf("program shapes diverge: %d vs %d insts", len(v1.Insts), len(v2.Insts))
	}
	diff := 0
	for i := range v1.Insts {
		if *v1.Insts[i] != *v2.Insts[i] {
			diff++
			if v1.Insts[i].Op != isa.MOVI {
				t.Fatalf("unexpected edit at %#x: %v vs %v", v1.Insts[i].Addr, v1.Insts[i], v2.Insts[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("edit touched %d instructions, want exactly H's MOVI", diff)
	}

	c := NewCache()
	cfg := DefaultConfig()
	a1 := AnalyzeCached(v1, Spec{}, cfg, c)
	if got := a1.resolved[v1.MustLabel("T")]; len(got) != 2 {
		t.Fatalf("v1 dispatch site resolved to %v, want {ha, hb}", got)
	}
	s1 := c.Stats()
	if s1.FuncMisses != 6 || s1.FuncHits != 0 {
		t.Fatalf("cold stats %+v, want 6 misses (entry, F, H, ha, hb, hc)", s1)
	}

	a2 := AnalyzeCached(v2, Spec{}, cfg, c)
	if got := a2.resolved[v2.MustLabel("T")]; len(got) != 2 {
		t.Fatalf("v2 dispatch site resolved to %v, want {ha, hc}", got)
	}
	s2 := c.Stats()
	// Recomputed: H (edited), F (unchanged bytes, changed resolved
	// set), entry (transitive caller). Reused: the three handlers.
	if d := s2.FuncMisses - s1.FuncMisses; d != 3 {
		t.Errorf("dispatch edit invalidated %d summaries, want 3 (F, H, entry)", d)
	}
	if d := s2.FuncHits - s1.FuncHits; d != 3 {
		t.Errorf("dispatch edit reused %d summaries, want 3 (ha, hb, hc)", d)
	}
}

// TestCacheCorpusWarmReaudit drives the service's steady-state
// workload: a corpus of generated programs audited, re-audited
// unchanged, then re-audited after one program is edited. The warm
// pass must be pure report-layer hits; the edit must miss exactly one
// report and reuse every summary the edit does not reach.
func TestCacheCorpusWarmReaudit(t *testing.T) {
	const corpus = 1000
	genCfg := ref.DefaultGenConfig()
	progs := make([]*asm.Program, corpus)
	for i := range progs {
		p, err := ref.Generate(uint64(i+1), genCfg)
		if err != nil {
			t.Fatal(err)
		}
		progs[i] = p
	}
	cfg := DefaultConfig()
	c := NewCache()

	cold := make([][]byte, corpus)
	for i, p := range progs {
		r, hit := LintCached(p, Spec{}, cfg, c)
		if hit {
			t.Fatalf("program %d hit an empty cache", i)
		}
		cold[i] = reportJSON(t, r)
	}
	s1 := c.Stats()
	if s1.ReportMisses != corpus || s1.ReportHits != 0 {
		t.Fatalf("cold stats %+v, want %d report misses", s1, corpus)
	}

	// Warm, unchanged: every program served from the report layer,
	// byte-identical, with zero summary traffic.
	for i, p := range progs {
		r, hit := LintCached(p, Spec{}, cfg, c)
		if !hit {
			t.Fatalf("unchanged program %d missed the report layer", i)
		}
		if got := reportJSON(t, r); !bytes.Equal(got, cold[i]) {
			t.Fatalf("program %d: warm report diverges from cold", i)
		}
	}
	s2 := c.Stats()
	if d := s2.ReportHits - s1.ReportHits; d != corpus {
		t.Fatalf("warm pass hit %d reports, want %d", d, corpus)
	}
	if s2.FuncHits != s1.FuncHits || s2.FuncMisses != s1.FuncMisses {
		t.Fatalf("warm pass touched the summary layer: %+v vs %+v", s2, s1)
	}

	// Edit one program in place (a MOVI immediate) and measure how many
	// summaries the edited program needs at all, on a throwaway cache.
	edited := progs[corpus/2]
	var mutated *isa.Inst
	for _, in := range edited.Insts {
		if in.Op == isa.MOVI {
			mutated = in
			break
		}
	}
	if mutated == nil {
		t.Fatal("edited program has no MOVI to mutate")
	}
	mutated.Imm ^= 0x55
	fresh := NewCache()
	LintCached(edited, Spec{}, cfg, fresh)
	total := fresh.Stats().FuncMisses
	if total < 2 {
		t.Fatalf("edited program has %d functions; need >= 2 for a reuse assertion", total)
	}

	// Re-audit the corpus: 999 report hits, one miss, and the miss
	// reuses at least one unedited function's summary.
	for _, p := range progs {
		LintCached(p, Spec{}, cfg, c)
	}
	s3 := c.Stats()
	if d := s3.ReportHits - s2.ReportHits; d != corpus-1 {
		t.Errorf("post-edit pass hit %d reports, want %d", d, corpus-1)
	}
	if d := s3.ReportMisses - s2.ReportMisses; d != 1 {
		t.Errorf("post-edit pass missed %d reports, want 1", d)
	}
	missed := s3.FuncMisses - s2.FuncMisses
	reused := s3.FuncHits - s2.FuncHits
	if missed+reused != total {
		t.Errorf("edited program looked up %d summaries, want %d", missed+reused, total)
	}
	if missed < 1 || missed >= total {
		t.Errorf("edit recomputed %d of %d summaries, want a strict non-empty subset", missed, total)
	}
	if reused < 1 {
		t.Errorf("edit reused %d summaries, want >= 1", reused)
	}
}

// TestLintCachedConcurrent hammers one shared cache from many
// goroutines across fixtures and profiles (run under -race in CI) and
// checks every concurrent result against the sequential baseline.
func TestLintCachedConcurrent(t *testing.T) {
	lay := victim.DefaultLayout()
	spec := fixtureSpec(lay)
	fixtures := victim.Fixtures(lay)
	profs := []profile.Profile{profile.Default()}
	for _, name := range profile.Names() {
		p, err := profile.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != profile.Default().Name {
			profs = append(profs, p)
		}
	}
	want := map[string][]byte{}
	for _, prof := range profs {
		cfg := ConfigForProfile(prof)
		for _, fx := range fixtures {
			want[prof.Name+"/"+fx.Name] = reportJSON(t, Lint(fx.Prog, spec, cfg))
		}
	}

	c := NewCache()
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for _, prof := range profs {
					cfg := ConfigForProfile(prof)
					for _, fx := range fixtures {
						r, _ := LintCached(fx.Prog, spec, cfg, c)
						b, err := json.Marshal(r)
						if err != nil {
							errs <- err
							return
						}
						if !bytes.Equal(b, want[prof.Name+"/"+fx.Name]) {
							errs <- fmt.Errorf("goroutine %d: %s/%s diverged from sequential baseline", g, prof.Name, fx.Name)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := c.Stats()
	if s.FuncHits == 0 || s.ReportHits == 0 {
		t.Errorf("concurrent run produced no cache hits: %+v", s)
	}
}

// TestCacheEviction pins the FIFO bound: the store never exceeds its
// capacity, and an evicted report recomputes correctly (a miss, not an
// error or a stale hit).
func TestCacheEviction(t *testing.T) {
	c := NewCacheSized(4, 2)
	cfg := DefaultConfig()
	var progs []*asm.Program
	for i := 0; i < 4; i++ {
		progs = append(progs, chainProg(int64(100+i)))
	}
	for _, p := range progs {
		LintCached(p, Spec{}, cfg, c)
	}
	s := c.Stats()
	if s.ReportEntries > 2 || s.FuncEntries > 4 {
		t.Fatalf("bounds exceeded: %+v", s)
	}
	// The first program's report was evicted; re-auditing it must miss
	// and still produce the right result.
	want := reportJSON(t, Lint(progs[0], Spec{}, cfg))
	r, hit := LintCached(progs[0], Spec{}, cfg, c)
	if hit {
		t.Fatal("evicted report reported a hit")
	}
	if got := reportJSON(t, r); !bytes.Equal(got, want) {
		t.Fatalf("post-eviction report diverges:\n%s\nvs\n%s", got, want)
	}
}
