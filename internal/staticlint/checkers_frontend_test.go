package staticlint

import (
	"strings"
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/decode"
	"deaduops/internal/isa"
)

// alignVictim builds a secret branch whose taken path holds a
// window-straddling conditional jump (offset 15 of a 16-aligned
// region) and whose fall-through path holds an aligned one — equal
// instruction mix, divergent alignment.
func alignVictim() *asm.Program {
	b := asm.New(0x1000)
	b.Cmpi(isa.R5, 0)      // 0x1000..0x1003
	b.Jcc(isa.NE, "taken") // 0x1004..0x1005: the secret branch
	b.Jmp("fall")

	b.Org(0x1100) // fall path: jcc at window offset 12 (no straddle)
	b.Label("fall")
	b.Nop(12)
	b.Jcc(isa.EQ, "fexit")
	b.Label("fexit")
	b.Halt()

	b.Org(0x1200) // taken path: jcc at window offset 15 (straddles)
	b.Label("taken")
	b.Nop(12)
	b.Nop(3)
	b.Jcc(isa.EQ, "texit")
	b.Label("texit")
	b.Halt()
	return b.MustBuild()
}

func TestJumpAlignmentCheckerFires(t *testing.T) {
	p := alignVictim()
	spec := Spec{SecretRegs: []isa.Reg{isa.R5}}
	cfg := DefaultConfig()
	r := Lint(p, spec, cfg)

	var hit *Finding
	for i, f := range r.ByChecker("secret-dependent-jump-alignment") {
		if f.Addr == 0x1004 {
			hit = &r.ByChecker("secret-dependent-jump-alignment")[i]
		}
	}
	if hit == nil {
		t.Fatalf("no jump-alignment finding for branch 0x1004: %v", r.Findings)
	}
	if want := cfg.Decode.JccAlignPenalty; hit.AlignDeltaCycles != want {
		t.Errorf("align delta %+d, want %+d", hit.AlignDeltaCycles, want)
	}
	if hit.TakenCost == nil || hit.FallCost == nil {
		t.Fatal("finding carries no path costs")
	}
	if hit.TakenCost.AlignJccs != 1 || hit.FallCost.AlignJccs != 0 {
		t.Errorf("straddle counts taken %d / fall %d, want 1 / 0",
			hit.TakenCost.AlignJccs, hit.FallCost.AlignJccs)
	}
	if hit.Severity != SevWarning {
		t.Errorf("severity %v, want warning", hit.Severity)
	}
}

func TestJumpAlignmentCheckerDisabledWithoutPenalty(t *testing.T) {
	p := alignVictim()
	spec := Spec{SecretRegs: []isa.Reg{isa.R5}}
	cfg := DefaultConfig()
	cfg.Decode = decode.Zen() // no alignment effect on the modelled part
	r := Lint(p, spec, cfg)
	if n := len(r.ByChecker("secret-dependent-jump-alignment")); n != 0 {
		t.Fatalf("alignment findings on a zero-penalty frontend: %v", r.Findings)
	}
}

// switchVictim builds a secret branch whose taken path runs through an
// uncacheable region (21 µops in 32 bytes, over the 3-line cap) while
// the fall-through path stays fully cacheable.
func switchVictim() *asm.Program {
	b := asm.New(0x1000)
	b.Cmpi(isa.R5, 0)
	b.Jcc(isa.NE, "taken")
	b.Jmp("fall")

	b.Org(0x1100)
	b.Label("fall")
	b.Nop(15)
	b.Nop(15)
	b.Nop(2)
	b.Halt()

	b.Org(0x1200)
	b.Label("taken")
	for i := 0; i < 20; i++ {
		b.Nop(1)
	}
	b.Nop(12)
	b.Halt()
	return b.MustBuild()
}

func TestSwitchPointCheckerFires(t *testing.T) {
	p := switchVictim()
	spec := Spec{SecretRegs: []isa.Reg{isa.R5}}
	cfg := DefaultConfig()
	r := Lint(p, spec, cfg)

	var hit *Finding
	for i, f := range r.ByChecker("dsb-mite-switch") {
		if f.Addr == 0x1004 {
			hit = &r.ByChecker("dsb-mite-switch")[i]
		}
	}
	if hit == nil {
		t.Fatalf("no switch-point finding for branch 0x1004: %v", r.Findings)
	}
	if hit.TakenCost.WarmSwitchPoints != 1 || hit.FallCost.WarmSwitchPoints != 0 {
		t.Errorf("warm switch points taken %d / fall %d, want 1 / 0",
			hit.TakenCost.WarmSwitchPoints, hit.FallCost.WarmSwitchPoints)
	}
	bubble := 1 + cfg.Costs().SwitchPenalty()
	if want := 1 * bubble; hit.SwitchDeltaCycles != want {
		t.Errorf("switch delta %+d, want %+d", hit.SwitchDeltaCycles, want)
	}
}

// TestSwitchPointCounting pins the per-path switch-point bookkeeping on
// hand-built regions: three contiguous regions, the middle one
// uncacheable, walked as one straight-line path.
func TestSwitchPointCounting(t *testing.T) {
	b := asm.New(0x1000)
	b.Nop(15) // region 0x1000: 3 µops, cacheable
	b.Nop(15)
	b.Nop(2)
	for i := 0; i < 20; i++ { // region 0x1020: 21 µops, uncacheable
		b.Nop(1)
	}
	b.Nop(12)
	b.Halt() // region 0x1040
	p := b.MustBuild()

	a := Analyze(p, Spec{}, DefaultConfig())
	pc := a.CostRanges(a.FetchRanges(0x1000, 0))
	if pc.ColdSwitchPoints != 3 {
		t.Errorf("cold switch points %d, want one per segment (3)", pc.ColdSwitchPoints)
	}
	if pc.WarmSwitchPoints != 1 {
		t.Errorf("warm switch points %d, want one per uncacheable segment (1)", pc.WarmSwitchPoints)
	}
	if pc.UncacheableRegions != 1 {
		t.Errorf("uncacheable regions %d, want 1", pc.UncacheableRegions)
	}
	if pc.AlignStallCycles != 0 || pc.AlignJccs != 0 {
		t.Errorf("nop-only path charged align stalls %d", pc.AlignStallCycles)
	}
}

func TestSelectCheckers(t *testing.T) {
	got, err := SelectCheckers([]string{"dsb-mite-switch", "secret-dependent-branch"})
	if err != nil {
		t.Fatal(err)
	}
	// Report order is preserved regardless of request order.
	if len(got) != 2 || got[0].Name() != "secret-dependent-branch" || got[1].Name() != "dsb-mite-switch" {
		names := make([]string, len(got))
		for i, c := range got {
			names[i] = c.Name()
		}
		t.Fatalf("selected %v", names)
	}
	if _, err := SelectCheckers([]string{"no-such-checker"}); err == nil {
		t.Fatal("unknown checker name accepted")
	}
	all, err := SelectCheckers([]string{})
	if err != nil || len(all) != 0 {
		t.Fatalf("empty selection: %v, %v", all, err)
	}
}

// TestSelectCheckersMultiUnknownDeterministic pins the multi-unknown
// error contract: every unknown name is reported, sorted, in one error
// — not whichever single name a map iteration happened to yield first.
func TestSelectCheckersMultiUnknownDeterministic(t *testing.T) {
	names := []string{"zzz-bogus", "secret-dependent-branch", "aaa-bogus", "mmm-bogus"}
	want := `staticlint: unknown checkers "aaa-bogus", "mmm-bogus", "zzz-bogus"`
	for i := 0; i < 20; i++ {
		_, err := SelectCheckers(names)
		if err == nil {
			t.Fatal("unknown checker names accepted")
		}
		if got := err.Error(); !strings.HasPrefix(got, want) {
			t.Fatalf("run %d: error %q, want prefix %q", i, got, want)
		}
	}
	// A single unknown name keeps the singular form.
	_, err := SelectCheckers([]string{"only-bogus"})
	if err == nil || !strings.HasPrefix(err.Error(), `staticlint: unknown checker "only-bogus"`) {
		t.Fatalf("single unknown: %v", err)
	}
}
