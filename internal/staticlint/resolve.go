package staticlint

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"

	"deaduops/internal/isa"
)

// Indirect-target resolution: a flow-sensitive value-set analysis (VSA)
// that runs once over the raw CFG, before the call graph is built, and
// tries to prove a *complete* target set for every CALLI/JMPI. A site
// whose target register provably holds one of a bounded set of mapped
// block-start addresses is "resolved": the CFG's placeholder
// EdgeIndirect is rewritten into real EdgeCall/EdgeTaken edges, the
// call graph gains the corresponding direct edges (so SCC-based summary
// fixpoints cover mutual recursion through function pointers), and the
// summary engine joins the resolved callees' summaries at the return
// site instead of havocking.
//
// Soundness is preserved by construction: resolution only replaces the
// havoc fallback when the value set is complete — every abstract value
// that can reach the site is enumerated AND every enumerated value is a
// mapped CFG block start. Any unresolvable contributor (an unbounded
// set, an address outside the program, a value laundered through
// unknown memory) keeps the site on the degrade-to-havoc contract
// exactly as before this pass existed.
//
// The lattice tracks, per register, either TOP or a bounded set of at
// most maxVSetSize concrete values, and a memory environment of
// strongly-updated cells at singleton-resolved addresses (the "bounded,
// read-only target table" pattern: the program stores code addresses at
// constant slots, then loads table[base + idx*8]). A store through an
// unbounded address poisons the whole memory environment (memTop): any
// cell could have been overwritten, so no table load resolves past it.
// Calls are treated conservatively: the return-address push writes at
// an untracked stack address (memTop) and the fall-through re-enters
// with all registers TOP — a resolution chain therefore never survives
// an intervening call, which is sound and cheap.

const (
	// maxVSetSize bounds a tracked value set; joins past it go to TOP.
	maxVSetSize = 16
	// maxVSAMemCells bounds the tracked memory environment; exceeding it
	// poisons memory (memTop) rather than growing without bound.
	maxVSAMemCells = 256
)

// vset is one register's abstract value: TOP or a sorted bounded set.
type vset struct {
	top  bool
	vals []uint64 // sorted, unique; empty+!top only before first write
}

var vsTop = vset{top: true}

func vsConst(v uint64) vset { return vset{vals: []uint64{v}} }

func vsOf(vals []uint64) vset {
	if len(vals) == 0 || len(vals) > maxVSetSize {
		return vsTop
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := vals[:1]
	for _, v := range vals[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	if len(out) > maxVSetSize {
		return vsTop
	}
	return vset{vals: out}
}

func (v vset) equal(o vset) bool {
	if v.top != o.top || len(v.vals) != len(o.vals) {
		return false
	}
	for i := range v.vals {
		if v.vals[i] != o.vals[i] {
			return false
		}
	}
	return true
}

// vsJoin unions two value sets, saturating to TOP past the size bound.
func vsJoin(x, y vset) vset {
	if x.top || y.top {
		return vsTop
	}
	merged := make([]uint64, 0, len(x.vals)+len(y.vals))
	merged = append(merged, x.vals...)
	merged = append(merged, y.vals...)
	return vsOf(merged)
}

// vsFold applies a binary ALU op pointwise over two bounded sets.
func vsFold(op isa.Op, x, y vset) vset {
	if x.top || y.top || len(x.vals)*len(y.vals) > maxVSetSize*maxVSetSize {
		return vsTop
	}
	out := make([]uint64, 0, len(x.vals)*len(y.vals))
	for _, a := range x.vals {
		for _, b := range y.vals {
			switch op {
			case isa.ADD:
				out = append(out, a+b)
			case isa.SUB:
				out = append(out, a-b)
			case isa.AND:
				out = append(out, a&b)
			case isa.OR:
				out = append(out, a|b)
			case isa.XOR:
				out = append(out, a^b)
			case isa.SHL:
				out = append(out, a<<(b&63))
			case isa.SHR:
				out = append(out, a>>(b&63))
			default:
				return vsTop
			}
		}
	}
	return vsOf(out)
}

// vsMask is the index-bounding special case: AND with a small immediate
// mask yields a bounded result even from a TOP source — the result can
// only be a submask of the mask. This is what makes `idx & (N-1)`
// table-dispatch patterns resolvable without tracking idx itself.
func vsMask(x vset, mask uint64) vset {
	if !x.top {
		return vsFold(isa.AND, x, vsConst(mask))
	}
	// Guard on the popcount itself, not on 1<<n: for wide masks the
	// shift overflows int (n=63 goes negative, n=64 wraps to zero), so
	// the size check would pass and the enumeration below would panic
	// on makeslice or walk up to 2^64 submasks. Imm is a full int64, so
	// masks like -1 and -2 are reachable from any user program.
	n := bits.OnesCount64(mask)
	if n >= bits.Len(uint(maxVSetSize)) {
		return vsTop
	}
	out := make([]uint64, 0, 1<<uint(n))
	// Standard submask enumeration, including 0.
	for sub := mask; ; sub = (sub - 1) & mask {
		out = append(out, sub)
		if sub == 0 {
			break
		}
	}
	return vsOf(out)
}

// vsaState is the abstract machine state at one program point.
type vsaState struct {
	regs [isa.NumRegs]vset
	// mem holds only cells with a bounded tracked value; an absent cell
	// reads as TOP (initial memory is unknown).
	mem    map[uint64]vset
	memTop bool
}

func (s *vsaState) clone() *vsaState {
	c := *s
	c.mem = make(map[uint64]vset, len(s.mem))
	for k, v := range s.mem {
		c.mem[k] = v
	}
	return &c
}

func (s *vsaState) equal(o *vsaState) bool {
	if s.memTop != o.memTop || len(s.mem) != len(o.mem) {
		return false
	}
	for r := range s.regs {
		if !s.regs[r].equal(o.regs[r]) {
			return false
		}
	}
	for k, v := range s.mem {
		ov, ok := o.mem[k]
		if !ok || !v.equal(ov) {
			return false
		}
	}
	return true
}

// vsaJoin merges two states at a control-flow merge: registers join
// pointwise; a memory cell survives only when tracked on both paths
// (absent means TOP), and memory poisoning is sticky.
func vsaJoin(x, y *vsaState) *vsaState {
	out := &vsaState{mem: make(map[uint64]vset), memTop: x.memTop || y.memTop}
	for r := range out.regs {
		out.regs[r] = vsJoin(x.regs[r], y.regs[r])
	}
	if !out.memTop {
		for k, v := range x.mem {
			if yv, ok := y.mem[k]; ok {
				if j := vsJoin(v, yv); !j.top {
					out.mem[k] = j
				}
			}
		}
	}
	return out
}

// vsaPoisonMem drops every tracked cell: an unbounded-address store (or
// a call's return-address push at an unknown stack pointer) may have
// overwritten any of them.
func (s *vsaState) poisonMem() {
	s.memTop = true
	s.mem = make(map[uint64]vset)
}

// vsaAddrs resolves base+imm over a bounded base set; ok is false when
// the address set is unbounded.
func vsaAddrs(base vset, imm int64) (addrs []uint64, ok bool) {
	if base.top {
		return nil, false
	}
	out := make([]uint64, 0, len(base.vals))
	for _, b := range base.vals {
		out = append(out, b+uint64(imm))
	}
	return out, true
}

// vsaStep applies one instruction's VSA transfer function in place.
func (a *Analysis) vsaStep(st *vsaState, in *isa.Inst) {
	d := in.Dst & 0x0F
	s := in.Src & 0x0F
	switch in.Op {
	case isa.MOVI:
		st.regs[d] = vsConst(uint64(in.Imm))
	case isa.MOV:
		st.regs[d] = st.regs[s]
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR:
		if !in.HasImm && d == s && (in.Op == isa.XOR || in.Op == isa.SUB) {
			st.regs[d] = vsConst(0) // zeroing idiom
			return
		}
		if in.HasImm {
			if in.Op == isa.AND {
				st.regs[d] = vsMask(st.regs[d], uint64(in.Imm))
			} else {
				st.regs[d] = vsFold(in.Op, st.regs[d], vsConst(uint64(in.Imm)))
			}
		} else {
			st.regs[d] = vsFold(in.Op, st.regs[d], st.regs[s])
		}
	case isa.LOAD:
		st.regs[d] = a.vsaLoad(st, in)
	case isa.LOADB, isa.RDTSC:
		// A byte read cannot reconstitute a code pointer usefully; the
		// cycle counter is unknown by definition.
		st.regs[d] = vsTop
	case isa.STORE:
		a.vsaStore(st, st.regs[s], in.Imm, st.regs[d], 8)
	case isa.STOREB:
		// Partial overwrite: every touched cell's tracked value dies.
		a.vsaStore(st, st.regs[s], in.Imm, vsTop, 1)
	case isa.CALL, isa.CALLI, isa.SYSCALL:
		// The return-address push writes through the (untracked) stack
		// pointer: conservatively, any tracked cell may be gone. The
		// fall-through's register havoc is applied at the edge (vsaSucc);
		// the EdgeCall side keeps the caller registers so call-site
		// argument values flow into callee bodies.
		st.poisonMem()
		st.regs[15] = vsFold(isa.SUB, st.regs[15], vsConst(8))
	case isa.RET:
		st.regs[15] = vsFold(isa.ADD, st.regs[15], vsConst(8))
	}
}

// vsaLoad evaluates LOAD [base+imm] over the memory environment: the
// union of the tracked cells at every address in the bounded address
// set, TOP as soon as any contributor is unknown.
func (a *Analysis) vsaLoad(st *vsaState, in *isa.Inst) vset {
	if st.memTop {
		return vsTop
	}
	addrs, ok := vsaAddrs(st.regs[in.Src&0x0F], in.Imm)
	if !ok {
		return vsTop
	}
	out := vset{}
	for _, addr := range addrs {
		cell, tracked := st.mem[addr]
		if !tracked {
			return vsTop
		}
		out = vsJoin(out, cell)
		if out.top {
			return vsTop
		}
	}
	if len(out.vals) == 0 {
		return vsTop
	}
	return out
}

// vsaStore evaluates a width-byte store of val through base+imm:
// strong update at a singleton address, weak update over a bounded
// set, memory poison when the address is unbounded. Tracked cells are
// 8-byte values, so a store of bytes [addr, addr+width) concretely
// rewrites part of every cell whose extent [c, c+8) overlaps that
// range — each such cell's tracked value is stale and must die, not
// just the cell keyed at the exact store address. The one exception is
// the cell exactly at addr under a full-width store: it is completely
// overwritten and receives the stored value below.
func (a *Analysis) vsaStore(st *vsaState, base vset, imm int64, val vset, width uint64) {
	if st.memTop {
		return
	}
	addrs, ok := vsaAddrs(base, imm)
	if !ok {
		st.poisonMem()
		return
	}
	for _, addr := range addrs {
		for c := addr - 7; c != addr+width; c++ {
			if width == 8 && c == addr {
				continue
			}
			delete(st.mem, c)
		}
	}
	if width < 8 {
		// A partial store leaves no fully-overwritten cell to track; the
		// loop above already killed everything it touched.
		return
	}
	if len(addrs) == 1 {
		if val.top {
			delete(st.mem, addrs[0])
		} else {
			st.mem[addrs[0]] = val
		}
	} else {
		// Weak update: the store hit exactly one of addrs. A cell at one
		// of them that survived the invalidation loop (no *other* written
		// address overlaps it) is either unchanged or holds val.
		for _, addr := range addrs {
			if cell, tracked := st.mem[addr]; tracked {
				if j := vsJoin(cell, val); !j.top {
					st.mem[addr] = j
				} else {
					delete(st.mem, addr)
				}
			}
		}
	}
	if len(st.mem) > maxVSAMemCells {
		st.poisonMem()
	}
}

// vsaEntry is the state at a program entry: everything unknown except
// the spec's declared ABI constants.
func (a *Analysis) vsaEntry() *vsaState {
	st := &vsaState{mem: make(map[uint64]vset)}
	for r := range st.regs {
		st.regs[r] = vsTop
	}
	for r, v := range a.Spec.EntryConsts {
		st.regs[r&0x0F] = vsConst(uint64(v))
	}
	return st
}

// vsaSucc computes the state along one CFG edge from a stepped block
// exit state. The fall-through of a call re-enters with all registers
// TOP (the callee may have clobbered anything); memory poisoning from
// the call's own push is already in out.
func vsaSucc(b *Block, e Edge, out *vsaState) *vsaState {
	if e.Kind == EdgeFallThrough {
		switch b.Last().Op {
		case isa.CALL, isa.CALLI, isa.SYSCALL:
			post := &vsaState{mem: make(map[uint64]vset), memTop: true}
			for r := range post.regs {
				post.regs[r] = vsTop
			}
			return post
		}
	}
	return out
}

// resolveIndirect runs the VSA fixpoint and populates a.resolved with
// every CALLI/JMPI whose target set passed the completeness gate. A
// capped fixpoint resolves nothing: partial VSA states could miss a
// reaching value, so the degrade-to-havoc contract takes over wholesale.
func (a *Analysis) resolveIndirect() {
	a.resolved = map[uint64][]uint64{}
	g := a.CFG
	n := len(g.Blocks)
	if n == 0 {
		return
	}
	in := make([]*vsaState, n)
	var work []int
	for _, e := range g.Entries() {
		in[e] = a.vsaEntry()
		work = append(work, e)
	}
	if len(work) == 0 {
		in[0] = a.vsaEntry()
		work = append(work, 0)
	}
	capped := false
	for steps, capSteps := 0, flowStepCap(n); len(work) > 0; steps++ {
		if steps >= capSteps {
			capped = true
			break
		}
		b := work[len(work)-1]
		work = work[:len(work)-1]
		blk := g.Blocks[b]
		out := in[b].clone()
		for _, inst := range blk.Insts {
			a.vsaStep(out, inst)
		}
		for _, e := range blk.Succs {
			if e.To < 0 {
				continue
			}
			s := vsaSucc(blk, e, out)
			if in[e.To] == nil {
				in[e.To] = s.clone()
				work = append(work, e.To)
				continue
			}
			j := vsaJoin(in[e.To], s)
			if !j.equal(in[e.To]) {
				in[e.To] = j
				work = append(work, e.To)
			}
		}
	}
	if capped {
		return
	}
	for _, b := range g.Blocks {
		last := b.Last()
		if (last.Op != isa.CALLI && last.Op != isa.JMPI) || in[b.Index] == nil {
			continue
		}
		st := in[b.Index].clone()
		for _, inst := range b.Insts[:len(b.Insts)-1] {
			a.vsaStep(st, inst)
		}
		if ts := a.completeTargets(st.regs[last.Dst&0x0F]); ts != nil {
			a.resolved[last.Addr] = ts
		}
	}
}

// completeTargets applies the completeness gate: a target set is usable
// only when it is bounded, non-empty, and every member is the start of
// a mapped CFG block — an address the analysis can actually follow. One
// unresolvable member disqualifies the whole site (havoc), never just
// the member: dropping it would under-approximate.
func (a *Analysis) completeTargets(v vset) []uint64 {
	if v.top || len(v.vals) == 0 {
		return nil
	}
	for _, t := range v.vals {
		if a.CFG.BlockAt(t) == nil {
			return nil
		}
	}
	out := make([]uint64, len(v.vals))
	copy(out, v.vals)
	return out
}

// rewriteIndirectEdges replaces each resolved site's EdgeIndirect
// placeholder with concrete edges — EdgeCall per CALLI target,
// EdgeTaken per JMPI target — and updates predecessor lists, so the
// whole-program dataflow, function partitioning, and entry detection
// see resolved indirect transfers exactly like direct ones.
func (a *Analysis) rewriteIndirectEdges() {
	g := a.CFG
	changed := map[int]bool{}
	for _, b := range g.Blocks {
		last := b.Last()
		ts := a.resolved[last.Addr]
		if len(ts) == 0 {
			continue
		}
		kind := EdgeTaken
		if last.Op == isa.CALLI {
			kind = EdgeCall
		}
		succs := make([]Edge, 0, len(b.Succs)-1+len(ts))
		for _, e := range b.Succs {
			if e.Kind == EdgeIndirect {
				continue
			}
			succs = append(succs, e)
		}
		for _, t := range ts {
			to := g.byStart[t]
			succs = append(succs, Edge{To: to, Kind: kind})
			g.Blocks[to].Preds = append(g.Blocks[to].Preds, b.Index)
			changed[to] = true
		}
		b.Succs = succs
	}
	for to := range changed {
		preds := g.Blocks[to].Preds
		sort.Ints(preds)
		dedup := preds[:0]
		for i, p := range preds {
			if i == 0 || p != dedup[len(dedup)-1] {
				dedup = append(dedup, p)
			}
		}
		g.Blocks[to].Preds = dedup
	}
}

// ResolvedSite is one indirect control transfer the resolution pass
// proved a complete target set for, in report wire form.
type ResolvedSite struct {
	Addr    uint64
	Kind    string // "calli" or "jmpi"
	Targets []uint64
}

// resolvedSiteJSON renders addresses as hex strings, like findings.
type resolvedSiteJSON struct {
	Addr    string   `json:"addr"`
	Kind    string   `json:"kind"`
	Targets []string `json:"targets"`
}

// MarshalJSON implements json.Marshaler.
func (r ResolvedSite) MarshalJSON() ([]byte, error) {
	j := resolvedSiteJSON{
		Addr: fmt.Sprintf("%#x", r.Addr),
		Kind: r.Kind,
	}
	for _, t := range r.Targets {
		j.Targets = append(j.Targets, fmt.Sprintf("%#x", t))
	}
	return json.Marshal(j)
}

// Precision summarizes how much of the program's indirect control flow
// the resolution pass pinned down. HavocRateBefore is the rate without
// the pass — every indirect site degraded to havoc — so before/after
// is directly comparable in dashboards and CI artifacts.
type Precision struct {
	IndirectSites   int     `json:"indirect_sites"`
	ResolvedSites   int     `json:"resolved_sites"`
	HavocSites      int     `json:"havoc_sites"`
	HavocRateBefore float64 `json:"havoc_rate_before"`
	HavocRate       float64 `json:"havoc_rate"`
}

// ResolvedTargets lists the resolved indirect sites, ascending by
// address, for reports.
func (a *Analysis) ResolvedTargets() []ResolvedSite {
	if len(a.resolved) == 0 {
		return nil
	}
	out := make([]ResolvedSite, 0, len(a.resolved))
	for addr, ts := range a.resolved {
		kind := "jmpi"
		if in := a.Prog.At(addr); in != nil && in.Op == isa.CALLI {
			kind = "calli"
		}
		out = append(out, ResolvedSite{Addr: addr, Kind: kind, Targets: ts})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// PrecisionMetrics counts the program's CALLI/JMPI sites against the
// resolved set. It returns nil when the program has no indirect sites
// (SYSCALL kernel crossings are not dispatch sites and are excluded).
func (a *Analysis) PrecisionMetrics() *Precision {
	p := &Precision{}
	for _, b := range a.CFG.Blocks {
		if op := b.Last().Op; op == isa.CALLI || op == isa.JMPI {
			p.IndirectSites++
			if len(a.resolved[b.Last().Addr]) > 0 {
				p.ResolvedSites++
			}
		}
	}
	if p.IndirectSites == 0 {
		return nil
	}
	p.HavocSites = p.IndirectSites - p.ResolvedSites
	p.HavocRateBefore = 1
	p.HavocRate = float64(p.HavocSites) / float64(p.IndirectSites)
	return p
}
