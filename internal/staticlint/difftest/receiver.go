package difftest

// receiver.go is the attacker-side half of the differential harness.
// difftest.go validates the victim-side cost model (refill deltas of
// the victim's own runs); this file validates the receiver model
// (staticlint.ProbeModel) the same way: for each generated victim it
// builds the real probe chain over the finding's divergent sets with
// internal/attack, runs the actual prime → probe → prime → victim →
// probe protocol on the cycle-level simulator, and holds the model's
// predicted hit and per-direction probe cycles to the same sign and
// ±Tolerance contract the refill deltas answer to. The receiver model
// is exact against a clean machine (see staticlint's receiver tests);
// this harness additionally exposes it to trained branch predictors
// and a victim-polluted replacement state, where only the statistical
// contract — not cycle exactness — is claimed.

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/cpu"
	"deaduops/internal/staticlint"
)

// ProbeResult is one victim's predicted-vs-measured attacker view:
// what the receiver model says the attacker's stopwatch will show, and
// what the simulated attacker actually measured.
type ProbeResult struct {
	Seed uint64
	// Pred is the receiver model's histogram from the victim's
	// dsb-footprint-divergence finding.
	Pred *staticlint.ProbeHistogram
	// MeasHitTaken/MeasHitFall are the measured hit probes (prime then
	// probe, no victim activity between) of each direction's run;
	// MeasTaken/MeasFall the measured victim-perturbed probes.
	MeasHitTaken, MeasHitFall int
	MeasTaken, MeasFall       int
	Victim                    *Victim
}

// RunProbe generates the victim for seed, takes the receiver model's
// histogram off its divergence finding, and measures the predicted
// protocol for real: the receiver chain from
// staticlint.ReceiverSpec is merged into the victim's address space,
// and each secret direction gets a fresh core, training runs to
// settle the branch predictors, then one attack.MeasureRounds round
// with the victim's runs as the sender activity.
func RunProbe(seed uint64) (ProbeResult, error) { return RunProbeWith(seed, nil) }

// RunProbeWith is RunProbe reusing arena (which may be nil) for each
// direction's simulated core.
func RunProbeWith(seed uint64, arena *cpu.Arena) (ProbeResult, error) {
	return DefaultHarness().RunProbeWith(seed, arena)
}

// RunProbeWith is the harness-bound attacker-side runner; see the
// package-level RunProbe. The prime+probe protocol has no meaning
// without a DSB to contend in, so a no-DSB harness refuses outright —
// the matrix tests assert that refusal rather than skipping silently.
func (h *Harness) RunProbeWith(seed uint64, arena *cpu.Arena) (ProbeResult, error) {
	if !h.Profile.HasDSB() {
		return ProbeResult{}, fmt.Errorf("difftest seed %d: profile %s has no DSB to probe", seed, h.Profile.Name)
	}
	v, err := h.Generate(seed)
	if err != nil {
		return ProbeResult{}, err
	}
	p, err := h.Predict(v)
	if err != nil {
		return ProbeResult{}, err
	}
	hist := p.Finding.Probe
	if hist == nil {
		return ProbeResult{}, fmt.Errorf("difftest seed %d: finding carries no probe histogram", seed)
	}
	cfg := h.Config()
	recv, err := attack.Build(staticlint.ReceiverSpec(cfg, p.Finding.DivergentSets))
	if err != nil {
		return ProbeResult{}, fmt.Errorf("difftest seed %d: %w", seed, err)
	}
	merged, err := asm.Merge(v.Prog, recv.Prog)
	if err != nil {
		return ProbeResult{}, fmt.Errorf("difftest seed %d: merging receiver: %w", seed, err)
	}

	measure := func(secret int64) (hit, miss int, err error) {
		c := cpu.NewWith(h.cpuCfg, arena)
		c.LoadProgram(merged)
		c.Mem().Write(SecretAddr, 1, secret)
		victim := func(tag string) error {
			res := c.Run(0, v.Entry, maxCycles)
			if res.TimedOut {
				return fmt.Errorf("difftest seed %d: %s victim run timed out", seed, tag)
			}
			return nil
		}
		for i := 0; i < trainRuns; i++ {
			if err := victim("train"); err != nil {
				return 0, 0, err
			}
		}
		r, err := attack.MeasureRounds(c, recv, func() error {
			for i := 0; i < cfg.VictimRuns; i++ {
				if err := victim("send"); err != nil {
					return err
				}
			}
			return nil
		}, int64(cfg.PrimeTraversals), int64(cfg.ProbeIters), 1)
		if err != nil {
			return 0, 0, fmt.Errorf("difftest seed %d: %w", seed, err)
		}
		return int(r.Hit[0]), int(r.Miss[0]), nil
	}

	ht, mt, err := measure(1)
	if err != nil {
		return ProbeResult{}, err
	}
	hf, mf, err := measure(0)
	if err != nil {
		return ProbeResult{}, err
	}
	return ProbeResult{
		Seed:         seed,
		Pred:         hist,
		MeasHitTaken: ht,
		MeasHitFall:  hf,
		MeasTaken:    mt,
		MeasFall:     mf,
		Victim:       v,
	}, nil
}

// Validate applies the acceptance contract to one probe result: the
// predicted hit probe and each direction's predicted victim-perturbed
// probe within Tolerance of measurement, and the cross-direction
// asymmetry — which direction costs the attacker more probe time —
// agreeing in sign whenever either side claims at least SignFloor
// cycles of it.
func (r ProbeResult) Validate() error {
	check := func(tag string, pred, meas int) error {
		if meas <= 0 {
			return fmt.Errorf("seed %d %s probe: measured %d cycles not positive", r.Seed, tag, meas)
		}
		diff := pred - meas
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > Tolerance*float64(meas) {
			return fmt.Errorf("seed %d %s probe: predicted %d vs measured %d cycles (%.1f%% off, tolerance %.0f%%)\nvictim: %s",
				r.Seed, tag, pred, meas, 100*float64(diff)/float64(meas), 100*Tolerance, r.Describe())
		}
		return nil
	}
	if err := check("hit (taken run)", r.Pred.HitCycles, r.MeasHitTaken); err != nil {
		return err
	}
	if err := check("hit (fallthrough run)", r.Pred.HitCycles, r.MeasHitFall); err != nil {
		return err
	}
	if err := check("taken", r.Pred.Taken.Cycles, r.MeasTaken); err != nil {
		return err
	}
	if err := check("fallthrough", r.Pred.Fall.Cycles, r.MeasFall); err != nil {
		return err
	}
	predDiff := r.Pred.Taken.Cycles - r.Pred.Fall.Cycles
	measDiff := r.MeasTaken - r.MeasFall
	if abs(predDiff) >= SignFloor && abs(measDiff) >= SignFloor && (predDiff > 0) != (measDiff > 0) {
		return fmt.Errorf("seed %d: predicted probe asymmetry %+d disagrees in sign with measured %+d\nvictim: %s",
			r.Seed, predDiff, measDiff, r.Describe())
	}
	return nil
}

// Describe renders the victim's shape for failure messages.
func (r ProbeResult) Describe() string {
	return Result{Victim: r.Victim}.Describe()
}
