package difftest

import (
	"reflect"
	"testing"

	"deaduops/internal/cpu"
	"deaduops/internal/staticlint"
)

// TestAlignCorpus pins the alignment channel end to end: every
// ShapeAlign victim must hold the differential contract, the predicted
// align-stall asymmetry must point at whichever direction carries the
// window-straddling jumps, and the straddle count must price exactly
// (one straddling jcc per region, JccAlignPenalty cycles each).
func TestAlignCorpus(t *testing.T) {
	results, err := RunShapeMany(SeedRange(1, corpusSize), 0, ShapeAlign)
	if err != nil {
		t.Fatal(err)
	}
	penalty := Config().Decode.JccAlignPenalty
	var straddleTaken, straddleFall int
	for _, r := range results {
		if err := r.Validate(); err != nil {
			t.Errorf("%v", err)
			continue
		}
		v, p := r.Victim, r.Prediction
		delta := p.TakenCost.AlignStallCycles - p.FallCost.AlignStallCycles
		var want int
		switch {
		case v.Taken.JccOffset == 15 && v.Fall.JccOffset != 15:
			want = v.Taken.Regions() * penalty
			straddleTaken++
		case v.Fall.JccOffset == 15 && v.Taken.JccOffset != 15:
			want = -v.Fall.Regions() * penalty
			straddleFall++
		default:
			t.Fatalf("seed %d: no single straddling direction (taken jcc@%d, fall jcc@%d)",
				r.Seed, v.Taken.JccOffset, v.Fall.JccOffset)
		}
		if delta != want {
			t.Errorf("seed %d: predicted align delta %+d, want %+d\nvictim: %s",
				r.Seed, delta, want, r.Describe())
		}
		if p.TakenCost.AlignJccs != v.Taken.Regions()*btoi(v.Taken.JccOffset == 15) ||
			p.FallCost.AlignJccs != v.Fall.Regions()*btoi(v.Fall.JccOffset == 15) {
			t.Errorf("seed %d: straddle counts taken %d / fall %d for jcc@%d / jcc@%d",
				r.Seed, p.TakenCost.AlignJccs, p.FallCost.AlignJccs,
				v.Taken.JccOffset, v.Fall.JccOffset)
		}
	}
	if straddleTaken == 0 || straddleFall == 0 {
		t.Errorf("corpus covers only one straddle direction: taken %d, fall %d",
			straddleTaken, straddleFall)
	}
	t.Logf("validated %d align victims (%d straddle-taken, %d straddle-fall)",
		len(results), straddleTaken, straddleFall)
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestAlignCheckerOnCorpus runs the jump-alignment checker over a
// sample of generated victims and requires a finding at the generated
// branch whose align delta matches the prediction's breakout.
func TestAlignCheckerOnCorpus(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		v, err := GenerateShape(seed, ShapeAlign)
		if err != nil {
			t.Fatal(err)
		}
		r := staticlint.Lint(v.Prog, Spec(), Config())
		var hit *staticlint.Finding
		for i, f := range r.ByChecker("secret-dependent-jump-alignment") {
			if f.Addr == v.Branch {
				hit = &r.ByChecker("secret-dependent-jump-alignment")[i]
			}
		}
		if hit == nil {
			t.Fatalf("seed %d: no jump-alignment finding at branch %#x", seed, v.Branch)
		}
		if (hit.AlignDeltaCycles > 0) != (v.Taken.JccOffset == 15) || hit.AlignDeltaCycles == 0 {
			t.Errorf("seed %d: align delta %+d but straddling side is taken=%v",
				seed, hit.AlignDeltaCycles, v.Taken.JccOffset == 15)
		}
	}
}

// TestSwitchCorpus pins the DSB↔MITE switch-point channel: every
// ShapeSwitch victim must hold the cycle contract, and the predicted
// per-direction switch-point counts must equal the simulator's
// DSB2MITESwitches counter reads exactly — the switch contract is
// counter equality, not tolerance.
func TestSwitchCorpus(t *testing.T) {
	results, err := RunShapeMany(SeedRange(1, corpusSize), 0, ShapeSwitch)
	if err != nil {
		t.Fatal(err)
	}
	arena := new(cpu.Arena)
	for _, r := range results {
		if err := r.Validate(); err != nil {
			t.Errorf("%v", err)
			continue
		}
		v, p := r.Victim, r.Prediction
		if v.TakenUnc == nil {
			t.Fatalf("seed %d: switch victim has no uncacheable taken tail", r.Seed)
		}
		diff := p.TakenCost.WarmSwitchPoints - p.FallCost.WarmSwitchPoints
		if want := v.TakenUnc.Regions(); diff != want {
			t.Errorf("seed %d: predicted warm switch-point diff %d, want %d (uncacheable tail regions)",
				r.Seed, diff, want)
		}
		for _, dir := range []struct {
			name   string
			secret int64
			cost   staticlint.PathCost
		}{
			{"taken", 1, p.TakenCost},
			{"fall", 0, p.FallCost},
		} {
			warm, cold, err := MeasureSwitches(v, dir.secret, arena)
			if err != nil {
				t.Fatal(err)
			}
			if warm != dir.cost.WarmSwitchPoints || cold != dir.cost.ColdSwitchPoints {
				t.Errorf("seed %d %s: measured switches warm %d / cold %d, predicted %d / %d\nvictim: %s",
					r.Seed, dir.name, warm, cold,
					dir.cost.WarmSwitchPoints, dir.cost.ColdSwitchPoints, r.Describe())
			}
		}
	}
	t.Logf("validated %d switch victims against counter reads", len(results))
}

// TestSwitchCheckerOnCorpus requires the dsb-mite-switch checker to
// fire at the generated branch with the tail chain's region count
// priced at the full switch bubble.
func TestSwitchCheckerOnCorpus(t *testing.T) {
	bubble := 1 + Config().Costs().SwitchPenalty()
	for seed := uint64(1); seed <= 25; seed++ {
		v, err := GenerateShape(seed, ShapeSwitch)
		if err != nil {
			t.Fatal(err)
		}
		r := staticlint.Lint(v.Prog, Spec(), Config())
		var hit *staticlint.Finding
		for i, f := range r.ByChecker("dsb-mite-switch") {
			if f.Addr == v.Branch {
				hit = &r.ByChecker("dsb-mite-switch")[i]
			}
		}
		if hit == nil {
			t.Fatalf("seed %d: no switch-point finding at branch %#x", seed, v.Branch)
		}
		if want := v.TakenUnc.Regions() * bubble; hit.SwitchDeltaCycles != want {
			t.Errorf("seed %d: switch delta %+d, want %+d", seed, hit.SwitchDeltaCycles, want)
		}
	}
}

// TestIndirectCorpus holds the indirect-call victims to the same
// differential contract as every other shape: the havoc fallback must
// carry taint across the CALLI and the stitched fetch path must price
// the callee exactly.
func TestIndirectCorpus(t *testing.T) {
	results, err := RunShapeMany(SeedRange(1, corpusSize), 0, ShapeIndirect)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if err := r.Validate(); err != nil {
			t.Errorf("%v", err)
		}
	}
	t.Logf("validated %d indirect-call victims", len(results))
}

// TestIndirectHavocSoundness is the regression pin for the
// interprocedural havoc fallback: the secret loaded before the
// indirect call must still taint the branch after it. If a future
// "precision" change kills register taint across an unresolved CALLI
// instead of havocking it, the secret-branch finding disappears and
// this test fails — missed taint is unsoundness, not precision.
func TestIndirectHavocSoundness(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7, 42} {
		v, err := GenerateShape(seed, ShapeIndirect)
		if err != nil {
			t.Fatal(err)
		}
		r := staticlint.Lint(v.Prog, Spec(), Config())
		var hit *staticlint.Finding
		for i, f := range r.ByChecker("secret-dependent-branch") {
			if f.Addr == v.Branch {
				hit = &r.ByChecker("secret-dependent-branch")[i]
			}
		}
		if hit == nil {
			t.Fatalf("seed %d: branch %#x after indirect call lost its taint (havoc fallback unsound)",
				seed, v.Branch)
		}
		// The CALLI's own target is a constant register move — the
		// havoc fallback must not invent taint on the call itself.
		for _, f := range r.ByChecker("secret-dependent-branch") {
			if f.Addr != v.Branch {
				t.Errorf("seed %d: spurious secret-branch finding at %#x", seed, f.Addr)
			}
		}
	}
}

// TestGenerateShapeDeterministic pins the pinned-shape generator the
// same way TestGenerateDeterministic pins the seed-drawn one.
func TestGenerateShapeDeterministic(t *testing.T) {
	for _, shape := range []Shape{ShapeAlign, ShapeSwitch, ShapeIndirect, ShapeIndirectTable, ShapeIndirectMutual} {
		for _, seed := range []uint64{1, 7, 99} {
			v1, err := GenerateShape(seed, shape)
			if err != nil {
				t.Fatalf("%v seed %d: %v", shape, seed, err)
			}
			v2, err := GenerateShape(seed, shape)
			if err != nil {
				t.Fatalf("%v seed %d: %v", shape, seed, err)
			}
			if v1.Branch != v2.Branch || v1.Helper != v2.Helper || v1.RetSite != v2.RetSite ||
				!reflect.DeepEqual(v1.Taken, v2.Taken) ||
				!reflect.DeepEqual(v1.Fall, v2.Fall) ||
				!reflect.DeepEqual(v1.TakenUnc, v2.TakenUnc) {
				t.Errorf("%v seed %d: generation not deterministic:\n%+v\n%+v", shape, seed, v1, v2)
			}
		}
	}
	if _, err := GenerateShape(1, ShapeIndirectMutual+1); err == nil {
		t.Error("out-of-range shape accepted")
	}
}

// FuzzAlignmentDelta throws random seeds at the pinned alignment shape
// and holds every victim to the acceptance contract plus a nonzero
// align-stall asymmetry — the channel must never degenerate into a
// symmetric victim. The committed corpus keeps the seeds that
// calibrated the shape's geometry (pad-divisor NOP mixes, 1–3 sets ×
// up to 3 ways, straddle on either direction).
func FuzzAlignmentDelta(f *testing.F) {
	for _, seed := range []uint64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 1337} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		r, err := RunShape(seed, ShapeAlign)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := r.Validate(); err != nil {
			t.Error(err)
		}
		d := r.Prediction.TakenCost.AlignStallCycles - r.Prediction.FallCost.AlignStallCycles
		if d == 0 {
			t.Errorf("seed %d: alignment victim has no align-stall asymmetry", seed)
		}
	})
}

// TestIndirectTableCorpus holds the table-dispatch victims to the
// differential contract. Unlike ShapeIndirect's singleton move, the
// dispatch target here is loaded from a two-slot function-pointer
// table, so the divergence finding only exists because the value-set
// resolution proves the complete {hot, decoy} set and joins the hot
// callee's summary across the call.
func TestIndirectTableCorpus(t *testing.T) {
	results, err := RunShapeMany(SeedRange(1, corpusSize), 0, ShapeIndirectTable)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if err := r.Validate(); err != nil {
			t.Errorf("%v", err)
		}
	}
	t.Logf("validated %d table-dispatch victims", len(results))
}

// TestIndirectMutualCorpus holds the mutual-recursion victims to the
// differential contract: the summary fixpoint must converge over the
// resolved A → B → A cycle before the callee's branch can be priced.
func TestIndirectMutualCorpus(t *testing.T) {
	results, err := RunShapeMany(SeedRange(1, corpusSize), 0, ShapeIndirectMutual)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if err := r.Validate(); err != nil {
			t.Errorf("%v", err)
		}
	}
	t.Logf("validated %d mutual-recursion victims", len(results))
}

// TestIndirectTableResolution pins the report side of the tentpole on
// the table shape: exactly one resolved calli whose target set is the
// complete {hot, decoy} pair, a zero havoc rate against a 1.0
// before-rate, and a divergence finding at the generated branch whose
// call chain crosses the resolved indirect frame.
func TestIndirectTableResolution(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		v, err := GenerateShape(seed, ShapeIndirectTable)
		if err != nil {
			t.Fatal(err)
		}
		r := staticlint.Lint(v.Prog, Spec(), Config())
		if len(r.Resolved) != 1 {
			t.Fatalf("seed %d: %d resolved sites, want 1", seed, len(r.Resolved))
		}
		site := r.Resolved[0]
		if site.Kind != "calli" || !reflect.DeepEqual(site.Targets, []uint64{dispatchBase, dispatchDecoy}) {
			t.Errorf("seed %d: resolved %s targets %#x, want calli {%#x, %#x}",
				seed, site.Kind, site.Targets, uint64(dispatchBase), uint64(dispatchDecoy))
		}
		p := r.Precision
		if p == nil || p.IndirectSites != 1 || p.ResolvedSites != 1 || p.HavocSites != 0 ||
			p.HavocRate != 0 || p.HavocRateBefore != 1 {
			t.Errorf("seed %d: precision %+v, want 1 indirect site fully resolved", seed, p)
		}
		assertChainThroughFrame(t, r, v, site.Addr, seed)
	}
}

// TestIndirectMutualResolution pins the report side on the mutual
// shape: the entry dispatch and both never-executed recursion stubs
// resolve (three calli sites, zero havoc), and the secret branch
// inside callee A still traces its chain through the resolved entry
// frame.
func TestIndirectMutualResolution(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		v, err := GenerateShape(seed, ShapeIndirectMutual)
		if err != nil {
			t.Fatal(err)
		}
		r := staticlint.Lint(v.Prog, Spec(), Config())
		if len(r.Resolved) != 3 {
			t.Fatalf("seed %d: %d resolved sites, want 3 (entry + two recursion stubs)", seed, len(r.Resolved))
		}
		targets := map[uint64]bool{}
		for _, site := range r.Resolved {
			if site.Kind != "calli" || len(site.Targets) != 1 {
				t.Errorf("seed %d: resolved %s targets %#x, want singleton calli", seed, site.Kind, site.Targets)
				continue
			}
			targets[site.Targets[0]] = true
		}
		if !targets[mutualABase] || !targets[mutualBBase] {
			t.Errorf("seed %d: resolved target union %v misses a mutual callee", seed, targets)
		}
		p := r.Precision
		if p == nil || p.IndirectSites != 3 || p.ResolvedSites != 3 || p.HavocRate != 0 {
			t.Errorf("seed %d: precision %+v, want 3 indirect sites fully resolved", seed, p)
		}
		var entrySite uint64
		for _, site := range r.Resolved {
			if site.Targets[0] == mutualABase && site.Addr < mutualABase {
				entrySite = site.Addr
			}
		}
		if entrySite == 0 {
			t.Fatalf("seed %d: no resolved entry dispatch site", seed)
		}
		assertChainThroughFrame(t, r, v, entrySite, seed)
	}
}

// assertChainThroughFrame requires the divergence finding at the
// victim's branch to carry a call chain whose final hop is the
// resolved indirect frame: call site at callSite, callee at v.Helper.
func assertChainThroughFrame(t *testing.T, r *staticlint.Report, v *Victim, callSite uint64, seed uint64) {
	t.Helper()
	var hit *staticlint.Finding
	for i, f := range r.ByChecker("dsb-footprint-divergence") {
		if f.Addr == v.Branch {
			hit = &r.ByChecker("dsb-footprint-divergence")[i]
		}
	}
	if hit == nil {
		t.Fatalf("seed %d: no divergence finding at branch %#x through the resolved call", seed, v.Branch)
	}
	if len(hit.CallChain) == 0 {
		t.Fatalf("seed %d: finding at %#x carries no call chain", seed, v.Branch)
	}
	last := hit.CallChain[len(hit.CallChain)-1]
	if last.CallSite != callSite || last.Callee != v.Helper {
		t.Errorf("seed %d: chain tail %#x→%#x, want resolved frame %#x→%#x",
			seed, last.CallSite, last.Callee, callSite, v.Helper)
	}
}

// TestIndirectBPUCrossCheck closes the loop between the static target
// sets and the cycle-level predictor: after running a victim with both
// secret values, every CALLI the BPU trained an indirect target for
// must predict a member of the statically resolved set at that site —
// the static set is an over-approximation of everything the hardware
// predictor ever learns.
func TestIndirectBPUCrossCheck(t *testing.T) {
	for _, shape := range []Shape{ShapeIndirectTable, ShapeIndirectMutual} {
		for seed := uint64(1); seed <= 10; seed++ {
			v, err := GenerateShape(seed, shape)
			if err != nil {
				t.Fatal(err)
			}
			r := staticlint.Lint(v.Prog, Spec(), Config())
			static := map[uint64]map[uint64]bool{}
			for _, site := range r.Resolved {
				set := map[uint64]bool{}
				for _, tgt := range site.Targets {
					set[tgt] = true
				}
				static[site.Addr] = set
			}
			c := cpu.NewWith(DefaultHarness().cpuCfg, nil)
			c.LoadProgram(v.Prog)
			for _, secret := range []int64{0, 1} {
				c.Mem().Write(SecretAddr, 1, secret)
				for i := 0; i < 3; i++ {
					if res := c.Run(0, v.Entry, maxCycles); res.TimedOut {
						t.Fatalf("%v seed %d: run timed out", shape, seed)
					}
				}
			}
			trained := 0
			for _, in := range v.Prog.Insts {
				set, resolved := static[in.Addr]
				if !resolved {
					continue
				}
				tgt, ok := c.BPU(0).PredictIndirect(in.Addr)
				if !ok {
					continue
				}
				trained++
				if !set[tgt] {
					t.Errorf("%v seed %d: BPU trained %#x→%#x outside the static set %v",
						shape, seed, in.Addr, tgt, set)
				}
			}
			if trained == 0 {
				t.Errorf("%v seed %d: BPU trained no resolved site", shape, seed)
			}
		}
	}
}

// FuzzIndirectDelta throws random seeds at the two resolution-gated
// shapes and holds every victim to the acceptance contract — each
// victim only prices at all because the value-set pass proves its
// dispatch sites complete, so any resolution regression surfaces as a
// missing divergence finding before it can skew a delta. The committed
// corpus pins the seeds that calibrated the dispatch-zone geometry.
func FuzzIndirectDelta(f *testing.F) {
	for _, seed := range []uint64{1, 2, 3, 5, 7, 11, 42, 99, 256, 1337} {
		f.Add(seed, true)
		f.Add(seed, false)
	}
	f.Fuzz(func(t *testing.T, seed uint64, table bool) {
		shape := ShapeIndirectMutual
		if table {
			shape = ShapeIndirectTable
		}
		r, err := RunShape(seed, shape)
		if err != nil {
			t.Fatalf("%v seed %d: %v", shape, seed, err)
		}
		if err := r.Validate(); err != nil {
			t.Error(err)
		}
	})
}
