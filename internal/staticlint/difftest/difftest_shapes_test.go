package difftest

import (
	"reflect"
	"testing"

	"deaduops/internal/cpu"
	"deaduops/internal/staticlint"
)

// TestAlignCorpus pins the alignment channel end to end: every
// ShapeAlign victim must hold the differential contract, the predicted
// align-stall asymmetry must point at whichever direction carries the
// window-straddling jumps, and the straddle count must price exactly
// (one straddling jcc per region, JccAlignPenalty cycles each).
func TestAlignCorpus(t *testing.T) {
	results, err := RunShapeMany(SeedRange(1, corpusSize), 0, ShapeAlign)
	if err != nil {
		t.Fatal(err)
	}
	penalty := Config().Decode.JccAlignPenalty
	var straddleTaken, straddleFall int
	for _, r := range results {
		if err := r.Validate(); err != nil {
			t.Errorf("%v", err)
			continue
		}
		v, p := r.Victim, r.Prediction
		delta := p.TakenCost.AlignStallCycles - p.FallCost.AlignStallCycles
		var want int
		switch {
		case v.Taken.JccOffset == 15 && v.Fall.JccOffset != 15:
			want = v.Taken.Regions() * penalty
			straddleTaken++
		case v.Fall.JccOffset == 15 && v.Taken.JccOffset != 15:
			want = -v.Fall.Regions() * penalty
			straddleFall++
		default:
			t.Fatalf("seed %d: no single straddling direction (taken jcc@%d, fall jcc@%d)",
				r.Seed, v.Taken.JccOffset, v.Fall.JccOffset)
		}
		if delta != want {
			t.Errorf("seed %d: predicted align delta %+d, want %+d\nvictim: %s",
				r.Seed, delta, want, r.Describe())
		}
		if p.TakenCost.AlignJccs != v.Taken.Regions()*btoi(v.Taken.JccOffset == 15) ||
			p.FallCost.AlignJccs != v.Fall.Regions()*btoi(v.Fall.JccOffset == 15) {
			t.Errorf("seed %d: straddle counts taken %d / fall %d for jcc@%d / jcc@%d",
				r.Seed, p.TakenCost.AlignJccs, p.FallCost.AlignJccs,
				v.Taken.JccOffset, v.Fall.JccOffset)
		}
	}
	if straddleTaken == 0 || straddleFall == 0 {
		t.Errorf("corpus covers only one straddle direction: taken %d, fall %d",
			straddleTaken, straddleFall)
	}
	t.Logf("validated %d align victims (%d straddle-taken, %d straddle-fall)",
		len(results), straddleTaken, straddleFall)
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestAlignCheckerOnCorpus runs the jump-alignment checker over a
// sample of generated victims and requires a finding at the generated
// branch whose align delta matches the prediction's breakout.
func TestAlignCheckerOnCorpus(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		v, err := GenerateShape(seed, ShapeAlign)
		if err != nil {
			t.Fatal(err)
		}
		r := staticlint.Lint(v.Prog, Spec(), Config())
		var hit *staticlint.Finding
		for i, f := range r.ByChecker("secret-dependent-jump-alignment") {
			if f.Addr == v.Branch {
				hit = &r.ByChecker("secret-dependent-jump-alignment")[i]
			}
		}
		if hit == nil {
			t.Fatalf("seed %d: no jump-alignment finding at branch %#x", seed, v.Branch)
		}
		if (hit.AlignDeltaCycles > 0) != (v.Taken.JccOffset == 15) || hit.AlignDeltaCycles == 0 {
			t.Errorf("seed %d: align delta %+d but straddling side is taken=%v",
				seed, hit.AlignDeltaCycles, v.Taken.JccOffset == 15)
		}
	}
}

// TestSwitchCorpus pins the DSB↔MITE switch-point channel: every
// ShapeSwitch victim must hold the cycle contract, and the predicted
// per-direction switch-point counts must equal the simulator's
// DSB2MITESwitches counter reads exactly — the switch contract is
// counter equality, not tolerance.
func TestSwitchCorpus(t *testing.T) {
	results, err := RunShapeMany(SeedRange(1, corpusSize), 0, ShapeSwitch)
	if err != nil {
		t.Fatal(err)
	}
	arena := new(cpu.Arena)
	for _, r := range results {
		if err := r.Validate(); err != nil {
			t.Errorf("%v", err)
			continue
		}
		v, p := r.Victim, r.Prediction
		if v.TakenUnc == nil {
			t.Fatalf("seed %d: switch victim has no uncacheable taken tail", r.Seed)
		}
		diff := p.TakenCost.WarmSwitchPoints - p.FallCost.WarmSwitchPoints
		if want := v.TakenUnc.Regions(); diff != want {
			t.Errorf("seed %d: predicted warm switch-point diff %d, want %d (uncacheable tail regions)",
				r.Seed, diff, want)
		}
		for _, dir := range []struct {
			name   string
			secret int64
			cost   staticlint.PathCost
		}{
			{"taken", 1, p.TakenCost},
			{"fall", 0, p.FallCost},
		} {
			warm, cold, err := MeasureSwitches(v, dir.secret, arena)
			if err != nil {
				t.Fatal(err)
			}
			if warm != dir.cost.WarmSwitchPoints || cold != dir.cost.ColdSwitchPoints {
				t.Errorf("seed %d %s: measured switches warm %d / cold %d, predicted %d / %d\nvictim: %s",
					r.Seed, dir.name, warm, cold,
					dir.cost.WarmSwitchPoints, dir.cost.ColdSwitchPoints, r.Describe())
			}
		}
	}
	t.Logf("validated %d switch victims against counter reads", len(results))
}

// TestSwitchCheckerOnCorpus requires the dsb-mite-switch checker to
// fire at the generated branch with the tail chain's region count
// priced at the full switch bubble.
func TestSwitchCheckerOnCorpus(t *testing.T) {
	bubble := 1 + Config().Costs().SwitchPenalty()
	for seed := uint64(1); seed <= 25; seed++ {
		v, err := GenerateShape(seed, ShapeSwitch)
		if err != nil {
			t.Fatal(err)
		}
		r := staticlint.Lint(v.Prog, Spec(), Config())
		var hit *staticlint.Finding
		for i, f := range r.ByChecker("dsb-mite-switch") {
			if f.Addr == v.Branch {
				hit = &r.ByChecker("dsb-mite-switch")[i]
			}
		}
		if hit == nil {
			t.Fatalf("seed %d: no switch-point finding at branch %#x", seed, v.Branch)
		}
		if want := v.TakenUnc.Regions() * bubble; hit.SwitchDeltaCycles != want {
			t.Errorf("seed %d: switch delta %+d, want %+d", seed, hit.SwitchDeltaCycles, want)
		}
	}
}

// TestIndirectCorpus holds the indirect-call victims to the same
// differential contract as every other shape: the havoc fallback must
// carry taint across the CALLI and the stitched fetch path must price
// the callee exactly.
func TestIndirectCorpus(t *testing.T) {
	results, err := RunShapeMany(SeedRange(1, corpusSize), 0, ShapeIndirect)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if err := r.Validate(); err != nil {
			t.Errorf("%v", err)
		}
	}
	t.Logf("validated %d indirect-call victims", len(results))
}

// TestIndirectHavocSoundness is the regression pin for the
// interprocedural havoc fallback: the secret loaded before the
// indirect call must still taint the branch after it. If a future
// "precision" change kills register taint across an unresolved CALLI
// instead of havocking it, the secret-branch finding disappears and
// this test fails — missed taint is unsoundness, not precision.
func TestIndirectHavocSoundness(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7, 42} {
		v, err := GenerateShape(seed, ShapeIndirect)
		if err != nil {
			t.Fatal(err)
		}
		r := staticlint.Lint(v.Prog, Spec(), Config())
		var hit *staticlint.Finding
		for i, f := range r.ByChecker("secret-dependent-branch") {
			if f.Addr == v.Branch {
				hit = &r.ByChecker("secret-dependent-branch")[i]
			}
		}
		if hit == nil {
			t.Fatalf("seed %d: branch %#x after indirect call lost its taint (havoc fallback unsound)",
				seed, v.Branch)
		}
		// The CALLI's own target is a constant register move — the
		// havoc fallback must not invent taint on the call itself.
		for _, f := range r.ByChecker("secret-dependent-branch") {
			if f.Addr != v.Branch {
				t.Errorf("seed %d: spurious secret-branch finding at %#x", seed, f.Addr)
			}
		}
	}
}

// TestGenerateShapeDeterministic pins the pinned-shape generator the
// same way TestGenerateDeterministic pins the seed-drawn one.
func TestGenerateShapeDeterministic(t *testing.T) {
	for _, shape := range []Shape{ShapeAlign, ShapeSwitch, ShapeIndirect} {
		for _, seed := range []uint64{1, 7, 99} {
			v1, err := GenerateShape(seed, shape)
			if err != nil {
				t.Fatalf("%v seed %d: %v", shape, seed, err)
			}
			v2, err := GenerateShape(seed, shape)
			if err != nil {
				t.Fatalf("%v seed %d: %v", shape, seed, err)
			}
			if v1.Branch != v2.Branch || v1.Helper != v2.Helper || v1.RetSite != v2.RetSite ||
				!reflect.DeepEqual(v1.Taken, v2.Taken) ||
				!reflect.DeepEqual(v1.Fall, v2.Fall) ||
				!reflect.DeepEqual(v1.TakenUnc, v2.TakenUnc) {
				t.Errorf("%v seed %d: generation not deterministic:\n%+v\n%+v", shape, seed, v1, v2)
			}
		}
	}
	if _, err := GenerateShape(1, ShapeIndirect+1); err == nil {
		t.Error("out-of-range shape accepted")
	}
}

// FuzzAlignmentDelta throws random seeds at the pinned alignment shape
// and holds every victim to the acceptance contract plus a nonzero
// align-stall asymmetry — the channel must never degenerate into a
// symmetric victim. The committed corpus keeps the seeds that
// calibrated the shape's geometry (pad-divisor NOP mixes, 1–3 sets ×
// up to 3 ways, straddle on either direction).
func FuzzAlignmentDelta(f *testing.F) {
	for _, seed := range []uint64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 1337} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		r, err := RunShape(seed, ShapeAlign)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := r.Validate(); err != nil {
			t.Error(err)
		}
		d := r.Prediction.TakenCost.AlignStallCycles - r.Prediction.FallCost.AlignStallCycles
		if d == 0 {
			t.Errorf("seed %d: alignment victim has no align-stall asymmetry", seed)
		}
	})
}
