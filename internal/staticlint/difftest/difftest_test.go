package difftest

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// corpusSize is how many generated victims the corpus test validates in
// plain `go test` mode — every one must satisfy the acceptance
// contract (sign agreement and ±25% accuracy per direction).
const corpusSize = 200

func TestDifferentialCorpus(t *testing.T) {
	worst := 0.0
	results, err := RunMany(SeedRange(1, corpusSize), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if err := r.Validate(); err != nil {
			t.Errorf("%v", err)
			continue
		}
		for _, d := range []struct{ pred, meas int }{
			{r.PredTaken, r.MeasTaken},
			{r.PredFall, r.MeasFall},
		} {
			off := float64(d.pred-d.meas) / float64(d.meas)
			if off < 0 {
				off = -off
			}
			if off > worst {
				worst = off
			}
		}
	}
	t.Logf("validated %d victims; worst relative error %.2f%%", corpusSize, 100*worst)
}

func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 4, 8, 1337} {
		v1, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		v2, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v1.Branch != v2.Branch || v1.Shape != v2.Shape ||
			!reflect.DeepEqual(v1.Taken, v2.Taken) ||
			!reflect.DeepEqual(v1.Fall, v2.Fall) ||
			!reflect.DeepEqual(v1.Suffix, v2.Suffix) ||
			!reflect.DeepEqual(v1.TakenUnc, v2.TakenUnc) ||
			!reflect.DeepEqual(v1.FallUnc, v2.FallUnc) {
			t.Errorf("seed %d: generation not deterministic:\n%+v\n%+v", seed, v1, v2)
		}
		p1, err := Predict(v1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p2, err := Predict(v2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p1.Taken != p2.Taken || p1.Fall != p2.Fall {
			t.Errorf("seed %d: prediction not deterministic: %d/%d vs %d/%d",
				seed, p1.Taken, p1.Fall, p2.Taken, p2.Fall)
		}
	}
}

// canonicalSeeds pin one victim per control-flow shape: seed 19 is a
// leaf, seed 0 branches in a callee on a register argument, seed 5
// branches in a callee on a reloaded spill, seed 3 nests a second
// secret branch, seed 2 rejoins a shared suffix, and seed 1 drains
// each direction into an uncacheable tail chain. Their predicted and
// measured deltas are pinned in testdata/canonical.golden; run with
// -update after an intentional cost-model change.
var canonicalSeeds = []uint64{0, 1, 2, 3, 5, 19}

type canonicalRecord struct {
	Seed      uint64 `json:"seed"`
	Victim    string `json:"victim"`
	PredTaken int    `json:"predicted_taken_delta_cycles"`
	PredFall  int    `json:"predicted_fallthrough_delta_cycles"`
	MeasTaken int    `json:"measured_taken_delta_cycles"`
	MeasFall  int    `json:"measured_fallthrough_delta_cycles"`
}

func TestCanonicalGolden(t *testing.T) {
	var records []canonicalRecord
	for _, seed := range canonicalSeeds {
		r, err := Run(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("canonical victim no longer validates: %v", err)
		}
		records = append(records, canonicalRecord{
			Seed:      r.Seed,
			Victim:    r.Describe(),
			PredTaken: r.PredTaken,
			PredFall:  r.PredFall,
			MeasTaken: r.MeasTaken,
			MeasFall:  r.MeasFall,
		})
	}
	got, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "canonical.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("canonical predictions drifted from golden:\ngot:\n%swant:\n%s", got, want)
	}
}

// FuzzPredictedDelta throws random seeds at the generator and holds
// every victim to the acceptance contract. The committed corpus keeps
// the counterexamples found while calibrating the cost model — seeds 9,
// 10, 15, and 52 historically exposed the pipeline-fill lag, per-set
// capacity overflow, and the model's worst rounding cases (their
// decoded victims changed when the shape draw was prepended to the
// stream, but they stay as regression anchors) — plus seed 6, a
// callee-spill victim whose reload is subject to the backend's
// load-after-store ordering stall, and seed 17, a shared-suffix victim
// whose footprints diverge only in a prefix. Seed 220 (testdata corpus)
// originally pinned the SignFloor clause with a near-tie rounded to
// opposite signs; it stays as a near-tie anchor. Seeds 1, 61, 88, and
// 199 are uncacheable-shape victims whose dense single-byte tails
// decode faster than the backend drains: under per-segment summing
// they under-predicted each direction's delta by a 26–46% retire-tail
// gap, which is what forced whole-run pricing onto the cycle-for-cycle
// delivery/drain race (decode.RunRace).
func FuzzPredictedDelta(f *testing.F) {
	for _, seed := range []uint64{1, 4, 6, 8, 9, 10, 15, 17, 52, 61, 88, 199, 1337} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		r, err := Run(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := r.Validate(); err != nil {
			t.Error(err)
		}
	})
}
