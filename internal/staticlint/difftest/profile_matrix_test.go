package difftest

// profile_matrix_test.go runs the package's differential contracts
// under every registered front-end profile, not just the default
// Skylake model the package-level entry points are frozen to. The
// matrix is filtered by the DEADUOPS_PROFILE environment variable
// (profile.Matrix), which is how CI runs one profile per job. Per
// profile the expectations fork where the microarchitectures genuinely
// differ: profiles with JccAlignPenalty == 0 must price a zero
// alignment delta and raise no jump-alignment findings, and the no-DSB
// control profile must measure exactly zero refill deltas, raise no
// footprint-divergence findings, and refuse the prime+probe protocol —
// while the purely decode-side alignment findings survive it.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"deaduops/internal/cpu"
	"deaduops/internal/profile"
	"deaduops/internal/staticlint"
)

// matrixShapeSeeds bounds the pinned-shape and attacker-side corpora
// per profile; the headline refill contract runs the full corpusSize.
const matrixShapeSeeds = 50

func matrixProfiles(t *testing.T) []profile.Profile {
	t.Helper()
	ps, err := profile.Matrix()
	if err != nil {
		t.Fatalf("%s: %v", profile.MatrixEnv, err)
	}
	return ps
}

// TestMatrixDifferentialCorpus is TestDifferentialCorpus across the
// profile matrix: every generated victim under every profile must hold
// that profile's acceptance contract — positive ±Tolerance deltas with
// sign agreement on DSB profiles, exactly-zero deltas on the no-DSB
// control.
func TestMatrixDifferentialCorpus(t *testing.T) {
	for _, p := range matrixProfiles(t) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			h := NewHarness(p)
			results, err := h.RunMany(SeedRange(1, corpusSize), 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				if r.Profile != p.Name {
					t.Fatalf("seed %d: result stamped %q, want %q", r.Seed, r.Profile, p.Name)
				}
				if err := r.Validate(); err != nil {
					t.Errorf("%v", err)
				}
			}
			t.Logf("validated %d victims under %s", len(results), p.Name)
		})
	}
}

// TestMatrixAlignCorpus forks the alignment-channel contract on the
// profile's JccAlignPenalty: straddle-pricing profiles must reproduce
// the exact straddles × penalty delta, and zero-penalty decoders (the
// AMD profiles) must price a zero alignment delta on the very same
// victim shapes while still holding the refill contract.
func TestMatrixAlignCorpus(t *testing.T) {
	for _, p := range matrixProfiles(t) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			h := NewHarness(p)
			results, err := h.RunShapeMany(SeedRange(1, matrixShapeSeeds), 0, ShapeAlign)
			if err != nil {
				t.Fatal(err)
			}
			penalty := p.Decode.JccAlignPenalty
			for _, r := range results {
				if err := r.Validate(); err != nil {
					t.Errorf("%v", err)
					continue
				}
				v, pr := r.Victim, r.Prediction
				delta := pr.TakenCost.AlignStallCycles - pr.FallCost.AlignStallCycles
				var want int
				switch {
				case v.Taken.JccOffset == 15 && v.Fall.JccOffset != 15:
					want = v.Taken.Regions() * penalty
				case v.Fall.JccOffset == 15 && v.Taken.JccOffset != 15:
					want = -v.Fall.Regions() * penalty
				default:
					t.Fatalf("seed %d: no single straddling direction", r.Seed)
				}
				if delta != want {
					t.Errorf("seed %d: predicted align delta %+d, want %+d", r.Seed, delta, want)
				}
			}
		})
	}
}

// TestMatrixAlignChecker pins the finding-level fork: the
// jump-alignment checker fires on every profile that prices the
// straddle penalty — including the no-DSB control, whose decoder is
// still Skylake's — and stays silent on zero-penalty decoders.
func TestMatrixAlignChecker(t *testing.T) {
	for _, p := range matrixProfiles(t) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			h := NewHarness(p)
			for seed := uint64(1); seed <= 10; seed++ {
				v, err := h.GenerateShape(seed, ShapeAlign)
				if err != nil {
					t.Fatal(err)
				}
				r := staticlint.Lint(v.Prog, Spec(), h.Config())
				findings := r.ByChecker("secret-dependent-jump-alignment")
				if p.Decode.JccAlignPenalty <= 0 {
					if len(findings) != 0 {
						t.Errorf("seed %d: %d alignment findings under penalty-free decoder %s",
							seed, len(findings), p.Name)
					}
					continue
				}
				var hit *staticlint.Finding
				for i, f := range findings {
					if f.Addr == v.Branch {
						hit = &findings[i]
					}
				}
				if hit == nil {
					t.Fatalf("seed %d: no jump-alignment finding at branch %#x under %s",
						seed, v.Branch, p.Name)
				}
			}
		})
	}
}

// TestMatrixSwitchCorpus holds the switch-point channel per profile:
// on DSB profiles the predicted warm switch-point asymmetry equals the
// uncacheable tail's region count and the per-direction counters match
// the simulator's DSB2MITESwitches reads exactly; on the no-DSB
// control the machine never leaves MITE, so warm and cold counters
// must be equal and the cycle deltas exactly zero.
func TestMatrixSwitchCorpus(t *testing.T) {
	for _, p := range matrixProfiles(t) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			h := NewHarness(p)
			results, err := h.RunShapeMany(SeedRange(1, matrixShapeSeeds), 0, ShapeSwitch)
			if err != nil {
				t.Fatal(err)
			}
			arena := new(cpu.Arena)
			for _, r := range results {
				if err := r.Validate(); err != nil {
					t.Errorf("%v", err)
					continue
				}
				v, pr := r.Victim, r.Prediction
				if v.TakenUnc == nil {
					t.Fatalf("seed %d: switch victim has no uncacheable taken tail", r.Seed)
				}
				if p.HasDSB() {
					diff := pr.TakenCost.WarmSwitchPoints - pr.FallCost.WarmSwitchPoints
					if want := v.TakenUnc.Regions(); diff != want {
						t.Errorf("seed %d: predicted warm switch-point diff %d, want %d",
							r.Seed, diff, want)
					}
				}
				for _, dir := range []struct {
					name   string
					secret int64
					cost   staticlint.PathCost
				}{
					{"taken", 1, pr.TakenCost},
					{"fall", 0, pr.FallCost},
				} {
					warm, cold, err := h.MeasureSwitches(v, dir.secret, arena)
					if err != nil {
						t.Fatal(err)
					}
					if warm != dir.cost.WarmSwitchPoints || cold != dir.cost.ColdSwitchPoints {
						t.Errorf("seed %d %s: measured switches warm %d / cold %d, predicted %d / %d",
							r.Seed, dir.name, warm, cold,
							dir.cost.WarmSwitchPoints, dir.cost.ColdSwitchPoints)
					}
					if !p.HasDSB() && warm != cold {
						t.Errorf("seed %d %s: no-DSB switch counters diverge warm %d / cold %d",
							r.Seed, dir.name, warm, cold)
					}
				}
			}
		})
	}
}

// TestMatrixProbeCorpus runs the attacker-side harness per DSB
// profile and requires the no-DSB control to refuse the protocol
// outright — a prime+probe result without a DSB would be noise
// dressed as signal.
func TestMatrixProbeCorpus(t *testing.T) {
	for _, p := range matrixProfiles(t) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			h := NewHarness(p)
			if !p.HasDSB() {
				if _, err := h.RunProbeWith(1, nil); err == nil {
					t.Fatal("no-DSB harness accepted a prime+probe run")
				}
				return
			}
			results, err := h.RunProbeMany(SeedRange(1, matrixShapeSeeds), 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				if err := r.Validate(); err != nil {
					t.Errorf("%v", err)
				}
			}
			t.Logf("validated %d probe victims under %s", len(results), p.Name)
		})
	}
}

// TestMatrixNoDSBFindings is the control profile's headline: the
// footprint-divergence checker must go silent when the DSB is off —
// over victims that provably fire it on every DSB profile — while the
// decode-side alignment findings survive untouched.
func TestMatrixNoDSBFindings(t *testing.T) {
	control, err := profile.Get("mite-only")
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarness(control)
	for seed := uint64(1); seed <= 10; seed++ {
		v, err := h.Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		r := staticlint.Lint(v.Prog, Spec(), h.Config())
		if n := len(r.ByChecker("dsb-footprint-divergence")); n != 0 {
			t.Errorf("seed %d: %d footprint-divergence findings with the DSB disabled", seed, n)
		}
	}
	for seed := uint64(1); seed <= 10; seed++ {
		v, err := h.GenerateShape(seed, ShapeAlign)
		if err != nil {
			t.Fatal(err)
		}
		r := staticlint.Lint(v.Prog, Spec(), h.Config())
		var hit bool
		for _, f := range r.ByChecker("secret-dependent-jump-alignment") {
			if f.Addr == v.Branch {
				hit = true
			}
		}
		if !hit {
			t.Errorf("seed %d: alignment finding did not survive the no-DSB control", seed)
		}
	}
}

// TestMatrixDeterminism pins byte-identical reproducibility per
// profile: the corpus runner must return the same results at any
// worker count, and re-running a seed must reproduce it exactly.
func TestMatrixDeterminism(t *testing.T) {
	seeds := SeedRange(1, 16)
	for _, p := range matrixProfiles(t) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			h := NewHarness(p)
			serial, err := h.RunMany(seeds, 1)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := h.RunMany(seeds, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial) != len(parallel) {
				t.Fatalf("result count diverges: %d vs %d", len(serial), len(parallel))
			}
			for i := range serial {
				s, q := serial[i], parallel[i]
				if s.Seed != q.Seed || s.PredTaken != q.PredTaken || s.PredFall != q.PredFall ||
					s.MeasTaken != q.MeasTaken || s.MeasFall != q.MeasFall ||
					s.Profile != q.Profile || s.NoDSB != q.NoDSB {
					t.Errorf("seed %d: results diverge across worker counts:\n1 worker: %+v\n4 workers: %+v",
						s.Seed, s, q)
				}
			}
		})
	}
}

// TestMatrixCanonicalGolden pins the canonical seeds' deltas per
// non-default profile in testdata/canonical_<profile>.golden — the
// default profile keeps its historical canonical.golden, asserted
// unchanged by TestCanonicalGolden. Run with -update after an
// intentional cost-model or profile-geometry change.
func TestMatrixCanonicalGolden(t *testing.T) {
	def := profile.Default().Name
	for _, p := range matrixProfiles(t) {
		p := p
		if p.Name == def {
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			h := NewHarness(p)
			var records []canonicalRecord
			for _, seed := range canonicalSeeds {
				r, err := h.RunWith(seed, nil)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := r.Validate(); err != nil {
					t.Fatalf("canonical victim no longer validates: %v", err)
				}
				records = append(records, canonicalRecord{
					Seed:      r.Seed,
					Victim:    r.Describe(),
					PredTaken: r.PredTaken,
					PredFall:  r.PredFall,
					MeasTaken: r.MeasTaken,
					MeasFall:  r.MeasFall,
				})
			}
			got, err := json.MarshalIndent(records, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			golden := filepath.Join("testdata", fmt.Sprintf("canonical_%s.golden", p.Name))
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if string(got) != string(want) {
				t.Errorf("%s canonical predictions drifted from golden:\ngot:\n%swant:\n%s",
					p.Name, got, want)
			}
		})
	}
}

// TestMatrixIndirectCorpus holds the resolution-dependent shapes to
// the differential contract per profile: the table dispatch and the
// mutual-recursion cycle must price within tolerance on every DSB
// profile and measure exactly-zero deltas on the no-DSB control. The
// CI shards (DEADUOPS_PROFILE pinning one profile) run the full
// 200-seed corpus — the acceptance contract for skylake, zen, and
// mite-only — while the unfiltered all-profiles run (the -race pass)
// uses the same matrixShapeSeeds bound as the other shape corpora to
// stay inside the package test budget; three shapes across five
// profiles at full size is the one combination that does not fit. The
// value-set resolution itself is frontend-independent, so a
// per-profile spot check also pins a zero havoc rate.
func TestMatrixIndirectCorpus(t *testing.T) {
	seeds := matrixShapeSeeds
	if os.Getenv(profile.MatrixEnv) != "" {
		seeds = corpusSize
	}
	for _, p := range matrixProfiles(t) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			h := NewHarness(p)
			for _, shape := range []Shape{ShapeIndirect, ShapeIndirectTable, ShapeIndirectMutual} {
				results, err := h.RunShapeMany(SeedRange(1, uint64(seeds)), 0, shape)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range results {
					if err := r.Validate(); err != nil {
						t.Errorf("%v", err)
					}
				}
				t.Logf("validated %d %v victims under %s", len(results), shape, p.Name)
			}
			for seed := uint64(1); seed <= 5; seed++ {
				for _, shape := range []Shape{ShapeIndirectTable, ShapeIndirectMutual} {
					v, err := h.GenerateShape(seed, shape)
					if err != nil {
						t.Fatal(err)
					}
					r := staticlint.Lint(v.Prog, Spec(), h.Config())
					if r.Precision == nil || r.Precision.HavocRate != 0 {
						t.Errorf("%v seed %d under %s: precision %+v, want zero havoc rate",
							shape, seed, p.Name, r.Precision)
					}
				}
			}
		})
	}
}
