package difftest

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestRunManyDeterminism is the differential-corpus half of the
// parallel-sweep gate: the same seed list run sequentially and across
// a worker pool must produce deeply equal results — and identical JSON
// — because every seed builds its own victim and simulator. Run under
// -race in CI, this also shakes out shared state between seeds.
func TestRunManyDeterminism(t *testing.T) {
	seeds := SeedRange(1, 20)
	seq, err := RunMany(seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMany(seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel results differ from sequential:\nsequential: %+v\nparallel: %+v", seq, par)
	}
	sj, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Error("parallel JSON differs from sequential")
	}
}

// TestRunProbeManyDeterminism is the receiver-model half of the gate.
func TestRunProbeManyDeterminism(t *testing.T) {
	seeds := SeedRange(1, 20)
	seq, err := RunProbeMany(seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunProbeMany(seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel probe results differ from sequential")
	}
}
