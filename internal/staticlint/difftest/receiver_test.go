package difftest

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestProbeCorpus holds the receiver model to the acceptance contract
// over the same corpus the refill-delta harness validates: for every
// generated victim, the predicted hit probe and each direction's
// predicted victim-perturbed probe must land within Tolerance of the
// measured attack protocol, with sign agreement on the cross-direction
// asymmetry. In practice the model is cycle-exact for these victims
// (their non-footprint code avoids the probed sets); the log line
// reports how far measurement ever strayed.
func TestProbeCorpus(t *testing.T) {
	worst := 0.0
	exact := 0
	results, err := RunProbeMany(SeedRange(1, corpusSize), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if err := r.Validate(); err != nil {
			t.Errorf("%v", err)
			continue
		}
		allExact := true
		for _, d := range []struct{ pred, meas int }{
			{r.Pred.HitCycles, r.MeasHitTaken},
			{r.Pred.HitCycles, r.MeasHitFall},
			{r.Pred.Taken.Cycles, r.MeasTaken},
			{r.Pred.Fall.Cycles, r.MeasFall},
		} {
			if d.pred != d.meas {
				allExact = false
			}
			off := float64(d.pred-d.meas) / float64(d.meas)
			if off < 0 {
				off = -off
			}
			if off > worst {
				worst = off
			}
		}
		if allExact {
			exact++
		}
	}
	t.Logf("validated %d victims; %d cycle-exact; worst relative error %.2f%%",
		corpusSize, exact, 100*worst)
}

type probeRecord struct {
	Seed     uint64 `json:"seed"`
	Victim   string `json:"victim"`
	Hit      int    `json:"predicted_hit_probe_cycles"`
	Taken    int    `json:"predicted_taken_probe_cycles"`
	Fall     int    `json:"predicted_fallthrough_probe_cycles"`
	MeasHitT int    `json:"measured_hit_probe_cycles_taken_run"`
	MeasHitF int    `json:"measured_hit_probe_cycles_fallthrough_run"`
	MeasT    int    `json:"measured_taken_probe_cycles"`
	MeasF    int    `json:"measured_fallthrough_probe_cycles"`
}

// TestProbeGolden pins the attacker-observed probe cycles of the same
// canonical per-shape victims TestCanonicalGolden pins refill deltas
// for; run with -update after an intentional receiver-model change.
func TestProbeGolden(t *testing.T) {
	var records []probeRecord
	for _, seed := range canonicalSeeds {
		r, err := RunProbe(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("canonical victim no longer validates: %v", err)
		}
		records = append(records, probeRecord{
			Seed:     r.Seed,
			Victim:   r.Describe(),
			Hit:      r.Pred.HitCycles,
			Taken:    r.Pred.Taken.Cycles,
			Fall:     r.Pred.Fall.Cycles,
			MeasHitT: r.MeasHitTaken,
			MeasHitF: r.MeasHitFall,
			MeasT:    r.MeasTaken,
			MeasF:    r.MeasFall,
		})
	}
	got, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "probe.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("canonical probe predictions drifted from golden:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestProbeHistogramConsistency checks internal coherence of the
// emitted histograms against what the harness measured: the histogram
// claims distinguishability exactly when its separation margin clears
// the floor, and a distinguishable prediction implies the measured
// protocol actually yields probes the predicted direction cut
// classifies correctly (hit probes below the cut, the slower
// direction's miss probe at or above it).
func TestProbeHistogramConsistency(t *testing.T) {
	for _, seed := range canonicalSeeds {
		r, err := RunProbe(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h := r.Pred
		if (h.SeparationMargin >= h.SeparationFloor) != h.Distinguishable {
			t.Errorf("seed %d: margin %.2f vs floor %.2f inconsistent with distinguishable=%v",
				seed, h.SeparationMargin, h.SeparationFloor, h.Distinguishable)
		}
		if !h.Distinguishable {
			continue
		}
		cut := h.DirectionCut
		if !(float64(r.MeasHitTaken) < cut && float64(r.MeasHitFall) < cut) {
			t.Errorf("seed %d: measured hit probes %d/%d not below predicted direction cut %.1f",
				seed, r.MeasHitTaken, r.MeasHitFall, cut)
		}
		slow := r.MeasTaken
		if r.MeasFall > slow {
			slow = r.MeasFall
		}
		if float64(slow) < cut {
			t.Errorf("seed %d: slower measured direction probe %d below predicted direction cut %.1f",
				seed, slow, cut)
		}
	}
}

// FuzzProbeModel throws random seeds at the generator and holds the
// receiver model's probe predictions to the acceptance contract. The
// committed seeds mirror the refill-delta fuzz anchors: one victim per
// shape (0 callee-reg, 1 uncacheable, 5 callee-spill, 7 nested, 9
// shared-suffix, 19 leaf) plus 220, the refill harness's near-tie
// anchor.
func FuzzProbeModel(f *testing.F) {
	for _, seed := range []uint64{0, 1, 5, 7, 9, 19, 220} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		r, err := RunProbe(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := r.Validate(); err != nil {
			t.Error(err)
		}
	})
}
