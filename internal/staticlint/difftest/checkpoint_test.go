package difftest

// checkpoint_test.go gates the two perf machineries this package rides
// on: the event-driven cycle-skip fast path (TestSkipCyclesEquivalence
// proves skip on/off is bit-identical over the full corpus, per
// profile) and the checkpoint-based PointRunner
// (TestPointRunnerMatchesMeasure proves it reproduces the classic
// fresh-core-per-call entry points exactly, including on repeat
// measurements served from trained checkpoints).

import (
	"fmt"
	"testing"

	"deaduops/internal/cpu"
	"deaduops/internal/parsweep"
	"deaduops/internal/perfctr"
)

// measureSequence replays MeasureDirectionWith's exact run sequence —
// train ×trainRuns, warm, flush, cold — on a core built from cfg,
// returning every run's full RunResult for byte-level comparison.
func measureSequence(cfg cpu.Config, v *Victim, a *cpu.Arena, secret int64) ([trainRuns + 2]cpu.RunResult, error) {
	var out [trainRuns + 2]cpu.RunResult
	c := cpu.NewWith(cfg, a)
	c.LoadProgram(v.Prog)
	c.Mem().Write(SecretAddr, 1, secret)
	for i := 0; i < trainRuns+1; i++ {
		out[i] = c.Run(0, v.Entry, maxCycles)
	}
	c.FlushUopCache()
	out[trainRuns+1] = c.Run(0, v.Entry, maxCycles)
	for i, r := range out {
		if r.TimedOut {
			return out, fmt.Errorf("seed %d: run %d timed out", v.Seed, i)
		}
	}
	return out, nil
}

// equalModuloSkip compares two RunResults field by field and counter
// by counter, ignoring only SkippedCycles — the fast path's audit
// counter, the one value allowed (required) to differ.
func equalModuloSkip(a, b cpu.RunResult) error {
	if a.Cycles != b.Cycles || a.Retired != b.Retired || a.TimedOut != b.TimedOut {
		return fmt.Errorf("results diverged: %+v vs %+v", a, b)
	}
	for e := perfctr.Event(0); e < perfctr.NumEvents; e++ {
		if e == perfctr.SkippedCycles {
			continue
		}
		if x, y := a.Counters.Get(e), b.Counters.Get(e); x != y {
			return fmt.Errorf("counter %d diverged: %d vs %d", e, x, y)
		}
	}
	return nil
}

// TestSkipCyclesEquivalence is the acceptance gate for the fast path:
// over the full 200-seed corpus, both secret directions, and every
// profile in the matrix, a core with the fast path enabled must
// produce runs bit-identical — cycles, retirement, every counter
// except the SkippedCycles audit — to a core ticking every cycle. It
// also asserts the path is live: across the corpus the skipped-cycle
// total must be nonzero, or the equivalence would be vacuous.
func TestSkipCyclesEquivalence(t *testing.T) {
	for _, p := range matrixProfiles(t) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			h := NewHarness(p)
			cfgOn := h.CPUConfig()
			cfgOff := h.WithoutCycleSkip().CPUConfig()
			skipped, err := parsweep.MapArena(parsweep.Options{}, corpusSize,
				func() *cpu.Arena { return new(cpu.Arena) },
				func(a *cpu.Arena, i int) (uint64, error) {
					v, err := h.Generate(uint64(i + 1))
					if err != nil {
						return 0, err
					}
					var total uint64
					for _, secret := range []int64{1, 0} {
						on, err := measureSequence(cfgOn, v, a, secret)
						if err != nil {
							return 0, err
						}
						off, err := measureSequence(cfgOff, v, a, secret)
						if err != nil {
							return 0, err
						}
						for r := range on {
							if err := equalModuloSkip(on[r], off[r]); err != nil {
								return 0, fmt.Errorf("seed %d secret %d run %d: %w", v.Seed, secret, r, err)
							}
							if got := off[r].Counters.Get(perfctr.SkippedCycles); got != 0 {
								return 0, fmt.Errorf("seed %d: disabled fast path skipped %d cycles", v.Seed, got)
							}
							total += on[r].Counters.Get(perfctr.SkippedCycles)
						}
					}
					return total, nil
				})
			if err != nil {
				t.Fatal(err)
			}
			var total uint64
			for _, s := range skipped {
				total += s
			}
			if total == 0 {
				t.Fatalf("fast path never engaged across %d seeds under %s", corpusSize, p.Name)
			}
			t.Logf("%s: %d cycles skipped across the corpus, all runs bit-identical", p.Name, total)
		})
	}
}

// pointSeeds bounds the PointRunner equality corpus per profile; each
// seed costs four classic fresh-core measurements plus four
// checkpointed ones.
const pointSeeds = 40

// TestPointRunnerMatchesMeasure proves the checkpointed PointRunner
// reproduces the classic entry points exactly: per (seed, secret), its
// Delta must equal MeasureDirectionWith and its switch counts must
// equal MeasureSwitches — on the first call (trained from the pristine
// checkpoint) and again on a repeat call (served from the trained
// checkpoint).
func TestPointRunnerMatchesMeasure(t *testing.T) {
	for _, p := range matrixProfiles(t) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			h := NewHarness(p)
			_, err := parsweep.MapArena(parsweep.Options{}, pointSeeds,
				func() *cpu.Arena { return new(cpu.Arena) },
				func(a *cpu.Arena, i int) (struct{}, error) {
					var zero struct{}
					v, err := h.Generate(uint64(i + 1))
					if err != nil {
						return zero, err
					}
					r := h.NewPointRunner(v, a)
					for _, secret := range []int64{1, 0} {
						delta, err := h.MeasureDirectionWith(v, secret, a)
						if err != nil {
							return zero, err
						}
						warm, cold, err := h.MeasureSwitches(v, secret, a)
						if err != nil {
							return zero, err
						}
						for pass := 0; pass < 2; pass++ {
							pt, err := r.Measure(secret)
							if err != nil {
								return zero, err
							}
							if pt.Delta != delta || pt.WarmSwitches != warm || pt.ColdSwitches != cold {
								return zero, fmt.Errorf(
									"seed %d secret %d pass %d: point {Δ%d w%d c%d}, classic {Δ%d w%d c%d}",
									v.Seed, secret, pass, pt.Delta, pt.WarmSwitches, pt.ColdSwitches,
									delta, warm, cold)
							}
							if pt.TotalCycles == 0 {
								return zero, fmt.Errorf("seed %d: empty measurement window", v.Seed)
							}
						}
					}
					return zero, nil
				})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
