// Package difftest is the differential validation harness for the
// static leakage quantifier: it generates random secret-branching
// victim programs with internal/codegen, prices both secret directions
// with the static predictor (internal/staticlint), measures the same
// probe-cycle deltas on the cycle-level simulator (internal/cpu), and
// asserts that prediction and measurement agree in sign and within a
// stated tolerance. Every victim is a miniature of the paper's §VI-A
// pattern: a branch on a loaded secret byte whose two successor paths
// are micro-op cache chains with different set/way footprints and
// different legacy-decode amplification (plain NOPs, LCP NOPs, or an
// MSROM macro-op per region).
package difftest

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
	"deaduops/internal/staticlint"
	"deaduops/internal/uopcache"
)

const (
	// SecretAddr holds the one secret byte a generated victim branches
	// on; 0 steers the fall-through path, 1 the taken path.
	SecretAddr = 0x9000
	// spillAddr is the slot ShapeCalleeSpill victims spill the secret
	// byte through before the call.
	spillAddr = 0x9100

	// entryBase is the (WayStride-aligned) address of the entry region:
	// it loads the secret, compares it, pads, and ends with the
	// secret-dependent JNE exactly at the 32-byte region boundary — so
	// both directions share an identical entry trace and the static
	// fetch segmentation matches the simulator's bit for bit.
	entryBase = 0x10000
	// nestedStubAddr hosts the never-taken target of ShapeNested's
	// second (nested) secret branch, clear of the fall chain's span.
	nestedStubAddr = entryBase + 0x3000
	// calleeBase is the (WayStride-aligned) entry of the callee region
	// for the multi-function shapes: the entry region ends with a CALL
	// here, and the callee's region ends with the secret branch.
	calleeBase = entryBase + 0x4000
	// takenBase hosts the taken-direction chain, clear of the
	// fall-direction chain's largest possible span.
	takenBase = entryBase + 0x8000
	// suffixBase hosts ShapeSharedSuffix's common tail chain both
	// directions rejoin before the exit.
	suffixBase = takenBase + 0x4000
	// uncFallBase/uncTakenBase host ShapeUncacheable's per-direction
	// uncacheable tail chains (single-way, so each stays within one
	// WayStride of its base).
	uncFallBase  = takenBase + 0x8000
	uncTakenBase = takenBase + 0xC000
	// helperBase hosts ShapeIndirect's callee: the entry region ends
	// with an indirect call here, and the secret branch sits in the
	// region fetch returns to. The address is WayStride-aligned and
	// clear of both chains' spans.
	helperBase = entryBase + 0x6000
	// tableAddr is the two-slot function-pointer table
	// ShapeIndirectTable victims build at runtime: slot 0 holds the hot
	// dispatch target, slot 1 the cold decoy. Both slots are written at
	// constant addresses, so the value-set analysis tracks them as
	// strongly-updated cells — the "bounded, read-only target table"
	// pattern the resolution pass exists for.
	tableAddr = 0x9200
	// idxAddr is the dispatch-index byte ShapeIndirectTable victims
	// load: never written, so it reads zero at runtime (slot 0, the hot
	// target) while staying statically unknown — the masked-index
	// pattern resolution must bound without knowing the value.
	idxAddr = 0x9300
	// dispatchBase hosts ShapeIndirectTable's hot dispatch target: its
	// first region ends with the secret branch, whose fall-through
	// streams into the fall chain's first region. dispatchDecoy hosts
	// the cold slot's never-executed target, placed past the largest
	// possible fall-chain span (64-set profiles stride 2 KiB per way)
	// so the resolved target set keeps two members without address
	// collisions.
	dispatchBase  = entryBase + 0x5000
	dispatchDecoy = entryBase + 0x7000
	// mutualABase and mutualBBase host ShapeIndirectMutual's two
	// functions; mutualARec and mutualBRec host their never-executed
	// recursion stubs, each of which calls the *other* function through
	// a register — the resolved indirect edges close a static cycle the
	// summary fixpoint must converge over. The fall chain shares
	// mutualABase, so the stubs sit past its largest possible span.
	mutualABase = entryBase + 0x5000
	mutualARec  = entryBase + 0x6400
	mutualBBase = entryBase + 0x6800
	mutualBRec  = entryBase + 0x6C00
	// exitAddr hosts the shared exit block both chains jump to.
	exitAddr = takenBase + 0x10000

	maxCycles = 200_000
	trainRuns = 3

	// spillPreambleRegions is the number of 14-µop NOP regions the
	// ShapeCalleeSpill callee executes before reloading the spill slot;
	// see the shape's construction for why the reload must trail the
	// store by several retire groups.
	spillPreambleRegions = 3
)

// Shape selects the victim's control-flow skeleton; the generator
// draws it first, so every flavour keeps its own deterministic stream.
type Shape int

// Victim shapes.
const (
	// ShapeLeaf is the original single-function victim: entry region →
	// secret branch → per-direction chain → exit.
	ShapeLeaf Shape = iota
	// ShapeCalleeReg moves the secret branch into a callee; the secret
	// reaches it in a register argument across the CALL.
	ShapeCalleeReg
	// ShapeCalleeSpill also branches in a callee, but the caller spills
	// the secret to memory and zeroes the register — the callee reloads
	// it, so the taint crosses the call through a resolved memory cell.
	ShapeCalleeSpill
	// ShapeNested adds a second, nested secret branch (never taken for
	// the generated secrets) on the fall path.
	ShapeNested
	// ShapeSharedSuffix makes both directions rejoin a shared suffix
	// chain before the exit, so only a prefix of the footprint diverges.
	ShapeSharedSuffix
	// ShapeUncacheable appends a tail chain of uncacheable regions
	// (more µops than MaxLinesPerRegion ways can hold) to each
	// direction: MITE-delivered on every fetch, excluded from the
	// probe-visible footprint, and delta-neutral between warm and cold
	// runs — the placement-rule edge the quantifier must price as zero.
	ShapeUncacheable

	// numRandomShapes bounds the shapes Generate draws from. The shapes
	// below are reached only through GenerateShape: widening the draw
	// would reshuffle every existing fuzz-corpus seed.
	numRandomShapes = 6

	// ShapeAlign pins the two directions' chains to divergent
	// conditional-jump alignments: one direction's regions place a
	// never-taken JCC straddling the 16-byte predecode-window boundary
	// (offset 15), the other's place it wholly inside a window. The
	// chains are otherwise µop-matched flavours, so the alignment stall
	// (decode.Config.JccAlignPenalty, MITE-only) is the asymmetry the
	// secret-dependent-jump-alignment checker must price.
	ShapeAlign Shape = 6
	// ShapeSwitch gives only the taken direction an uncacheable tail
	// chain of 2-4 regions: its warm traversal pays one DSB→MITE
	// switch bubble per tail region while the fall-through pays none —
	// the switch-point-count channel the dsb-mite-switch checker
	// detects, validated against the simulator's
	// dsb2mite_switches.count counter.
	ShapeSwitch Shape = 7
	// ShapeIndirect routes control through an indirect call (CALLI via
	// a register) before the secret branch: the branch sits in the
	// region the call returns to. The resolution pass proves the
	// singleton target (a MOVI-loaded constant), so the secret crosses
	// the call through the resolved callee's summary; when resolution
	// is unavailable (e.g. a capped fixpoint) the site degrades to the
	// interprocedural havoc fallback — the soundness edge this shape
	// originally pinned (an unsound havoc would silently drop the
	// secret and miss the branch).
	ShapeIndirect Shape = 8
	// ShapeIndirectTable dispatches through a two-slot function-pointer
	// table the program itself writes: the dispatch index is a loaded
	// byte masked to one bit, so the value-set analysis must prove the
	// complete {hot, decoy} target set to see through the call. The
	// secret branch sits in the hot target's first region — a havocked
	// site leaves that region an unreached pseudo-entry with no taint,
	// so the divergence finding exists only through resolution.
	ShapeIndirectTable Shape = 9
	// ShapeIndirectMutual routes the secret branch through a resolved
	// indirect call into a function whose never-executed recursion stub
	// indirectly calls a second function, whose own stub indirectly
	// calls the first — a mutual-recursion SCC formed purely by
	// resolved indirect edges, pinning that the summary fixpoint
	// converges over cycles the resolution pass created.
	ShapeIndirectMutual Shape = 10
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case ShapeLeaf:
		return "leaf"
	case ShapeCalleeReg:
		return "callee-reg"
	case ShapeCalleeSpill:
		return "callee-spill"
	case ShapeNested:
		return "nested"
	case ShapeSharedSuffix:
		return "shared-suffix"
	case ShapeUncacheable:
		return "uncacheable"
	case ShapeAlign:
		return "align"
	case ShapeSwitch:
		return "switch"
	case ShapeIndirect:
		return "indirect"
	case ShapeIndirectTable:
		return "indirect-table"
	case ShapeIndirectMutual:
		return "indirect-mutual"
	default:
		return "shape?"
	}
}

// Tolerance is the harness's acceptance contract: each direction's
// predicted refill delta must lie within ±25% of the simulator's
// measured delta (and both must be positive).
const Tolerance = 0.25

// SignFloor is the cross-direction asymmetry magnitude (cycles) below
// which the probe-delta sign check does not apply: the per-direction
// contract already tolerates a few cycles of model rounding on each
// side, so when the two directions cost nearly the same, a ±1–2 cycle
// asymmetry is quantization noise and carries no sign information
// (fuzz seed 220 measured -1 against a predicted +1).
const SignFloor = 3

// Victim is one generated secret-branching program.
type Victim struct {
	Seed   uint64
	Shape  Shape
	Prog   *asm.Program
	Entry  uint64
	Branch uint64 // address of the secret-dependent JCC
	// Taken and Fall are the chain shapes of the two directions.
	Taken, Fall codegen.ChainSpec
	// Suffix is the shared tail chain (ShapeSharedSuffix only).
	Suffix *codegen.ChainSpec
	// TakenUnc and FallUnc are the per-direction uncacheable tail
	// chains (ShapeUncacheable both, ShapeSwitch TakenUnc only).
	TakenUnc, FallUnc *codegen.ChainSpec
	// Helper and RetSite are the indirect shapes' callee entry and (for
	// ShapeIndirect) the return-site address the call resumes at, zero
	// otherwise. The single-target shapes walk straight through their
	// resolved calls; Predict stitches ShapeIndirectTable's fetch path
	// across its two-target dispatch via Helper.
	Helper, RetSite uint64
}

// Spec declares the generated victims' secret byte. The spill slot is
// deliberately NOT declared: ShapeCalleeSpill's taint must reach the
// callee's branch because the engine tracks the store/reload through
// the call, not because the slot itself is secret.
func Spec() staticlint.Spec {
	return staticlint.Spec{
		SecretRanges: []staticlint.MemRange{{Start: SecretAddr, End: SecretAddr + 1}},
	}
}

// Config returns the analysis configuration the default (Skylake)
// harness lints with. Profile-parameterized callers use
// NewHarness(p).Config() instead.
func Config() staticlint.Config {
	return DefaultHarness().Config()
}

// rng is splitmix64, the same deterministic generator internal/ref
// uses, so fuzz corpus seeds reproduce exactly.
type rng struct{ x uint64 }

func (r *rng) next() uint64 {
	r.x += 0x9E3779B97F4A7C15
	z := r.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// pickSets draws n distinct set indices from [lo, hi]; the first one
// is fixed to first when first >= 0 (the fall chain must start in the
// region the branch falls through into).
func pickSets(r *rng, n, lo, hi, first int) []int {
	used := make(map[int]bool)
	var sets []int
	if first >= 0 {
		sets = append(sets, first)
		used[first] = true
	}
	for len(sets) < n {
		s := lo + r.intn(hi-lo+1)
		if used[s] {
			continue
		}
		used[s] = true
		sets = append(sets, s)
	}
	return sets
}

// chainShape draws a random chain for one direction. Region bodies are
// one of three amplification flavours: plain NOPs, LCP NOPs (the tiger
// trick), or NOPs plus one MSROM macro-op; all shapes respect the
// placement rules, so every region is cacheable. The way count is
// capped so one set's regions never need more lines than the set has
// ways — otherwise a trace stays partially filled forever (Fill cannot
// evict the hot resident lines of the set's other regions mid-fill)
// and the warm run would be MITE-contaminated.
func (h *Harness) chainShape(r *rng, base uint64, lo, hi, first int, label string) codegen.ChainSpec {
	s := codegen.ChainSpec{Base: base, Label: label, NumSets: h.numSets}
	var lines int // DSB lines one region's trace occupies
	switch r.intn(3) {
	case 0: // plain NOPs
		s.NopPerRegion = r.intn(14) // 0..13, ≤14 µops/region (3 lines)
		s.NopLen = nopLen(r, s.NopPerRegion, codegen.RegionSize-2)
		lines = ceilDiv(s.NopPerRegion+1, h.slotsPerLine)
	case 1: // LCP NOPs: predecoder stall per macro-op
		s.NopPerRegion = r.intn(14)
		s.NopLen = nopLen(r, s.NopPerRegion, codegen.RegionSize-2)
		s.LCP = s.NopPerRegion > 0
		lines = ceilDiv(s.NopPerRegion+1, h.slotsPerLine)
	case 2: // MSROM macro-op: whole-line trace, sequencer-fed decode
		s.NopPerRegion = r.intn(7) // 0..6 keeps the region ≤ 3 lines
		s.NopLen = nopLen(r, s.NopPerRegion, codegen.RegionSize-2-3)
		s.MsromUops = 5 + r.intn(4)
		lines = 2 // MSROM line + jump line
		if s.NopPerRegion > 0 {
			lines++ // leading NOP line
		}
	}
	nSets := 1 + r.intn(3)
	maxWays := h.cacheWays / lines
	if maxWays > 3 {
		maxWays = 3
	}
	ways := 1 + r.intn(maxWays)
	if nSets*ways < 2 {
		// Keep at least two regions so deltas stay measurable.
		if maxWays >= 2 {
			ways = 2
		} else {
			nSets = 2
		}
	}
	s.Sets = pickSets(r, nSets, lo, hi, first)
	s.Ways = ways
	return s
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// uncPad emits n uncacheable padding regions: each one exactly 32
// bytes of NOPs totalling more µops than the profile's cacheability
// cap, so the region is MITE-delivered on every fetch. This is
// retire-distance padding that occupies no micro-op cache ways — the
// cacheable ShapeCalleeSpill-style preamble would overflow sets that
// the padded shape's chains also draw on.
func (h *Harness) uncPad(b *asm.Builder, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < h.uncLo; j++ {
			b.Nop(1)
		}
		for rem := codegen.RegionSize - h.uncLo; rem > 0; {
			k := rem
			if k > 15 {
				k = 15
			}
			b.Nop(k)
			rem -= k
		}
	}
}

// nopLen draws a NOP length so count NOPs fit in budget bytes.
func nopLen(r *rng, count, budget int) int {
	if count == 0 {
		return 1
	}
	max := budget / count
	if max > 15 {
		max = 15
	}
	return 1 + r.intn(max)
}

// uncChainShape draws one of ShapeUncacheable's tail chains: one way
// of one or two sets, each region packed with more single-byte NOPs
// than MaxLinesPerRegion lines can hold — the placement rules reject
// the trace, so the region is MITE-delivered on every fetch and never
// appears in the cache footprint.
func (h *Harness) uncChainShape(r *rng, base uint64, lo, hi int, label string) codegen.ChainSpec {
	s := codegen.ChainSpec{Base: base, Label: label, NumSets: h.numSets}
	// One µop past the profile's cacheability cap up to the 30-NOP
	// region budget (20..30 against Skylake's 18-µop limit — the
	// historical 19 + intn(11) draw).
	s.NopPerRegion = h.uncLo + r.intn(h.uncSpan)
	s.NopLen = 1
	s.Sets = pickSets(r, 1+r.intn(2), lo, hi, -1)
	s.Ways = 1
	return s
}

// switchTailShape draws ShapeSwitch's taken-direction tail: 2-4
// uncacheable regions (one way each), so a warm traversal of the taken
// direction pays that many DSB→MITE switch bubbles more than the
// fall-through — the switch-point-count asymmetry under test.
func (h *Harness) switchTailShape(r *rng, base uint64, lo, hi int, label string) codegen.ChainSpec {
	s := codegen.ChainSpec{Base: base, Label: label, NumSets: h.numSets}
	s.NopPerRegion = h.uncLo + r.intn(h.uncSpan)
	s.NopLen = 1
	s.Sets = pickSets(r, 2+r.intn(3), lo, hi, -1)
	s.Ways = 1
	return s
}

// alignChainShape draws one of ShapeAlign's direction chains: every
// region carries a never-taken conditional jump pinned to a chosen
// predecode-window offset. A straddling chain puts the jump at offset
// 15 (its second byte crosses the 16-byte boundary, stalling the
// predecoder JccAlignPenalty cycles per region under legacy decode);
// an aligned chain puts it at offset 8 or 12, wholly inside a window.
// NOP padding is drawn from the divisors of the pad span, and the tail
// NOP count varies region µops — so the corpus covers µop-matched and
// µop-skewed direction pairs alike.
func (h *Harness) alignChainShape(r *rng, base uint64, lo, hi, first int, label string, straddle bool) codegen.ChainSpec {
	s := codegen.ChainSpec{Base: base, Label: label, NumSets: h.numSets}
	if straddle {
		s.JccOffset = 15
	} else {
		s.JccOffset = []int{8, 12}[r.intn(2)]
	}
	pad := s.JccOffset - 3
	var divs []int
	for d := 1; d <= pad; d++ {
		if pad%d == 0 {
			divs = append(divs, d)
		}
	}
	s.NopLen = divs[r.intn(len(divs))]
	s.NopPerRegion = pad / s.NopLen
	s.JccTailNops = r.intn(4)
	lines := ceilDiv(s.UopsPerRegion(), h.slotsPerLine)
	nSets := 1 + r.intn(3)
	maxWays := h.cacheWays / lines
	if maxWays > 3 {
		maxWays = 3
	}
	ways := 1 + r.intn(maxWays)
	if nSets*ways < 2 {
		if maxWays >= 2 {
			ways = 2
		} else {
			nSets = 2
		}
	}
	s.Sets = pickSets(r, nSets, lo, hi, first)
	s.Ways = ways
	return s
}

// suffixShape draws ShapeSharedSuffix's small common tail chain: one
// or two regions in sets 30/31 (untouched by either direction's set
// pool), one way, plain short NOPs — a tail both directions fetch, so
// only the per-direction prefix of the footprint diverges.
func (h *Harness) suffixShape(r *rng) codegen.ChainSpec {
	s := codegen.ChainSpec{Base: suffixBase, Label: "suffix", NumSets: h.numSets}
	s.Sets = []int{30}
	if r.intn(2) == 1 {
		s.Sets = []int{30, 31}
	}
	s.Ways = 1
	s.NopPerRegion = r.intn(6)
	s.NopLen = nopLen(r, s.NopPerRegion, codegen.RegionSize-2)
	return s
}

// Generate builds the victim for seed. Generation is total: every seed
// yields a valid program. The first draw picks the shape; each shape
// then consumes its own deterministic stream, so fuzz corpus seeds
// reproduce exactly.
//
// Every shape keeps the leaf invariants the quantifier relies on: the
// region holding the secret-dependent branch ends exactly at a
// 32-byte boundary (so both directions share its trace), the fall
// chain's first region is the one fetch streams into past the branch,
// and the two directions' chain set pools are disjoint.
func Generate(seed uint64) (*Victim, error) { return DefaultHarness().Generate(seed) }

// Generate builds the victim for seed under the harness's profile; see
// the package-level Generate for the generation contract.
func (h *Harness) Generate(seed uint64) (*Victim, error) {
	r := rng{x: seed}
	shape := Shape(r.intn(numRandomShapes))
	return h.generate(seed, shape, &r)
}

// GenerateShape builds a victim of an explicitly chosen shape for
// seed, bypassing Generate's shape draw — the entry point for the
// shapes outside the random pool (ShapeAlign through
// ShapeIndirectMutual) and for per-shape corpora. For the random-pool shapes
// the stream differs from Generate's (no draw is consumed), so the two
// entry points yield different victims for the same seed.
func GenerateShape(seed uint64, shape Shape) (*Victim, error) {
	return DefaultHarness().GenerateShape(seed, shape)
}

// GenerateShape builds a victim of an explicitly chosen shape for seed
// under the harness's profile.
func (h *Harness) GenerateShape(seed uint64, shape Shape) (*Victim, error) {
	if shape < 0 || shape > ShapeIndirectMutual {
		return nil, fmt.Errorf("difftest: unknown shape %d", int(shape))
	}
	r := rng{x: seed}
	return h.generate(seed, shape, &r)
}

func (h *Harness) generate(seed uint64, shape Shape, rp *rng) (*Victim, error) {
	r := *rp
	v := &Victim{Seed: seed, Shape: shape}
	b := asm.New(entryBase)
	b.Label("entry")
	var branch uint64
	switch shape {
	case ShapeLeaf, ShapeNested, ShapeSharedSuffix, ShapeUncacheable, ShapeSwitch:
		// Fall chain: lives in the entry chain's low half; its first
		// region is the one the branch cascade falls through into (set 1
		// after the entry region, set 2 when the nested region follows).
		// Taken chain: high half, disjoint set pool so the footprints
		// always diverge; the shared-suffix shape reserves sets 30/31
		// for the common tail.
		fallLo, fallFirst := 2, 1
		if shape == ShapeNested {
			fallLo, fallFirst = 3, 2
		}
		takenHi := 31
		if shape == ShapeSharedSuffix {
			takenHi = 29
		}
		v.Fall = h.chainShape(&r, entryBase, fallLo, 15, fallFirst, "fall")
		v.Taken = h.chainShape(&r, takenBase, 16, takenHi, -1, "taken")
		b.Xor(isa.R1, isa.R1)                      // 3 bytes; zeroing idiom the const-prop resolves
		b.Loadb(isa.R2, isa.R1, int64(SecretAddr)) // 4 bytes; the secret read
		b.Cmpi(isa.R2, 0)                          // 4 bytes
		b.Nop(15)                                  // pad so the branch ends the region
		b.Nop(4)
		branch = b.PC()
		b.Jcc(isa.NE, v.Taken.EntryLabel()) // 2 bytes; ends exactly at entryBase+32
		if shape == ShapeNested {
			// A second secret branch in the next region of the fall
			// path; never taken for the generated secrets (0/1 < 2), so
			// it perturbs prediction state without forking the fetch
			// stream — the linter still prices both of its successors.
			b.Cmpi(isa.R2, 2) // 4 bytes
			b.Nop(13)
			b.Nop(13)
			b.Jcc(isa.AE, "nested_out") // ends exactly at entryBase+64
		}
	case ShapeCalleeReg, ShapeCalleeSpill:
		// The entry region ends with a CALL instead of the branch; the
		// callee's last region ends with the secret branch, whose
		// fall-through streams into the fall chain's first region. The
		// spill flavour's callee opens with spillPreambleRegions of pure
		// NOPs before the reload: the backend's conservative memory
		// ordering stalls a load while any older store is unretired, and
		// that stall is paid in full by the drain-bound warm run but
		// hidden under MITE delivery in the cold run — without the
		// preamble the measured refill delta shrinks by the stall length
		// and the fetch-only predictor over-shoots. The padding lets the
		// spill store (and the CALL's return-address push) retire before
		// the reload enters the window, keeping the victim front-end
		// bound like every other shape.
		fallFirst := 1
		if shape == ShapeCalleeSpill {
			fallFirst = spillPreambleRegions + 1
		}
		v.Fall = h.chainShape(&r, calleeBase, fallFirst+1, 15, fallFirst, "fall")
		v.Taken = h.chainShape(&r, takenBase, 16, 31, -1, "taken")
		b.Xor(isa.R1, isa.R1)                      // 3 bytes
		b.Loadb(isa.R2, isa.R1, int64(SecretAddr)) // 4 bytes
		if shape == ShapeCalleeReg {
			// The secret crosses the call in R2.
			b.Nop(15)
			b.Nop(5)
		} else {
			// The secret crosses the call through memory: spill, then
			// kill the register copy so only the reload can taint.
			b.Nop(11)
			b.Store(isa.R1, spillAddr, isa.R2) // 4 bytes; [0+spillAddr] = secret
			b.Movi(isa.R2, 0)                  // 5 bytes
		}
		b.Call("callee") // 5 bytes; ends exactly at entryBase+32
		b.Org(calleeBase)
		b.Label("callee")
		if shape == ShapeCalleeReg {
			b.Cmpi(isa.R2, 0) // 4 bytes
			b.Nop(13)
			b.Nop(13)
		} else {
			for i := 0; i < spillPreambleRegions; i++ {
				for j := 0; j < 13; j++ {
					b.Nop(2)
				}
				b.Nop(6) // 13×2 + 6 = one full 32-byte region, 14 µops
			}
			b.Loadb(isa.R3, isa.R1, spillAddr) // 4 bytes; reload the spill
			b.Cmpi(isa.R3, 0)                  // 4 bytes
			b.Nop(11)
			b.Nop(11)
		}
		branch = b.PC()
		b.Jcc(isa.NE, v.Taken.EntryLabel()) // 2 bytes; ends at a region boundary
	case ShapeAlign:
		// The leaf entry, but one direction's chain straddles the
		// predecode-window boundary with every region's conditional jump
		// while the other's stays aligned. Which direction straddles is
		// drawn per seed, so the corpus exercises both signs of the
		// alignment delta.
		straddleTaken := r.intn(2) == 1
		v.Fall = h.alignChainShape(&r, entryBase, 2, 15, 1, "fall", !straddleTaken)
		v.Taken = h.alignChainShape(&r, takenBase, 16, 31, -1, "taken", straddleTaken)
		b.Xor(isa.R1, isa.R1)                      // 3 bytes
		b.Loadb(isa.R2, isa.R1, int64(SecretAddr)) // 4 bytes
		b.Cmpi(isa.R2, 0)                          // 4 bytes
		b.Nop(15)                                  // pad so the branch ends the region
		b.Nop(4)
		branch = b.PC()
		b.Jcc(isa.NE, v.Taken.EntryLabel()) // 2 bytes; ends exactly at entryBase+32
	case ShapeIndirect:
		// The entry region ends with an indirect call through a
		// register holding a MOVI constant; the secret branch sits in
		// the region the call returns to. The resolution pass pins the
		// singleton target, so the secret's flags taint crosses the
		// call through the resolved callee's summary (and degrades to
		// the havoc fallback if resolution is ever unavailable).
		v.Fall = h.chainShape(&r, entryBase, 3, 15, 2, "fall")
		v.Taken = h.chainShape(&r, takenBase, 16, 31, -1, "taken")
		b.Xor(isa.R1, isa.R1)                      // 3 bytes
		b.Loadb(isa.R2, isa.R1, int64(SecretAddr)) // 4 bytes
		b.Movi(isa.R3, int64(helperBase))          // 5 bytes; resolved target, clean taint
		b.Nop(15)
		b.Nop(2)
		b.Calli(isa.R3) // 3 bytes; ends exactly at entryBase+32
		v.RetSite = b.PC()
		v.Helper = helperBase
		b.Cmpi(isa.R2, 0) // 4 bytes; the secret survives the call in R2
		b.Nop(13)
		b.Nop(13)
		branch = b.PC()
		b.Jcc(isa.NE, v.Taken.EntryLabel()) // 2 bytes; ends exactly at entryBase+64
	case ShapeIndirectTable:
		// The entry builds a two-slot function-pointer table at
		// constant addresses, loads a masked index, and dispatches
		// through the table. The index load, slot arithmetic, and table
		// load all sit in the first two regions; three uncacheable NOP
		// regions then separate them from the CALLI so the serial
		// load→ALU→load latency completes under the padding's MITE
		// delivery — exposed, it would stall only the drain-bound warm
		// run and skew the measured delta against the fetch-only model.
		// Uncacheable padding also occupies no micro-op cache ways in
		// sets the dispatch zone's chains draw on. The secret branch is the
		// hot target's first region: the straight-line walk ends at the
		// two-target call, and the divergence finding exists only
		// because resolution proves the complete {hot, decoy} set and
		// joins the hot callee's summary across the site.
		v.Fall = h.chainShape(&r, dispatchBase, 5, 15, 1, "fall")
		v.Taken = h.chainShape(&r, takenBase, 16, 31, -1, "taken")
		b.Xor(isa.R1, isa.R1)                      // 3 bytes
		b.Loadb(isa.R2, isa.R1, int64(SecretAddr)) // 4 bytes
		b.Movi(isa.R4, int64(dispatchBase))        // 5 bytes
		b.Store(isa.R1, tableAddr, isa.R4)         // 4 bytes; table[0] = hot
		b.Movi(isa.R4, int64(dispatchDecoy))       // 5 bytes
		b.Store(isa.R1, tableAddr+8, isa.R4)       // 4 bytes; table[1] = decoy
		b.Loadb(isa.R5, isa.R1, idxAddr)           // 4 bytes; runtime 0, statically unknown
		b.Nop(3)                                   // ends the region at entryBase+32
		b.Andi(isa.R5, 8)                          // 4 bytes; slot offset bounded to {0, 8}
		b.Addi(isa.R5, tableAddr)                  // 4 bytes; slot address
		b.Load(isa.R6, isa.R5, 0)                  // 4 bytes; the table load
		b.Nop(13)
		b.Nop(7) // ends the region at entryBase+64
		h.uncPad(b, spillPreambleRegions)
		b.Nop(13)
		b.Nop(13)
		b.Nop(3)
		b.Calli(isa.R6) // 3 bytes; ends the dispatch region at a boundary
		v.Helper = dispatchBase
		b.Org(dispatchBase)
		b.Label("dispatch_hot")
		b.Cmpi(isa.R2, 0) // 4 bytes; the secret survives the call in R2
		b.Nop(13)
		b.Nop(13)
		branch = b.PC()
		b.Jcc(isa.NE, v.Taken.EntryLabel()) // 2 bytes; ends exactly at dispatchBase+32
	case ShapeIndirectMutual:
		// The ShapeIndirect entry, but the callee is the first of two
		// functions whose never-executed recursion stubs call each
		// other through registers: the call graph must treat the
		// resolved edges like direct ones for the summary fixpoint over
		// the A → B → A cycle to converge. The hot path never recurses
		// — the callee's first region guards on a constant-zero
		// register — and its second region ends with the secret branch.
		v.Fall = h.chainShape(&r, mutualABase, 3, 15, 2, "fall")
		v.Taken = h.chainShape(&r, takenBase, 16, 31, -1, "taken")
		b.Xor(isa.R1, isa.R1)                      // 3 bytes
		b.Loadb(isa.R2, isa.R1, int64(SecretAddr)) // 4 bytes
		b.Movi(isa.R3, int64(mutualABase))         // 5 bytes; resolved target
		b.Nop(15)
		b.Nop(2)
		b.Calli(isa.R3) // 3 bytes; ends exactly at entryBase+32
		v.Helper = mutualABase
		b.Org(mutualABase)
		b.Label("mutual_a")
		b.Cmpi(isa.R1, 1) // 4 bytes; constant-zero guard: never taken
		b.Nop(13)
		b.Nop(13)
		b.Jcc(isa.EQ, "mutual_a_rec") // 2 bytes; ends at mutualABase+32
		b.Cmpi(isa.R2, 0)             // 4 bytes; the secret branch region
		b.Nop(13)
		b.Nop(13)
		branch = b.PC()
		b.Jcc(isa.NE, v.Taken.EntryLabel()) // 2 bytes; ends exactly at mutualABase+64
	}
	exitLabel := "exit"
	if shape == ShapeSharedSuffix {
		s := h.suffixShape(&r)
		v.Suffix = &s
		exitLabel = s.EntryLabel()
	}
	fallExit, takenExit := exitLabel, exitLabel
	if shape == ShapeUncacheable {
		// Each direction's cacheable chain drains into its own
		// uncacheable tail before the shared exit.
		fu := h.uncChainShape(&r, uncFallBase, 2, 15, "fallunc")
		tu := h.uncChainShape(&r, uncTakenBase, 16, 31, "takenunc")
		v.FallUnc, v.TakenUnc = &fu, &tu
		fallExit, takenExit = fu.EntryLabel(), tu.EntryLabel()
	}
	if shape == ShapeSwitch {
		// Only the taken direction drains into an uncacheable tail: its
		// warm traversal pays one DSB→MITE switch per tail region, the
		// fall-through pays none.
		tu := h.switchTailShape(&r, uncTakenBase, 16, 31, "takenunc")
		v.TakenUnc = &tu
		takenExit = tu.EntryLabel()
	}
	if err := v.Fall.Emit(b, fallExit); err != nil {
		return nil, fmt.Errorf("difftest seed %d (%s): fall chain: %w", seed, shape, err)
	}
	if shape == ShapeNested {
		b.Org(nestedStubAddr)
		b.Label("nested_out")
		b.Jmp("exit")
	}
	if shape == ShapeIndirect {
		// The callee: one cacheable region of pure NOPs ending in the
		// RET that resumes fetch at the return site. Emitted between the
		// chains so builder addresses stay ascending. The NOPs are
		// single-byte on purpose: 16 of them plus the two-µop RET fill
		// the region to the 18-µop cacheability cap, so the dispatch
		// stream keeps the RET's return-address pop a full drain group
		// behind the CALLI's push and the pop never pays a
		// load-after-store ordering stall that only warm (drain-bound)
		// runs would observe.
		b.Org(helperBase)
		b.Label("helper")
		for i := 0; i < 16; i++ {
			b.Nop(1)
		}
		b.Ret()
	}
	if shape == ShapeIndirectTable {
		// The cold dispatch target: present so the resolved target set
		// keeps two members, never executed (the dispatch index byte
		// reads zero). Mirrors the ShapeIndirect helper's layout.
		b.Org(dispatchDecoy)
		b.Label("dispatch_cold")
		for i := 0; i < 16; i++ {
			b.Nop(1)
		}
		b.Ret()
	}
	if shape == ShapeIndirectMutual {
		// The never-executed recursion stubs: each function's guard
		// jumps to its stub, and each stub calls the *other* function
		// through a register — the resolved edges close the static
		// cycle mutual_a → mutual_b → mutual_a.
		b.Org(mutualARec)
		b.Label("mutual_a_rec")
		b.Movi(isa.R4, int64(mutualBBase))
		b.Calli(isa.R4)
		b.Ret()
		b.Org(mutualBBase)
		b.Label("mutual_b")
		b.Cmpi(isa.R1, 1)
		b.Nop(13)
		b.Nop(13)
		b.Jcc(isa.EQ, "mutual_b_rec")
		for i := 0; i < 16; i++ {
			b.Nop(1)
		}
		b.Ret()
		b.Org(mutualBRec)
		b.Label("mutual_b_rec")
		b.Movi(isa.R4, int64(mutualABase))
		b.Calli(isa.R4)
		b.Ret()
	}
	if err := v.Taken.Emit(b, takenExit); err != nil {
		return nil, fmt.Errorf("difftest seed %d (%s): taken chain: %w", seed, shape, err)
	}
	if v.Suffix != nil {
		if err := v.Suffix.Emit(b, "exit"); err != nil {
			return nil, fmt.Errorf("difftest seed %d (%s): suffix chain: %w", seed, shape, err)
		}
	}
	if v.FallUnc != nil {
		if err := v.FallUnc.Emit(b, "exit"); err != nil {
			return nil, fmt.Errorf("difftest seed %d (%s): fall uncacheable tail: %w", seed, shape, err)
		}
	}
	if v.TakenUnc != nil {
		if err := v.TakenUnc.Emit(b, "exit"); err != nil {
			return nil, fmt.Errorf("difftest seed %d (%s): taken uncacheable tail: %w", seed, shape, err)
		}
	}
	b.Org(exitAddr)
	b.Label("exit")
	b.Movi(isa.R0, 0x0DD)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("difftest seed %d (%s): %w", seed, shape, err)
	}
	v.Prog = p
	v.Entry = p.MustLabel("entry")
	v.Branch = branch
	return v, nil
}

// Prediction is the static side of one victim: the divergence finding
// and the two whole-program path costs.
type Prediction struct {
	Finding staticlint.Finding
	// TakenCost and FallCost price each direction's complete fetch path
	// (entry through HALT); Taken and Fall are their refill deltas —
	// the predicted probe-cycle signal per direction.
	TakenCost, FallCost staticlint.PathCost
	Taken, Fall         int
}

// Predict lints the victim, checks the divergence finding fires at the
// generated branch, and prices each secret direction as one
// whole-program fetch path: the shared prefix (entry region through
// the branch) concatenated with that direction's successor walk. A
// single RunCost call per direction prices the path as one complete
// run — the backend drain bound and its pipeline-fill lag apply once,
// the delivery/drain race is replayed cycle for cycle, and the run
// start/stop overhead lands on both sides — exactly as the measurement
// side pays them.
func Predict(v *Victim) (Prediction, error) { return DefaultHarness().Predict(v) }

// Predict is the harness-bound predictor; see the package-level
// Predict. Under a profile without a DSB the divergence finding is
// required to be ABSENT — there is no probe-visible footprint to
// diverge — and the per-direction costs are priced without it, so the
// mite-only contract (zero refill deltas on both paths) stays
// checkable end to end.
func (h *Harness) Predict(v *Victim) (Prediction, error) {
	a := staticlint.Analyze(v.Prog, Spec(), h.cfg)
	var found *staticlint.Finding
	for _, f := range (staticlint.FootprintDivergenceChecker{}).Check(a) {
		if f.Addr == v.Branch {
			g := f
			found = &g
			break
		}
	}
	if !h.Profile.HasDSB() {
		if found != nil {
			return Prediction{}, fmt.Errorf("difftest seed %d: divergence finding at branch %#x under the no-DSB profile %s",
				v.Seed, v.Branch, h.Profile.Name)
		}
		found = &staticlint.Finding{}
	} else if found == nil {
		return Prediction{}, fmt.Errorf("difftest seed %d: no divergence finding at branch %#x", v.Seed, v.Branch)
	} else if found.TakenCost == nil || found.FallCost == nil {
		return Prediction{}, fmt.Errorf("difftest seed %d: finding carries no path costs", v.Seed)
	}
	branch := v.Prog.At(v.Branch)
	var prefix []uopcache.Range
	fallRanges := a.FetchRanges(v.Entry, 0)
	if v.Shape == ShapeIndirectTable {
		// The straight-line walk ends at the dispatch call — a complete
		// two-target set still has no single successor to follow — so
		// stitch the run the simulator fetches: the entry through the
		// CALLI, then the hot dispatch target through the branch.
		// (ShapeIndirect and ShapeIndirectMutual need no stitch: the
		// walk continues through their singleton-resolved calls.)
		prefix = append(prefix, a.FetchRanges(v.Entry, 0)...)
		prefix = append(prefix, a.FetchRanges(v.Helper, branch.End())...)
		fallRanges = append(append([]uopcache.Range(nil), prefix...),
			a.FetchRanges(branch.End(), 0)...)
	} else {
		prefix = a.FetchRanges(v.Entry, branch.End())
	}
	takenRanges := append(append([]uopcache.Range(nil), prefix...),
		a.FetchRanges(uint64(branch.Imm), 0)...)
	takenCost := a.RunCost(takenRanges)
	fallCost := a.RunCost(fallRanges)
	return Prediction{
		Finding:   *found,
		TakenCost: takenCost,
		FallCost:  fallCost,
		Taken:     takenCost.RefillDelta,
		Fall:      fallCost.RefillDelta,
	}, nil
}

// MeasureDirection runs the victim on a fresh modelled core with the
// secret steering one direction and returns the measured refill delta:
// train runs settle the predictors and fill the micro-op cache, a warm
// run is timed, the micro-op cache alone is flushed, and a cold run is
// timed. The difference isolates the DSB-refill cost of the executed
// path — branch predictors and data caches stay warm throughout, so no
// misprediction or memory-latency noise enters the delta.
func MeasureDirection(v *Victim, secret int64) (int, error) {
	return MeasureDirectionWith(v, secret, nil)
}

// MeasureDirectionWith is MeasureDirection drawing the core's guest
// memory from arena (which may be nil) — the sweep runners thread one
// arena per worker through it.
func MeasureDirectionWith(v *Victim, secret int64, a *cpu.Arena) (int, error) {
	return DefaultHarness().MeasureDirectionWith(v, secret, a)
}

// MeasureDirectionWith measures one direction's refill delta on a core
// assembled for the harness's profile.
func (h *Harness) MeasureDirectionWith(v *Victim, secret int64, a *cpu.Arena) (int, error) {
	c := cpu.NewWith(h.cpuCfg, a)
	c.LoadProgram(v.Prog)
	c.Mem().Write(SecretAddr, 1, secret)
	run := func(tag string) (cpu.RunResult, error) {
		res := c.Run(0, v.Entry, maxCycles)
		if res.TimedOut {
			return res, fmt.Errorf("difftest seed %d: %s run timed out", v.Seed, tag)
		}
		return res, nil
	}
	for i := 0; i < trainRuns; i++ {
		if _, err := run("train"); err != nil {
			return 0, err
		}
	}
	warm, err := run("warm")
	if err != nil {
		return 0, err
	}
	c.FlushUopCache()
	cold, err := run("cold")
	if err != nil {
		return 0, err
	}
	return int(cold.Cycles) - int(warm.Cycles), nil
}

// MeasureSwitches runs the victim with the secret steering one
// direction and returns the DSB→MITE switch counts of a fully warmed
// traversal and of a flushed (cold) traversal — the per-run transition
// counts the quantifier predicts as WarmSwitchPoints/ColdSwitchPoints.
// Unlike the cycle deltas these are exact counter reads, so the
// validation contract is equality, not a tolerance band.
func MeasureSwitches(v *Victim, secret int64, a *cpu.Arena) (warm, cold int, err error) {
	return DefaultHarness().MeasureSwitches(v, secret, a)
}

// MeasureSwitches measures the per-run DSB→MITE switch counters on a
// core assembled for the harness's profile.
func (h *Harness) MeasureSwitches(v *Victim, secret int64, a *cpu.Arena) (warm, cold int, err error) {
	c := cpu.NewWith(h.cpuCfg, a)
	c.LoadProgram(v.Prog)
	c.Mem().Write(SecretAddr, 1, secret)
	for i := 0; i < trainRuns; i++ {
		if res := c.Run(0, v.Entry, maxCycles); res.TimedOut {
			return 0, 0, fmt.Errorf("difftest seed %d: switch train run timed out", v.Seed)
		}
	}
	wres := c.Run(0, v.Entry, maxCycles)
	if wres.TimedOut {
		return 0, 0, fmt.Errorf("difftest seed %d: switch warm run timed out", v.Seed)
	}
	c.FlushUopCache()
	cres := c.Run(0, v.Entry, maxCycles)
	if cres.TimedOut {
		return 0, 0, fmt.Errorf("difftest seed %d: switch cold run timed out", v.Seed)
	}
	return int(wres.Counters.Get(perfctr.DSB2MITESwitches)),
		int(cres.Counters.Get(perfctr.DSB2MITESwitches)), nil
}

// Result is one victim's predicted-vs-measured comparison.
type Result struct {
	Seed                uint64
	PredTaken, PredFall int
	MeasTaken, MeasFall int
	Victim              *Victim
	// Prediction carries the full static side — per-direction path
	// costs including align-stall and switch-point breakouts — for the
	// per-shape validation the cycle deltas alone cannot express.
	Prediction *Prediction
	// Profile names the front-end profile the result was produced
	// under; NoDSB marks the no-DSB control contract (all four deltas
	// exactly zero) instead of the positive-±Tolerance one.
	Profile string
	NoDSB   bool
}

// Run generates, predicts, and measures one seed.
func Run(seed uint64) (Result, error) { return RunWith(seed, nil) }

// RunWith is Run reusing arena (which may be nil) for each direction's
// simulated core.
func RunWith(seed uint64, a *cpu.Arena) (Result, error) {
	return DefaultHarness().RunWith(seed, a)
}

// RunWith generates, predicts, and measures one seed under the
// harness's profile, reusing arena (which may be nil).
func (h *Harness) RunWith(seed uint64, a *cpu.Arena) (Result, error) {
	v, err := h.Generate(seed)
	if err != nil {
		return Result{}, err
	}
	return h.runVictim(v, a)
}

// RunShape is Run with the victim shape pinned (via GenerateShape)
// instead of drawn from the seed — the per-shape corpora use it.
func RunShape(seed uint64, shape Shape) (Result, error) {
	return RunShapeWith(seed, shape, nil)
}

// RunShapeWith is RunShape reusing arena for each direction's core.
func RunShapeWith(seed uint64, shape Shape, a *cpu.Arena) (Result, error) {
	return DefaultHarness().RunShapeWith(seed, shape, a)
}

// RunShapeWith is RunWith with the victim shape pinned.
func (h *Harness) RunShapeWith(seed uint64, shape Shape, a *cpu.Arena) (Result, error) {
	v, err := h.GenerateShape(seed, shape)
	if err != nil {
		return Result{}, err
	}
	return h.runVictim(v, a)
}

func (h *Harness) runVictim(v *Victim, a *cpu.Arena) (Result, error) {
	p, err := h.Predict(v)
	if err != nil {
		return Result{}, err
	}
	// One core, one program load, both directions forked from the
	// pristine checkpoint. The deltas are bit-identical to the classic
	// fresh-core-per-direction path (TestPointRunnerMatchesMeasure),
	// so every corpus golden is unchanged by the shared core.
	r := h.NewPointRunner(v, a)
	taken, err := r.Measure(1)
	if err != nil {
		return Result{}, err
	}
	fall, err := r.Measure(0)
	if err != nil {
		return Result{}, err
	}
	mt, mf := taken.Delta, fall.Delta
	return Result{
		Seed:       v.Seed,
		PredTaken:  p.Taken,
		PredFall:   p.Fall,
		MeasTaken:  mt,
		MeasFall:   mf,
		Victim:     v,
		Prediction: &p,
		Profile:    h.Profile.Name,
		NoDSB:      !h.Profile.HasDSB(),
	}, nil
}

// Validate applies the acceptance contract to one result: each
// direction's predicted delta positive, within Tolerance of the
// measured delta, and the cross-direction asymmetry pointing the same
// way in prediction and measurement. Under a no-DSB profile the
// contract inverts: with nothing to flush, every delta — predicted and
// measured, both directions — must be exactly zero.
func (r Result) Validate() error {
	if r.NoDSB {
		if r.PredTaken != 0 || r.PredFall != 0 || r.MeasTaken != 0 || r.MeasFall != 0 {
			return fmt.Errorf("seed %d (%s): no-DSB profile leaked a refill delta: pred %d/%d, meas %d/%d\nvictim: %s",
				r.Seed, r.Profile, r.PredTaken, r.PredFall, r.MeasTaken, r.MeasFall, r.Describe())
		}
		return nil
	}
	check := func(dir string, pred, meas int) error {
		if meas <= 0 {
			return fmt.Errorf("seed %d %s: measured delta %d not positive (flush had no cost?)", r.Seed, dir, meas)
		}
		if pred <= 0 {
			return fmt.Errorf("seed %d %s: predicted delta %d has wrong sign (measured %d)", r.Seed, dir, pred, meas)
		}
		diff := pred - meas
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > Tolerance*float64(meas) {
			return fmt.Errorf("seed %d %s: predicted %d vs measured %d (%.1f%% off, tolerance %.0f%%)\nvictim: %s",
				r.Seed, dir, pred, meas, 100*float64(diff)/float64(meas), 100*Tolerance, r.Describe())
		}
		return nil
	}
	if err := check("taken", r.PredTaken, r.MeasTaken); err != nil {
		return err
	}
	if err := check("fallthrough", r.PredFall, r.MeasFall); err != nil {
		return err
	}
	// Cross-direction sign: when the predictor claims a clear
	// asymmetry between the directions, the model must agree on which
	// direction is more expensive to refill. Below SignFloor on either
	// side the asymmetry is within the model's rounding and carries no
	// sign to agree on.
	predDiff := r.PredTaken - r.PredFall
	measDiff := r.MeasTaken - r.MeasFall
	if abs(predDiff) >= SignFloor && abs(measDiff) >= SignFloor && (predDiff > 0) != (measDiff > 0) {
		return fmt.Errorf("seed %d: predicted probe delta %+d disagrees in sign with measured %+d\nvictim: %s",
			r.Seed, predDiff, measDiff, r.Describe())
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Describe renders the victim's shape for failure messages and fixture
// minimization.
func (r Result) Describe() string {
	v := r.Victim
	if v == nil {
		return "<nil>"
	}
	d := fmt.Sprintf("%s: taken %s, fall %s", v.Shape, describeChain(v.Taken), describeChain(v.Fall))
	if v.Suffix != nil {
		d += fmt.Sprintf(", suffix %s", describeChain(*v.Suffix))
	}
	if v.TakenUnc != nil {
		d += fmt.Sprintf(", taken-unc %s", describeChain(*v.TakenUnc))
	}
	if v.FallUnc != nil {
		d += fmt.Sprintf(", fall-unc %s", describeChain(*v.FallUnc))
	}
	return d
}

func describeChain(s codegen.ChainSpec) string {
	amp := "plain"
	if s.LCP {
		amp = "lcp"
	}
	if s.MsromUops > 0 {
		amp = fmt.Sprintf("msrom%d", s.MsromUops)
	}
	if s.JccOffset > 0 {
		amp = fmt.Sprintf("jcc@%d+%dt", s.JccOffset, s.JccTailNops)
	}
	return fmt.Sprintf("{sets %v ways %d nops %d×%d %s}", s.Sets, s.Ways, s.NopPerRegion, s.NopLen, amp)
}
