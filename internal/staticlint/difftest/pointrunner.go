package difftest

// pointrunner.go measures one victim repeatedly without re-paying core
// construction or predictor training on every call. The classic
// entry points (MeasureDirectionWith, MeasureSwitches) build a fresh
// core per call and re-run the training prefix every time — correct,
// but most of the work is identical across calls. A PointRunner builds
// the core once, snapshots it immediately after program load (the
// pristine checkpoint), and snapshots it again after each direction's
// training runs settle the predictors and fill the micro-op cache (the
// per-direction trained checkpoints). Repeat measurements restore the
// trained checkpoint and pay only the two timed runs.
//
// Equivalence is exact, not approximate: restoring the pristine
// checkpoint reproduces a fresh core bit for bit (cycle clock zero,
// counters zero, cold caches, loaded image), so a PointRunner's first
// Measure per direction replays MeasureDirectionWith's sequence
// exactly, and every later Measure replays the first one's timed tail
// from the identical trained state. TestPointRunnerMatchesMeasure pins
// this against the classic entry points across the corpus.

import (
	"fmt"

	"deaduops/internal/cpu"
	"deaduops/internal/perfctr"
)

// Point bundles everything one (victim, secret) measurement produces:
// the refill delta MeasureDirectionWith returns, the warm/cold
// DSB→MITE switch counts MeasureSwitches returns, and the fast-path
// audit counters (skipped vs total cycles over the two timed runs) the
// checkpoint benchmarks report.
type Point struct {
	Delta        int
	WarmSwitches int
	ColdSwitches int
	// SkippedCycles and TotalCycles aggregate the warm and cold timed
	// runs: how much of the measured window the event-driven fast path
	// crossed in single steps. Training runs are excluded — they are
	// not part of the measurement.
	SkippedCycles uint64
	TotalCycles   uint64
}

// PointRunner measures one victim on a single reusable core via
// checkpoints. Build one per victim with Harness.NewPointRunner; it is
// not safe for concurrent use, and building a new PointRunner on the
// same arena recycles the previous one's checkpoint buffers (the
// parsweep pattern: one point in flight per worker).
type PointRunner struct {
	h        *Harness
	v        *Victim
	c        *cpu.CPU
	arena    *cpu.Arena
	nextBuf  int
	pristine *cpu.Checkpoint
	trained  map[int64]*cpu.Checkpoint
}

// NewPointRunner builds a core for v on the harness's profile, drawing
// guest memory and checkpoint buffers from arena (which may be nil),
// and takes the pristine checkpoint: program loaded, secret not yet
// written, nothing run.
func (h *Harness) NewPointRunner(v *Victim, a *cpu.Arena) *PointRunner {
	c := cpu.NewWith(h.cpuCfg, a)
	c.LoadProgram(v.Prog)
	r := &PointRunner{
		h: h, v: v, c: c, arena: a,
		trained: make(map[int64]*cpu.Checkpoint, 2),
	}
	r.pristine = r.nextCheckpointBuf()
	c.Checkpoint(r.pristine)
	return r
}

func (r *PointRunner) nextCheckpointBuf() *cpu.Checkpoint {
	ck := r.arena.CheckpointBuf(r.nextBuf)
	r.nextBuf++
	return ck
}

// Measure returns the point for one secret direction. The first call
// per direction restores the pristine checkpoint, writes the secret,
// runs the training prefix, and checkpoints the trained core; repeat
// calls restore the trained checkpoint and pay only the warm and cold
// timed runs.
func (r *PointRunner) Measure(secret int64) (Point, error) {
	if ck := r.trained[secret]; ck != nil {
		r.c.Restore(ck)
	} else {
		r.c.Restore(r.pristine)
		r.c.Mem().Write(SecretAddr, 1, secret)
		for i := 0; i < trainRuns; i++ {
			if res := r.c.Run(0, r.v.Entry, maxCycles); res.TimedOut {
				return Point{}, fmt.Errorf("difftest seed %d: train run timed out", r.v.Seed)
			}
		}
		ck = r.nextCheckpointBuf()
		r.c.Checkpoint(ck)
		r.trained[secret] = ck
	}
	warm := r.c.Run(0, r.v.Entry, maxCycles)
	if warm.TimedOut {
		return Point{}, fmt.Errorf("difftest seed %d: warm run timed out", r.v.Seed)
	}
	r.c.FlushUopCache()
	cold := r.c.Run(0, r.v.Entry, maxCycles)
	if cold.TimedOut {
		return Point{}, fmt.Errorf("difftest seed %d: cold run timed out", r.v.Seed)
	}
	return Point{
		Delta:        int(cold.Cycles) - int(warm.Cycles),
		WarmSwitches: int(warm.Counters.Get(perfctr.DSB2MITESwitches)),
		ColdSwitches: int(cold.Counters.Get(perfctr.DSB2MITESwitches)),
		SkippedCycles: warm.Counters.Get(perfctr.SkippedCycles) +
			cold.Counters.Get(perfctr.SkippedCycles),
		TotalCycles: warm.Cycles + cold.Cycles,
	}, nil
}

// WithoutCycleSkip returns a copy of h whose simulator cores tick every
// cycle instead of using the event-driven fast path. Results are
// bit-identical either way (TestSkipCyclesEquivalence); the copy
// exists as the baseline side of the checkpoint benchmarks and the
// skip-equivalence gates.
func (h *Harness) WithoutCycleSkip() *Harness {
	hh := *h
	hh.cpuCfg.DisableCycleSkip = true
	return &hh
}
