package difftest

// parallel.go fans the differential corpora out over a bounded worker
// pool. Every seed is an independent measurement — Generate is a pure
// function of the seed and each direction runs on a fresh core — so
// the corpus runners only need parsweep's ordering guarantee: results
// come back seed-ordered and the reported failure is the
// lowest-indexed one, making corpus runs reproducible at any worker
// count.

import (
	"deaduops/internal/cpu"
	"deaduops/internal/parsweep"
)

// RunMany runs every seed through the victim-side harness (Run) across
// workers pool goroutines (0 selects GOMAXPROCS), one reusable
// simulator arena per worker. Results are seed-ordered.
func RunMany(seeds []uint64, workers int) ([]Result, error) {
	return DefaultHarness().RunMany(seeds, workers)
}

// RunMany is the harness-bound corpus runner; see the package-level
// RunMany.
func (h *Harness) RunMany(seeds []uint64, workers int) ([]Result, error) {
	return parsweep.MapArena(parsweep.Options{Workers: workers}, len(seeds),
		func() *cpu.Arena { return new(cpu.Arena) },
		func(a *cpu.Arena, i int) (Result, error) {
			return h.RunWith(seeds[i], a)
		})
}

// RunShapeMany runs every seed through the victim-side harness with
// the victim shape pinned (RunShape) across workers pool goroutines,
// one arena per worker. Results are seed-ordered.
func RunShapeMany(seeds []uint64, workers int, shape Shape) ([]Result, error) {
	return DefaultHarness().RunShapeMany(seeds, workers, shape)
}

// RunShapeMany is the harness-bound shape-corpus runner; see the
// package-level RunShapeMany.
func (h *Harness) RunShapeMany(seeds []uint64, workers int, shape Shape) ([]Result, error) {
	return parsweep.MapArena(parsweep.Options{Workers: workers}, len(seeds),
		func() *cpu.Arena { return new(cpu.Arena) },
		func(a *cpu.Arena, i int) (Result, error) {
			return h.RunShapeWith(seeds[i], shape, a)
		})
}

// RunProbeMany runs every seed through the attacker-side harness
// (RunProbe) across workers pool goroutines, one arena per worker.
// Results are seed-ordered.
func RunProbeMany(seeds []uint64, workers int) ([]ProbeResult, error) {
	return DefaultHarness().RunProbeMany(seeds, workers)
}

// RunProbeMany is the harness-bound probe-corpus runner; see the
// package-level RunProbeMany.
func (h *Harness) RunProbeMany(seeds []uint64, workers int) ([]ProbeResult, error) {
	return parsweep.MapArena(parsweep.Options{Workers: workers}, len(seeds),
		func() *cpu.Arena { return new(cpu.Arena) },
		func(a *cpu.Arena, i int) (ProbeResult, error) {
			return h.RunProbeWith(seeds[i], a)
		})
}

// SeedRange returns the contiguous seed list [lo, hi] — the corpus
// tests and benchmarks share it.
func SeedRange(lo, hi uint64) []uint64 {
	out := make([]uint64, 0, hi-lo+1)
	for s := lo; s <= hi; s++ {
		out = append(out, s)
	}
	return out
}
