package difftest

// harness.go binds the differential harness to one registered
// front-end profile. Historically every entry point in this package
// was hard-wired to the Skylake model; a Harness carries the profile's
// analysis configuration, the matching simulator core configuration,
// and the generator geometry derived from the profile, so the same
// corpus contracts run under Zen, Zen 2, or the no-DSB control. The
// package-level functions (Generate, Predict, Run, RunMany, ...)
// delegate to the default Skylake harness, keeping their RNG streams —
// and therefore every committed fuzz seed and golden — byte-identical.

import (
	"deaduops/internal/cpu"
	"deaduops/internal/profile"
	"deaduops/internal/staticlint"
)

// Harness is the differential harness for one front-end profile.
type Harness struct {
	// Profile is the frozen profile this harness generates, predicts,
	// and measures under.
	Profile profile.Profile

	cfg    staticlint.Config
	cpuCfg cpu.Config

	// Generator geometry, derived once from the profile so the drawing
	// code cannot drift from the analysis configuration.
	cacheWays    int
	slotsPerLine int
	numSets      int
	// uncLo/uncSpan shape the uncacheable tail regions: single-byte NOP
	// counts drawn from [uncLo, uncLo+uncSpan). uncLo is one µop past
	// the profile's cacheability cap (MaxLinesPerRegion×SlotsPerLine),
	// and the span is clipped so the body still fits a 32-byte region —
	// on Skylake this reproduces the historical 19 + intn(11) draw
	// exactly.
	uncLo   int
	uncSpan int
}

// NewHarness builds a harness for p.
func NewHarness(p profile.Profile) *Harness {
	cfg := staticlint.ConfigForProfile(p)
	cfg.PathBudget = 512
	h := &Harness{
		Profile:      p,
		cfg:          cfg,
		cpuCfg:       cpu.FromProfile(p),
		cacheWays:    p.UopCache.Ways,
		slotsPerLine: p.UopCache.SlotsPerLine,
		numSets:      p.UopCache.Sets,
		uncLo:        p.UopCapLine() + 1,
	}
	// A region body is NopPerRegion single-byte NOPs plus the 2-byte
	// chain jump, capped at codegen.RegionSize (32) bytes → at most 30
	// NOPs.
	h.uncSpan = 30 - h.uncLo + 1
	if h.uncSpan > 11 {
		h.uncSpan = 11
	}
	if h.uncSpan < 1 {
		h.uncSpan = 1
	}
	return h
}

var defaultHarness = NewHarness(profile.Default())

// DefaultHarness returns the package's default (Skylake) harness — the
// one every package-level entry point delegates to.
func DefaultHarness() *Harness { return defaultHarness }

// Config returns the analysis configuration the harness lints with:
// the profile's model with a path budget covering the largest
// generated chain.
func (h *Harness) Config() staticlint.Config { return h.cfg }

// CPUConfig returns the simulator core configuration the harness
// measures on.
func (h *Harness) CPUConfig() cpu.Config { return h.cpuCfg }
