package staticlint_test

// Differential validation: the static checkers predict that the two
// directions of the vpd tag branch occupy different micro-op cache
// sets; this file confirms the prediction on the cycle-level model.
// First the fill pattern: running each direction on a fresh core must
// produce snapshots that disagree on at least one statically predicted
// divergent set. Then the timing channel itself: replaying one fixed
// direction is measurably faster on a core whose micro-op cache was
// warmed by that same direction than on one warmed by the other —
// the per-path DSB residence the paper's §VI-A attack observes.

import (
	"testing"

	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/staticlint"
	"deaduops/internal/victim"
)

const (
	tagLarge = 0xFF // bit 0x80 set: large-tag path
	tagSmall = 0x01 // bit 0x80 clear: small-tag path
	vpdOff   = 5
	maxCyc   = 50_000
)

func vpdSpecFor(l victim.Layout) staticlint.Spec {
	return staticlint.Spec{
		SecretRanges: []staticlint.MemRange{
			{Start: l.SecretBase, End: l.SecretBase + uint64(l.ArrayLen)},
			{Start: l.Secret2Addr, End: l.Secret2Addr + 8},
		},
	}
}

// tagDivergence lints the vpd fixture and returns the footprint
// divergence finding for its tag branch.
func tagDivergence(t *testing.T) staticlint.Finding {
	t.Helper()
	l := victim.DefaultLayout()
	p := victim.BuildPCIVPD(l)
	target := p.MustLabel("vpd_large_path")
	r := staticlint.Lint(p, vpdSpecFor(l), staticlint.DefaultConfig())
	for _, f := range r.ByChecker("dsb-footprint-divergence") {
		in := p.At(f.Addr)
		if in != nil && in.Op == isa.JCC && uint64(in.Imm) == target {
			return f
		}
	}
	t.Fatal("linter did not flag the tag branch with footprint divergence")
	return staticlint.Finding{}
}

// newVPDCore builds a fresh core with the vpd program and its data
// image (array length + one header byte) installed.
func newVPDCore(t *testing.T, tag int64) *cpu.CPU {
	t.Helper()
	l := victim.DefaultLayout()
	c := cpu.New(cpu.Intel())
	c.LoadProgram(victim.BuildPCIVPD(l))
	c.Mem().Write(l.ArraySizeAddr, 8, int64(l.ArrayLen))
	c.Mem().Write(l.ArrayBase+vpdOff, 1, tag)
	return c
}

// runVPD executes one in-bounds call of the routine.
func runVPD(t *testing.T, c *cpu.CPU, entry uint64) cpu.RunResult {
	t.Helper()
	c.SetReg(0, victim.RegArg, vpdOff)
	c.SetReg(0, isa.R2, 0)
	res := c.Run(0, entry, maxCyc)
	if res.TimedOut {
		t.Fatal("vpd run timed out")
	}
	return res
}

// fillPattern runs one direction on a fresh core (training the
// predictors first and flushing the cache so wrong-path fills from the
// cold first run don't blur the picture) and returns the per-set way
// occupancy it leaves in the micro-op cache.
func fillPattern(t *testing.T, tag int64) map[int]int {
	t.Helper()
	c := newVPDCore(t, tag)
	entry := victim.BuildPCIVPD(victim.DefaultLayout()).MustLabel("main")
	for i := 0; i < 3; i++ {
		runVPD(t, c, entry)
	}
	c.FlushUopCache()
	runVPD(t, c, entry)
	occ := map[int]int{}
	for _, li := range c.UopCache().Snapshot() {
		occ[li.Set]++
	}
	return occ
}

func TestPredictedDivergentSetsDifferInModel(t *testing.T) {
	f := tagDivergence(t)
	if len(f.DivergentSets) == 0 {
		t.Fatal("divergence finding lists no sets")
	}
	occLarge := fillPattern(t, tagLarge)
	occSmall := fillPattern(t, tagSmall)

	differ := 0
	for _, s := range f.DivergentSets {
		if occLarge[s] != occSmall[s] {
			differ++
		}
	}
	t.Logf("predicted divergent sets %v: %d/%d differ in the model (large %v, small %v)",
		f.DivergentSets, differ, len(f.DivergentSets), occLarge, occSmall)
	if differ == 0 {
		t.Errorf("no predicted divergent set differs: predicted %v, large %v, small %v",
			f.DivergentSets, occLarge, occSmall)
	}
}

// measureProbe trains a core on one direction, then measures a probe
// run of a fixed direction (the large path) on it.
func measureProbe(t *testing.T, trainTag int64) cpu.RunResult {
	t.Helper()
	l := victim.DefaultLayout()
	c := newVPDCore(t, trainTag)
	entry := victim.BuildPCIVPD(l).MustLabel("main")
	for i := 0; i < 4; i++ {
		runVPD(t, c, entry)
	}
	c.Mem().Write(l.ArrayBase+vpdOff, 1, tagLarge)
	return runVPD(t, c, entry)
}

func TestFlaggedBranchShowsFrontEndCycleDelta(t *testing.T) {
	// The linter must have flagged the branch for the delta to count as
	// validation of a finding.
	tagDivergence(t)

	same := measureProbe(t, tagLarge)  // probe path resident in the DSB
	cross := measureProbe(t, tagSmall) // probe path cold: MITE refill
	t.Logf("probe of large path: warm %d cycles, cold %d cycles", same.Cycles, cross.Cycles)
	if cross.Cycles <= same.Cycles {
		t.Errorf("no front-end cycle delta: warm %d, cold %d", same.Cycles, cross.Cycles)
	}
}
