package staticlint

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// Tests for the interprocedural summary layer: call-graph construction,
// bottom-up SCC fixpoints, summary application at call sites, and the
// call-chain traces findings carry.

// lintRegs lints p with regs declared secret at entry.
func lintRegs(p *asm.Program, regs ...isa.Reg) *Report {
	return Lint(p, Spec{SecretRegs: regs}, DefaultConfig())
}

func TestCalleeKillNoFinding(t *testing.T) {
	// The callee zeroes the tainted register with the xor-self idiom;
	// its summary must report the kill, so the caller's branch on the
	// returned (clean) value is not flagged.
	b := asm.New(0x1000)
	b.Call("sanitize")
	b.Cmpi(isa.R0, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("sanitize")
	b.Xor(isa.R0, isa.R0)
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R0)
	if len(r.Findings) != 0 {
		t.Fatalf("findings after callee kill: %v", r.Findings)
	}
}

func TestCalleePreservesTaint(t *testing.T) {
	// A callee that never touches the tainted register must pass the
	// taint through its summary: the caller's branch stays flagged.
	b := asm.New(0x1000)
	b.Call("noop")
	cmp := b.PC()
	b.Cmpi(isa.R0, 0)
	_ = cmp
	branch := b.PC()
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("noop")
	b.Movi(isa.R3, 1)
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R0)
	fs := r.ByChecker("secret-dependent-branch")
	if len(fs) != 1 || fs[0].Addr != branch {
		t.Fatalf("branch findings = %v, want one at %#x", fs, branch)
	}
	if fs[0].Conf != Definite {
		t.Errorf("confidence = %v, want definite (register taint is exact)", fs[0].Conf)
	}
	if len(fs[0].CallChain) != 0 {
		t.Errorf("branch in the root function carries a call chain: %v", fs[0].CallChain)
	}
}

func TestDirectRecursionConverges(t *testing.T) {
	// A directly recursive callee: the SCC iteration must terminate and
	// still report that the recursion preserves the secret register.
	b := asm.New(0x1000)
	b.Movi(isa.R1, 3)
	b.Call("countdown")
	branch := b.PC() + 4 // the JCC after the CMP below
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("countdown")
	b.Cmpi(isa.R1, 0)
	b.Jcc(isa.EQ, "done")
	b.Subi(isa.R1, 1)
	b.Call("countdown")
	b.Label("done")
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R2)
	fs := r.ByChecker("secret-dependent-branch")
	if len(fs) != 1 || fs[0].Addr != branch {
		t.Fatalf("branch findings = %v, want one at %#x", fs, branch)
	}
}

// mutualProg builds the two-function cycle: ping kills R5 before any
// recursion, pong has a path (its early-out) that never reaches ping's
// kill. target picks the function main calls.
func mutualProg(target string) *asm.Program {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 3)
	b.Call(target)
	b.Cmpi(isa.R5, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("ping")
	b.Xor(isa.R5, isa.R5)
	b.Cmpi(isa.R1, 0)
	b.Jcc(isa.EQ, "ping_out")
	b.Subi(isa.R1, 1)
	b.Call("pong")
	b.Label("ping_out")
	b.Ret()
	b.Org(0x3000)
	b.Label("pong")
	b.Cmpi(isa.R1, 0)
	b.Jcc(isa.EQ, "pong_out")
	b.Subi(isa.R1, 1)
	b.Call("ping")
	b.Label("pong_out")
	b.Ret()
	return b.MustBuild()
}

func TestMutualRecursionKillOnEveryPath(t *testing.T) {
	// Calling ping: every path through the 2-cycle SCC passes ping's
	// xor-self first, so the joined summary kills R5 and the caller's
	// branch is clean.
	r := lintRegs(mutualProg("ping"), isa.R5)
	if fs := r.ByChecker("secret-dependent-branch"); len(fs) != 0 {
		t.Fatalf("branch flagged despite kill on every path: %v", fs)
	}
}

func TestMutualRecursionKillOnSomePaths(t *testing.T) {
	// Calling pong: its early-out returns without ever reaching ping's
	// kill, so the joined summary must keep R5's input taint (may-taint
	// join) and the caller's branch stays flagged.
	r := lintRegs(mutualProg("pong"), isa.R5)
	if fs := r.ByChecker("secret-dependent-branch"); len(fs) != 1 {
		t.Fatalf("branch findings = %v, want one (pong's early-out preserves R5)", fs)
	}
}

func TestIndirectCalleeHavoc(t *testing.T) {
	// An indirect call has no resolvable summary: the conservative havoc
	// must smear the live secret taint into every register, so a branch
	// on a register the callee "could" have written is still reported.
	b := asm.New(0x1000)
	b.Movi(isa.R3, 0)
	b.Movi(isa.R6, 0x5000)
	b.Calli(isa.R6)
	branch := b.PC() + 4
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	r := lintRegs(b.MustBuild(), isa.R2)
	found := false
	for _, f := range r.ByChecker("secret-dependent-branch") {
		if f.Addr == branch {
			found = true
		}
	}
	if !found {
		t.Fatalf("havoc did not smear live taint into R3; findings: %v", r.Findings)
	}
}

func TestHavocWithoutLiveTaintStaysClean(t *testing.T) {
	// With no live secret taint at the indirect call, havoc has nothing
	// to smear: the same shape with no secret declared reports nothing.
	b := asm.New(0x1000)
	b.Movi(isa.R3, 0)
	b.Movi(isa.R6, 0x5000)
	b.Calli(isa.R6)
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	r := Lint(b.MustBuild(), Spec{}, DefaultConfig())
	if len(r.Findings) != 0 {
		t.Fatalf("findings without any secret: %v", r.Findings)
	}
}

// retPushProg spills the secret R5 at offset off below the stack
// pointer, kills the register, calls a leaf, then branches on a reload
// of [R15-8] — the slot the CALL's return-address push overwrites.
func retPushProg(off int64) *asm.Program {
	b := asm.New(0x1000)
	b.Movi(isa.R15, 0x8000)
	b.Store(isa.R15, off, isa.R5) // spill the secret below SP
	b.Movi(isa.R5, 0)             // kill the register copy
	b.Call("leaf")
	b.Load(isa.R3, isa.R15, -8) // reload the return-address slot
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("leaf")
	b.Ret()
	return b.MustBuild()
}

func TestReturnAddressPushCleansSlot(t *testing.T) {
	// The spill goes to [R15-8]: the CALL's return-address push is a
	// store to that exact slot, so the stale secret is overwritten and
	// the post-return reload is clean. Before the push was modelled the
	// reload read the stale spill and raised a false positive.
	r := lintRegs(retPushProg(-8), isa.R5)
	if len(r.Findings) != 0 {
		t.Fatalf("stale-spill false positive survived the push model: %v", r.Findings)
	}
}

func TestReturnAddressPushOnlyCleansItsSlot(t *testing.T) {
	// Negative control: the spill goes to [R15-16], one slot below the
	// pushed return address — the secret survives the call and the
	// reload of [R15-8]... stays clean, but a reload of the spill slot
	// itself must still be tainted.
	b := asm.New(0x1000)
	b.Movi(isa.R15, 0x8000)
	b.Store(isa.R15, -16, isa.R5)
	b.Movi(isa.R5, 0)
	b.Call("leaf")
	b.Load(isa.R3, isa.R15, -16) // reload the untouched spill slot
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("leaf")
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R5)
	if fs := r.ByChecker("secret-dependent-branch"); len(fs) != 1 {
		t.Fatalf("spill one slot past the push must stay tainted; findings: %v", r.Findings)
	}
}

func TestCallChainAttached(t *testing.T) {
	// A finding inside a function only reachable through a call carries
	// the chain from the root caller down to the callee.
	b := asm.New(0x1000)
	site := b.PC()
	b.Call("h")
	b.Halt()
	b.Org(0x2000)
	b.Label("h")
	b.Cmpi(isa.R4, 0)
	branch := b.PC()
	b.Jcc(isa.NE, "hh")
	b.Label("hh")
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R4)
	var hit *Finding
	for i, f := range r.ByChecker("secret-dependent-branch") {
		if f.Addr == branch {
			hit = &r.ByChecker("secret-dependent-branch")[i]
		}
	}
	if hit == nil {
		t.Fatalf("callee branch not flagged: %v", r.Findings)
	}
	if len(hit.CallChain) != 1 {
		t.Fatalf("call chain = %v, want one frame", hit.CallChain)
	}
	fr := hit.CallChain[0]
	if fr.CallSite != site || fr.Callee != 0x2000 || fr.CalleeLabel != "h" {
		t.Errorf("frame = %+v, want call@%#x → h@0x2000", fr, site)
	}
}

func TestGadgetCrossFunction(t *testing.T) {
	// The transient window follows the call: a guarded load in the
	// caller disclosed by a branch in the callee is one cross-function
	// µop-cache gadget, attributed to both functions.
	b := asm.New(0x1000)
	b.Label("gmain")
	b.Cmpi(isa.R1, 64)
	b.Jcc(isa.AE, "gout")
	b.Loadb(isa.R2, isa.R1, 0x2000)
	b.Call("gsink")
	b.Label("gout")
	b.Halt()
	b.Org(0x1100)
	b.Label("gsink")
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "gs_out")
	b.Label("gs_out")
	b.Ret()
	p := b.MustBuild()
	hits := ScanGadgets(p, DefaultConfig())
	var cross *GadgetHit
	for i, h := range hits {
		if h.Kind == GadgetUopCache && h.CrossFunction {
			cross = &hits[i]
		}
	}
	if cross == nil {
		t.Fatalf("no cross-function µop-cache gadget: %v", hits)
	}
	if cross.LoadFunc != 0x1000 || cross.SinkFunc != 0x1100 {
		t.Errorf("attribution = load %#x sink %#x, want 0x1000/0x1100",
			cross.LoadFunc, cross.SinkFunc)
	}
}

func TestSummaryAppliedInsteadOfFlowThrough(t *testing.T) {
	// A callee that moves the taint between registers: the caller must
	// see the taint in the destination, not the source — the summary's
	// transfer function, not a blind pass-through.
	b := asm.New(0x1000)
	b.Call("shuffle")
	b.Cmpi(isa.R7, 0) // taint arrived in R7
	b.Jcc(isa.NE, "x")
	b.Label("x")
	b.Cmpi(isa.R0, 0) // ...and left R0 (shuffle zeroed it)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("shuffle")
	b.Mov(isa.R7, isa.R0)
	b.Xor(isa.R0, isa.R0)
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R0)
	fs := r.ByChecker("secret-dependent-branch")
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly the R7 branch", fs)
	}
	if fs[0].Addr != 0x1000+5+4 {
		t.Errorf("flagged %#x, want the first branch (on R7)", fs[0].Addr)
	}
}
