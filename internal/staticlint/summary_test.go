package staticlint

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// Tests for the interprocedural summary layer: call-graph construction,
// bottom-up SCC fixpoints, summary application at call sites, and the
// call-chain traces findings carry.

// lintRegs lints p with regs declared secret at entry.
func lintRegs(p *asm.Program, regs ...isa.Reg) *Report {
	return Lint(p, Spec{SecretRegs: regs}, DefaultConfig())
}

func TestCalleeKillNoFinding(t *testing.T) {
	// The callee zeroes the tainted register with the xor-self idiom;
	// its summary must report the kill, so the caller's branch on the
	// returned (clean) value is not flagged.
	b := asm.New(0x1000)
	b.Call("sanitize")
	b.Cmpi(isa.R0, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("sanitize")
	b.Xor(isa.R0, isa.R0)
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R0)
	if len(r.Findings) != 0 {
		t.Fatalf("findings after callee kill: %v", r.Findings)
	}
}

func TestCalleePreservesTaint(t *testing.T) {
	// A callee that never touches the tainted register must pass the
	// taint through its summary: the caller's branch stays flagged.
	b := asm.New(0x1000)
	b.Call("noop")
	cmp := b.PC()
	b.Cmpi(isa.R0, 0)
	_ = cmp
	branch := b.PC()
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("noop")
	b.Movi(isa.R3, 1)
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R0)
	fs := r.ByChecker("secret-dependent-branch")
	if len(fs) != 1 || fs[0].Addr != branch {
		t.Fatalf("branch findings = %v, want one at %#x", fs, branch)
	}
	if fs[0].Conf != Definite {
		t.Errorf("confidence = %v, want definite (register taint is exact)", fs[0].Conf)
	}
	if len(fs[0].CallChain) != 0 {
		t.Errorf("branch in the root function carries a call chain: %v", fs[0].CallChain)
	}
}

func TestDirectRecursionConverges(t *testing.T) {
	// A directly recursive callee: the SCC iteration must terminate and
	// still report that the recursion preserves the secret register.
	b := asm.New(0x1000)
	b.Movi(isa.R1, 3)
	b.Call("countdown")
	branch := b.PC() + 4 // the JCC after the CMP below
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("countdown")
	b.Cmpi(isa.R1, 0)
	b.Jcc(isa.EQ, "done")
	b.Subi(isa.R1, 1)
	b.Call("countdown")
	b.Label("done")
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R2)
	fs := r.ByChecker("secret-dependent-branch")
	if len(fs) != 1 || fs[0].Addr != branch {
		t.Fatalf("branch findings = %v, want one at %#x", fs, branch)
	}
}

// mutualProg builds the two-function cycle: ping kills R5 before any
// recursion, pong has a path (its early-out) that never reaches ping's
// kill. target picks the function main calls.
func mutualProg(target string) *asm.Program {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 3)
	b.Call(target)
	b.Cmpi(isa.R5, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("ping")
	b.Xor(isa.R5, isa.R5)
	b.Cmpi(isa.R1, 0)
	b.Jcc(isa.EQ, "ping_out")
	b.Subi(isa.R1, 1)
	b.Call("pong")
	b.Label("ping_out")
	b.Ret()
	b.Org(0x3000)
	b.Label("pong")
	b.Cmpi(isa.R1, 0)
	b.Jcc(isa.EQ, "pong_out")
	b.Subi(isa.R1, 1)
	b.Call("ping")
	b.Label("pong_out")
	b.Ret()
	return b.MustBuild()
}

func TestMutualRecursionKillOnEveryPath(t *testing.T) {
	// Calling ping: every path through the 2-cycle SCC passes ping's
	// xor-self first, so the joined summary kills R5 and the caller's
	// branch is clean.
	r := lintRegs(mutualProg("ping"), isa.R5)
	if fs := r.ByChecker("secret-dependent-branch"); len(fs) != 0 {
		t.Fatalf("branch flagged despite kill on every path: %v", fs)
	}
}

func TestMutualRecursionKillOnSomePaths(t *testing.T) {
	// Calling pong: its early-out returns without ever reaching ping's
	// kill, so the joined summary must keep R5's input taint (may-taint
	// join) and the caller's branch stays flagged.
	r := lintRegs(mutualProg("pong"), isa.R5)
	if fs := r.ByChecker("secret-dependent-branch"); len(fs) != 1 {
		t.Fatalf("branch findings = %v, want one (pong's early-out preserves R5)", fs)
	}
}

func TestIndirectCalleeHavoc(t *testing.T) {
	// An indirect call has no resolvable summary: the conservative havoc
	// must smear the live secret taint into every register, so a branch
	// on a register the callee "could" have written is still reported.
	b := asm.New(0x1000)
	b.Movi(isa.R3, 0)
	b.Movi(isa.R6, 0x5000)
	b.Calli(isa.R6)
	branch := b.PC() + 4
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	r := lintRegs(b.MustBuild(), isa.R2)
	found := false
	for _, f := range r.ByChecker("secret-dependent-branch") {
		if f.Addr == branch {
			found = true
		}
	}
	if !found {
		t.Fatalf("havoc did not smear live taint into R3; findings: %v", r.Findings)
	}
}

func TestHavocWithoutLiveTaintStaysClean(t *testing.T) {
	// With no live secret taint at the indirect call, havoc has nothing
	// to smear: the same shape with no secret declared reports nothing.
	b := asm.New(0x1000)
	b.Movi(isa.R3, 0)
	b.Movi(isa.R6, 0x5000)
	b.Calli(isa.R6)
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	r := Lint(b.MustBuild(), Spec{}, DefaultConfig())
	if len(r.Findings) != 0 {
		t.Fatalf("findings without any secret: %v", r.Findings)
	}
}

// retPushProg spills the secret R5 at offset off below the stack
// pointer, kills the register, calls a leaf, then branches on a reload
// of [R15-8] — the slot the CALL's return-address push overwrites.
func retPushProg(off int64) *asm.Program {
	b := asm.New(0x1000)
	b.Movi(isa.R15, 0x8000)
	b.Store(isa.R15, off, isa.R5) // spill the secret below SP
	b.Movi(isa.R5, 0)             // kill the register copy
	b.Call("leaf")
	b.Load(isa.R3, isa.R15, -8) // reload the return-address slot
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("leaf")
	b.Ret()
	return b.MustBuild()
}

func TestReturnAddressPushCleansSlot(t *testing.T) {
	// The spill goes to [R15-8]: the CALL's return-address push is a
	// store to that exact slot, so the stale secret is overwritten and
	// the post-return reload is clean. Before the push was modelled the
	// reload read the stale spill and raised a false positive.
	r := lintRegs(retPushProg(-8), isa.R5)
	if len(r.Findings) != 0 {
		t.Fatalf("stale-spill false positive survived the push model: %v", r.Findings)
	}
}

func TestReturnAddressPushOnlyCleansItsSlot(t *testing.T) {
	// Negative control: the spill goes to [R15-16], one slot below the
	// pushed return address — the secret survives the call and the
	// reload of [R15-8]... stays clean, but a reload of the spill slot
	// itself must still be tainted.
	b := asm.New(0x1000)
	b.Movi(isa.R15, 0x8000)
	b.Store(isa.R15, -16, isa.R5)
	b.Movi(isa.R5, 0)
	b.Call("leaf")
	b.Load(isa.R3, isa.R15, -16) // reload the untouched spill slot
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("leaf")
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R5)
	if fs := r.ByChecker("secret-dependent-branch"); len(fs) != 1 {
		t.Fatalf("spill one slot past the push must stay tainted; findings: %v", r.Findings)
	}
}

func TestCallChainAttached(t *testing.T) {
	// A finding inside a function only reachable through a call carries
	// the chain from the root caller down to the callee.
	b := asm.New(0x1000)
	site := b.PC()
	b.Call("h")
	b.Halt()
	b.Org(0x2000)
	b.Label("h")
	b.Cmpi(isa.R4, 0)
	branch := b.PC()
	b.Jcc(isa.NE, "hh")
	b.Label("hh")
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R4)
	var hit *Finding
	for i, f := range r.ByChecker("secret-dependent-branch") {
		if f.Addr == branch {
			hit = &r.ByChecker("secret-dependent-branch")[i]
		}
	}
	if hit == nil {
		t.Fatalf("callee branch not flagged: %v", r.Findings)
	}
	if len(hit.CallChain) != 1 {
		t.Fatalf("call chain = %v, want one frame", hit.CallChain)
	}
	fr := hit.CallChain[0]
	if fr.CallSite != site || fr.Callee != 0x2000 || fr.CalleeLabel != "h" {
		t.Errorf("frame = %+v, want call@%#x → h@0x2000", fr, site)
	}
}

func TestGadgetCrossFunction(t *testing.T) {
	// The transient window follows the call: a guarded load in the
	// caller disclosed by a branch in the callee is one cross-function
	// µop-cache gadget, attributed to both functions.
	b := asm.New(0x1000)
	b.Label("gmain")
	b.Cmpi(isa.R1, 64)
	b.Jcc(isa.AE, "gout")
	b.Loadb(isa.R2, isa.R1, 0x2000)
	b.Call("gsink")
	b.Label("gout")
	b.Halt()
	b.Org(0x1100)
	b.Label("gsink")
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "gs_out")
	b.Label("gs_out")
	b.Ret()
	p := b.MustBuild()
	hits := ScanGadgets(p, DefaultConfig())
	var cross *GadgetHit
	for i, h := range hits {
		if h.Kind == GadgetUopCache && h.CrossFunction {
			cross = &hits[i]
		}
	}
	if cross == nil {
		t.Fatalf("no cross-function µop-cache gadget: %v", hits)
	}
	if cross.LoadFunc != 0x1000 || cross.SinkFunc != 0x1100 {
		t.Errorf("attribution = load %#x sink %#x, want 0x1000/0x1100",
			cross.LoadFunc, cross.SinkFunc)
	}
}

func TestCallerSpillSurvivesCalleeStackReload(t *testing.T) {
	// REVIEW regression (confirmed false negative): the caller spills
	// the secret at its own [SP], zeroes the register, and calls a
	// callee that reloads the slot stack-relative — [R15+8] after the
	// return-address push. The cell is untracked in the callee's
	// symbolic frame but sits in the CALLER's frame, so the summary
	// must carry the caller-memory dependence (paramMem), not read it
	// as clean, and the caller's branch on the returned value must be
	// flagged.
	b := asm.New(0x1000)
	b.Movi(isa.R15, 0x8000)
	b.Store(isa.R15, 0, isa.R5) // spill the secret at the caller's [SP]
	b.Movi(isa.R5, 0)           // kill the register copy
	b.Call("peek")
	b.Cmpi(isa.R3, 0)
	branch := b.PC()
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("peek")
	b.Load(isa.R3, isa.R15, 8) // caller's [SP]: one slot above the pushed return address
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R5)
	fs := r.ByChecker("secret-dependent-branch")
	if len(fs) != 1 || fs[0].Addr != branch {
		t.Fatalf("branch findings = %v, want one at %#x (caller-frame reload must stay tainted)", fs, branch)
	}
}

func TestCalleeFreshFrameReadStaysClean(t *testing.T) {
	// Precision control for the caller-frame fix: an untracked cell
	// strictly below the callee's entry SP is the callee's own fresh
	// frame — never written, provably clean — so the caller's tainted
	// memory must NOT smear into a reload from it.
	b := asm.New(0x1000)
	b.Movi(isa.R15, 0x8000)
	b.Store(isa.R15, 0, isa.R5)
	b.Movi(isa.R5, 0)
	b.Call("scratch")
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("scratch")
	b.Load(isa.R3, isa.R15, -16) // the callee's own (never-written) frame
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R5)
	if len(r.Findings) != 0 {
		t.Fatalf("fresh-frame reload raised findings: %v", r.Findings)
	}
}

func TestCalleeReturnAddressReadStaysClean(t *testing.T) {
	// The slot at the callee's entry SP holds the CALL-pushed return
	// address — a clean code address — so a reload of [R15] inside the
	// callee stays clean even though it sits at the caller-frame
	// boundary.
	b := asm.New(0x1000)
	b.Movi(isa.R15, 0x8000)
	b.Store(isa.R15, 0, isa.R5)
	b.Movi(isa.R5, 0)
	b.Call("retpeek")
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("retpeek")
	b.Load(isa.R3, isa.R15, 0) // the return-address slot itself
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R5)
	if len(r.Findings) != 0 {
		t.Fatalf("return-address reload raised findings: %v", r.Findings)
	}
}

func TestFlowCapDegradesSummariesToHavoc(t *testing.T) {
	// A fixpoint cut short by the worklist safety cap yields an
	// under-approximating transfer; summarize must degrade the function
	// to havoc instead of letting every call site apply partial facts.
	old := flowStepCap
	flowStepCap = func(int) int { return 0 }
	defer func() { flowStepCap = old }()
	b := asm.New(0x1000)
	b.Call("sanitize")
	b.Halt()
	b.Org(0x2000)
	b.Label("sanitize")
	b.Xor(isa.R0, isa.R0)
	b.Ret()
	a := Analyze(b.MustBuild(), Spec{SecretRegs: []isa.Reg{isa.R0}}, DefaultConfig())
	if len(a.summaries) == 0 {
		t.Fatal("no summaries computed")
	}
	for entry, s := range a.summaries {
		if !s.havoc {
			t.Errorf("summary of %#x survived a capped fixpoint: %+v", entry, s)
		}
	}
}

func TestSummaryAppliedInsteadOfFlowThrough(t *testing.T) {
	// A callee that moves the taint between registers: the caller must
	// see the taint in the destination, not the source — the summary's
	// transfer function, not a blind pass-through.
	b := asm.New(0x1000)
	b.Call("shuffle")
	b.Cmpi(isa.R7, 0) // taint arrived in R7
	b.Jcc(isa.NE, "x")
	b.Label("x")
	b.Cmpi(isa.R0, 0) // ...and left R0 (shuffle zeroed it)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	b.Org(0x2000)
	b.Label("shuffle")
	b.Mov(isa.R7, isa.R0)
	b.Xor(isa.R0, isa.R0)
	b.Ret()
	r := lintRegs(b.MustBuild(), isa.R0)
	fs := r.ByChecker("secret-dependent-branch")
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly the R7 branch", fs)
	}
	if fs[0].Addr != 0x1000+5+4 {
		t.Errorf("flagged %#x, want the first branch (on R7)", fs[0].Addr)
	}
}
