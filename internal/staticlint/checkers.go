package staticlint

import (
	"fmt"
	"sort"

	"deaduops/internal/decode"
	"deaduops/internal/isa"
	"deaduops/internal/uopcache"
)

// secretBranch is a control transfer whose outcome depends on secret
// taint, with the taint that reaches it.
type secretBranch struct {
	inst  *isa.Inst
	taint taintSet
	conf  Confidence
}

// secretBranches enumerates every conditional or indirect control
// transfer whose predicate (flags) or target register carries secret
// taint at the fixpoint.
func (a *Analysis) secretBranches() []secretBranch {
	var out []secretBranch
	for bi, b := range a.CFG.Blocks {
		if !a.reached[bi] {
			continue
		}
		st := a.in[bi].clone()
		for _, in := range b.Insts {
			var t taintSet
			switch in.Op {
			case isa.JCC:
				t = st.Flags
			case isa.JMPI, isa.CALLI:
				t = st.Regs[in.Dst&0x0F]
			}
			def, may := a.SecretTaint(t)
			if def|may != 0 {
				conf := May
				if def != 0 {
					conf = Definite
				}
				out = append(out, secretBranch{inst: in, taint: def | may, conf: conf})
			}
			a.step(st, in, nil)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].inst.Addr < out[j].inst.Addr })
	return out
}

// sourceStrings renders the sources of set for a finding.
func (a *Analysis) sourceStrings(set taintSet) []string {
	var out []string
	for _, s := range a.SourcesOf(set) {
		out = append(out, s.String())
	}
	return out
}

// SecretBranchChecker flags secret-dependent control flow — the
// constant-time violation enabling the paper's attack: the victim's
// fetch footprint becomes a function of the secret.
type SecretBranchChecker struct{}

// Name implements Checker.
func (SecretBranchChecker) Name() string { return "secret-dependent-branch" }

// Check implements Checker.
func (c SecretBranchChecker) Check(a *Analysis) []Finding {
	var out []Finding
	for _, sb := range a.secretBranches() {
		kind := "conditional branch"
		if sb.inst.Op == isa.JMPI {
			kind = "indirect jump"
		} else if sb.inst.Op == isa.CALLI {
			kind = "indirect call"
		}
		out = append(out, Finding{
			Checker:   c.Name(),
			Severity:  SevError,
			Conf:      sb.conf,
			Addr:      sb.inst.Addr,
			Message:   fmt.Sprintf("%s %v depends on secret data (constant-time violation)", kind, sb.inst),
			Sources:   a.sourceStrings(sb.taint),
			CallChain: a.callChainTo(sb.inst.Addr),
		})
	}
	return out
}

// pathInfo is the straight-line over-approximation of one successor
// path: the fetch ranges it touches and the macro-ops on it.
type pathInfo struct {
	Ranges []uopcache.Range
	Insts  []*isa.Inst
}

// walkPath follows fetch from start — sequentially, through direct
// jumps, into direct calls and back out through their returns, along
// the fall-through of nested conditional branches — for up to budget
// macro-ops, and returns the address ranges touched. The walk keeps a
// return-address stack so a callee's RET resumes at the call's return
// site, matching the fetch stream the simulator's return predictor
// produces; a RET with an empty stack (the walk started inside the
// callee), indirect control flow, HALT, system crossings, unmapped
// addresses, and revisits end the walk.
func (a *Analysis) walkPath(start uint64, budget int) pathInfo {
	return a.walkPathStop(start, 0, budget)
}

// walkPathStop is walkPath with an optional stop address: a nonzero
// stop ends the walk when fetch reaches it (exclusive), so a caller
// can bound a path at a branch of interest.
func (a *Analysis) walkPathStop(start, stop uint64, budget int) pathInfo {
	var p pathInfo
	visited := make(map[uint64]bool)
	var retStack []uint64
	pc := start
	rangeStart := start
	closeRange := func(end uint64) {
		if end > rangeStart {
			p.Ranges = append(p.Ranges, uopcache.Range{Start: rangeStart, End: end})
		}
	}
	for i := 0; i < budget; i++ {
		if stop != 0 && pc == stop {
			closeRange(pc)
			return p
		}
		in := a.Prog.At(pc)
		if in == nil || visited[pc] {
			closeRange(pc)
			return p
		}
		visited[pc] = true
		p.Insts = append(p.Insts, in)
		switch in.Op {
		case isa.JMP:
			closeRange(in.End())
			pc = uint64(in.Imm)
			rangeStart = pc
		case isa.CALL:
			closeRange(in.End())
			retStack = append(retStack, in.End())
			pc = uint64(in.Imm)
			rangeStart = pc
		case isa.RET:
			closeRange(in.End())
			if len(retStack) == 0 {
				return p
			}
			pc = retStack[len(retStack)-1]
			retStack = retStack[:len(retStack)-1]
			rangeStart = pc
		case isa.JMPI, isa.CALLI:
			// A singleton-resolved indirect transfer continues the walk
			// like its direct counterpart (the simulator's indirect
			// predictor converges on the one target after training). A
			// multi-target or unresolved site still ends the walk: the
			// straight-line path model has no single successor to follow.
			if ts := a.resolved[in.Addr]; len(ts) == 1 {
				closeRange(in.End())
				if in.Op == isa.CALLI {
					retStack = append(retStack, in.End())
				}
				pc = ts[0]
				rangeStart = pc
				continue
			}
			closeRange(in.End())
			return p
		case isa.HALT, isa.SYSCALL, isa.SYSRET:
			closeRange(in.End())
			return p
		default:
			pc = in.End()
		}
	}
	closeRange(pc)
	return p
}

// footprintOf computes the micro-op cache footprint of one path.
func (a *Analysis) footprintOf(p pathInfo) uopcache.FootprintResult {
	return uopcache.FootprintRanges(a.Cfg.UopCache, a.Prog, p.Ranges, decode.Macros(a.Cfg.Decode))
}

// occupancyList converts a footprint's set map to a sorted slice.
func occupancyList(f uopcache.FootprintResult) []SetOccupancy {
	var out []SetOccupancy
	for _, s := range f.SetList() {
		out = append(out, SetOccupancy{Set: s, Ways: f.Sets[s]})
	}
	return out
}

// divergentSets lists the sets whose way occupancy differs between two
// footprints, ascending.
func divergentSets(x, y uopcache.FootprintResult) []int {
	seen := make(map[int]bool)
	var out []int
	for s, w := range x.Sets {
		if y.Sets[s] != w && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for s, w := range y.Sets {
		if x.Sets[s] != w && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// FootprintDivergenceChecker flags secret-dependent conditional
// branches whose two successor paths occupy different micro-op cache
// sets/ways under the placement rules — the condition that makes the
// secret observable through the paper's prime+probe timing contract
// (§IV): an attacker probing the divergent sets sees which path the
// victim fetched.
type FootprintDivergenceChecker struct{}

// Name implements Checker.
func (FootprintDivergenceChecker) Name() string { return "dsb-footprint-divergence" }

// Check implements Checker.
func (c FootprintDivergenceChecker) Check(a *Analysis) []Finding {
	// With the DSB disabled every region is MITE-delivered on both
	// paths — there is no set occupancy for an attacker to probe, so
	// the channel this checker prices vanishes by construction.
	if a.Cfg.UopCache.Disabled {
		return nil
	}
	var out []Finding
	for _, sb := range a.secretBranches() {
		if sb.inst.Op != isa.JCC {
			continue
		}
		takenPath := a.walkPath(uint64(sb.inst.Imm), a.Cfg.PathBudget)
		fallPath := a.walkPath(sb.inst.End(), a.Cfg.PathBudget)
		taken := a.footprintOf(takenPath)
		fall := a.footprintOf(fallPath)
		if taken.Equal(&fall) {
			continue
		}
		div := divergentSets(taken, fall)

		// Quantify: price both successor paths with the shared cost
		// table. The signed headline delta is the difference between
		// the directions' refill penalties — what a receiver probing
		// the divergent sets observes as the victim-side asymmetry.
		takenCost := a.CostRanges(takenPath.Ranges)
		fallCost := a.CostRanges(fallPath.Ranges)
		delta := takenCost.RefillDelta - fallCost.RefillDelta

		msg := fmt.Sprintf(
			"secret-dependent branch %v: successor paths have divergent µop-cache footprints (%d set(s) differ)",
			sb.inst, len(div))
		if taken.Uncacheable != fall.Uncacheable {
			msg += fmt.Sprintf("; uncacheable regions differ (%d vs %d, MITE-delivered)",
				taken.Uncacheable, fall.Uncacheable)
		}
		msg += fmt.Sprintf("; predicted refill taken +%dc vs fallthrough +%dc (probe delta %+dc)",
			takenCost.RefillDelta, fallCost.RefillDelta, delta)

		// Receiver model: predict the prime/probe timing histogram an
		// attacker measuring the divergent sets would collect. A model
		// failure (e.g. disabled by config) degrades the finding, not
		// the run.
		probe, perr := ProbeModel(a.Cfg, taken, fall, div)
		if perr == nil {
			msg += fmt.Sprintf("; attacker probe separation %.2f× (floor %.2f×)",
				probe.SeparationMargin, probe.SeparationFloor)
		}
		out = append(out, Finding{
			Checker:          c.Name(),
			Severity:         SevError,
			Conf:             sb.conf,
			Addr:             sb.inst.Addr,
			Message:          msg,
			Sources:          a.sourceStrings(sb.taint),
			CallChain:        a.callChainTo(sb.inst.Addr),
			TakenFootprint:   occupancyList(taken),
			FallFootprint:    occupancyList(fall),
			DivergentSets:    div,
			TakenCost:        &takenCost,
			FallCost:         &fallCost,
			ProbeDeltaCycles: delta,
			Probe:            probe,
		})
	}
	return out
}

// MITEAmplifierChecker flags LCP-stall-bearing and microcoded (MSROM)
// instructions on secret-dependent paths. Both force or lengthen
// legacy-decode delivery, widening the cycle delta between the
// DSB-hit and DSB-miss outcomes the attacker times (the paper's
// tiger/zebra microbenchmarks pad with LCP instructions for exactly
// this reason).
type MITEAmplifierChecker struct{}

// Name implements Checker.
func (MITEAmplifierChecker) Name() string { return "mite-amplifier" }

// Check implements Checker.
func (c MITEAmplifierChecker) Check(a *Analysis) []Finding {
	var out []Finding
	for _, sb := range a.secretBranches() {
		if sb.inst.Op != isa.JCC {
			continue
		}
		for _, dir := range []struct {
			name  string
			start uint64
		}{
			{"taken", uint64(sb.inst.Imm)},
			{"fallthrough", sb.inst.End()},
		} {
			p := a.walkPath(dir.start, a.Cfg.PathBudget)
			lcp, msrom := 0, 0
			var first *isa.Inst
			for _, in := range p.Insts {
				if in.LCP || in.Microcoded() {
					if first == nil {
						first = in
					}
					if in.LCP {
						lcp++
					}
					if in.Microcoded() {
						msrom++
					}
				}
			}
			if lcp+msrom == 0 {
				continue
			}
			out = append(out, Finding{
				Checker:  c.Name(),
				Severity: SevWarning,
				Conf:     sb.conf,
				Addr:     sb.inst.Addr,
				Message: fmt.Sprintf(
					"%s path of secret-dependent branch %v carries %d LCP and %d MSROM instruction(s) (first at %#x): decode-latency amplifiers widen the measurable delta",
					dir.name, sb.inst, lcp, msrom, first.Addr),
				Sources:   a.sourceStrings(sb.taint),
				CallChain: a.callChainTo(sb.inst.Addr),
			})
		}
	}
	return out
}
