package staticlint

import (
	"testing"

	"deaduops/internal/backend"
	"deaduops/internal/frontend"
	"deaduops/internal/uopcache"
)

// TestCostTableSharedWithFrontend pins the quantifier's one-source-of-
// truth contract: the cost table staticlint prices paths with must be
// the same table the cycle-level fetch engine charges its stalls
// through, extended only by the backend drain parameters the front end
// has no use for. If either side grows a constant of its own, the
// difftest calibration silently rots — this test makes the drift loud.
func TestCostTableSharedWithFrontend(t *testing.T) {
	lint := DefaultConfig().Costs()
	fe := frontend.DefaultConfig().Costs(uopcache.Skylake())

	if lint.Decode != fe.Decode {
		t.Errorf("decode configs diverge: lint %+v, frontend %+v", lint.Decode, fe.Decode)
	}
	if lint.Cache != fe.Cache {
		t.Errorf("cache configs diverge: lint %+v, frontend %+v", lint.Cache, fe.Cache)
	}
	if lint.SwitchPenalty() != fe.SwitchPenalty() {
		t.Errorf("switch penalty diverges: lint %d, frontend %d",
			lint.SwitchPenalty(), fe.SwitchPenalty())
	}
	if lint.StreamWidth() != fe.StreamWidth() {
		t.Errorf("stream width diverges: lint %d, frontend %d",
			lint.StreamWidth(), fe.StreamWidth())
	}

	// The drain bound is the quantifier's extension: width comes from
	// the live backend configuration, not a copied literal.
	if want := backend.DefaultConfig().DispatchWidth; lint.DrainWidth != want {
		t.Errorf("drain width %d, want backend dispatch width %d", lint.DrainWidth, want)
	}
	if lint.DrainLag != DefaultDrainLag {
		t.Errorf("drain lag %d, want %d", lint.DrainLag, DefaultDrainLag)
	}
}

// TestDrainBound pins the warm-run lower bound's arithmetic, including
// the whole-run pipeline-fill lag that RunCost applies and CostRanges
// (marginal path pricing) deliberately does not.
func TestDrainBound(t *testing.T) {
	ct := DefaultConfig().Costs()
	for _, tc := range []struct {
		uops, want int
	}{
		{0, DefaultDrainLag},
		{1, 1 + DefaultDrainLag},
		{4, 1 + DefaultDrainLag},
		{5, 2 + DefaultDrainLag},
		{40, 10 + DefaultDrainLag},
	} {
		if got := ct.DrainBound(tc.uops); got != tc.want {
			t.Errorf("DrainBound(%d) = %d, want %d", tc.uops, got, tc.want)
		}
		if got, want := ct.DrainCycles(tc.uops), tc.want-DefaultDrainLag; got != want {
			t.Errorf("DrainCycles(%d) = %d, want %d", tc.uops, got, want)
		}
	}
}
