package staticlint

import (
	"testing"

	"deaduops/internal/backend"
	"deaduops/internal/frontend"
	"deaduops/internal/profile"
	"deaduops/internal/uopcache"
)

// TestCostTableSharedWithFrontend pins the quantifier's one-source-of-
// truth contract: the cost table staticlint prices paths with must be
// the same table the cycle-level fetch engine charges its stalls
// through, extended only by the backend drain parameters the front end
// has no use for. If either side grows a constant of its own, the
// difftest calibration silently rots — this test makes the drift loud.
func TestCostTableSharedWithFrontend(t *testing.T) {
	lint := DefaultConfig().Costs()
	fe := frontend.DefaultConfig().Costs(uopcache.Skylake())

	if lint.Decode != fe.Decode {
		t.Errorf("decode configs diverge: lint %+v, frontend %+v", lint.Decode, fe.Decode)
	}
	if lint.Cache != fe.Cache {
		t.Errorf("cache configs diverge: lint %+v, frontend %+v", lint.Cache, fe.Cache)
	}
	if lint.SwitchPenalty() != fe.SwitchPenalty() {
		t.Errorf("switch penalty diverges: lint %d, frontend %d",
			lint.SwitchPenalty(), fe.SwitchPenalty())
	}
	if lint.StreamWidth() != fe.StreamWidth() {
		t.Errorf("stream width diverges: lint %d, frontend %d",
			lint.StreamWidth(), fe.StreamWidth())
	}

	// The drain bound is the quantifier's extension: width comes from
	// the live backend configuration, not a copied literal.
	if want := backend.DefaultConfig().DispatchWidth; lint.DrainWidth != want {
		t.Errorf("drain width %d, want backend dispatch width %d", lint.DrainWidth, want)
	}
	if lint.DrainLag != DefaultDrainLag {
		t.Errorf("drain lag %d, want %d", lint.DrainLag, DefaultDrainLag)
	}
}

// TestCostTableSharedPerProfile extends the one-source-of-truth
// contract across the whole profile matrix: for EVERY registered
// profile, the table ConfigForProfile prices with must equal the table
// the profile's own fetch engine would charge — so a future geometry
// edit to one profile cannot silently desync analyzer and simulator.
func TestCostTableSharedPerProfile(t *testing.T) {
	for _, p := range profile.All() {
		cfg := ConfigForProfile(p)
		lint := cfg.Costs()
		fe := p.Frontend().Costs(p.UopCache)

		if lint.Decode != fe.Decode {
			t.Errorf("%s: decode configs diverge: lint %+v, frontend %+v", p.Name, lint.Decode, fe.Decode)
		}
		if lint.Cache != fe.Cache {
			t.Errorf("%s: cache configs diverge: lint %+v, frontend %+v", p.Name, lint.Cache, fe.Cache)
		}
		if lint.SwitchPenalty() != fe.SwitchPenalty() {
			t.Errorf("%s: switch penalty diverges: lint %d, frontend %d",
				p.Name, lint.SwitchPenalty(), fe.SwitchPenalty())
		}
		if lint.StreamWidth() != fe.StreamWidth() {
			t.Errorf("%s: stream width diverges: lint %d, frontend %d",
				p.Name, lint.StreamWidth(), fe.StreamWidth())
		}
		if want := backend.DefaultConfig().DispatchWidth; lint.DrainWidth != want {
			t.Errorf("%s: drain width %d, want backend dispatch width %d", p.Name, lint.DrainWidth, want)
		}
		if lint.DrainLag != DefaultDrainLag || lint.RunOverhead != DefaultRunOverhead {
			t.Errorf("%s: drain lag %d / run overhead %d, want %d / %d",
				p.Name, lint.DrainLag, lint.RunOverhead, DefaultDrainLag, DefaultRunOverhead)
		}

		// The analyzer's config must be built from the same profile
		// halves the simulator's core assembly consumes.
		if cfg.UopCache != p.UopCache {
			t.Errorf("%s: staticlint uopcache config %+v != profile %+v", p.Name, cfg.UopCache, p.UopCache)
		}
		if cfg.Decode != p.Decode {
			t.Errorf("%s: staticlint decode config %+v != profile %+v", p.Name, cfg.Decode, p.Decode)
		}
	}
}

// TestDefaultConfigIsDefaultProfile pins the compatibility contract
// behind every existing golden: the un-parameterized DefaultConfig is
// exactly the default profile's configuration.
func TestDefaultConfigIsDefaultProfile(t *testing.T) {
	def := DefaultConfig()
	sky := ConfigForProfile(profile.Default())
	if def.UopCache != sky.UopCache || def.Decode != sky.Decode ||
		def.PathBudget != sky.PathBudget || def.DrainWidth != sky.DrainWidth ||
		def.DrainLag != sky.DrainLag || def.RunOverhead != sky.RunOverhead ||
		def.GadgetWindow != sky.GadgetWindow || def.ProbeIters != sky.ProbeIters ||
		def.PrimeTraversals != sky.PrimeTraversals || def.VictimRuns != sky.VictimRuns {
		t.Errorf("DefaultConfig %+v != ConfigForProfile(default) %+v", def, sky)
	}
	if profile.Default().Name != "skylake" {
		t.Errorf("default profile is %q, want skylake", profile.Default().Name)
	}
}

// TestDrainBound pins the warm-run lower bound's arithmetic, including
// the whole-run pipeline-fill lag that RunCost applies and CostRanges
// (marginal path pricing) deliberately does not.
func TestDrainBound(t *testing.T) {
	ct := DefaultConfig().Costs()
	for _, tc := range []struct {
		uops, want int
	}{
		{0, DefaultDrainLag},
		{1, 1 + DefaultDrainLag},
		{4, 1 + DefaultDrainLag},
		{5, 2 + DefaultDrainLag},
		{40, 10 + DefaultDrainLag},
	} {
		if got := ct.DrainBound(tc.uops); got != tc.want {
			t.Errorf("DrainBound(%d) = %d, want %d", tc.uops, got, tc.want)
		}
		if got, want := ct.DrainCycles(tc.uops), tc.want-DefaultDrainLag; got != want {
			t.Errorf("DrainCycles(%d) = %d, want %d", tc.uops, got, want)
		}
	}
}
