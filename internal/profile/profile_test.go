package profile

import (
	"strings"
	"testing"

	"deaduops/internal/isa"
	"deaduops/internal/uopcache"
)

// TestRegistryRoundTrip pins name→config→name for every registered
// profile and the error contract for unknown names.
func TestRegistryRoundTrip(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("expected at least 5 registered profiles, have %v", names)
	}
	for _, name := range names {
		p, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("Get(%q) returned profile named %q", name, p.Name)
		}
		if p.Description == "" {
			t.Errorf("profile %q has no description", name)
		}
	}
	if _, err := Get("coffee-lake-9000"); err == nil {
		t.Fatal("unknown profile name accepted")
	} else if !strings.Contains(err.Error(), "skylake") {
		t.Errorf("unknown-profile error does not list registered names: %v", err)
	}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() returned %d profiles, Names() %d", len(all), len(names))
	}
	for i, p := range all {
		if p.Name != names[i] {
			t.Errorf("All()[%d] = %q, want %q (name order)", i, p.Name, names[i])
		}
	}
}

// TestGetReturnsFreshCopy guards against registry aliasing: mutating a
// returned profile must not corrupt the registered one.
func TestGetReturnsFreshCopy(t *testing.T) {
	p1, _ := Get("skylake")
	p1.UopCache.Ways = 1
	p1.Decode.JccAlignPenalty = 99
	p2, _ := Get("skylake")
	if p2.UopCache.Ways == 1 || p2.Decode.JccAlignPenalty == 99 {
		t.Fatal("Get returns an aliased profile; mutation leaked into the registry")
	}
}

// TestGeometryInvariants holds every registered profile to the
// structural constraints the placement rules assume.
func TestGeometryInvariants(t *testing.T) {
	for _, p := range All() {
		u := p.UopCache
		if u.Sets <= 0 || u.Sets&(u.Sets-1) != 0 {
			t.Errorf("%s: sets %d not a positive power of two", p.Name, u.Sets)
		}
		if u.Ways <= 0 || u.SlotsPerLine <= 0 {
			t.Errorf("%s: non-positive geometry %d ways × %d slots", p.Name, u.Ways, u.SlotsPerLine)
		}
		if u.MaxLinesPerRegion <= 0 || u.MaxLinesPerRegion > u.Ways {
			t.Errorf("%s: MaxLinesPerRegion %d outside 1..%d ways", p.Name, u.MaxLinesPerRegion, u.Ways)
		}
		if cap := p.UopCapLine(); cap < u.SlotsPerLine || cap > u.Ways*u.SlotsPerLine {
			t.Errorf("%s: region µop cap %d outside one line .. full set", p.Name, cap)
		}
		if u.StreamWidth <= 0 || p.Decode.DecodeWidth <= 0 {
			t.Errorf("%s: non-positive delivery widths (stream %d, decode %d)",
				p.Name, u.StreamWidth, p.Decode.DecodeWidth)
		}
		if p.IDQCapacity <= 0 {
			t.Errorf("%s: non-positive IDQ capacity %d", p.Name, p.IDQCapacity)
		}
		if p.Decode.JccAlignPenalty < 0 || u.SwitchPenalty < 0 {
			t.Errorf("%s: negative penalty (align %d, switch %d)",
				p.Name, p.Decode.JccAlignPenalty, u.SwitchPenalty)
		}
		// The cost table must be constructible — Costs panics on an
		// inconsistent configuration.
		if ct := p.Costs(); ct.SwitchPenalty() != u.SwitchPenalty {
			t.Errorf("%s: cost table switch penalty %d != config %d",
				p.Name, ct.SwitchPenalty(), u.SwitchPenalty)
		}
	}
}

// TestKnownGeometries pins the headline numbers of each built-in
// profile to the paper's characterization.
func TestKnownGeometries(t *testing.T) {
	cases := []struct {
		name              string
		sets, ways, slots int
		capacity          int
		smt               uopcache.SMTPolicy
		alignPenalty      int
		hasDSB            bool
	}{
		{"skylake", 32, 8, 6, 1536, uopcache.PartitionStatic, 2, true},
		{"sunnycove", 32, 12, 6, 2304, uopcache.PartitionStatic, 2, true},
		{"zen", 32, 8, 8, 2048, uopcache.ShareCompetitive, 0, true},
		{"zen2", 64, 8, 8, 4096, uopcache.ShareCompetitive, 0, true},
		{"mite-only", 32, 8, 6, 1536, uopcache.PartitionStatic, 2, false},
	}
	for _, c := range cases {
		p, err := Get(c.name)
		if err != nil {
			t.Fatal(err)
		}
		u := p.UopCache
		if u.Sets != c.sets || u.Ways != c.ways || u.SlotsPerLine != c.slots {
			t.Errorf("%s: geometry %d×%d×%d, want %d×%d×%d",
				c.name, u.Sets, u.Ways, u.SlotsPerLine, c.sets, c.ways, c.slots)
		}
		if got := u.Capacity(); got != c.capacity {
			t.Errorf("%s: capacity %d µops, want %d", c.name, got, c.capacity)
		}
		if u.SMT != c.smt {
			t.Errorf("%s: SMT policy %v, want %v", c.name, u.SMT, c.smt)
		}
		if p.Decode.JccAlignPenalty != c.alignPenalty {
			t.Errorf("%s: align penalty %d, want %d", c.name, p.Decode.JccAlignPenalty, c.alignPenalty)
		}
		if p.HasDSB() != c.hasDSB {
			t.Errorf("%s: HasDSB %v, want %v", c.name, p.HasDSB(), c.hasDSB)
		}
	}
}

// fillableTrace builds a minimal cacheable trace for cfg.
func fillableTrace(cfg uopcache.Config, region uint64) *uopcache.Trace {
	return uopcache.BuildTrace(cfg, region, 0, []uopcache.MacroUops{
		{Addr: region, Len: 2, Uops: []isa.Uop{{Op: isa.NOP, Slots: 1}}},
	})
}

// TestMITEOnlyZeroDSBHits is the control-profile contract: after a fill
// and a warm re-lookup the mite-only cache reports zero hits and zero
// fills, while the same traffic on Skylake hits. This is the structural
// guarantee behind the "zero DSB-divergence findings" acceptance
// criterion.
func TestMITEOnlyZeroDSBHits(t *testing.T) {
	run := func(p Profile) uopcache.Stats {
		c := uopcache.New(p.UopCache)
		const region = 0x10000
		tr := fillableTrace(p.UopCache, region)
		c.Fill(0, tr)
		c.Lookup(0, region) // warm re-run
		c.Lookup(0, region)
		return c.Stats()
	}

	mite, err := Get("mite-only")
	if err != nil {
		t.Fatal(err)
	}
	s := run(mite)
	if s.Hits != 0 || s.Fills != 0 {
		t.Fatalf("mite-only: %d hits, %d fills on warm re-run; want 0/0 (stats %+v)", s.Hits, s.Fills, s)
	}
	if s.Misses != 2 || s.Uncacheable != 1 {
		t.Errorf("mite-only: %d misses, %d uncacheable; want every lookup a miss and the fill rejected", s.Misses, s.Uncacheable)
	}

	sky, err := Get("skylake")
	if err != nil {
		t.Fatal(err)
	}
	if s := run(sky); s.Hits == 0 {
		t.Fatalf("skylake control: warm re-run did not hit (stats %+v) — the mite-only result above proves nothing", s)
	}

	// The trace builder itself must refuse mite-only regions.
	if tr := fillableTrace(mite.UopCache, 0x10000); tr.Cacheable || tr.Reason != "dsb-disabled" {
		t.Errorf("mite-only BuildTrace: cacheable=%v reason=%q, want uncacheable dsb-disabled", tr.Cacheable, tr.Reason)
	}
}

// TestMatrixEnvFilter pins the CI matrix selector: empty env selects
// all profiles, a list selects exactly those, an unknown name errors.
func TestMatrixEnvFilter(t *testing.T) {
	t.Setenv(MatrixEnv, "")
	all, err := Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Names()) {
		t.Errorf("empty %s selected %d profiles, want all %d", MatrixEnv, len(all), len(Names()))
	}

	t.Setenv(MatrixEnv, "zen, mite-only")
	sel, err := Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name != "zen" || sel[1].Name != "mite-only" {
		t.Errorf("selected %v, want [zen mite-only]", sel)
	}

	t.Setenv(MatrixEnv, "skylake,notreal")
	if _, err := Matrix(); err == nil {
		t.Error("unknown profile name in matrix env accepted")
	}
}

// TestRegisterRejectsDuplicates pins the panic contract.
func TestRegisterRejectsDuplicates(t *testing.T) {
	for _, bad := range []func(){
		func() { Register("skylake", Skylake) },
		func() { Register("", Skylake) },
		func() { Register("x", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad registration did not panic")
				}
			}()
			bad()
		}()
	}
}
