// Package profile is the registry of named front-end
// microarchitecture profiles. A profile bundles everything the rest of
// the system needs to know about one frontend flavour — DSB geometry
// and sharing policy (uopcache.Config), decoder widths and alignment
// penalties (decode.Config), and the IDQ/LSD capacities — so the
// simulator (internal/cpu), the static analyzer (internal/staticlint),
// the differential harness (staticlint/difftest), and the experiments
// registry all derive their constants from one place instead of
// hard-coding Skylake numbers.
//
// The built-in profiles mirror the paper's targets: Intel
// Skylake/Coffee Lake and Sunny Cove, AMD Zen and Zen 2, plus a
// synthetic "mite-only" control with the DSB disabled entirely — an
// in-order-style legacy-decode baseline against which DSB-carried
// leakage must vanish while decode-carried (alignment) leakage
// survives.
package profile

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"deaduops/internal/decode"
	"deaduops/internal/frontend"
	"deaduops/internal/uopcache"
)

// Profile names one front-end microarchitecture configuration.
type Profile struct {
	// Name is the registry key ("skylake", "zen", ...).
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// UopCache is the DSB geometry, sharing policy, and switch penalty.
	UopCache uopcache.Config
	// Decode is the legacy-decode (MITE) configuration: decoder widths,
	// LCP and Jcc-alignment penalties, predecode window.
	Decode decode.Config
	// IDQCapacity is the instruction decode queue depth.
	IDQCapacity int
	// LSDCapacity enables the loop stream detector when nonzero.
	LSDCapacity int
}

// Frontend returns the fetch-engine configuration this profile implies.
// KernelEntry is owned by the core assembly (internal/cpu), not the
// profile.
func (p Profile) Frontend() frontend.Config {
	return frontend.Config{
		IDQCapacity: p.IDQCapacity,
		Decode:      p.Decode,
		LSDCapacity: p.LSDCapacity,
	}
}

// Costs returns the front-end delivery cost table the profile implies —
// the same table the fetch engine charges and the static quantifier
// prices with.
func (p Profile) Costs() decode.CostTable {
	return p.Frontend().Costs(p.UopCache)
}

// HasDSB reports whether the profile has a functioning micro-op cache.
// The mite-only control profile returns false: every fetch takes the
// legacy-decode path and DSB-carried channels are structurally absent.
func (p Profile) HasDSB() bool { return !p.UopCache.Disabled }

// UopCapLine returns the largest cacheable region in µops
// (MaxLinesPerRegion × SlotsPerLine — 18 on Skylake).
func (p Profile) UopCapLine() int {
	return p.UopCache.MaxLinesPerRegion * p.UopCache.SlotsPerLine
}

// Skylake is the Intel Skylake/Coffee Lake profile the paper
// characterizes: 32×8×6 DSB, 1:4 decoders, LSD fused off (SKL150),
// 2-cycle window-straddling Jcc penalty.
func Skylake() Profile {
	return Profile{
		Name:        "skylake",
		Description: "Intel Skylake/Coffee Lake: 32s×8w×6µ DSB, static SMT partition, 1:4 decoders",
		UopCache:    uopcache.Skylake(),
		Decode:      decode.Skylake(),
		IDQCapacity: 64,
	}
}

// SunnyCove is the Intel Sunny Cove-like profile: the paper notes the
// DSB grew 1.5× over Skylake (modelled as 12 ways).
func SunnyCove() Profile {
	p := Skylake()
	p.Name = "sunnycove"
	p.Description = "Intel Sunny Cove: 32s×12w×6µ DSB (1.5× Skylake), otherwise Skylake frontend"
	p.UopCache = uopcache.SunnyCove()
	return p
}

// Zen is the AMD Zen-like profile: 2K-µop op cache competitively
// shared between SMT threads, 8-wide op-cache delivery, no
// Jcc-alignment penalty.
func Zen() Profile {
	return Profile{
		Name:        "zen",
		Description: "AMD Zen: 32s×8w×8µ op cache, competitive SMT sharing, 1:2 decoders",
		UopCache:    uopcache.Zen(),
		Decode:      decode.Zen(),
		IDQCapacity: 64,
	}
}

// Zen2 is the AMD Zen-2-like profile: the 4K-µop op cache (64 sets).
func Zen2() Profile {
	p := Zen()
	p.Name = "zen2"
	p.Description = "AMD Zen 2: 64s×8w×8µ op cache (4K µops), competitive SMT sharing"
	p.UopCache = uopcache.Zen2()
	return p
}

// MITEOnly is the synthetic no-DSB control profile: Skylake's decode
// path with the µop cache disabled. Every fetch takes the legacy
// path, so warm and cold runs are indistinguishable to a DSB
// prime/probe attacker — the in-order-style leakage baseline.
func MITEOnly() Profile {
	p := Skylake()
	p.Name = "mite-only"
	p.Description = "Synthetic control: Skylake decode with the DSB disabled (legacy path only)"
	p.UopCache.Disabled = true
	return p
}

// registry maps name → constructor. Constructors (not values) keep
// registered profiles immutable: every Get returns a fresh copy.
var registry = map[string]func() Profile{}

// Register adds a named profile constructor. It panics on a duplicate
// or empty name — registration is init-time wiring, not runtime input.
func Register(name string, fn func() Profile) {
	if name == "" || fn == nil {
		panic("profile: empty registration")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("profile: duplicate registration %q", name))
	}
	registry[name] = fn
}

func init() {
	for _, fn := range []func() Profile{Skylake, SunnyCove, Zen, Zen2, MITEOnly} {
		Register(fn().Name, fn)
	}
}

// Get returns the named profile. The error lists the registered names,
// so a CLI can surface it directly.
func Get(name string) (Profile, error) {
	fn, ok := registry[name]
	if !ok {
		return Profile{}, fmt.Errorf("profile: unknown profile %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return fn(), nil
}

// Names returns the registered profile names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registered profile in name order.
func All() []Profile {
	names := Names()
	out := make([]Profile, 0, len(names))
	for _, n := range names {
		p, _ := Get(n)
		out = append(out, p)
	}
	return out
}

// Default returns the default profile (Skylake) — the one every
// un-parameterized entry point resolves to, keeping the pre-registry
// behaviour (and its goldens) byte-identical.
func Default() Profile { return Skylake() }

// MatrixEnv is the environment variable the CI profile matrix sets: a
// comma-separated list of profile names restricting which profiles the
// per-profile test suites run under.
const MatrixEnv = "DEADUOPS_PROFILE"

// Matrix returns the profiles selected by MatrixEnv — all registered
// profiles when it is unset or empty. An unknown name is an error, so
// a typo in a CI matrix axis fails loudly instead of silently testing
// nothing.
func Matrix() ([]Profile, error) {
	v := strings.TrimSpace(os.Getenv(MatrixEnv))
	if v == "" {
		return All(), nil
	}
	var out []Profile
	for _, name := range strings.Split(v, ",") {
		p, err := Get(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
