package frontend

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/bpu"
	"deaduops/internal/isa"
	"deaduops/internal/mem"
	"deaduops/internal/perfctr"
	"deaduops/internal/uopcache"
)

// harness builds a standalone fetch engine over a program. The
// instruction cache is pre-warmed so tests observe fetch-engine timing
// rather than DRAM fill latency.
func harness(p *asm.Program) (*FrontEnd, *uopcache.Cache, *perfctr.Counters) {
	uc := uopcache.New(uopcache.Skylake())
	hier := mem.NewHierarchy(mem.DefaultHierarchy())
	bp := bpu.New(bpu.DefaultConfig())
	ctr := &perfctr.Counters{}
	fe := New(DefaultConfig(), 0, uc, hier, bp, ctr)
	fe.SetProgram(p)
	for _, in := range p.Insts {
		hier.AccessInst(in.Addr)
		hier.AccessInst(in.End())
	}
	return fe, uc, ctr
}

// drain ticks the engine up to n cycles, popping everything into a
// slice.
func drain(fe *FrontEnd, cycles int) []isa.Uop {
	var out []isa.Uop
	for i := 0; i < cycles; i++ {
		fe.Tick()
		out = append(out, fe.Pop(64)...)
	}
	return out
}

func TestFetchStraightLine(t *testing.T) {
	b := asm.New(0x1000)
	b.Nop(4)
	b.Nop(4)
	b.Movi(isa.R1, 7)
	b.Halt()
	p := b.MustBuild()
	fe, _, _ := harness(p)
	fe.Redirect(p.Entry)
	uops := drain(fe, 50)
	if len(uops) != 4 {
		t.Fatalf("delivered %d µops, want 4", len(uops))
	}
	if uops[2].Op != isa.MOVI || uops[2].Imm != 7 {
		t.Errorf("µop 2 = %+v", uops[2])
	}
	if uops[3].Op != isa.HALT {
		t.Errorf("last µop %v", uops[3].Op)
	}
}

func TestFetchFollowsJumps(t *testing.T) {
	b := asm.New(0x1000)
	b.Jmp("far")
	b.Org(0x3000)
	b.Label("far")
	b.Nop(5)
	b.Halt()
	p := b.MustBuild()
	fe, _, _ := harness(p)
	fe.Redirect(p.Entry)
	uops := drain(fe, 50)
	if len(uops) != 3 {
		t.Fatalf("delivered %d µops", len(uops))
	}
	if uops[1].MacroAddr != 0x3000 {
		t.Errorf("fetch did not follow the jump: %#x", uops[1].MacroAddr)
	}
}

func TestSecondFetchStreamsFromDSB(t *testing.T) {
	b := asm.New(0x1000)
	for i := 0; i < 6; i++ {
		b.Nop(5)
	}
	b.Halt()
	p := b.MustBuild()
	fe, _, ctr := harness(p)
	fe.Redirect(p.Entry)
	drain(fe, 60)
	miteCold := ctr.Get(perfctr.MITEUops)
	if miteCold == 0 {
		t.Fatal("cold fetch did not use the legacy pipeline")
	}
	fe.Redirect(p.Entry)
	drain(fe, 60)
	if got := ctr.Get(perfctr.MITEUops); got != miteCold {
		t.Errorf("warm fetch decoded %d more µops via MITE", got-miteCold)
	}
	if ctr.Get(perfctr.DSBUops) == 0 {
		t.Error("warm fetch delivered nothing from the µop cache")
	}
}

func TestIDQBackpressure(t *testing.T) {
	b := asm.New(0x1000)
	for i := 0; i < 100; i++ {
		b.Nop(1)
	}
	b.Halt()
	p := b.MustBuild()
	fe, _, _ := harness(p)
	fe.Redirect(p.Entry)
	for i := 0; i < 200; i++ {
		fe.Tick()
		if fe.IDQLen() > DefaultConfig().IDQCapacity {
			t.Fatalf("IDQ overflowed: %d", fe.IDQLen())
		}
	}
	if fe.IDQLen() != DefaultConfig().IDQCapacity {
		t.Errorf("IDQ not full under backpressure: %d", fe.IDQLen())
	}
}

func TestRedirectClearsIDQ(t *testing.T) {
	b := asm.New(0x1000)
	for i := 0; i < 10; i++ {
		b.Nop(1)
	}
	b.Halt()
	b.Org(0x2000)
	b.Label("alt")
	b.Halt()
	p := b.MustBuild()
	fe, _, _ := harness(p)
	fe.Redirect(p.Entry)
	for i := 0; i < 10; i++ {
		fe.Tick()
	}
	if fe.IDQLen() == 0 {
		t.Fatal("nothing buffered")
	}
	fe.Redirect(p.MustLabel("alt"))
	if fe.IDQLen() != 0 {
		t.Error("IDQ survived redirect")
	}
	uops := drain(fe, 20)
	if len(uops) != 1 || uops[0].Op != isa.HALT {
		t.Errorf("post-redirect stream %+v", uops)
	}
}

func TestUnmappedFetchStalls(t *testing.T) {
	b := asm.New(0x1000)
	b.Nop(1)
	b.Halt()
	p := b.MustBuild()
	fe, _, _ := harness(p)
	fe.Redirect(0x9999) // unmapped
	uops := drain(fe, 20)
	if len(uops) != 0 {
		t.Errorf("unmapped fetch delivered %d µops", len(uops))
	}
	// A redirect to valid code recovers.
	fe.Redirect(p.Entry)
	if uops := drain(fe, 20); len(uops) != 2 {
		t.Errorf("recovery delivered %d µops", len(uops))
	}
}

func TestBranchAnnotations(t *testing.T) {
	b := asm.New(0x1000)
	b.Jmp("next")
	b.Label("next")
	b.Halt()
	p := b.MustBuild()
	fe, _, _ := harness(p)
	fe.Redirect(p.Entry)
	uops := drain(fe, 30)
	if len(uops) < 1 {
		t.Fatal("nothing delivered")
	}
	jmp := uops[0]
	if !jmp.PredTaken || jmp.PredTarget != p.MustLabel("next") {
		t.Errorf("jump annotation %+v", jmp)
	}
}

func TestAddStallDelaysDelivery(t *testing.T) {
	b := asm.New(0x1000)
	b.Nop(1)
	b.Halt()
	p := b.MustBuild()
	fe, _, _ := harness(p)
	fe.Redirect(p.Entry)
	fe.AddStall(10)
	count := 0
	for i := 0; i < 10; i++ {
		fe.Tick()
		count += len(fe.Pop(64))
	}
	if count != 0 {
		t.Errorf("%d µops delivered during stall", count)
	}
	if uops := drain(fe, 30); len(uops) != 2 {
		t.Errorf("post-stall delivery %d", len(uops))
	}
}

func TestDSBMissSwitchCounted(t *testing.T) {
	b := asm.New(0x1000)
	b.Nop(5)
	b.Halt()
	p := b.MustBuild()
	fe, _, ctr := harness(p)
	fe.Redirect(p.Entry)
	drain(fe, 30)
	if ctr.Get(perfctr.DSB2MITESwitches) == 0 {
		t.Error("cold fetch recorded no DSB→MITE switch")
	}
	if ctr.Get(perfctr.DSBMissPenaltyCycles) == 0 {
		t.Error("cold fetch recorded no switch penalty")
	}
}

func TestPopPartial(t *testing.T) {
	b := asm.New(0x1000)
	for i := 0; i < 8; i++ {
		b.Nop(1)
	}
	b.Halt()
	p := b.MustBuild()
	fe, _, _ := harness(p)
	fe.Redirect(p.Entry)
	for i := 0; i < 20 && fe.IDQLen() < 4; i++ {
		fe.Tick()
	}
	got := fe.Pop(2)
	if len(got) != 2 {
		t.Fatalf("Pop(2) returned %d", len(got))
	}
	if got[0].MacroAddr != 0x1000 || got[1].MacroAddr != 0x1001 {
		t.Error("pop order wrong")
	}
}

// lsdHarness builds a fetch engine with the loop stream detector
// enabled. The loop branch is pre-trained taken (standing in for the
// backend's resolution feedback, which these standalone-frontend tests
// don't have).
func lsdHarness(p *asm.Program, capacity int) (*FrontEnd, *uopcache.Cache, *perfctr.Counters) {
	uc := uopcache.New(uopcache.Skylake())
	hier := mem.NewHierarchy(mem.DefaultHierarchy())
	bp := bpu.New(bpu.DefaultConfig())
	ctr := &perfctr.Counters{}
	cfg := DefaultConfig()
	cfg.LSDCapacity = capacity
	fe := New(cfg, 0, uc, hier, bp, ctr)
	fe.SetProgram(p)
	for _, in := range p.Insts {
		hier.AccessInst(in.Addr)
		hier.AccessInst(in.End())
		if in.Op == isa.JCC {
			bp.UpdateDirection(in.Addr, true, false)
			bp.UpdateDirection(in.Addr, true, false)
		}
	}
	return fe, uc, ctr
}

// loopProg builds a tight backward loop (taken while the predictor says
// so).
func loopProg() *asm.Program {
	b := asm.New(0x1000)
	b.Label("loop")
	b.Nop(4)
	b.Nop(4)
	b.Subi(isa.R14, 1)
	b.Cmpi(isa.R14, 0)
	b.Jcc(isa.NE, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestLSDLocksLoop(t *testing.T) {
	p := loopProg()
	fe, uc, ctr := lsdHarness(p, 64)
	fe.Redirect(p.Entry)
	// Train the loop branch taken first so fetch keeps looping, then
	// let the LSD observe a repeat. Drive ticks and drain.
	for i := 0; i < 200; i++ {
		fe.Tick()
		fe.Pop(64)
	}
	if ctr.Get(perfctr.LSDUops) == 0 {
		t.Fatal("LSD never locked the loop")
	}
	// Once locked, µop cache lookups stop growing.
	lookups := uc.Stats().Lookups
	for i := 0; i < 100; i++ {
		fe.Tick()
		fe.Pop(64)
	}
	if got := uc.Stats().Lookups; got != lookups {
		t.Errorf("µop cache still probed during LSD replay (+%d lookups)", got-lookups)
	}
}

func TestLSDDisabledByDefault(t *testing.T) {
	p := loopProg()
	fe, _, ctr := harness(p)
	fe.Redirect(p.Entry)
	for i := 0; i < 200; i++ {
		fe.Tick()
		fe.Pop(64)
	}
	if ctr.Get(perfctr.LSDUops) != 0 {
		t.Error("LSD active on the default (SKL150) configuration")
	}
}

func TestLSDRedirectUnlocks(t *testing.T) {
	p := loopProg()
	fe, _, ctr := lsdHarness(p, 64)
	fe.Redirect(p.Entry)
	for i := 0; i < 200; i++ {
		fe.Tick()
		fe.Pop(64)
	}
	if ctr.Get(perfctr.LSDUops) == 0 {
		t.Fatal("LSD never locked")
	}
	// A redirect (as the loop-exit mispredict recovery would issue)
	// must unlock the LSD and resume normal fetch.
	fe.Redirect(p.MustLabel("loop"))
	before := ctr.Get(perfctr.LSDUops)
	fe.Tick()
	fe.Pop(64)
	// First post-redirect group refetches normally (the log was
	// cleared), so LSD µops must not continue immediately.
	if got := ctr.Get(perfctr.LSDUops); got != before {
		t.Errorf("LSD delivered %d µops immediately after redirect", got-before)
	}
}

func TestLSDCapacityRespected(t *testing.T) {
	p := loopProg()                // 5 µops per iteration (fused cmp+jcc)
	fe, _, ctr := lsdHarness(p, 2) // too small for the loop
	fe.Redirect(p.Entry)
	for i := 0; i < 200; i++ {
		fe.Tick()
		fe.Pop(64)
	}
	if ctr.Get(perfctr.LSDUops) != 0 {
		t.Error("LSD locked a loop larger than its capacity")
	}
}
