// Package frontend models the fetch engine of one hardware thread: the
// branch-prediction-driven next-fetch logic, the micro-op cache (DSB)
// streaming path, the legacy decode (MITE) path with its switch
// penalty, and the instruction decode queue (IDQ) feeding the backend.
//
// The security-relevant contract implemented here: fetch follows
// *predicted* control flow and fills the micro-op cache as it decodes —
// including along paths that are later squashed. Squash resets fetch
// state but never rolls back micro-op cache contents.
package frontend

import (
	"deaduops/internal/asm"
	"deaduops/internal/bpu"
	"deaduops/internal/decode"
	"deaduops/internal/isa"
	"deaduops/internal/mem"
	"deaduops/internal/perfctr"
	"deaduops/internal/uopcache"
)

// Config parameterizes the fetch engine.
type Config struct {
	IDQCapacity int
	Decode      decode.Config
	// KernelEntry is the architectural SYSCALL target.
	KernelEntry uint64
	// LSDCapacity enables the loop stream detector when nonzero: loops
	// of at most this many µops lock into the IDQ and replay without
	// touching the micro-op cache (§II-C). Zero disables it — the
	// modelled Skylake ships with the LSD fused off (erratum SKL150),
	// which is why the paper never needed to defeat it.
	LSDCapacity int
}

// DefaultConfig returns a Skylake-like front end (LSD disabled, per
// erratum SKL150).
func DefaultConfig() Config {
	return Config{IDQCapacity: 64, Decode: decode.Skylake()}
}

// Costs returns the shared front-end delivery cost table for this
// configuration over u's micro-op cache geometry. The fetch engine
// charges its DSB→MITE switch penalty through this table, and the
// static leakage quantifier (internal/staticlint) prices paths with
// the same table — one source of truth for every cost constant.
func (c Config) Costs(u uopcache.Config) decode.CostTable {
	return decode.NewCostTable(c.Decode, u)
}

// lsdRec is one fetch group retained for loop detection.
type lsdRec struct {
	entry uint64
	uops  []isa.Uop
}

// mode is the active µop delivery path.
type mode int

const (
	modeDSB mode = iota
	modeMITE
)

// FrontEnd is one hardware thread's fetch engine.
type FrontEnd struct {
	cfg    Config
	costs  decode.CostTable
	thread int
	prog   *asm.Program
	uc     *uopcache.Cache
	hier   *mem.Hierarchy
	bp     *bpu.BPU
	ctr    *perfctr.Counters

	pc        uint64
	active    bool // fetch enabled (false: stalled on fault/halt/serialize)
	serialize bool // CPUID in flight: fetch stops until it retires
	// stallPen counts down DSB-miss-attributed stalls (switch penalty);
	// stallOther counts down unattributed stalls (icache miss fill,
	// misprediction redirect bubble).
	stallPen   int
	stallOther int
	m          mode

	// pending delivery state
	pendingUops   []isa.Uop          // DSB stream awaiting IDQ slots
	pendingGroup  *fetchGroup        // fetch-control applied once the stream drains
	plan          *decode.RegionPlan // MITE schedule in progress
	planIdx       int
	planGroup     *fetchGroup // group being decoded by MITE (for fill)
	planDelivered []isa.Uop   // µops delivered so far from the plan (LSD recording)
	sysRet        []uint64    // syscall return-address stack (architectural)

	// LSD (loop stream detector) state: recently delivered groups and,
	// when a loop locks, the replaying µop ring.
	lsdLog    []lsdRec
	lsdLoop   []isa.Uop
	lsdIdx    int
	lsdActive bool

	idq []isa.Uop

	// group is the one reusable fetch-group buffer: at most one fetch
	// group is ever live (either pendingGroup on the DSB path or
	// planGroup on the MITE path, never both), so planFetch rebuilds
	// this struct in place instead of allocating per fetch.
	group fetchGroup
	// streamBuf is the reusable DSB stream buffer LookupAppend fills;
	// pendingUops slices into it. It is safe to reuse because startFetch
	// only runs once the previous stream has fully drained into the IDQ
	// (and lsdRecord copies anything it retains).
	streamBuf []isa.Uop
}

// New builds a fetch engine for one hardware thread.
func New(cfg Config, thread int, uc *uopcache.Cache, hier *mem.Hierarchy, bp *bpu.BPU, ctr *perfctr.Counters) *FrontEnd {
	ucfg := uc.Config()
	return &FrontEnd{
		cfg:    cfg,
		costs:  cfg.Costs(ucfg),
		thread: thread,
		uc:     uc,
		hier:   hier,
		bp:     bp,
		ctr:    ctr,
		// Pre-size the IDQ and the DSB stream buffer so the steady-state
		// cycle loop never grows either: the IDQ is hard-capped at
		// IDQCapacity, and one region streams at most
		// MaxLinesPerRegion × SlotsPerLine micro-ops.
		idq:       make([]isa.Uop, 0, cfg.IDQCapacity),
		streamBuf: make([]isa.Uop, 0, ucfg.MaxLinesPerRegion*ucfg.SlotsPerLine),
	}
}

// SetProgram installs the code image.
func (f *FrontEnd) SetProgram(p *asm.Program) { f.prog = p }

// Program returns the installed code image (checkpointing).
func (f *FrontEnd) Program() *asm.Program { return f.prog }

// Redirect restarts fetch at pc, discarding all pending fetch state.
// The backend calls this at misprediction recovery and at thread start.
func (f *FrontEnd) Redirect(pc uint64) {
	f.pc = pc
	f.active = true
	f.serialize = false
	f.stallPen = 0
	f.stallOther = 0
	f.m = modeDSB
	f.pendingUops = nil
	f.pendingGroup = nil
	f.plan = nil
	f.planIdx = 0
	f.planGroup = nil
	f.lsdLog = f.lsdLog[:0]
	f.lsdLoop = nil
	f.lsdIdx = 0
	f.lsdActive = false
	f.idq = f.idq[:0]
}

// Stop halts fetch (thread finished).
func (f *FrontEnd) Stop() { f.active = false }

// AddStall inserts redirect-bubble cycles not attributed to micro-op
// cache misses.
func (f *FrontEnd) AddStall(n int) { f.stallOther += n }

// SerializeDone is signalled by the backend when a fetch-serializing
// instruction (CPUID) retires; fetch resumes at the next address.
func (f *FrontEnd) SerializeDone(resume uint64) {
	f.serialize = false
	f.active = true
	f.pc = resume
	f.pendingUops = nil
	f.pendingGroup = nil
	f.plan = nil
	f.planGroup = nil
	f.m = modeDSB
}

// InMITE reports whether the legacy decode pipeline is active (used to
// arbitrate the shared decoders between SMT threads).
func (f *FrontEnd) InMITE() bool { return f.m == modeMITE && f.plan != nil }

// IDQLen returns the number of micro-ops buffered for the backend.
func (f *FrontEnd) IDQLen() int { return len(f.idq) }

// Pop removes up to n micro-ops from the IDQ for rename/dispatch.
func (f *FrontEnd) Pop(n int) []isa.Uop {
	if n > len(f.idq) {
		n = len(f.idq)
	}
	out := make([]isa.Uop, n)
	f.PopInto(out)
	return out
}

// PopInto removes up to len(dst) micro-ops from the IDQ into dst and
// returns how many were copied — the allocation-free form of Pop the
// backend's dispatch stage uses every cycle.
func (f *FrontEnd) PopInto(dst []isa.Uop) int {
	n := len(dst)
	if n > len(f.idq) {
		n = len(f.idq)
	}
	copy(dst, f.idq[:n])
	f.idq = f.idq[:copy(f.idq, f.idq[n:])]
	return n
}

// fetchGroup is one fetch unit of work: the static macro-ops from the
// entry point to the region end or the first control-flow redirect the
// predictor follows.
type fetchGroup struct {
	insts []*isa.Inst
	entry uint64
	// next is where fetch continues after the group.
	next uint64
	// preds records branch-End()-address → predicted (taken, target);
	// consumed when annotating delivered branch micro-ops. A slice, not
	// a map: instruction addresses strictly increase inside a group so
	// entries are unique, groups hold only a handful of branches, and
	// the backing array is reused across fetches.
	preds []predRec
	// halt: group contains HALT — fetch stops after delivery.
	// serialize: group contains CPUID — fetch stops until retire.
	halt      bool
	serialize bool
	// fault: entry address is unmapped; no micro-ops can be delivered.
	fault bool
}

type predOut struct {
	taken  bool
	target uint64
	valid  bool // predictor produced a target (indirect may not)
}

// predRec is one recorded branch prediction, keyed by the branch's
// End() address.
type predRec struct {
	end uint64
	p   predOut
}

// setPred records a prediction for the branch ending at end.
func (g *fetchGroup) setPred(end uint64, p predOut) {
	g.preds = append(g.preds, predRec{end: end, p: p})
}

// planFetch walks static code from pc, consulting the predictors, and
// returns the fetch group. The group never crosses a region boundary
// (micro-op cache traces are per-region) and ends early at the first
// branch the predictor follows.
func (f *FrontEnd) planFetch(pc uint64) *fetchGroup {
	// Reuse the embedded group: at most one fetch group is live at a
	// time (startFetch only runs once the previous group has fully
	// delivered and finished), so rebuilding in place is safe.
	g := &f.group
	g.insts = g.insts[:0]
	g.preds = g.preds[:0]
	g.entry = pc
	g.next = 0
	g.halt, g.serialize, g.fault = false, false, false
	region := f.uc.RegionOf(pc)
	regionEnd := region + f.uc.Config().RegionSize()
	cur := pc
	for cur < regionEnd {
		in := f.prog.At(cur)
		if in == nil {
			if len(g.insts) == 0 {
				g.fault = true
			}
			// Unmapped bytes inside a region: stop the group here.
			g.next = cur
			return g
		}
		g.insts = append(g.insts, in)
		switch in.Op {
		case isa.HALT:
			g.halt = true
			g.next = in.End()
			return g
		case isa.CPUID:
			g.serialize = true
			g.next = in.End()
			return g
		case isa.JMP:
			g.setPred(in.End(), predOut{taken: true, target: uint64(in.Imm), valid: true})
			g.next = uint64(in.Imm)
			return g
		case isa.CALL:
			f.bp.PushRSB(in.End())
			g.setPred(in.End(), predOut{taken: true, target: uint64(in.Imm), valid: true})
			g.next = uint64(in.Imm)
			return g
		case isa.JCC:
			taken := f.bp.PredictDirection(in.Addr)
			g.setPred(in.End(), predOut{taken: taken, target: uint64(in.Imm), valid: true})
			if taken {
				g.next = uint64(in.Imm)
				return g
			}
		case isa.JMPI, isa.CALLI:
			t, ok := f.bp.PredictIndirect(in.Addr)
			g.setPred(in.End(), predOut{taken: true, target: t, valid: ok})
			if in.Op == isa.CALLI {
				f.bp.PushRSB(in.End())
			}
			if ok {
				g.next = t
			} else {
				// No prediction: fetch stalls until the branch
				// resolves and redirects.
				g.next = 0
			}
			return g
		case isa.RET:
			t, ok := f.bp.PopRSB()
			g.setPred(in.End(), predOut{taken: true, target: t, valid: ok})
			if ok {
				g.next = t
			} else {
				g.next = 0
			}
			return g
		case isa.SYSCALL:
			g.setPred(in.End(), predOut{taken: true, target: f.cfg.KernelEntry, valid: true})
			f.sysRet = append(f.sysRet, in.End())
			g.next = f.cfg.KernelEntry
			return g
		case isa.SYSRET:
			t, ok := f.predictSysret()
			g.setPred(in.End(), predOut{taken: true, target: t, valid: ok})
			g.next = t
			if !ok {
				g.next = 0
			}
			return g
		}
		cur = in.End()
	}
	g.next = cur
	return g
}

func (f *FrontEnd) predictSysret() (uint64, bool) {
	if n := len(f.sysRet); n > 0 {
		t := f.sysRet[n-1]
		f.sysRet = f.sysRet[:n-1]
		return t, true
	}
	return 0, false
}

// annotate attaches the group's branch predictions to a delivered
// micro-op.
func (g *fetchGroup) annotate(u *isa.Uop) {
	if !u.IsBranch() {
		return
	}
	end := u.MacroAddr + uint64(u.MacroLen)
	for i := range g.preds {
		if g.preds[i].end == end {
			p := g.preds[i].p
			u.PredTaken = p.taken
			if p.valid {
				u.PredTarget = p.target
			}
			return
		}
	}
}

// groupEnd returns the address one past the last instruction.
func (g *fetchGroup) groupEnd() uint64 {
	if len(g.insts) == 0 {
		return g.entry
	}
	last := g.insts[len(g.insts)-1]
	return last.End()
}

// Tick advances the fetch engine one cycle, delivering micro-ops into
// the IDQ.
func (f *FrontEnd) Tick() {
	if !f.active || f.serialize {
		return
	}
	if f.stallOther > 0 {
		f.stallOther--
		return
	}
	if f.stallPen > 0 {
		f.stallPen--
		f.ctr.Inc(perfctr.DSBMissPenaltyCycles)
		return
	}
	room := f.cfg.IDQCapacity - len(f.idq)
	if room <= 0 {
		return
	}

	if f.lsdActive {
		f.tickLSD(room)
		return
	}
	switch f.m {
	case modeDSB:
		f.tickDSB(room)
	case modeMITE:
		f.tickMITE(room)
	}
}

// SkipBound returns how many upcoming cycles of Tick are provably
// dead — pure stall countdowns or no-ops — so the core's event-driven
// fast path can advance the clock over them in one step. ^uint64(0)
// means "idle until some other unit acts" (fetch stopped, serialized,
// or blocked on a full IDQ that only the backend can drain); 0 means
// the next Tick may deliver micro-ops or start a fetch and must run
// for real. Note the DSB→MITE switch itself is never skippable: the
// switch is charged inside startFetch, which SkipBound reports as 0 —
// only the already-charged penalty countdown is fast-forwarded.
func (f *FrontEnd) SkipBound() uint64 {
	if !f.active || f.serialize {
		return ^uint64(0)
	}
	if n := f.stallOther + f.stallPen; n > 0 {
		return uint64(n)
	}
	if f.cfg.IDQCapacity-len(f.idq) <= 0 {
		return ^uint64(0)
	}
	return 0
}

// ApplySkip replays the counter effects of k skipped cycles, which
// must not exceed the last SkipBound: unattributed stalls drain
// silently first (exactly as Tick would), then DSB-miss-penalty
// stalls drain charging DSBMissPenaltyCycles each, and any remainder
// was pure idling (inactive / serialized / IDQ full) with no effect.
func (f *FrontEnd) ApplySkip(k uint64) {
	n := int(k)
	if f.stallOther > 0 {
		take := f.stallOther
		if take > n {
			take = n
		}
		f.stallOther -= take
		n -= take
	}
	if n > 0 && f.stallPen > 0 {
		take := f.stallPen
		if take > n {
			take = n
		}
		f.stallPen -= take
		n -= take
		f.ctr.Add(perfctr.DSBMissPenaltyCycles, uint64(take))
	}
}

// State is the part of a fetch engine that persists across runs: the
// backend's Reset → Redirect at every run start discards all pending
// fetch state, so the architectural syscall return-address stack is
// the only field a between-runs checkpoint must carry.
type State struct {
	SysRet []uint64
}

// Save deep-copies the persistent fetch state into s, reusing s's
// buffers.
func (f *FrontEnd) Save(s *State) {
	s.SysRet = append(s.SysRet[:0], f.sysRet...)
}

// Restore rehydrates the persistent fetch state from s and parks the
// engine in the quiescent between-runs position (fetch stopped until
// the next Reset redirects it).
func (f *FrontEnd) Restore(s *State) {
	f.Redirect(0)
	f.active = false
	f.sysRet = append(f.sysRet[:0], s.SysRet...)
}

// tickLSD replays the locked loop out of the IDQ, bypassing both the
// micro-op cache and the decoders. Exit happens when the loop's
// closing branch resolves against its recorded prediction and the
// backend redirects fetch.
func (f *FrontEnd) tickLSD(room int) {
	n := f.uc.Config().StreamWidth
	if n > room {
		n = room
	}
	for i := 0; i < n; i++ {
		f.idq = append(f.idq, f.lsdLoop[f.lsdIdx])
		f.lsdIdx = (f.lsdIdx + 1) % len(f.lsdLoop)
	}
	f.ctr.Add(perfctr.LSDUops, uint64(n))
}

// lsdCheck looks for a loop ending at entry in the recorded groups and
// locks it if it fits the LSD. It reports whether the LSD took over.
func (f *FrontEnd) lsdCheck(entry uint64) bool {
	if f.cfg.LSDCapacity <= 0 {
		return false
	}
	for i := range f.lsdLog {
		if f.lsdLog[i].entry != entry {
			continue
		}
		total := 0
		for _, r := range f.lsdLog[i:] {
			total += len(r.uops)
		}
		if total == 0 || total > f.cfg.LSDCapacity {
			return false
		}
		loop := make([]isa.Uop, 0, total)
		for _, r := range f.lsdLog[i:] {
			loop = append(loop, r.uops...)
		}
		f.lsdLoop = loop
		f.lsdIdx = 0
		f.lsdActive = true
		return true
	}
	return false
}

// lsdRecord retains a delivered group for loop detection.
func (f *FrontEnd) lsdRecord(entry uint64, uops []isa.Uop) {
	if f.cfg.LSDCapacity <= 0 || f.lsdActive {
		return
	}
	const maxLog = 16
	// Copy: the caller's slice aliases a reusable delivery buffer
	// (streamBuf on the DSB path) that the next fetch overwrites.
	f.lsdLog = append(f.lsdLog, lsdRec{entry: entry, uops: append([]isa.Uop(nil), uops...)})
	if len(f.lsdLog) > maxLog {
		f.lsdLog = f.lsdLog[len(f.lsdLog)-maxLog:]
	}
}

// tickDSB pushes pending DSB micro-ops up to the stream width. A
// group's fetch-control (redirect target, HALT, CPUID serialization)
// applies only after its last micro-op has been delivered.
func (f *FrontEnd) tickDSB(room int) {
	if len(f.pendingUops) == 0 {
		if g := f.pendingGroup; g != nil {
			f.pendingGroup = nil
			f.finishGroup(g)
			if !f.active || f.serialize {
				return
			}
		}
		if !f.startFetch() {
			return
		}
	}
	if len(f.pendingUops) == 0 {
		return
	}
	n := f.uc.Config().StreamWidth
	if n > room {
		n = room
	}
	if n > len(f.pendingUops) {
		n = len(f.pendingUops)
	}
	f.idq = append(f.idq, f.pendingUops[:n]...)
	f.ctr.Add(perfctr.DSBUops, uint64(n))
	f.pendingUops = f.pendingUops[n:]
	if len(f.pendingUops) == 0 {
		if g := f.pendingGroup; g != nil {
			f.pendingGroup = nil
			f.finishGroup(g)
		}
	}
}

// tickMITE advances the legacy-decode schedule by one cycle.
func (f *FrontEnd) tickMITE(room int) {
	if f.plan == nil && !f.startFetch() {
		return
	}
	if f.plan == nil {
		return
	}
	if f.planIdx < len(f.plan.Slots) {
		slot := f.plan.Slots[f.planIdx]
		if len(slot) > room {
			// IDQ backpressure: retry this slot next cycle.
			return
		}
		f.planIdx++
		if len(slot) == 0 {
			f.ctr.Inc(perfctr.DSBMissPenaltyCycles)
			return
		}
		for i := range slot {
			u := slot[i]
			f.planGroup.annotate(&u)
			f.idq = append(f.idq, u)
			f.planDelivered = append(f.planDelivered, u)
			if u.FromMSROM {
				f.ctr.Inc(perfctr.MSROMUops)
			} else {
				f.ctr.Inc(perfctr.MITEUops)
			}
		}
		if f.planIdx < len(f.plan.Slots) {
			return
		}
	}
	// Plan complete: fill the micro-op cache with the decoded trace
	// and finish the group.
	g := f.planGroup
	region := f.uc.RegionOf(g.entry)
	entry := uint8(g.entry - region)
	t := uopcache.BuildTrace(f.uc.Config(), region, entry, f.plan.Macros)
	f.uc.Fill(f.thread, t)
	f.ctr.Add(perfctr.LCPStallCycles, uint64(f.plan.LCPStalls))
	f.ctr.Add(perfctr.JccAlignStallCycles, uint64(f.plan.AlignStalls))
	f.lsdRecord(g.entry, f.planDelivered)
	f.plan = nil
	f.planIdx = 0
	f.planGroup = nil
	f.planDelivered = nil
	f.finishGroup(g)
	// Return to the DSB path; the next fetch probes the cache again.
	f.m = modeDSB
}

// finishGroup applies the group's post-delivery fetch control.
func (f *FrontEnd) finishGroup(g *fetchGroup) {
	switch {
	case g.halt:
		f.active = false
	case g.serialize:
		f.serialize = true
	case g.next == 0 && len(g.preds) > 0:
		// Unpredicted indirect: stall until backend redirect.
		f.active = false
	default:
		f.pc = g.next
	}
}

// startFetch plans the next fetch group and primes either the DSB
// stream or a MITE plan. It reports whether any work was started.
func (f *FrontEnd) startFetch() bool {
	if f.lsdCheck(f.pc) {
		// The loop stream detector locked a loop ending here: delivery
		// now bypasses both the µop cache and the decoders.
		return true
	}
	g := f.planFetch(f.pc)
	if g.fault {
		// Unmapped fetch target (e.g. wild transient target): stall
		// until redirected.
		f.active = false
		return false
	}
	if len(g.insts) == 0 {
		f.finishGroup(g)
		return false
	}

	// Instruction-cache access for the group's bytes. A miss costs the
	// fill latency up front.
	lat := f.hier.AccessInst(g.entry)
	l1iLat := f.hier.Config().L1I.Latency
	if lat > l1iLat {
		f.stallOther += lat - l1iLat
		f.ctr.Inc(perfctr.L1IMisses)
	}

	if uops, hit := f.uc.LookupAppend(f.thread, g.entry, f.streamBuf[:0]); hit {
		f.streamBuf = uops[:0] // keep the (possibly grown) backing array
		if covered := f.coverage(uops); covered >= g.groupEnd() {
			stream := f.truncateToGroup(uops, g)
			for i := range stream {
				g.annotate(&stream[i])
			}
			f.lsdRecord(g.entry, stream)
			f.pendingUops = stream
			f.pendingGroup = g
			f.m = modeDSB
			if len(stream) == 0 {
				f.pendingGroup = nil
				f.finishGroup(g)
			}
			return true
		}
		// Trace exists but does not cover this (longer) fetch group —
		// e.g. it was built under a different predicted direction.
		// Treat as a miss and rebuild.
	}

	// DSB miss: the switch penalty from the shared cost table, then
	// the MITE schedule.
	f.ctr.Inc(perfctr.DSB2MITESwitches)
	f.stallPen += f.costs.SwitchPenalty()
	f.plan = decode.PlanRegion(f.cfg.Decode, g.insts)
	f.planIdx = 0
	f.planGroup = g
	f.m = modeMITE
	return true
}

// coverage returns the address one past the last macro-op the trace
// micro-ops cover.
func (f *FrontEnd) coverage(uops []isa.Uop) uint64 {
	if len(uops) == 0 {
		return 0
	}
	last := uops[len(uops)-1]
	return last.MacroAddr + uint64(last.MacroLen)
}

// truncateToGroup cuts a cached trace down to the fetch group's extent
// (the group may end early at a predicted-taken branch). The trace
// lives in the front end's own stream buffer, so truncation is a
// re-slice, not a copy.
func (f *FrontEnd) truncateToGroup(uops []isa.Uop, g *fetchGroup) []isa.Uop {
	end := g.groupEnd()
	for i := range uops {
		if uops[i].MacroAddr >= end {
			return uops[:i]
		}
	}
	return uops
}
