package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFAxioms(t *testing.T) {
	// Spot-check field axioms over all elements.
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a·a⁻¹ = %d for a=%d", got, a)
		}
		if got := gfMul(byte(a), 1); got != byte(a) {
			t.Fatalf("a·1 = %d for a=%d", got, a)
		}
		if got := gfMul(byte(a), 0); got != 0 {
			t.Fatalf("a·0 = %d for a=%d", got, a)
		}
	}
}

func TestGFMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		return gfMul(gfMul(a, b), c) == gfMul(a, gfMul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGFDistributive(t *testing.T) {
	f := func(a, b, c byte) bool {
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGFDivInvertsMul(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return gfDiv(gfMul(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeClean(t *testing.T) {
	c, err := NewCodec(32)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox jumps over the lazy dog")
	enc, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != len(data)+c.NParity() {
		t.Fatalf("encoded length %d", len(enc))
	}
	dec, err := c.Decode(enc, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatalf("roundtrip mismatch: %q", dec)
	}
}

func TestCorrectsUpToTErrors(t *testing.T) {
	c, err := NewCodec(16) // corrects 8 errors per block
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 100)
		rng.Read(data)
		enc, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		nerr := rng.Intn(9) // 0..8
		corrupted := make([]byte, len(enc))
		copy(corrupted, enc)
		seen := map[int]bool{}
		for e := 0; e < nerr; e++ {
			pos := rng.Intn(len(corrupted))
			for seen[pos] {
				pos = rng.Intn(len(corrupted))
			}
			seen[pos] = true
			corrupted[pos] ^= byte(1 + rng.Intn(255))
		}
		dec, err := c.Decode(corrupted, len(data))
		if err != nil {
			t.Fatalf("trial %d (%d errors): %v", trial, nerr, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("trial %d (%d errors): data mismatch", trial, nerr)
		}
	}
}

func TestDetectsTooManyErrors(t *testing.T) {
	c, err := NewCodec(8) // corrects 4
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 60)
	for i := range data {
		data[i] = byte(i * 7)
	}
	enc, _ := c.Encode(data)
	rng := rand.New(rand.NewSource(7))
	fails := 0
	for trial := 0; trial < 20; trial++ {
		corrupted := make([]byte, len(enc))
		copy(corrupted, enc)
		for e := 0; e < 20; e++ { // way beyond capacity
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		}
		dec, err := c.Decode(corrupted, len(data))
		if err != nil || !bytes.Equal(dec, data) {
			fails++
		}
	}
	if fails < 15 {
		t.Errorf("only %d/20 heavy corruptions detected or mis-decoded", fails)
	}
}

func TestMultiBlockPayload(t *testing.T) {
	c, err := NewCodec(32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 1000) // several blocks
	rng.Read(data)
	enc, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a few bytes in each block region.
	per := c.DataPerBlock() + c.NParity()
	for off := 0; off < len(enc); off += per {
		for e := 0; e < 5; e++ {
			enc[off+rng.Intn(min(per, len(enc)-off))] ^= 0x5A
		}
	}
	dec, err := c.Decode(enc, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("multi-block roundtrip mismatch")
	}
}

func TestRoundtripProperty(t *testing.T) {
	c, err := NewCodec(16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		enc, err := c.Encode(data)
		if err != nil {
			return false
		}
		dec, err := c.Decode(enc, len(data))
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBadParams(t *testing.T) {
	if _, err := NewCodec(1); err == nil {
		t.Error("parity 1 accepted")
	}
	if _, err := NewCodec(200); err == nil {
		t.Error("parity 200 accepted")
	}
	c, _ := NewCodec(16)
	if _, err := c.EncodeBlock(make([]byte, 250)); err == nil {
		t.Error("oversized block accepted")
	}
	if _, err := c.DecodeBlock(make([]byte, 10)); err == nil {
		t.Error("undersized block accepted")
	}
	if _, err := c.Decode([]byte{1, 2, 3}, 100); err == nil {
		t.Error("truncated stream accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
