package ecc_test

import (
	"fmt"

	"deaduops/internal/ecc"
)

// Example encodes a message with ~20% Reed-Solomon redundancy, corrupts
// it, and recovers the original — the coding behind Table I's
// error-corrected bandwidth column.
func Example() {
	codec, err := ecc.NewCodec(42)
	if err != nil {
		fmt.Println(err)
		return
	}
	msg := []byte("leaked through dead uops")
	enc, err := codec.Encode(msg)
	if err != nil {
		fmt.Println(err)
		return
	}
	enc[3] ^= 0xFF // channel bit errors
	enc[17] ^= 0x42
	dec, err := codec.Decode(enc, len(msg))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s\n", dec)
	// Output:
	// leaked through dead uops
}
