package ecc

// TestDecodeSweep exhaustively checks decode across parity widths,
// block lengths, and error counts up to the correction bound.

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestDecodeSweep(t *testing.T) {
	for _, parity := range []int{8, 16, 32} {
		c, _ := NewCodec(parity)
		rng := rand.New(rand.NewSource(9))
		for blen := 10; blen <= c.DataPerBlock(); blen += 37 {
			for nerr := 0; nerr <= parity/2; nerr++ {
				data := make([]byte, blen)
				rng.Read(data)
				enc, _ := c.EncodeBlock(data)
				cor := append([]byte{}, enc...)
				seen := map[int]bool{}
				for e := 0; e < nerr; e++ {
					p := rng.Intn(len(cor))
					for seen[p] {
						p = rng.Intn(len(cor))
					}
					seen[p] = true
					cor[p] ^= byte(1 + rng.Intn(255))
				}
				dec, err := c.DecodeBlock(cor)
				if err != nil || !bytes.Equal(dec, data) {
					t.Fatalf("parity=%d blen=%d nerr=%d: err=%v", parity, blen, nerr, err)
				}
			}
		}
	}
}
