// Package ecc implements Reed-Solomon error correction over GF(2⁸),
// used by the covert channels to report Table I's error-corrected
// bandwidth. The paper encodes transmitted data with Reed-Solomon at
// roughly 20% redundancy to reach zero residual errors.
//
// The implementation is self-contained: GF(2⁸) arithmetic with the
// 0x11D primitive polynomial, a systematic encoder, and a
// syndrome/Berlekamp-Massey/Chien/Forney decoder.
package ecc

// gfPoly is the field's primitive polynomial x⁸+x⁴+x³+x²+1 (0x11D),
// the conventional choice for RS(255, k).
const gfPoly = 0x11D

// gf carries the exp/log tables for GF(2⁸).
var gfExp [512]byte
var gfLog [256]int

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies in GF(2⁸).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// gfDiv divides a by b in GF(2⁸); b must be nonzero.
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]+255-gfLog[b]]
}

// gfInv returns the multiplicative inverse; v must be nonzero.
func gfInv(v byte) byte { return gfExp[255-gfLog[v]] }

// gfPow returns a**n.
func gfPow(a byte, n int) byte {
	if a == 0 {
		return 0
	}
	return gfExp[(gfLog[a]*n)%255+255]
}

// polyMul multiplies polynomials over GF(2⁸) (coefficients
// highest-degree first).
func polyMul(a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] ^= gfMul(av, bv)
		}
	}
	return out
}

// polyEval evaluates the polynomial at x (Horner, highest-degree
// first).
func polyEval(p []byte, x byte) byte {
	var y byte
	for _, c := range p {
		y = gfMul(y, x) ^ c
	}
	return y
}
