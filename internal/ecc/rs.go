package ecc

import (
	"errors"
	"fmt"
)

// Codec is a systematic Reed-Solomon code RS(255, 255-NParity) over
// GF(2⁸), correcting up to NParity/2 byte errors per block.
type Codec struct {
	nParity int
	gen     []byte // generator polynomial, highest-degree first
}

// ErrTooManyErrors reports an uncorrectable block.
var ErrTooManyErrors = errors.New("ecc: too many errors to correct")

// NewCodec builds a codec with nParity check bytes per block
// (2 ≤ nParity ≤ 128).
func NewCodec(nParity int) (*Codec, error) {
	if nParity < 2 || nParity > 128 {
		return nil, fmt.Errorf("ecc: parity count %d out of range [2,128]", nParity)
	}
	gen := []byte{1}
	for i := 0; i < nParity; i++ {
		gen = polyMul(gen, []byte{1, gfPow(2, i)})
	}
	return &Codec{nParity: nParity, gen: gen}, nil
}

// NParity returns the number of check bytes per block.
func (c *Codec) NParity() int { return c.nParity }

// DataPerBlock returns the data bytes per 255-byte block.
func (c *Codec) DataPerBlock() int { return 255 - c.nParity }

// Overhead returns the redundancy ratio (parity / data).
func (c *Codec) Overhead() float64 {
	return float64(c.nParity) / float64(c.DataPerBlock())
}

// EncodeBlock appends nParity check bytes to data
// (len(data) ≤ DataPerBlock).
func (c *Codec) EncodeBlock(data []byte) ([]byte, error) {
	if len(data) > c.DataPerBlock() {
		return nil, fmt.Errorf("ecc: block of %d exceeds %d data bytes", len(data), c.DataPerBlock())
	}
	out := make([]byte, len(data)+c.nParity)
	copy(out, data)
	// Polynomial long division: the remainder becomes the check bytes.
	rem := make([]byte, len(out))
	copy(rem, out)
	for i := 0; i < len(data); i++ {
		coef := rem[i]
		if coef == 0 {
			continue
		}
		for j := 1; j < len(c.gen); j++ {
			rem[i+j] ^= gfMul(c.gen[j], coef)
		}
	}
	copy(out[len(data):], rem[len(data):])
	return out, nil
}

// DecodeBlock corrects up to nParity/2 byte errors and returns the data
// portion. The input is not modified.
func (c *Codec) DecodeBlock(block []byte) ([]byte, error) {
	if len(block) <= c.nParity {
		return nil, fmt.Errorf("ecc: block of %d too short for %d parity bytes", len(block), c.nParity)
	}
	msg := make([]byte, len(block))
	copy(msg, block)
	synd := c.syndromes(msg)
	if allZero(synd) {
		return msg[:len(msg)-c.nParity], nil
	}
	errLoc, err := c.errorLocator(synd)
	if err != nil {
		return nil, err
	}
	positions, err := findErrors(reversed(errLoc), len(msg))
	if err != nil {
		return nil, err
	}
	correctErrata(msg, synd, positions)
	if !allZero(c.syndromes(msg)) {
		return nil, ErrTooManyErrors
	}
	return msg[:len(msg)-c.nParity], nil
}

// syndromes evaluates the received polynomial at the generator roots
// (synd[i] = R(2^i)).
func (c *Codec) syndromes(block []byte) []byte {
	synd := make([]byte, c.nParity)
	for i := range synd {
		synd[i] = polyEval(block, gfPow(2, i))
	}
	return synd
}

func allZero(v []byte) bool {
	for _, b := range v {
		if b != 0 {
			return false
		}
	}
	return true
}

func reversed(p []byte) []byte {
	out := make([]byte, len(p))
	for i, v := range p {
		out[len(p)-1-i] = v
	}
	return out
}

// errorLocator runs Berlekamp-Massey and returns the error locator
// polynomial, highest-degree first.
func (c *Codec) errorLocator(synd []byte) ([]byte, error) {
	errLoc := []byte{1}
	oldLoc := []byte{1}
	for i := 0; i < len(synd); i++ {
		oldLoc = append(oldLoc, 0)
		delta := synd[i]
		for j := 1; j < len(errLoc); j++ {
			delta ^= gfMul(errLoc[len(errLoc)-1-j], synd[i-j])
		}
		if delta != 0 {
			if len(oldLoc) > len(errLoc) {
				newLoc := scalePoly(oldLoc, delta)
				oldLoc = scalePoly(errLoc, gfInv(delta))
				errLoc = newLoc
			}
			errLoc = addPoly(errLoc, scalePoly(oldLoc, delta))
		}
	}
	for len(errLoc) > 0 && errLoc[0] == 0 {
		errLoc = errLoc[1:]
	}
	errs := len(errLoc) - 1
	if errs*2 > c.nParity {
		return nil, ErrTooManyErrors
	}
	return errLoc, nil
}

func scalePoly(p []byte, s byte) []byte {
	out := make([]byte, len(p))
	for i, v := range p {
		out[i] = gfMul(v, s)
	}
	return out
}

func addPoly(a, b []byte) []byte {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]byte, n)
	for i := 0; i < len(a); i++ {
		out[i+n-len(a)] ^= a[i]
	}
	for i := 0; i < len(b); i++ {
		out[i+n-len(b)] ^= b[i]
	}
	return out
}

// findErrors locates error positions by Chien search. errLocRev is the
// locator polynomial lowest-degree first (i.e. reversed).
func findErrors(errLocRev []byte, msgLen int) ([]int, error) {
	errs := len(errLocRev) - 1
	var positions []int
	for i := 0; i < msgLen; i++ {
		if polyEval(errLocRev, gfPow(2, i)) == 0 {
			positions = append(positions, msgLen-1-i)
		}
	}
	if len(positions) != errs {
		return nil, ErrTooManyErrors
	}
	return positions, nil
}

// errataLocator builds the locator from known coefficient positions.
func errataLocator(coefPos []int) []byte {
	loc := []byte{1}
	for _, p := range coefPos {
		loc = polyMul(loc, addPoly([]byte{1}, []byte{gfPow(2, p), 0}))
	}
	return loc
}

// errorEvaluator computes Ω(x) = S(x)·Λ(x) mod x^(nsym+1).
func errorEvaluator(syndRev, errLoc []byte, nsym int) []byte {
	prod := polyMul(syndRev, errLoc)
	if len(prod) > nsym+1 {
		prod = prod[len(prod)-(nsym+1):]
	}
	return prod
}

// correctErrata computes error magnitudes via Forney's algorithm and
// repairs msg in place.
func correctErrata(msg, synd []byte, positions []int) {
	coefPos := make([]int, len(positions))
	for i, p := range positions {
		coefPos[i] = len(msg) - 1 - p
	}
	errLoc := errataLocator(coefPos)
	// The syndrome polynomial carries a leading zero pad (an extra
	// factor of x), per the standard Forney formulation.
	syndRev := append(reversed(synd), 0)
	errEval := errorEvaluator(syndRev, errLoc, len(errLoc)-1)

	// Error locations as field elements.
	x := make([]byte, len(coefPos))
	for i, cp := range coefPos {
		x[i] = gfPow(2, cp)
	}
	for i, xi := range x {
		xiInv := gfInv(xi)
		// Formal-derivative denominator: Π_{j≠i} (1 - X_j·Xi⁻¹).
		var den byte = 1
		for j, xj := range x {
			if j == i {
				continue
			}
			den = gfMul(den, 1^gfMul(xiInv, xj))
		}
		if den == 0 {
			return // degenerate; final syndrome re-check rejects
		}
		// Ω(Xi⁻¹), highest-degree-first evaluation.
		y := polyEval(errEval, xiInv)
		y = gfMul(xi, y)
		msg[positions[i]] ^= gfDiv(y, den)
	}
}

// Encode splits data into blocks and appends parity to each; the
// result's length is deterministic for a given data length.
func (c *Codec) Encode(data []byte) ([]byte, error) {
	var out []byte
	per := c.DataPerBlock()
	for off := 0; off < len(data); off += per {
		end := off + per
		if end > len(data) {
			end = len(data)
		}
		blk, err := c.EncodeBlock(data[off:end])
		if err != nil {
			return nil, err
		}
		out = append(out, blk...)
	}
	return out, nil
}

// Decode reverses Encode, correcting errors; dataLen is the original
// payload length.
func (c *Codec) Decode(stream []byte, dataLen int) ([]byte, error) {
	var out []byte
	per := c.DataPerBlock()
	off := 0
	for remaining := dataLen; remaining > 0; {
		n := per
		if remaining < per {
			n = remaining
		}
		blockLen := n + c.nParity
		if off+blockLen > len(stream) {
			return nil, fmt.Errorf("ecc: truncated stream (need %d, have %d)", off+blockLen, len(stream))
		}
		data, err := c.DecodeBlock(stream[off : off+blockLen])
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		off += blockLen
		remaining -= n
	}
	return out, nil
}
