// Package mem models the data/instruction cache hierarchy, the
// instruction TLB, and backing memory latencies. The hierarchy exists
// for two reasons: the classic Spectre-v1 baseline in Table II transmits
// over the LLC with flush+reload, and the micro-op cache is inclusive
// with respect to the L1I and the iTLB, so evictions and flushes there
// must propagate into the micro-op cache via hooks.
package mem

import "fmt"

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Sets     int // number of sets (power of two)
	Ways     int // associativity
	LineSize int // bytes per line (power of two)
	Latency  int // hit latency in cycles
}

// Lines returns the total line capacity.
func (c CacheConfig) Lines() int { return c.Sets * c.Ways }

// Bytes returns the total data capacity in bytes.
func (c CacheConfig) Bytes() int { return c.Lines() * c.LineSize }

func (c CacheConfig) validate(name string) error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("mem: %s sets %d not a positive power of two", name, c.Sets)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("mem: %s line size %d not a positive power of two", name, c.LineSize)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("mem: %s ways %d not positive", name, c.Ways)
	}
	return nil
}

// CacheStats counts accesses to one cache level.
type CacheStats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
	Evicts   uint64
}

// line is one cache line's metadata. The model tracks presence and
// recency only; data contents live in the CPU's flat memory image.
type line struct {
	tag   uint64
	valid bool
	used  uint64 // LRU timestamp
}

// Cache is one set-associative, true-LRU cache level.
type Cache struct {
	cfg   CacheConfig
	sets  [][]line
	clock uint64
	stats CacheStats

	// touched lists every set a fill has ever reached, in first-touch
	// order; istouched is its membership index. Save/Restore walk only
	// these sets, so snapshotting an 8192-set LLC whose workload lives
	// in a dozen sets copies a dozen rows.
	touched   []int32
	istouched []bool

	lineShift uint
	setMask   uint64

	// onEvict, if set, is called with the line-aligned address of every
	// line leaving this level (capacity eviction, back-invalidation, or
	// flush). The micro-op cache's L1I-inclusion hook hangs here.
	onEvict func(lineAddr uint64)
}

// NewCache builds a cache level. It panics on an invalid configuration;
// configurations are static in this codebase.
func NewCache(name string, cfg CacheConfig) *Cache {
	if err := cfg.validate(name); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:       cfg,
		sets:      make([][]line, cfg.Sets),
		istouched: make([]bool, cfg.Sets),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	c.lineShift = log2(uint64(cfg.LineSize))
	c.setMask = uint64(cfg.Sets - 1)
	return c
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the level's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns a copy of the level's counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// SetEvictHook installs fn to observe every line leaving the cache.
func (c *Cache) SetEvictHook(fn func(lineAddr uint64)) { c.onEvict = fn }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr >> c.lineShift
	return int(lineAddr & c.setMask), lineAddr >> log2(uint64(c.cfg.Sets))
}

// LineAddr returns the line-aligned base address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr >> c.lineShift << c.lineShift
}

// Lookup probes without filling. It reports a hit and updates recency.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.index(addr)
	c.clock++
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.used = c.clock
			return true
		}
	}
	return false
}

// Access probes and fills on miss, evicting LRU. It reports whether the
// access hit.
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	set, tag := c.index(addr)
	c.clock++
	ways := c.sets[set]
	victim := 0
	for i := range ways {
		l := &ways[i]
		if l.valid && l.tag == tag {
			l.used = c.clock
			c.stats.Hits++
			return true
		}
		if !ways[victim].valid {
			continue
		}
		if !l.valid || l.used < ways[victim].used {
			victim = i
		}
	}
	c.stats.Misses++
	v := &ways[victim]
	if v.valid {
		c.stats.Evicts++
		c.notifyEvict(set, v.tag)
	}
	*v = line{tag: tag, valid: true, used: c.clock}
	// Fills are the only way a line becomes valid, so marking here
	// keeps touched a superset of every set holding state.
	if !c.istouched[set] {
		c.istouched[set] = true
		c.touched = append(c.touched, int32(set))
	}
	return false
}

func (c *Cache) notifyEvict(set int, tag uint64) {
	if c.onEvict == nil {
		return
	}
	lineAddr := (tag<<log2(uint64(c.cfg.Sets)) | uint64(set)) << c.lineShift
	c.onEvict(lineAddr)
}

// Invalidate removes the line containing addr, if present, reporting
// whether a line was removed. The eviction hook fires.
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.valid = false
			c.notifyEvict(set, tag)
			return true
		}
	}
	return false
}

// InvalidateAll empties the cache. Eviction hooks fire for every line.
func (c *Cache) InvalidateAll() {
	for set := range c.sets {
		for i := range c.sets[set] {
			l := &c.sets[set][i]
			if l.valid {
				l.valid = false
				c.notifyEvict(set, l.tag)
			}
		}
	}
}

// CacheState is a sparse snapshot of one level's dynamic contents:
// only ever-touched sets are stored (index list plus their way rows),
// so snapshot cost scales with the workload's footprint, not the
// level's capacity. Backing arrays are recycled across Save calls, and
// a snapshot only restores into a cache built from the same geometry.
// Eviction hooks belong to the live cache and are untouched by
// Save/Restore.
type CacheState struct {
	numSets int
	ways    int
	sets    []int32
	lines   []line
	clock   uint64
	stats   CacheStats
}

// Save deep-copies every touched set's rows into s, reusing s's
// buffers.
func (c *Cache) Save(s *CacheState) {
	w := c.cfg.Ways
	s.numSets, s.ways = c.cfg.Sets, w
	s.sets = append(s.sets[:0], c.touched...)
	n := len(c.touched) * w
	if cap(s.lines) < n {
		s.lines = make([]line, n)
	}
	s.lines = s.lines[:n]
	for i, set := range c.touched {
		copy(s.lines[i*w:(i+1)*w], c.sets[set])
	}
	s.clock = c.clock
	s.stats = c.stats
}

// Restore overwrites the level's contents from s: sets touched since
// the snapshot but absent from it are zeroed, snapshot sets are copied
// back, and the touched list becomes the snapshot's. It panics if s
// was saved from a level with different geometry. No eviction hooks
// fire: a restore is state substitution, not cache traffic.
func (c *Cache) Restore(s *CacheState) {
	if s.numSets != c.cfg.Sets || s.ways != c.cfg.Ways {
		panic("mem: Restore from a checkpoint with different geometry")
	}
	for _, set := range c.touched {
		row := c.sets[set]
		for i := range row {
			row[i] = line{}
		}
		c.istouched[set] = false
	}
	c.touched = c.touched[:0]
	w := c.cfg.Ways
	for i, set := range s.sets {
		copy(c.sets[set], s.lines[i*w:(i+1)*w])
		c.istouched[set] = true
		c.touched = append(c.touched, set)
	}
	c.clock = s.clock
	c.stats = s.stats
}

// Contains probes without touching recency or statistics.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}
