package mem

// HierarchyConfig sizes the full cache hierarchy. DefaultHierarchy
// mirrors the paper's Coffee Lake testbed (i7-8700T): 32 KiB 8-way L1I
// and L1D, 256 KiB 4-way L2, 12 MiB 16-way shared LLC.
type HierarchyConfig struct {
	L1I, L1D, L2, LLC CacheConfig
	MemLatency        int // DRAM access latency in cycles
	ITLBEntries       int
	ITLBWays          int
	PageSize          int
}

// DefaultHierarchy returns the Coffee Lake-like configuration.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I:         CacheConfig{Sets: 64, Ways: 8, LineSize: 64, Latency: 4},
		L1D:         CacheConfig{Sets: 64, Ways: 8, LineSize: 64, Latency: 4},
		L2:          CacheConfig{Sets: 1024, Ways: 4, LineSize: 64, Latency: 14},
		LLC:         CacheConfig{Sets: 8192, Ways: 16, LineSize: 64, Latency: 44},
		MemLatency:  200,
		ITLBEntries: 128,
		ITLBWays:    8,
		PageSize:    4096,
	}
}

// HierarchyStats aggregates the counters Table II reads.
type HierarchyStats struct {
	L1I, L1D, L2, LLC CacheStats
	// LLCRefs/LLCMisses mirror the LONGEST_LAT_CACHE.REFERENCE/MISS
	// events: LLC lookups and fills from DRAM.
	LLCRefs   uint64
	LLCMisses uint64
	ITLB      CacheStats
}

// Hierarchy is the three-level cache model plus iTLB.
type Hierarchy struct {
	cfg HierarchyConfig
	l1i *Cache
	l1d *Cache
	l2  *Cache
	llc *Cache
	tlb *Cache

	// onITLBFlush fires when the iTLB is flushed; the micro-op cache
	// registers a full flush here (SGX-style behaviour from §II-B).
	onITLBFlush func()
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	pageSets := cfg.ITLBEntries / cfg.ITLBWays
	return &Hierarchy{
		cfg: cfg,
		l1i: NewCache("L1I", cfg.L1I),
		l1d: NewCache("L1D", cfg.L1D),
		l2:  NewCache("L2", cfg.L2),
		llc: NewCache("LLC", cfg.LLC),
		tlb: NewCache("iTLB", CacheConfig{
			Sets: pageSets, Ways: cfg.ITLBWays,
			LineSize: cfg.PageSize, Latency: 1,
		}),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1I returns the instruction cache (for hooking inclusion).
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// L1D returns the data cache.
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// LLC returns the last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.llc }

// SetITLBFlushHook installs fn to run on every full iTLB flush.
func (h *Hierarchy) SetITLBFlushHook(fn func()) { h.onITLBFlush = fn }

// Stats returns all counters.
func (h *Hierarchy) Stats() HierarchyStats {
	return HierarchyStats{
		L1I:       h.l1i.Stats(),
		L1D:       h.l1d.Stats(),
		L2:        h.l2.Stats(),
		LLC:       h.llc.Stats(),
		LLCRefs:   h.llc.Stats().Accesses,
		LLCMisses: h.llc.Stats().Misses,
		ITLB:      h.tlb.Stats(),
	}
}

// HierarchyState is a deep snapshot of every level's dynamic contents
// (L1I, L1D, L2, LLC, iTLB), reusable across Save calls. Eviction and
// iTLB-flush hooks stay with the live hierarchy.
type HierarchyState struct {
	l1i, l1d, l2, llc, tlb CacheState
}

// Save deep-copies all five levels into s, reusing s's buffers.
func (h *Hierarchy) Save(s *HierarchyState) {
	h.l1i.Save(&s.l1i)
	h.l1d.Save(&s.l1d)
	h.l2.Save(&s.l2)
	h.llc.Save(&s.llc)
	h.tlb.Save(&s.tlb)
}

// Restore overwrites all five levels from s. No hooks fire.
func (h *Hierarchy) Restore(s *HierarchyState) {
	h.l1i.Restore(&s.l1i)
	h.l1d.Restore(&s.l1d)
	h.l2.Restore(&s.l2)
	h.llc.Restore(&s.llc)
	h.tlb.Restore(&s.tlb)
}

// AccessData performs a data access at addr and returns its latency in
// cycles, filling every missing level on the way.
func (h *Hierarchy) AccessData(addr uint64) int {
	if h.l1d.Access(addr) {
		return h.cfg.L1D.Latency
	}
	if h.l2.Access(addr) {
		return h.cfg.L2.Latency
	}
	if h.llc.Access(addr) {
		return h.cfg.LLC.Latency
	}
	return h.cfg.MemLatency
}

// AccessInst performs an instruction-fetch access at addr (iTLB + L1I +
// lower levels) and returns its latency in cycles.
func (h *Hierarchy) AccessInst(addr uint64) int {
	lat := 0
	if !h.tlb.Access(addr) {
		lat += 20 // page-walk cost
	}
	if h.l1i.Access(addr) {
		return lat + h.cfg.L1I.Latency
	}
	if h.l2.Access(addr) {
		return lat + h.cfg.L2.Latency
	}
	if h.llc.Access(addr) {
		return lat + h.cfg.LLC.Latency
	}
	return lat + h.cfg.MemLatency
}

// PeekDataLatency returns the latency a data access at addr would see
// right now, without filling or touching recency at any level — the
// invisible-speculation read path.
func (h *Hierarchy) PeekDataLatency(addr uint64) int {
	switch {
	case h.l1d.Contains(addr):
		return h.cfg.L1D.Latency
	case h.l2.Contains(addr):
		return h.cfg.L2.Latency
	case h.llc.Contains(addr):
		return h.cfg.LLC.Latency
	default:
		return h.cfg.MemLatency
	}
}

// InstCached reports whether the instruction line holding addr is in
// the L1I, without perturbing state.
func (h *Hierarchy) InstCached(addr uint64) bool { return h.l1i.Contains(addr) }

// DataCached reports the lowest level holding addr: 1, 2, 3, or 0 when
// only DRAM has it. It does not perturb state.
func (h *Hierarchy) DataCached(addr uint64) int {
	switch {
	case h.l1d.Contains(addr):
		return 1
	case h.l2.Contains(addr):
		return 2
	case h.llc.Contains(addr):
		return 3
	default:
		return 0
	}
}

// Flush evicts the data line containing addr from every level
// (clflush). Instruction-side lines are untouched, as on real hardware
// where clflush works on the unified levels; the L1I copy is
// invalidated through LLC inclusion.
func (h *Hierarchy) Flush(addr uint64) {
	h.l1d.Invalidate(addr)
	h.l1i.Invalidate(addr)
	h.l2.Invalidate(addr)
	h.llc.Invalidate(addr)
}

// FlushITLB empties the iTLB and fires the inclusion hook (full
// micro-op cache flush).
func (h *Hierarchy) FlushITLB() {
	h.tlb.InvalidateAll()
	if h.onITLBFlush != nil {
		h.onITLBFlush()
	}
}
