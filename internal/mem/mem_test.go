package mem

import (
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return NewCache("t", CacheConfig{Sets: 4, Ways: 2, LineSize: 64, Latency: 3})
}

func TestCacheHitMiss(t *testing.T) {
	c := smallCache()
	if c.Access(0x100) {
		t.Error("cold access hit")
	}
	if !c.Access(0x100) {
		t.Error("warm access missed")
	}
	if !c.Access(0x13F) {
		t.Error("same-line access missed")
	}
	if c.Access(0x140) {
		t.Error("next line hit")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache()
	// Three lines mapping to set 0 in a 2-way set: 4 sets × 64B lines →
	// stride 256.
	c.Access(0x0000)
	c.Access(0x0100)
	c.Access(0x0000) // refresh line 0
	c.Access(0x0200) // evicts 0x0100 (LRU)
	if !c.Contains(0x0000) {
		t.Error("recently used line evicted")
	}
	if c.Contains(0x0100) {
		t.Error("LRU line survived")
	}
	if !c.Contains(0x0200) {
		t.Error("new line absent")
	}
}

func TestCacheEvictHook(t *testing.T) {
	c := smallCache()
	var evicted []uint64
	c.SetEvictHook(func(a uint64) { evicted = append(evicted, a) })
	c.Access(0x0000)
	c.Access(0x0100)
	c.Access(0x0200)
	if len(evicted) != 1 || evicted[0] != 0x0000 {
		t.Errorf("evictions %v, want [0x0]", evicted)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := smallCache()
	c.Access(0x300)
	if !c.Invalidate(0x300) {
		t.Error("invalidate missed present line")
	}
	if c.Contains(0x300) {
		t.Error("line survived invalidation")
	}
	if c.Invalidate(0x300) {
		t.Error("invalidate hit absent line")
	}
}

func TestCacheInvalidateAllFiresHooks(t *testing.T) {
	c := smallCache()
	n := 0
	c.SetEvictHook(func(uint64) { n++ })
	c.Access(0x000)
	c.Access(0x040)
	c.Access(0x080)
	c.InvalidateAll()
	if n != 3 {
		t.Errorf("hook fired %d times, want 3", n)
	}
}

func TestCacheLookupDoesNotFill(t *testing.T) {
	c := smallCache()
	if c.Lookup(0x500) {
		t.Error("lookup hit cold line")
	}
	if c.Contains(0x500) {
		t.Error("lookup filled the cache")
	}
}

func TestEvictHookAddressRoundtrip(t *testing.T) {
	// The hook must report the line-aligned address of the evicted
	// line, for any address.
	c := NewCache("t", CacheConfig{Sets: 8, Ways: 1, LineSize: 32, Latency: 1})
	f := func(addr uint32) bool {
		a := uint64(addr)
		var got uint64
		hit := false
		c.SetEvictHook(func(line uint64) { got = line; hit = true })
		c.Access(a)
		c.Access(a + 8*32) // same set, forces eviction
		c.SetEvictHook(nil)
		return hit && got == a>>5<<5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{Sets: 3, Ways: 1, LineSize: 64},
		{Sets: 4, Ways: 0, LineSize: 64},
		{Sets: 4, Ways: 1, LineSize: 48},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			NewCache("bad", cfg)
		}()
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	cfg := h.Config()
	if lat := h.AccessData(0x1000); lat != cfg.MemLatency {
		t.Errorf("cold access latency %d, want DRAM %d", lat, cfg.MemLatency)
	}
	if lat := h.AccessData(0x1000); lat != cfg.L1D.Latency {
		t.Errorf("warm access latency %d, want L1 %d", lat, cfg.L1D.Latency)
	}
}

func TestHierarchyDataCachedLevels(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	if lvl := h.DataCached(0x2000); lvl != 0 {
		t.Errorf("cold level %d", lvl)
	}
	h.AccessData(0x2000)
	if lvl := h.DataCached(0x2000); lvl != 1 {
		t.Errorf("warm level %d", lvl)
	}
	// After flushing only L1, the line must still sit in L2/LLC.
	h.L1D().Invalidate(0x2000)
	if lvl := h.DataCached(0x2000); lvl != 2 {
		t.Errorf("level after L1 invalidation %d, want 2", lvl)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	h.AccessData(0x3000)
	h.Flush(0x3000)
	if lvl := h.DataCached(0x3000); lvl != 0 {
		t.Errorf("line at level %d after clflush", lvl)
	}
}

func TestHierarchyInstPathAndITLB(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	cold := h.AccessInst(0x4000)
	warm := h.AccessInst(0x4000)
	if warm >= cold {
		t.Errorf("warm fetch %d not faster than cold %d", warm, cold)
	}
	if !h.InstCached(0x4000) {
		t.Error("L1I missed after fetch")
	}
	flushed := false
	h.SetITLBFlushHook(func() { flushed = true })
	h.FlushITLB()
	if !flushed {
		t.Error("iTLB flush hook not fired")
	}
	// Next fetch pays the page walk again.
	if lat := h.AccessInst(0x4000); lat <= h.Config().L1I.Latency {
		t.Errorf("post-flush fetch latency %d too low (no page walk)", lat)
	}
}

func TestHierarchyStats(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	h.AccessData(0x5000)
	h.AccessData(0x5000)
	st := h.Stats()
	if st.LLCRefs != 1 || st.LLCMisses != 1 {
		t.Errorf("LLC refs %d misses %d, want 1/1", st.LLCRefs, st.LLCMisses)
	}
	if st.L1D.Hits != 1 {
		t.Errorf("L1D hits %d", st.L1D.Hits)
	}
}

func TestCacheConfigHelpers(t *testing.T) {
	cfg := CacheConfig{Sets: 64, Ways: 8, LineSize: 64}
	if cfg.Lines() != 512 {
		t.Errorf("lines %d", cfg.Lines())
	}
	if cfg.Bytes() != 32768 {
		t.Errorf("bytes %d", cfg.Bytes())
	}
}
