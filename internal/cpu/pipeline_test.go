package cpu

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

// TestTransientFetchFillsUopCache verifies the core security property:
// code fetched along a misspeculated path leaves micro-op cache state
// that survives the squash.
func TestTransientFetchFillsUopCache(t *testing.T) {
	b := asm.New(0x10000)
	b.Label("entry")
	b.Movi(isa.R2, 0)
	b.Clflush(isa.R2, 0x1000) // flush the guard value
	b.Load(isa.R3, isa.R2, 0x1000)
	b.Cmpi(isa.R3, 1)
	b.Jcc(isa.EQ, "transient") // mistrained: guard is 0 architecturally
	b.Halt()
	// The transient target: a distinctive region far away.
	b.Org(0x10000 + 16*1024 + 7*32) // set 7
	b.Label("transient")
	b.Nop(5)
	b.Nop(5)
	b.Halt()
	prog := b.MustBuild()

	c := New(Intel())
	c.LoadProgram(prog)
	transientAddr := prog.MustLabel("transient")

	// Train the branch taken (guard = 1).
	c.Mem().Write(0x1000, 8, 1)
	for i := 0; i < 4; i++ {
		if res := c.Run(0, prog.Entry, 100000); res.TimedOut {
			t.Fatal("training timed out")
		}
	}
	c.FlushUopCache()
	if c.UopCache().Present(0, transientAddr) {
		t.Fatal("transient region cached before the attack run")
	}

	// Arm: guard = 0, so the taken prediction is wrong; the flush makes
	// the guard load slow, opening the window.
	c.Mem().Write(0x1000, 8, 0)
	res := c.Run(0, prog.Entry, 100000)
	if res.TimedOut {
		t.Fatal("attack run timed out")
	}
	if res.Counters.Get(perfctr.BranchMispredicts) == 0 {
		t.Fatal("no misprediction — no transient window opened")
	}
	if !c.UopCache().Present(0, transientAddr) {
		t.Error("squashed path left no micro-op cache footprint")
	}
}

// TestLFENCEBlocksExecutionNotFetch verifies the fence contract the
// variant-2 attack exploits.
func TestLFENCEBlocksExecutionNotFetch(t *testing.T) {
	// Architectural check: LFENCE orders execution (program still
	// computes correctly).
	b := asm.New(0x10000)
	b.Movi(isa.R1, 1)
	b.Lfence()
	b.Addi(isa.R1, 2)
	b.Halt()
	p := b.MustBuild()
	c := New(Intel())
	c.LoadProgram(p)
	if res := c.Run(0, p.Entry, 100000); res.TimedOut {
		t.Fatal("timed out")
	}
	if got := c.Reg(0, isa.R1); got != 3 {
		t.Errorf("R1 = %d", got)
	}

	// Microarchitectural check: with an LFENCE pending behind a slow
	// load, younger code is still fetched (fills the µop cache) even
	// though it cannot execute.
	b2 := asm.New(0x20000)
	b2.Label("entry")
	b2.Movi(isa.R2, 0)
	b2.Load(isa.R3, isa.R2, 0x1000) // slow (cold) load
	b2.Cmpi(isa.R3, 99)
	b2.Jcc(isa.EQ, "away") // predicted not-taken (cold predictor)
	b2.Lfence()
	b2.Jmp("younger")
	b2.Org(0x20000 + 8*1024 + 9*32) // set 9
	b2.Label("younger")
	b2.Nop(5)
	b2.Halt()
	b2.Org(0x20000 + 12*1024)
	b2.Label("away")
	b2.Halt()
	p2 := b2.MustBuild()
	c2 := New(Intel())
	c2.LoadProgram(p2)
	youngerAddr := p2.MustLabel("younger")
	if res := c2.Run(0, p2.Entry, 100000); res.TimedOut {
		t.Fatal("timed out")
	}
	if !c2.UopCache().Present(0, youngerAddr) {
		t.Error("code past LFENCE was not fetched while the fence was pending")
	}
}

// TestCPUIDSerializesFetch verifies the contrasting contract: nothing
// past CPUID is fetched until it retires, so a mispredicted path never
// reaches the µop cache through it.
func TestCPUIDSerializesFetch(t *testing.T) {
	b := asm.New(0x20000)
	b.Label("entry")
	b.Movi(isa.R2, 0)
	b.Clflush(isa.R2, 0x1000)
	b.Load(isa.R3, isa.R2, 0x1000)
	b.Cmpi(isa.R3, 1)
	b.Jcc(isa.EQ, "guarded") // trained taken; actually not taken
	b.Halt()
	b.Org(0x20000 + 8*1024 + 11*32)
	b.Label("guarded")
	b.Cpuid()
	b.Jmp("secretcode")
	b.Org(0x20000 + 16*1024 + 13*32) // set 13
	b.Label("secretcode")
	b.Nop(5)
	b.Halt()
	prog := b.MustBuild()
	c := New(Intel())
	c.LoadProgram(prog)
	secretAddr := prog.MustLabel("secretcode")

	c.Mem().Write(0x1000, 8, 1)
	for i := 0; i < 4; i++ {
		if res := c.Run(0, prog.Entry, 100000); res.TimedOut {
			t.Fatal("training timed out")
		}
	}
	c.FlushUopCache()
	c.Mem().Write(0x1000, 8, 0) // arm
	if res := c.Run(0, prog.Entry, 100000); res.TimedOut {
		t.Fatal("attack run timed out")
	}
	if c.UopCache().Present(0, secretAddr) {
		t.Error("code past a transient CPUID was fetched — fetch serialization broken")
	}
}

// TestSquashRestoresArchitecturalState verifies transient writes never
// commit.
func TestSquashRestoresArchitecturalState(t *testing.T) {
	b := asm.New(0x10000)
	b.Label("entry")
	b.Movi(isa.R1, 10)
	b.Movi(isa.R2, 0)
	b.Clflush(isa.R2, 0x1000)
	b.Load(isa.R3, isa.R2, 0x1000)
	b.Cmpi(isa.R3, 1)
	b.Jcc(isa.EQ, "transient")
	b.Halt()
	b.Label("transient")
	b.Movi(isa.R1, 99) // transient register write
	b.Movi(isa.R4, 0x42)
	b.Store(isa.R2, 0x2000, isa.R4) // transient store
	b.Halt()
	prog := b.MustBuild()
	c := New(Intel())
	c.LoadProgram(prog)

	c.Mem().Write(0x1000, 8, 1)
	for i := 0; i < 4; i++ {
		c.Run(0, prog.Entry, 100000)
	}
	c.Mem().Write(0x1000, 8, 0)
	c.Mem().Write(0x2000, 8, 0)
	if res := c.Run(0, prog.Entry, 100000); res.TimedOut {
		t.Fatal("timed out")
	}
	if got := c.Reg(0, isa.R1); got != 10 {
		t.Errorf("transient register write committed: R1 = %d", got)
	}
	if got := c.Mem().Read(0x2000, 8); got != 0 {
		t.Errorf("transient store committed: mem = %#x", got)
	}
}

// TestTransientLoadPerturbsDataCache verifies the classic Spectre
// property our flush+reload baseline depends on: a squashed load still
// fills the data cache.
func TestTransientLoadPerturbsDataCache(t *testing.T) {
	b := asm.New(0x10000)
	b.Label("entry")
	b.Movi(isa.R2, 0)
	b.Clflush(isa.R2, 0x1000)
	b.Load(isa.R3, isa.R2, 0x1000)
	b.Cmpi(isa.R3, 1)
	b.Jcc(isa.EQ, "transient")
	b.Halt()
	b.Label("transient")
	b.Load(isa.R4, isa.R2, 0x7000) // transient data access
	b.Halt()
	prog := b.MustBuild()
	c := New(Intel())
	c.LoadProgram(prog)

	c.Mem().Write(0x1000, 8, 1)
	for i := 0; i < 4; i++ {
		c.Run(0, prog.Entry, 100000)
	}
	c.Hierarchy().Flush(0x7000)
	c.Mem().Write(0x1000, 8, 0)
	if res := c.Run(0, prog.Entry, 100000); res.TimedOut {
		t.Fatal("timed out")
	}
	if lvl := c.Hierarchy().DataCached(0x7000); lvl == 0 {
		t.Error("transient load left no data-cache footprint")
	}
}

// TestITLBFlushEmptiesUopCache verifies the inclusion property (§II-B).
func TestITLBFlushEmptiesUopCache(t *testing.T) {
	b := asm.New(0x10000)
	b.Label("entry")
	b.Nop(5)
	b.Halt()
	prog := b.MustBuild()
	c := New(Intel())
	c.LoadProgram(prog)
	c.Run(0, prog.Entry, 100000)
	if len(c.UopCache().Snapshot()) == 0 {
		t.Fatal("nothing cached")
	}
	c.Hierarchy().FlushITLB()
	if len(c.UopCache().Snapshot()) != 0 {
		t.Error("µop cache lines survived the iTLB flush")
	}
}

// TestITLBFlushInstruction exercises the guest-visible ITLBFLUSH op.
func TestITLBFlushInstruction(t *testing.T) {
	b := asm.New(0x10000)
	b.Label("entry")
	b.Nop(5)
	b.ItlbFlush()
	b.Halt()
	prog := b.MustBuild()
	c := New(Intel())
	c.LoadProgram(prog)
	if res := c.Run(0, prog.Entry, 100000); res.TimedOut {
		t.Fatal("timed out")
	}
	if len(c.UopCache().Snapshot()) != 0 {
		t.Error("lines survived guest ITLBFLUSH")
	}
}

// TestL1IEvictionInvalidatesUopCache verifies the L1I inclusion hook.
func TestL1IEvictionInvalidatesUopCache(t *testing.T) {
	b := asm.New(0x10000)
	b.Label("entry")
	b.Nop(5)
	b.Halt()
	prog := b.MustBuild()
	c := New(Intel())
	c.LoadProgram(prog)
	c.Run(0, prog.Entry, 100000)
	if !c.UopCache().Present(0, 0x10000) {
		t.Fatal("entry region not cached")
	}
	c.Hierarchy().L1I().Invalidate(0x10000)
	if c.UopCache().Present(0, 0x10000) {
		t.Error("µop cache line survived its L1I line's eviction")
	}
}

// TestMitigationFlushKillsPersistence checks the flush-on-switch
// mitigation end to end.
func TestMitigationFlushKillsPersistence(t *testing.T) {
	cfg := Intel()
	cfg.Mitigation = MitigationFlushOnPrivilegeSwitch
	user := asm.New(0x10000)
	user.Label("entry")
	user.Nop(5)
	user.Syscall()
	user.Halt()
	kern := asm.New(cfg.KernelEntry)
	kern.Sysret()
	prog, err := asm.Merge(user.MustBuild(), kern.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	c := New(cfg)
	c.LoadProgram(prog)
	if res := c.Run(0, prog.Entry, 100000); res.TimedOut {
		t.Fatal("timed out")
	}
	// Everything cached before the final sysret was flushed at the
	// crossings; at most the post-sysret user code remains.
	for _, li := range c.UopCache().Snapshot() {
		if li.Region < 0x10020 {
			t.Errorf("pre-syscall region %#x survived the domain crossing", li.Region)
		}
	}
}

// TestSMTRunsBothThreads sanity-checks the SMT loop.
func TestSMTRunsBothThreads(t *testing.T) {
	a := asm.New(0x10000)
	a.Label("entry")
	a.Movi(isa.R1, 7)
	a.Halt()
	bld := asm.New(0x20000)
	bld.Label("entry")
	bld.Movi(isa.R1, 9)
	bld.Halt()
	pa, pb := a.MustBuild(), bld.MustBuild()
	merged, err := asm.Merge(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Intel())
	c.LoadProgram(merged)
	res := c.RunSMT(pa.Entry, pb.Entry, 100000)
	if res[0].TimedOut || res[1].TimedOut {
		t.Fatal("SMT run timed out")
	}
	if c.Reg(0, isa.R1) != 7 || c.Reg(1, isa.R1) != 9 {
		t.Errorf("thread state mixed: %d/%d", c.Reg(0, isa.R1), c.Reg(1, isa.R1))
	}
}

// TestAMDConfigRuns sanity-checks the Zen configuration end to end.
func TestAMDConfigRuns(t *testing.T) {
	b := asm.New(0x10000)
	b.Label("entry")
	b.Movi(isa.R1, 5)
	b.Addi(isa.R1, 6)
	b.Halt()
	prog := b.MustBuild()
	c := New(AMD())
	c.LoadProgram(prog)
	if res := c.Run(0, prog.Entry, 100000); res.TimedOut {
		t.Fatal("timed out")
	}
	if got := c.Reg(0, isa.R1); got != 11 {
		t.Errorf("R1 = %d", got)
	}
}

// TestMispredictRecovery runs a data-dependent branch pattern the
// predictor cannot learn and verifies the architecture stays correct.
func TestMispredictRecovery(t *testing.T) {
	// Alternate taken/not-taken based on the loop counter's low bit.
	b := asm.New(0x10000)
	b.Label("entry")
	b.Movi(isa.R1, 0)  // accumulator
	b.Movi(isa.R2, 16) // counter
	b.Label("loop")
	b.Mov(isa.R3, isa.R2)
	b.Andi(isa.R3, 1)
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.EQ, "even")
	b.Addi(isa.R1, 1) // odd path
	b.Jmp("next")
	b.Label("even")
	b.Addi(isa.R1, 100)
	b.Label("next")
	b.Subi(isa.R2, 1)
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "loop")
	b.Halt()
	prog := b.MustBuild()
	c := New(Intel())
	c.LoadProgram(prog)
	res := c.Run(0, prog.Entry, 1_000_000)
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if got := c.Reg(0, isa.R1); got != 8*101 {
		t.Errorf("accumulator %d, want %d", got, 8*101)
	}
	if res.Counters.Get(perfctr.BranchMispredicts) == 0 {
		t.Error("alternating branch never mispredicted (suspicious)")
	}
}

// TestPauseNotCached verifies the paper's observation that PAUSE µops
// never enter the micro-op cache.
func TestPauseNotCached(t *testing.T) {
	b := asm.New(0x10000)
	b.Label("entry")
	b.Pause()
	b.Nop(5)
	b.Halt()
	prog := b.MustBuild()
	c := New(Intel())
	c.LoadProgram(prog)
	c.Run(0, prog.Entry, 100000)
	c.Run(0, prog.Entry, 100000)
	if c.UopCache().Present(0, 0x10000) {
		t.Error("PAUSE-containing region was cached")
	}
	if got := c.UopCache().Stats().Uncacheable; got == 0 {
		t.Error("uncacheable fill not counted")
	}
}
