// Checkpoint/Restore: deep snapshots of the whole core, taken between
// runs. Everything that persists across runs is captured — both SMT
// contexts' architectural state (registers, flags, privilege mode,
// syscall return stacks), predictor state, the micro-op cache with
// per-line hotness, all five cache-hierarchy levels including the
// iTLB, performance counters, the global cycle clock, and the guest
// memory image. Everything that does NOT persist (in-flight ROB
// entries, pending fetch state, the IDQ) is deliberately absent:
// Run's entry sequence (Backend.Reset → FrontEnd.Redirect) discards
// it before the first tick, so a core restored from a checkpoint is
// bit-identical, in every subsequent run, to the core the checkpoint
// was taken from.
//
// Restores never rewire hooks. The L1I-inclusion, iTLB-flush, and
// privilege-switch closures installed by NewWith belong to the live
// core and keep pointing at its own structures — a checkpoint is pure
// state, so one snapshot can fork into any number of same-config
// cores (or the same core repeatedly) without aliasing.
package cpu

import (
	"deaduops/internal/asm"
	"deaduops/internal/backend"
	"deaduops/internal/bpu"
	"deaduops/internal/frontend"
	"deaduops/internal/perfctr"
	"deaduops/internal/uopcache"

	"deaduops/internal/mem"
)

// threadState is one SMT context's slice of a checkpoint.
type threadState struct {
	bp  bpu.State
	ctr perfctr.Snapshot
	be  backend.State
	fe  frontend.State
}

// Checkpoint is a reusable snapshot buffer. The zero value is ready;
// repeated Checkpoint calls into the same buffer recycle its backing
// arrays, so a sweep worker pays steady-state zero allocation per
// snapshot (draw buffers from Arena.CheckpointBuf to share them
// across points). A Checkpoint must not be shared between goroutines.
type Checkpoint struct {
	valid   bool
	cycle   uint64
	prog    *asm.Program
	mem     MemoryState
	uc      uopcache.State
	hier    mem.HierarchyState
	threads [NumThreads]threadState
}

// Valid reports whether ck holds a snapshot.
func (ck *Checkpoint) Valid() bool { return ck != nil && ck.valid }

// Checkpoint deep-snapshots the core into dst. Call it only between
// runs (Run and RunSMT are synchronous, so any call site outside them
// qualifies). The program pointer is captured by reference — code
// images are immutable once loaded.
func (c *CPU) Checkpoint(dst *Checkpoint) {
	dst.cycle = c.cycle
	dst.prog = c.threads[0].fe.Program()
	c.mem.Save(&dst.mem)
	c.uc.Save(&dst.uc)
	c.hier.Save(&dst.hier)
	for t, th := range c.threads {
		th.bp.Save(&dst.threads[t].bp)
		dst.threads[t].ctr = th.ctr.Snapshot()
		th.be.Save(&dst.threads[t].be)
		th.fe.Save(&dst.threads[t].fe)
	}
	dst.valid = true
}

// Restore rehydrates the core from ck in O(touched-state): every copy
// lands in the core's existing structures, so restoring into a warm
// core allocates nothing. The target must have the same configuration
// as the checkpointed core (geometry mismatches panic). After Restore
// the core is quiescent — exactly the between-runs position of the
// original at snapshot time, including its absolute cycle clock, so
// RDTSC-bearing programs replay identically.
func (c *CPU) Restore(ck *Checkpoint) {
	if !ck.Valid() {
		panic("cpu: Restore from an empty checkpoint")
	}
	if ck.mem.size != len(c.mem.data) {
		panic("cpu: Restore into a core with a different memory size")
	}
	c.cycle = ck.cycle
	c.mem.Restore(&ck.mem)
	c.uc.Restore(&ck.uc)
	c.hier.Restore(&ck.hier)
	for t, th := range c.threads {
		th.bp.Restore(&ck.threads[t].bp)
		th.ctr.Restore(ck.threads[t].ctr)
		th.be.Restore(&ck.threads[t].be)
		th.fe.Restore(&ck.threads[t].fe)
		if ck.prog != nil {
			th.fe.SetProgram(ck.prog)
		}
	}
}
