// Package cpu assembles the whole simulated core: two hardware threads
// (SMT contexts), each with a fetch engine and a backend, sharing the
// micro-op cache (per the configured partitioning policy), the cache
// hierarchy, and guest data memory. It exposes the host-facing API the
// characterization experiments and attacks drive: load a program, run a
// thread (or two threads simultaneously), and read timing and
// performance counters.
package cpu

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/backend"
	"deaduops/internal/bpu"
	"deaduops/internal/frontend"
	"deaduops/internal/isa"
	"deaduops/internal/mem"
	"deaduops/internal/perfctr"
	"deaduops/internal/profile"
	"deaduops/internal/uopcache"
)

// NumThreads is the number of SMT contexts per core.
const NumThreads = 2

// Mitigation selects a §VIII countermeasure against micro-op cache
// leakage.
type Mitigation int

const (
	// MitigationNone leaves the micro-op cache unprotected (baseline).
	MitigationNone Mitigation = iota
	// MitigationFlushOnPrivilegeSwitch flushes the entire micro-op
	// cache at every user↔kernel crossing (the iTLB-flush approach the
	// paper notes SGX already takes at enclave boundaries).
	MitigationFlushOnPrivilegeSwitch
	// MitigationPrivilegePartition statically partitions the cache
	// between user and kernel domains.
	MitigationPrivilegePartition
)

// String implements fmt.Stringer.
func (m Mitigation) String() string {
	switch m {
	case MitigationNone:
		return "none"
	case MitigationFlushOnPrivilegeSwitch:
		return "flush-on-switch"
	case MitigationPrivilegePartition:
		return "privilege-partition"
	default:
		return fmt.Sprintf("mitigation(%d)", int(m))
	}
}

// Config assembles a core configuration.
type Config struct {
	UopCache  uopcache.Config
	Hierarchy mem.HierarchyConfig
	Frontend  frontend.Config
	Backend   backend.Config
	BPU       bpu.Config
	// MemSize is the guest data memory size in bytes.
	MemSize int
	// KernelEntry is the SYSCALL target; guest images place kernel code
	// there.
	KernelEntry uint64
	// StackTop seeds each thread's R15. Thread 1 gets StackTop -
	// StackSpacing.
	StackTop     uint64
	StackSpacing uint64
	// Mitigation enables a §VIII countermeasure.
	Mitigation Mitigation
	// InvisibleSpeculation enables the §VII invisible-speculation
	// defense model: speculative loads defer their cache fills to
	// retirement.
	InvisibleSpeculation bool
	// DisableCycleSkip turns off the event-driven fast path that
	// advances the clock in one step over cycles in which every unit is
	// provably idle (stall countdowns, in-flight memory latency, drain
	// tails). The fast path is semantically invisible — cycle counts,
	// counters, and all measured timings are bit-identical either way
	// (TestSkipCyclesEquivalence) — so it defaults to on; disabling it
	// exists for equivalence testing and baseline benchmarks.
	DisableCycleSkip bool
}

// FromProfile assembles a core configuration for one registered
// front-end profile: the profile owns the DSB geometry and decode
// path, the core supplies everything frontend-agnostic (memory
// hierarchy, backend, BPU, guest memory layout).
func FromProfile(p profile.Profile) Config {
	return Config{
		UopCache:     p.UopCache,
		Frontend:     p.Frontend(),
		Hierarchy:    mem.DefaultHierarchy(),
		Backend:      backend.DefaultConfig(),
		BPU:          bpu.DefaultConfig(),
		MemSize:      1 << 22,
		KernelEntry:  0x40_0000,
		StackTop:     1 << 22,
		StackSpacing: 1 << 16,
	}
}

// Intel returns the default Skylake/Coffee Lake-like configuration the
// paper characterizes.
func Intel() Config { return FromProfile(profile.Skylake()) }

// AMD returns an AMD Zen-like configuration: competitively shared
// micro-op cache and 1:2 decoders.
func AMD() Config { return FromProfile(profile.Zen()) }

// IntelSunnyCove returns the Intel configuration with the 1.5×-larger
// Sunny Cove micro-op cache the paper mentions.
func IntelSunnyCove() Config { return FromProfile(profile.SunnyCove()) }

// AMDZen2 returns the AMD configuration with the 4K-µop Zen-2 op cache.
func AMDZen2() Config { return FromProfile(profile.Zen2()) }

// Memory is the guest data memory: a flat little-endian byte image.
// Out-of-image accesses read zero and drop writes (no faults are
// modelled; transient wild accesses are harmless).
type Memory struct {
	data []byte
	// dirty lists every 4 KiB page ever written, in first-write order;
	// isDirty is its membership index. Save/Restore copy only these
	// pages, keeping checkpoint cost proportional to the workload's
	// data footprint instead of the 4 MiB image.
	dirty   []int32
	isDirty []bool
}

// NewMemory allocates a guest memory image.
func NewMemory(size int) *Memory {
	return &Memory{data: make([]byte, size), isDirty: make([]bool, numPages(size))}
}

func numPages(size int) int {
	return (size + (1 << memPageShift) - 1) >> memPageShift
}

// Arena recycles the dominant allocation a core needs — the guest
// memory image, 4 MiB at the default configuration — across the
// sequence of CPUs one sweep worker builds. An arena must never be
// shared between goroutines: parsweep gives each pool worker its own
// via its per-worker setup hook, so a 150-point sweep on 8 workers
// touches 8 images instead of 150. The zero value is ready to use,
// and a nil *Arena degrades to plain allocation.
type Arena struct {
	m *Memory
	// cks is the arena's pool of reusable checkpoint buffers: a sweep
	// worker that snapshots one primed core per point checkpoints into
	// the same backing arrays every time (see CheckpointBuf).
	cks []*Checkpoint
}

// CheckpointBuf returns the arena's i-th reusable checkpoint buffer,
// growing the pool on demand. Checkpoint buffers keep their backing
// arrays across points, so repeated Checkpoint calls into the same
// buffer are O(state-size) copies with no steady-state allocation. A
// nil arena degrades to a fresh buffer per call.
func (a *Arena) CheckpointBuf(i int) *Checkpoint {
	if a == nil {
		return &Checkpoint{}
	}
	for len(a.cks) <= i {
		a.cks = append(a.cks, &Checkpoint{})
	}
	return a.cks[i]
}

// memory returns a zeroed guest image of the requested size, reusing
// the arena's image when the size matches. Reuse leans on the dirty
// tracking: only pages the previous core wrote are re-zeroed, so
// recycling a 4 MiB image costs a few page clears, not a 4 MiB sweep.
func (a *Arena) memory(size int) *Memory {
	if a == nil {
		return NewMemory(size)
	}
	if a.m == nil || len(a.m.data) != size {
		a.m = NewMemory(size)
		return a.m
	}
	m := a.m
	for _, p := range m.dirty {
		buf := m.pageSlice(p)
		for i := range buf {
			buf[i] = 0
		}
		m.isDirty[p] = false
	}
	m.dirty = m.dirty[:0]
	return m
}

// memPageShift sizes the dirty-tracking granule (4 KiB pages). The
// guest image is MemSize bytes (4 MiB by default) but a workload
// writes a handful of pages; tracking which ones lets Save/Restore
// copy kilobytes instead of the whole image.
const memPageShift = 12

// markDirty records that [addr, addr+n) was written. Out-of-range
// bytes are ignored, mirroring Write's clamping.
func (m *Memory) markDirty(addr uint64, n int) {
	if n <= 0 || addr >= uint64(len(m.data)) {
		return
	}
	end := addr + uint64(n) - 1
	if end >= uint64(len(m.data)) {
		end = uint64(len(m.data)) - 1
	}
	for p := int32(addr >> memPageShift); p <= int32(end>>memPageShift); p++ {
		if !m.isDirty[p] {
			m.isDirty[p] = true
			m.dirty = append(m.dirty, p)
		}
	}
}

// Read implements backend.Memory.
func (m *Memory) Read(addr uint64, size int) int64 {
	var v uint64
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		if a < uint64(len(m.data)) {
			v |= uint64(m.data[a]) << (8 * i)
		}
	}
	if size == 1 {
		return int64(uint8(v))
	}
	return int64(v)
}

// Write implements backend.Memory.
func (m *Memory) Write(addr uint64, size int, v int64) {
	m.markDirty(addr, size)
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		if a < uint64(len(m.data)) {
			m.data[a] = byte(v >> (8 * i))
		}
	}
}

// WriteBytes copies b into guest memory at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	m.markDirty(addr, len(b))
	copy(m.data[addr:], b)
}

// MemoryState is a sparse snapshot of the guest image: only
// ever-written pages are stored, so its cost scales with the
// workload's data footprint, not MemSize. Buffers are recycled across
// Save calls.
type MemoryState struct {
	size  int
	pages []int32
	data  []byte
}

// Save copies every dirty page into s, reusing s's buffers.
func (m *Memory) Save(s *MemoryState) {
	const page = 1 << memPageShift
	s.size = len(m.data)
	s.pages = append(s.pages[:0], m.dirty...)
	n := len(m.dirty) * page
	if cap(s.data) < n {
		s.data = make([]byte, n)
	}
	s.data = s.data[:n]
	for i, p := range m.dirty {
		copy(s.data[i*page:(i+1)*page], m.pageSlice(p))
	}
}

// Restore overwrites the guest image from s: pages dirtied since the
// snapshot but absent from it are zeroed, snapshot pages are copied
// back, and the dirty set becomes the snapshot's. O(dirty pages), not
// O(MemSize).
func (m *Memory) Restore(s *MemoryState) {
	const page = 1 << memPageShift
	for _, p := range m.dirty {
		buf := m.pageSlice(p)
		for i := range buf {
			buf[i] = 0
		}
		m.isDirty[p] = false
	}
	m.dirty = m.dirty[:0]
	for i, p := range s.pages {
		copy(m.pageSlice(p), s.data[i*page:(i+1)*page])
		m.isDirty[p] = true
		m.dirty = append(m.dirty, p)
	}
}

// pageSlice returns page p's bytes, clamped at the image end.
func (m *Memory) pageSlice(p int32) []byte {
	lo := int(p) << memPageShift
	hi := lo + 1<<memPageShift
	if hi > len(m.data) {
		hi = len(m.data)
	}
	return m.data[lo:hi]
}

// ReadBytes copies n bytes of guest memory at addr.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	copy(out, m.data[addr:])
	return out
}

// thread is one SMT context.
type thread struct {
	fe  *frontend.FrontEnd
	be  *backend.Backend
	bp  *bpu.BPU
	ctr *perfctr.Counters
}

// CPU is the simulated core.
type CPU struct {
	cfg     Config
	uc      *uopcache.Cache
	hier    *mem.Hierarchy
	mem     *Memory
	threads [NumThreads]*thread
	cycle   uint64
}

// New builds a core.
func New(cfg Config) *CPU { return NewWith(cfg, nil) }

// NewWith builds a core like New, drawing the guest memory image from
// arena (which may be nil). The returned CPU owns the arena's buffer
// until the next NewWith call on the same arena, so at most one CPU
// per arena may be live at a time — exactly the shape of a sweep
// worker that builds, measures, and discards one core per point.
func NewWith(cfg Config, arena *Arena) *CPU {
	if cfg.Mitigation == MitigationPrivilegePartition {
		cfg.UopCache.PrivilegePartition = true
	}
	c := &CPU{
		cfg:  cfg,
		uc:   uopcache.New(cfg.UopCache),
		hier: mem.NewHierarchy(cfg.Hierarchy),
		mem:  arena.memory(cfg.MemSize),
	}
	// Inclusion hooks: an L1I eviction invalidates the matching
	// micro-op cache lines; an iTLB flush empties it.
	lineSize := uint64(cfg.Hierarchy.L1I.LineSize)
	c.hier.L1I().SetEvictHook(func(lineAddr uint64) {
		c.uc.InvalidateCodeLine(lineAddr, lineSize)
	})
	c.hier.SetITLBFlushHook(func() { c.uc.FlushAll() })

	for t := 0; t < NumThreads; t++ {
		ctr := &perfctr.Counters{}
		bp := bpu.New(cfg.BPU)
		fcfg := cfg.Frontend
		fcfg.KernelEntry = cfg.KernelEntry
		fe := frontend.New(fcfg, t, c.uc, c.hier, bp, ctr)
		bcfg := cfg.Backend
		bcfg.InvisibleSpeculation = cfg.InvisibleSpeculation
		bcfg.KernelEntry = cfg.KernelEntry
		bcfg.StackTop = cfg.StackTop - uint64(t)*cfg.StackSpacing
		be := backend.New(bcfg, fe, bp, c.hier, c.mem, ctr)
		switch cfg.Mitigation {
		case MitigationFlushOnPrivilegeSwitch:
			be.OnPrivilegeSwitch = func(bool) { c.uc.FlushAll() }
		case MitigationPrivilegePartition:
			tid := t
			be.OnPrivilegeSwitch = func(kernel bool) {
				d := 0
				if kernel {
					d = 1
				}
				c.uc.SetDomain(tid, d)
			}
		}
		c.threads[t] = &thread{fe: fe, be: be, bp: bp, ctr: ctr}
	}
	return c
}

// Config returns the core configuration.
func (c *CPU) Config() Config { return c.cfg }

// UopCache exposes the micro-op cache for inspection and experiments.
func (c *CPU) UopCache() *uopcache.Cache { return c.uc }

// Hierarchy exposes the cache hierarchy.
func (c *CPU) Hierarchy() *mem.Hierarchy { return c.hier }

// Mem exposes guest data memory.
func (c *CPU) Mem() *Memory { return c.mem }

// BPU returns thread t's branch predictors.
func (c *CPU) BPU(t int) *bpu.BPU { return c.threads[t].bp }

// Counters returns thread t's performance counters.
func (c *CPU) Counters(t int) *perfctr.Counters { return c.threads[t].ctr }

// Backend returns thread t's backend (register access for test setup).
func (c *CPU) Backend(t int) *backend.Backend { return c.threads[t].be }

// Cycle returns the global cycle count.
func (c *CPU) Cycle() uint64 { return c.cycle }

// LoadProgram installs the code image on both threads' fetch engines.
func (c *CPU) LoadProgram(p *asm.Program) {
	for _, t := range c.threads {
		t.fe.SetProgram(p)
	}
}

// SetReg sets an architectural register of thread t before a run.
func (c *CPU) SetReg(t int, r isa.Reg, v int64) { c.threads[t].be.SetReg(r, v) }

// Reg reads an architectural register of thread t.
func (c *CPU) Reg(t int, r isa.Reg) int64 { return c.threads[t].be.Reg(r) }

// RunResult summarizes one run.
type RunResult struct {
	Cycles   uint64
	Retired  uint64
	Counters perfctr.Snapshot
	// TimedOut reports the run hit maxCycles before HALT.
	TimedOut bool
}

// Run executes thread t from entry until it retires HALT or maxCycles
// elapse. The micro-op cache, caches, predictors, registers, and guest
// memory persist across runs — the attacks depend on that persistence.
// In single-thread runs the micro-op cache operates unpartitioned.
func (c *CPU) Run(t int, entry uint64, maxCycles uint64) RunResult {
	c.uc.SetSMTMode(false)
	th := c.threads[t]
	before := th.ctr.Snapshot()
	beforeRetired := th.be.Retired()
	th.be.Reset(entry)
	start := c.cycle
	skip := !c.cfg.DisableCycleSkip
	for !th.be.Halted() && c.cycle-start < maxCycles {
		c.cycle++
		th.ctr.Inc(perfctr.Cycles)
		th.fe.Tick()
		th.be.Tick(c.cycle)
		if !skip || th.be.Halted() {
			continue
		}
		// Event-driven fast path: when both units report the next k
		// cycles are provably dead (stall countdowns, waits on known
		// completion times, or idling that only the other unit can end),
		// advance the clock over them in one step. Each unit's bound
		// carries the proof that its skipped Ticks would have been
		// no-ops beyond deterministic counter effects, which ApplySkip
		// replays — so cycle counts and every counter are bit-identical
		// to the ticked execution. Single-thread runs only: SMT decoder
		// arbitration keys off absolute cycle parity (miteTurn), which a
		// jump would break.
		k := th.fe.SkipBound()
		if b := th.be.SkipBound(c.cycle); b < k {
			k = b
		}
		if budget := maxCycles - (c.cycle - start); k > budget {
			// Idle past the run budget (possibly forever — a stuck
			// thread): fast-forward straight to the timeout.
			k = budget
		}
		if k == 0 {
			continue
		}
		c.cycle += k
		th.ctr.Add(perfctr.Cycles, k)
		th.ctr.Add(perfctr.SkippedCycles, k)
		th.fe.ApplySkip(k)
	}
	return RunResult{
		Cycles:   c.cycle - start,
		Retired:  th.be.Retired() - beforeRetired,
		Counters: th.ctr.Snapshot().Delta(before),
		TimedOut: !th.be.Halted(),
	}
}

// RunSMT executes both threads simultaneously from their entries until
// each retires HALT (a finished thread idles while the other runs) or
// maxCycles elapse. Under Intel's policy the micro-op cache is
// statically partitioned for the duration; under AMD's it is
// competitively shared. The shared decoders are modelled by
// alternating MITE access between threads cycle by cycle.
func (c *CPU) RunSMT(entryA, entryB uint64, maxCycles uint64) [NumThreads]RunResult {
	return c.runSMT(entryA, entryB, maxCycles, false)
}

// RunSMTPrimary is RunSMT, but the run ends as soon as thread 0 retires
// HALT — thread 1 acts as a background workload (the Fig 6/7 co-runner
// setups, where the sibling spins on PAUSE or pointer chasing for the
// duration of the measured thread).
func (c *CPU) RunSMTPrimary(entryA, entryB uint64, maxCycles uint64) [NumThreads]RunResult {
	return c.runSMT(entryA, entryB, maxCycles, true)
}

func (c *CPU) runSMT(entryA, entryB uint64, maxCycles uint64, stopOnPrimary bool) [NumThreads]RunResult {
	c.uc.SetSMTMode(true)
	var before [NumThreads]perfctr.Snapshot
	var beforeRet [NumThreads]uint64
	entries := [NumThreads]uint64{entryA, entryB}
	for t, th := range c.threads {
		before[t] = th.ctr.Snapshot()
		beforeRet[t] = th.be.Retired()
		th.be.Reset(entries[t])
	}
	start := c.cycle
	var startCycle, endCycle [NumThreads]uint64
	for t := range startCycle {
		startCycle[t] = c.cycle
	}
	for c.cycle-start < maxCycles {
		if c.threads[0].be.Halted() && (stopOnPrimary || c.threads[1].be.Halted()) {
			break
		}
		c.cycle++
		for t, th := range c.threads {
			if th.be.Halted() {
				continue
			}
			th.ctr.Inc(perfctr.Cycles)
			// Decoders are shared between SMT threads: only one thread
			// may occupy the legacy decode pipeline per cycle.
			if c.miteTurn(t) {
				th.fe.Tick()
			} else if !c.inMITE(t) {
				th.fe.Tick()
			}
			th.be.Tick(c.cycle)
			if th.be.Halted() {
				endCycle[t] = c.cycle
			}
		}
	}
	var out [NumThreads]RunResult
	for t, th := range c.threads {
		end := endCycle[t]
		if end == 0 {
			end = c.cycle
		}
		out[t] = RunResult{
			Cycles:   end - startCycle[t],
			Retired:  th.be.Retired() - beforeRet[t],
			Counters: th.ctr.Snapshot().Delta(before[t]),
			TimedOut: !th.be.Halted(),
		}
	}
	c.uc.SetSMTMode(false)
	return out
}

// miteTurn reports whether thread t owns the shared decoders this
// cycle.
func (c *CPU) miteTurn(t int) bool { return int(c.cycle)&1 == t }

// inMITE reports whether thread t's fetch engine is currently decoding
// through the legacy pipeline.
func (c *CPU) inMITE(t int) bool { return c.threads[t].fe.InMITE() }

// FlushUopCache empties the micro-op cache (mitigation experiments).
func (c *CPU) FlushUopCache() { c.uc.FlushAll() }

// String summarizes the core configuration.
func (c *CPU) String() string {
	uc := c.cfg.UopCache
	return fmt.Sprintf("cpu{uopcache %d sets × %d ways × %d µops (%s)}",
		uc.Sets, uc.Ways, uc.SlotsPerLine, uc.SMT)
}
