package cpu

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

const testMaxCycles = 2_000_000

func runProg(t *testing.T, p *asm.Program) (*CPU, RunResult) {
	t.Helper()
	c := New(Intel())
	c.LoadProgram(p)
	res := c.Run(0, p.Entry, testMaxCycles)
	if res.TimedOut {
		t.Fatalf("program timed out after %d cycles", res.Cycles)
	}
	return c, res
}

func TestArithmetic(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 5)
	b.Movi(isa.R2, 7)
	b.Add(isa.R1, isa.R2)
	b.Movi64(isa.R3, 1<<40)
	b.Add(isa.R3, isa.R1)
	b.Subi(isa.R3, 2)
	b.Xor(isa.R4, isa.R4)
	b.Ori(isa.R4, 0xff)
	b.Andi(isa.R4, 0x0f)
	b.Shli(isa.R4, 4)
	b.Halt()
	c, _ := runProg(t, b.MustBuild())
	if got := c.Reg(0, isa.R1); got != 12 {
		t.Errorf("R1 = %d, want 12", got)
	}
	if got := c.Reg(0, isa.R3); got != (1<<40)+10 {
		t.Errorf("R3 = %d, want %d", got, (1<<40)+10)
	}
	if got := c.Reg(0, isa.R4); got != 0xf0 {
		t.Errorf("R4 = %#x, want 0xf0", got)
	}
}

func TestCountedLoop(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 0)  // sum
	b.Movi(isa.R2, 10) // counter
	b.Label("loop")
	b.Add(isa.R1, isa.R2)
	b.Subi(isa.R2, 1)
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "loop")
	b.Halt()
	c, res := runProg(t, b.MustBuild())
	if got := c.Reg(0, isa.R1); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if res.Retired == 0 {
		t.Error("no instructions retired")
	}
}

func TestConditionCodes(t *testing.T) {
	cases := []struct {
		name string
		a, b int64
		cond isa.Cond
		want bool // branch taken?
	}{
		{"eq-taken", 4, 4, isa.EQ, true},
		{"eq-not", 4, 5, isa.EQ, false},
		{"ne-taken", 4, 5, isa.NE, true},
		{"lt-taken", -3, 2, isa.LT, true},
		{"lt-not", 3, 2, isa.LT, false},
		{"ge-taken", 3, 2, isa.GE, true},
		{"gt-taken", 3, 2, isa.GT, true},
		{"gt-not", 2, 2, isa.GT, false},
		{"le-taken", 2, 2, isa.LE, true},
		{"b-taken", 1, 2, isa.B, true},
		{"b-not", 2, 1, isa.B, false},
		{"ae-taken", 2, 1, isa.AE, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := asm.New(0x1000)
			b.Movi(isa.R1, tc.a)
			b.Movi(isa.R2, tc.b)
			b.Movi(isa.R3, 0)
			b.Cmp(isa.R1, isa.R2)
			b.Jcc(tc.cond, "taken")
			b.Movi(isa.R3, 1)
			b.Jmp("done")
			b.Label("taken")
			b.Movi(isa.R3, 2)
			b.Label("done")
			b.Halt()
			c, _ := runProg(t, b.MustBuild())
			want := int64(1)
			if tc.want {
				want = 2
			}
			if got := c.Reg(0, isa.R3); got != want {
				t.Errorf("R3 = %d, want %d", got, want)
			}
		})
	}
}

func TestMemoryLoadStore(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 0x2000) // base
	b.Movi(isa.R2, 0x1234567890)
	b.Store(isa.R1, 8, isa.R2)
	b.Load(isa.R3, isa.R1, 8)
	b.Movi(isa.R4, 0xAB)
	b.Storeb(isa.R1, 0, isa.R4)
	b.Loadb(isa.R5, isa.R1, 0)
	b.Halt()
	c, _ := runProg(t, b.MustBuild())
	if got := c.Reg(0, isa.R3); got != 0x1234567890 {
		t.Errorf("R3 = %#x, want 0x1234567890", got)
	}
	if got := c.Reg(0, isa.R5); got != 0xAB {
		t.Errorf("R5 = %#x, want 0xAB", got)
	}
	if got := c.Mem().Read(0x2008, 8); got != 0x1234567890 {
		t.Errorf("mem[0x2008] = %#x", got)
	}
}

func TestCallRet(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 1)
	b.Call("fn")
	b.Addi(isa.R1, 100) // runs after return
	b.Halt()
	b.Align(64)
	b.Label("fn")
	b.Addi(isa.R1, 10)
	b.Ret()
	c, _ := runProg(t, b.MustBuild())
	if got := c.Reg(0, isa.R1); got != 111 {
		t.Errorf("R1 = %d, want 111", got)
	}
}

func TestNestedCalls(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 0)
	b.Call("outer")
	b.Addi(isa.R1, 1000)
	b.Halt()
	b.Align(64)
	b.Label("outer")
	b.Addi(isa.R1, 1)
	b.Call("inner")
	b.Addi(isa.R1, 10)
	b.Ret()
	b.Align(64)
	b.Label("inner")
	b.Addi(isa.R1, 100)
	b.Ret()
	c, _ := runProg(t, b.MustBuild())
	if got := c.Reg(0, isa.R1); got != 1111 {
		t.Errorf("R1 = %d, want 1111", got)
	}
}

func TestIndirectJump(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 0) // will hold target
	b.Movi(isa.R2, 0)
	// Resolve target of label "dest" after build: use two-pass trick —
	// place dest at a fixed aligned address.
	b.Jmp("start")
	b.Org(0x1100)
	b.Label("dest")
	b.Movi(isa.R2, 42)
	b.Halt()
	b.Org(0x1200)
	b.Label("start")
	b.Movi(isa.R1, 0x1100)
	b.Jmpi(isa.R1)
	c, _ := runProg(t, b.MustBuild())
	if got := c.Reg(0, isa.R2); got != 42 {
		t.Errorf("R2 = %d, want 42", got)
	}
}

func TestIndirectCall(t *testing.T) {
	b := asm.New(0x1000)
	b.Jmp("start")
	b.Org(0x1100)
	b.Label("fn")
	b.Movi(isa.R2, 7)
	b.Ret()
	b.Org(0x1200)
	b.Label("start")
	b.Movi(isa.R1, 0x1100)
	b.Calli(isa.R1)
	b.Addi(isa.R2, 1)
	b.Halt()
	c, _ := runProg(t, b.MustBuild())
	if got := c.Reg(0, isa.R2); got != 8 {
		t.Errorf("R2 = %d, want 8", got)
	}
}

func TestSyscallSysret(t *testing.T) {
	cfg := Intel()
	user := asm.New(0x1000)
	user.Movi(isa.R1, 1)
	user.Syscall()
	user.Addi(isa.R1, 100)
	user.Halt()
	kern := asm.New(cfg.KernelEntry)
	kern.Label("kentry")
	kern.Addi(isa.R1, 10)
	kern.Sysret()
	prog, err := asm.Merge(user.MustBuild(), kern.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	c := New(cfg)
	c.LoadProgram(prog)
	res := c.Run(0, prog.Entry, testMaxCycles)
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if got := c.Reg(0, isa.R1); got != 111 {
		t.Errorf("R1 = %d, want 111", got)
	}
	if c.Backend(0).KernelMode() {
		t.Error("still in kernel mode after sysret")
	}
}

func TestRdtscMonotonic(t *testing.T) {
	b := asm.New(0x1000)
	b.Rdtsc(isa.R1)
	for i := 0; i < 50; i++ {
		b.Nop(1)
	}
	b.Rdtsc(isa.R2)
	b.Halt()
	c, _ := runProg(t, b.MustBuild())
	t1, t2 := c.Reg(0, isa.R1), c.Reg(0, isa.R2)
	if t2 <= t1 {
		t.Errorf("rdtsc not monotonic: %d then %d", t1, t2)
	}
}

func TestUopCacheWarmupSpeedsLoop(t *testing.T) {
	// A hot loop should run faster on the second pass, when its
	// micro-ops stream from the micro-op cache.
	b := asm.New(0x1000)
	b.Movi(isa.R2, 200)
	b.Label("loop")
	b.Align(32)
	for i := 0; i < 8; i++ {
		b.NopRegion(32, 3)
	}
	b.Subi(isa.R2, 1)
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "loop")
	b.Halt()
	p := b.MustBuild()

	c := New(Intel())
	c.LoadProgram(p)
	cold := c.Run(0, p.Entry, testMaxCycles)
	warm := c.Run(0, p.Entry, testMaxCycles)
	if cold.TimedOut || warm.TimedOut {
		t.Fatal("timed out")
	}
	if warm.Cycles >= cold.Cycles {
		t.Errorf("warm run (%d cycles) not faster than cold (%d)", warm.Cycles, cold.Cycles)
	}
	if warm.Counters.Get(perfctr.DSBUops) == 0 {
		t.Error("warm run delivered no µops from the micro-op cache")
	}
}

func TestPerfCountersAccumulate(t *testing.T) {
	b := asm.New(0x1000)
	for i := 0; i < 20; i++ {
		b.Nop(2)
	}
	b.Halt()
	_, res := runProg(t, b.MustBuild())
	if res.Counters.Get(perfctr.Cycles) == 0 {
		t.Error("cycles counter is zero")
	}
	if got := res.Counters.Get(perfctr.Instructions); got != 21 {
		t.Errorf("instructions = %d, want 21", got)
	}
}

func TestGuestMemoryBounds(t *testing.T) {
	m := NewMemory(64)
	m.Write(1<<40, 8, 0x55) // out of range: dropped
	if got := m.Read(1<<40, 8); got != 0 {
		t.Errorf("OOB read = %d, want 0", got)
	}
	m.Write(60, 8, -1) // straddles the end: partial write allowed
	if got := m.Read(60, 4); got == 0 {
		t.Error("partial in-range write lost")
	}
}

func TestMacroFusionRetiresBothMacroOps(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 3)
	b.Cmpi(isa.R1, 3) // fuses with the following JCC
	b.Jcc(isa.EQ, "out")
	b.Movi(isa.R1, 99)
	b.Label("out")
	b.Halt()
	c, res := runProg(t, b.MustBuild())
	if got := c.Reg(0, isa.R1); got != 3 {
		t.Errorf("R1 = %d, want 3", got)
	}
	// movi + cmp + jcc + halt = 4 macro-ops.
	if got := res.Counters.Get(perfctr.Instructions); got != 4 {
		t.Errorf("instructions = %d, want 4", got)
	}
}

func TestClflushEvictsData(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 0x3000)
	b.Load(isa.R2, isa.R1, 0) // warm the line
	b.Clflush(isa.R1, 0)
	b.Halt()
	c, _ := runProg(t, b.MustBuild())
	if lvl := c.Hierarchy().DataCached(0x3000); lvl != 0 {
		t.Errorf("line still cached at level %d after clflush", lvl)
	}
}
