package cpu_test

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

// Example assembles a small loop, runs it twice, and shows the micro-op
// cache turning legacy-decode traffic into DSB streaming.
func Example() {
	b := asm.New(0x10000)
	b.Label("entry")
	b.Label("loop")
	b.NopRegion(32, 3)
	b.Subi(isa.R14, 1)
	b.Cmpi(isa.R14, 0)
	b.Jcc(isa.NE, "loop")
	b.Halt()
	prog := b.MustBuild()

	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)

	c.SetReg(0, isa.R14, 50)
	cold := c.Run(0, prog.Entry, 1_000_000)
	c.SetReg(0, isa.R14, 50)
	warm := c.Run(0, prog.Entry, 1_000_000)

	fmt.Println("cold MITE µops  >", 0, ":", cold.Counters.Get(perfctr.MITEUops) > 0)
	fmt.Println("warm MITE µops ==", 0, ":", warm.Counters.Get(perfctr.MITEUops) == 0)
	fmt.Println("warm faster:", warm.Cycles < cold.Cycles)
	// Output:
	// cold MITE µops  > 0 : true
	// warm MITE µops == 0 : true
	// warm faster: true
}
