package cpu

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// TestSteadyStateRunAllocs pins the steady-state cycle loop to zero
// heap allocations. After warmup the µop cache holds the loop's trace,
// the predictors are trained, and every pooled buffer — the IDQ, the
// DSB stream buffer, the reusable fetch group, the ROB entry pool with
// its graveyard, and the dispatch pop buffer — has grown to capacity,
// so a whole Run (including the final mispredicted loop exit and its
// squash) must not touch the heap. Sweep throughput depends on this
// invariant; a regression here silently multiplies GC pressure across
// every parallel worker.
func TestSteadyStateRunAllocs(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 0)
	b.Movi(isa.R2, 64)
	b.Label("loop")
	b.Add(isa.R1, isa.R2)
	b.Subi(isa.R2, 1)
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "loop")
	b.Halt()
	p := b.MustBuild()

	c := New(Intel())
	c.LoadProgram(p)
	for i := 0; i < 5; i++ {
		if res := c.Run(0, p.Entry, testMaxCycles); res.TimedOut {
			t.Fatal("warmup run timed out")
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		c.Run(0, p.Entry, testMaxCycles)
	})
	if allocs != 0 {
		t.Errorf("steady-state Run allocates %.1f objects per run, want 0", allocs)
	}
}
