package cpu

import (
	"bytes"
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

// checkpointProg builds a program with enough microarchitectural
// texture to catch a missed checkpoint field: loads and stores (guest
// memory + data caches), a counted branch (predictor counters and
// history), RDTSC (the absolute cycle clock), and a working set that
// trains µop-cache hotness across runs.
func checkpointProg() *asm.Program {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 0x2000) // data base
	b.Movi(isa.R2, 16)     // counter
	b.Rdtsc(isa.R5)        // absolute-clock sensitivity
	b.Label("loop")
	b.Load(isa.R3, isa.R1, 0)
	b.Add(isa.R3, isa.R2)
	b.Store(isa.R1, 0, isa.R3)
	b.Addi(isa.R1, 8)
	b.Subi(isa.R2, 1)
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "loop")
	b.Rdtsc(isa.R6)
	b.Halt()
	return b.MustBuild()
}

// runsEqual compares two RunResults field by field, including every
// performance counter.
func runsEqual(a, b RunResult) bool {
	return a.Cycles == b.Cycles && a.Retired == b.Retired &&
		a.TimedOut == b.TimedOut && a.Counters == b.Counters
}

// TestCheckpointRoundTrip proves checkpoint → restore → run is
// bit-identical to the straight-line run it forked from: cycle counts,
// every performance counter, registers (including RDTSC-captured
// absolute cycles), the guest memory image, and the µop-cache and
// hierarchy statistics.
func TestCheckpointRoundTrip(t *testing.T) {
	p := checkpointProg()
	const extraRuns = 3

	// Reference: train, checkpoint, then continue straight-line.
	ref := New(Intel())
	ref.LoadProgram(p)
	if res := ref.Run(0, p.Entry, testMaxCycles); res.TimedOut {
		t.Fatal("training run timed out")
	}
	var ck Checkpoint
	ref.Checkpoint(&ck)
	var want [extraRuns]RunResult
	for i := range want {
		want[i] = ref.Run(0, p.Entry, testMaxCycles)
	}
	wantMem := ref.Mem().ReadBytes(0x2000, 16*8)
	wantR5, wantR6 := ref.Reg(0, isa.R5), ref.Reg(0, isa.R6)
	wantCycle := ref.Cycle()
	wantUC := ref.UopCache().Stats()
	wantHier := ref.Hierarchy().Stats()

	check := func(name string, c *CPU) {
		t.Helper()
		for i := range want {
			got := c.Run(0, p.Entry, testMaxCycles)
			if !runsEqual(got, want[i]) {
				t.Fatalf("%s: run %d diverged:\ngot  %+v\nwant %+v", name, i, got, want[i])
			}
		}
		if got := c.Mem().ReadBytes(0x2000, 16*8); !bytes.Equal(got, wantMem) {
			t.Errorf("%s: memory image diverged", name)
		}
		if got := c.Reg(0, isa.R5); got != wantR5 {
			t.Errorf("%s: R5 (rdtsc) = %d, want %d", name, got, wantR5)
		}
		if got := c.Reg(0, isa.R6); got != wantR6 {
			t.Errorf("%s: R6 (rdtsc) = %d, want %d", name, got, wantR6)
		}
		if got := c.Cycle(); got != wantCycle {
			t.Errorf("%s: cycle clock = %d, want %d", name, got, wantCycle)
		}
		if got := c.UopCache().Stats(); got != wantUC {
			t.Errorf("%s: µop-cache stats diverged:\ngot  %+v\nwant %+v", name, got, wantUC)
		}
		if got := c.Hierarchy().Stats(); got != wantHier {
			t.Errorf("%s: hierarchy stats diverged", name)
		}
	}

	// Fork into a fresh core.
	fresh := New(Intel())
	fresh.Restore(&ck)
	check("fresh core", fresh)

	// Rewind the dirty reference core itself.
	ref.Restore(&ck)
	check("rewound core", ref)

	// Reuse of a checkpoint buffer must not leak the old snapshot:
	// checkpoint the now-diverged fresh core into the same buffer and
	// confirm the new snapshot restores the new state.
	fresh.Run(0, p.Entry, testMaxCycles)
	fresh.Checkpoint(&ck)
	wantNext := fresh.Run(0, p.Entry, testMaxCycles)
	fresh.Restore(&ck)
	if got := fresh.Run(0, p.Entry, testMaxCycles); !runsEqual(got, wantNext) {
		t.Fatalf("reused checkpoint buffer: run diverged:\ngot  %+v\nwant %+v", got, wantNext)
	}
}

// TestCheckpointForkIsolation proves two restores from one checkpoint
// share nothing: one fork's memory writes, µop-cache flushes, and runs
// must not perturb the other fork or the checkpoint itself.
func TestCheckpointForkIsolation(t *testing.T) {
	p := checkpointProg()
	base := New(Intel())
	base.LoadProgram(p)
	base.Run(0, p.Entry, testMaxCycles)
	var ck Checkpoint
	base.Checkpoint(&ck)

	// The expected continuation, measured on the original core.
	want := base.Run(0, p.Entry, testMaxCycles)
	wantMem := base.Mem().ReadBytes(0x2000, 16*8)

	forkA := New(Intel())
	forkA.Restore(&ck)
	forkB := New(Intel())
	forkB.Restore(&ck)

	// Vandalize fork A: scribble over its data, flush its µop cache,
	// and run it twice.
	forkA.Mem().Write(0x2000, 8, 0x5a5a5a5a)
	forkA.FlushUopCache()
	forkA.Run(0, p.Entry, testMaxCycles)
	forkA.Run(0, p.Entry, testMaxCycles)

	// Fork B must still replay the pristine continuation.
	if got := forkB.Run(0, p.Entry, testMaxCycles); !runsEqual(got, want) {
		t.Fatalf("fork B perturbed by fork A:\ngot  %+v\nwant %+v", got, want)
	}
	if got := forkB.Mem().ReadBytes(0x2000, 16*8); !bytes.Equal(got, wantMem) {
		t.Error("fork B memory image perturbed by fork A")
	}

	// And the checkpoint itself must still be intact: a third restore
	// replays the same continuation again.
	forkC := New(Intel())
	forkC.Restore(&ck)
	if got := forkC.Run(0, p.Entry, testMaxCycles); !runsEqual(got, want) {
		t.Fatalf("checkpoint corrupted by forks:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestCheckpointRestoreAllocs pins Restore's O(touched-state) claim:
// rehydrating a warm core from a warm checkpoint buffer copies into
// existing structures and must not allocate.
func TestCheckpointRestoreAllocs(t *testing.T) {
	p := checkpointProg()
	c := New(Intel())
	c.LoadProgram(p)
	c.Run(0, p.Entry, testMaxCycles)
	var ck Checkpoint
	c.Checkpoint(&ck)
	// Warm both directions once so every buffer has its final size.
	c.Restore(&ck)
	c.Checkpoint(&ck)

	if allocs := testing.AllocsPerRun(20, func() { c.Restore(&ck) }); allocs != 0 {
		t.Errorf("warm Restore allocates %.1f objects, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { c.Checkpoint(&ck) }); allocs != 0 {
		t.Errorf("warm Checkpoint allocates %.1f objects, want 0", allocs)
	}
}

// TestRunSkipEquivalence is the package-local skip check (the corpus-
// and profile-wide gate lives in staticlint/difftest): with the fast
// path disabled the same program must produce identical cycles,
// retirement, and counters — except SkippedCycles, which audits the
// fast path and must be nonzero on a memory-stalling program when the
// path is on.
func TestRunSkipEquivalence(t *testing.T) {
	p := checkpointProg()

	run := func(disable bool) (RunResult, RunResult) {
		cfg := Intel()
		cfg.DisableCycleSkip = disable
		c := New(cfg)
		c.LoadProgram(p)
		return c.Run(0, p.Entry, testMaxCycles), c.Run(0, p.Entry, testMaxCycles)
	}
	coldOn, warmOn := run(false)
	coldOff, warmOff := run(true)

	diff := func(name string, on, off RunResult) {
		t.Helper()
		if on.Cycles != off.Cycles || on.Retired != off.Retired || on.TimedOut != off.TimedOut {
			t.Fatalf("%s: skip on/off diverged: on %+v off %+v", name, on, off)
		}
		for e := perfctr.Event(0); e < perfctr.NumEvents; e++ {
			if e == perfctr.SkippedCycles {
				continue
			}
			if on.Counters.Get(e) != off.Counters.Get(e) {
				t.Errorf("%s: counter %v: on %d off %d", name, e,
					on.Counters.Get(e), off.Counters.Get(e))
			}
		}
	}
	diff("cold", coldOn, coldOff)
	diff("warm", warmOn, warmOff)

	if coldOn.Counters.Get(perfctr.SkippedCycles) == 0 {
		t.Error("fast path skipped nothing on a cold memory-stalling run")
	}
	if got := coldOff.Counters.Get(perfctr.SkippedCycles); got != 0 {
		t.Errorf("disabled fast path reported %d skipped cycles", got)
	}
}
