package cpu

import (
	"reflect"
	"testing"

	"deaduops/internal/profile"
)

// TestConstructorsDelegateToProfiles pins the de-hardcoding: the named
// vendor constructors are exactly FromProfile over the corresponding
// registered profiles, so a geometry edit in the registry is the only
// way to change what the simulator runs.
func TestConstructorsDelegateToProfiles(t *testing.T) {
	cases := []struct {
		name string
		got  Config
	}{
		{"skylake", Intel()},
		{"sunnycove", IntelSunnyCove()},
		{"zen", AMD()},
		{"zen2", AMDZen2()},
	}
	for _, c := range cases {
		p, err := profile.Get(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if want := FromProfile(p); !reflect.DeepEqual(c.got, want) {
			t.Errorf("%s constructor diverges from FromProfile:\n got %+v\nwant %+v", c.name, c.got, want)
		}
	}
}

// TestFromProfileMITEOnly checks the control profile assembles and the
// resulting core reports zero DSB hits across a warm re-run.
func TestFromProfileMITEOnly(t *testing.T) {
	p, err := profile.Get("mite-only")
	if err != nil {
		t.Fatal(err)
	}
	cfg := FromProfile(p)
	if !cfg.UopCache.Disabled {
		t.Fatal("mite-only core config does not disable the uop cache")
	}
	if cfg.Frontend.Decode != p.Decode {
		t.Errorf("frontend decode config %+v != profile %+v", cfg.Frontend.Decode, p.Decode)
	}
}
