package cpu

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

func TestCpuidSerializes(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 1)
	b.Cpuid()
	b.Addi(isa.R1, 10)
	b.Halt()
	c := New(Intel())
	p := b.MustBuild()
	c.LoadProgram(p)
	res := c.Run(0, p.Entry, 100000)
	if res.TimedOut {
		t.Fatalf("timed out")
	}
	if got := c.Reg(0, isa.R1); got != 11 {
		t.Errorf("R1=%d", got)
	}
	// run again (uop-cache warm path)
	res = c.Run(0, p.Entry, 100000)
	if res.TimedOut {
		t.Fatalf("warm run timed out")
	}
}

func TestCpuidInCallee(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 1)
	b.Call("fn")
	b.Addi(isa.R1, 100)
	b.Halt()
	b.Org(0x1100)
	b.Label("fn")
	b.Cpuid()
	b.Addi(isa.R1, 10)
	b.Ret()
	c := New(Intel())
	p := b.MustBuild()
	c.LoadProgram(p)
	for i := 0; i < 3; i++ {
		res := c.Run(0, p.Entry, 100000)
		if res.TimedOut {
			t.Fatalf("iter %d timed out", i)
		}
		if got := c.Reg(0, isa.R1); got != 111 {
			t.Errorf("R1=%d", got)
		}
		c.SetReg(0, isa.R1, 1)
	}
}
