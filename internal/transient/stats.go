package transient

import (
	"deaduops/internal/cpu"
	"deaduops/internal/mem"
	"deaduops/internal/perfctr"
)

// Stats aggregates the Table II measurements across an attack: elapsed
// simulated time, LLC traffic, and micro-op cache miss penalty.
type Stats struct {
	Bits   int
	Bytes  int
	Cycles uint64

	LLCRefs        uint64
	LLCMisses      uint64
	UopMissPenalty uint64
	DSBUops        uint64
	MITEUops       uint64

	startCycle uint64
	startCtr   perfctr.Snapshot
	startHier  mem.HierarchyStats
}

func (s *Stats) begin(c *cpu.CPU) {
	s.startCycle = c.Cycle()
	s.startCtr = c.Counters(0).Snapshot()
	s.startHier = c.Hierarchy().Stats()
}

func (s *Stats) end(c *cpu.CPU) {
	s.Cycles = c.Cycle() - s.startCycle
	d := c.Counters(0).Snapshot().Delta(s.startCtr)
	h := c.Hierarchy().Stats()
	s.LLCRefs = h.LLCRefs - s.startHier.LLCRefs
	s.LLCMisses = h.LLCMisses - s.startHier.LLCMisses
	s.UopMissPenalty = d.Get(perfctr.DSBMissPenaltyCycles)
	s.DSBUops = d.Get(perfctr.DSBUops)
	s.MITEUops = d.Get(perfctr.MITEUops)
}

// Seconds converts the elapsed cycles to wall-clock at clockGHz.
func (s Stats) Seconds(clockGHz float64) float64 {
	return float64(s.Cycles) / (clockGHz * 1e9)
}
