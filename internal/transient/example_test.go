package transient_test

import (
	"fmt"

	"deaduops/internal/cpu"
	"deaduops/internal/transient"
	"deaduops/internal/victim"
)

// Example leaks a victim library's secret through the micro-op cache
// after transiently bypassing its bounds check (the paper's variant 1).
func Example() {
	c := cpu.New(cpu.Intel())
	v, err := transient.NewVariant1(c)
	if err != nil {
		fmt.Println(err)
		return
	}
	v.WriteSecret([]byte("k3y"))
	leaked, _, err := v.Leak(3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s\n", leaked)
	// Output:
	// k3y
}

// ExampleVariant2 leaks a secret bit through an LFENCE: the transmitter
// is fetched at its predicted target before it can ever be dispatched.
func ExampleVariant2() {
	c := cpu.New(cpu.Intel())
	v, err := transient.NewVariant2(c, victim.WithLFENCE)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := v.Calibrate(4); err != nil {
		fmt.Println(err)
		return
	}
	v.WriteSecret(1)
	bit, err := v.LeakBit()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("secret bit:", bit)
	// Output:
	// secret bit: true
}
