package transient

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/victim"
)

// Variant-2 layout bases.
const (
	v2GadgetCode = 0x30000
	v2EraserBase = 0x40000
	v2Fun1Base   = 0x80000 // transmitter target for secret = 1 (probed sets)
	v2Fun0Base   = 0xC0000 // transmitter target for secret = 0 (disjoint sets)
)

// Variant2 is the LFENCE-bypassing attack: the victim's transmitter is
// an indirect call through a secret-indexed function table, guarded by
// an authorization check and (optionally) a fence. Legitimate
// authorized executions encode the secret in the indirect branch
// predictor. The attacker then triggers a misspeculated call: fetch
// follows the predicted — secret-dependent — target and fills the
// micro-op cache before the LFENCE ever lets the call execute. Only a
// fetch-serializing CPUID closes the channel (Fig 10).
type Variant2 struct {
	c     *cpu.CPU
	lay   victim.Layout
	fence victim.Fence

	th          attack.Threshold
	attackEntry uint64
	trainEntry  uint64
	probeEntry  uint64
	resetEntry  uint64

	// AttackReps tunes the per-bit protocol (at most two misspeculated
	// calls fit before the direction predictor flips); TrainRounds is
	// the number of legitimate authorized calls encoding the secret.
	AttackReps  int
	TrainRounds int
}

// NewVariant2 assembles the victim (with the given fence), the two
// transmitter targets, and the attacker harness. It does NOT calibrate:
// use Calibrate (which fails for the CPUID fence — that is Fig 10's
// point) or SignalStrength.
func NewVariant2(c *cpu.CPU, fence victim.Fence) (*Variant2, error) {
	lay := victim.DefaultLayout()
	g := transientGeometry()
	fun1 := attack.FastTiger(v2Fun1Base, g, "v2fun1")
	fun0 := attack.Zebra(v2Fun0Base, g, "v2fun0")

	ab := asm.New(victimCode)
	victim.IndirectCallVictim(ab, lay, fence)

	ab.Org(v2GadgetCode)
	// Attack entry: flush the authorization token so the check's
	// compare+branch resolves late, then call the victim with an
	// unauthorized id.
	ab.Label("v2_attack")
	ab.Clflush(isa.R2, int64(lay.AuthAddr))
	ab.Call("victim2")
	ab.Halt()
	// Training entry: a legitimate authorized call (R1 holds the
	// token); the transmitter executes architecturally and trains the
	// indirect predictor with the secret-selected target.
	orgToSet(ab, 28)
	ab.Label("v2_train")
	ab.Call("victim2")
	ab.Halt()
	// Probe entry: call the secret=1 target once and time it.
	orgToSet(ab, 30)
	ab.Label("v2_probe")
	ab.Call(fun1.EntryLabel())
	ab.Halt()
	// Reset entry: an iTLB flush (as a munmap-style syscall would
	// cause) — by inclusion it empties the whole micro-op cache, so
	// the next transient window installs its footprint into invalid
	// ways with no eviction fight.
	orgToSet(ab, 31)
	ab.Label("v2_reset")
	ab.ItlbFlush()
	ab.Halt()

	// Transmitter targets: each traverses its chain once and returns.
	if err := fun1.Emit(ab, "fun1_ret"); err != nil {
		return nil, err
	}
	orgToSet(ab, 24)
	ab.Label("fun1_ret")
	ab.Ret()
	if err := fun0.Emit(ab, "fun0_ret"); err != nil {
		return nil, err
	}
	orgToSet(ab, 26)
	ab.Label("fun0_ret")
	ab.Ret()
	prog, err := ab.Build()
	if err != nil {
		return nil, err
	}

	c.LoadProgram(prog)

	v := &Variant2{
		c: c, lay: lay, fence: fence,
		attackEntry: prog.MustLabel("v2_attack"),
		trainEntry:  prog.MustLabel("v2_train"),
		probeEntry:  prog.MustLabel("v2_probe"),
		resetEntry:  prog.MustLabel("v2_reset"),
		AttackReps:  1,
		TrainRounds: 6,
	}
	// Authorization token and function table.
	c.Mem().Write(lay.AuthAddr, 8, victim.AuthToken)
	c.Mem().Write(lay.FunTable, 8, int64(prog.MustLabel(fun0.EntryLabel())))
	c.Mem().Write(lay.FunTable+8, 8, int64(prog.MustLabel(fun1.EntryLabel())))
	return v, nil
}

// WriteSecret plants the victim's one-bit secret (0 or 1).
func (v *Variant2) WriteSecret(bit int) {
	v.c.Mem().Write(v.lay.Secret2Addr, 1, int64(bit&1))
}

// train performs legitimate authorized victim calls, encoding the
// current secret in the indirect branch predictor and training the
// authorization check toward the authorized path. Training goes through
// the same code path as the attack (the classic in-place mistraining of
// Spectre-v1), so the gshare history context of the authorization
// branch matches between training and attack.
func (v *Variant2) train(rounds int) error {
	for i := 0; i < rounds; i++ {
		v.c.SetReg(0, isa.R1, victim.AuthToken)
		v.c.SetReg(0, isa.R2, 0)
		if res := v.c.Run(0, v.attackEntry, maxRun); res.TimedOut {
			return fmt.Errorf("transient: v2 training timed out")
		}
	}
	return nil
}

// probe times one traversal of the secret=1 target chain.
func (v *Variant2) probe() (uint64, error) {
	res := v.c.Run(0, v.probeEntry, maxRun)
	if res.TimedOut {
		return 0, fmt.Errorf("transient: v2 probe timed out")
	}
	return res.Cycles, nil
}

// LeakRaw runs the full per-bit protocol for the currently planted
// secret and returns the probe time. Training — the victim's own
// legitimate authorized activity — happens entirely before the reset,
// so nothing between reset and probe executes the transmitter
// architecturally: any fun1 footprint at probe time came from transient
// fetch alone.
func (v *Variant2) LeakRaw() (uint64, error) {
	if err := v.train(v.TrainRounds); err != nil {
		return 0, err
	}
	if res := v.c.Run(0, v.resetEntry, maxRun); res.TimedOut {
		return 0, fmt.Errorf("transient: v2 reset timed out")
	}
	for r := 0; r < v.AttackReps; r++ {
		v.c.SetReg(0, isa.R1, 0xBAD) // unauthorized id
		v.c.SetReg(0, isa.R2, 0)
		if res := v.c.Run(0, v.attackEntry, maxRun); res.TimedOut {
			return 0, fmt.Errorf("transient: v2 attack timed out")
		}
	}
	return v.probe()
}

// Calibrate measures both secret values and fixes the threshold. It
// returns an error when no signal separates them — the expected outcome
// under the CPUID fence.
func (v *Variant2) Calibrate(rounds int) error {
	one, zero, err := v.SignalStrength(rounds)
	if err != nil {
		return err
	}
	v.th = attack.Threshold{HitMean: one, MissMean: zero, Cut: (one + zero) / 2}
	if zero <= one*1.2 {
		return fmt.Errorf("transient: no variant-2 signal under %s fence (one %.0f, zero %.0f)",
			v.fence, one, zero)
	}
	return nil
}

// SignalStrength returns the mean probe time with the secret planted as
// one and as zero. A separated pair means the channel leaks under this
// fence. The first round of each is warm-up and discarded.
func (v *Variant2) SignalStrength(rounds int) (oneMean, zeroMean float64, err error) {
	var one, zero float64
	for i := 0; i < rounds+1; i++ {
		v.WriteSecret(1)
		o, err := v.LeakRaw()
		if err != nil {
			return 0, 0, err
		}
		v.WriteSecret(0)
		z, err := v.LeakRaw()
		if err != nil {
			return 0, 0, err
		}
		if i == 0 {
			continue // warm-up
		}
		one += float64(o)
		zero += float64(z)
	}
	return one / float64(rounds), zero / float64(rounds), nil
}

// LeakBit recovers the planted secret bit through the fence.
func (v *Variant2) LeakBit() (bool, error) {
	cycles, err := v.LeakRaw()
	if err != nil {
		return false, err
	}
	return v.th.Hit(cycles), nil // fast probe = fun1 present = secret 1
}
