package transient

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/victim"
)

// NaturalGadget mounts the §VI-A "naturally occurring gadget"
// experiment: the victim is a pci_vpd_find_tag-style routine whose own
// bit-mask-plus-dependent-branch structure transmits the transiently
// read tag bit — the attacker supplies no disclosure gadget at all,
// only a malicious offset and a micro-op cache probe of the victim's
// "large tag" handler.
type NaturalGadget struct {
	c   *cpu.CPU
	lay victim.Layout

	eraser      *attack.Routine
	th          attack.Threshold
	attackEntry uint64
	probeEntry  uint64
	touchEntry  uint64

	EraseIters int64
	AttackReps int
	XmitLoops  int64
}

// newNaturalGadgetForDebug builds without calibrating (tests).
func newNaturalGadgetForDebug(c *cpu.CPU) (*NaturalGadget, error) {
	return buildNaturalGadget(c)
}

// NewNaturalGadget assembles the victim with its two tag handlers —
// the large-tag handler is a chain through the probed sets, standing
// in for a distinctive hot kernel path — and calibrates the probe.
func NewNaturalGadget(c *cpu.CPU) (*NaturalGadget, error) {
	v, err := buildNaturalGadget(c)
	if err != nil {
		return nil, err
	}
	if err := v.calibrate(); err != nil {
		return nil, err
	}
	return v, nil
}

// ngGeometry avoids the sets the victim's own code regions occupy
// (the image around 0x20000 maps to sets 0-1).
func ngGeometry() attack.Geometry { return attack.Geometry{NSets: 2, NWays: 6, FirstSet: 3} }

func buildNaturalGadget(c *cpu.CPU) (*NaturalGadget, error) {
	lay := victim.DefaultLayout()
	g := ngGeometry()
	eraser, err := attack.Build(attack.Tiger(eraserBase, g, "ngerase"))
	if err != nil {
		return nil, err
	}
	large := attack.FastTiger(senderBase, g, "nglarge")
	small := attack.Zebra(zebraBase, g, "ngsmall")

	ab := asm.New(victimCode)
	victim.PCIVPDStyleGadget(ab, lay)
	victim.SecretUse(ab, lay)

	// Tag handlers: each traverses its chain R7 times and returns (the
	// loop bound keeps architectural training runs finite while letting
	// transient runs loop until the squash).
	ab.Org(gadgetCode - 0x1000)
	ab.Label("touch_entry")
	ab.Call("victim_use_secret")
	ab.Halt()
	ab.Org(gadgetCode)
	ab.Label("ng_attack")
	ab.Clflush(isa.R2, int64(lay.ArraySizeAddr))
	ab.Call("vpd_find_tag")
	ab.Halt()
	orgToSet(ab, 31)
	ab.Label("ng_probe")
	ab.Call("vpd_large")
	ab.Halt()

	orgToSet(ab, 28)
	ab.Label("vpd_large")
	ab.Jmp(large.EntryLabel())
	if err := large.Emit(ab, "large_tail"); err != nil {
		return nil, err
	}
	orgToSet(ab, 24)
	ab.Label("large_tail")
	ab.Subi(isa.R7, 1)
	ab.Cmpi(isa.R7, 0)
	ab.Jcc(isa.NE, large.EntryLabel())
	ab.Ret()

	orgToSet(ab, 30)
	ab.Label("vpd_small")
	ab.Jmp(small.EntryLabel())
	if err := small.Emit(ab, "small_tail"); err != nil {
		return nil, err
	}
	orgToSet(ab, 26)
	ab.Label("small_tail")
	ab.Subi(isa.R7, 1)
	ab.Cmpi(isa.R7, 0)
	ab.Jcc(isa.NE, small.EntryLabel())
	ab.Ret()

	prog, err := ab.Build()
	if err != nil {
		return nil, err
	}
	merged, err := asm.Merge(eraser.Prog, prog)
	if err != nil {
		return nil, err
	}
	c.LoadProgram(merged)

	v := &NaturalGadget{
		c: c, lay: lay, eraser: eraser,
		attackEntry: prog.MustLabel("ng_attack"),
		probeEntry:  prog.MustLabel("ng_probe"),
		touchEntry:  prog.MustLabel("touch_entry"),
		EraseIters:  30,
		AttackReps:  4,
		XmitLoops:   50,
	}
	c.Mem().Write(lay.ArraySizeAddr, 8, lay.ArrayLen)
	// Public buffer: bytes 0-6 carry small tags (0x00) for the
	// interleaved mistraining; bytes 7-13 carry large tags (0x80) for
	// the legitimate pre-warm calls that pull the large handler's code
	// into the instruction cache.
	for i := 7; i < 14; i++ {
		c.Mem().Write(lay.ArrayBase+uint64(i), 1, 0x80)
	}
	return v, nil
}

// WriteSecret plants the out-of-bounds "VPD data" the malicious offset
// reaches.
func (v *NaturalGadget) WriteSecret(secret []byte) {
	v.c.Mem().WriteBytes(v.lay.SecretBase, secret)
}

// Threshold exposes the calibrated probe threshold (HitMean = tag bit
// set, i.e. large-path fetched).
func (v *NaturalGadget) Threshold() attack.Threshold { return v.th }

// train performs in-bounds calls against small-tag bytes (0-6), so the
// interleaved mistraining always exercises the small handler: the
// large path stays out of the probed sets until a transient large tag
// steers fetch there.
func (v *NaturalGadget) train(rounds int) error {
	return v.trainAt(0, rounds)
}

// trainLarge performs in-bounds calls against large-tag bytes (7-13) —
// the victim's legitimate large-path activity, which keeps that
// handler's code warm in the instruction cache (so the transient fetch
// is not spent on DRAM instruction fills).
func (v *NaturalGadget) trainLarge(rounds int) error {
	return v.trainAt(7, rounds)
}

func (v *NaturalGadget) trainAt(base, rounds int) error {
	for i := 0; i < rounds; i++ {
		v.c.SetReg(0, isa.R1, int64(base+i%7))
		v.c.SetReg(0, isa.R2, 0)
		v.c.SetReg(0, isa.R7, 1)
		if res := v.c.Run(0, v.attackEntry, maxRun); res.TimedOut {
			return fmt.Errorf("transient: gadget training timed out")
		}
	}
	return nil
}

func (v *NaturalGadget) probe() (uint64, error) {
	v.c.SetReg(0, isa.R7, 1)
	res := v.c.Run(0, v.probeEntry, maxRun)
	if res.TimedOut {
		return 0, fmt.Errorf("transient: gadget probe timed out")
	}
	return res.Cycles, nil
}

// leakRaw runs the per-bit protocol against secret byte byteIndex's
// top bit (the gadget's 0x80 mask) and returns the probe time.
func (v *NaturalGadget) leakRaw(byteIndex int) (uint64, error) {
	// Legitimate large-path calls warm the handler's instruction lines
	// BEFORE the erase: the erase clears only the micro-op cache, so
	// the subsequent transient windows decode at L1I speed.
	if err := v.trainLarge(4); err != nil {
		return 0, err
	}
	if _, err := v.eraser.Run(v.c, 0, v.EraseIters); err != nil {
		return 0, err
	}
	v.c.SetReg(0, isa.R1, int64(byteIndex))
	if res := v.c.Run(0, v.touchEntry, maxRun); res.TimedOut {
		return 0, fmt.Errorf("transient: secret-use timed out")
	}
	idx := int64(v.lay.SecretBase-v.lay.ArrayBase) + int64(byteIndex)
	for r := 0; r < v.AttackReps; r++ {
		if err := v.train(2); err != nil {
			return 0, err
		}
		v.c.SetReg(0, isa.R1, idx)
		v.c.SetReg(0, isa.R2, 0)
		v.c.SetReg(0, isa.R7, v.XmitLoops)
		if res := v.c.Run(0, v.attackEntry, maxRun); res.TimedOut {
			return 0, fmt.Errorf("transient: gadget attack timed out")
		}
	}
	return v.probe()
}

func (v *NaturalGadget) calibrate() error {
	// Warm-up: the first windows pay compulsory instruction-cache
	// misses and would skew the threshold.
	for _, b := range []byte{0xFF, 0x00, 0xFF, 0x00} {
		v.WriteSecret([]byte{b})
		if _, err := v.leakRaw(0); err != nil {
			return err
		}
	}
	const rounds = 6
	var one, zero float64
	for i := 0; i < rounds; i++ {
		v.WriteSecret([]byte{0xFF})
		o, err := v.leakRaw(0)
		if err != nil {
			return err
		}
		one += float64(o)
		v.WriteSecret([]byte{0x00})
		z, err := v.leakRaw(0)
		if err != nil {
			return err
		}
		zero += float64(z)
	}
	v.th = attack.Threshold{
		HitMean:  one / rounds,
		MissMean: zero / rounds,
		Cut:      (one + zero) / (2 * rounds),
	}
	if v.th.MissMean <= v.th.HitMean {
		return fmt.Errorf("transient: no natural-gadget signal (one %.0f ≥ zero %.0f)",
			v.th.HitMean, v.th.MissMean)
	}
	return nil
}

// LeakTagBit recovers the 0x80 bit of the out-of-bounds byte at
// byteIndex past the public buffer.
func (v *NaturalGadget) LeakTagBit(byteIndex int) (bool, error) {
	cycles, err := v.leakRaw(byteIndex)
	if err != nil {
		return false, err
	}
	return v.th.Hit(cycles), nil
}
