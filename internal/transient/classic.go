package transient

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/victim"
)

// ClassicSpectre is the original Spectre-v1 attack transmitting over
// the LLC with flush+reload: the transiently read secret byte indexes a
// 256-line probe array; the attacker then times a load of each line and
// takes the fast one as the byte. It exists as the Table II baseline
// for the micro-op cache variant.
type ClassicSpectre struct {
	c   *cpu.CPU
	lay victim.Layout

	attackEntry uint64
	probeEntry  uint64

	// AttackReps is the number of (train, misspeculate) rounds per
	// byte before probing.
	AttackReps int
}

// classicLineStride spaces probe-array entries one cache line apart.
const classicLineStride = 64

// NewClassicSpectre assembles the victim and the flush+reload harness.
func NewClassicSpectre(c *cpu.CPU) (*ClassicSpectre, error) {
	lay := victim.DefaultLayout()

	ab := asm.New(victimCode)
	victim.BoundsCheckVictim(ab, lay)
	ab.Org(gadgetCode)
	// Attack gadget: R1 = index, R2 = 0. The transient path loads
	// probe_array[secret*64], leaving an LLC footprint.
	ab.Label("cl_attack")
	ab.Clflush(isa.R2, int64(lay.ArraySizeAddr))
	ab.Call("victim_function")
	ab.Cmpi(victim.RegRet, -1)
	ab.Jcc(isa.EQ, "cl_done")
	ab.Shli(victim.RegRet, 6)
	ab.Loadb(isa.R5, victim.RegRet, int64(lay.ProbeArray))
	ab.Label("cl_done")
	ab.Halt()
	// Reload probe: R1 = guess*64; time one load.
	orgToSet(ab, 28)
	ab.Label("cl_probe")
	ab.Loadb(isa.R5, isa.R1, int64(lay.ProbeArray))
	ab.Halt()
	prog, err := ab.Build()
	if err != nil {
		return nil, err
	}
	c.LoadProgram(prog)

	cl := &ClassicSpectre{
		c: c, lay: lay,
		attackEntry: prog.MustLabel("cl_attack"),
		probeEntry:  prog.MustLabel("cl_probe"),
		AttackReps:  2,
	}
	c.Mem().Write(lay.ArraySizeAddr, 8, lay.ArrayLen)
	return cl, nil
}

// WriteSecret plants the victim's secret.
func (cl *ClassicSpectre) WriteSecret(secret []byte) {
	cl.c.Mem().WriteBytes(cl.lay.SecretBase, secret)
}

// flushProbeArray evicts all 256 probe lines (the attacker's clflush
// loop; performed host-side for brevity, charging no victim cycles —
// the same simplification favours the baseline in the comparison).
func (cl *ClassicSpectre) flushProbeArray() {
	for g := 0; g < 256; g++ {
		cl.c.Hierarchy().Flush(cl.lay.ProbeArray + uint64(g*classicLineStride))
	}
}

func (cl *ClassicSpectre) train(rounds int) error {
	for i := 0; i < rounds; i++ {
		cl.c.SetReg(0, isa.R1, int64(i%7))
		cl.c.SetReg(0, isa.R2, 0)
		if res := cl.c.Run(0, cl.attackEntry, maxRun); res.TimedOut {
			return fmt.Errorf("transient: classic training timed out")
		}
	}
	return nil
}

// LeakByte recovers one secret byte via flush+reload over the LLC.
func (cl *ClassicSpectre) LeakByte(byteIndex int) (byte, error) {
	cl.flushProbeArray()
	idx := int64(cl.lay.SecretBase-cl.lay.ArrayBase) + int64(byteIndex)
	for r := 0; r < cl.AttackReps; r++ {
		if err := cl.train(2); err != nil {
			return 0, err
		}
		cl.c.SetReg(0, isa.R1, idx)
		cl.c.SetReg(0, isa.R2, 0)
		if res := cl.c.Run(0, cl.attackEntry, maxRun); res.TimedOut {
			return 0, fmt.Errorf("transient: classic attack timed out")
		}
	}
	// The training calls architecturally touched probe line 0 (the
	// public array holds zeros); drop it so it cannot shadow the
	// transient line. Guess 0 is thereby unreadable — the standard
	// Spectre-v1 concession of sacrificing the training value's line.
	cl.c.Hierarchy().Flush(cl.lay.ProbeArray)
	// Reload: the guess whose line loads fastest is the byte.
	best, bestCycles := 0, uint64(1<<62)
	for g := 0; g < 256; g++ {
		cl.c.SetReg(0, isa.R1, int64(g*classicLineStride))
		res := cl.c.Run(0, cl.probeEntry, maxRun)
		if res.TimedOut {
			return 0, fmt.Errorf("transient: classic probe timed out")
		}
		if res.Cycles < bestCycles {
			best, bestCycles = g, res.Cycles
		}
	}
	return byte(best), nil
}

// Leak recovers nBytes of the victim's secret byte-by-byte.
func (cl *ClassicSpectre) Leak(nBytes int) ([]byte, Stats, error) {
	out := make([]byte, nBytes)
	var st Stats
	st.begin(cl.c)
	for i := 0; i < nBytes; i++ {
		b, err := cl.LeakByte(i)
		if err != nil {
			return nil, st, err
		}
		out[i] = b
		st.Bits += 8
	}
	st.end(cl.c)
	return out, st, nil
}
