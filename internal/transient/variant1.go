// Package transient implements the §VI transient-execution attacks:
//
//   - Variant 1: a Spectre-v1-style bounds-check bypass whose disclosure
//     primitive is the micro-op cache — the transiently read secret
//     steers a (squashed) transmitter whose fetch footprint survives the
//     squash.
//   - Variant 2: an authorization-check bypass whose transmitter is a
//     secret-dependent indirect call. The secret is encoded in the
//     indirect branch predictor by legitimate runs; a transient fetch at
//     the predicted target leaks it even under LFENCE, before the call
//     is ever dispatched to execution.
//   - The classic Spectre-v1 baseline transmitting over the LLC with
//     flush+reload, for the Table II comparison.
package transient

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/victim"
)

// Code layout bases.
const (
	victimCode = 0x20000
	gadgetCode = 0x30000
	eraserBase = 0x40000
	senderBase = 0x80000
	zebraBase  = 0xC0000
	maxRun     = 5_000_000
)

// transientGeometry is small enough that one transient traversal fits
// inside the speculation window opened by one flushed load.
func transientGeometry() attack.Geometry { return attack.Geometry{NSets: 2, NWays: 6, FirstSet: 1} }

// Variant1 is the µop-cache Spectre attack. Its disclosure protocol is
// a presence test on the micro-op cache: the attacker erases the probed
// sets with a conflicting tiger, triggers the victim so the transient
// transmitter (re)fills them — or not, per the secret bit — and then
// times one traversal of the transmitter chain itself. A fast traversal
// means the transient fetch happened: the bit was one.
type Variant1 struct {
	c           *cpu.CPU
	lay         victim.Layout
	eraser      *attack.Routine
	th          attack.Threshold
	prog        *asm.Program
	attackEntry uint64
	probeEntry  uint64
	touchEntry  uint64

	// EraseIters/AttackReps/XmitLoops tune the per-bit protocol.
	EraseIters int64
	AttackReps int
	XmitLoops  int64
}

// NewVariant1 assembles the victim library, the attacker gadget, and
// the probing tigers, then calibrates the timing threshold.
func NewVariant1(c *cpu.CPU) (*Variant1, error) {
	v, err := newVariant1NoCal(c)
	if err != nil {
		return nil, err
	}
	if err := v.calibrate(); err != nil {
		return nil, err
	}
	return v, nil
}

func newVariant1NoCal(c *cpu.CPU) (*Variant1, error) {
	lay := victim.DefaultLayout()
	g := transientGeometry()
	eraser, err := attack.Build(attack.Tiger(eraserBase, g, "v1erase"))
	if err != nil {
		return nil, err
	}
	send := attack.FastTiger(senderBase, g, "v1send")
	zeb := attack.Zebra(zebraBase, g, "v1zebra")

	// Victim library and attacker gadget share one image so the
	// gadget's CALL can reference the victim's label.
	// Registers: R1 = index, R2 = 0, R6 = bit index, R7 = transmitter
	// loop count (1 during training so the architectural transmission
	// terminates; larger during attacks so the transient transmission
	// loops until the squash).
	ab := asm.New(victimCode)
	victim.BoundsCheckVictim(ab, lay)
	victim.SecretUse(ab, lay)
	ab.Org(gadgetCode - 0x1000)
	// The victim's own periodic secret use (see victim.SecretUse).
	ab.Label("touch_entry")
	ab.Call("victim_use_secret")
	ab.Halt()
	ab.Org(gadgetCode)
	ab.Label("attack_entry")
	ab.Clflush(isa.R2, int64(lay.ArraySizeAddr))
	ab.Call("victim_function")
	// Architecturally the out-of-bounds call returns -1 and we skip
	// transmission; transiently R0 holds the secret byte and the
	// branch below resolves the other way, steering fetch into the
	// transmitter.
	ab.Cmpi(victim.RegRet, -1)
	ab.Jcc(isa.EQ, "attack_done")
	ab.Mov(isa.R3, victim.RegRet)
	ab.Shr(isa.R3, isa.R6)
	ab.Andi(isa.R3, 1)
	ab.Cmpi(isa.R3, 0)
	ab.Jcc(isa.EQ, "send_zero")
	ab.Jmp(send.EntryLabel())
	ab.Label("send_zero")
	ab.Jmp(zeb.EntryLabel())
	ab.Label("attack_done")
	ab.Halt()

	// The transmitter chains, each looping R7 times through their
	// regions. The loop tails are placed away from the probed sets.
	if err := send.Emit(ab, "one_tail"); err != nil {
		return nil, err
	}
	orgToSet(ab, 24)
	ab.Label("one_tail")
	ab.Subi(isa.R7, 1)
	ab.Cmpi(isa.R7, 0)
	ab.Jcc(isa.NE, send.EntryLabel())
	ab.Halt()
	if err := zeb.Emit(ab, "zero_tail"); err != nil {
		return nil, err
	}
	orgToSet(ab, 26)
	ab.Label("zero_tail")
	ab.Subi(isa.R7, 1)
	ab.Cmpi(isa.R7, 0)
	ab.Jcc(isa.NE, zeb.EntryLabel())
	ab.Halt()
	aprog, err := ab.Build()
	if err != nil {
		return nil, err
	}

	merged, err := asm.Merge(eraser.Prog, aprog)
	if err != nil {
		return nil, err
	}
	c.LoadProgram(merged)

	v := &Variant1{
		c: c, lay: lay, eraser: eraser, prog: merged,
		attackEntry: aprog.MustLabel("attack_entry"),
		touchEntry:  aprog.MustLabel("touch_entry"),
		probeEntry:  aprog.MustLabel(send.EntryLabel()),
		EraseIters:  30,
		AttackReps:  4,
		XmitLoops:   50,
	}
	c.Mem().Write(lay.ArraySizeAddr, 8, lay.ArrayLen)
	return v, nil
}

// orgToSet advances the builder to the next region mapping to the
// given micro-op cache set.
func orgToSet(b *asm.Builder, set int) {
	pc := b.PC()
	next := pc&^uint64(codegen.WayStride-1) + uint64(set)*codegen.RegionSize
	for next <= pc {
		next += codegen.WayStride
	}
	b.Org(next)
}

// WriteSecret plants the victim's secret.
func (v *Variant1) WriteSecret(secret []byte) {
	v.c.Mem().WriteBytes(v.lay.SecretBase, secret)
}

// Threshold exposes the calibrated probe threshold. For this
// presence-test protocol, HitMean is the one-bit (transmitter present)
// mean and MissMean the zero-bit mean.
func (v *Variant1) Threshold() attack.Threshold { return v.th }

// train calls the victim with in-bounds indices so the bounds check
// predicts the in-bounds path; it also trains the attacker gadget's own
// branches. The public array holds zero bytes, so architectural
// transmissions during training always take the zebra path — they never
// touch the probed sets. (A transient one-bit then mispredicts the bit
// branch and redirects fetch into the tiger, inside the window.)
func (v *Variant1) train(rounds int) error {
	for i := 0; i < rounds; i++ {
		v.c.SetReg(0, isa.R1, int64(i%7))
		v.c.SetReg(0, isa.R2, 0)
		v.c.SetReg(0, isa.R6, 0)
		v.c.SetReg(0, isa.R7, 1)
		if res := v.c.Run(0, v.attackEntry, maxRun); res.TimedOut {
			return fmt.Errorf("transient: training run timed out")
		}
	}
	return nil
}

// probe times one traversal of the transmitter chain: fast if the
// transient transmission installed it, slow if the eraser still owns
// the sets.
func (v *Variant1) probe() (uint64, error) {
	v.c.SetReg(0, isa.R7, 1)
	res := v.c.Run(0, v.probeEntry, maxRun)
	if res.TimedOut {
		return 0, fmt.Errorf("transient: probe timed out")
	}
	return res.Cycles, nil
}

// leakBitRaw runs the per-bit protocol and returns the probe time.
// Training interleaves with the attack repetitions: every misspeculated
// attack call re-trains the bounds check toward the taken (out-of-
// bounds) outcome, so two benign calls precede each malicious one —
// the classic Spectre-v1 cadence.
func (v *Variant1) leakBitRaw(byteIndex, bit int) (uint64, error) {
	if _, err := v.eraser.Run(v.c, 0, v.EraseIters); err != nil {
		return 0, err
	}
	// The victim's own activity keeps the secret line cache-resident
	// (the conventional Spectre assumption; without it the transient
	// dependent branch cannot resolve inside the window).
	v.c.SetReg(0, isa.R1, int64(byteIndex))
	if res := v.c.Run(0, v.touchEntry, maxRun); res.TimedOut {
		return 0, fmt.Errorf("transient: victim secret-use timed out")
	}
	idx := int64(v.lay.SecretBase-v.lay.ArrayBase) + int64(byteIndex)
	for r := 0; r < v.AttackReps; r++ {
		if err := v.train(2); err != nil {
			return 0, err
		}
		v.c.SetReg(0, isa.R1, idx)
		v.c.SetReg(0, isa.R2, 0)
		v.c.SetReg(0, isa.R6, int64(bit))
		v.c.SetReg(0, isa.R7, v.XmitLoops)
		if res := v.c.Run(0, v.attackEntry, maxRun); res.TimedOut {
			return 0, fmt.Errorf("transient: attack run timed out")
		}
	}
	return v.probe()
}

// calibrate plants known bits and measures both probe distributions.
func (v *Variant1) calibrate() error {
	// Warm-up rounds: fill the instruction cache and train the branch
	// predictors; the first windows are otherwise consumed by cold L1I
	// misses.
	for _, b := range []byte{0xFF, 0x00, 0xFF, 0x00} {
		v.WriteSecret([]byte{b})
		if _, err := v.leakBitRaw(0, 0); err != nil {
			return err
		}
	}

	const rounds = 6
	var one, zero float64
	for i := 0; i < rounds; i++ {
		v.WriteSecret([]byte{0xFF})
		o, err := v.leakBitRaw(0, 0)
		if err != nil {
			return err
		}
		one += float64(o)
		v.WriteSecret([]byte{0x00})
		z, err := v.leakBitRaw(0, 0)
		if err != nil {
			return err
		}
		zero += float64(z)
	}
	v.th = attack.Threshold{
		HitMean:  one / rounds,
		MissMean: zero / rounds,
		Cut:      (one + zero) / (2 * rounds),
	}
	if v.th.MissMean <= v.th.HitMean {
		return fmt.Errorf("transient: no variant-1 signal (one %.0f ≥ zero %.0f)",
			v.th.HitMean, v.th.MissMean)
	}
	return nil
}

// LeakBit transiently reads bit `bit` of secret byte `byteIndex`.
func (v *Variant1) LeakBit(byteIndex, bit int) (bool, error) {
	cycles, err := v.leakBitRaw(byteIndex, bit)
	if err != nil {
		return false, err
	}
	// A fast probe means the transmitter chain is present: bit was one.
	return v.th.Hit(cycles), nil
}

// Leak recovers nBytes of the victim's secret bit-by-bit.
func (v *Variant1) Leak(nBytes int) ([]byte, Stats, error) {
	out := make([]byte, nBytes)
	var st Stats
	st.begin(v.c)
	for i := 0; i < nBytes; i++ {
		for k := 0; k < 8; k++ {
			bit, err := v.LeakBit(i, k)
			if err != nil {
				return nil, st, err
			}
			if bit {
				out[i] |= 1 << k
			}
			st.Bits++
		}
	}
	st.end(v.c)
	return out, st, nil
}
