package transient

import (
	"bytes"
	"testing"

	"deaduops/internal/cpu"
	"deaduops/internal/victim"
)

func TestVariant1LeaksSecret(t *testing.T) {
	c := cpu.New(cpu.Intel())
	v, err := NewVariant1(c)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("Sq!7x")
	v.WriteSecret(secret)
	got, st, err := v.Leak(len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Errorf("leaked %q, want %q", got, secret)
	}
	if st.Bits != len(secret)*8 {
		t.Errorf("bits = %d", st.Bits)
	}
}

func TestVariant1ThresholdSeparation(t *testing.T) {
	c := cpu.New(cpu.Intel())
	v, err := NewVariant1(c)
	if err != nil {
		t.Fatal(err)
	}
	th := v.Threshold()
	if th.MissMean < th.HitMean*1.5 {
		t.Errorf("weak variant-1 separation: one=%.0f zero=%.0f", th.HitMean, th.MissMean)
	}
}

func TestVariant1IsStealthyInLLC(t *testing.T) {
	// The µop-cache variant must generate far less LLC traffic and far
	// more µop cache miss penalty than the classic variant on the same
	// secret (the Table II contrast).
	secret := []byte("AB")

	c1 := cpu.New(cpu.Intel())
	v, err := NewVariant1(c1)
	if err != nil {
		t.Fatal(err)
	}
	v.WriteSecret(secret)
	if _, _, err := v.Leak(len(secret)); err != nil {
		t.Fatal(err)
	}
	_, stUop, err := func() ([]byte, Stats, error) { v.WriteSecret(secret); return v.Leak(len(secret)) }()
	if err != nil {
		t.Fatal(err)
	}

	c2 := cpu.New(cpu.Intel())
	cl, err := NewClassicSpectre(c2)
	if err != nil {
		t.Fatal(err)
	}
	cl.WriteSecret(secret)
	_, stClassic, err := cl.Leak(len(secret))
	if err != nil {
		t.Fatal(err)
	}

	if stUop.LLCRefs >= stClassic.LLCRefs {
		t.Errorf("µop variant LLC refs %d not below classic %d", stUop.LLCRefs, stClassic.LLCRefs)
	}
	if stUop.UopMissPenalty <= stClassic.UopMissPenalty {
		t.Errorf("µop variant penalty %d not above classic %d", stUop.UopMissPenalty, stClassic.UopMissPenalty)
	}
}

func TestVariant2SignalUnderFences(t *testing.T) {
	// The paper's headline: the signal survives LFENCE, and only the
	// fetch-serializing CPUID closes it (Fig 10).
	cases := []struct {
		fence victim.Fence
		leaks bool
	}{
		{victim.NoFence, true},
		{victim.WithLFENCE, true},
		{victim.WithCPUID, false},
	}
	for _, tc := range cases {
		t.Run(tc.fence.String(), func(t *testing.T) {
			c := cpu.New(cpu.Intel())
			v, err := NewVariant2(c, tc.fence)
			if err != nil {
				t.Fatal(err)
			}
			one, zero, err := v.SignalStrength(4)
			if err != nil {
				t.Fatal(err)
			}
			leaks := zero > one*1.2
			if leaks != tc.leaks {
				t.Errorf("fence %s: leaks=%v (one=%.0f zero=%.0f), want leaks=%v",
					tc.fence, leaks, one, zero, tc.leaks)
			}
		})
	}
}

func TestVariant2LeakBitRoundtrip(t *testing.T) {
	c := cpu.New(cpu.Intel())
	v, err := NewVariant2(c, victim.WithLFENCE)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Calibrate(4); err != nil {
		t.Fatal(err)
	}
	for _, bit := range []int{1, 0, 1, 1, 0, 0, 1, 0} {
		v.WriteSecret(bit)
		got, err := v.LeakBit()
		if err != nil {
			t.Fatal(err)
		}
		if got != (bit == 1) {
			t.Errorf("secret %d leaked as %v", bit, got)
		}
	}
}

func TestVariant2CPUIDCalibrationFails(t *testing.T) {
	c := cpu.New(cpu.Intel())
	v, err := NewVariant2(c, victim.WithCPUID)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Calibrate(3); err == nil {
		t.Error("calibration succeeded under CPUID — the fence should close the channel")
	}
}

func TestClassicSpectreLeaksBytes(t *testing.T) {
	c := cpu.New(cpu.Intel())
	cl, err := NewClassicSpectre(c)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("Sq!7")
	cl.WriteSecret(secret)
	got, st, err := cl.Leak(len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Errorf("leaked %q, want %q", got, secret)
	}
	if st.LLCRefs == 0 || st.LLCMisses == 0 {
		t.Error("classic attack produced no LLC traffic — flush+reload broken")
	}
}

func TestClassicSpectreByteIndependence(t *testing.T) {
	c := cpu.New(cpu.Intel())
	cl, err := NewClassicSpectre(c)
	if err != nil {
		t.Fatal(err)
	}
	cl.WriteSecret([]byte{0x11, 0x22, 0x33})
	// Leak out of order: each byte must be independently recoverable.
	for _, idx := range []int{2, 0, 1} {
		b, err := cl.LeakByte(idx)
		if err != nil {
			t.Fatal(err)
		}
		want := byte(0x11 * (idx + 1))
		if b != want {
			t.Errorf("byte %d = %#x, want %#x", idx, b, want)
		}
	}
}

func TestStatsSeconds(t *testing.T) {
	st := Stats{Cycles: 2_700_000_000}
	if got := st.Seconds(2.7); got != 1.0 {
		t.Errorf("Seconds = %v", got)
	}
}

func TestNaturalGadgetLeaksTagBits(t *testing.T) {
	// §VI-A: the pci_vpd_find_tag-style gadget leaks with no
	// attacker-side disclosure code at all.
	c := cpu.New(cpu.Intel())
	v, err := NewNaturalGadget(c)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte{0x80, 0x01, 0xFF, 0x00, 0x93, 0x7F}
	v.WriteSecret(secret)
	for i, b := range secret {
		got, err := v.LeakTagBit(i)
		if err != nil {
			t.Fatal(err)
		}
		want := b&0x80 != 0
		if got != want {
			t.Errorf("byte %d (%#x): tag bit leaked as %v, want %v", i, b, got, want)
		}
	}
}
