// Package isa defines SX86, a synthetic x86-like macro-op instruction set
// used by the front-end model. SX86 preserves the properties of real x86
// that the micro-op cache placement rules and the decode pipeline depend
// on: variable instruction length (1-15 bytes), length-changing prefixes,
// 64-bit immediates that occupy two micro-op slots, microcoded (MSROM)
// instructions, and macro-op fusion of compare+branch pairs.
package isa

import "fmt"

// Reg names an architectural general-purpose register. SX86 has 16 GPRs,
// mirroring x86-64.
type Reg uint8

// General-purpose register names.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// NumRegs is the number of architectural GPRs.
	NumRegs = 16
	// NoReg marks an unused register operand.
	NoReg Reg = 0xFF
)

// String implements fmt.Stringer.
func (r Reg) String() string {
	if r == NoReg {
		return "-"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op is an SX86 macro-op opcode.
type Op uint8

// SX86 opcodes.
const (
	// NOP does nothing. Its encoded length is set by the assembler
	// (1-15 bytes), which is how the paper's microbenchmarks control
	// 32-byte-region composition.
	NOP Op = iota
	// MOVI loads a sign-extended immediate into Dst.
	MOVI
	// MOV copies Src into Dst.
	MOV
	// ADD, SUB, AND, OR, XOR, SHL, SHR are Dst = Dst op Src (or Imm if
	// HasImm).
	ADD
	SUB
	AND
	OR
	XOR
	SHL
	SHR
	// CMP compares Dst with Src/Imm and sets flags. TEST ands them.
	CMP
	TEST
	// JMP is an unconditional direct jump to Target.
	JMP
	// JCC is a conditional direct jump to Target, taken if Cond holds.
	JCC
	// JMPI is an indirect jump through Dst.
	JMPI
	// CALL pushes the return address and jumps to Target. CALLI is the
	// indirect form through Dst. RET pops and returns.
	CALL
	CALLI
	RET
	// LOAD reads 8 bytes at [Src+Imm] into Dst. LOADB reads one byte,
	// zero-extended. STORE writes Dst to [Src+Imm]; STOREB writes the
	// low byte.
	LOAD
	LOADB
	STORE
	STOREB
	// CLFLUSH evicts the data cache line containing [Src+Imm] from the
	// whole hierarchy (the paper's attacker uses clflush to open the
	// speculation window).
	CLFLUSH
	// LFENCE stalls dispatch of younger micro-ops until it retires.
	// Fetch continues — the property the variant-2 attack exploits.
	LFENCE
	// CPUID is fully serializing: fetch stops until it retires.
	CPUID
	// PAUSE hints spin-waiting. Per the paper's characterization, PAUSE
	// micro-ops are not cached in the micro-op cache.
	PAUSE
	// RDTSC reads the current cycle count into Dst.
	RDTSC
	// MSROMOP is a microcoded instruction expanding to UopCount
	// micro-ops (> 4) delivered by the MSROM.
	MSROMOP
	// SYSCALL transfers to the kernel entry point in supervisor mode;
	// SYSRET returns to user mode at the saved return address.
	SYSCALL
	SYSRET
	// ITLBFLUSH flushes the instruction TLB, which (by inclusion)
	// flushes the entire micro-op cache. Models an SGX-style domain
	// crossing. Supervisor-only.
	ITLBFLUSH
	// HALT stops the hardware thread.
	HALT

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", MOVI: "movi", MOV: "mov", ADD: "add", SUB: "sub",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
	CMP: "cmp", TEST: "test", JMP: "jmp", JCC: "jcc", JMPI: "jmpi",
	CALL: "call", CALLI: "calli", RET: "ret",
	LOAD: "load", LOADB: "loadb", STORE: "store", STOREB: "storeb",
	CLFLUSH: "clflush", LFENCE: "lfence", CPUID: "cpuid",
	PAUSE: "pause", RDTSC: "rdtsc", MSROMOP: "msrom",
	SYSCALL: "syscall", SYSRET: "sysret", ITLBFLUSH: "itlbflush",
	HALT: "halt",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond is a condition code for JCC.
type Cond uint8

// Condition codes, evaluated against the flags set by CMP/TEST.
const (
	EQ Cond = iota // equal / zero
	NE             // not equal / nonzero
	LT             // signed less-than
	GE             // signed greater-or-equal
	GT             // signed greater-than
	LE             // signed less-or-equal
	B              // unsigned below
	AE             // unsigned above-or-equal
)

var condNames = [...]string{"eq", "ne", "lt", "ge", "gt", "le", "b", "ae"}

// String implements fmt.Stringer.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cc(%d)", uint8(c))
}

// Flags is the architectural flags register.
type Flags struct {
	Zero  bool // result was zero
	Sign  bool // result was negative
	Carry bool // unsigned borrow out of a subtraction
}

// Eval reports whether the condition holds under f.
func (c Cond) Eval(f Flags) bool {
	switch c {
	case EQ:
		return f.Zero
	case NE:
		return !f.Zero
	case LT:
		return f.Sign
	case GE:
		return !f.Sign
	case GT:
		return !f.Sign && !f.Zero
	case LE:
		return f.Sign || f.Zero
	case B:
		return f.Carry
	case AE:
		return !f.Carry
	default:
		return false
	}
}

// Inst is one SX86 macro-op. The assembler fills Addr and Len; decode
// consults the composition fields (Len, LCP, Imm64, Microcoded) to model
// predecode and micro-op cache placement.
type Inst struct {
	Op   Op
	Dst  Reg
	Src  Reg
	Imm  int64
	Cond Cond

	// HasImm selects the immediate form of two-operand ALU ops.
	HasImm bool
	// Imm64 marks a 64-bit immediate, which occupies two micro-op
	// slots in a micro-op cache line.
	Imm64 bool
	// LCP marks a length-changing prefix: predecode of this macro-op
	// stalls the predecoder for ConfigLCPPenalty cycles.
	LCP bool

	// Addr is the virtual address of the first byte; Len the encoded
	// length in bytes (1-15). Both are assigned by the assembler.
	Addr uint64
	Len  uint8

	// UopCount overrides the default micro-op decomposition when
	// nonzero (used by MSROMOP).
	UopCount uint8
}

// Microcoded reports whether the instruction is delivered by the MSROM.
// On the modelled Skylake, instructions decomposing into more than four
// micro-ops are microcoded; CPUID is microcoded on real hardware too.
func (in *Inst) Microcoded() bool {
	return in.Op == MSROMOP || in.Op == CPUID
}

// Uops returns the number of micro-ops this macro-op decodes into,
// before any macro- or micro-fusion.
func (in *Inst) Uops() int {
	if in.UopCount != 0 {
		return int(in.UopCount)
	}
	switch in.Op {
	case NOP, MOVI, MOV, ADD, SUB, AND, OR, XOR, SHL, SHR,
		CMP, TEST, JMP, JCC, JMPI, LOAD, LOADB, CLFLUSH,
		LFENCE, PAUSE, SYSRET, HALT:
		return 1
	case STORE, STOREB:
		// Stores are micro-fused: the address and data micro-ops share
		// one slot in the micro-op cache and the IDQ (§II-C).
		return 1
	case CALL, CALLI, RDTSC, SYSCALL, ITLBFLUSH, RET:
		return 2
	case CPUID:
		return 6
	case MSROMOP:
		return 8
	default:
		return 1
	}
}

// IsBranch reports whether the instruction redirects control flow.
func (in *Inst) IsBranch() bool {
	switch in.Op {
	case JMP, JCC, JMPI, CALL, CALLI, RET, SYSCALL, SYSRET:
		return true
	}
	return false
}

// IsUncondJump reports whether the instruction unconditionally redirects
// fetch. Placement rule: an unconditional jump is always the last
// micro-op of a micro-op cache line.
func (in *Inst) IsUncondJump() bool {
	switch in.Op {
	case JMP, JMPI, CALL, CALLI, RET, SYSCALL, SYSRET:
		return true
	}
	return false
}

// End returns the address one past the last byte of the instruction.
func (in *Inst) End() uint64 { return in.Addr + uint64(in.Len) }

// String implements fmt.Stringer.
func (in *Inst) String() string {
	switch in.Op {
	case NOP:
		return fmt.Sprintf("nop%d", in.Len)
	case JCC:
		return fmt.Sprintf("j%s 0x%x", in.Cond, uint64(in.Imm))
	case JMP, CALL:
		return fmt.Sprintf("%s 0x%x", in.Op, uint64(in.Imm))
	case MOVI:
		return fmt.Sprintf("movi %s, %d", in.Dst, in.Imm)
	case LOAD, LOADB:
		return fmt.Sprintf("%s %s, [%s+%d]", in.Op, in.Dst, in.Src, in.Imm)
	case STORE, STOREB:
		return fmt.Sprintf("%s [%s+%d], %s", in.Op, in.Src, in.Imm, in.Dst)
	default:
		if in.HasImm {
			return fmt.Sprintf("%s %s, %d", in.Op, in.Dst, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src)
	}
}

// Uop is a decoded micro-op, the unit buffered in the micro-op cache,
// the IDQ, and the backend.
type Uop struct {
	// Op is the parent macro-op opcode; Index is this micro-op's
	// position within the macro-op's decomposition; Count the total.
	Op    Op
	Index uint8
	Count uint8

	// MacroAddr/MacroLen identify the parent macro-op; NextAddr is the
	// fall-through address used for branch-resolution redirects.
	MacroAddr uint64
	MacroLen  uint8

	// Slots is the number of micro-op cache slots consumed (2 for a
	// 64-bit immediate).
	Slots uint8
	// Fused marks a macro-fused compare+branch micro-op.
	Fused bool
	// FromMSROM marks delivery by the microcode sequencer.
	FromMSROM bool

	// Dst, Src, Imm, Cond mirror the macro-op operands.
	Dst  Reg
	Src  Reg
	Imm  int64
	Cond Cond
	// HasImm selects the immediate form for ALU/compare micro-ops.
	HasImm bool

	// FusedOp carries the compare half of a macro-fused compare+branch
	// micro-op (CMP or TEST); FusedSrc/FusedImm/FusedHasImm are its
	// second operand. The branch half lives in the main fields.
	FusedOp     Op
	FusedSrc    Reg
	FusedImm    int64
	FusedHasImm bool

	// BranchPC is the address of the branch macro-op itself — for a
	// macro-fused micro-op this differs from MacroAddr (which names
	// the compare). Predictor lookups and updates key on BranchPC.
	BranchPC uint64

	// PredTaken/PredTarget carry the branch-prediction outcome the
	// fetch engine followed past this micro-op, so the backend can
	// detect mispredictions on resolution.
	PredTaken  bool
	PredTarget uint64
}

// IsBranch reports whether the micro-op resolves control flow in the
// backend. Only the last micro-op of a branch macro-op carries the
// branch semantics.
func (u *Uop) IsBranch() bool {
	switch u.Op {
	case JMP, JCC, JMPI, CALL, CALLI, RET, SYSCALL, SYSRET:
		return u.Index == u.Count-1
	}
	return false
}

// FallThrough returns the address of the next sequential macro-op.
func (u *Uop) FallThrough() uint64 { return u.MacroAddr + uint64(u.MacroLen) }
