package isa

import (
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		NOP: "nop", MOVI: "movi", JMP: "jmp", JCC: "jcc",
		LFENCE: "lfence", CPUID: "cpuid", PAUSE: "pause",
		MSROMOP: "msrom", SYSCALL: "syscall", HALT: "halt",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("unknown op string %q", got)
	}
}

func TestRegString(t *testing.T) {
	if got := R5.String(); got != "r5" {
		t.Errorf("R5 = %q", got)
	}
	if got := NoReg.String(); got != "-" {
		t.Errorf("NoReg = %q", got)
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		cond Cond
		f    Flags
		want bool
	}{
		{EQ, Flags{Zero: true}, true},
		{EQ, Flags{}, false},
		{NE, Flags{}, true},
		{NE, Flags{Zero: true}, false},
		{LT, Flags{Sign: true}, true},
		{LT, Flags{}, false},
		{GE, Flags{}, true},
		{GE, Flags{Sign: true}, false},
		{GT, Flags{}, true},
		{GT, Flags{Zero: true}, false},
		{GT, Flags{Sign: true}, false},
		{LE, Flags{Zero: true}, true},
		{LE, Flags{Sign: true}, true},
		{LE, Flags{}, false},
		{B, Flags{Carry: true}, true},
		{B, Flags{}, false},
		{AE, Flags{}, true},
		{AE, Flags{Carry: true}, false},
	}
	for _, tc := range cases {
		if got := tc.cond.Eval(tc.f); got != tc.want {
			t.Errorf("%v.Eval(%+v) = %v, want %v", tc.cond, tc.f, got, tc.want)
		}
	}
	if Cond(99).Eval(Flags{Zero: true}) {
		t.Error("unknown condition evaluated true")
	}
}

func TestCondComplementary(t *testing.T) {
	// Each condition and its complement must disagree on every flag
	// combination.
	pairs := [][2]Cond{{EQ, NE}, {LT, GE}, {GT, LE}, {B, AE}}
	f := func(zero, sign, carry bool) bool {
		fl := Flags{Zero: zero, Sign: sign, Carry: carry}
		for _, p := range pairs {
			if p[0].Eval(fl) == p[1].Eval(fl) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUopCounts(t *testing.T) {
	cases := []struct {
		in   Inst
		want int
	}{
		{Inst{Op: NOP}, 1},
		{Inst{Op: MOVI}, 1},
		{Inst{Op: STORE}, 1}, // micro-fused
		{Inst{Op: CALL}, 2},
		{Inst{Op: RET}, 2},
		{Inst{Op: CPUID}, 6},
		{Inst{Op: MSROMOP}, 8},
		{Inst{Op: MSROMOP, UopCount: 20}, 20},
		{Inst{Op: RDTSC}, 2},
		{Inst{Op: SYSCALL}, 2},
	}
	for _, tc := range cases {
		if got := tc.in.Uops(); got != tc.want {
			t.Errorf("%v.Uops() = %d, want %d", tc.in.Op, got, tc.want)
		}
	}
}

func TestMicrocoded(t *testing.T) {
	for _, op := range []Op{MSROMOP, CPUID} {
		in := Inst{Op: op}
		if !in.Microcoded() {
			t.Errorf("%v not microcoded", op)
		}
	}
	for _, op := range []Op{NOP, CALL, RET, LOAD} {
		in := Inst{Op: op}
		if in.Microcoded() {
			t.Errorf("%v microcoded", op)
		}
	}
}

func TestBranchClassification(t *testing.T) {
	branches := []Op{JMP, JCC, JMPI, CALL, CALLI, RET, SYSCALL, SYSRET}
	uncond := map[Op]bool{JMP: true, JMPI: true, CALL: true, CALLI: true,
		RET: true, SYSCALL: true, SYSRET: true}
	for _, op := range branches {
		in := Inst{Op: op}
		if !in.IsBranch() {
			t.Errorf("%v not a branch", op)
		}
		if in.IsUncondJump() != uncond[op] {
			t.Errorf("%v.IsUncondJump() = %v", op, in.IsUncondJump())
		}
	}
	for _, op := range []Op{NOP, ADD, LOAD, LFENCE} {
		in := Inst{Op: op}
		if in.IsBranch() || in.IsUncondJump() {
			t.Errorf("%v classified as a branch", op)
		}
	}
}

func TestInstEnd(t *testing.T) {
	in := Inst{Addr: 0x1000, Len: 7}
	if got := in.End(); got != 0x1007 {
		t.Errorf("End = %#x", got)
	}
}

func TestUopBranchSemantics(t *testing.T) {
	// Only the last micro-op of a branch macro-op resolves control flow.
	u0 := Uop{Op: CALL, Index: 0, Count: 2}
	u1 := Uop{Op: CALL, Index: 1, Count: 2}
	if u0.IsBranch() {
		t.Error("CALL push µop classified as branch")
	}
	if !u1.IsBranch() {
		t.Error("CALL jump µop not a branch")
	}
	n := Uop{Op: NOP, Index: 0, Count: 1}
	if n.IsBranch() {
		t.Error("NOP classified as branch")
	}
}

func TestUopFallThrough(t *testing.T) {
	u := Uop{MacroAddr: 0x2000, MacroLen: 5}
	if got := u.FallThrough(); got != 0x2005 {
		t.Errorf("FallThrough = %#x", got)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: NOP, Len: 15}, "nop15"},
		{Inst{Op: MOVI, Dst: R1, Imm: 42, HasImm: true}, "movi r1, 42"},
		{Inst{Op: JMP, Imm: 0x100}, "jmp 0x100"},
		{Inst{Op: JCC, Cond: NE, Imm: 0x80}, "jne 0x80"},
		{Inst{Op: LOAD, Dst: R2, Src: R3, Imm: 8}, "load r2, [r3+8]"},
		{Inst{Op: STORE, Dst: R2, Src: R3, Imm: 8}, "store [r3+8], r2"},
		{Inst{Op: ADD, Dst: R1, Src: R2}, "add r1, r2"},
		{Inst{Op: ADD, Dst: R1, Imm: 9, HasImm: true}, "add r1, 9"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
