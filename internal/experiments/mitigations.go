package experiments

import (
	"fmt"

	"deaduops/internal/asm"

	"deaduops/internal/channel"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
	"deaduops/internal/transient"
)

func init() {
	register("mitigations", func(o Options) (Renderable, error) { return MitigationMatrix(o) })
}

// MitigationMatrix evaluates the §VIII candidate defenses: for each
// mitigation it reports whether the user/kernel channel still
// calibrates, the channel's residual bandwidth, and the mitigation's
// performance cost on a benign syscall-heavy workload.
func MitigationMatrix(o Options) (*Table, error) {
	o = o.withDefaults(0, 0, 0)
	payload := testPayload(8, o.Seed)

	t := &Table{
		ID:    "mitigations",
		Title: "§VIII mitigations vs the µop cache channels",
		Columns: []string{
			"Mitigation", "User/Kernel Channel", "Bit Errors", "Bandwidth (Kbit/s)",
			"Variant-1 (user-only)", "Benign Syscall Overhead",
		},
	}

	baseline, err := benignSyscallCycles(cpu.MitigationNone, nil)
	if err != nil {
		return nil, err
	}

	mitigations := []cpu.Mitigation{
		cpu.MitigationNone,
		cpu.MitigationFlushOnPrivilegeSwitch,
		cpu.MitigationPrivilegePartition,
	}
	rows, err := sweep(o, len(mitigations), func(a *cpu.Arena, i int) ([]string, error) {
		m := mitigations[i]
		cfg := cpu.Intel()
		cfg.Mitigation = m
		c := cpu.NewWith(cfg, a)

		status, errors, bw := "open", "-", "-"
		ch, err := channel.NewUserKernel(c, channel.DefaultConfig())
		if err != nil {
			status = "CLOSED"
		} else {
			ch.WriteSecret(payload)
			got, res, err := ch.Leak(len(payload))
			if err != nil {
				return nil, err
			}
			e := bitErrors(payload, got)
			errors = fmt.Sprintf("%d/%d", e, res.Bits)
			bw = fmt.Sprintf("%.1f", res.BandwidthKbps())
			if e > res.Bits/4 {
				status = "CLOSED (garbage)"
			}
		}

		// The paper's caveat: neither domain-crossing mitigation stops
		// the variant-1 attack, whose prime, transient transmit, and
		// probe all happen in user space.
		v1status := "open"
		{
			vcfg := cpu.Intel()
			vcfg.Mitigation = m
			vc := cpu.NewWith(vcfg, a)
			v, err := transient.NewVariant1(vc)
			if err != nil {
				v1status = "CLOSED"
			} else {
				v.WriteSecret([]byte{0xA5})
				got, _, err := v.Leak(1)
				if err != nil || got[0] != 0xA5 {
					v1status = "CLOSED"
				}
			}
		}

		cycles, err := benignSyscallCycles(m, a)
		if err != nil {
			return nil, err
		}
		overhead := fmt.Sprintf("%+.1f%%", 100*(float64(cycles)/float64(baseline)-1))

		return []string{m.String(), status, errors, bw, v1status, overhead}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// benignSyscallCycles measures a syscall-heavy benign workload: a hot
// user loop making kernel calls that run a small hot kernel routine —
// the workload most hurt by flushing the micro-op cache at crossings.
func benignSyscallCycles(m cpu.Mitigation, a *cpu.Arena) (uint64, error) {
	cfg := cpu.Intel()
	cfg.Mitigation = m
	c := cpu.NewWith(cfg, a)

	prog, entry, err := buildBenignSyscallWorkload(cfg.KernelEntry)
	if err != nil {
		return 0, err
	}
	c.LoadProgram(prog)
	// Warm.
	c.SetReg(0, isa.R14, 50)
	if res := c.Run(0, entry, maxRunCycle); res.TimedOut {
		return 0, fmt.Errorf("benign warmup timed out")
	}
	c.SetReg(0, isa.R14, 200)
	res := c.Run(0, entry, maxRunCycle)
	if res.TimedOut {
		return 0, fmt.Errorf("benign run timed out")
	}
	if res.Counters.Get(perfctr.Instructions) == 0 {
		return 0, fmt.Errorf("benign run retired nothing")
	}
	return res.Cycles, nil
}

// buildBenignSyscallWorkload assembles: user loop of hot code + one
// syscall per iteration; kernel routine with a short hot body.
func buildBenignSyscallWorkload(kentry uint64) (prog *asm.Program, entry uint64, err error) {
	b := asm.New(0x10000)
	b.Label("entry")
	b.Label("uloop")
	for i := 0; i < 4; i++ {
		b.NopRegion(32, 4)
	}
	b.Syscall()
	b.Subi(isa.R14, 1)
	b.Cmpi(isa.R14, 0)
	b.Jcc(isa.NE, "uloop")
	b.Halt()
	user, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	kb := asm.New(kentry)
	for i := 0; i < 4; i++ {
		kb.NopRegion(32, 4)
	}
	kb.Sysret()
	kern, err := kb.Build()
	if err != nil {
		return nil, 0, err
	}
	merged, err := asm.Merge(user, kern)
	if err != nil {
		return nil, 0, err
	}
	return merged, user.Entry, nil
}
