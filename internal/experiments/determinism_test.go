package experiments

import "testing"

// TestSweepDeterminism is the parallel-sweep gate: an experiment run
// sequentially (Workers: 1) and across a worker pool must render
// byte-identically. Each sweep point builds its own simulated core and
// the pool assembles results in input order, so worker count can only
// change wall-clock time, never output. Fig 5 covers the Grid path
// (the largest sweep, 2-D eviction heat map) and Table I covers the
// Table path (four channels, one core each). Run under -race in CI,
// this also shakes out any shared state between sweep points.
func TestSweepDeterminism(t *testing.T) {
	for _, id := range []string{"fig5", "table1"} {
		fn, ok := Registry[id]
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		seq, err := fn(Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		par, err := fn(Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if seq.Render() != par.Render() {
			t.Errorf("%s: parallel rendering differs from sequential:\nsequential:\n%s\nparallel:\n%s",
				id, seq.Render(), par.Render())
		}
		sc, seqHasCSV := seq.(interface{ CSV() string })
		pc, parHasCSV := par.(interface{ CSV() string })
		if seqHasCSV && parHasCSV && sc.CSV() != pc.CSV() {
			t.Errorf("%s: parallel CSV differs from sequential", id)
		}
	}
}
