package experiments

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

func init() {
	register("fig7a", func(o Options) (Renderable, error) { return Fig7aSetProbe(o) })
	register("fig7b", func(o Options) (Renderable, error) { return Fig7bSetCount(o) })
}

// fig7Chain builds an 8-way chain loop in the given sets at base.
func fig7Chain(base uint64, sets []int, label string) (*asm.Program, *codegen.ChainSpec, error) {
	spec := &codegen.ChainSpec{
		Base: base, Sets: sets, Ways: 8,
		NopPerRegion: 5, NopLen: 1, Label: label,
	}
	tail := base + uint64(spec.Ways+1)*codegen.WayStride + 20*codegen.RegionSize
	prog, err := spec.LoopProgram(tail)
	if err != nil {
		return nil, nil, err
	}
	return prog, spec, nil
}

// Fig7aSetProbe reproduces Fig 7a: T1 places an 8-way region at each of
// the 32 set alignments in turn while T2 hammers set 0. Under Intel's
// static partitioning the threads never contend: T1's legacy-decode
// µops stay near zero for every set probed.
func Fig7aSetProbe(o Options) (*Figure, error) {
	o = o.withDefaults(30, 10, 1)
	const numSets = 32
	ys, err := sweep(o, numSets, func(a *cpu.Arena, set int) (float64, error) {
		t1, _, err := fig7Chain(benchBase, []int{set}, "t1")
		if err != nil {
			return 0, err
		}
		t2, _, err := fig7Chain(benchBase+64*codegen.WayStride, []int{0}, "t2")
		if err != nil {
			return 0, err
		}
		merged, err := asm.Merge(t1, t2)
		if err != nil {
			return 0, err
		}
		c := cpu.NewWith(cpu.Intel(), a)
		c.LoadProgram(merged)
		run := func(iters int64) (cpu.RunResult, error) {
			c.SetReg(0, isa.R14, iters)
			c.SetReg(1, isa.R14, 1<<40)
			res := c.RunSMTPrimary(t1.Entry, t2.Entry, maxRunCycle)
			if res[0].TimedOut {
				return res[0], fmt.Errorf("fig7a timed out at set %d", set)
			}
			return res[0], nil
		}
		if _, err := run(int64(o.Warmup)); err != nil {
			return 0, err
		}
		res, err := run(int64(o.Iterations))
		if err != nil {
			return 0, err
		}
		return float64(res.Counters.Get(perfctr.MITEUops)) / float64(o.Iterations), nil
	})
	if err != nil {
		return nil, err
	}
	xs := make([]float64, numSets)
	for set := range xs {
		xs[set] = float64(set)
	}
	return &Figure{
		ID:     "fig7a",
		Title:  "8-way region probing each set alignment while the sibling fills set 0",
		XAxis:  "Index Bits (5-9) of T1 Blocks",
		YAxis:  "Micro-Ops from Legacy Decode Pipeline (per iteration)",
		Series: []Series{{Label: "SMT T1", X: xs, Y: ys}},
	}, nil
}

// Fig7bSetCount reproduces Fig 7b: T1 streams a growing number of
// 8-way regions in consecutive sets. Single-threaded it can hold 32
// such regions (the whole cache); in SMT mode exactly 16 — the
// partition is organized as 16 8-way sets per thread.
func Fig7bSetCount(o Options) (*Figure, error) {
	o = o.withDefaults(30, 10, 1)
	const maxRegions = 36
	type fig7bPoint struct{ st, smt float64 }
	pts, err := sweep(o, maxRegions, func(a *cpu.Arena, i int) (fig7bPoint, error) {
		n := i + 1
		sets := make([]int, 0, n)
		for s := 0; s < n; s++ {
			sets = append(sets, s%32)
		}
		uniq := sets
		if n > 32 {
			uniq = sets[:32]
		}
		t1, _, err := fig7Chain(benchBase, uniq, "t1")
		if err != nil {
			return fig7bPoint{}, err
		}
		// Single-thread measurement.
		c := cpu.NewWith(cpu.Intel(), a)
		c.LoadProgram(t1)
		c.SetReg(0, isa.R14, int64(o.Warmup))
		if r := c.Run(0, t1.Entry, maxRunCycle); r.TimedOut {
			return fig7bPoint{}, fmt.Errorf("fig7b ST warmup timed out at %d", n)
		}
		c.SetReg(0, isa.R14, int64(o.Iterations))
		st := c.Run(0, t1.Entry, maxRunCycle)
		if st.TimedOut {
			return fig7bPoint{}, fmt.Errorf("fig7b ST run timed out at %d", n)
		}

		// SMT measurement with a PAUSE-spinning sibling.
		t2, err := fig6T2Program(Fig6Pause)
		if err != nil {
			return fig7bPoint{}, err
		}
		merged, err := asm.Merge(t1, t2)
		if err != nil {
			return fig7bPoint{}, err
		}
		cs := cpu.NewWith(cpu.Intel(), a)
		cs.LoadProgram(merged)
		runSMT := func(iters int64) (cpu.RunResult, error) {
			cs.SetReg(0, isa.R14, iters)
			cs.SetReg(1, isa.R14, 1<<40)
			res := cs.RunSMTPrimary(t1.Entry, t2.Entry, maxRunCycle)
			if res[0].TimedOut {
				return res[0], fmt.Errorf("fig7b SMT timed out at %d", n)
			}
			return res[0], nil
		}
		if _, err := runSMT(int64(o.Warmup)); err != nil {
			return fig7bPoint{}, err
		}
		smt, err := runSMT(int64(o.Iterations))
		if err != nil {
			return fig7bPoint{}, err
		}
		return fig7bPoint{
			st:  float64(st.Counters.Get(perfctr.MITEUops)) / float64(o.Iterations),
			smt: float64(smt.Counters.Get(perfctr.MITEUops)) / float64(o.Iterations),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var xs, smtY, stY []float64
	for i, p := range pts {
		xs = append(xs, float64(i+1))
		stY = append(stY, p.st)
		smtY = append(smtY, p.smt)
	}
	return &Figure{
		ID:    "fig7b",
		Title: "Number of streamable 8-way regions, single-thread vs SMT",
		XAxis: "Number of 8-Block Regions",
		YAxis: "Micro-Ops from Legacy Decode Pipeline (per iteration)",
		Series: []Series{
			{Label: "SMT", X: xs, Y: smtY},
			{Label: "Single-Thread", X: xs, Y: stY},
		},
	}, nil
}
