package experiments

import (
	"deaduops/internal/cpu"
	"deaduops/internal/transient"
)

func init() {
	register("invisispec", func(o Options) (Renderable, error) { return InvisibleSpeculation(o) })
}

// InvisibleSpeculation evaluates the §VII claim that
// invisible-speculation defenses (InvisiSpec, SafeSpec, delay-on-miss,
// …) do not stop the micro-op cache attack: with speculative cache
// fills deferred to retirement, the classic Spectre-v1 flush+reload
// attack loses its disclosure primitive entirely, while variant-1 —
// whose footprint is created by the front end at fetch — keeps leaking.
func InvisibleSpeculation(o Options) (*Table, error) {
	o = o.withDefaults(0, 0, 0)
	secret := testPayload(4, o.Seed)

	t := &Table{
		ID:    "invisispec",
		Title: "§VII invisible speculation vs the two Spectre variants",
		Columns: []string{
			"Defense", "Classic Spectre-v1 (LLC)", "µop-cache Variant-1",
		},
	}

	classic := func(invisible bool, a *cpu.Arena) string {
		cfg := cpu.Intel()
		cfg.InvisibleSpeculation = invisible
		c := cpu.NewWith(cfg, a)
		cl, err := transient.NewClassicSpectre(c)
		if err != nil {
			return "CLOSED"
		}
		cl.WriteSecret(secret)
		got, _, err := cl.Leak(len(secret))
		if err != nil || !bytesEqual(got, secret) {
			return "CLOSED"
		}
		return "leaks"
	}
	uop := func(invisible bool, a *cpu.Arena) string {
		cfg := cpu.Intel()
		cfg.InvisibleSpeculation = invisible
		c := cpu.NewWith(cfg, a)
		v, err := transient.NewVariant1(c)
		if err != nil {
			return "CLOSED"
		}
		v.WriteSecret(secret)
		got, _, err := v.Leak(len(secret))
		if err != nil || !bytesEqual(got, secret) {
			return "CLOSED"
		}
		return "LEAKS"
	}

	variants := []bool{false, true}
	rows, err := sweep(o, len(variants), func(a *cpu.Arena, i int) ([]string, error) {
		inv := variants[i]
		name := "none (baseline)"
		if inv {
			name = "invisible speculation"
		}
		return []string{name, classic(inv, a), uop(inv, a)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
