package experiments

import (
	"fmt"

	"deaduops/internal/staticlint/difftest"
)

func init() {
	register("alignchannel", func(o Options) (Renderable, error) { return AlignChannel(o) })
}

// alignChannelSeeds are the pinned-shape alignment victims the table
// reports; the 200-seed corpus in internal/staticlint/difftest holds
// their fuzzed siblings to the same contract in CI.
var alignChannelSeeds = []uint64{1, 2, 3, 5, 8, 13}

// AlignChannel renders the jump-alignment channel's validation: for
// generated victims whose two branch directions differ only in where
// their conditional jumps sit relative to the 16-byte predecode
// window (difftest.ShapeAlign), the per-direction refill delta the
// static checker predicts next to the delta the cycle-level simulator
// measures, with the alignment-stall component broken out. The
// straddling direction carries one boundary-crossing jcc per chain
// region, each worth decode.Config.JccAlignPenalty cycles of MITE-only
// predecoder stall — the Frontal-attack effect the covert channel in
// internal/channel transmits bits through.
func AlignChannel(o Options) (*Table, error) {
	t := &Table{
		ID:    "alignchannel",
		Title: "Jump-alignment channel: predicted vs measured refill deltas (probe cycles)",
		Columns: []string{
			"Victim (seed)", "Direction", "Straddling jccs", "Align stall", "Predicted", "Measured", "Error",
		},
	}
	results, err := difftest.RunShapeMany(alignChannelSeeds, o.Workers, difftest.ShapeAlign)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: alignchannel seed %d out of contract: %w", r.Seed, err)
		}
		for _, d := range []struct {
			dir        string
			jccs       int
			stall      int
			pred, meas int
		}{
			{"taken", r.Prediction.TakenCost.AlignJccs, r.Prediction.TakenCost.AlignStallCycles, r.PredTaken, r.MeasTaken},
			{"fallthrough", r.Prediction.FallCost.AlignJccs, r.Prediction.FallCost.AlignStallCycles, r.PredFall, r.MeasFall},
		} {
			errPct := 100 * float64(d.pred-d.meas) / float64(d.meas)
			if errPct < 0 {
				errPct = -errPct
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("align-%d", r.Seed),
				d.dir,
				fmt.Sprintf("%d", d.jccs),
				fmt.Sprintf("%dc", d.stall),
				fmt.Sprintf("%d", d.pred),
				fmt.Sprintf("%d", d.meas),
				fmt.Sprintf("%.1f%%", errPct),
			})
		}
	}
	return t, nil
}
