// Package experiments regenerates every figure and table of the
// paper's evaluation on the simulated core. Each experiment function
// returns structured series/rows and can render itself as text, so the
// CLI tools, the benchmark harness, and the tests share one
// implementation. The DESIGN.md experiment index maps each function to
// its paper artifact.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"deaduops/internal/cpu"
	"deaduops/internal/parsweep"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a set of curves plus identifying metadata.
type Figure struct {
	ID     string // e.g. "fig3a"
	Title  string
	XAxis  string
	YAxis  string
	Series []Series
}

// Render returns a text rendering of the figure's data.
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s — %s\n# x: %s, y: %s\n", f.ID, f.Title, f.XAxis, f.YAxis)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "## %s\n", s.Label)
		for i := range s.X {
			fmt.Fprintf(&sb, "%g\t%g\n", s.X[i], s.Y[i])
		}
	}
	return sb.String()
}

// CSV renders the figure as comma-separated series rows.
func (f *Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString("series,x,y\n")
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&sb, "%s,%g,%g\n", s.Label, s.X[i], s.Y[i])
		}
	}
	return sb.String()
}

// Grid is a 2-D heat map (Fig 5).
type Grid struct {
	ID    string
	Title string
	XAxis string
	YAxis string
	XVals []int
	YVals []int
	// Cell[yi][xi] is the measured value.
	Cell [][]float64
}

// Render returns a text heat map.
func (g *Grid) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s — %s\n# rows: %s, cols: %s\n", g.ID, g.Title, g.YAxis, g.XAxis)
	fmt.Fprintf(&sb, "%6s", "")
	for _, x := range g.XVals {
		fmt.Fprintf(&sb, "%6d", x)
	}
	sb.WriteByte('\n')
	for yi, y := range g.YVals {
		fmt.Fprintf(&sb, "%6d", y)
		for xi := range g.XVals {
			fmt.Fprintf(&sb, "%6.0f", g.Cell[yi][xi])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Table is a rows-and-columns artifact (Tables I and II).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Render returns an aligned text table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s — %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// Options tunes experiment cost. Zero values select defaults sized for
// tests; the CLI raises them for smoother curves.
type Options struct {
	// Iterations is the per-measurement loop count.
	Iterations int
	// Warmup is the number of priming traversals before measuring.
	Warmup int
	// Samples is the per-point repeat count (averaged).
	Samples int
	// Seed feeds the deterministic PRNG used by workloads and payloads.
	Seed uint64
	// Workers bounds the sweep worker pool. Zero selects GOMAXPROCS;
	// 1 forces sequential execution. Results are identical at every
	// worker count — each sweep point builds its own core and the pool
	// assembles results in input order.
	Workers int
}

// pool returns the parsweep options for this run.
func (o Options) pool() parsweep.Options { return parsweep.Options{Workers: o.Workers} }

// sweep evaluates n independent measurement points across the worker
// pool, giving each worker one reusable simulator arena. Results come
// back in point order, so a figure assembled from them is byte-
// identical at every worker count.
func sweep[T any](o Options, n int, fn func(a *cpu.Arena, i int) (T, error)) ([]T, error) {
	return parsweep.MapArena(o.pool(), n,
		func() *cpu.Arena { return new(cpu.Arena) }, fn)
}

func (o Options) withDefaults(iter, warm, samples int) Options {
	if o.Iterations == 0 {
		o.Iterations = iter
	}
	if o.Warmup == 0 {
		o.Warmup = warm
	}
	if o.Samples == 0 {
		o.Samples = samples
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	return o
}

// Renderable is anything an experiment can produce.
type Renderable interface{ Render() string }

// Registry maps experiment ids to runners.
var Registry = map[string]func(Options) (Renderable, error){}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func register(id string, fn func(Options) (Renderable, error)) {
	Registry[id] = fn
}
