package experiments

import (
	"fmt"

	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

func init() {
	register("capacity", func(o Options) (Renderable, error) { return CapacityAcrossGenerations(o) })
}

// CapacityAcrossGenerations extends Fig 3a across the microarchitecture
// generations the paper mentions: the Fig 3a capacity knee must track
// each design's line count — Skylake's 256 lines, Sunny Cove's 1.5×
// (384), Zen's 256, and Zen-2's 512 (4K µops). An attacker calibrating
// the channel on a new part would run exactly this sweep.
func CapacityAcrossGenerations(o Options) (*Table, error) {
	o = o.withDefaults(30, 10, 1)
	t := &Table{
		ID:    "capacity",
		Title: "Micro-op cache capacity knee across generations",
		Columns: []string{
			"Microarchitecture", "Lines (sets×ways)", "µop capacity",
			"Measured knee (regions)",
		},
	}
	configs := []struct {
		name string
		cfg  cpu.Config
	}{
		{"Intel Skylake/Coffee Lake", cpu.Intel()},
		{"Intel Sunny Cove", cpu.IntelSunnyCove()},
		{"AMD Zen", cpu.AMD()},
		{"AMD Zen 2", cpu.AMDZen2()},
	}
	rows, err := sweep(o, len(configs), func(a *cpu.Arena, i int) ([]string, error) {
		c := configs[i]
		uc := c.cfg.UopCache
		knee, err := capacityKnee(c.cfg, o, a)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		return []string{
			c.name,
			fmt.Sprintf("%d (%d×%d)", uc.Sets*uc.Ways, uc.Sets, uc.Ways),
			fmt.Sprint(uc.Capacity()),
			fmt.Sprint(knee),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// capacityKnee runs the Listing 1 sweep on the given configuration and
// returns the first loop size whose steady-state legacy-decode traffic
// exceeds the near-zero baseline.
func capacityKnee(cfg cpu.Config, o Options, a *cpu.Arena) (int, error) {
	lines := cfg.UopCache.Sets * cfg.UopCache.Ways
	// Sweep around the expected knee in single-line steps of 8 regions.
	// The scan early-exits at the knee, so it stays sequential within
	// one configuration; the pool fans out across configurations.
	for n := 8; n <= lines*2; n += 8 {
		prog, err := codegen.SequentialLoop(benchBase, n, 3)
		if err != nil {
			return 0, err
		}
		c := cpu.NewWith(cfg, a)
		c.LoadProgram(prog)
		c.SetReg(0, isa.R14, int64(o.Warmup))
		if r := c.Run(0, prog.Entry, maxRunCycle); r.TimedOut {
			return 0, fmt.Errorf("warmup timed out at %d regions", n)
		}
		before := c.Counters(0).Snapshot()
		c.SetReg(0, isa.R14, int64(o.Iterations))
		res := c.Run(0, prog.Entry, maxRunCycle)
		if res.TimedOut {
			return 0, fmt.Errorf("run timed out at %d regions", n)
		}
		mite := float64(c.Counters(0).Snapshot().Delta(before).Get(perfctr.MITEUops)) /
			float64(o.Iterations)
		if mite > 10 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("no knee found up to %d regions", lines*2)
}
