package experiments

import (
	"deaduops/internal/cpu"
	"deaduops/internal/transient"
	"deaduops/internal/victim"
)

func init() {
	register("fig10", func(o Options) (Renderable, error) { return Fig10Fences(o) })
}

// Fig10Fences reproduces Fig 10: the variant-2 micro-op cache timing
// signal under three victims — no fence, LFENCE, and CPUID between the
// authorization check and the transmitter. The signal (probe-time gap
// between secret=1 and secret=0) survives LFENCE, because the
// transmitter's footprint is left by fetch, not execution; only the
// fetch-serializing CPUID closes it.
func Fig10Fences(o Options) (*Figure, error) {
	o = o.withDefaults(0, 0, 8)
	fig := &Figure{
		ID:    "fig10",
		Title: "Micro-op cache timing signal with CPUID, LFENCE, and no fencing",
		XAxis: "trial",
		YAxis: "probe-time gap zero−one (cycles; >0 means the secret leaks)",
	}
	for _, f := range []victim.Fence{victim.NoFence, victim.WithLFENCE, victim.WithCPUID} {
		c := cpu.New(cpu.Intel())
		v, err := transient.NewVariant2(c, f)
		if err != nil {
			return nil, err
		}
		s := Series{Label: "fence=" + f.String()}
		// Warm-up pass.
		if _, _, err := v.SignalStrength(1); err != nil {
			return nil, err
		}
		for trial := 0; trial < o.Samples; trial++ {
			one, zero, err := v.SignalStrength(1)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(trial))
			s.Y = append(s.Y, zero-one)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
