package experiments

import (
	"deaduops/internal/cpu"
	"deaduops/internal/transient"
	"deaduops/internal/victim"
)

func init() {
	register("fig10", func(o Options) (Renderable, error) { return Fig10Fences(o) })
}

// Fig10Fences reproduces Fig 10: the variant-2 micro-op cache timing
// signal under three victims — no fence, LFENCE, and CPUID between the
// authorization check and the transmitter. The signal (probe-time gap
// between secret=1 and secret=0) survives LFENCE, because the
// transmitter's footprint is left by fetch, not execution; only the
// fetch-serializing CPUID closes it.
func Fig10Fences(o Options) (*Figure, error) {
	o = o.withDefaults(0, 0, 8)
	fig := &Figure{
		ID:    "fig10",
		Title: "Micro-op cache timing signal with CPUID, LFENCE, and no fencing",
		XAxis: "trial",
		YAxis: "probe-time gap zero−one (cycles; >0 means the secret leaks)",
	}
	fences := []victim.Fence{victim.NoFence, victim.WithLFENCE, victim.WithCPUID}
	series, err := sweep(o, len(fences), func(a *cpu.Arena, i int) (Series, error) {
		f := fences[i]
		c := cpu.NewWith(cpu.Intel(), a)
		v, err := transient.NewVariant2(c, f)
		if err != nil {
			return Series{}, err
		}
		s := Series{Label: "fence=" + f.String()}
		// Warm-up pass. Trials within one fence share the CPU's cache
		// state, so they stay sequential; the three fences fan out.
		if _, _, err := v.SignalStrength(1); err != nil {
			return Series{}, err
		}
		for trial := 0; trial < o.Samples; trial++ {
			one, zero, err := v.SignalStrength(1)
			if err != nil {
				return Series{}, err
			}
			s.X = append(s.X, float64(trial))
			s.Y = append(s.Y, zero-one)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}
