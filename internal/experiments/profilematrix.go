package experiments

import (
	"fmt"

	"deaduops/internal/channel"
	"deaduops/internal/cpu"
	"deaduops/internal/profile"
	"deaduops/internal/staticlint/difftest"
)

func init() {
	register("profilematrix", func(o Options) (Renderable, error) { return ProfileMatrix(o) })
}

// profileMatrixSeeds are the differential victims each profile's row
// aggregates; the full 200-seed corpus holds their siblings to the
// same contract per profile in internal/staticlint/difftest.
var profileMatrixSeeds = []uint64{1, 2, 3, 5, 19}

// NoChannelMark is the cell a profile's row carries where the channel
// in question does not exist on that microarchitecture — a zero-penalty
// decoder has no alignment stall, and the no-DSB control has neither
// switch points nor a probeable cache.
const NoChannelMark = "—"

// ProfileMatrix renders the cross-microarchitecture validation table:
// one row per registered front-end profile with its cache geometry,
// the differential refill contract's aggregate deltas and worst
// relative error, the receiver model's probe separation margin, the
// alignment- and switch-channel asymmetries of the pinned shapes, and
// the measured same-address-space covert-channel bandwidth. The no-DSB
// control profile must show zero refill signal and no channel — it is
// the falsifiability row: a nonzero cell there means some cost is
// attributed to the µop cache that does not come from it.
func ProfileMatrix(o Options) (*Table, error) {
	t := &Table{
		ID:    "profilematrix",
		Title: "Front-end profile matrix: geometry, differential validation, and covert bandwidth per microarchitecture",
		Columns: []string{
			"Profile", "Geometry", "Refill Δ pred/meas", "Worst err",
			"Probe margin", "Align Δ", "Switch Δ", "Channel",
		},
	}
	for _, p := range profile.All() {
		row, err := profileRow(p, o)
		if err != nil {
			return nil, fmt.Errorf("experiments: profilematrix %s: %w", p.Name, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func profileRow(p profile.Profile, o Options) ([]string, error) {
	h := difftest.NewHarness(p)

	geom := fmt.Sprintf("%ds×%dw×%du", p.UopCache.Sets, p.UopCache.Ways, p.UopCache.SlotsPerLine)
	if !p.HasDSB() {
		geom += " (DSB off)"
	}

	// Differential refill contract over the pinned seeds: summed
	// predicted and measured deltas (both directions) plus the worst
	// per-direction relative error.
	results, err := h.RunMany(profileMatrixSeeds, o.Workers)
	if err != nil {
		return nil, err
	}
	var pred, meas int
	worst := 0.0
	for _, r := range results {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		pred += r.PredTaken + r.PredFall
		meas += r.MeasTaken + r.MeasFall
		for _, d := range []struct{ p, m int }{{r.PredTaken, r.MeasTaken}, {r.PredFall, r.MeasFall}} {
			if d.m == 0 {
				continue
			}
			off := float64(d.p-d.m) / float64(d.m)
			if off < 0 {
				off = -off
			}
			if off > worst {
				worst = off
			}
		}
	}
	refill := fmt.Sprintf("%dc/%dc", pred, meas)
	worstErr := fmt.Sprintf("%.1f%%", 100*worst)

	// Receiver model: mean predicted probe separation margin across the
	// seeds' divergence findings. No DSB → nothing to probe.
	margin := NoChannelMark
	if p.HasDSB() {
		var sum float64
		n := 0
		for _, r := range results {
			if pr := r.Prediction; pr != nil && pr.Finding.Probe != nil {
				sum += pr.Finding.Probe.SeparationMargin
				n++
			}
		}
		if n > 0 {
			margin = fmt.Sprintf("%.2f×", sum/float64(n))
		}
	}

	// Alignment channel: the pinned ShapeAlign victim's predicted
	// align-stall asymmetry. Zero-penalty decoders have no such stall.
	alignDelta := NoChannelMark
	if p.Decode.JccAlignPenalty > 0 {
		r, err := h.RunShapeWith(1, difftest.ShapeAlign, nil)
		if err != nil {
			return nil, err
		}
		d := r.Prediction.TakenCost.AlignStallCycles - r.Prediction.FallCost.AlignStallCycles
		alignDelta = fmt.Sprintf("%+dc", d)
	}

	// Switch channel: the pinned ShapeSwitch victim's warm switch-point
	// asymmetry priced at the full bubble. Without a DSB the machine
	// never transitions, so there is no switch channel.
	switchDelta := NoChannelMark
	if p.HasDSB() {
		r, err := h.RunShapeWith(1, difftest.ShapeSwitch, nil)
		if err != nil {
			return nil, err
		}
		bubble := 1 + h.Config().Costs().SwitchPenalty()
		d := (r.Prediction.TakenCost.WarmSwitchPoints - r.Prediction.FallCost.WarmSwitchPoints) * bubble
		switchDelta = fmt.Sprintf("%+dc", d)
	}

	// Covert channel: one same-address-space transmission on a core
	// assembled for the profile, the chain geometry stretched across
	// the profile's set count. The no-DSB control must fail calibration
	// — there is no conflict signal to calibrate a threshold on.
	bandwidth, err := profileBandwidth(p)
	if err != nil {
		return nil, err
	}

	return []string{p.Name, geom, refill, worstErr, margin, alignDelta, switchDelta, bandwidth}, nil
}

// profileBandwidth transmits a short payload over the §V-A channel on
// the profile's core and renders bandwidth and error rate; a profile
// whose cache cannot carry the channel renders the no-channel mark.
func profileBandwidth(p profile.Profile) (string, error) {
	cfg := channel.DefaultConfig()
	cfg.Geometry.CacheSets = p.UopCache.Sets
	// The paper's operating point leaves two ways free on Skylake's
	// 8-way sets; scale the same margin to the profile's associativity
	// so sender and receiver together always over-commit the set.
	cfg.Geometry.NWays = p.UopCache.Ways - 2
	ch, err := channel.NewSameAddressSpace(cpu.New(cpu.FromProfile(p)), cfg)
	if err != nil {
		if !p.HasDSB() {
			return NoChannelMark, nil
		}
		return "", err
	}
	if !p.HasDSB() {
		return "", fmt.Errorf("no-DSB profile calibrated a µop-cache channel threshold")
	}
	payload := []byte("uop")
	got, res, err := ch.Transmit(payload)
	if err != nil {
		return "", err
	}
	if string(got) != string(payload) {
		return "", fmt.Errorf("channel corrupted payload: %q != %q", got, payload)
	}
	return fmt.Sprintf("%.0f Kbit/s @ %.0f%% err", res.BandwidthKbps(), 100*res.ErrorRate()), nil
}
