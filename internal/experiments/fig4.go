package experiments

import (
	"fmt"

	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

func init() {
	register("fig4", func(o Options) (Renderable, error) { return Fig4Placement(o) })
}

// Fig4Placement reproduces Fig 4: loops of 2, 4, and 8 same-set regions
// with a growing number of micro-ops per region. The µops delivered
// from the micro-op cache (DSB) plateau at the placement-rule limits:
// a region may hold at most 18 µops (3 lines), and the set's 8 ways
// bound the product regions × lines.
func Fig4Placement(o Options) (*Figure, error) {
	o = o.withDefaults(40, 10, 1)
	fig := &Figure{
		ID:    "fig4",
		Title: "Micro-op cache placement rules",
		XAxis: "Micro-Ops per Region",
		YAxis: "Micro-Ops from DSB per region per iteration",
	}
	regionCounts := []int{2, 4, 8}
	const maxUops = 24
	// Flatten the 3×24 grid into one point list so the pool can chew
	// through every cell concurrently, then fold back into series.
	vals, err := sweep(o, len(regionCounts)*maxUops, func(a *cpu.Arena, i int) (float64, error) {
		return fig4Point(regionCounts[i/maxUops], i%maxUops+1, o, a)
	})
	if err != nil {
		return nil, err
	}
	for ri, regions := range regionCounts {
		xs := make([]float64, maxUops)
		ys := make([]float64, maxUops)
		for ui := 0; ui < maxUops; ui++ {
			xs[ui] = float64(ui + 1)
			ys[ui] = vals[ri*maxUops+ui] / float64(regions)
		}
		fig.Series = append(fig.Series, Series{
			Label: fmt.Sprintf("%d regions", regions),
			X:     xs, Y: ys,
		})
	}
	return fig, nil
}

// fig4Point returns steady-state DSB µops per iteration for a loop of
// `regions` same-set regions of `uops` µops each.
func fig4Point(regions, uops int, o Options, a *cpu.Arena) (float64, error) {
	spec := &codegen.ChainSpec{
		Base:         benchBase,
		Sets:         []int{0},
		Ways:         regions,
		NopPerRegion: uops - 1,
		NopLen:       1,
		Label:        "plc",
	}
	prog, err := spec.LoopProgram(tailAddrFor(spec))
	if err != nil {
		return 0, err
	}
	c := cpu.NewWith(cpu.Intel(), a)
	c.LoadProgram(prog)
	c.SetReg(0, isa.R14, int64(o.Warmup))
	if r := c.Run(0, prog.Entry, maxRunCycle); r.TimedOut {
		return 0, fmt.Errorf("fig4 warmup timed out (%d regions × %d µops)", regions, uops)
	}
	before := c.Counters(0).Snapshot()
	c.SetReg(0, isa.R14, int64(o.Iterations))
	res := c.Run(0, prog.Entry, maxRunCycle)
	if res.TimedOut {
		return 0, fmt.Errorf("fig4 run timed out (%d regions × %d µops)", regions, uops)
	}
	delta := c.Counters(0).Snapshot().Delta(before)
	// Subtract the loop tail's DSB contribution by measuring only the
	// chain regions: the tail is small and constant; the paper's
	// counter similarly includes loop overhead. Report the raw chain
	// average.
	perIter := float64(delta.Get(perfctr.DSBUops)) / float64(o.Iterations)
	// Remove the (cached) loop-tail µops: sub+cmp+jcc fuse to 2 µops
	// plus the entry jmp on the first iteration only.
	const tailUops = 2
	perIter -= tailUops
	if perIter < 0 {
		perIter = 0
	}
	return perIter, nil
}
