package experiments

import (
	"fmt"

	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

func init() {
	register("fig4", func(o Options) (Renderable, error) { return Fig4Placement(o) })
}

// Fig4Placement reproduces Fig 4: loops of 2, 4, and 8 same-set regions
// with a growing number of micro-ops per region. The µops delivered
// from the micro-op cache (DSB) plateau at the placement-rule limits:
// a region may hold at most 18 µops (3 lines), and the set's 8 ways
// bound the product regions × lines.
func Fig4Placement(o Options) (*Figure, error) {
	o = o.withDefaults(40, 10, 1)
	fig := &Figure{
		ID:    "fig4",
		Title: "Micro-op cache placement rules",
		XAxis: "Micro-Ops per Region",
		YAxis: "Micro-Ops from DSB per region per iteration",
	}
	for _, regions := range []int{2, 4, 8} {
		var xs, ys []float64
		for uops := 1; uops <= 24; uops++ {
			dsb, err := fig4Point(regions, uops, o)
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(uops))
			ys = append(ys, dsb/float64(regions))
		}
		fig.Series = append(fig.Series, Series{
			Label: fmt.Sprintf("%d regions", regions),
			X:     xs, Y: ys,
		})
	}
	return fig, nil
}

// fig4Point returns steady-state DSB µops per iteration for a loop of
// `regions` same-set regions of `uops` µops each.
func fig4Point(regions, uops int, o Options) (float64, error) {
	spec := &codegen.ChainSpec{
		Base:         benchBase,
		Sets:         []int{0},
		Ways:         regions,
		NopPerRegion: uops - 1,
		NopLen:       1,
		Label:        "plc",
	}
	prog, err := spec.LoopProgram(tailAddrFor(spec))
	if err != nil {
		return 0, err
	}
	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	c.SetReg(0, isa.R14, int64(o.Warmup))
	if r := c.Run(0, prog.Entry, maxRunCycle); r.TimedOut {
		return 0, fmt.Errorf("fig4 warmup timed out (%d regions × %d µops)", regions, uops)
	}
	before := c.Counters(0).Snapshot()
	c.SetReg(0, isa.R14, int64(o.Iterations))
	res := c.Run(0, prog.Entry, maxRunCycle)
	if res.TimedOut {
		return 0, fmt.Errorf("fig4 run timed out (%d regions × %d µops)", regions, uops)
	}
	delta := c.Counters(0).Snapshot().Delta(before)
	// Subtract the loop tail's DSB contribution by measuring only the
	// chain regions: the tail is small and constant; the paper's
	// counter similarly includes loop overhead. Report the raw chain
	// average.
	perIter := float64(delta.Get(perfctr.DSBUops)) / float64(o.Iterations)
	// Remove the (cached) loop-tail µops: sub+cmp+jcc fuse to 2 µops
	// plus the entry jmp on the first iteration only.
	const tailUops = 2
	perIter -= tailUops
	if perIter < 0 {
		perIter = 0
	}
	return perIter, nil
}
