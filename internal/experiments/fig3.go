package experiments

import (
	"fmt"

	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

const (
	benchBase   = 0x10000 // 1024-aligned code base for microbenchmarks
	maxRunCycle = 50_000_000
)

func init() {
	register("fig3a", func(o Options) (Renderable, error) { return Fig3aCacheSize(o) })
	register("fig3b", func(o Options) (Renderable, error) { return Fig3bAssociativity(o) })
}

// Fig3aCacheSize reproduces Fig 3a: loops of progressively more 32-byte
// regions (3 µops each, the Listing 1 layout); the number of µops
// delivered by the legacy decode pipeline jumps once the loop exceeds
// the 256-line capacity of the micro-op cache.
func Fig3aCacheSize(o Options) (*Figure, error) {
	o = o.withDefaults(40, 10, 1)
	var ns []int
	for n := 8; n <= 384; n += 8 {
		ns = append(ns, n)
	}
	ys, err := sweep(o, len(ns), func(a *cpu.Arena, i int) (float64, error) {
		return fig3aPoint(ns[i], o, a)
	})
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
	}
	return &Figure{
		ID:     "fig3a",
		Title:  "Measuring µop cache size by testing progressively larger loops",
		XAxis:  "Number of 32 Byte Regions in the Loop",
		YAxis:  "Micro-Ops from Decode Pipeline (per iteration)",
		Series: []Series{{Label: "mite_uops", X: xs, Y: ys}},
	}, nil
}

func fig3aPoint(regions int, o Options, a *cpu.Arena) (float64, error) {
	prog, err := codegen.SequentialLoop(benchBase, regions, 3)
	if err != nil {
		return 0, err
	}
	c := cpu.NewWith(cpu.Intel(), a)
	c.LoadProgram(prog)
	// Warmup traversals fill the cache to steady state.
	c.SetReg(0, isa.R14, int64(o.Warmup))
	if r := c.Run(0, prog.Entry, maxRunCycle); r.TimedOut {
		return 0, fmt.Errorf("fig3a warmup timed out at %d regions", regions)
	}
	c.SetReg(0, isa.R14, int64(o.Iterations))
	res := c.Run(0, prog.Entry, maxRunCycle)
	if res.TimedOut {
		return 0, fmt.Errorf("fig3a run timed out at %d regions", regions)
	}
	return float64(res.Counters.Get(perfctr.MITEUops)) / float64(o.Iterations), nil
}

// Fig3bAssociativity reproduces Fig 3b: jump chains through regions
// that all map to set 0; legacy-decode µops rise once the chain exceeds
// the 8 ways of the set.
func Fig3bAssociativity(o Options) (*Figure, error) {
	o = o.withDefaults(40, 10, 1)
	const maxWays = 15
	ys, err := sweep(o, maxWays, func(a *cpu.Arena, i int) (float64, error) {
		spec := &codegen.ChainSpec{
			Base:  benchBase,
			Sets:  []int{0},
			Ways:  i + 1,
			Label: "assoc",
		}
		return chainMITEPerIteration(spec, o, a)
	})
	if err != nil {
		return nil, err
	}
	xs := make([]float64, maxWays)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return &Figure{
		ID:     "fig3b",
		Title:  "Measuring the size of one set to determine associativity",
		XAxis:  "Number of 32 Byte Regions in the Loop",
		YAxis:  "Micro-Ops from Decode Pipeline (per iteration)",
		Series: []Series{{Label: "mite_uops", X: xs, Y: ys}},
	}, nil
}

// chainMITEPerIteration measures steady-state legacy-decode µops per
// traversal of the chain.
func chainMITEPerIteration(spec *codegen.ChainSpec, o Options, a *cpu.Arena) (float64, error) {
	prog, err := spec.LoopProgram(tailAddrFor(spec))
	if err != nil {
		return 0, err
	}
	c := cpu.NewWith(cpu.Intel(), a)
	c.LoadProgram(prog)
	c.SetReg(0, isa.R14, int64(o.Warmup))
	if r := c.Run(0, prog.Entry, maxRunCycle); r.TimedOut {
		return 0, fmt.Errorf("chain warmup timed out")
	}
	c.SetReg(0, isa.R14, int64(o.Iterations))
	res := c.Run(0, prog.Entry, maxRunCycle)
	if res.TimedOut {
		return 0, fmt.Errorf("chain run timed out")
	}
	return float64(res.Counters.Get(perfctr.MITEUops)) / float64(o.Iterations), nil
}

// tailAddrFor picks a loop-tail address clear of the chain's span, in a
// set far from the chain's sets.
func tailAddrFor(spec *codegen.ChainSpec) uint64 {
	span := uint64(spec.Ways+1) * codegen.WayStride
	tail := spec.Base + span + 16*codegen.RegionSize
	return tail
}
