package experiments

import (
	"fmt"

	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

func init() {
	register("fig5", func(o Options) (Renderable, error) { return Fig5Replacement(o) })
}

// Fig5Replacement reproduces Fig 5: a main loop and an evicting loop,
// each jumping through eight ways of set 0 with six µops per line, are
// interleaved with varying iteration counts. The per-iteration µops the
// main loop receives from the micro-op cache reveal the hotness-based
// replacement policy: the evictor only displaces the main loop's lines
// once its access count exceeds theirs.
func Fig5Replacement(o Options) (*Figure, error) {
	g, err := Fig5ReplacementGrid(o)
	if err != nil {
		return nil, err
	}
	// Flatten the grid into one series per main-loop count so the
	// Figure interfaces stay uniform; Render of the Grid is available
	// via Fig5ReplacementGrid.
	fig := &Figure{
		ID:    g.ID,
		Title: g.Title,
		XAxis: g.XAxis,
		YAxis: "Micro-Ops from micro-op cache (per main iteration)",
	}
	for yi, y := range g.YVals {
		s := Series{Label: fmt.Sprintf("main=%d", y)}
		for xi, x := range g.XVals {
			s.X = append(s.X, float64(x))
			s.Y = append(s.Y, g.Cell[yi][xi])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig5ReplacementGrid runs the replacement experiment and returns the
// heat-map form matching the paper's figure.
func Fig5ReplacementGrid(o Options) (*Grid, error) {
	o = o.withDefaults(0, 0, 6) // samples = interleave rounds
	mainSpec := &codegen.ChainSpec{
		Base: benchBase, Sets: []int{0}, Ways: 8,
		NopPerRegion: 5, NopLen: 1, Label: "main",
	}
	evictSpec := &codegen.ChainSpec{
		Base: benchBase + 16*codegen.WayStride, Sets: []int{0}, Ways: 8,
		NopPerRegion: 5, NopLen: 1, Label: "evict",
	}
	g := &Grid{
		ID:    "fig5",
		Title: "µops from micro-op cache while an interleaved loop evicts",
		XAxis: "Iterations of the Evicting Loop",
		YAxis: "Iterations of the Main Loop",
	}
	for x := 0; x <= 12; x++ {
		g.XVals = append(g.XVals, x)
	}
	for y := 1; y <= 12; y++ {
		g.YVals = append(g.YVals, y)
	}
	nx := len(g.XVals)
	cells, err := sweep(o, len(g.YVals)*nx, func(a *cpu.Arena, i int) (float64, error) {
		return fig5Cell(mainSpec, evictSpec, g.YVals[i/nx], g.XVals[i%nx], o, a)
	})
	if err != nil {
		return nil, err
	}
	for yi := range g.YVals {
		g.Cell = append(g.Cell, cells[yi*nx:(yi+1)*nx])
	}
	return g, nil
}

// fig5Cell interleaves the two loops for o.Samples rounds and returns
// the average µops per main-loop iteration delivered from the micro-op
// cache over the measured rounds.
func fig5Cell(mainSpec, evictSpec *codegen.ChainSpec, mainIters, evictIters int, o Options, a *cpu.Arena) (float64, error) {
	// Tails land in set 16, far from the probed set 0.
	mainTail := mainSpec.Base + 33*codegen.WayStride + 16*codegen.RegionSize
	evictTail := evictSpec.Base + 33*codegen.WayStride + 16*codegen.RegionSize
	mainProg, err := mainSpec.LoopProgram(mainTail)
	if err != nil {
		return 0, err
	}
	evictProg, err := evictSpec.LoopProgram(evictTail)
	if err != nil {
		return 0, err
	}
	c := cpu.NewWith(cpu.Intel(), a)
	var dsb uint64
	rounds := o.Samples
	measured := 0
	for r := 0; r < rounds; r++ {
		c.LoadProgram(mainProg)
		c.SetReg(0, isa.R14, int64(mainIters))
		before := c.Counters(0).Snapshot()
		if res := c.Run(0, mainProg.Entry, maxRunCycle); res.TimedOut {
			return 0, fmt.Errorf("fig5 main loop timed out")
		}
		if r > 0 { // skip the cold first round
			dsb += c.Counters(0).Snapshot().Delta(before).Get(perfctr.DSBUops)
			measured++
		}
		if evictIters > 0 {
			c.LoadProgram(evictProg)
			c.SetReg(0, isa.R14, int64(evictIters))
			if res := c.Run(0, evictProg.Entry, maxRunCycle); res.TimedOut {
				return 0, fmt.Errorf("fig5 evicting loop timed out")
			}
		}
	}
	if measured == 0 {
		return 0, nil
	}
	perIter := float64(dsb) / float64(measured) / float64(mainIters)
	// Clamp the loop-tail contribution out.
	const tailUops = 2
	perIter -= tailUops
	if perIter < 0 {
		perIter = 0
	}
	return perIter, nil
}
