package experiments

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

func init() {
	register("fig6a", func(o Options) (Renderable, error) { return Fig6SMTPartition(o, Fig6Pause) })
	register("fig6b", func(o Options) (Renderable, error) { return Fig6SMTPartition(o, Fig6PointerChase) })
}

// Fig6Sibling selects the co-runner workload of Fig 6.
type Fig6Sibling int

// Sibling workloads.
const (
	// Fig6Pause has T2 spin on PAUSE (whose µops, per the paper, are
	// never cached in the micro-op cache).
	Fig6Pause Fig6Sibling = iota
	// Fig6PointerChase has T2 chase pointers through a cache-hostile
	// linked list.
	Fig6PointerChase
)

// String implements fmt.Stringer.
func (s Fig6Sibling) String() string {
	if s == Fig6Pause {
		return "pause"
	}
	return "pointer-chasing"
}

// Fig6SMTPartition reproduces Fig 6: thread T1 runs growing NOP loops
// while sibling thread T2 runs a slow workload. On the Intel
// configuration the micro-op cache is statically partitioned: T1's
// legacy-decode µops take off at half the single-thread capacity no
// matter what T2 executes.
func Fig6SMTPartition(o Options, sibling Fig6Sibling) (*Figure, error) {
	o = o.withDefaults(30, 10, 1)
	fig := &Figure{
		ID:    "fig6" + map[Fig6Sibling]string{Fig6Pause: "a", Fig6PointerChase: "b"}[sibling],
		Title: fmt.Sprintf("Micro-op cache usage of SMT siblings (T2 executes %s)", sibling),
		XAxis: "T1's Static Instructions",
		YAxis: "Micro-Ops from Legacy Decode Pipeline (per iteration)",
	}
	var regionList []int
	for regions := 16; regions <= 352; regions += 16 {
		regionList = append(regionList, regions)
	}
	type fig6Point struct{ smt, t2, st float64 }
	pts, err := sweep(o, len(regionList), func(a *cpu.Arena, i int) (fig6Point, error) {
		regions := regionList[i]
		smt, t2, err := fig6SMTPoint(regions, sibling, o, a)
		if err != nil {
			return fig6Point{}, err
		}
		st, err := fig6STPoint(regions, o, a)
		if err != nil {
			return fig6Point{}, err
		}
		return fig6Point{smt: smt, t2: t2, st: st}, nil
	})
	if err != nil {
		return nil, err
	}
	var smtX, smtY, stX, stY, t2Y []float64
	for i, regions := range regionList {
		staticInsts := float64(regions * 4)
		smtX = append(smtX, staticInsts)
		smtY = append(smtY, pts[i].smt)
		stX = append(stX, staticInsts)
		stY = append(stY, pts[i].st)
		t2Y = append(t2Y, pts[i].t2)
	}
	fig.Series = []Series{
		{Label: "SMT -- T1 with T2", X: smtX, Y: smtY},
		{Label: "SMT -- T2 with T1", X: smtX, Y: t2Y},
		{Label: "Single-Thread T1", X: stX, Y: stY},
	}
	return fig, nil
}

// fig6T1Program builds T1's workload: a loop over `regions` 32-byte
// regions of four 8-byte NOPs each.
func fig6T1Program(regions int) (*asm.Program, error) {
	return codegen.SequentialLoop(benchBase, regions, 4)
}

// fig6T2Program builds the sibling workload at a disjoint code range.
func fig6T2Program(sibling Fig6Sibling) (*asm.Program, error) {
	b := asm.New(0x200000)
	b.Label("entry")
	b.Label("loop")
	switch sibling {
	case Fig6Pause:
		for i := 0; i < 8; i++ {
			b.Pause()
		}
	case Fig6PointerChase:
		// R1 walks the chain; 8 dependent loads per iteration.
		for i := 0; i < 8; i++ {
			b.Load(isa.R1, isa.R1, 0)
		}
	}
	b.Subi(isa.R14, 1)
	b.Cmpi(isa.R14, 0)
	b.Jcc(isa.NE, "loop")
	b.Halt()
	return b.Build()
}

// chaseStride spaces pointer-chase nodes two cache lines apart across a
// footprint larger than L2, so T2 misses continuously.
const (
	chaseBase   = 0x100000
	chaseNodes  = 1 << 14
	chaseStride = 128
)

// setupChase writes the pointer-chase chain into guest memory.
func setupChase(c *cpu.CPU) {
	// A fixed-stride permutation with a large prime step scatters the
	// chain across sets.
	const step = 4793 // prime, co-prime with chaseNodes
	idx := uint64(0)
	for i := 0; i < chaseNodes; i++ {
		next := (idx + step) % chaseNodes
		c.Mem().Write(chaseBase+idx*chaseStride, 8, int64(chaseBase+next*chaseStride))
		idx = next
	}
}

func fig6SMTPoint(regions int, sibling Fig6Sibling, o Options, a *cpu.Arena) (t1MITE, t2MITE float64, err error) {
	t1, err := fig6T1Program(regions)
	if err != nil {
		return 0, 0, err
	}
	t2, err := fig6T2Program(sibling)
	if err != nil {
		return 0, 0, err
	}
	merged, err := asm.Merge(t1, t2)
	if err != nil {
		return 0, 0, err
	}
	c := cpu.NewWith(cpu.Intel(), a)
	c.LoadProgram(merged)
	if sibling == Fig6PointerChase {
		setupChase(c)
		c.SetReg(1, isa.R1, chaseBase)
	}
	run := func(iters int64) ([2]cpu.RunResult, error) {
		c.SetReg(0, isa.R14, iters)
		c.SetReg(1, isa.R14, 1<<40) // T2 runs for as long as T1 needs
		res := c.RunSMTPrimary(t1.Entry, t2.Entry, maxRunCycle)
		if res[0].TimedOut {
			return res, fmt.Errorf("fig6 SMT point timed out (%d regions)", regions)
		}
		return res, nil
	}
	if _, err := run(int64(o.Warmup)); err != nil {
		return 0, 0, err
	}
	res, err := run(int64(o.Iterations))
	if err != nil {
		return 0, 0, err
	}
	t1MITE = float64(res[0].Counters.Get(perfctr.MITEUops)) / float64(o.Iterations)
	t2MITE = float64(res[1].Counters.Get(perfctr.MITEUops)) / float64(o.Iterations)
	return t1MITE, t2MITE, nil
}

func fig6STPoint(regions int, o Options, a *cpu.Arena) (float64, error) {
	t1, err := fig6T1Program(regions)
	if err != nil {
		return 0, err
	}
	c := cpu.NewWith(cpu.Intel(), a)
	c.LoadProgram(t1)
	c.SetReg(0, isa.R14, int64(o.Warmup))
	if r := c.Run(0, t1.Entry, maxRunCycle); r.TimedOut {
		return 0, fmt.Errorf("fig6 ST warmup timed out")
	}
	c.SetReg(0, isa.R14, int64(o.Iterations))
	res := c.Run(0, t1.Entry, maxRunCycle)
	if res.TimedOut {
		return 0, fmt.Errorf("fig6 ST run timed out")
	}
	return float64(res.Counters.Get(perfctr.MITEUops)) / float64(o.Iterations), nil
}
