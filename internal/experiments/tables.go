package experiments

import (
	"fmt"

	"deaduops/internal/channel"
	"deaduops/internal/cpu"
	"deaduops/internal/ecc"
	"deaduops/internal/transient"
)

func init() {
	register("table1", func(o Options) (Renderable, error) { return Table1Channels(o) })
	register("table2", func(o Options) (Renderable, error) { return Table2SpectreTrace(o) })
}

// rsParity is the Reed-Solomon redundancy used for the corrected
// bandwidth column (~20% overhead, as in the paper).
const rsParity = 42 // 42/213 ≈ 19.7% overhead

// Table1Channels reproduces Table I: bit error rate, raw bandwidth, and
// Reed-Solomon-corrected bandwidth for the four channel modes.
func Table1Channels(o Options) (*Table, error) {
	o = o.withDefaults(0, 0, 0)
	payload := testPayload(48, o.Seed)

	codec, err := ecc.NewCodec(rsParity)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "table1",
		Title: "Bandwidth and Error Rate Comparison",
		Columns: []string{
			"Mode", "Bit Error Rate", "Bandwidth (Kbit/s)", "Bandwidth with error correction",
		},
	}

	addRow := func(mode string, res channel.Result) {
		corrected := res.BandwidthKbps() / (1 + codec.Overhead())
		t.Rows = append(t.Rows, []string{
			mode,
			fmt.Sprintf("%.2f%%", 100*res.ErrorRate()),
			fmt.Sprintf("%.2f", res.BandwidthKbps()),
			fmt.Sprintf("%.2f", corrected),
		})
	}

	// Same address space.
	{
		c := cpu.New(cpu.Intel())
		ch, err := channel.NewSameAddressSpace(c, channel.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("table1 same-AS: %w", err)
		}
		_, res, err := ch.Transmit(payload)
		if err != nil {
			return nil, err
		}
		addRow("Same address space", res)
	}

	// Same address space, user/kernel.
	{
		c := cpu.New(cpu.Intel())
		ch, err := channel.NewUserKernel(c, channel.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("table1 user/kernel: %w", err)
		}
		ch.WriteSecret(payload)
		got, res, err := ch.Leak(len(payload))
		if err != nil {
			return nil, err
		}
		res.BitErrors = bitErrors(payload, got)
		addRow("Same address space (User/Kernel)", res)
	}

	// Cross-thread (SMT) on the AMD-style competitively shared cache.
	{
		c := cpu.New(cpu.AMD())
		ch, err := channel.NewCrossSMT(c, channel.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("table1 cross-SMT: %w", err)
		}
		_, res, err := ch.Transmit(payload)
		if err != nil {
			return nil, err
		}
		addRow("Cross-thread (SMT)", res)
	}

	// Transient execution attack (variant 1).
	{
		c := cpu.New(cpu.Intel())
		v, err := transient.NewVariant1(c)
		if err != nil {
			return nil, fmt.Errorf("table1 transient: %w", err)
		}
		v.WriteSecret(payload)
		got, st, err := v.Leak(len(payload))
		if err != nil {
			return nil, err
		}
		res := channel.Result{
			Bits:      st.Bits,
			BitErrors: bitErrors(payload, got),
			Cycles:    st.Cycles,
		}
		addRow("Transient Execution Attack", res)
	}

	return t, nil
}

// bitErrors counts differing bits between two equal-length buffers.
func bitErrors(a, b []byte) int {
	n := 0
	for i := range a {
		d := a[i] ^ b[i]
		for d != 0 {
			n += int(d & 1)
			d >>= 1
		}
	}
	return n
}

// Table2SpectreTrace reproduces Table II: the classic Spectre-v1
// (flush+reload over the LLC) and the µop-cache variant leaking the
// same secret, traced with performance counters.
func Table2SpectreTrace(o Options) (*Table, error) {
	o = o.withDefaults(0, 0, 0)
	secret := testPayload(8, o.Seed)

	t := &Table{
		ID:    "table2",
		Title: "Tracing Spectre Variants using Performance Counters",
		Columns: []string{
			"Attack", "Time Taken", "LLC References", "LLC Misses",
			"µop Cache Miss Penalty", "Bits Wrong",
		},
	}

	// Classic Spectre-v1 over the LLC.
	{
		c := cpu.New(cpu.Intel())
		cl, err := transient.NewClassicSpectre(c)
		if err != nil {
			return nil, err
		}
		cl.WriteSecret(secret)
		got, st, err := cl.Leak(len(secret))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"Spectre (original)",
			fmt.Sprintf("%.6f s", st.Seconds(channel.ClockGHz)),
			fmt.Sprint(st.LLCRefs),
			fmt.Sprint(st.LLCMisses),
			fmt.Sprintf("%d cycles", st.UopMissPenalty),
			fmt.Sprint(bitErrors(secret, got)),
		})
	}

	// µop cache variant.
	{
		c := cpu.New(cpu.Intel())
		v, err := transient.NewVariant1(c)
		if err != nil {
			return nil, err
		}
		v.WriteSecret(secret)
		got, st, err := v.Leak(len(secret))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"Spectre (µop Cache)",
			fmt.Sprintf("%.6f s", st.Seconds(channel.ClockGHz)),
			fmt.Sprint(st.LLCRefs),
			fmt.Sprint(st.LLCMisses),
			fmt.Sprintf("%d cycles", st.UopMissPenalty),
			fmt.Sprint(bitErrors(secret, got)),
		})
	}

	return t, nil
}
