package experiments

import (
	"fmt"

	"deaduops/internal/channel"
	"deaduops/internal/cpu"
	"deaduops/internal/ecc"
	"deaduops/internal/transient"
)

func init() {
	register("table1", func(o Options) (Renderable, error) { return Table1Channels(o) })
	register("table2", func(o Options) (Renderable, error) { return Table2SpectreTrace(o) })
}

// rsParity is the Reed-Solomon redundancy used for the corrected
// bandwidth column (~20% overhead, as in the paper).
const rsParity = 42 // 42/213 ≈ 19.7% overhead

// Table1Channels reproduces Table I: bit error rate, raw bandwidth, and
// Reed-Solomon-corrected bandwidth for the four channel modes.
func Table1Channels(o Options) (*Table, error) {
	o = o.withDefaults(0, 0, 0)
	payload := testPayload(48, o.Seed)

	codec, err := ecc.NewCodec(rsParity)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "table1",
		Title: "Bandwidth and Error Rate Comparison",
		Columns: []string{
			"Mode", "Bit Error Rate", "Bandwidth (Kbit/s)", "Bandwidth with error correction",
		},
	}

	row := func(mode string, res channel.Result) []string {
		corrected := res.BandwidthKbps() / (1 + codec.Overhead())
		return []string{
			mode,
			fmt.Sprintf("%.2f%%", 100*res.ErrorRate()),
			fmt.Sprintf("%.2f", res.BandwidthKbps()),
			fmt.Sprintf("%.2f", corrected),
		}
	}

	// The four channel modes are independent measurements on separate
	// cores, so they fan out as sweep points.
	modes := []func(a *cpu.Arena) ([]string, error){
		func(a *cpu.Arena) ([]string, error) {
			c := cpu.NewWith(cpu.Intel(), a)
			ch, err := channel.NewSameAddressSpace(c, channel.DefaultConfig())
			if err != nil {
				return nil, fmt.Errorf("table1 same-AS: %w", err)
			}
			_, res, err := ch.Transmit(payload)
			if err != nil {
				return nil, err
			}
			return row("Same address space", res), nil
		},
		func(a *cpu.Arena) ([]string, error) {
			c := cpu.NewWith(cpu.Intel(), a)
			ch, err := channel.NewUserKernel(c, channel.DefaultConfig())
			if err != nil {
				return nil, fmt.Errorf("table1 user/kernel: %w", err)
			}
			ch.WriteSecret(payload)
			got, res, err := ch.Leak(len(payload))
			if err != nil {
				return nil, err
			}
			res.BitErrors = bitErrors(payload, got)
			return row("Same address space (User/Kernel)", res), nil
		},
		func(a *cpu.Arena) ([]string, error) {
			// Cross-thread (SMT) on the AMD-style competitively shared cache.
			c := cpu.NewWith(cpu.AMD(), a)
			ch, err := channel.NewCrossSMT(c, channel.DefaultConfig())
			if err != nil {
				return nil, fmt.Errorf("table1 cross-SMT: %w", err)
			}
			_, res, err := ch.Transmit(payload)
			if err != nil {
				return nil, err
			}
			return row("Cross-thread (SMT)", res), nil
		},
		func(a *cpu.Arena) ([]string, error) {
			// Transient execution attack (variant 1).
			c := cpu.NewWith(cpu.Intel(), a)
			v, err := transient.NewVariant1(c)
			if err != nil {
				return nil, fmt.Errorf("table1 transient: %w", err)
			}
			v.WriteSecret(payload)
			got, st, err := v.Leak(len(payload))
			if err != nil {
				return nil, err
			}
			res := channel.Result{
				Bits:      st.Bits,
				BitErrors: bitErrors(payload, got),
				Cycles:    st.Cycles,
			}
			return row("Transient Execution Attack", res), nil
		},
	}
	rows, err := sweep(o, len(modes), func(a *cpu.Arena, i int) ([]string, error) {
		return modes[i](a)
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows

	return t, nil
}

// bitErrors counts differing bits between two equal-length buffers.
func bitErrors(a, b []byte) int {
	n := 0
	for i := range a {
		d := a[i] ^ b[i]
		for d != 0 {
			n += int(d & 1)
			d >>= 1
		}
	}
	return n
}

// Table2SpectreTrace reproduces Table II: the classic Spectre-v1
// (flush+reload over the LLC) and the µop-cache variant leaking the
// same secret, traced with performance counters.
func Table2SpectreTrace(o Options) (*Table, error) {
	o = o.withDefaults(0, 0, 0)
	secret := testPayload(8, o.Seed)

	t := &Table{
		ID:    "table2",
		Title: "Tracing Spectre Variants using Performance Counters",
		Columns: []string{
			"Attack", "Time Taken", "LLC References", "LLC Misses",
			"µop Cache Miss Penalty", "Bits Wrong",
		},
	}

	rows, err := sweep(o, 2, func(a *cpu.Arena, i int) ([]string, error) {
		c := cpu.NewWith(cpu.Intel(), a)
		var (
			name string
			got  []byte
			st   transient.Stats
			err  error
		)
		if i == 0 {
			// Classic Spectre-v1 over the LLC.
			name = "Spectre (original)"
			cl, e := transient.NewClassicSpectre(c)
			if e != nil {
				return nil, e
			}
			cl.WriteSecret(secret)
			got, st, err = cl.Leak(len(secret))
		} else {
			// µop cache variant.
			name = "Spectre (µop Cache)"
			v, e := transient.NewVariant1(c)
			if e != nil {
				return nil, e
			}
			v.WriteSecret(secret)
			got, st, err = v.Leak(len(secret))
		}
		if err != nil {
			return nil, err
		}
		return []string{
			name,
			fmt.Sprintf("%.6f s", st.Seconds(channel.ClockGHz)),
			fmt.Sprint(st.LLCRefs),
			fmt.Sprint(st.LLCMisses),
			fmt.Sprintf("%d cycles", st.UopMissPenalty),
			fmt.Sprint(bitErrors(secret, got)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows

	return t, nil
}
