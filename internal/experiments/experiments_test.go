package experiments

import (
	"fmt"
	"strings"
	"testing"

	"deaduops/internal/profile"
)

// fast options keep the suite quick; the CLI uses larger values.
var fast = Options{Iterations: 20, Warmup: 8, Samples: 4}

func TestFig3aCapacityKnee(t *testing.T) {
	f, err := Fig3aCacheSize(fast)
	if err != nil {
		t.Fatal(err)
	}
	y := f.Series[0].Y
	x := f.Series[0].X
	at := func(region float64) float64 {
		for i := range x {
			if x[i] == region {
				return y[i]
			}
		}
		t.Fatalf("no point at %v", region)
		return 0
	}
	if v := at(128); v > 5 {
		t.Errorf("MITE µops at 128 regions = %.1f, want ≈0", v)
	}
	if v := at(240); v > 10 {
		t.Errorf("MITE µops at 240 regions = %.1f, want ≈0", v)
	}
	if v := at(320); v < 100 {
		t.Errorf("MITE µops at 320 regions = %.1f, want large (capacity exceeded)", v)
	}
}

func TestFig3bAssociativityKnee(t *testing.T) {
	f, err := Fig3bAssociativity(fast)
	if err != nil {
		t.Fatal(err)
	}
	y := f.Series[0].Y
	// Ways 1..8 fit; 9+ overflow the set.
	for i := 0; i < 8; i++ {
		if y[i] > 1 {
			t.Errorf("ways=%d: MITE µops %.2f, want ≈0", i+1, y[i])
		}
	}
	if y[8] <= y[7] {
		t.Errorf("no rise at 9 ways: %.2f vs %.2f", y[8], y[7])
	}
	if y[14] < 4 {
		t.Errorf("ways=15: MITE µops %.2f, want several per iteration", y[14])
	}
}

func TestFig4PlacementPlateaus(t *testing.T) {
	f, err := Fig4Placement(fast)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]Series{}
	for _, s := range f.Series {
		series[s.Label] = s
	}
	// 19+ µops per region exceed the 18-µop (3-line) cap: never cached,
	// for every curve.
	for _, label := range []string{"2 regions", "4 regions", "8 regions"} {
		s, ok := series[label]
		if !ok {
			t.Fatalf("missing series %q", label)
		}
		if v := s.Y[19]; v > 2 {
			t.Errorf("%s @19 µops: DSB %.1f, want ≈0 (uncacheable)", label, v)
		}
	}
	// Two regions of 18 µops (6 lines) fit the 8-way set and stay
	// cached; with 4 or 8 regions the same size thrashes.
	if v := series["2 regions"].Y[17]; v < 10 {
		t.Errorf("2 regions @18 µops: DSB %.1f, want cached", v)
	}
	// The 8-region curve collapses beyond 6 µops (8 × 2 lines > 8 ways),
	// while the 2-region curve keeps rising.
	s8 := series["8 regions"]
	if s8.Y[6] >= s8.Y[5] {
		t.Errorf("8 regions: no drop after 6 µops (%.1f → %.1f)", s8.Y[5], s8.Y[6])
	}
	s2 := series["2 regions"]
	if s2.Y[17] < s2.Y[5] {
		t.Errorf("2 regions: curve should keep rising to 18 µops")
	}
}

func TestFig5ReplacementDiagonal(t *testing.T) {
	g, err := Fig5ReplacementGrid(Options{Samples: 5})
	if err != nil {
		t.Fatal(err)
	}
	cell := func(main, evict int) float64 {
		return g.Cell[main-1][evict]
	}
	// No evictor: full streaming (48 µops + tail).
	if v := cell(6, 0); v < 40 {
		t.Errorf("main=6 evict=0: %.0f, want ≈48+", v)
	}
	// A hot main loop survives a cooler evictor…
	if v := cell(8, 4); v < 40 {
		t.Errorf("main=8 evict=4: %.0f, want retained", v)
	}
	// …but a hotter evictor displaces a cool main loop.
	if v := cell(1, 6); v > 10 {
		t.Errorf("main=1 evict=6: %.0f, want displaced", v)
	}
	if v := cell(2, 8); v > 10 {
		t.Errorf("main=2 evict=8: %.0f, want displaced", v)
	}
}

func TestFig6PartitionHalvesCapacity(t *testing.T) {
	f, err := Fig6SMTPartition(Options{Iterations: 15, Warmup: 6}, Fig6Pause)
	if err != nil {
		t.Fatal(err)
	}
	var smt, st Series
	for _, s := range f.Series {
		switch s.Label {
		case "SMT -- T1 with T2":
			smt = s
		case "Single-Thread T1":
			st = s
		}
	}
	knee := func(s Series) float64 {
		base := s.Y[0]
		for i := range s.X {
			if s.Y[i] > base+200 {
				return s.X[i]
			}
		}
		return s.X[len(s.X)-1]
	}
	kSMT, kST := knee(smt), knee(st)
	if kSMT >= kST {
		t.Errorf("SMT knee %v not below single-thread knee %v", kSMT, kST)
	}
	ratio := kST / kSMT
	if ratio < 1.5 || ratio > 3 {
		t.Errorf("capacity ratio %.2f, want ≈2 (static halving)", ratio)
	}
}

func TestFig7aNoCrossThreadContention(t *testing.T) {
	f, err := Fig7aSetProbe(Options{Iterations: 12, Warmup: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range f.Series[0].Y {
		// Streaming 48 µops/iteration: any real contention would show
		// hundreds of MITE µops per iteration.
		if y > 24 {
			t.Errorf("set %d: %.1f MITE µops/iter — partitions are leaking", i, y)
		}
	}
}

func TestFig7bSixteenSetsPerThread(t *testing.T) {
	f, err := Fig7bSetCount(Options{Iterations: 12, Warmup: 6})
	if err != nil {
		t.Fatal(err)
	}
	var smt, st Series
	for _, s := range f.Series {
		if s.Label == "SMT" {
			smt = s
		} else {
			st = s
		}
	}
	// Single thread streams all 32 8-way regions; SMT only 16.
	if st.Y[31] > 50 {
		t.Errorf("single-thread @32 regions: %.1f MITE µops, want ≈0", st.Y[31])
	}
	if smt.Y[23] < smt.Y[15]+100 {
		t.Errorf("SMT no knee after 16 regions: y[16]=%.1f y[24]=%.1f", smt.Y[15], smt.Y[23])
	}
}

func TestFig8MutualExclusion(t *testing.T) {
	m, err := Fig8Striping(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Overlap) != 0 {
		t.Errorf("tiger and zebra overlap in sets %v", m.Overlap)
	}
	if len(m.TigerOcc) != 8 || len(m.ZebraOcc) != 8 {
		t.Errorf("occupancy: tiger %d sets, zebra %d sets, want 8 each",
			len(m.TigerOcc), len(m.ZebraOcc))
	}
	for set, n := range m.TigerOcc {
		if n != 4 {
			t.Errorf("tiger set %d holds %d ways, want 4", set, n)
		}
	}
}

func TestFig10FenceMatrix(t *testing.T) {
	f, err := Fig10Fences(Options{Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		mean := 0.0
		for _, y := range s.Y {
			mean += y
		}
		mean /= float64(len(s.Y))
		wantSignal := !strings.Contains(s.Label, "cpuid")
		hasSignal := mean > 20
		if hasSignal != wantSignal {
			t.Errorf("%s: mean gap %.0f cycles, want signal=%v", s.Label, mean, wantSignal)
		}
	}
}

func TestTable1AllChannelsWork(t *testing.T) {
	tab, err := Table1Channels(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] == "100.00%" {
			t.Errorf("%s: total corruption", row[0])
		}
	}
}

func TestTable2Contrast(t *testing.T) {
	tab, err := Table2SpectreTrace(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tab.Rows))
	}
	// Both rows must have leaked without bit errors.
	for _, row := range tab.Rows {
		if row[5] != "0" {
			t.Errorf("%s: %s bits wrong", row[0], row[5])
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3a", "fig3b", "fig4", "fig5", "fig6a", "fig6b",
		"fig7a", "fig7b", "fig8", "fig9", "fig10", "table1", "table2",
		"mitigations", "capacity", "invisispec", "leakpredict",
		"probemodel", "alignchannel", "profilematrix",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
}

// TestAlignChannelTable pins the alignment-channel validation table:
// every row inside the differential contract, and exactly one
// direction per victim carrying the straddling jccs whose stall the
// channel transmits through.
func TestAlignChannelTable(t *testing.T) {
	tab, err := AlignChannel(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(alignChannelSeeds); len(tab.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(tab.Rows), want)
	}
	for i := 0; i < len(tab.Rows); i += 2 {
		taken, fall := tab.Rows[i], tab.Rows[i+1]
		if (taken[2] == "0") == (fall[2] == "0") {
			t.Errorf("%s: straddling jccs %s/%s — exactly one direction must straddle",
				taken[0], taken[2], fall[2])
		}
	}
}

// TestProfileMatrixTable pins the cross-microarchitecture table: one
// row per registered profile, the no-DSB control showing zero refill
// signal and the no-channel mark in every µop-cache-dependent column
// while its alignment asymmetry (Skylake decode) survives, and the
// zero-penalty AMD decoders showing no alignment channel while their
// refill, switch, and covert-channel columns carry real signal.
func TestProfileMatrixTable(t *testing.T) {
	tab, err := ProfileMatrix(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(profile.All()); len(tab.Rows) != want {
		t.Fatalf("got %d rows, want %d (one per profile)", len(tab.Rows), want)
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	const (
		colRefill = 2
		colMargin = 4
		colAlign  = 5
		colSwitch = 6
		colChan   = 7
	)
	mite, ok := byName["mite-only"]
	if !ok {
		t.Fatal("no mite-only control row")
	}
	if mite[colRefill] != "0c/0c" {
		t.Errorf("mite-only refill column %q, want 0c/0c", mite[colRefill])
	}
	for _, col := range []int{colMargin, colSwitch, colChan} {
		if mite[col] != NoChannelMark {
			t.Errorf("mite-only column %d is %q, want %q", col, mite[col], NoChannelMark)
		}
	}
	if mite[colAlign] == NoChannelMark || mite[colAlign] == "+0c" {
		t.Errorf("mite-only alignment column %q — the decode-side channel must survive", mite[colAlign])
	}
	for _, name := range []string{"zen", "zen2"} {
		row, ok := byName[name]
		if !ok {
			t.Fatalf("no %s row", name)
		}
		if row[colAlign] != NoChannelMark {
			t.Errorf("%s alignment column %q, want %q (penalty-free decoder)", name, row[colAlign], NoChannelMark)
		}
		for _, col := range []int{colMargin, colSwitch, colChan} {
			if row[col] == NoChannelMark {
				t.Errorf("%s column %d shows no channel on a DSB profile", name, col)
			}
		}
		if row[colRefill] == "0c/0c" {
			t.Errorf("%s refill column shows no signal", name)
		}
	}
	sky, ok := byName["skylake"]
	if !ok {
		t.Fatal("no skylake row")
	}
	for col := colMargin; col <= colChan; col++ {
		if sky[col] == NoChannelMark {
			t.Errorf("skylake column %d shows no channel", col)
		}
	}
}

func TestRenderers(t *testing.T) {
	fig := &Figure{ID: "x", Title: "t", XAxis: "a", YAxis: "b",
		Series: []Series{{Label: "s", X: []float64{1, 2}, Y: []float64{3, 4}}}}
	if out := fig.Render(); !strings.Contains(out, "1\t3") {
		t.Errorf("figure render: %q", out)
	}
	if out := fig.CSV(); !strings.Contains(out, "s,1,3") {
		t.Errorf("figure csv: %q", out)
	}
	grid := &Grid{ID: "g", XVals: []int{0, 1}, YVals: []int{1},
		Cell: [][]float64{{5, 6}}}
	if out := grid.Render(); !strings.Contains(out, "5") {
		t.Errorf("grid render: %q", out)
	}
	tab := &Table{ID: "t", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	if out := tab.Render(); !strings.Contains(out, "a") || !strings.Contains(out, "1") {
		t.Errorf("table render: %q", out)
	}
}

func TestPayloadDeterministic(t *testing.T) {
	a := testPayload(16, 42)
	b := testPayload(16, 42)
	c := testPayload(16, 43)
	if string(a) != string(b) {
		t.Error("same seed differs")
	}
	if string(a) == string(c) {
		t.Error("different seeds agree")
	}
}

func TestMitigationMatrix(t *testing.T) {
	tab, err := MitigationMatrix(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	if byName["none"][1] != "open" {
		t.Error("baseline user/kernel channel not open")
	}
	for _, m := range []string{"flush-on-switch", "privilege-partition"} {
		if byName[m][1] != "CLOSED" {
			t.Errorf("%s did not close the user/kernel channel", m)
		}
		// The paper's caveat: variant-1 (user-only) survives both.
		if byName[m][4] != "open" {
			t.Errorf("%s unexpectedly closed variant-1", m)
		}
	}
}

func TestCapacityKneesTrackGenerations(t *testing.T) {
	tab, err := CapacityAcrossGenerations(Options{Iterations: 20, Warmup: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"Intel Skylake/Coffee Lake": 256,
		"Intel Sunny Cove":          384,
		"AMD Zen":                   256,
		"AMD Zen 2":                 512,
	}
	for _, row := range tab.Rows {
		lines := want[row[0]]
		var knee int
		if _, err := fmt.Sscan(row[3], &knee); err != nil {
			t.Fatalf("%s: knee %q", row[0], row[3])
		}
		// The knee must land within one sweep step (8) of the line
		// capacity.
		if knee < lines || knee > lines+16 {
			t.Errorf("%s: knee %d, want ≈%d", row[0], knee, lines)
		}
	}
}

func TestInvisibleSpeculationPenetrated(t *testing.T) {
	tab, err := InvisibleSpeculation(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	base, def := tab.Rows[0], tab.Rows[1]
	if base[1] != "leaks" || base[2] != "LEAKS" {
		t.Errorf("baseline row %v: both variants should leak", base)
	}
	// §VII: invisible speculation blocks the LLC disclosure primitive
	// but not the µop-cache one.
	if def[1] != "CLOSED" {
		t.Errorf("invisible speculation did not block classic Spectre: %v", def)
	}
	if def[2] != "LEAKS" {
		t.Errorf("invisible speculation blocked the µop-cache variant: %v", def)
	}
}

func TestFig9TuningShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 sweeps 15 channel configurations")
	}
	f, err := Fig9Tuning(Options{})
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]Series{}
	for _, s := range f.Series {
		series[s.Label] = s
	}
	// Bandwidth falls monotonically as probed sets grow.
	bw := series["bandwidth-vs-sets"].Y
	for i := 1; i < len(bw); i++ {
		if bw[i] >= bw[i-1] {
			t.Errorf("bandwidth-vs-sets not decreasing at %d: %v", i, bw)
			break
		}
	}
	// The paper's operating point (8 sets, 6 ways, 5 samples) is
	// error-free.
	errSets := series["error-vs-sets"]
	for i, x := range errSets.X {
		if x == 8 && errSets.Y[i] != 0 {
			t.Errorf("8-set error rate %v", errSets.Y[i])
		}
	}
	// Probing 6+ of the 8 ways transmits cleanly; fewer leaves the
	// sender room to dodge the receiver.
	errWays := series["error-vs-ways"]
	for i, x := range errWays.X {
		if x >= 6 && errWays.Y[i] > 0.05 {
			t.Errorf("ways=%v error %v", x, errWays.Y[i])
		}
	}
	// More samples cost bandwidth.
	bws := series["bandwidth-vs-samples"].Y
	if bws[len(bws)-1] >= bws[0] {
		t.Errorf("bandwidth-vs-samples not decreasing: %v", bws)
	}
}
