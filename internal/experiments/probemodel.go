package experiments

import (
	"fmt"

	"deaduops/internal/staticlint/difftest"
)

func init() {
	register("probemodel", func(o Options) (Renderable, error) { return ProbeModel(o) })
}

// probemodelSeeds are the victims the table reports — the canonical
// per-shape specimens whose probe predictions are pinned in
// internal/staticlint/difftest/testdata/probe.golden.
var probemodelSeeds = []uint64{0, 1, 2, 3, 5, 19}

// ProbeModel renders the receiver model's validation: what the static
// analyzer predicts the attacker's stopwatch will show — the hit probe
// with the receiver resident, and each secret direction's
// victim-perturbed probe — next to what the real prime → probe → prime
// → victim → probe protocol (internal/attack) measures on the
// cycle-level simulator, plus the separation margin the finding's
// probe histogram claims against the calibration floor. The
// differential harness (internal/staticlint/difftest) holds every row
// — and hundreds of fuzzed siblings — to sign agreement and a ±25%
// accuracy contract in CI; in practice the model is cycle-exact for
// these victims.
func ProbeModel(o Options) (*Table, error) {
	t := &Table{
		ID:    "probemodel",
		Title: "Predicted vs measured attacker probe cycles (prime+probe receiver)",
		Columns: []string{
			"Victim (seed)", "Probe", "Predicted", "Measured", "Error", "Margin",
		},
	}
	results, err := difftest.RunProbeMany(probemodelSeeds, o.Workers)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: probemodel seed %d out of contract: %w", r.Seed, err)
		}
		margin := fmt.Sprintf("%.2f×", r.Pred.SeparationMargin)
		if !r.Pred.Distinguishable {
			margin += " (below floor)"
		}
		for _, d := range []struct {
			probe      string
			pred, meas int
		}{
			{"hit", r.Pred.HitCycles, r.MeasHitTaken},
			{"taken", r.Pred.Taken.Cycles, r.MeasTaken},
			{"fallthrough", r.Pred.Fall.Cycles, r.MeasFall},
		} {
			errPct := 100 * float64(d.pred-d.meas) / float64(d.meas)
			if errPct < 0 {
				errPct = -errPct
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("difftest-%d", r.Seed),
				d.probe,
				fmt.Sprintf("%d", d.pred),
				fmt.Sprintf("%d", d.meas),
				fmt.Sprintf("%.1f%%", errPct),
				margin,
			})
		}
	}
	return t, nil
}
