package experiments

import (
	"fmt"

	"deaduops/internal/staticlint/difftest"
)

func init() {
	register("leakpredict", func(o Options) (Renderable, error) { return LeakPredict(o) })
}

// leakpredictSeeds are the victims the table reports — the canonical
// per-shape specimens whose predictions are pinned in
// internal/staticlint/difftest/testdata/canonical.golden.
var leakpredictSeeds = []uint64{0, 1, 2, 3, 5, 19}

// LeakPredict renders the static leakage quantifier's validation: for
// generated secret-branching victims, the probe-cycle refill delta the
// linter predicts per secret direction next to the delta the
// cycle-level simulator measures (warm run vs µop-cache-flushed run).
// The differential fuzzing harness (internal/staticlint/difftest)
// holds every row — and hundreds of fuzzed siblings — to sign
// agreement and a ±25% accuracy contract in CI.
func LeakPredict(o Options) (*Table, error) {
	t := &Table{
		ID:    "leakpredict",
		Title: "Predicted vs measured µop-cache refill deltas (probe cycles)",
		Columns: []string{
			"Victim (seed)", "Direction", "Predicted", "Measured", "Error",
		},
	}
	results, err := difftest.RunMany(leakpredictSeeds, o.Workers)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: leakpredict seed %d out of contract: %w", r.Seed, err)
		}
		for _, d := range []struct {
			dir        string
			pred, meas int
		}{
			{"taken", r.PredTaken, r.MeasTaken},
			{"fallthrough", r.PredFall, r.MeasFall},
		} {
			errPct := 100 * float64(d.pred-d.meas) / float64(d.meas)
			if errPct < 0 {
				errPct = -errPct
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("difftest-%d", r.Seed),
				d.dir,
				fmt.Sprintf("%d", d.pred),
				fmt.Sprintf("%d", d.meas),
				fmt.Sprintf("%.1f%%", errPct),
			})
		}
	}
	return t, nil
}
