package experiments

import (
	"deaduops/internal/attack"
	"deaduops/internal/channel"
	"deaduops/internal/cpu"
)

func init() {
	register("fig9", func(o Options) (Renderable, error) { return Fig9Tuning(o) })
}

// Fig9Tuning reproduces Fig 9: the same-address-space channel's error
// rate and bandwidth as the tiger/zebra geometry (sets, ways) and the
// probe sample count vary, one parameter at a time around the paper's
// operating point (8 sets, 6 ways, 5 samples).
func Fig9Tuning(o Options) (*Figure, error) {
	o = o.withDefaults(0, 0, 0)
	payload := testPayload(32, o.Seed)

	fig := &Figure{
		ID:    "fig9",
		Title: "Set/way occupancy and sample count vs accuracy and bandwidth",
		XAxis: "parameter value (sets | ways | samples)",
		YAxis: "error rate / bandwidth (Kbit/s)",
	}

	base := channel.DefaultConfig()

	// One flat point list across the three one-at-a-time parameter
	// sweeps, so the pool sees all 15 configurations at once.
	type fig9Point struct {
		group string
		x     float64
		cfg   channel.Config
	}
	var points []fig9Point
	for _, nsets := range []int{1, 2, 4, 8, 16} {
		cfg := base
		cfg.Geometry = attack.Geometry{NSets: nsets, NWays: base.Geometry.NWays}
		points = append(points, fig9Point{"sets", float64(nsets), cfg})
	}
	for nways := 4; nways <= 8; nways++ {
		cfg := base
		cfg.Geometry = attack.Geometry{NSets: base.Geometry.NSets, NWays: nways}
		points = append(points, fig9Point{"ways", float64(nways), cfg})
	}
	for _, samples := range []int64{1, 2, 5, 10, 20} {
		cfg := base
		cfg.ProbeIters = samples
		points = append(points, fig9Point{"samples", float64(samples), cfg})
	}

	type fig9Val struct{ errRate, kbps float64 }
	vals, err := sweep(o, len(points), func(a *cpu.Arena, i int) (fig9Val, error) {
		c := cpu.NewWith(cpu.Intel(), a)
		ch, err := channel.NewSameAddressSpace(c, points[i].cfg)
		if err != nil {
			// A configuration with no measurable signal transmits
			// garbage: report 50% error at zero effective bandwidth
			// rather than failing the sweep.
			return fig9Val{errRate: 0.5}, nil
		}
		_, res, err := ch.Transmit(payload)
		if err != nil {
			return fig9Val{}, err
		}
		return fig9Val{errRate: res.ErrorRate(), kbps: res.BandwidthKbps()}, nil
	})
	if err != nil {
		return nil, err
	}

	for _, group := range []string{"sets", "ways", "samples"} {
		var xs, errY, bwY []float64
		for i, p := range points {
			if p.group != group {
				continue
			}
			xs = append(xs, p.x)
			errY = append(errY, vals[i].errRate)
			bwY = append(bwY, vals[i].kbps)
		}
		fig.Series = append(fig.Series,
			Series{Label: "error-vs-" + group, X: xs, Y: errY},
			Series{Label: "bandwidth-vs-" + group, X: xs, Y: bwY})
	}

	return fig, nil
}

// testPayload generates a deterministic pseudorandom payload from seed
// (splitmix64; no time/rand dependencies so runs are reproducible).
func testPayload(n int, seed uint64) []byte {
	out := make([]byte, n)
	x := seed
	for i := range out {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		out[i] = byte(z ^ (z >> 31))
	}
	return out
}
