package experiments

import (
	"deaduops/internal/attack"
	"deaduops/internal/channel"
	"deaduops/internal/cpu"
)

func init() {
	register("fig9", func(o Options) (Renderable, error) { return Fig9Tuning(o) })
}

// Fig9Tuning reproduces Fig 9: the same-address-space channel's error
// rate and bandwidth as the tiger/zebra geometry (sets, ways) and the
// probe sample count vary, one parameter at a time around the paper's
// operating point (8 sets, 6 ways, 5 samples).
func Fig9Tuning(o Options) (*Figure, error) {
	o = o.withDefaults(0, 0, 0)
	payload := testPayload(32, o.Seed)

	fig := &Figure{
		ID:    "fig9",
		Title: "Set/way occupancy and sample count vs accuracy and bandwidth",
		XAxis: "parameter value (sets | ways | samples)",
		YAxis: "error rate / bandwidth (Kbit/s)",
	}

	run := func(cfg channel.Config) (errRate, kbps float64, err error) {
		c := cpu.New(cpu.Intel())
		ch, err := channel.NewSameAddressSpace(c, cfg)
		if err != nil {
			// A configuration with no measurable signal transmits
			// garbage: report 50% error at zero effective bandwidth
			// rather than failing the sweep.
			return 0.5, 0, nil
		}
		_, res, err := ch.Transmit(payload)
		if err != nil {
			return 0, 0, err
		}
		return res.ErrorRate(), res.BandwidthKbps(), nil
	}

	base := channel.DefaultConfig()

	var setX, setErr, setBW []float64
	for _, nsets := range []int{1, 2, 4, 8, 16} {
		cfg := base
		cfg.Geometry = attack.Geometry{NSets: nsets, NWays: base.Geometry.NWays}
		e, bw, err := run(cfg)
		if err != nil {
			return nil, err
		}
		setX = append(setX, float64(nsets))
		setErr = append(setErr, e)
		setBW = append(setBW, bw)
	}
	fig.Series = append(fig.Series,
		Series{Label: "error-vs-sets", X: setX, Y: setErr},
		Series{Label: "bandwidth-vs-sets", X: setX, Y: setBW})

	var wayX, wayErr, wayBW []float64
	for nways := 4; nways <= 8; nways++ {
		cfg := base
		cfg.Geometry = attack.Geometry{NSets: base.Geometry.NSets, NWays: nways}
		e, bw, err := run(cfg)
		if err != nil {
			return nil, err
		}
		wayX = append(wayX, float64(nways))
		wayErr = append(wayErr, e)
		wayBW = append(wayBW, bw)
	}
	fig.Series = append(fig.Series,
		Series{Label: "error-vs-ways", X: wayX, Y: wayErr},
		Series{Label: "bandwidth-vs-ways", X: wayX, Y: wayBW})

	var smpX, smpErr, smpBW []float64
	for _, samples := range []int64{1, 2, 5, 10, 20} {
		cfg := base
		cfg.ProbeIters = samples
		e, bw, err := run(cfg)
		if err != nil {
			return nil, err
		}
		smpX = append(smpX, float64(samples))
		smpErr = append(smpErr, e)
		smpBW = append(smpBW, bw)
	}
	fig.Series = append(fig.Series,
		Series{Label: "error-vs-samples", X: smpX, Y: smpErr},
		Series{Label: "bandwidth-vs-samples", X: smpX, Y: smpBW})

	return fig, nil
}

// testPayload generates a deterministic pseudorandom payload from seed
// (splitmix64; no time/rand dependencies so runs are reproducible).
func testPayload(n int, seed uint64) []byte {
	out := make([]byte, n)
	x := seed
	for i := range out {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		out[i] = byte(z ^ (z >> 31))
	}
	return out
}
