// Package detect implements the §VIII performance-counter-based
// monitoring countermeasure: classifying workloads as suspicious by
// their micro-op cache behaviour. The paper observes that sudden jumps
// in micro-op cache misses can reveal an attack, while cautioning that
// such monitors are prone to misclassification and mimicry; the
// Evaluate function exposes the raw feature vector so those limits can
// be studied.
package detect

import (
	"fmt"

	"deaduops/internal/perfctr"
)

// Features is the per-run feature vector the monitor extracts from a
// performance-counter delta.
type Features struct {
	// DSBMissPenaltyPerUop is the micro-op cache miss penalty in
	// cycles, normalized per retired µop — the paper's primary signal.
	DSBMissPenaltyPerUop float64
	// MITEFraction is the share of µops delivered by the legacy decode
	// pipeline. Steady-state benign hot code runs near zero; conflict
	// attacks keep it high.
	MITEFraction float64
	// SwitchesPerKUop is the DSB→MITE switch rate per 1000 µops.
	SwitchesPerKUop float64
}

// Extract computes the feature vector from a counter delta.
func Extract(d perfctr.Snapshot) Features {
	uops := float64(d.Get(perfctr.DSBUops) + d.Get(perfctr.MITEUops) + d.Get(perfctr.MSROMUops))
	if uops == 0 {
		return Features{}
	}
	return Features{
		DSBMissPenaltyPerUop: float64(d.Get(perfctr.DSBMissPenaltyCycles)) / uops,
		MITEFraction:         float64(d.Get(perfctr.MITEUops)) / uops,
		SwitchesPerKUop:      1000 * float64(d.Get(perfctr.DSB2MITESwitches)) / uops,
	}
}

// Thresholds define the monitor's decision boundary. Defaults are
// calibrated so steady-state benign loops (which run almost entirely
// out of the micro-op cache) score clean while conflict-attack phases
// (which force continual DSB misses) trip at least two detectors.
type Thresholds struct {
	MissPenaltyPerUop float64
	MITEFraction      float64
	SwitchesPerKUop   float64
}

// DefaultThresholds returns the calibrated boundary.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MissPenaltyPerUop: 0.5,
		MITEFraction:      0.25,
		SwitchesPerKUop:   50,
	}
}

// Monitor scores counter deltas against thresholds.
type Monitor struct {
	th Thresholds
}

// NewMonitor builds a monitor; zero-valued thresholds fall back to
// defaults.
func NewMonitor(th Thresholds) *Monitor {
	def := DefaultThresholds()
	if th.MissPenaltyPerUop == 0 {
		th.MissPenaltyPerUop = def.MissPenaltyPerUop
	}
	if th.MITEFraction == 0 {
		th.MITEFraction = def.MITEFraction
	}
	if th.SwitchesPerKUop == 0 {
		th.SwitchesPerKUop = def.SwitchesPerKUop
	}
	return &Monitor{th: th}
}

// Score returns how many detectors the features trip (0-3).
func (m *Monitor) Score(f Features) int {
	n := 0
	if f.DSBMissPenaltyPerUop > m.th.MissPenaltyPerUop {
		n++
	}
	if f.MITEFraction > m.th.MITEFraction {
		n++
	}
	if f.SwitchesPerKUop > m.th.SwitchesPerKUop {
		n++
	}
	return n
}

// Suspicious reports whether the run trips a majority of detectors.
func (m *Monitor) Suspicious(d perfctr.Snapshot) bool {
	return m.Score(Extract(d)) >= 2
}

// String renders the feature vector.
func (f Features) String() string {
	return fmt.Sprintf("penalty/µop=%.3f mite=%.1f%% switches/kµop=%.1f",
		f.DSBMissPenaltyPerUop, 100*f.MITEFraction, f.SwitchesPerKUop)
}
