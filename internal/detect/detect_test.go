package detect

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/codegen"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

// measure runs a workload phase and returns the counter delta.
func measure(t *testing.T, c *cpu.CPU, entry uint64, iters int64) perfctr.Snapshot {
	t.Helper()
	c.SetReg(0, isa.R14, iters)
	before := c.Counters(0).Snapshot()
	if res := c.Run(0, entry, 10_000_000); res.TimedOut {
		t.Fatal("workload timed out")
	}
	return c.Counters(0).Snapshot().Delta(before)
}

func TestBenignHotLoopScoresClean(t *testing.T) {
	prog, err := codegen.SequentialLoop(0x10000, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	measure(t, c, prog.Entry, 20) // warm
	d := measure(t, c, prog.Entry, 100)
	m := NewMonitor(Thresholds{})
	if m.Suspicious(d) {
		t.Errorf("benign hot loop flagged: %s", Extract(d))
	}
}

func TestConflictAttackTripsMonitor(t *testing.T) {
	// The same-address-space channel's sender/receiver tug-of-war keeps
	// the DSB missing — the signature the monitor looks for.
	g := attack.DefaultGeometry()
	recv, err := attack.Build(attack.Tiger(0x40000, g, "recv"))
	if err != nil {
		t.Fatal(err)
	}
	send, err := attack.Build(attack.Tiger(0x80000, g, "send"))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := asm.Merge(recv.Prog, send.Prog)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Intel())
	c.LoadProgram(merged)

	before := c.Counters(0).Snapshot()
	for round := 0; round < 10; round++ {
		if _, err := recv.Run(c, 0, 20); err != nil {
			t.Fatal(err)
		}
		if _, err := send.Run(c, 0, 20); err != nil {
			t.Fatal(err)
		}
	}
	d := c.Counters(0).Snapshot().Delta(before)
	m := NewMonitor(Thresholds{})
	if !m.Suspicious(d) {
		t.Errorf("attack phase not flagged: %s", Extract(d))
	}
}

func TestExtractEmptyDelta(t *testing.T) {
	var zero perfctr.Snapshot
	f := Extract(zero)
	if f.DSBMissPenaltyPerUop != 0 || f.MITEFraction != 0 {
		t.Errorf("empty delta features %+v", f)
	}
}

func TestScoreBoundaries(t *testing.T) {
	m := NewMonitor(Thresholds{})
	if got := m.Score(Features{}); got != 0 {
		t.Errorf("zero features score %d", got)
	}
	hot := Features{DSBMissPenaltyPerUop: 10, MITEFraction: 0.9, SwitchesPerKUop: 500}
	if got := m.Score(hot); got != 3 {
		t.Errorf("hot features score %d", got)
	}
}

func TestThresholdDefaults(t *testing.T) {
	m := NewMonitor(Thresholds{MITEFraction: 0.5})
	// Custom value kept; others defaulted.
	if m.th.MITEFraction != 0.5 {
		t.Error("custom threshold lost")
	}
	if m.th.MissPenaltyPerUop != DefaultThresholds().MissPenaltyPerUop {
		t.Error("default not applied")
	}
}

func TestFeatureString(t *testing.T) {
	s := Features{DSBMissPenaltyPerUop: 1.5, MITEFraction: 0.5, SwitchesPerKUop: 80}.String()
	if s == "" {
		t.Error("empty feature string")
	}
}
