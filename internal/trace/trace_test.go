package trace

import (
	"bytes"
	"strings"
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
)

func TestTracerLogsRetirementAndSource(t *testing.T) {
	b := asm.New(0x10000)
	b.Label("entry")
	b.Movi(isa.R1, 1)
	b.Addi(isa.R1, 2)
	b.Halt()
	prog := b.MustBuild()

	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)

	var buf bytes.Buffer
	tr := Attach(c, &buf)
	defer tr.Detach()

	if res := c.Run(0, prog.Entry, 100000); res.TimedOut {
		t.Fatal("timed out")
	}
	out := buf.String()
	if !strings.Contains(out, "movi") || !strings.Contains(out, "halt") {
		t.Errorf("trace missing ops:\n%s", out)
	}
	if tr.Retired != 3 {
		t.Errorf("retired %d macro-ops, want 3", tr.Retired)
	}
	// The cold run decodes through the legacy pipeline.
	if !strings.Contains(out, "mite") {
		t.Errorf("no MITE-sourced retirement in cold trace:\n%s", out)
	}

	// Warm re-run streams from the micro-op cache.
	buf.Reset()
	if res := c.Run(0, prog.Entry, 100000); res.TimedOut {
		t.Fatal("timed out")
	}
	if !strings.Contains(buf.String(), "dsb") {
		t.Errorf("no DSB-sourced retirement in warm trace:\n%s", buf.String())
	}
}

func TestTracerLogsSquashes(t *testing.T) {
	// A data-dependent alternating branch guarantees mispredicts.
	b := asm.New(0x10000)
	b.Label("entry")
	b.Movi(isa.R1, 0)
	b.Movi(isa.R2, 8)
	b.Label("loop")
	b.Mov(isa.R3, isa.R2)
	b.Andi(isa.R3, 1)
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.EQ, "even")
	b.Addi(isa.R1, 1)
	b.Label("even")
	b.Subi(isa.R2, 1)
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "loop")
	b.Halt()
	prog := b.MustBuild()

	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	var buf bytes.Buffer
	tr := Attach(c, &buf)
	defer tr.Detach()
	if res := c.Run(0, prog.Entry, 1000000); res.TimedOut {
		t.Fatal("timed out")
	}
	if tr.Squashes == 0 {
		t.Error("no squash events traced")
	}
	if !strings.Contains(buf.String(), "squash") {
		t.Error("squash line missing from trace")
	}
}

func TestDetachStopsLogging(t *testing.T) {
	b := asm.New(0x10000)
	b.Label("entry")
	b.Nop(1)
	b.Halt()
	prog := b.MustBuild()
	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	var buf bytes.Buffer
	tr := Attach(c, &buf)
	tr.Detach()
	c.Run(0, prog.Entry, 100000)
	if buf.Len() != 0 {
		t.Error("detached tracer still logged")
	}
}
