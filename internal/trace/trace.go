// Package trace renders a per-cycle view of a run: retired macro-ops
// annotated with their delivery source (micro-op cache vs legacy
// decode), squash events, and periodic counter summaries. It is a
// debugging aid for attack development — the micro-op cache's
// hit/miss rhythm is directly visible in the source column.
package trace

import (
	"fmt"
	"io"

	"deaduops/internal/cpu"
	"deaduops/internal/isa"
	"deaduops/internal/perfctr"
)

// Tracer attaches to a CPU's thread-0 backend and writes a text log.
type Tracer struct {
	w    io.Writer
	c    *cpu.CPU
	last perfctr.Snapshot

	// Retired counts macro-ops seen; Squashes counts flushes.
	Retired  uint64
	Squashes uint64
}

// Attach installs the tracer on thread 0. Call Detach when done; only
// one tracer may be attached at a time.
func Attach(c *cpu.CPU, w io.Writer) *Tracer {
	t := &Tracer{w: w, c: c, last: c.Counters(0).Snapshot()}
	be := c.Backend(0)
	be.OnRetire = t.onRetire
	be.OnSquash = t.onSquash
	return t
}

// Detach removes the tracer's hooks.
func (t *Tracer) Detach() {
	be := t.c.Backend(0)
	be.OnRetire = nil
	be.OnSquash = nil
}

func (t *Tracer) onRetire(cycle uint64, u isa.Uop) {
	// Only log once per macro-op (its last micro-op).
	if u.Index != u.Count-1 {
		return
	}
	t.Retired++
	if u.Fused {
		t.Retired++
	}
	now := t.c.Counters(0).Snapshot()
	d := now.Delta(t.last)
	t.last = now
	src := "dsb "
	if d.Get(perfctr.MITEUops) > 0 {
		src = "mite"
	} else if d.Get(perfctr.LSDUops) > 0 {
		src = "lsd "
	}
	fmt.Fprintf(t.w, "%8d  %s  %#8x  %v\n", cycle, src, u.MacroAddr, u.Op)
}

func (t *Tracer) onSquash(cycle uint64, target uint64) {
	t.Squashes++
	fmt.Fprintf(t.w, "%8d  ----  squash → %#x\n", cycle, target)
}
