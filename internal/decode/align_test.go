package decode

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
	"deaduops/internal/uopcache"
)

// jccAt builds NOP padding of pad bytes followed by a conditional jump,
// so the jump's first byte sits at offset pad of the (16-aligned) code
// origin.
func jccAt(pad int) []*isa.Inst {
	return insts(func(b *asm.Builder) {
		for pad > 15 {
			b.Nop(15)
			pad -= 15
		}
		if pad > 0 {
			b.Nop(pad)
		}
		b.Jcc(isa.EQ, "x")
		b.Label("x")
		b.Halt()
	})
}

// TestJccAlignOffsets pins the straddle rule at the three canonical
// offsets of a 16-byte predecode window: a jump starting the window
// (offset 0) and one starting the next window (offset 16) are free; a
// jump whose 2 bytes span offsets 15-16 crosses the boundary and pays
// Config.JccAlignPenalty.
func TestJccAlignOffsets(t *testing.T) {
	cfg := Skylake()
	cases := []struct {
		pad      int
		straddle bool
	}{
		{0, false},
		{15, true},
		{16, false},
	}
	for _, tc := range cases {
		list := jccAt(tc.pad)
		plan := PlanRegion(cfg, list)
		wantStalls, wantJccs := 0, 0
		if tc.straddle {
			wantStalls, wantJccs = cfg.JccAlignPenalty, 1
		}
		if plan.AlignStalls != wantStalls || plan.AlignJccs != wantJccs {
			t.Errorf("jcc at offset %d: align stalls %d / jccs %d, want %d / %d",
				tc.pad, plan.AlignStalls, plan.AlignJccs, wantStalls, wantJccs)
		}
		var jcc *isa.Inst
		for _, in := range list {
			if in.Op == isa.JCC {
				jcc = in
			}
		}
		if got := JccStraddles(cfg, jcc); got != tc.straddle {
			t.Errorf("JccStraddles(offset %d) = %v, want %v", tc.pad, got, tc.straddle)
		}
	}
}

// TestJccAlignChargedInSchedule verifies the stall lands in the
// delivery schedule itself — the object the simulator executes slot by
// slot — not just in the breakout counter: two layouts with identical
// macro-ops and predecode windows must differ by exactly the penalty.
func TestJccAlignChargedInSchedule(t *testing.T) {
	cfg := Skylake()
	// 17 bytes (2 windows), jump spanning bytes 15-16.
	straddle := PlanRegion(cfg, insts(func(b *asm.Builder) {
		b.Nop(8)
		b.Nop(7)
		b.Jcc(isa.EQ, "x")
		b.Label("x")
		b.Halt()
	}))
	// 18 bytes (2 windows), jump wholly inside the second window.
	aligned := PlanRegion(cfg, insts(func(b *asm.Builder) {
		b.Nop(8)
		b.Nop(8)
		b.Jcc(isa.EQ, "x")
		b.Label("x")
		b.Halt()
	}))
	if got, want := straddle.Cycles()-aligned.Cycles(), cfg.JccAlignPenalty; got != want {
		t.Errorf("straddling schedule %d cycles vs aligned %d: delta %d, want %d",
			straddle.Cycles(), aligned.Cycles(), got, want)
	}
	if straddle.TotalUops() != aligned.TotalUops() {
		t.Fatalf("layouts not µop-identical: %d vs %d", straddle.TotalUops(), aligned.TotalUops())
	}
}

// TestJccAlignFusedPairStillCharged: macro-fusion folds the compare and
// branch into one µop, but the predecoder sees the raw bytes — a fused
// jump straddling the boundary still stalls.
func TestJccAlignFusedPairStillCharged(t *testing.T) {
	cfg := Skylake()
	plan := PlanRegion(cfg, insts(func(b *asm.Builder) {
		b.Nop(11)
		b.Cmpi(isa.R1, 0) // bytes 11..14
		b.Jcc(isa.EQ, "x") // bytes 15..16: straddles
		b.Label("x")
		b.Halt()
	}))
	if plan.AlignStalls != cfg.JccAlignPenalty || plan.AlignJccs != 1 {
		t.Errorf("fused straddling pair: align stalls %d / jccs %d, want %d / 1",
			plan.AlignStalls, plan.AlignJccs, cfg.JccAlignPenalty)
	}
	fused := false
	for _, slot := range plan.Slots {
		for _, u := range slot {
			if u.Fused {
				fused = true
			}
		}
	}
	if !fused {
		t.Error("pair did not macro-fuse")
	}
}

// TestJccAlignOnlyConditional: unconditional jumps (and a zeroed
// penalty, the Zen default) never stall, whatever their alignment.
func TestJccAlignOnlyConditional(t *testing.T) {
	cfg := Skylake()
	jmp := PlanRegion(cfg, insts(func(b *asm.Builder) {
		b.Nop(15)
		b.JmpShort("x") // bytes 15-16, but unconditional
		b.Label("x")
		b.Halt()
	}))
	if jmp.AlignStalls != 0 || jmp.AlignJccs != 0 {
		t.Errorf("unconditional jump charged align stalls %d", jmp.AlignStalls)
	}
	zen := Zen()
	if zen.JccAlignPenalty != 0 {
		t.Fatalf("Zen models a jcc align penalty (%d); AMD's aligned fetch does not exhibit it", zen.JccAlignPenalty)
	}
	plan := PlanRegion(zen, jccAt(15))
	if plan.AlignStalls != 0 {
		t.Errorf("zero-penalty config charged %d align stalls", plan.AlignStalls)
	}
}

// TestRegionCostSurfacesAlignStalls: the shared cost table must expose
// the alignment term per segment — cold cycles carry it, warm (DSB
// streamed) cycles do not, so the refill delta grows by exactly the
// penalty.
func TestRegionCostSurfacesAlignStalls(t *testing.T) {
	ct := NewCostTable(Skylake(), uopcache.Skylake())
	build := func(firstNop int) []*isa.Inst {
		return insts(func(b *asm.Builder) {
			b.Nop(firstNop)
			b.Nop(6)
			b.Jcc(isa.EQ, "x")
			b.Label("x")
			b.Halt()
		})
	}
	straddle := ct.Region(0x1000, 0, build(9)) // jcc at 15-16
	aligned := ct.Region(0x1000, 0, build(8))  // jcc at 14-15
	if straddle.AlignStallCycles != ct.Decode.JccAlignPenalty || straddle.AlignJccs != 1 {
		t.Errorf("straddle cost: align stalls %d / jccs %d, want %d / 1",
			straddle.AlignStallCycles, straddle.AlignJccs, ct.Decode.JccAlignPenalty)
	}
	if aligned.AlignStallCycles != 0 {
		t.Errorf("aligned cost charged %d align stalls", aligned.AlignStallCycles)
	}
	if !straddle.Cacheable || !aligned.Cacheable {
		t.Fatal("test regions must be cacheable")
	}
	if straddle.WarmCycles != aligned.WarmCycles {
		t.Errorf("warm cycles differ (%d vs %d): alignment must be MITE-only",
			straddle.WarmCycles, aligned.WarmCycles)
	}
	if got, want := straddle.RefillDelta()-aligned.RefillDelta(), ct.Decode.JccAlignPenalty; got != want {
		t.Errorf("refill delta gap %d, want the align penalty %d", got, want)
	}
}
