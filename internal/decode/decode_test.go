package decode

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

func insts(build func(b *asm.Builder)) []*isa.Inst {
	b := asm.New(0x1000)
	build(b)
	return b.MustBuild().Insts
}

func TestExpandCounts(t *testing.T) {
	list := insts(func(b *asm.Builder) {
		b.Nop(1)
		b.Call("x")
		b.Label("x")
		b.Ret()
		b.Cpuid()
		b.Msrom(10)
	})
	want := []int{1, 2, 2, 6, 10}
	for i, in := range list {
		if got := len(Expand(in)); got != want[i] {
			t.Errorf("%v expands to %d µops, want %d", in.Op, got, want[i])
		}
	}
}

func TestExpandCarriesOperands(t *testing.T) {
	list := insts(func(b *asm.Builder) { b.Movi64(isa.R3, 77) })
	u := Expand(list[0])
	if len(u) != 1 || u[0].Dst != isa.R3 || u[0].Imm != 77 || u[0].Slots != 2 {
		t.Errorf("expanded %+v", u)
	}
	if u[0].MacroAddr != 0x1000 || u[0].MacroLen != 10 {
		t.Errorf("macro identity %#x/%d", u[0].MacroAddr, u[0].MacroLen)
	}
}

func TestMacroFusion(t *testing.T) {
	list := insts(func(b *asm.Builder) {
		b.Cmpi(isa.R1, 5)
		b.Jcc(isa.EQ, "x")
		b.Label("x")
		b.Halt()
	})
	plan := PlanRegion(Skylake(), list)
	var fused *isa.Uop
	total := 0
	for _, slot := range plan.Slots {
		for i := range slot {
			total++
			if slot[i].Fused {
				fused = &slot[i]
			}
		}
	}
	// cmp+jcc fuse into one µop; halt is the other.
	if total != 2 || fused == nil {
		t.Fatalf("total µops %d, fused %v", total, fused)
	}
	if fused.FusedOp != isa.CMP || !fused.FusedHasImm || fused.FusedImm != 5 {
		t.Errorf("fused compare half %+v", fused)
	}
	if fused.Op != isa.JCC || fused.Cond != isa.EQ {
		t.Errorf("fused branch half %+v", fused)
	}
	// The fused µop spans both macro-ops.
	if fused.MacroAddr != list[0].Addr ||
		fused.MacroAddr+uint64(fused.MacroLen) != list[1].End() {
		t.Errorf("fused span %#x+%d", fused.MacroAddr, fused.MacroLen)
	}
	// BranchPC still names the branch for predictor indexing.
	if fused.BranchPC != list[1].Addr {
		t.Errorf("fused BranchPC %#x, want %#x", fused.BranchPC, list[1].Addr)
	}
}

func TestNoFusionAcrossGap(t *testing.T) {
	// CMP and JCC that are not adjacent must not fuse.
	list := insts(func(b *asm.Builder) {
		b.Cmpi(isa.R1, 5)
		b.Nop(1)
		b.Jcc(isa.EQ, "x")
		b.Label("x")
		b.Halt()
	})
	plan := PlanRegion(Skylake(), list)
	for _, slot := range plan.Slots {
		for _, u := range slot {
			if u.Fused {
				t.Error("non-adjacent pair fused")
			}
		}
	}
}

func TestFusionDisabled(t *testing.T) {
	cfg := Skylake()
	cfg.MacroFusion = false
	list := insts(func(b *asm.Builder) {
		b.Cmpi(isa.R1, 5)
		b.Jcc(isa.EQ, "x")
		b.Label("x")
		b.Halt()
	})
	plan := PlanRegion(cfg, list)
	if plan.TotalUops() != 3 {
		t.Errorf("µops %d without fusion, want 3", plan.TotalUops())
	}
}

func TestDecodeWidthLimit(t *testing.T) {
	cfg := Skylake()
	list := insts(func(b *asm.Builder) {
		for i := 0; i < 10; i++ {
			b.Nop(1)
		}
	})
	plan := PlanRegion(cfg, list)
	// 10 simple µops at 5/cycle (1 complex + 4 simple decoders) need
	// exactly 2 decode cycles after predecode.
	decodeCycles := 0
	for _, slot := range plan.Slots {
		if len(slot) > 0 {
			decodeCycles++
			if len(slot) > cfg.DecodeWidth {
				t.Errorf("slot of %d µops exceeds width %d", len(slot), cfg.DecodeWidth)
			}
		}
	}
	if decodeCycles != 2 {
		t.Errorf("decode cycles %d, want 2", decodeCycles)
	}
}

func TestOneComplexDecoderPerCycle(t *testing.T) {
	list := insts(func(b *asm.Builder) {
		b.Call("a") // 2 µops: complex
		b.Label("a")
		b.Call("b") // 2 µops: complex — must take the next cycle
		b.Label("b")
		b.Halt()
	})
	plan := PlanRegion(Skylake(), list)
	for _, slot := range plan.Slots {
		complexOps := 0
		for _, u := range slot {
			if u.Index == 0 && u.Count > 1 {
				complexOps++
			}
		}
		if complexOps > 1 {
			t.Error("two complex macro-ops decoded in one cycle")
		}
	}
}

func TestLCPStalls(t *testing.T) {
	cfg := Skylake()
	plain := PlanRegion(cfg, insts(func(b *asm.Builder) { b.Nop(14); b.Nop(14) }))
	lcp := PlanRegion(cfg, insts(func(b *asm.Builder) { b.NopLCP(14); b.NopLCP(14) }))
	if lcp.LCPStalls != 2*cfg.LCPPenalty {
		t.Errorf("LCP stalls %d, want %d", lcp.LCPStalls, 2*cfg.LCPPenalty)
	}
	if lcp.Cycles() <= plain.Cycles() {
		t.Errorf("LCP plan (%d cycles) not slower than plain (%d)", lcp.Cycles(), plain.Cycles())
	}
}

func TestMSROMExclusive(t *testing.T) {
	cfg := Skylake()
	plan := PlanRegion(cfg, insts(func(b *asm.Builder) {
		b.Nop(1)
		b.Msrom(10)
		b.Nop(1)
	}))
	if plan.MSROMUops != 10 || plan.MITEUops != 2 {
		t.Errorf("MSROM %d MITE %d", plan.MSROMUops, plan.MITEUops)
	}
	// MSROM slots deliver at most MSROMWidth and never mix with
	// decoder output.
	for _, slot := range plan.Slots {
		ms, plainOps := 0, 0
		for _, u := range slot {
			if u.FromMSROM {
				ms++
			} else {
				plainOps++
			}
		}
		if ms > 0 && plainOps > 0 {
			t.Error("MSROM µops share a cycle with decoder µops")
		}
		if ms > cfg.MSROMWidth {
			t.Errorf("MSROM slot of %d exceeds width %d", ms, cfg.MSROMWidth)
		}
	}
}

func TestPredecodeCycles(t *testing.T) {
	cfg := Skylake()
	// 32 bytes of code = 2 predecode windows = 2 leading stall cycles.
	plan := PlanRegion(cfg, insts(func(b *asm.Builder) {
		b.Nop(15)
		b.Nop(15)
		b.Nop(2)
	}))
	leading := 0
	for _, slot := range plan.Slots {
		if len(slot) != 0 {
			break
		}
		leading++
	}
	if leading != 2 {
		t.Errorf("predecode stall cycles %d, want 2", leading)
	}
}

func TestMacrosForTraceBuilder(t *testing.T) {
	plan := PlanRegion(Skylake(), insts(func(b *asm.Builder) {
		b.Pause()
		b.Jmp("x")
		b.Label("x")
		b.Halt()
	}))
	if len(plan.Macros) != 3 {
		t.Fatalf("macros %d", len(plan.Macros))
	}
	if !plan.Macros[0].Uncacheable {
		t.Error("PAUSE not marked uncacheable")
	}
	if !plan.Macros[1].UncondJump || !plan.Macros[1].Branch {
		t.Error("JMP not classified")
	}
}

func TestEmptyPlan(t *testing.T) {
	plan := PlanRegion(Skylake(), nil)
	if plan.TotalUops() != 0 || plan.Cycles() != 0 {
		t.Errorf("empty plan %+v", plan)
	}
}

func TestZenConfig(t *testing.T) {
	cfg := Zen()
	// Zen's 1:2 decoders relegate 3+-µop instructions to microcode in
	// the real part; our model keeps them on the complex decoder but
	// the width limits still hold.
	plan := PlanRegion(cfg, insts(func(b *asm.Builder) {
		for i := 0; i < 8; i++ {
			b.Nop(1)
		}
	}))
	for _, slot := range plan.Slots {
		if len(slot) > cfg.DecodeWidth {
			t.Errorf("Zen slot %d exceeds width %d", len(slot), cfg.DecodeWidth)
		}
	}
}
