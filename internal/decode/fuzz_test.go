package decode

import (
	"reflect"
	"testing"

	"deaduops/internal/isa"
	"deaduops/internal/uopcache"
)

// fuzzInsts decodes a fuzz byte stream into the macro-ops of one
// region fetch: every byte pair picks an opcode flavour and a length,
// so arbitrary inputs map onto arbitrary (but well-formed) instruction
// sequences — the domain PlanRegion must handle totally.
func fuzzInsts(data []byte) []*isa.Inst {
	var insts []*isa.Inst
	addr := uint64(0x1000)
	for i := 0; i+1 < len(data) && len(insts) < 32; i += 2 {
		sel, ln := data[i], 1+int(data[i+1]%15)
		in := &isa.Inst{Addr: addr, Len: uint8(ln)}
		switch sel % 8 {
		case 0:
			in.Op = isa.NOP
		case 1:
			in.Op = isa.NOP
			in.LCP = true
		case 2:
			in.Op = isa.MOVI
			in.Dst = isa.R1
			in.Imm = int64(sel)
			in.HasImm = true
		case 3:
			in.Op = isa.MOVI
			in.Dst = isa.R2
			in.Imm = int64(sel)
			in.HasImm = true
			in.Imm64 = true // 64-bit immediate: two µop-cache slots
		case 4:
			in.Op = isa.CMP
			in.Dst = isa.R1
			in.Src = isa.R2
		case 5:
			in.Op = isa.JCC
			in.Cond = isa.NE
			in.Imm = int64(addr + 64)
		case 6:
			in.Op = isa.LOAD
			in.Dst = isa.R3
			in.Src = isa.R1
		case 7:
			in.Op = isa.MSROMOP
			in.UopCount = 5 + sel%64
		}
		insts = append(insts, in)
		addr += uint64(ln)
	}
	return insts
}

// FuzzPlanRegion holds the legacy-decode scheduler to its delivery
// invariants over arbitrary instruction sequences: the schedule is
// deterministic, the slot contents account for every micro-op exactly
// once, no slot beats the configured delivery widths, and the derived
// micro-op cache trace respects the placement rules.
func FuzzPlanRegion(f *testing.F) {
	f.Add([]byte{0x00, 0x0e, 0x01, 0x02})             // NOP, LCP NOP
	f.Add([]byte{0x04, 0x03, 0x05, 0x01})             // CMP, JCC (fusion pair)
	f.Add([]byte{0x07, 0x02, 0x00, 0x0e, 0x07, 0xff}) // MSROM heavy
	f.Add([]byte{0x03, 0x09, 0x03, 0x09, 0x03, 0x09}) // 64-bit immediates
	f.Fuzz(func(t *testing.T, data []byte) {
		insts := fuzzInsts(data)
		for _, cfg := range []Config{Skylake(), Zen()} {
			plan := PlanRegion(cfg, insts)
			if again := PlanRegion(cfg, insts); !reflect.DeepEqual(plan, again) {
				t.Fatalf("PlanRegion not deterministic for %d insts", len(insts))
			}
			slotUops := 0
			for _, s := range plan.Slots {
				if len(s) > cfg.DecodeWidth && len(s) > cfg.MSROMWidth {
					t.Fatalf("slot delivers %d µops, widths are %d/%d",
						len(s), cfg.DecodeWidth, cfg.MSROMWidth)
				}
				slotUops += len(s)
			}
			if slotUops != plan.TotalUops() {
				t.Fatalf("slots deliver %d µops, plan declares %d", slotUops, plan.TotalUops())
			}
			if len(insts) > 0 && plan.TotalUops() == 0 {
				t.Fatalf("%d macro-ops decoded to zero µops", len(insts))
			}
			if plan.LCPStalls > plan.Cycles() {
				t.Fatalf("LCP stalls %d exceed schedule length %d", plan.LCPStalls, plan.Cycles())
			}

			uc := uopcache.Skylake()
			tr := uopcache.BuildTrace(uc, 0x1000, 0, plan.Macros)
			if tr.Cacheable {
				if len(tr.Lines) > uc.MaxLinesPerRegion {
					t.Fatalf("cacheable trace uses %d lines, cap %d", len(tr.Lines), uc.MaxLinesPerRegion)
				}
				for _, l := range tr.Lines {
					if l.Slots > uc.SlotsPerLine {
						t.Fatalf("line holds %d slots, cap %d", l.Slots, uc.SlotsPerLine)
					}
				}
			}
		}
	})
}
