// Package decode models the legacy decode pipeline (Intel's MITE): the
// predecoder with its length-changing-prefix stalls, macro-op fusion,
// the 1:1 and 1:4 decoders, and the microcode sequencer (MSROM). It
// both expands macro-ops into executable micro-ops and produces the
// per-cycle delivery schedule whose variable latency is the timing
// signal the micro-op cache channel modulates.
package decode

import (
	"deaduops/internal/isa"
	"deaduops/internal/uopcache"
)

// Config parameterizes the decode pipeline.
type Config struct {
	// SimpleDecoders is the number of 1:1 decoders; one further
	// complex decoder handles macro-ops of up to ComplexUopMax
	// micro-ops. Skylake is 4 simple + 1 complex.
	SimpleDecoders int
	ComplexUopMax  int
	// DecodeWidth caps micro-ops delivered per cycle from the
	// decoders (5 on Skylake).
	DecodeWidth int
	// MSROMWidth is the microcode sequencer's delivery rate (4/cycle);
	// while the MSROM streams, the decoders are blocked.
	MSROMWidth int
	// LCPPenalty is the predecoder stall per length-changing prefix
	// (3-6 cycles on Skylake; we model the documented minimum).
	LCPPenalty int
	// PredecodeWindow is the fetch-buffer width in bytes (16).
	PredecodeWindow int
	// PredecodeWidth caps macro-ops extracted per cycle (6).
	PredecodeWidth int
	// MacroFusion enables compare+branch fusion.
	MacroFusion bool
	// JccAlignPenalty is the predecoder stall charged when a
	// conditional jump's bytes straddle a PredecodeWindow boundary: the
	// branch's last byte lands in the next fetch buffer, so the
	// predecoder cannot mark the branch until that buffer arrives and
	// the steering logic replays the window (the effect the Frontal
	// attack and "On Abnormal Execution Timing of Conditional Jump
	// Instructions" time on real Intel parts). Zero disables the model
	// (AMD's aligned-fetch frontend does not exhibit it). Like the LCP
	// penalty, the stall is MITE-only: a trace streamed from the
	// micro-op cache never touches the predecoder, which is exactly
	// what makes the alignment of a secret-dependent jump observable
	// through DSB hit/miss timing.
	JccAlignPenalty int
}

// Skylake returns the Skylake decode configuration.
func Skylake() Config {
	return Config{
		SimpleDecoders:  4,
		ComplexUopMax:   4,
		DecodeWidth:     5,
		MSROMWidth:      4,
		LCPPenalty:      3,
		PredecodeWindow: 16,
		PredecodeWidth:  6,
		MacroFusion:     true,
		JccAlignPenalty: 2,
	}
}

// Zen returns an AMD Zen-like decode configuration: four 1:2 decoders,
// microcode for anything wider than two micro-ops.
func Zen() Config {
	return Config{
		SimpleDecoders:  4,
		ComplexUopMax:   2,
		DecodeWidth:     8,
		MSROMWidth:      4,
		LCPPenalty:      3,
		PredecodeWindow: 16,
		PredecodeWidth:  4,
		MacroFusion:     true,
	}
}

// Expand decodes one macro-op into its micro-ops, carrying execution
// operands and micro-op cache slot costs.
func Expand(in *isa.Inst) []isa.Uop {
	n := in.Uops()
	uops := make([]isa.Uop, n)
	for i := range uops {
		u := &uops[i]
		u.Op = in.Op
		u.Index = uint8(i)
		u.Count = uint8(n)
		u.MacroAddr = in.Addr
		u.MacroLen = in.Len
		u.Slots = 1
		u.Dst = in.Dst
		u.Src = in.Src
		u.Imm = in.Imm
		u.Cond = in.Cond
		u.HasImm = in.HasImm
		u.FromMSROM = in.Microcoded()
		u.BranchPC = in.Addr
	}
	if in.Imm64 && n > 0 {
		// A 64-bit immediate consumes two micro-op slots.
		uops[0].Slots = 2
	}
	return uops
}

// fuse merges a CMP/TEST micro-op with the JCC that follows it into a
// single macro-fused micro-op. The fused micro-op carries the compare
// operands in the Fused* fields and the branch semantics in the main
// fields; it occupies one slot (§II-A).
func fuse(cmp, jcc *isa.Uop) isa.Uop {
	f := *jcc
	f.Fused = true
	f.FusedOp = cmp.Op
	f.Dst = cmp.Dst
	f.FusedSrc = cmp.Src
	f.FusedImm = cmp.Imm
	f.FusedHasImm = cmp.HasImm
	// The fused micro-op represents both macro-ops; it keeps the
	// compare's address so sequential streaming covers both, and the
	// combined length so fall-through lands after the branch.
	f.MacroAddr = cmp.MacroAddr
	f.MacroLen = uint8(jcc.MacroAddr + uint64(jcc.MacroLen) - cmp.MacroAddr)
	return f
}

// fusible reports whether a and b (adjacent macro-ops) macro-fuse.
func fusible(a, b *isa.Inst) bool {
	if a.Op != isa.CMP && a.Op != isa.TEST {
		return false
	}
	return b.Op == isa.JCC && a.End() == b.Addr
}

// RegionPlan is the decode schedule for the macro-ops of one code
// region when delivered by the legacy pipeline, plus the built
// macro-op groups the micro-op cache fill consumes.
type RegionPlan struct {
	// Slots holds one entry per decode cycle; empty entries are stall
	// cycles (LCP or predecode).
	Slots [][]isa.Uop
	// Macros are the decoded macro-op groups in order, for BuildTrace.
	Macros []uopcache.MacroUops
	// MITEUops/MSROMUops split delivery counts by source.
	MITEUops  int
	MSROMUops int
	// LCPStalls counts stall cycles charged to length-changing
	// prefixes.
	LCPStalls int
	// AlignStalls counts stall cycles charged to conditional jumps
	// whose bytes straddle a predecode-window boundary (see
	// Config.JccAlignPenalty); AlignJccs counts the straddling jumps
	// themselves.
	AlignStalls int
	AlignJccs   int
}

// TotalUops returns the micro-op count of the plan.
func (p *RegionPlan) TotalUops() int { return p.MITEUops + p.MSROMUops }

// Cycles returns the number of decode cycles the plan occupies.
func (p *RegionPlan) Cycles() int { return len(p.Slots) }

// JccStraddles reports whether in is a conditional jump whose encoded
// bytes cross a predecode-window boundary — the alignment that makes
// the legacy pipeline charge Config.JccAlignPenalty for it. A jump
// whose first byte is the last byte of a window straddles; one starting
// exactly on a boundary does not (its bytes sit wholly inside the new
// window).
func JccStraddles(cfg Config, in *isa.Inst) bool {
	if in.Op != isa.JCC || cfg.JccAlignPenalty <= 0 || cfg.PredecodeWindow <= 0 {
		return false
	}
	w := uint64(cfg.PredecodeWindow)
	return in.Addr/w != (in.End()-1)/w
}

// Macros returns a uopcache.PlanFunc that decodes one region fetch
// into its trace-builder macro-op groups (macro-fusion applied) under
// cfg — the adapter the static footprint analysis (uopcache.Footprint)
// uses to share this package's decode semantics with the simulator.
func Macros(cfg Config) uopcache.PlanFunc {
	return func(insts []*isa.Inst) []uopcache.MacroUops {
		return PlanRegion(cfg, insts).Macros
	}
}

// PlanRegion produces the legacy-decode schedule for insts, the
// in-order macro-ops of one region fetch (ending at the region's last
// instruction or its first unconditional jump).
func PlanRegion(cfg Config, insts []*isa.Inst) *RegionPlan {
	p := &RegionPlan{}
	if len(insts) == 0 {
		return p
	}

	// Predecode: extracting macro-ops from the fetch buffer costs one
	// cycle per PredecodeWindow bytes; each LCP stalls LCPPenalty
	// cycles. These appear as empty slots at the front (the decode
	// pipeline is idle while the predecoder refills the macro-op
	// queue). A real pipeline overlaps these stages; the model charges
	// them serially, which preserves the miss-penalty contract.
	bytes := 0
	for _, in := range insts {
		bytes += int(in.Len)
		if in.LCP {
			p.LCPStalls += cfg.LCPPenalty
		}
		if JccStraddles(cfg, in) {
			p.AlignJccs++
			p.AlignStalls += cfg.JccAlignPenalty
		}
	}
	preCycles := (bytes+cfg.PredecodeWindow-1)/cfg.PredecodeWindow + p.LCPStalls + p.AlignStalls
	// Pre-size the schedule: at most one decode slot per macro-op on
	// top of the predecode stalls.
	p.Slots = make([][]isa.Uop, 0, preCycles+len(insts))
	for i := 0; i < preCycles; i++ {
		p.Slots = append(p.Slots, nil)
	}

	// Expand with macro-fusion.
	type macro struct {
		uops  []isa.Uop
		inst  *isa.Inst
		fused bool
	}
	macros := make([]macro, 0, len(insts))
	for i := 0; i < len(insts); i++ {
		in := insts[i]
		if cfg.MacroFusion && i+1 < len(insts) && fusible(in, insts[i+1]) {
			cu := Expand(in)
			ju := Expand(insts[i+1])
			macros = append(macros, macro{
				uops:  []isa.Uop{fuse(&cu[0], &ju[0])},
				inst:  insts[i+1], // branch macro-op carries the pair
				fused: true,
			})
			i++
			continue
		}
		macros = append(macros, macro{uops: Expand(in), inst: in})
	}

	// Decode: per cycle up to DecodeWidth micro-ops from at most
	// 1 complex + SimpleDecoders simple macro-ops; microcoded
	// macro-ops stream exclusively from the MSROM at MSROMWidth/cycle.
	var cur []isa.Uop
	curMacros := 0
	usedComplex := false
	flush := func() {
		if len(cur) > 0 {
			p.Slots = append(p.Slots, cur)
		}
		cur = nil
		curMacros = 0
		usedComplex = false
	}
	for mi := range macros {
		m := &macros[mi]
		if m.inst.Microcoded() {
			flush()
			for off := 0; off < len(m.uops); off += cfg.MSROMWidth {
				end := off + cfg.MSROMWidth
				if end > len(m.uops) {
					end = len(m.uops)
				}
				slot := make([]isa.Uop, end-off)
				copy(slot, m.uops[off:end])
				p.Slots = append(p.Slots, slot)
				p.MSROMUops += end - off
			}
			continue
		}
		complexOp := len(m.uops) > 1
		if complexOp && usedComplex ||
			curMacros >= cfg.SimpleDecoders+1 ||
			len(cur)+len(m.uops) > cfg.DecodeWidth {
			flush()
		}
		cur = append(cur, m.uops...)
		curMacros++
		if complexOp {
			usedComplex = true
		}
		p.MITEUops += len(m.uops)
	}
	flush()

	// Macro groups for the micro-op cache fill.
	p.Macros = make([]uopcache.MacroUops, 0, len(macros))
	for mi := range macros {
		m := &macros[mi]
		p.Macros = append(p.Macros, uopcache.MacroUops{
			Addr:        m.uops[0].MacroAddr,
			Len:         m.uops[0].MacroLen,
			Uops:        m.uops,
			Microcoded:  m.inst.Microcoded(),
			Uncacheable: m.inst.Op == isa.PAUSE,
			UncondJump:  m.inst.IsUncondJump(),
			Branch:      m.inst.IsBranch(),
		})
	}
	return p
}
