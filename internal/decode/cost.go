package decode

import (
	"deaduops/internal/isa"
	"deaduops/internal/uopcache"
)

// CostTable is the single source of front-end delivery-cost parameters
// shared between the cycle-level simulator (internal/frontend) and the
// static leakage quantifier (internal/staticlint). Both sides price a
// fetch with the same numbers, so the predictor and the model cannot
// drift apart on constants — the contract the differential harness
// (internal/staticlint/difftest) continuously re-checks.
type CostTable struct {
	// Decode supplies the legacy-pipeline schedule (predecode window,
	// LCP penalty, decoder widths, MSROM rate, macro-fusion).
	Decode Config
	// Cache supplies the placement rules, the DSB stream width, and the
	// DSB→MITE switch penalty.
	Cache uopcache.Config
	// DrainWidth caps sustained micro-op consumption at the backend's
	// dispatch width: a DSB stream wider than the backend drains only
	// fills the IDQ, so steady-state warm delivery is drain-bound.
	// Zero leaves warm delivery capped by the stream width alone.
	DrainWidth int
	// DrainLag is the pipeline-depth surcharge a drain-bound run pays:
	// the retire stream trails dispatch by the machine's fill depth, so
	// a warm run whose critical path is the backend ends that many
	// cycles after the drain bound alone predicts. A fetch-bound (cold)
	// run hides the same depth inside its delivery schedule, so the lag
	// appears only on the warm side of a refill delta. The value is
	// calibrated against the cycle-level pipeline and continuously
	// re-validated by internal/staticlint/difftest.
	DrainLag int
	// RunOverhead is the constant start/stop cost of one complete run
	// on the modelled core: the first fetch's spin-up plus the final
	// HALT's retire, cycles a pure delivery schedule omits. It appears
	// identically on the warm and cold sides of a run, so it cancels
	// out of every refill delta; whole-run pricing adds it so absolute
	// predicted run cycles line up with what the simulator's cycle
	// counter reports. Calibrated against internal/cpu and continuously
	// re-validated by internal/staticlint/difftest.
	RunOverhead int
}

// NewCostTable builds the shared table from the two model configs.
func NewCostTable(d Config, u uopcache.Config) CostTable {
	return CostTable{Decode: d, Cache: u}
}

// SwitchPenalty returns the DSB→MITE transition stall in cycles.
func (t CostTable) SwitchPenalty() int { return t.Cache.SwitchPenalty }

// StreamWidth returns the DSB delivery rate in µops per cycle.
func (t CostTable) StreamWidth() int { return t.Cache.StreamWidth }

// RegionCost prices one fetch segment — the macro-ops of a single
// (region, entry) micro-op cache trace.
type RegionCost struct {
	// Uops is the decoded micro-op count of the segment.
	Uops int
	// ColdCycles is the front-end cost of fetching the segment with its
	// trace absent from the micro-op cache: one fetch cycle to probe
	// the DSB and plan the legacy schedule, the DSB→MITE switch
	// penalty, then one cycle per schedule slot (predecode and LCP
	// stalls appear as empty slots).
	ColdCycles int
	// WarmCycles is the front-end cost of streaming the segment's trace
	// out of the micro-op cache (uops at the DSB stream width). For an
	// uncacheable segment it equals ColdCycles: MITE delivers it on
	// every traversal.
	WarmCycles int
	// LCPStallCycles and MSROMUops break out the MITE amplifiers
	// contributing to ColdCycles.
	LCPStallCycles int
	MSROMUops      int
	// AlignStallCycles breaks out the predecoder stalls charged to
	// conditional jumps straddling a predecode-window boundary
	// (Config.JccAlignPenalty); AlignJccs counts those jumps. Like LCP
	// stalls they are paid only under legacy decode, so a
	// secret-dependent difference in jump alignment widens the
	// hit/miss asymmetry a receiver times.
	AlignStallCycles int
	AlignJccs        int
	// Cacheable is false when the placement rules reject the region
	// (Reason says why); such a segment has no hit/miss asymmetry.
	Cacheable bool
	Reason    string
}

// RefillDelta is the per-traversal probe-cycle penalty of finding this
// segment's trace evicted: the quantity a prime+probe receiver times.
func (c RegionCost) RefillDelta() int { return c.ColdCycles - c.WarmCycles }

// Region prices the fetch segment insts entered at region+entry. The
// schedule comes from PlanRegion — the very object the simulator
// executes slot by slot on a miss — so the cold cost is the modelled
// miss cost, not an approximation of it.
func (t CostTable) Region(region uint64, entry uint8, insts []*isa.Inst) RegionCost {
	plan := PlanRegion(t.Decode, insts)
	tr := uopcache.BuildTrace(t.Cache, region, entry, plan.Macros)
	c := RegionCost{
		Uops:             plan.TotalUops(),
		ColdCycles:       1 + t.Cache.SwitchPenalty + plan.Cycles(),
		LCPStallCycles:   plan.LCPStalls,
		MSROMUops:        plan.MSROMUops,
		AlignStallCycles: plan.AlignStalls,
		AlignJccs:        plan.AlignJccs,
		Cacheable:        tr.Cacheable,
		Reason:           tr.Reason,
	}
	if c.Cacheable {
		c.WarmCycles = t.StreamCycles(c.Uops)
	} else {
		c.WarmCycles = c.ColdCycles
	}
	return c
}

// StreamCycles returns the cycles the DSB needs to deliver uops µops
// of one trace (delivery starts the same cycle the lookup hits).
func (t CostTable) StreamCycles(uops int) int {
	return ceilDiv(uops, t.Cache.StreamWidth)
}

// DrainCycles returns the backend-side lower bound on consuming uops
// µops (zero when no DrainWidth is configured). Over a multi-segment
// path the warm front end is bursty but the backend drains steadily,
// so the path's warm cost is the max of the summed stream cycles and
// this bound.
func (t CostTable) DrainCycles(uops int) int {
	if t.DrainWidth <= 0 {
		return 0
	}
	return ceilDiv(uops, t.DrainWidth)
}

// DrainBound returns the full backend-side lower bound on a warm path
// of uops µops: the drain cycles plus the pipeline-fill lag (zero when
// no DrainWidth is configured).
func (t CostTable) DrainBound(uops int) int {
	if t.DrainWidth <= 0 {
		return 0
	}
	return ceilDiv(uops, t.DrainWidth) + t.DrainLag
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		b = 1
	}
	return (a + b - 1) / b
}

// RunRace models the per-cycle race between front-end delivery and
// the backend drain across one complete run. The per-segment sums
// above are exact while delivery never outruns the drain width, but a
// run containing dense legacy-delivered stretches — e.g. uncacheable
// regions of single-byte macro-ops, decoded at DecodeWidth micro-ops
// per cycle against a narrower drain — leaves micro-ops queued in the
// IDQ when delivery ends, and the run retires that backlog after the
// last fetch: a tail no per-segment sum can see. RunRace replays the
// delivery schedule cycle for cycle against a DrainWidth-wide
// consumer, so the tail (and any mid-run catch-up during switch
// bubbles) is priced exactly. With no DrainWidth configured the race
// degenerates to the plain delivery-cycle count.
type RunRace struct {
	t      CostTable
	queue  int
	cycles int
}

// NewRunRace starts a race priced with t's widths.
func (t CostTable) NewRunRace() *RunRace { return &RunRace{t: t} }

// step advances one cycle delivering n micro-ops into the queue and
// draining up to the drain width out of it.
func (r *RunRace) step(n int) {
	r.cycles++
	r.queue += n
	d := r.t.DrainWidth
	if d <= 0 {
		r.queue = 0
		return
	}
	if d > r.queue {
		d = r.queue
	}
	r.queue -= d
}

// Stream delivers one resident trace of uops micro-ops out of the
// micro-op cache at the stream width. A hit costs no bubble: delivery
// starts on the probe cycle itself.
func (r *RunRace) Stream(uops int) {
	for uops > 0 {
		n := r.t.StreamWidth()
		if n > uops {
			n = uops
		}
		r.step(n)
		uops -= n
	}
}

// MITE prices one legacy-delivered segment: the DSB probe cycle, the
// switch-penalty stall, then the plan's slot schedule cycle for cycle
// (predecode and LCP stalls are its empty slots).
func (r *RunRace) MITE(plan *RegionPlan) {
	r.step(0)
	for i := 0; i < r.t.Cache.SwitchPenalty; i++ {
		r.step(0)
	}
	for _, slot := range plan.Slots {
		r.step(len(slot))
	}
}

// Finish drains the remaining queue and returns the run's total
// front-end-plus-drain cycles.
func (r *RunRace) Finish() int {
	for r.queue > 0 {
		r.step(0)
	}
	return r.cycles
}
