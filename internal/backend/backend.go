// Package backend models a simplified out-of-order execution engine:
// register renaming via dataflow dependencies, latency-accurate loads
// against the cache hierarchy, in-order retirement, branch resolution
// with squash, and the fence semantics the transient-execution attacks
// probe — LFENCE blocks issue of younger micro-ops but not fetch, while
// CPUID serializes fetch itself.
package backend

import (
	"deaduops/internal/bpu"
	"deaduops/internal/frontend"
	"deaduops/internal/isa"
	"deaduops/internal/mem"
	"deaduops/internal/perfctr"
)

// Memory is the guest data memory the backend loads from and stores to.
type Memory interface {
	Read(addr uint64, size int) int64
	Write(addr uint64, size int, v int64)
}

// Config parameterizes the backend.
type Config struct {
	ROBSize       int
	DispatchWidth int // µops renamed/allocated per cycle
	RetireWidth   int // µops retired per cycle
	ExecPorts     int // µops issued to execution per cycle
	// MispredictPenalty is the fixed redirect bubble on a squash, on
	// top of the natural refetch latency.
	MispredictPenalty int
	// InvisibleSpeculation models the §VII invisible-speculation
	// defenses (InvisiSpec, SafeSpec, …): speculative loads read their
	// value without updating the cache hierarchy; the fill happens only
	// at retirement. Squashed loads therefore leave no data-cache
	// footprint — which kills classic Spectre-v1's disclosure primitive
	// but, as the paper shows, not the micro-op cache's.
	InvisibleSpeculation bool
	// KernelEntry is the SYSCALL target address.
	KernelEntry uint64
	// StackTop initializes R15 (the modelled stack pointer).
	StackTop uint64
}

// DefaultConfig returns a Skylake-like backend.
func DefaultConfig() Config {
	return Config{
		ROBSize:           224,
		DispatchWidth:     4,
		RetireWidth:       4,
		ExecPorts:         8,
		MispredictPenalty: 5,
	}
}

// entry is one in-flight micro-op.
type entry struct {
	uop isa.Uop
	// seq is the entry's allocation number, monotonically increasing in
	// dispatch order. The entry pool uses it to decide when a retired
	// producer can no longer be referenced by any in-flight consumer.
	seq uint64

	// dataflow sources; nil when the operand comes from the
	// architectural register file at dispatch time.
	src1, src2, flagSrc, chain *entry
	// captured architectural operand values (valid when the matching
	// src pointer is nil).
	v1, v2  int64
	inFlags isa.Flags

	issued  bool
	done    bool
	readyAt uint64 // cycle the result becomes available

	// results
	val      int64
	outFlags isa.Flags
	wrFlags  bool
	memAddr  uint64
	memSize  int

	// branch resolution
	taken    bool
	target   uint64
	resolved bool
}

func (e *entry) writesReg() (isa.Reg, bool) {
	switch e.uop.Op {
	case isa.MOVI, isa.MOV, isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.LOAD, isa.LOADB:
		return e.uop.Dst, e.uop.Dst != isa.NoReg
	case isa.RDTSC:
		if e.uop.Index == 0 {
			return e.uop.Dst, e.uop.Dst != isa.NoReg
		}
	case isa.CALL, isa.CALLI:
		if e.uop.Index == 0 {
			return isa.R15, true // push decrements the stack pointer
		}
	case isa.RET:
		if e.uop.Index == 1 {
			return isa.R15, true
		}
	}
	return isa.NoReg, false
}

func (e *entry) writesFlags() bool {
	if e.uop.Fused {
		return true
	}
	switch e.uop.Op {
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
		isa.CMP, isa.TEST:
		return true
	}
	return false
}

// Backend is one hardware thread's execution engine.
type Backend struct {
	cfg  Config
	fe   *frontend.FrontEnd
	bp   *bpu.BPU
	hier *mem.Hierarchy
	gmem Memory
	ctr  *perfctr.Counters

	rob      []*entry
	regProd  [isa.NumRegs]*entry
	flagProd *entry

	// Entry pool. Dataflow references only ever point from younger
	// entries to older ones (captureSources reads regProd/flagProd/the
	// previous ROB slot), and consumers read retired producers lazily
	// (depVal at issue time), so a retired entry must outlive every
	// entry dispatched before it retired. The graveyard parks retired
	// entries stamped with the allocation watermark at retirement
	// (freeAt); once the oldest live entry's seq reaches that watermark
	// no referencer can remain and the entry moves to the free list.
	// Squashed entries skip the graveyard: their only possible
	// referencers are younger entries squashed with them.
	seq    uint64     // next allocation number
	free   []*entry   // recycled entries ready for reuse
	grave  []graveRec // retired entries awaiting their watermark
	popBuf []isa.Uop  // reusable IDQ pop buffer (DispatchWidth)

	regs  [isa.NumRegs]int64
	flags isa.Flags

	kernelMode bool
	sysRet     []uint64

	// OnPrivilegeSwitch, if set, fires at every retired privilege
	// transition (mitigation hooks: flush or re-partition the micro-op
	// cache at domain crossings).
	OnPrivilegeSwitch func(kernel bool)
	// OnRetire, if set, observes every retired micro-op (tracing).
	OnRetire func(cycle uint64, u isa.Uop)
	// OnSquash, if set, observes every pipeline squash with the
	// redirect target (tracing).
	OnSquash func(cycle uint64, target uint64)

	cycle  uint64
	halted bool
	// retired counts retired macro-ops (fused pairs count as two).
	retired uint64
}

// graveRec parks one retired entry until the allocation watermark
// guarantees no in-flight consumer can still reference it.
type graveRec struct {
	e      *entry
	freeAt uint64
}

// New builds a backend for one hardware thread.
func New(cfg Config, fe *frontend.FrontEnd, bp *bpu.BPU, hier *mem.Hierarchy, gmem Memory, ctr *perfctr.Counters) *Backend {
	b := &Backend{cfg: cfg, fe: fe, bp: bp, hier: hier, gmem: gmem, ctr: ctr}
	b.regs[isa.R15] = int64(cfg.StackTop)
	// Pre-size the ROB, the entry pool, and the dispatch pop buffer so
	// the steady-state cycle loop never grows any of them.
	b.rob = make([]*entry, 0, cfg.ROBSize)
	b.free = make([]*entry, 0, cfg.ROBSize)
	b.grave = make([]graveRec, 0, cfg.ROBSize)
	b.popBuf = make([]isa.Uop, cfg.DispatchWidth)
	return b
}

// newEntry takes an entry from the free list (or allocates one) and
// stamps it with the next sequence number.
func (b *Backend) newEntry(u isa.Uop) *entry {
	var e *entry
	if n := len(b.free); n > 0 {
		e = b.free[n-1]
		b.free = b.free[:n-1]
		*e = entry{}
	} else {
		e = new(entry)
	}
	e.uop = u
	e.seq = b.seq
	b.seq++
	return e
}

// Reset prepares the backend to run from a clean architectural state at
// entry. Register and memory contents persist (the attacks depend on
// persistent microarchitectural and memory state between runs).
func (b *Backend) Reset(pc uint64) {
	// Recycle every in-flight and parked entry: nothing outside the
	// backend holds entry pointers, so a reset drains both pools.
	b.free = append(b.free, b.rob...)
	for i := range b.grave {
		b.free = append(b.free, b.grave[i].e)
	}
	b.grave = b.grave[:0]
	b.rob = b.rob[:0]
	b.regProd = [isa.NumRegs]*entry{}
	b.flagProd = nil
	b.halted = false
	b.fe.Redirect(pc)
}

// Halted reports whether the thread has retired a HALT.
func (b *Backend) Halted() bool { return b.halted }

// Reg returns the architectural value of r.
func (b *Backend) Reg(r isa.Reg) int64 { return b.regs[r] }

// SetReg sets the architectural value of r.
func (b *Backend) SetReg(r isa.Reg, v int64) { b.regs[r] = v }

// Retired returns retired macro-op count.
func (b *Backend) Retired() uint64 { return b.retired }

// KernelMode reports the current privilege level.
func (b *Backend) KernelMode() bool { return b.kernelMode }

// State is the backend state that persists between runs: architectural
// registers and flags, privilege mode, the syscall return stack, the
// retired-macro-op count, and the entry-pool sequence watermark.
// In-flight ROB contents are deliberately absent — checkpoints are
// taken between runs, where Reset discards them anyway.
type State struct {
	Regs       [isa.NumRegs]int64
	Flags      isa.Flags
	KernelMode bool
	SysRet     []uint64
	Seq        uint64
	Retired    uint64
	Halted     bool
}

// Save deep-copies the persistent backend state into s, reusing s's
// buffers.
func (b *Backend) Save(s *State) {
	s.Regs = b.regs
	s.Flags = b.flags
	s.KernelMode = b.kernelMode
	s.SysRet = append(s.SysRet[:0], b.sysRet...)
	s.Seq = b.seq
	s.Retired = b.retired
	s.Halted = b.halted
}

// Restore rehydrates the persistent backend state from s, draining any
// in-flight and parked entries back to the pool (exactly as Reset
// does) so the backend sits in the quiescent between-runs position.
func (b *Backend) Restore(s *State) {
	b.free = append(b.free, b.rob...)
	for i := range b.grave {
		b.free = append(b.free, b.grave[i].e)
	}
	b.grave = b.grave[:0]
	b.rob = b.rob[:0]
	b.regProd = [isa.NumRegs]*entry{}
	b.flagProd = nil
	b.regs = s.Regs
	b.flags = s.Flags
	b.kernelMode = s.KernelMode
	b.sysRet = append(b.sysRet[:0], s.SysRet...)
	b.seq = s.Seq
	b.retired = s.Retired
	b.halted = s.Halted
}

// Tick advances the backend one cycle: retire, execute, then dispatch
// (reverse pipeline order so a micro-op spends at least a cycle in each
// stage).
func (b *Backend) Tick(cycle uint64) {
	b.cycle = cycle
	if b.halted {
		return
	}
	b.retire()
	b.resolveBranches()
	b.execute()
	b.dispatch()
}

// SkipBound returns how many upcoming cycles of Tick (called with
// cycle+1, cycle+2, …) are provably no-ops, so the core can advance
// the clock over them in one step. ^uint64(0) means the backend is
// idle until the front end delivers; 0 means the next Tick may retire,
// resolve, complete, issue, or dispatch and must run for real.
//
// The proof obligation: inside the returned window no entry completes
// (the bound ends strictly before the earliest readyAt), so nothing
// retires, no branch resolves, no dependency becomes ready, fences
// stay standing, and stores stay undrained — every blocked micro-op
// stays blocked for exactly the window.
func (b *Backend) SkipBound(cycle uint64) uint64 {
	const unbounded = ^uint64(0)
	if b.halted {
		return unbounded
	}
	if len(b.rob) == 0 {
		if b.fe.IDQLen() > 0 {
			return 0 // dispatch would rename into the empty ROB
		}
		return unbounded
	}
	if b.rob[0].done {
		return 0 // retire (or branch resolution) acts on the head
	}
	if b.fe.IDQLen() > 0 && len(b.rob) < b.cfg.ROBSize {
		return 0 // dispatch has both micro-ops and ROB room
	}
	bound := unbounded
	lfIdx := b.lfenceBlockIndex()
	fenced := false // a ready serializing micro-op blocks all younger issue
	for i, e := range b.rob {
		if e.done {
			if e.uop.IsBranch() && !e.resolved {
				return 0 // resolveBranches acts
			}
			continue
		}
		if e.issued {
			if e.readyAt <= cycle+1 {
				return 0 // completes on the very next Tick
			}
			if w := e.readyAt - cycle - 1; w < bound {
				bound = w
			}
			continue
		}
		// Unissued. It is window-inert only if blocked by a condition
		// that can change solely through a completion or retirement —
		// both excluded inside the window.
		if fenced {
			continue
		}
		if lfIdx >= 0 && i > lfIdx {
			continue // behind an in-flight LFENCE
		}
		if !depReady(e.src1) || !depReady(e.src2) ||
			!depReady(e.flagSrc) || !depReady(e.chain) {
			continue // waiting on an in-flight producer
		}
		switch e.uop.Op {
		case isa.LFENCE, isa.SYSRET, isa.ITLBFLUSH:
			if i > 0 {
				// Serializing: waits to reach the ROB head, which takes a
				// retirement; execute's issue loop breaks here, so every
				// younger micro-op is blocked with it.
				fenced = true
				continue
			}
		}
		if isLoad(&e.uop) && b.olderStorePending(i) {
			continue // stores drain only at retire
		}
		return 0 // ready to issue next Tick
	}
	return bound
}

// lfenceBlockIndex returns the ROB index of the oldest unretired LFENCE
// (micro-ops younger than it may not issue), or -1.
func (b *Backend) lfenceBlockIndex() int {
	for i, e := range b.rob {
		if e.uop.Op == isa.LFENCE && !e.done {
			return i
		}
	}
	return -1
}

// dispatch renames micro-ops from the IDQ into the ROB.
func (b *Backend) dispatch() {
	room := b.cfg.ROBSize - len(b.rob)
	n := b.cfg.DispatchWidth
	if n > room {
		n = room
	}
	if n <= 0 {
		return
	}
	got := b.fe.PopInto(b.popBuf[:n])
	for _, u := range b.popBuf[:got] {
		e := b.newEntry(u)
		b.captureSources(e)
		if prev := len(b.rob) - 1; prev >= 0 && u.Index > 0 &&
			b.rob[prev].uop.MacroAddr == u.MacroAddr {
			// Intra-macro-op chaining (e.g. RET's branch consumes the
			// popped return address).
			e.chain = b.rob[prev]
		}
		b.rob = append(b.rob, e)
		if r, ok := e.writesReg(); ok {
			b.regProd[r] = e
		}
		if e.writesFlags() {
			b.flagProd = e
		}
	}
}

// captureSources records e's dataflow dependencies, or captures the
// architectural values if no in-flight producer exists.
func (b *Backend) captureSources(e *entry) {
	u := &e.uop
	readReg := func(r isa.Reg) (*entry, int64) {
		if r == isa.NoReg {
			return nil, 0
		}
		if p := b.regProd[r]; p != nil {
			return p, 0
		}
		return nil, b.regs[r]
	}
	src2reg := u.Src
	if u.Fused {
		src2reg = u.FusedSrc
		if u.FusedHasImm {
			src2reg = isa.NoReg
		}
	} else if u.HasImm {
		src2reg = isa.NoReg
	}
	switch u.Op {
	case isa.MOVI, isa.JMP, isa.NOP, isa.LFENCE, isa.CPUID, isa.PAUSE,
		isa.RDTSC, isa.MSROMOP, isa.HALT, isa.SYSCALL, isa.SYSRET,
		isa.ITLBFLUSH:
		// No register sources.
	case isa.MOV:
		e.src1, e.v1 = readReg(u.Src)
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR:
		e.src1, e.v1 = readReg(u.Dst)
		e.src2, e.v2 = readReg(src2reg)
	case isa.CMP, isa.TEST:
		e.src1, e.v1 = readReg(u.Dst)
		e.src2, e.v2 = readReg(src2reg)
	case isa.JCC:
		if u.Fused {
			e.src1, e.v1 = readReg(u.Dst)
			e.src2, e.v2 = readReg(src2reg)
		} else if b.flagProd != nil {
			e.flagSrc = b.flagProd
		} else {
			e.inFlags = b.flags
		}
	case isa.JMPI:
		e.src1, e.v1 = readReg(u.Dst)
	case isa.CALLI:
		if u.Index == 0 {
			e.src1, e.v1 = readReg(isa.R15) // push uses the stack pointer
		} else {
			e.src1, e.v1 = readReg(u.Dst)
		}
	case isa.LOAD, isa.LOADB, isa.CLFLUSH:
		e.src1, e.v1 = readReg(u.Src)
	case isa.STORE, isa.STOREB:
		e.src1, e.v1 = readReg(u.Src) // base
		e.src2, e.v2 = readReg(u.Dst) // data
	case isa.CALL:
		if u.Index == 0 {
			e.src1, e.v1 = readReg(isa.R15)
		}
	case isa.RET:
		e.src1, e.v1 = readReg(isa.R15)
	}
}

func isLoad(u *isa.Uop) bool {
	switch u.Op {
	case isa.LOAD, isa.LOADB:
		return true
	case isa.RET:
		return u.Index == 0 // the return-address pop
	}
	return false
}

func isStore(u *isa.Uop) bool {
	switch u.Op {
	case isa.STORE, isa.STOREB:
		return true
	case isa.CALL, isa.CALLI:
		return u.Index == 0 // the return-address push
	}
	return false
}

// olderStorePending reports whether any ROB entry older than index i is
// an unretired store.
func (b *Backend) olderStorePending(i int) bool {
	for j := 0; j < i; j++ {
		if isStore(&b.rob[j].uop) {
			return true
		}
	}
	return false
}

func depReady(d *entry) bool { return d == nil || d.done }

func depVal(d *entry, captured int64) int64 {
	if d != nil {
		return d.val
	}
	return captured
}

// execute issues ready micro-ops to execution and completes in-flight
// ones.
func (b *Backend) execute() {
	lfIdx := b.lfenceBlockIndex()
	ports := b.cfg.ExecPorts
issueLoop:
	for i, e := range b.rob {
		if e.done {
			continue
		}
		if e.issued {
			if b.cycle >= e.readyAt {
				e.done = true
			}
			continue
		}
		if ports == 0 {
			break
		}
		if lfIdx >= 0 && i > lfIdx {
			// LFENCE: younger micro-ops are not dispatched to
			// execution until it completes. (They were still fetched
			// and decoded — the variant-2 channel.)
			break
		}
		if !depReady(e.src1) || !depReady(e.src2) ||
			!depReady(e.flagSrc) || !depReady(e.chain) {
			continue
		}
		switch e.uop.Op {
		case isa.LFENCE, isa.SYSRET, isa.ITLBFLUSH:
			// Serializing: execute only once all older micro-ops have
			// drained (SYSRET must observe the SYSCALL-pushed return
			// address, which lands at retirement).
			if i > 0 {
				break issueLoop
			}
		}
		if isLoad(&e.uop) && b.olderStorePending(i) {
			// Stores commit memory at retire; a younger load must wait
			// for older stores to drain (conservative memory ordering
			// in place of store-to-load forwarding).
			continue
		}
		ports--
		b.issue(e)
	}
}

// issue starts execution of e, computing its result and latency.
func (b *Backend) issue(e *entry) {
	e.issued = true
	u := &e.uop
	lat := uint64(1)
	v1 := depVal(e.src1, e.v1)
	v2 := depVal(e.src2, e.v2)

	switch u.Op {
	case isa.NOP, isa.LFENCE, isa.PAUSE, isa.MSROMOP, isa.HALT,
		isa.CPUID, isa.ITLBFLUSH:
		// No result. PAUSE has a longer occupancy.
		if u.Op == isa.PAUSE {
			lat = 10
		}
	case isa.MOVI:
		e.val = u.Imm
	case isa.MOV:
		e.val = v1
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR:
		rhs := v2
		if u.HasImm {
			rhs = u.Imm
		}
		e.val, e.outFlags = aluOp(u.Op, v1, rhs)
		e.wrFlags = true
	case isa.CMP, isa.TEST:
		rhs := v2
		if u.HasImm {
			rhs = u.Imm
		}
		op := isa.SUB
		if u.Op == isa.TEST {
			op = isa.AND
		}
		_, e.outFlags = aluOp(op, v1, rhs)
		e.wrFlags = true
	case isa.JMP:
		e.taken = true
		e.target = uint64(u.Imm)
	case isa.JCC:
		fl := e.inFlags
		if u.Fused {
			rhs := v2
			if u.FusedHasImm {
				rhs = u.FusedImm
			}
			op := isa.SUB
			if u.FusedOp == isa.TEST {
				op = isa.AND
			}
			_, fl = aluOp(op, v1, rhs)
			e.outFlags = fl
			e.wrFlags = true
		} else if e.flagSrc != nil {
			fl = e.flagSrc.outFlags
		}
		e.taken = u.Cond.Eval(fl)
		e.target = uint64(u.Imm)
	case isa.JMPI:
		e.taken = true
		e.target = uint64(v1)
	case isa.LOAD, isa.LOADB:
		e.memAddr = uint64(v1 + u.Imm)
		e.memSize = 8
		if u.Op == isa.LOADB {
			e.memSize = 1
		}
		if b.cfg.InvisibleSpeculation {
			// Invisible speculation: probe the latency without filling
			// any cache level; the visible fill happens at retirement.
			lat = uint64(b.hier.PeekDataLatency(e.memAddr))
		} else {
			lat = uint64(b.hier.AccessData(e.memAddr))
		}
		e.val = b.gmem.Read(e.memAddr, e.memSize)
	case isa.STORE, isa.STOREB:
		e.memAddr = uint64(v1 + u.Imm)
		e.memSize = 8
		if u.Op == isa.STOREB {
			e.memSize = 1
		}
		e.val = v2
		lat = 1 // the write itself lands at retire
	case isa.CLFLUSH:
		e.memAddr = uint64(v1 + u.Imm)
	case isa.RDTSC:
		if u.Index == 0 {
			e.val = int64(b.cycle)
		}
	case isa.CALL, isa.CALLI:
		if u.Index == 0 {
			e.val = v1 - 8 // new stack pointer
			e.memAddr = uint64(v1 - 8)
			e.memSize = 8
		} else {
			e.taken = true
			if u.Op == isa.CALL {
				e.target = uint64(u.Imm)
			} else {
				e.target = uint64(v1)
			}
		}
	case isa.RET:
		if u.Index == 0 {
			// Pop: load the return address into the chain temp.
			e.memAddr = uint64(v1)
			e.memSize = 8
			lat = uint64(b.hier.AccessData(e.memAddr))
			e.val = b.gmem.Read(e.memAddr, 8)
		} else {
			// Branch to the popped address; bump the stack pointer.
			e.taken = true
			e.target = uint64(depVal(e.chain, 0))
			e.val = v1 + 8
		}
	case isa.SYSCALL:
		if u.Index == u.Count-1 {
			e.taken = true
			e.target = b.cfg.KernelEntry
		}
	case isa.SYSRET:
		e.taken = true
		if n := len(b.sysRet); n > 0 {
			e.target = b.sysRet[n-1]
		}
	}
	e.readyAt = b.cycle + lat
	if lat == 0 {
		e.done = true
	}
}

// aluOp computes v = a op b and the resulting flags.
func aluOp(op isa.Op, a, bv int64) (int64, isa.Flags) {
	var v int64
	var f isa.Flags
	switch op {
	case isa.ADD:
		v = a + bv
	case isa.SUB:
		v = a - bv
		f.Carry = uint64(a) < uint64(bv)
	case isa.AND:
		v = a & bv
	case isa.OR:
		v = a | bv
	case isa.XOR:
		v = a ^ bv
	case isa.SHL:
		v = a << (uint64(bv) & 63)
	case isa.SHR:
		v = int64(uint64(a) >> (uint64(bv) & 63))
	}
	f.Zero = v == 0
	f.Sign = v < 0
	return v, f
}

// resolveBranches checks completed branch micro-ops oldest-first and
// squashes on the first misprediction found.
func (b *Backend) resolveBranches() {
	for i, e := range b.rob {
		if !e.done || e.resolved || !e.uop.IsBranch() {
			continue
		}
		e.resolved = true
		u := &e.uop
		actualNext := u.FallThrough()
		if e.taken {
			actualNext = e.target
		}
		predNext := u.FallThrough()
		if u.PredTaken {
			predNext = u.PredTarget
		}
		// Train predictors with the resolved outcome.
		misp := actualNext != predNext
		switch u.Op {
		case isa.JCC:
			b.bp.UpdateDirection(u.BranchPC, e.taken, misp)
			if e.taken {
				b.bp.UpdateTarget(u.BranchPC, e.target)
			}
		case isa.JMP, isa.CALL:
			b.bp.UpdateTarget(u.BranchPC, e.target)
		case isa.JMPI, isa.CALLI:
			b.bp.UpdateIndirect(u.BranchPC, e.target)
		}
		if misp {
			b.squashAfter(i)
			b.ctr.Inc(perfctr.BranchMispredicts)
			b.ctr.Inc(perfctr.Squashes)
			if b.OnSquash != nil {
				b.OnSquash(b.cycle, actualNext)
			}
			b.fe.Redirect(actualNext)
			b.fe.AddStall(b.cfg.MispredictPenalty)
			return
		}
	}
}

// squashAfter drops every ROB entry younger than index i and rebuilds
// the rename state from the survivors. Cache and micro-op cache side
// effects of squashed micro-ops are — deliberately — not undone.
func (b *Backend) squashAfter(i int) {
	// Squashed entries can only be referenced by younger entries — which
	// are squashed with them — so they recycle immediately.
	b.free = append(b.free, b.rob[i+1:]...)
	b.rob = b.rob[:i+1]
	b.regProd = [isa.NumRegs]*entry{}
	b.flagProd = nil
	for _, e := range b.rob {
		if r, ok := e.writesReg(); ok {
			b.regProd[r] = e
		}
		if e.writesFlags() {
			b.flagProd = e
		}
	}
}

// retire commits completed micro-ops in order. Retired entries are
// compacted out of the ROB in one pass (preserving its capacity) and
// parked in the graveyard until the watermark frees them.
func (b *Backend) retire() {
	n := 0
	for n < b.cfg.RetireWidth && n < len(b.rob) {
		e := b.rob[n]
		if !e.done {
			break
		}
		if e.uop.IsBranch() && !e.resolved {
			break
		}
		b.commit(e)
		b.clearProducer(e)
		n++
		if b.OnRetire != nil {
			b.OnRetire(b.cycle, e.uop)
		}
		b.ctr.Inc(perfctr.UopsRetired)
		if e.uop.Index == e.uop.Count-1 {
			b.ctr.Inc(perfctr.Instructions)
			if e.uop.Fused {
				b.ctr.Inc(perfctr.Instructions)
			}
			b.retired++
			if e.uop.Fused {
				b.retired++
			}
		}
		if b.halted {
			break
		}
	}
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		b.grave = append(b.grave, graveRec{e: b.rob[i], freeAt: b.seq})
	}
	b.rob = b.rob[:copy(b.rob, b.rob[n:])]
	b.reclaim()
}

// reclaim moves graveyard entries past their watermark to the free
// list: once the oldest live entry was dispatched at or after an
// entry's retirement watermark, no remaining consumer can hold a
// reference to it.
func (b *Backend) reclaim() {
	watermark := b.seq
	if len(b.rob) > 0 {
		watermark = b.rob[0].seq
	}
	k := 0
	for k < len(b.grave) && b.grave[k].freeAt <= watermark {
		b.free = append(b.free, b.grave[k].e)
		k++
	}
	if k > 0 {
		b.grave = b.grave[:copy(b.grave, b.grave[k:])]
	}
}

// clearProducer removes rename-table references to a retired entry.
func (b *Backend) clearProducer(e *entry) {
	for r := range b.regProd {
		if b.regProd[r] == e {
			b.regProd[r] = nil
		}
	}
	if b.flagProd == e {
		b.flagProd = nil
	}
}

// commit applies e's architectural effects.
func (b *Backend) commit(e *entry) {
	u := &e.uop
	if r, ok := e.writesReg(); ok {
		b.regs[r] = e.val
	}
	if e.wrFlags {
		b.flags = e.outFlags
	}
	switch u.Op {
	case isa.LOAD, isa.LOADB:
		if b.cfg.InvisibleSpeculation {
			// The load is no longer speculative: make its fill visible.
			b.hier.AccessData(e.memAddr)
		}
	case isa.STORE, isa.STOREB:
		b.hier.AccessData(e.memAddr)
		b.gmem.Write(e.memAddr, e.memSize, e.val)
	case isa.CALL, isa.CALLI:
		if u.Index == 0 {
			b.gmem.Write(e.memAddr, 8, int64(u.FallThrough()))
		}
	case isa.CLFLUSH:
		b.hier.Flush(e.memAddr)
	case isa.CPUID:
		if u.Index == u.Count-1 {
			b.fe.SerializeDone(u.FallThrough())
		}
	case isa.SYSCALL:
		if u.Index == u.Count-1 {
			b.kernelMode = true
			b.sysRet = append(b.sysRet, u.FallThrough())
			if b.OnPrivilegeSwitch != nil {
				b.OnPrivilegeSwitch(true)
			}
		}
	case isa.SYSRET:
		b.kernelMode = false
		if n := len(b.sysRet); n > 0 {
			b.sysRet = b.sysRet[:n-1]
		}
		if b.OnPrivilegeSwitch != nil {
			b.OnPrivilegeSwitch(false)
		}
	case isa.ITLBFLUSH:
		if u.Index == u.Count-1 {
			b.hier.FlushITLB()
		}
	case isa.HALT:
		b.halted = true
		b.fe.Stop()
	}
}
