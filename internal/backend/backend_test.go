package backend

import (
	"testing"
	"testing/quick"

	"deaduops/internal/isa"
)

func TestAluOpValues(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b int64
		want int64
	}{
		{isa.ADD, 3, 4, 7},
		{isa.SUB, 10, 4, 6},
		{isa.AND, 0xF0, 0x3C, 0x30},
		{isa.OR, 0xF0, 0x0F, 0xFF},
		{isa.XOR, 0xFF, 0x0F, 0xF0},
		{isa.SHL, 1, 4, 16},
		{isa.SHR, 16, 4, 1},
		{isa.SHR, -1, 60, 15}, // logical shift
	}
	for _, tc := range cases {
		got, _ := aluOp(tc.op, tc.a, tc.b)
		if got != tc.want {
			t.Errorf("%v(%d,%d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAluOpFlags(t *testing.T) {
	_, f := aluOp(isa.SUB, 5, 5)
	if !f.Zero || f.Sign || f.Carry {
		t.Errorf("5-5 flags %+v", f)
	}
	_, f = aluOp(isa.SUB, 3, 5)
	if f.Zero || !f.Sign || !f.Carry {
		t.Errorf("3-5 flags %+v", f)
	}
	_, f = aluOp(isa.SUB, 5, 3)
	if f.Zero || f.Sign || f.Carry {
		t.Errorf("5-3 flags %+v", f)
	}
}

func TestAluShiftMasksCount(t *testing.T) {
	// Shift counts use the low 6 bits, like x86-64.
	f := func(a int64, n uint8) bool {
		got, _ := aluOp(isa.SHL, a, int64(n))
		want := a << (uint64(n) & 63)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWritesRegClassification(t *testing.T) {
	cases := []struct {
		uop  isa.Uop
		reg  isa.Reg
		want bool
	}{
		{isa.Uop{Op: isa.MOVI, Dst: isa.R3}, isa.R3, true},
		{isa.Uop{Op: isa.LOAD, Dst: isa.R4}, isa.R4, true},
		{isa.Uop{Op: isa.NOP, Dst: isa.NoReg}, isa.NoReg, false},
		{isa.Uop{Op: isa.CMP, Dst: isa.R1}, isa.NoReg, false},
		{isa.Uop{Op: isa.CALL, Index: 0, Count: 2}, isa.R15, true}, // push
		{isa.Uop{Op: isa.CALL, Index: 1, Count: 2}, isa.NoReg, false},
		{isa.Uop{Op: isa.RET, Index: 0, Count: 2}, isa.NoReg, false}, // pop temp
		{isa.Uop{Op: isa.RET, Index: 1, Count: 2}, isa.R15, true},
		{isa.Uop{Op: isa.RDTSC, Index: 0, Count: 2, Dst: isa.R2}, isa.R2, true},
		{isa.Uop{Op: isa.RDTSC, Index: 1, Count: 2, Dst: isa.R2}, isa.NoReg, false},
		{isa.Uop{Op: isa.STORE, Dst: isa.R2}, isa.NoReg, false},
	}
	for _, tc := range cases {
		e := &entry{uop: tc.uop}
		r, ok := e.writesReg()
		if ok != tc.want || (ok && r != tc.reg) {
			t.Errorf("%v[%d]: writesReg = (%v, %v), want (%v, %v)",
				tc.uop.Op, tc.uop.Index, r, ok, tc.reg, tc.want)
		}
	}
}

func TestWritesFlagsClassification(t *testing.T) {
	writers := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.CMP, isa.TEST}
	for _, op := range writers {
		if !(&entry{uop: isa.Uop{Op: op}}).writesFlags() {
			t.Errorf("%v does not write flags", op)
		}
	}
	nonWriters := []isa.Op{isa.NOP, isa.MOVI, isa.MOV, isa.LOAD, isa.JMP}
	for _, op := range nonWriters {
		if (&entry{uop: isa.Uop{Op: op}}).writesFlags() {
			t.Errorf("%v writes flags", op)
		}
	}
	// A fused compare+branch writes flags regardless of its branch op.
	if !(&entry{uop: isa.Uop{Op: isa.JCC, Fused: true}}).writesFlags() {
		t.Error("fused JCC does not write flags")
	}
}

func TestLoadStoreClassifiers(t *testing.T) {
	if !isLoad(&isa.Uop{Op: isa.LOAD}) || !isLoad(&isa.Uop{Op: isa.LOADB}) {
		t.Error("plain loads not classified")
	}
	if !isLoad(&isa.Uop{Op: isa.RET, Index: 0, Count: 2}) {
		t.Error("RET pop not a load")
	}
	if isLoad(&isa.Uop{Op: isa.RET, Index: 1, Count: 2}) {
		t.Error("RET branch classified as load")
	}
	if !isStore(&isa.Uop{Op: isa.STORE}) || !isStore(&isa.Uop{Op: isa.STOREB}) {
		t.Error("stores not classified")
	}
	if !isStore(&isa.Uop{Op: isa.CALL, Index: 0, Count: 2}) {
		t.Error("CALL push not a store")
	}
	if isStore(&isa.Uop{Op: isa.CALL, Index: 1, Count: 2}) {
		t.Error("CALL branch classified as store")
	}
	if isStore(&isa.Uop{Op: isa.NOP}) || isLoad(&isa.Uop{Op: isa.NOP}) {
		t.Error("NOP classified as memory op")
	}
}

func TestDepHelpers(t *testing.T) {
	done := &entry{done: true, val: 42}
	pend := &entry{}
	if !depReady(nil) || !depReady(done) || depReady(pend) {
		t.Error("depReady wrong")
	}
	if depVal(done, 7) != 42 {
		t.Error("depVal should read the producer")
	}
	if depVal(nil, 7) != 7 {
		t.Error("depVal should fall back to the captured value")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ROBSize < cfg.DispatchWidth || cfg.RetireWidth == 0 || cfg.ExecPorts == 0 {
		t.Errorf("config %+v", cfg)
	}
}
