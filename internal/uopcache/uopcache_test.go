package uopcache

import (
	"testing"
	"testing/quick"

	"deaduops/internal/isa"
)

// mkMacro builds a MacroUops of n single-slot NOP µops at addr.
func mkMacro(addr uint64, byteLen uint8, nUops int) MacroUops {
	m := MacroUops{Addr: addr, Len: byteLen}
	for i := 0; i < nUops; i++ {
		m.Uops = append(m.Uops, isa.Uop{
			Op: isa.NOP, Index: uint8(i), Count: uint8(nUops),
			MacroAddr: addr, MacroLen: byteLen, Slots: 1,
		})
	}
	return m
}

func mkJump(addr uint64, target uint64) MacroUops {
	m := MacroUops{Addr: addr, Len: 2, UncondJump: true, Branch: true}
	m.Uops = []isa.Uop{{
		Op: isa.JMP, Count: 1, MacroAddr: addr, MacroLen: 2,
		Slots: 1, Imm: int64(target), BranchPC: addr,
	}}
	return m
}

func mkBranch(addr uint64) MacroUops {
	m := MacroUops{Addr: addr, Len: 2, Branch: true}
	m.Uops = []isa.Uop{{
		Op: isa.JCC, Count: 1, MacroAddr: addr, MacroLen: 2,
		Slots: 1, BranchPC: addr,
	}}
	return m
}

// simpleTrace builds a cacheable 1-line trace of n µops for a region.
func simpleTrace(cfg Config, region uint64, n int) *Trace {
	return BuildTrace(cfg, region, 0, []MacroUops{mkMacro(region, uint8(n), n)})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Sets: 3, Ways: 8, SlotsPerLine: 6, MaxLinesPerRegion: 3},
		{Sets: 32, Ways: 0, SlotsPerLine: 6, MaxLinesPerRegion: 3},
		{Sets: 32, Ways: 8, SlotsPerLine: 6, MaxLinesPerRegion: 9},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestConfigGeometry(t *testing.T) {
	cfg := Skylake()
	if cfg.Capacity() != 1536 {
		t.Errorf("Skylake capacity %d, want 1536 µops", cfg.Capacity())
	}
	if cfg.RegionSize() != 32 {
		t.Errorf("region size %d", cfg.RegionSize())
	}
	zen := Zen()
	if zen.Capacity() != 2048 {
		t.Errorf("Zen capacity %d, want 2048", zen.Capacity())
	}
	if zen.SMT != ShareCompetitive {
		t.Error("Zen must share competitively")
	}
}

func TestTraceSingleLine(t *testing.T) {
	cfg := Skylake()
	tr := simpleTrace(cfg, 0x1000, 6)
	if !tr.Cacheable || len(tr.Lines) != 1 || tr.TotalUops != 6 {
		t.Errorf("trace %+v", tr)
	}
}

func TestTraceMacroOpNeverSplitsLines(t *testing.T) {
	cfg := Skylake()
	// 4 µops + 4 µops: the second macro-op does not fit the first
	// line's remaining 2 slots, so it must start line 2 whole.
	tr := BuildTrace(cfg, 0x1000, 0, []MacroUops{
		mkMacro(0x1000, 8, 4),
		mkMacro(0x1008, 8, 4),
	})
	if !tr.Cacheable || len(tr.Lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(tr.Lines))
	}
	if tr.Lines[0].Slots != 4 || tr.Lines[1].Slots != 4 {
		t.Errorf("slots %d/%d, want 4/4", tr.Lines[0].Slots, tr.Lines[1].Slots)
	}
}

func TestTraceImm64TwoSlots(t *testing.T) {
	cfg := Skylake()
	m := mkMacro(0x1000, 10, 1)
	m.Uops[0].Slots = 2 // 64-bit immediate
	tr := BuildTrace(cfg, 0x1000, 0, []MacroUops{
		m,
		mkMacro(0x100A, 10, 5),
	})
	// 2 + 5 slots > 6: the second macro-op spills to line 2.
	if !tr.Cacheable || len(tr.Lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(tr.Lines))
	}
}

func TestTraceJumpTerminatesLine(t *testing.T) {
	cfg := Skylake()
	tr := BuildTrace(cfg, 0x1000, 0, []MacroUops{
		mkMacro(0x1000, 2, 2),
		mkJump(0x1002, 0x2000),
	})
	if !tr.Cacheable || len(tr.Lines) != 1 {
		t.Fatalf("trace %+v", tr)
	}
	last := tr.Lines[0].Uops[len(tr.Lines[0].Uops)-1]
	if last.Op != isa.JMP {
		t.Error("jump is not the last µop of its line")
	}
}

func TestTraceMaxTwoBranchesPerLine(t *testing.T) {
	cfg := Skylake()
	tr := BuildTrace(cfg, 0x1000, 0, []MacroUops{
		mkBranch(0x1000),
		mkBranch(0x1002),
		mkBranch(0x1004), // third branch forces a new line
	})
	if !tr.Cacheable || len(tr.Lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(tr.Lines))
	}
	if tr.Lines[0].Branches != 2 || tr.Lines[1].Branches != 1 {
		t.Errorf("branch split %d/%d", tr.Lines[0].Branches, tr.Lines[1].Branches)
	}
}

func TestTraceMSROMOwnsALine(t *testing.T) {
	cfg := Skylake()
	ms := mkMacro(0x1002, 3, 8)
	ms.Microcoded = true
	tr := BuildTrace(cfg, 0x1000, 0, []MacroUops{
		mkMacro(0x1000, 2, 2),
		ms,
		mkMacro(0x1005, 2, 2),
	})
	if !tr.Cacheable || len(tr.Lines) != 3 {
		t.Fatalf("lines = %d, want 3 (nops | msrom | nops)", len(tr.Lines))
	}
	if !tr.Lines[1].MSROM {
		t.Error("middle line not MSROM")
	}
}

func TestTraceEighteenUopCap(t *testing.T) {
	cfg := Skylake()
	var macros []MacroUops
	for i := 0; i < 18; i++ {
		macros = append(macros, mkMacro(0x1000+uint64(i), 1, 1))
	}
	tr := BuildTrace(cfg, 0x1000, 0, macros)
	if !tr.Cacheable || len(tr.Lines) != 3 {
		t.Fatalf("18 µops: cacheable=%v lines=%d", tr.Cacheable, len(tr.Lines))
	}
	macros = append(macros, mkMacro(0x1012, 1, 1))
	tr = BuildTrace(cfg, 0x1000, 0, macros)
	if tr.Cacheable {
		t.Error("19 µops cached — exceeds the 3-line region cap")
	}
	if tr.Reason != "too-many-lines" {
		t.Errorf("reason %q", tr.Reason)
	}
}

func TestTraceUncacheableOp(t *testing.T) {
	cfg := Skylake()
	p := mkMacro(0x1000, 2, 1)
	p.Uncacheable = true // PAUSE
	tr := BuildTrace(cfg, 0x1000, 0, []MacroUops{p})
	if tr.Cacheable {
		t.Error("PAUSE region cached")
	}
	if tr.Reason != "uncacheable-op" {
		t.Errorf("reason %q", tr.Reason)
	}
}

func TestTraceTooWideMacroOp(t *testing.T) {
	cfg := Skylake()
	tr := BuildTrace(cfg, 0x1000, 0, []MacroUops{mkMacro(0x1000, 4, 7)})
	if tr.Cacheable || tr.Reason != "macro-op-too-wide" {
		t.Errorf("7-µop non-microcoded macro-op: %+v", tr)
	}
}

func TestTraceEmpty(t *testing.T) {
	cfg := Skylake()
	tr := BuildTrace(cfg, 0x1000, 0, nil)
	if tr.Cacheable {
		t.Error("empty trace cacheable")
	}
}

func TestLookupFillRoundtrip(t *testing.T) {
	c := New(Skylake())
	tr := simpleTrace(c.Config(), 0x1000, 6)
	if _, hit := c.Lookup(0, 0x1000); hit {
		t.Error("cold lookup hit")
	}
	c.Fill(0, tr)
	uops, hit := c.Lookup(0, 0x1000)
	if !hit || len(uops) != 6 {
		t.Fatalf("warm lookup: hit=%v n=%d", hit, len(uops))
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestLookupKeyedByEntryOffset(t *testing.T) {
	c := New(Skylake())
	tr := BuildTrace(c.Config(), 0x1000, 8, []MacroUops{mkMacro(0x1008, 4, 3)})
	c.Fill(0, tr)
	if _, hit := c.Lookup(0, 0x1008); !hit {
		t.Error("matching entry offset missed")
	}
	if _, hit := c.Lookup(0, 0x1000); hit {
		t.Error("different entry offset hit")
	}
}

func TestFillUncacheableCounted(t *testing.T) {
	c := New(Skylake())
	p := mkMacro(0x1000, 2, 1)
	p.Uncacheable = true
	c.Fill(0, BuildTrace(c.Config(), 0x1000, 0, []MacroUops{p}))
	if c.Stats().Uncacheable != 1 {
		t.Errorf("uncacheable count %d", c.Stats().Uncacheable)
	}
	if n := len(c.Snapshot()); n != 0 {
		t.Errorf("%d lines installed for uncacheable trace", n)
	}
}

func TestHotnessProtectsResidents(t *testing.T) {
	c := New(Skylake())
	cfg := c.Config()
	// Fill set 0 completely with 8 hot resident lines.
	for w := 0; w < 8; w++ {
		region := uint64(w) * 1024
		c.Fill(0, simpleTrace(cfg, region, 6))
		for i := 0; i < 8; i++ {
			c.Lookup(0, region) // heat to the cap
		}
	}
	// A single fill attempt must fail against hot residents.
	c.Fill(0, simpleTrace(cfg, 8*1024, 6))
	if _, hit := c.Lookup(0, 8*1024); hit {
		t.Error("cold challenger displaced a hot resident immediately")
	}
	if c.Stats().FillFailures == 0 {
		t.Error("no fill failure recorded")
	}
	// Persistent pressure (more attempts than the total resident
	// hotness) must eventually displace.
	for i := 0; i < 100; i++ {
		c.Fill(0, simpleTrace(cfg, 8*1024, 6))
	}
	if _, hit := c.Lookup(0, 8*1024); !hit {
		t.Error("persistent challenger never displaced a resident")
	}
}

func TestMultiLineTraceAllOrNothing(t *testing.T) {
	c := New(Skylake())
	cfg := c.Config()
	var macros []MacroUops
	for i := 0; i < 12; i++ {
		macros = append(macros, mkMacro(0x1000+uint64(i), 1, 1))
	}
	tr := BuildTrace(cfg, 0x1000, 0, macros) // 2 lines
	c.Fill(0, tr)
	if uops, hit := c.Lookup(0, 0x1000); !hit || len(uops) != 12 {
		t.Fatalf("multi-line lookup: %v %d", hit, len(uops))
	}
	// Invalidate one line of the trace: the whole trace must miss.
	for _, li := range c.Snapshot() {
		if li.Region == 0x1000 && li.Seq == 1 {
			c.InvalidateCodeLine(li.Region, 64)
			break
		}
	}
	if _, hit := c.Lookup(0, 0x1000); hit {
		t.Error("partial trace hit")
	}
}

func TestInvalidateCodeLine(t *testing.T) {
	c := New(Skylake())
	cfg := c.Config()
	// Two regions inside one 64-byte icache line, one outside.
	c.Fill(0, simpleTrace(cfg, 0x1000, 3))
	c.Fill(0, simpleTrace(cfg, 0x1020, 3))
	c.Fill(0, simpleTrace(cfg, 0x1040, 3))
	c.InvalidateCodeLine(0x1000, 64)
	if _, hit := c.Lookup(0, 0x1000); hit {
		t.Error("region 0x1000 survived icache-line invalidation")
	}
	if _, hit := c.Lookup(0, 0x1020); hit {
		t.Error("region 0x1020 survived icache-line invalidation")
	}
	if _, hit := c.Lookup(0, 0x1040); !hit {
		t.Error("region 0x1040 wrongly invalidated")
	}
}

func TestFlushAll(t *testing.T) {
	c := New(Skylake())
	c.Fill(0, simpleTrace(c.Config(), 0x1000, 6))
	c.FlushAll()
	if len(c.Snapshot()) != 0 {
		t.Error("lines survived FlushAll")
	}
	if c.Stats().FlushAll != 1 {
		t.Error("flush not counted")
	}
}

func TestFlushThread(t *testing.T) {
	c := New(Zen()) // competitive sharing: both threads in one set space
	c.Fill(0, simpleTrace(c.Config(), 0x1000, 6))
	c.Fill(1, simpleTrace(c.Config(), 0x2000, 6))
	c.FlushThread(0)
	if _, hit := c.Lookup(0, 0x1000); hit {
		t.Error("thread-0 line survived FlushThread(0)")
	}
	if _, hit := c.Lookup(1, 0x2000); !hit {
		t.Error("thread-1 line wrongly flushed")
	}
}

func TestIntelSMTPartitioning(t *testing.T) {
	c := New(Skylake())
	if c.VisibleSets(0) != 32 {
		t.Errorf("single-thread visible sets %d", c.VisibleSets(0))
	}
	c.SetSMTMode(true)
	if c.VisibleSets(0) != 16 || c.VisibleSets(1) != 16 {
		t.Errorf("SMT visible sets %d/%d", c.VisibleSets(0), c.VisibleSets(1))
	}
	// Threads filling the same address must land in different banks.
	c.Fill(0, simpleTrace(c.Config(), 0x1000, 6))
	c.Fill(1, simpleTrace(c.Config(), 0x1000, 6))
	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("%d lines for two thread fills", len(snap))
	}
	if snap[0].Set == snap[1].Set {
		t.Error("Intel SMT threads share a physical set")
	}
	// Mode switch flushes (the set mapping moves).
	c.SetSMTMode(false)
	if len(c.Snapshot()) != 0 {
		t.Error("lines survived SMT mode change")
	}
}

func TestAMDCompetitiveSharing(t *testing.T) {
	c := New(Zen())
	c.SetSMTMode(true)
	if c.VisibleSets(0) != 32 {
		t.Errorf("competitive sharing visible sets %d", c.VisibleSets(0))
	}
	c.Fill(0, simpleTrace(c.Config(), 0x1000, 6))
	c.Fill(1, simpleTrace(c.Config(), 0x1000, 6))
	snap := c.Snapshot()
	if len(snap) != 2 || snap[0].Set != snap[1].Set {
		t.Error("AMD SMT threads must compete for the same physical set")
	}
	// Lookups are thread-tagged even when capacity is shared.
	if _, hit := c.Lookup(0, 0x1000); !hit {
		t.Error("thread-0 lookup missed its own line")
	}
}

func TestStreamedUopsCounter(t *testing.T) {
	c := New(Skylake())
	c.Fill(0, simpleTrace(c.Config(), 0x1000, 5))
	c.Lookup(0, 0x1000)
	c.Lookup(0, 0x1000)
	if got := c.Stats().StreamedUops; got != 10 {
		t.Errorf("streamed µops %d, want 10", got)
	}
}

func TestPresentDoesNotPerturb(t *testing.T) {
	c := New(Skylake())
	c.Fill(0, simpleTrace(c.Config(), 0x1000, 6))
	before := c.Stats()
	snapBefore := c.Snapshot()
	if !c.Present(0, 0x1000) {
		t.Error("present missed")
	}
	if c.Present(0, 0x2000) {
		t.Error("present hit absent region")
	}
	if c.Stats() != before {
		t.Error("Present changed statistics")
	}
	snapAfter := c.Snapshot()
	if len(snapBefore) != len(snapAfter) || snapBefore[0].Hotness != snapAfter[0].Hotness {
		t.Error("Present changed line state")
	}
}

func TestOccupancyNeverExceedsWays(t *testing.T) {
	c := New(Skylake())
	cfg := c.Config()
	// Property: any fill sequence keeps every set within its ways.
	f := func(regions []uint16) bool {
		for _, r := range regions {
			region := uint64(r) &^ 31
			c.Fill(0, simpleTrace(cfg, region, 1+int(r%6)))
		}
		for s := 0; s < cfg.Sets; s++ {
			if c.OccupiedWays(s) > cfg.Ways {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	if PartitionStatic.String() != "static-partition" ||
		ShareCompetitive.String() != "competitive" {
		t.Error("policy strings wrong")
	}
}

// TestTraceBuilderInvariants property-checks the placement rules over
// random macro-op sequences: every produced line respects the slot and
// branch caps, lines never split a macro-op, and any cacheable trace
// fits the per-region way budget.
func TestTraceBuilderInvariants(t *testing.T) {
	cfg := Skylake()
	f := func(shape []uint8) bool {
		var macros []MacroUops
		addr := uint64(0x1000)
		for _, s := range shape {
			n := 1 + int(s%4) // 1-4 µops (complex-decoder range)
			m := mkMacro(addr, uint8(n), n)
			switch s % 7 {
			case 5:
				m.Branch = true
				m.Uops = m.Uops[:1]
				m.Uops[0].Op = isa.JCC
				m.Uops[0].Count = 1
			case 6:
				m.Microcoded = true
			}
			macros = append(macros, m)
			addr += uint64(n)
			if addr >= 0x1020 {
				break
			}
		}
		tr := BuildTrace(cfg, 0x1000, 0, macros)
		if !tr.Cacheable {
			return true // rejection is always safe
		}
		if len(tr.Lines) > cfg.MaxLinesPerRegion {
			return false
		}
		for _, l := range tr.Lines {
			if !l.MSROM && l.Slots > cfg.SlotsPerLine {
				return false
			}
			if l.Branches > cfg.MaxBranchesPerLine {
				return false
			}
			// Micro-ops of one macro-op must be contiguous in one line.
			seen := map[uint64]uint8{}
			for _, u := range l.Uops {
				if prev, ok := seen[u.MacroAddr]; ok && u.Index != prev+1 {
					return false
				}
				seen[u.MacroAddr] = u.Index
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLookupNeverReturnsPartialTrace property-checks that a lookup hit
// always returns the full micro-op sequence that was filled.
func TestLookupNeverReturnsPartialTrace(t *testing.T) {
	cfg := Skylake()
	c := New(cfg)
	f := func(nUops uint8, churn []uint16) bool {
		n := 1 + int(nUops%18)
		var macros []MacroUops
		for i := 0; i < n; i++ {
			macros = append(macros, mkMacro(0x1000+uint64(i), 1, 1))
		}
		tr := BuildTrace(cfg, 0x1000, 0, macros)
		c.Fill(0, tr)
		want := -1
		if tr.Cacheable {
			want = tr.TotalUops
		}
		// Random competing fills churn the set.
		for _, v := range churn {
			region := uint64(v&0x1F) * 1024 // same set 0 bank
			c.Fill(0, simpleTrace(cfg, region+0x40000, 1+int(v%6)))
		}
		uops, hit := c.Lookup(0, 0x1000)
		if !hit {
			return true // a miss is always acceptable
		}
		return want > 0 && len(uops) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
