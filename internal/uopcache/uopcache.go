// Package uopcache models the micro-op cache (Intel's DSB, AMD's op
// cache) characterized in §II-III of the paper: a streaming,
// set-associative cache of decoded micro-ops indexed by bits 5-9 of the
// macro-op virtual address, governed by the placement rules the paper
// documents and the hotness-based replacement and SMT
// partitioning/sharing policies it reverse-engineers.
package uopcache

import (
	"fmt"

	"deaduops/internal/isa"
)

// SMTPolicy selects how two hardware threads share the structure.
type SMTPolicy int

const (
	// PartitionStatic is the Intel policy: in SMT mode each thread sees
	// a statically assigned half of the cache, organized as Sets/2
	// fully associative-width sets (Fig 7: 16 sets of 8 ways each).
	PartitionStatic SMTPolicy = iota
	// ShareCompetitive is the AMD Zen policy: both threads compete for
	// all lines; one thread's fills evict the other's lines (§V-B).
	ShareCompetitive
)

// String implements fmt.Stringer.
func (p SMTPolicy) String() string {
	switch p {
	case PartitionStatic:
		return "static-partition"
	case ShareCompetitive:
		return "competitive"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config sizes and parameterizes the micro-op cache.
type Config struct {
	Sets         int // number of sets (power of two)
	Ways         int // lines per set
	SlotsPerLine int // micro-op slots per line (6 on Skylake)
	// MaxLinesPerRegion caps how many ways one 32-byte code region may
	// occupy (3 on Skylake; an 18-µop region is the largest cacheable).
	MaxLinesPerRegion int
	// IndexLoBit is the lowest address bit of the set index; regions
	// are 1<<IndexLoBit bytes (bit 5 → 32-byte regions).
	IndexLoBit uint
	// MaxBranchesPerLine caps branch micro-ops per line (2 on Skylake).
	MaxBranchesPerLine int
	// HotnessMax saturates the per-line hotness counter. A small cap
	// (a few bits, as a real implementation would afford) bounds how
	// long a once-hot line can resist eviction pressure.
	HotnessMax int
	// SMT selects the sharing policy when two threads are active.
	SMT SMTPolicy
	// PrivilegePartition statically partitions the cache between user
	// and kernel domains (a §VIII candidate mitigation): each domain
	// sees half the sets, so kernel execution cannot evict user lines.
	PrivilegePartition bool
	// SwitchPenalty is the DSB→MITE switch cost in cycles (1 on
	// Skylake).
	SwitchPenalty int
	// StreamWidth is the per-cycle µop delivery bandwidth on a hit
	// (6 on Skylake).
	StreamWidth int
	// Disabled turns the structure into a pure MITE-only control: every
	// lookup misses, every fill is rejected as uncacheable, and traces
	// built against this configuration report dsb-disabled. Geometry
	// fields are kept so set/region arithmetic (receiver layout, probe
	// chains) still works; only the caching behaviour is removed.
	Disabled bool
}

// Skylake returns the Intel Skylake/Coffee Lake configuration the paper
// characterizes: 32 sets × 8 ways × 6 µops = 1536 µops, statically
// partitioned under SMT.
func Skylake() Config {
	return Config{
		Sets: 32, Ways: 8, SlotsPerLine: 6,
		MaxLinesPerRegion: 3, IndexLoBit: 5,
		MaxBranchesPerLine: 2, HotnessMax: 8,
		SMT: PartitionStatic, SwitchPenalty: 1, StreamWidth: 6,
	}
}

// SunnyCove returns the Intel Sunny Cove-like configuration: the paper
// notes the micro-op cache grew 1.5× over Skylake (2304 µops, modelled
// as 12 ways).
func SunnyCove() Config {
	c := Skylake()
	c.Ways = 12
	return c
}

// Zen returns an AMD Zen-like configuration: 2K µops, competitively
// shared between SMT threads.
func Zen() Config {
	return Config{
		Sets: 32, Ways: 8, SlotsPerLine: 8,
		MaxLinesPerRegion: 3, IndexLoBit: 5,
		MaxBranchesPerLine: 2, HotnessMax: 8,
		SMT: ShareCompetitive, SwitchPenalty: 1, StreamWidth: 8,
	}
}

// Zen2 returns an AMD Zen-2-like configuration: the paper notes Zen-2
// op caches hold as many as 4K µops (64 sets here, index bits 5-10).
func Zen2() Config {
	c := Zen()
	c.Sets = 64
	return c
}

// RegionSize returns the code-region granularity in bytes.
func (c Config) RegionSize() uint64 { return 1 << c.IndexLoBit }

// Capacity returns the total micro-op slot capacity.
func (c Config) Capacity() int { return c.Sets * c.Ways * c.SlotsPerLine }

func (c Config) validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("uopcache: sets %d not a positive power of two", c.Sets)
	}
	if c.Ways <= 0 || c.SlotsPerLine <= 0 || c.MaxLinesPerRegion <= 0 {
		return fmt.Errorf("uopcache: non-positive geometry %+v", c)
	}
	if c.MaxLinesPerRegion > c.Ways {
		return fmt.Errorf("uopcache: MaxLinesPerRegion %d exceeds ways %d", c.MaxLinesPerRegion, c.Ways)
	}
	return nil
}

// Stats counts micro-op cache events; the characterization experiments
// read these as their performance-counter analogues.
type Stats struct {
	Lookups       uint64
	Hits          uint64
	Misses        uint64
	StreamedUops  uint64 // µops delivered from the cache (IDQ.DSB_UOPS)
	Fills         uint64 // lines installed
	FillFailures  uint64 // fill attempts rejected by hotness protection
	Evictions     uint64
	Uncacheable   uint64 // regions rejected by placement rules
	FlushAll      uint64
	Invalidations uint64 // lines dropped by L1I/iTLB inclusion
}

// line is one cached way.
type line struct {
	valid   bool
	thread  int
	region  uint64 // region base address
	entry   uint8  // entry offset within the region
	seq     uint8  // line index within the trace
	total   uint8  // number of lines in the trace
	uops    []isa.Uop
	slots   int
	hotness int
}

// Cache is the micro-op cache.
type Cache struct {
	cfg  Config
	sets [][]line
	// domain is each hardware thread's current privilege domain
	// (0 = user, 1 = kernel), consulted when PrivilegePartition is on.
	domain [2]int
	// victimPtr is each set's round-robin replacement pointer: fill
	// pressure rotates across ways, wearing every resident down
	// uniformly, so a loop that out-accesses a resident loop displaces
	// it — and one that doesn't, doesn't (Fig 5).
	victimPtr []int
	smtMode   bool
	stats     Stats
	setShift  uint
}

// New builds a micro-op cache. It panics on an invalid configuration.
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:       cfg,
		sets:      make([][]line, cfg.Sets),
		victimPtr: make([]int, cfg.Sets),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for v := cfg.Sets; v > 1; v >>= 1 {
		c.setShift++
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// SetSMTMode switches between single-thread and SMT operation. Under
// Intel's static partitioning this changes the visible geometry; the
// cache is flushed on a mode change, as the physical set mapping moves.
func (c *Cache) SetSMTMode(on bool) {
	if c.smtMode == on {
		return
	}
	c.smtMode = on
	c.flushAllInternal()
}

// SMTMode reports whether SMT mode is active.
func (c *Cache) SMTMode() bool { return c.smtMode }

// RegionOf returns the region base address containing addr.
func (c *Cache) RegionOf(addr uint64) uint64 {
	return addr &^ (c.cfg.RegionSize() - 1)
}

// setIndex maps (thread, region) to a physical set. In Intel SMT mode
// each thread owns a bank of Sets/2 sets indexed by one fewer address
// bit — the "16 8-way sets per thread" organization of Fig 7. With the
// privilege-partition mitigation enabled, the current privilege domain
// selects the bank instead.
func (c *Cache) setIndex(thread int, region uint64) int {
	idx := int(region>>c.cfg.IndexLoBit) & (c.cfg.Sets - 1)
	half := c.cfg.Sets / 2
	if c.cfg.PrivilegePartition {
		return (c.domain[thread&1]&1)*half + idx%half
	}
	if c.smtMode && c.cfg.SMT == PartitionStatic {
		return (thread&1)*half + idx%half
	}
	return idx
}

// SetDomain records thread's current privilege domain (0 = user,
// 1 = kernel) for the privilege-partition mitigation.
func (c *Cache) SetDomain(thread, domain int) {
	c.domain[thread&1] = domain
}

// VisibleSets returns how many sets one thread can reach right now.
func (c *Cache) VisibleSets(thread int) int {
	if c.cfg.PrivilegePartition || (c.smtMode && c.cfg.SMT == PartitionStatic) {
		return c.cfg.Sets / 2
	}
	return c.cfg.Sets
}

// matches reports whether l is the seq-th line of the trace (thread,
// region, entry). Under competitive sharing lines are thread-tagged, so
// a lookup only hits its own thread's lines, but capacity is shared.
func (c *Cache) matches(l *line, thread int, region uint64, entry uint8) bool {
	return l.valid && l.region == region && l.entry == entry && l.thread == thread
}

// Lookup streams the trace for the code at addr for the given hardware
// thread. On a hit it returns the trace's micro-ops in order and bumps
// line hotness. On a miss it returns nil.
func (c *Cache) Lookup(thread int, addr uint64) ([]isa.Uop, bool) {
	return c.LookupAppend(thread, addr, nil)
}

// LookupAppend is Lookup appending the streamed micro-ops to dst
// instead of allocating, so a caller owning a reusable buffer (the
// fetch engine's stream buffer) can stay allocation-free on every DSB
// hit. On a miss dst is returned unchanged.
func (c *Cache) LookupAppend(thread int, addr uint64, dst []isa.Uop) ([]isa.Uop, bool) {
	region := c.RegionOf(addr)
	entry := uint8(addr - region)
	c.stats.Lookups++
	if c.cfg.Disabled {
		c.stats.Misses++
		return dst, false
	}
	set := c.sets[c.setIndex(thread, region)]

	var found [8]*line
	var total int = -1
	n := 0
	for i := range set {
		l := &set[i]
		if c.matches(l, thread, region, entry) {
			if int(l.seq) < len(found) && found[l.seq] == nil {
				found[l.seq] = l
				n++
			}
			total = int(l.total)
		}
	}
	if total < 0 || n != total {
		c.stats.Misses++
		return dst, false
	}
	uops := dst
	for s := 0; s < total; s++ {
		l := found[s]
		if l == nil {
			c.stats.Misses++
			return dst, false
		}
		if l.hotness < c.cfg.HotnessMax {
			l.hotness++
		}
		uops = append(uops, l.uops...)
	}
	c.stats.Hits++
	c.stats.StreamedUops += uint64(len(uops) - len(dst))
	return uops, true
}

// Present reports whether the trace for addr is fully cached, without
// perturbing hotness or statistics.
func (c *Cache) Present(thread int, addr uint64) bool {
	region := c.RegionOf(addr)
	entry := uint8(addr - region)
	set := c.sets[c.setIndex(thread, region)]
	have := 0
	total := -1
	for i := range set {
		l := &set[i]
		if c.matches(l, thread, region, entry) {
			have++
			total = int(l.total)
		}
	}
	return total >= 0 && have == total
}

// Fill attempts to install a built trace. The hotness replacement
// policy may refuse: a fill that would displace a line whose hotness
// has not been worn to zero instead decrements the victim and fails,
// so a cold evictor must out-access a hot resident before displacing
// it — the Fig 5 behaviour.
func (c *Cache) Fill(thread int, t *Trace) {
	if t == nil || !t.Cacheable || c.cfg.Disabled {
		c.stats.Uncacheable++
		return
	}
	setIdx := c.setIndex(thread, t.Region)
	set := c.sets[setIdx]

	// Drop any stale partial trace for this (thread, region, entry).
	for i := range set {
		l := &set[i]
		if c.matches(l, thread, t.Region, t.Entry) {
			l.valid = false
			c.stats.Invalidations++
		}
	}

	for seq, lu := range t.Lines {
		victim := -1
		for i := range set {
			if !set[i].valid {
				victim = i
				break
			}
		}
		if victim < 0 {
			// All ways valid: attack the way under the rotating
			// pointer. A hot resident absorbs the attempt (hotness
			// decremented) and the fill fails; a worn-out resident is
			// displaced.
			p := c.victimPtr[setIdx]
			c.victimPtr[setIdx] = (p + 1) % c.cfg.Ways
			v := &set[p]
			if v.hotness > 0 {
				v.hotness--
				c.stats.FillFailures++
				return
			}
			v.valid = false
			c.stats.Evictions++
			victim = p
		}
		v := &set[victim]
		*v = line{
			valid:   true,
			thread:  thread,
			region:  t.Region,
			entry:   t.Entry,
			seq:     uint8(seq),
			total:   uint8(len(t.Lines)),
			uops:    lu.Uops,
			slots:   lu.Slots,
			hotness: 1,
		}
		c.stats.Fills++
	}
}

// State is a deep snapshot of the cache's dynamic contents: every way
// (validity, tags, hotness), the round-robin victim pointers, the
// privilege domains, the SMT mode, and the counters. Line micro-op
// slices are shared by header, not copied: a trace's µops are
// immutable once installed (Fill stores the freshly built slice,
// LookupAppend copies out of it), so sharing is safe across any
// number of restores and costs O(ways), not O(µops). Backing arrays
// are recycled across Save calls; a snapshot only restores into a
// cache built from the same geometry.
type State struct {
	lines     []line
	victimPtr []int
	domain    [2]int
	smtMode   bool
	stats     Stats
}

// Save deep-copies the cache contents into s, reusing s's buffers.
func (c *Cache) Save(s *State) {
	total := c.cfg.Sets * c.cfg.Ways
	if cap(s.lines) < total {
		s.lines = make([]line, total)
	}
	s.lines = s.lines[:total]
	for i, set := range c.sets {
		copy(s.lines[i*c.cfg.Ways:], set)
	}
	s.victimPtr = append(s.victimPtr[:0], c.victimPtr...)
	s.domain = c.domain
	s.smtMode = c.smtMode
	s.stats = c.stats
}

// Restore overwrites the cache contents from s. It panics if s was
// saved from a cache with different geometry.
func (c *Cache) Restore(s *State) {
	if len(s.lines) != c.cfg.Sets*c.cfg.Ways || len(s.victimPtr) != c.cfg.Sets {
		panic("uopcache: Restore from a checkpoint with different geometry")
	}
	for i, set := range c.sets {
		copy(set, s.lines[i*c.cfg.Ways:(i+1)*c.cfg.Ways])
	}
	copy(c.victimPtr, s.victimPtr)
	c.domain = s.domain
	c.smtMode = s.smtMode
	c.stats = s.stats
}

// InvalidateCodeLine drops every trace whose region falls inside the
// 64-byte instruction-cache line at lineAddr — the inclusion property:
// an L1I eviction forces the corresponding micro-op cache lines out.
func (c *Cache) InvalidateCodeLine(lineAddr uint64, lineSize uint64) {
	start := lineAddr &^ (lineSize - 1)
	end := start + lineSize
	for s := range c.sets {
		for i := range c.sets[s] {
			l := &c.sets[s][i]
			if l.valid && l.region >= start && l.region < end {
				l.valid = false
				c.stats.Invalidations++
			}
		}
	}
}

// FlushAll empties the cache (iTLB-flush inclusion, SGX enclave
// entry/exit, privilege-partitioning mitigations).
func (c *Cache) FlushAll() {
	c.stats.FlushAll++
	c.flushAllInternal()
}

func (c *Cache) flushAllInternal() {
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i] = line{}
		}
	}
}

// FlushThread drops all lines owned by one hardware thread (used by the
// privilege-partitioning mitigation experiments).
func (c *Cache) FlushThread(thread int) {
	for s := range c.sets {
		for i := range c.sets[s] {
			l := &c.sets[s][i]
			if l.valid && l.thread == thread {
				l.valid = false
				c.stats.Invalidations++
			}
		}
	}
}

// LineInfo describes one valid line for occupancy inspection (Fig 8 and
// the structural tests).
type LineInfo struct {
	Set     int
	Way     int
	Thread  int
	Region  uint64
	Entry   uint8
	Seq     uint8
	Slots   int
	Uops    int
	Hotness int
}

// Snapshot returns all valid lines.
func (c *Cache) Snapshot() []LineInfo {
	var out []LineInfo
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if !l.valid {
				continue
			}
			out = append(out, LineInfo{
				Set: s, Way: w, Thread: l.thread,
				Region: l.region, Entry: l.entry, Seq: l.seq,
				Slots: l.slots, Uops: len(l.uops), Hotness: l.hotness,
			})
		}
	}
	return out
}

// OccupiedWays returns how many ways of physical set s are valid.
func (c *Cache) OccupiedWays(s int) int {
	n := 0
	for w := range c.sets[s] {
		if c.sets[s][w].valid {
			n++
		}
	}
	return n
}
