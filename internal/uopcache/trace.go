package uopcache

import "deaduops/internal/isa"

// MacroUops is one decoded macro-op handed to the trace builder: its
// micro-ops plus the composition facts the placement rules consult.
type MacroUops struct {
	Addr       uint64
	Len        uint8
	Uops       []isa.Uop
	Microcoded bool // delivered by the MSROM
	// Uncacheable marks macro-ops the micro-op cache refuses to hold
	// (the paper finds PAUSE is never cached).
	Uncacheable bool
	UncondJump  bool
	Branch      bool
}

// LineUops is one would-be cache line of a built trace.
type LineUops struct {
	Uops     []isa.Uop
	Slots    int
	Branches int
	// MSROM marks a line consumed entirely by a microcoded macro-op.
	MSROM bool
}

// Trace is the result of applying the placement rules (§II-B) to the
// decoded macro-ops of one 32-byte code region, entered at a given
// offset. A non-cacheable trace records why.
type Trace struct {
	Region    uint64
	Entry     uint8
	Lines     []LineUops
	Cacheable bool
	// Reason explains a non-cacheable result ("too-many-lines",
	// "uncacheable-op").
	Reason string
	// TotalUops is the µop count across lines.
	TotalUops int
}

// BuildTrace applies the placement rules to macro-ops of one region:
//
//   - a region may occupy at most MaxLinesPerRegion ways (18 µops on
//     Skylake); beyond that the region is not cached at all;
//   - micro-ops of one macro-op never span a line boundary;
//   - micro-ops from the MSROM consume an entire line;
//   - an unconditional jump is always the last micro-op of its line;
//   - a line holds at most MaxBranchesPerLine branch micro-ops;
//   - a 64-bit immediate occupies two slots (carried in Uop.Slots).
//
// macros must be the in-order decoded macro-ops starting at
// region+entry and ending at the region's last instruction or its
// first unconditional jump, whichever is earlier.
func BuildTrace(cfg Config, region uint64, entry uint8, macros []MacroUops) *Trace {
	t := &Trace{Region: region, Entry: entry, Cacheable: true}
	if cfg.Disabled {
		t.Cacheable = false
		t.Reason = "dsb-disabled"
		return t
	}
	if len(macros) == 0 {
		t.Cacheable = false
		t.Reason = "empty"
		return t
	}

	var cur LineUops
	closeLine := func() {
		if len(cur.Uops) > 0 || cur.MSROM {
			t.Lines = append(t.Lines, cur)
		}
		cur = LineUops{}
	}

	for mi := range macros {
		m := &macros[mi]
		if m.Uncacheable {
			t.Cacheable = false
			t.Reason = "uncacheable-op"
			t.Lines = nil
			return t
		}
		if m.Microcoded {
			// MSROM micro-ops consume an entire line of their own.
			closeLine()
			msLine := LineUops{MSROM: true, Slots: cfg.SlotsPerLine}
			msLine.Uops = append(msLine.Uops, m.Uops...)
			if m.Branch {
				msLine.Branches = 1
			}
			t.Lines = append(t.Lines, msLine)
			t.TotalUops += len(m.Uops)
			continue
		}
		slots := 0
		branches := 0
		for i := range m.Uops {
			slots += int(m.Uops[i].Slots)
			if m.Uops[i].IsBranch() {
				branches++
			}
		}
		if slots > cfg.SlotsPerLine {
			// A non-microcoded macro-op that cannot fit any line makes
			// the region uncacheable.
			t.Cacheable = false
			t.Reason = "macro-op-too-wide"
			t.Lines = nil
			return t
		}
		if cur.Slots+slots > cfg.SlotsPerLine ||
			cur.Branches+branches > cfg.MaxBranchesPerLine ||
			cur.MSROM {
			closeLine()
		}
		cur.Uops = append(cur.Uops, m.Uops...)
		cur.Slots += slots
		cur.Branches += branches
		t.TotalUops += len(m.Uops)
		if m.UncondJump {
			// An unconditional jump terminates the line (and, by
			// construction of macros, the trace).
			closeLine()
		}
	}
	closeLine()

	if len(t.Lines) > cfg.MaxLinesPerRegion {
		t.Cacheable = false
		t.Reason = "too-many-lines"
		t.Lines = nil
		return t
	}
	return t
}
