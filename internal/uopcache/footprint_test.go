package uopcache_test

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/cpu"
	"deaduops/internal/decode"
	"deaduops/internal/isa"
	"deaduops/internal/uopcache"
)

// span returns the [start, end) address interval of p's image.
func span(p *asm.Program) (uint64, uint64) {
	last := p.Insts[len(p.Insts)-1]
	return p.Insts[0].Addr, last.End()
}

func skylakePlan() (uopcache.Config, uopcache.PlanFunc) {
	return uopcache.Skylake(), decode.Macros(decode.Skylake())
}

func TestSetIndexOf(t *testing.T) {
	cfg := uopcache.Skylake()
	cases := []struct {
		addr uint64
		set  int
	}{
		{0x0, 0},
		{0x20, 1},
		{0x3F, 1},            // within region 1
		{0x20 * 32, 0},       // wraps at Sets
		{0x20*32 + 0x40, 2},  // wrap + region 2
		{0x1000, 0},          // bit 12 is above the index field
		{0x1000 + 0x20*5, 5}, // typical code address
	}
	for _, c := range cases {
		if got := cfg.SetIndexOf(c.addr); got != c.set {
			t.Errorf("SetIndexOf(%#x) = %d, want %d", c.addr, got, c.set)
		}
	}
}

func TestFootprintSingleRegion(t *testing.T) {
	cfg, plan := skylakePlan()
	b := asm.New(0x1000)
	b.Movi(isa.R1, 1)
	b.Movi(isa.R2, 2)
	b.Halt()
	p := b.MustBuild()

	start, end := span(p)
	f := uopcache.Footprint(cfg, p, start, end, plan)
	if len(f.Regions) != 1 {
		t.Fatalf("regions = %v, want 1", f.Regions)
	}
	r := f.Regions[0]
	if !r.Cacheable || r.Ways != 1 || r.Set != cfg.SetIndexOf(0x1000) {
		t.Errorf("region = %+v", r)
	}
	if r.Uops < 3 {
		t.Errorf("uops = %d, want ≥ 3", r.Uops)
	}
	if f.TotalWays() != 1 || f.Uncacheable != 0 {
		t.Errorf("footprint = %v", f.String())
	}
}

func TestFootprintCrossesRegions(t *testing.T) {
	cfg, plan := skylakePlan()
	b := asm.New(0x1000)
	for i := 0; i < 20; i++ { // 20 × 4-byte MOVI = 80 bytes: 3 regions
		b.Movi(isa.R1, int64(i))
	}
	b.Halt()
	p := b.MustBuild()

	start, end := span(p)
	f := uopcache.Footprint(cfg, p, start, end, plan)
	if len(f.Regions) < 3 {
		t.Fatalf("regions = %d, want ≥ 3 for an 80-byte stream", len(f.Regions))
	}
	sets := f.SetList()
	if len(sets) < 3 {
		t.Errorf("sets = %v, want the stream spread over ≥ 3 sets", sets)
	}
	for i := 1; i < len(sets); i++ {
		if sets[i] <= sets[i-1] {
			t.Errorf("SetList unsorted: %v", sets)
		}
	}
}

func TestFootprintUncondJumpEndsTrace(t *testing.T) {
	// A JMP mid-region terminates the trace; the jump target starts a
	// fresh (region, entry) trace even within the same region.
	cfg, plan := skylakePlan()
	b := asm.New(0x1000)
	b.Jmp("tail")
	b.Label("tail")
	b.Movi(isa.R1, 1)
	b.Halt()
	p := b.MustBuild()

	start, end := span(p)
	f := uopcache.Footprint(cfg, p, start, end, plan)
	if len(f.Regions) != 2 {
		t.Fatalf("regions = %+v, want jmp trace + tail trace", f.Regions)
	}
	if f.Regions[0].Region != f.Regions[1].Region {
		t.Fatalf("traces in different regions: %+v", f.Regions)
	}
	if f.Regions[0].Entry == f.Regions[1].Entry {
		t.Errorf("distinct traces share an entry: %+v", f.Regions)
	}
	if f.Sets[cfg.SetIndexOf(0x1000)] != 2 {
		t.Errorf("same-region traces must stack ways in one set: %v", f.Sets)
	}
}

func TestFootprintRangesDedup(t *testing.T) {
	cfg, plan := skylakePlan()
	b := asm.New(0x1000)
	b.Movi(isa.R1, 1)
	b.Halt()
	p := b.MustBuild()

	start, end := span(p)
	r := uopcache.Range{Start: start, End: end}
	f := uopcache.FootprintRanges(cfg, p, []uopcache.Range{r, r}, plan)
	if len(f.Regions) != 1 || f.TotalWays() != 1 {
		t.Errorf("revisited trace double-counted: %v / %+v", f.String(), f.Regions)
	}
}

func TestFootprintGapSegmentsTrace(t *testing.T) {
	cfg, plan := skylakePlan()
	b := asm.New(0x1000)
	b.Movi(isa.R1, 1)
	b.Org(0x1100)
	b.Movi(isa.R2, 2)
	b.Halt()
	p := b.MustBuild()

	start, end := span(p)
	f := uopcache.Footprint(cfg, p, start, end, plan)
	if len(f.Regions) != 2 {
		t.Fatalf("regions = %+v, want one per side of the gap", f.Regions)
	}
	if f.Regions[0].Set == f.Regions[1].Set {
		t.Errorf("0x1000 and 0x1100 map to the same set: %+v", f.Regions)
	}
}

func TestFootprintUncacheableRegion(t *testing.T) {
	// Four microcoded macro-ops in one region need four lines — over
	// the 3-lines-per-region cap, so the region is uncacheable.
	cfg, plan := skylakePlan()
	b := asm.New(0x1000)
	for i := 0; i < 4; i++ {
		b.Msrom(5)
	}
	b.Halt()
	p := b.MustBuild()

	f := uopcache.Footprint(cfg, p, 0x1000, 0x1020, plan)
	if f.Uncacheable != 1 {
		t.Fatalf("uncacheable = %d, want 1; regions %+v", f.Uncacheable, f.Regions)
	}
	r := f.Regions[0]
	if r.Cacheable || r.Reason != "too-many-lines" {
		t.Errorf("region = %+v", r)
	}
	if f.TotalWays() != 0 {
		t.Errorf("uncacheable region charged ways: %v", f.Sets)
	}
}

func TestFootprintMatchesSimulatorFill(t *testing.T) {
	// The static prediction must agree with what the cycle-level fetch
	// engine actually leaves in the micro-op cache after streaming the
	// same straight-line code.
	b := asm.New(0x1000)
	for i := 0; i < 30; i++ {
		b.Movi(isa.R1, int64(i))
		b.Addi(isa.R2, 1)
	}
	b.Halt()
	p := b.MustBuild()

	c := cpu.New(cpu.Intel())
	c.LoadProgram(p)
	res := c.Run(0, 0x1000, 100_000)
	if res.TimedOut {
		t.Fatal("run timed out")
	}

	cfg := c.Config().UopCache
	start, end := span(p)
	f := uopcache.Footprint(cfg, p, start, end, decode.Macros(decode.Skylake()))
	got := map[int]int{}
	for _, li := range c.UopCache().Snapshot() {
		got[li.Set]++
	}
	for s, want := range f.Sets {
		if got[s] != want {
			t.Errorf("set %d: predicted %d ways, simulator filled %d (predicted %v, filled %v)",
				s, want, got[s], f.Sets, got)
			break
		}
	}
}
