package uopcache

import (
	"fmt"
	"sort"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// PlanFunc decodes the in-order macro-ops of one region fetch into the
// trace-builder groups (macro-fusion applied). The decode package's
// Macros constructor is the canonical implementation; taking it as a
// parameter keeps this package below decode in the import graph.
type PlanFunc func(insts []*isa.Inst) []MacroUops

// SetIndexOf returns the physical set index addr maps to in
// single-thread, unpartitioned operation (bits IndexLoBit and up of the
// region base address).
func (c Config) SetIndexOf(addr uint64) int {
	return int(addr>>c.IndexLoBit) & (c.Sets - 1)
}

// RegionFootprint is the predicted occupancy of one (region, entry)
// trace under the placement rules.
type RegionFootprint struct {
	Region uint64 // region base address
	Entry  uint8  // entry offset within the region
	Set    int    // physical set (single-thread mapping)
	Ways   int    // lines the trace occupies
	Uops   int    // micro-ops across those lines
	// Cacheable is false when the placement rules reject the region;
	// such code is delivered by MITE on every fetch, which is itself
	// observable through the DSB/MITE timing contract.
	Cacheable bool
	Reason    string // why, when !Cacheable
}

// FootprintResult is the static micro-op cache occupancy of a code
// range or path: which sets it fills and with how many ways.
type FootprintResult struct {
	Regions []RegionFootprint
	// Sets maps physical set index → total ways occupied there.
	Sets map[int]int
	// Uncacheable counts regions rejected by the placement rules.
	Uncacheable int
}

// TotalWays sums way occupancy across sets.
func (f *FootprintResult) TotalWays() int {
	n := 0
	for _, w := range f.Sets {
		n += w
	}
	return n
}

// SetList returns the occupied set indices in ascending order.
func (f *FootprintResult) SetList() []int {
	out := make([]int, 0, len(f.Sets))
	for s := range f.Sets {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Equal reports whether two footprints occupy identical sets with
// identical way counts and agree on uncacheable regions.
func (f *FootprintResult) Equal(g *FootprintResult) bool {
	if len(f.Sets) != len(g.Sets) || f.Uncacheable != g.Uncacheable {
		return false
	}
	for s, w := range f.Sets {
		if g.Sets[s] != w {
			return false
		}
	}
	return true
}

// String summarizes the footprint.
func (f *FootprintResult) String() string {
	return fmt.Sprintf("footprint{%d regions, %d sets, %d ways, %d uncacheable}",
		len(f.Regions), len(f.Sets), f.TotalWays(), f.Uncacheable)
}

// Range is a half-open address interval [Start, End).
type Range struct {
	Start, End uint64
}

// Segment is one fetch segment of a code range: the in-order macro-ops
// of a single (region, entry) trace, exactly as the fetch engine would
// stream them before handing them to the decoders and the trace
// builder.
type Segment struct {
	Region uint64 // region base address
	Entry  uint8  // entry offset within the region
	Insts  []*isa.Inst
}

// SegmentRanges splits ranges into fetch segments the way the fetch
// engine does: a new segment begins at every region boundary, after
// every unconditional jump, and after every unmapped gap. A (region,
// entry) segment is returned once even if the ranges revisit it. Both
// the static footprint analysis (FootprintRanges) and the static cost
// model (decode.CostTable) consume this segmentation, which is what
// keeps their region granularity identical to the simulator's.
func SegmentRanges(cfg Config, prog *asm.Program, ranges []Range) []Segment {
	var out []Segment
	regionSize := cfg.RegionSize()
	seen := make(map[[2]uint64]bool) // (region, entry) traces returned

	for _, r := range ranges {
		pc := r.Start
		for pc < r.End {
			in := prog.At(pc)
			if in == nil {
				// Unmapped gap: resume at the next mapped instruction
				// inside the range, which starts a fresh segment.
				pc = nextMapped(prog, pc, r.End)
				continue
			}
			region := pc &^ (regionSize - 1)
			regionEnd := region + regionSize
			segStart := pc

			// Collect the segment: sequential macro-ops until the range
			// or region ends, an unconditional jump terminates the
			// trace, or the image has a gap.
			var insts []*isa.Inst
			for pc < r.End && pc < regionEnd {
				in = prog.At(pc)
				if in == nil {
					break
				}
				insts = append(insts, in)
				pc = in.End()
				if in.IsUncondJump() {
					break
				}
			}
			if len(insts) == 0 {
				break
			}
			key := [2]uint64{region, segStart - region}
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Segment{
				Region: region,
				Entry:  uint8(segStart - region),
				Insts:  insts,
			})
		}
	}
	return out
}

// Footprint computes the set/way occupancy of the instruction range
// [start, end) of prog under cfg's placement rules, as if fetch entered
// at start and streamed sequentially. The range is segmented with
// SegmentRanges and each segment's trace is built with BuildTrace and
// charged to the region's set. plan supplies the decoded macro-op
// groups (use decode.Macros for the modelled pipeline).
func Footprint(cfg Config, prog *asm.Program, start, end uint64, plan PlanFunc) FootprintResult {
	return FootprintRanges(cfg, prog, []Range{{start, end}}, plan)
}

// FootprintRanges is Footprint over several disjoint ranges (the fetch
// segments of one control-flow path), merging the per-set occupancy.
// A (region, entry) trace is counted once even if ranges revisit it.
func FootprintRanges(cfg Config, prog *asm.Program, ranges []Range, plan PlanFunc) FootprintResult {
	res := FootprintResult{Sets: make(map[int]int)}
	for _, seg := range SegmentRanges(cfg, prog, ranges) {
		t := BuildTrace(cfg, seg.Region, seg.Entry, plan(seg.Insts))
		rf := RegionFootprint{
			Region:    seg.Region,
			Entry:     seg.Entry,
			Set:       cfg.SetIndexOf(seg.Region),
			Cacheable: t.Cacheable,
			Reason:    t.Reason,
		}
		if t.Cacheable {
			rf.Ways = len(t.Lines)
			rf.Uops = t.TotalUops
			res.Sets[rf.Set] += rf.Ways
		} else {
			res.Uncacheable++
		}
		res.Regions = append(res.Regions, rf)
	}
	return res
}

// nextMapped returns the address of the first mapped instruction in
// (pc, end), or end when none exists. Gaps come from asm.Org and are
// short in practice; the walk is bounded by the range.
func nextMapped(prog *asm.Program, pc, end uint64) uint64 {
	for a := pc + 1; a < end; a++ {
		if prog.At(a) != nil {
			return a
		}
	}
	return end
}
