// Package perfctr provides the performance-counter events the
// characterization study reads. The names mirror the Intel events
// nanoBench exposes (IDQ.DSB_UOPS, IDQ.MITE_UOPS, DSB2MITE_SWITCHES.*,
// LONGEST_LAT_CACHE.*), so the experiment code reads like the paper.
package perfctr

import "fmt"

// Event identifies one counter.
type Event int

// Counter events.
const (
	// Cycles is the core clock.
	Cycles Event = iota
	// Instructions counts retired macro-ops.
	Instructions
	// UopsRetired counts retired micro-ops.
	UopsRetired
	// DSBUops counts micro-ops delivered to the IDQ from the micro-op
	// cache (IDQ.DSB_UOPS).
	DSBUops
	// MITEUops counts micro-ops delivered from the legacy decode
	// pipeline (IDQ.MITE_UOPS).
	MITEUops
	// MSROMUops counts micro-ops delivered by the microcode sequencer
	// (IDQ.MS_UOPS).
	MSROMUops
	// DSB2MITESwitches counts DSB→MITE transitions.
	DSB2MITESwitches
	// DSBMissPenaltyCycles counts cycles lost to DSB misses: the
	// switch penalty plus legacy-decode stall cycles
	// (DSB2MITE_SWITCHES.PENALTY_CYCLES analogue).
	DSBMissPenaltyCycles
	// LCPStallCycles counts predecoder stalls from length-changing
	// prefixes (ILD_STALL.LCP).
	LCPStallCycles
	// JccAlignStallCycles counts predecoder stalls charged to
	// conditional jumps straddling a predecode-window boundary (the
	// Frontal-attack timing effect; no documented Intel event, named
	// as an ILD_STALL analogue).
	JccAlignStallCycles
	// L1IMisses, L2Misses count instruction-side misses.
	L1IMisses
	L2Misses
	// LLCRefs and LLCMisses mirror LONGEST_LAT_CACHE.REFERENCE/MISS.
	LLCRefs
	LLCMisses
	// BranchMispredicts counts resolved mispredictions; Squashes
	// counts pipeline flushes.
	BranchMispredicts
	Squashes
	// LSDUops counts micro-ops replayed by the loop stream detector
	// (LSD.UOPS) — zero on the default Skylake model, where the LSD is
	// disabled per erratum SKL150.
	LSDUops
	// IDQStallCycles counts cycles the IDQ delivered nothing.
	IDQStallCycles
	// SkippedCycles counts clock cycles the simulator advanced in one
	// step through the event-driven fast path instead of ticking each
	// unit. Skipped cycles are still charged to Cycles (and to any
	// stall counter that would have ticked); this event only makes the
	// fast path auditable. It has no hardware analogue.
	SkippedCycles

	// NumEvents is the number of defined events.
	NumEvents
)

var eventNames = [NumEvents]string{
	Cycles:               "cycles",
	Instructions:         "instructions",
	UopsRetired:          "uops_retired",
	DSBUops:              "idq.dsb_uops",
	MITEUops:             "idq.mite_uops",
	MSROMUops:            "idq.ms_uops",
	DSB2MITESwitches:     "dsb2mite_switches.count",
	DSBMissPenaltyCycles: "dsb2mite_switches.penalty_cycles",
	LCPStallCycles:       "ild_stall.lcp",
	JccAlignStallCycles:  "ild_stall.jcc_align",
	L1IMisses:            "icache.misses",
	L2Misses:             "l2.inst_misses",
	LLCRefs:              "longest_lat_cache.reference",
	LLCMisses:            "longest_lat_cache.miss",
	BranchMispredicts:    "br_misp_retired",
	Squashes:             "machine_clears",
	LSDUops:              "lsd.uops",
	IDQStallCycles:       "idq.stall_cycles",
	SkippedCycles:        "sim.skipped_cycles",
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if e >= 0 && e < NumEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", int(e))
}

// Counters is one hardware thread's counter file.
type Counters struct {
	v [NumEvents]uint64
}

// Add increments event e by n.
func (c *Counters) Add(e Event, n uint64) { c.v[e] += n }

// Inc increments event e by one.
func (c *Counters) Inc(e Event) { c.v[e]++ }

// Get returns the value of event e.
func (c *Counters) Get(e Event) uint64 { return c.v[e] }

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() Snapshot {
	var s Snapshot
	s.v = c.v
	return s
}

// Reset zeroes all counters.
func (c *Counters) Reset() { c.v = [NumEvents]uint64{} }

// Restore overwrites the counter file with a previously taken
// snapshot (checkpoint rehydration).
func (c *Counters) Restore(s Snapshot) { c.v = s.v }

// Snapshot is an immutable copy of a counter file.
type Snapshot struct {
	v [NumEvents]uint64
}

// Get returns the value of event e.
func (s Snapshot) Get(e Event) uint64 { return s.v[e] }

// Delta returns s - earlier, element-wise.
func (s Snapshot) Delta(earlier Snapshot) Snapshot {
	var d Snapshot
	for i := range s.v {
		d.v[i] = s.v[i] - earlier.v[i]
	}
	return d
}

// String renders the nonzero counters.
func (s Snapshot) String() string {
	out := ""
	for e := Event(0); e < NumEvents; e++ {
		if s.v[e] != 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s=%d", e, s.v[e])
		}
	}
	return out
}
