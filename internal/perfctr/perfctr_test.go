package perfctr

import (
	"strings"
	"testing"
)

func TestCountersAddGet(t *testing.T) {
	var c Counters
	c.Add(Cycles, 100)
	c.Inc(Cycles)
	c.Inc(DSBUops)
	if got := c.Get(Cycles); got != 101 {
		t.Errorf("cycles = %d", got)
	}
	if got := c.Get(DSBUops); got != 1 {
		t.Errorf("dsb = %d", got)
	}
	if got := c.Get(MITEUops); got != 0 {
		t.Errorf("mite = %d", got)
	}
}

func TestSnapshotDelta(t *testing.T) {
	var c Counters
	c.Add(Instructions, 10)
	before := c.Snapshot()
	c.Add(Instructions, 5)
	c.Add(LLCMisses, 3)
	d := c.Snapshot().Delta(before)
	if d.Get(Instructions) != 5 || d.Get(LLCMisses) != 3 {
		t.Errorf("delta %v", d)
	}
	// Snapshots are immutable copies.
	c.Add(Instructions, 100)
	if before.Get(Instructions) != 10 {
		t.Error("snapshot mutated")
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.Add(Squashes, 7)
	c.Reset()
	if c.Get(Squashes) != 0 {
		t.Error("reset failed")
	}
}

func TestEventNames(t *testing.T) {
	// Every defined event must have a non-placeholder name (they mirror
	// Intel's counter mnemonics).
	for e := Event(0); e < NumEvents; e++ {
		name := e.String()
		if name == "" || strings.HasPrefix(name, "event(") {
			t.Errorf("event %d has no name", e)
		}
	}
	if got := Event(999).String(); got != "event(999)" {
		t.Errorf("unknown event name %q", got)
	}
}

func TestSnapshotString(t *testing.T) {
	var c Counters
	c.Add(DSBUops, 42)
	s := c.Snapshot().String()
	if !strings.Contains(s, "idq.dsb_uops=42") {
		t.Errorf("snapshot string %q", s)
	}
	var empty Counters
	if empty.Snapshot().String() != "" {
		t.Error("empty snapshot renders nonempty")
	}
}
