package victim

import (
	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// PCIVPDStyleGadget emits a victim modelled on the Linux PCI driver
// routine pci_vpd_find_tag, the naturally occurring gadget class the
// paper demonstrates in §VI-A: the routine reads a header byte at an
// attacker-influenced offset, bit-masks it, and takes a dependent
// branch on the tag — so the victim itself performs both the
// unauthorized transient access and the secret-dependent control
// transfer. No attacker-side disclosure gadget is needed; the
// attacker only probes which of the victim's two paths was fetched.
//
//	int find_tag(buf, off, len) {
//	    if (off < len) {             // bounds check (flushable guard)
//	        u8 tag = buf[off];       // transient read of the secret
//	        if (tag & 0x80)          // bit mask + dependent branch
//	            return handle_large(tag);
//	        return handle_small(tag);
//	    }
//	    return -1;
//	}
//
// The handlers are provided by the caller via labels "vpd_large" and
// "vpd_small" (each must end by returning); they stand in for the
// kernel code whose micro-op cache footprint discloses the tag bit.
// Labels defined here: vpd_find_tag, vpd_oob.
//
// ABI: RegArg = offset, R2 = 0, returns RegRet (-1 when out of bounds).
func PCIVPDStyleGadget(b *asm.Builder, l Layout) {
	b.Label("vpd_find_tag")
	b.Load(isa.R3, isa.R2, int64(l.ArraySizeAddr)) // len (flushable)
	b.Cmp(RegArg, isa.R3)
	b.Jcc(isa.AE, "vpd_oob")
	b.Loadb(isa.R4, RegArg, int64(l.ArrayBase)) // tag = buf[off]
	b.Mov(isa.R5, isa.R4)
	b.Andi(isa.R5, 0x80) // bit mask
	b.Cmpi(isa.R5, 0)
	b.Jcc(isa.NE, "vpd_large_path") // dependent branch
	b.Call("vpd_small")
	b.Ret()
	b.Label("vpd_large_path")
	b.Call("vpd_large")
	b.Ret()
	b.Label("vpd_oob")
	b.Movi(RegRet, -1)
	b.Ret()
}
